//===- examples/livelock_dining.cpp - Finding Figure 1's livelock --------===//
//
// The paper's motivating example (Figure 1): two philosophers with
// try-lock retry loops. No execution deadlocks and no assertion fails,
// yet the program can run forever without progress -- a livelock, a
// liveness bug invisible to safety-only checkers.
//
// The fair checker detects it: the livelock cycle is *fair* (both
// philosophers keep running and yielding), so the fair scheduler does not
// prune it; an execution exceeding the bound is classified and reported.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "workloads/DiningPhilosophers.h"

#include <cstdio>

using namespace fsmc;

int main() {
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::TryLockRetry; // Figure 1 verbatim.

  CheckerOptions O;
  // "We ask the user to set a large bound on the execution depth ...
  // orders of magnitude greater than the maximum number of steps the user
  // expects" (Section 2). A full meal takes ~15 steps; we allow 500.
  O.ExecutionBound = 500;
  O.TimeBudgetSeconds = 60;

  std::printf("Checking Figure 1's dining philosophers (try-lock retry)\n");
  CheckResult R = check(makeDiningProgram(C), O);

  std::printf("verdict: %s after %llu executions\n", verdictName(R.Kind),
              (unsigned long long)R.Stats.Executions);
  if (R.Bug) {
    std::printf("%s\n", R.Bug->Message.c_str());
    std::printf("diverging execution (suffix):\n%s",
                R.Bug->TraceText.c_str());
  }

  // Contrast: the repaired protocol (ordered blocking acquisition)
  // passes and the fair search terminates by itself.
  std::printf("\nChecking the repaired (ordered, blocking) variant\n");
  C.Kind = DiningConfig::Variant::OrderedBlocking;
  CheckerOptions O2;
  CheckResult R2 = check(makeDiningProgram(C), O2);
  std::printf("verdict: %s after %llu executions (%s)\n",
              verdictName(R2.Kind),
              (unsigned long long)R2.Stats.Executions,
              R2.Stats.SearchExhausted ? "exhausted" : "budget");
  return R.Kind == Verdict::Livelock && R2.Kind == Verdict::Pass ? 0 : 1;
}
