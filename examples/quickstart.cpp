//===- examples/quickstart.cpp - First steps with the checker ------------===//
//
// Quickstart: write a small concurrent test, run the fair stateless model
// checker over every interleaving, and read the counterexample.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "core/Schedule.h"
#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/Mutex.h"
#include "sync/TestThread.h"

#include <cstdio>
#include <memory>

using namespace fsmc;

namespace {

/// A deliberately racy bank account: deposit() is a read-modify-write
/// without holding the lock on the read.
struct Account {
  Account() : Balance(0, "balance"), Lock("account.lock") {}

  void depositRacy(int Amount) {
    int Current = Balance.load(); // BUG: read outside the lock.
    Lock.lock();
    Balance.store(Current + Amount);
    Lock.unlock();
  }

  void depositSafe(int Amount) {
    Lock.lock();
    Balance.store(Balance.load() + Amount);
    Lock.unlock();
  }

  Atomic<int> Balance;
  Mutex Lock;
};

TestProgram accountTest(bool Racy) {
  TestProgram P;
  P.Name = Racy ? "account-racy" : "account-safe";
  P.Body = [Racy] {
    auto A = std::make_shared<Account>();
    auto Deposit = [A, Racy] {
      if (Racy)
        A->depositRacy(100);
      else
        A->depositSafe(100);
    };
    TestThread T1(Deposit, "alice");
    TestThread T2(Deposit, "bob");
    T1.join();
    T2.join();
    checkThat(A->Balance.raw() == 200, "a deposit was lost");
  };
  return P;
}

void runAndReport(const TestProgram &P) {
  CheckerOptions Options; // Fair DFS over every interleaving.
  CheckResult R = check(P, Options);

  std::printf("== %s ==\n", P.Name.c_str());
  std::printf("verdict:     %s\n", verdictName(R.Kind));
  std::printf("executions:  %llu (%s)\n",
              (unsigned long long)R.Stats.Executions,
              R.Stats.SearchExhausted ? "search exhausted"
                                      : "budget reached");
  std::printf("transitions: %llu\n",
              (unsigned long long)R.Stats.Transitions);
  if (R.Bug) {
    std::printf("bug: %s\n", R.Bug->Message.c_str());
    std::printf("counterexample (suffix):\n%s", R.Bug->TraceText.c_str());
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("fsmc quickstart: exhaustively testing a bank account.\n\n");
  // The racy version loses a deposit in some interleaving -- the checker
  // finds it and prints the exact schedule.
  TestProgram Racy = accountTest(/*Racy=*/true);
  CheckResult Found = check(Racy, CheckerOptions());
  runAndReport(Racy);

  // Deterministic repro: replay the recorded schedule of the bug; the
  // exact same interleaving runs again (attach a debugger here).
  if (Found.Bug) {
    std::printf("replaying the recorded schedule %s ...\n",
                Found.Bug->Schedule.c_str());
    CheckResult Replay =
        replaySchedule(Racy, CheckerOptions(), Found.Bug->Schedule);
    std::printf("replay verdict: %s (in %llu execution)\n\n",
                verdictName(Replay.Kind),
                (unsigned long long)Replay.Stats.Executions);
  }

  // The fixed version passes: the checker proves every interleaving safe.
  runAndReport(accountTest(/*Racy=*/false));
  return 0;
}
