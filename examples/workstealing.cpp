//===- examples/workstealing.cpp - Checking a lock-free deque ------------===//
//
// The work-stealing queue from the paper's evaluation: a THE-protocol
// deque whose owner pops lock-free while thieves steal under a lock.
// Low-level algorithms like this are exactly the code the paper says
// cannot be manually modified to terminate -- the stealers are
// nonterminating service loops -- so fairness is what makes them
// checkable at all.
//
// This example runs the checker over the correct implementation and over
// the three seeded bugs (Table 3's WSQ bug 1-3), reporting how many
// executions each took to expose.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "workloads/WorkStealQueue.h"

#include <cstdio>

using namespace fsmc;

namespace {

void checkVariant(const char *Label, WsqBug Bug) {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = Bug;

  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded; // cb=2, the paper's bug-hunt mode.
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;

  CheckResult R = check(makeWsqProgram(C), O);
  std::printf("%-16s verdict=%-18s executions=%llu  time=%.2fs\n", Label,
              verdictName(R.Kind), (unsigned long long)R.Stats.Executions,
              R.Stats.Seconds);
  if (R.Bug)
    std::printf("  -> %s\n", R.Bug->Message.c_str());
}

} // namespace

int main() {
  std::printf("Work-stealing queue under the fair checker (cb=2):\n\n");
  checkVariant("correct", WsqBug::None);
  checkVariant("bug1 (reorder)", WsqBug::PopReordered);
  checkVariant("bug2 (restore)", WsqBug::StealNoRestore);
  checkVariant("bug3 (recheck)", WsqBug::PopNoRecheck);
  return 0;
}
