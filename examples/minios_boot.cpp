//===- examples/minios_boot.cpp - Booting an OS under the checker --------===//
//
// The paper's headline demonstration: "we have successfully booted the
// Singularity operating system under the control of CHESS" (Section 4.1).
// This example boots the mini-kernel -- services, timer, IPC, user
// processes, shutdown -- under the fair checker. Every service is a
// nonterminating message loop and the timer spins forever by design;
// before fairness, no stateless checker could drive this program to the
// end of even one test.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "workloads/minikernel/Kernel.h"

#include <cstdio>

using namespace fsmc;
using namespace fsmc::minikernel;

int main() {
  KernelConfig C; // 14 threads: main + 4 services + 9 apps.

  std::printf("Booting the mini-kernel under the fair checker...\n");

  // Phase 1: many fair random walks through boot/shutdown -- each one a
  // complete boot of the kernel under a different schedule.
  CheckerOptions Walks;
  Walks.Kind = SearchKind::RandomWalk;
  Walks.MaxExecutions = 200;
  Walks.ExecutionBound = 500000;
  CheckResult R1 = check(makeKernelBootProgram(C), Walks);
  std::printf("random walks:   %llu boots, verdict=%s, %llu transitions, "
              "max %d threads, %llu sync ops/boot\n",
              (unsigned long long)R1.Stats.Executions, verdictName(R1.Kind),
              (unsigned long long)R1.Stats.Transitions, R1.Stats.MaxThreads,
              (unsigned long long)R1.Stats.MaxSyncOps);

  // Phase 2: systematic context-bounded search on a smaller kernel.
  KernelConfig Small;
  Small.Apps = 1;
  CheckerOptions Systematic;
  Systematic.Kind = SearchKind::ContextBounded;
  Systematic.ContextBound = 1;
  Systematic.TimeBudgetSeconds = 60;
  CheckResult R2 = check(makeKernelBootProgram(Small), Systematic);
  std::printf("systematic cb1: %llu boots, verdict=%s (%s)\n",
              (unsigned long long)R2.Stats.Executions, verdictName(R2.Kind),
              R2.Stats.SearchExhausted ? "exhausted" : "budget reached");

  if (R1.Bug)
    std::printf("bug: %s\n%s", R1.Bug->Message.c_str(),
                R1.Bug->TraceText.c_str());
  if (R2.Bug)
    std::printf("bug: %s\n%s", R2.Bug->Message.c_str(),
                R2.Bug->TraceText.c_str());
  return R1.Kind == Verdict::Pass && R2.Kind == Verdict::Pass ? 0 : 1;
}
