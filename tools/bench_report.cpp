//===- tools/bench_report.cpp - Perf regression report -------------------===//
//
// The benchmark regression harness (docs/PERFORMANCE.md): re-runs the
// repository's three load-bearing performance measurements in-process --
// the micro_scheduler end-to-end throughput workload, the par_speedup
// parallel scaling run, and the fig5 time-to-first-deadlock search --
// and writes one machine-readable BENCH_<PR>.json at the repo root so
// every revision leaves a perf trajectory the next one can diff against.
//
// The micro section measures the same workload twice, with execution-
// state reuse off (the pre-pooling hot path: a fresh Runtime plus
// mmap/munmap per fiber stack per execution) and on (pooled stacks +
// Runtime::reset), so the report carries its own baseline: "speedup" is
// pooled over baseline on identical code, hardware and build flags.
//
// The por section measures the sleep-set reduction (docs/POR.md) on two
// searches run --por off then on: the micro spin-wait exhaustive DFS
// (search-size reduction on a full search) and the dining(3)
// deadlock-prone executions-to-first-bug count (the Table 3 metric the
// PorParityTest acceptance bar pins).
//
// The telemetry section A/B-tests the search-telemetry layer
// (docs/OBSERVABILITY.md): the same micro and dining workloads with the
// tree-size estimator plus schedule-point profiler off then on, and the
// throughput overhead percentage -- the number that keeps the "telemetry
// costs < 5%" claim honest across revisions.
//
// The fleet section (docs/FLEET.md) prices the supervised multi-process
// engine: the par_speedup dining workload at --fleet 1/2/4 beside the
// same widths under --jobs (the fleet/jobs rate ratio is the cost of
// pipes + process isolation), the spin-wait micro search at width 2
// (worst case: tiny units, fork/lease overhead undiluted), and the fig5
// time-to-first-deadlock run healthy vs with one worker kill injected
// through FSMC_FLEET_CHAOS (what a mid-search crash costs in wall time).
//
// The memory section (docs/MEMORY.md) prices weak-memory exploration:
// the spin-wait micro search and the bug-free WSQ cb=2 search, each
// exhausted under --memory=sc then tso, with the execution blow-up
// factor (flush agents are extra schedule points, so the tso tree
// strictly contains the sc one) -- the number that tells users what
// turning on store-buffer exploration costs on their workload.
//
// The scaling section prices the work-stealing parallel engine
// (docs/PERFORMANCE.md): the par_speedup dining workload at jobs
// 1/2/4/8 with the engine's contention counters read from an attached
// Observer -- steals, steal_fails, queue_lock_acquires, merge_ns,
// donation_bytes -- and the derived locks-per-execution ratio. The
// donation-era engine took at least two shared-lock acquisitions per
// execution (the hungry() poll under the queue mutex plus the
// best-bug mutex in the per-execution hook), so that floor is the
// baseline the lock_reduction_vs_donation factor is computed against;
// the acceptance bar is >= 10x at jobs 4.
//
// Usage: bench_report [--quick] [--out=FILE]
//   --quick  shrink every budget (the bench-smoke ctest entry); numbers
//            are noisier but the schema is identical
//   --out=F  write the JSON to F (default: BENCH_10.json in the CWD)
//
// Always exits 0: the harness records numbers, it does not gate. Compare
// across revisions with the methodology notes in docs/PERFORMANCE.md.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "obs/Observer.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/SpinWait.h"
#include "workloads/WorkStealQueue.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/resource.h>
#include <thread>

using namespace fsmc;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// One measured run: executions completed, wall time, derived rate.
struct Meas {
  uint64_t Executions = 0;
  double WallMs = 0;
  double ExecsPerSec = 0;
  bool Exhausted = true;

  void finish(double Secs) {
    WallMs = Secs * 1000.0;
    ExecsPerSec = Secs > 0 ? double(Executions) / Secs : 0;
  }
};

/// Repeats the micro_scheduler end-to-end workload -- an exhaustive fair
/// DFS over the Figure 3 spin-wait program, the highest executions/sec
/// path in the checker -- until \p BudgetSeconds elapses.
Meas measureMicro(bool Reuse, double BudgetSeconds) {
  SpinWaitConfig C;
  CheckerOptions O;
  O.DetectDivergence = false;
  O.ReuseExecutionState = Reuse;
  Meas M;
  auto T0 = Clock::now();
  do {
    CheckResult R = check(makeSpinWaitProgram(C), O);
    M.Executions += R.Stats.Executions;
  } while (secondsSince(T0) < BudgetSeconds);
  M.finish(secondsSince(T0));
  return M;
}

/// One par_speedup row: exhaustive Dining(N) Mixed under cb=2 at \p Jobs.
Meas measurePar(int Philosophers, int Jobs, double BudgetSeconds) {
  DiningConfig C;
  C.Philosophers = Philosophers;
  C.Kind = DiningConfig::Variant::Mixed;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TrackCoverage = true;
  O.Jobs = Jobs;
  O.TimeBudgetSeconds = BudgetSeconds;
  auto T0 = Clock::now();
  CheckResult R = check(makeDiningProgram(C), O);
  Meas M;
  M.Executions = R.Stats.Executions;
  M.Exhausted = R.Stats.SearchExhausted;
  M.finish(secondsSince(T0));
  return M;
}

/// The fig5 measurement: wall time for the fair DFS to surface the
/// classic deadlock in DeadlockProne dining. Doubles as the por bench's
/// executions-to-first-bug probe when \p Por is set.
Meas measureFigDeadlock(int Philosophers, double BudgetSeconds,
                        bool Por = false) {
  DiningConfig C;
  C.Philosophers = Philosophers;
  C.Kind = DiningConfig::Variant::DeadlockProne;
  CheckerOptions O;
  O.TimeBudgetSeconds = BudgetSeconds;
  O.Por = Por;
  auto T0 = Clock::now();
  CheckResult R = check(makeDiningProgram(C), O);
  Meas M;
  M.Executions = R.Stats.Executions;
  M.Exhausted = R.Kind == Verdict::Deadlock; // "found it" for this bench
  M.finish(secondsSince(T0));
  return M;
}

/// One por micro row: a single exhaustive fair DFS over the spin-wait
/// program. Unlike measureMicro this runs the search once -- the number
/// that matters is the search-size reduction (executions to exhaust),
/// with wall time alongside to show the oracle's overhead stays paid
/// for.
Meas measurePorMicro(bool Por, double BudgetSeconds) {
  SpinWaitConfig C;
  CheckerOptions O;
  O.DetectDivergence = false;
  O.Por = Por;
  O.TimeBudgetSeconds = BudgetSeconds;
  auto T0 = Clock::now();
  CheckResult R = check(makeSpinWaitProgram(C), O);
  Meas M;
  M.Executions = R.Stats.Executions;
  M.Exhausted = R.Stats.SearchExhausted;
  M.finish(secondsSince(T0));
  return M;
}

/// One telemetry A/B row: the measureMicro workload with the estimator
/// and the schedule-point profiler either both off or both on. Repeats
/// the exhaustive spin-wait search for the budget like measureMicro, so
/// on-vs-off is a like-for-like throughput comparison.
Meas measureTelemetryMicro(bool Telemetry, double BudgetSeconds) {
  SpinWaitConfig C;
  CheckerOptions O;
  O.DetectDivergence = false;
  O.Estimate = Telemetry;
  O.ProfileSearch = Telemetry;
  Meas M;
  auto T0 = Clock::now();
  do {
    CheckResult R = check(makeSpinWaitProgram(C), O);
    M.Executions += R.Stats.Executions;
  } while (secondsSince(T0) < BudgetSeconds);
  M.finish(secondsSince(T0));
  return M;
}

/// The dining telemetry row: one serial cb=2 Mixed search under a time
/// budget, telemetry off or on -- a lock-heavy workload with real
/// branch-point density, complementing the spin-dominated micro row.
Meas measureTelemetryDining(bool Telemetry, int Philosophers,
                            double BudgetSeconds) {
  DiningConfig C;
  C.Philosophers = Philosophers;
  C.Kind = DiningConfig::Variant::Mixed;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = BudgetSeconds;
  O.Estimate = Telemetry;
  O.ProfileSearch = Telemetry;
  auto T0 = Clock::now();
  CheckResult R = check(makeDiningProgram(C), O);
  Meas M;
  M.Executions = R.Stats.Executions;
  M.Exhausted = R.Stats.SearchExhausted;
  M.finish(secondsSince(T0));
  return M;
}

/// One fleet row: the par_speedup dining workload under the supervised
/// multi-process engine at \p Width workers (same bounds and coverage as
/// measurePar, so the jobs rows are its direct baseline).
Meas measureFleetPar(int Philosophers, int Width, double BudgetSeconds) {
  DiningConfig C;
  C.Philosophers = Philosophers;
  C.Kind = DiningConfig::Variant::Mixed;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TrackCoverage = true;
  O.FleetWorkers = Width;
  O.TimeBudgetSeconds = BudgetSeconds;
  auto T0 = Clock::now();
  CheckResult R = check(makeDiningProgram(C), O);
  Meas M;
  M.Executions = R.Stats.Executions;
  M.Exhausted = R.Stats.SearchExhausted;
  M.finish(secondsSince(T0));
  return M;
}

/// The fleet micro row: the spin-wait exhaustive search once, width 2.
/// The search is tiny, so this is the engine's worst case -- fork,
/// lease and pipe overhead undiluted by real exploration.
Meas measureFleetMicro(double BudgetSeconds) {
  SpinWaitConfig C;
  CheckerOptions O;
  O.DetectDivergence = false;
  O.FleetWorkers = 2;
  O.TimeBudgetSeconds = BudgetSeconds;
  Meas M;
  auto T0 = Clock::now();
  do {
    CheckResult R = check(makeSpinWaitProgram(C), O);
    M.Executions += R.Stats.Executions;
  } while (secondsSince(T0) < BudgetSeconds);
  M.finish(secondsSince(T0));
  return M;
}

/// Fleet time-to-first-bug: the fig5 deadlock hunt at \p Width workers,
/// optionally with FSMC_FLEET_CHAOS injected for this one run -- the
/// wall-time delta against the healthy row is what a worker crash costs
/// mid-search (detection + respawn + one re-run attempt).
Meas measureFleetDeadlock(int Philosophers, int Width, double BudgetSeconds,
                          const char *Chaos) {
  if (Chaos)
    setenv("FSMC_FLEET_CHAOS", Chaos, 1);
  DiningConfig C;
  C.Philosophers = Philosophers;
  C.Kind = DiningConfig::Variant::DeadlockProne;
  CheckerOptions O;
  O.TimeBudgetSeconds = BudgetSeconds;
  O.FleetWorkers = Width;
  auto T0 = Clock::now();
  CheckResult R = check(makeDiningProgram(C), O);
  if (Chaos)
    unsetenv("FSMC_FLEET_CHAOS");
  Meas M;
  M.Executions = R.Stats.Executions;
  M.Exhausted = R.Kind == Verdict::Deadlock; // "found it" for this bench
  M.finish(secondsSince(T0));
  return M;
}

/// One memory A/B row, micro flavor: the spin-wait program exhausted
/// once under \p M. The metric is the search-size blow-up (executions to
/// exhaust) from the flush-agent schedule points, with wall time
/// alongside so the per-execution cost of the buffer machinery shows.
Meas measureMemoryMicro(MemoryModel M, double BudgetSeconds) {
  SpinWaitConfig C;
  CheckerOptions O;
  O.DetectDivergence = false;
  O.Memory = M;
  O.TimeBudgetSeconds = BudgetSeconds;
  auto T0 = Clock::now();
  CheckResult R = check(makeSpinWaitProgram(C), O);
  Meas M2;
  M2.Executions = R.Stats.Executions;
  M2.Exhausted = R.Stats.SearchExhausted;
  M2.finish(secondsSince(T0));
  return M2;
}

/// The wsq memory row: the bug-free work-stealing queue (the workload
/// weak memory exists for) exhausted under cb=2 at \p M.
Meas measureMemoryWsq(MemoryModel M, double BudgetSeconds) {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.Memory = M;
  O.TimeBudgetSeconds = BudgetSeconds;
  auto T0 = Clock::now();
  CheckResult R = check(makeWsqProgram(C), O);
  Meas M2;
  M2.Executions = R.Stats.Executions;
  M2.Exhausted = R.Stats.SearchExhausted;
  M2.finish(secondsSince(T0));
  return M2;
}

/// One scaling row: the par_speedup dining workload at \p Jobs with an
/// Observer attached so the work-stealing engine's contention counters
/// (docs/OBSERVABILITY.md) ride along with the rate.
struct ScalingMeas {
  Meas M;
  uint64_t Steals = 0;
  uint64_t StealFails = 0;
  uint64_t QueueLockAcquires = 0;
  uint64_t MergeNs = 0;
  uint64_t DonationBytes = 0;
  uint64_t PrefixesDonated = 0;

  double locksPerExecution() const {
    return M.Executions ? double(QueueLockAcquires) / double(M.Executions) : 0;
  }
};

ScalingMeas measureScaling(int Philosophers, int Jobs, double BudgetSeconds) {
  DiningConfig C;
  C.Philosophers = Philosophers;
  C.Kind = DiningConfig::Variant::Mixed;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TrackCoverage = true;
  O.Jobs = Jobs;
  O.TimeBudgetSeconds = BudgetSeconds;
  obs::Observer Obs;
  O.Obs = &Obs;
  auto T0 = Clock::now();
  CheckResult R = check(makeDiningProgram(C), O);
  ScalingMeas S;
  S.M.Executions = R.Stats.Executions;
  S.M.Exhausted = R.Stats.SearchExhausted;
  S.M.finish(secondsSince(T0));
  obs::CounterSnapshot Snap = Obs.snapshot();
  S.Steals = Snap.counter(obs::Counter::Steals);
  S.StealFails = Snap.counter(obs::Counter::StealFails);
  S.QueueLockAcquires = Snap.counter(obs::Counter::QueueLockAcquires);
  S.MergeNs = Snap.counter(obs::Counter::MergeNs);
  S.DonationBytes = Snap.counter(obs::Counter::DonationBytes);
  S.PrefixesDonated = Snap.counter(obs::Counter::PrefixesDonated);
  return S;
}

long peakRssKb() {
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) != 0)
    return 0;
  return RU.ru_maxrss; // Linux: kilobytes.
}

void appendMeas(std::string &Out, const char *Key, const Meas &M,
                int Indent, bool Comma) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%*s\"%s\": { \"executions\": %llu, \"wall_ms\": %.1f, "
                "\"execs_per_sec\": %.1f }%s\n",
                Indent, "", Key, (unsigned long long)M.Executions, M.WallMs,
                M.ExecsPerSec, Comma ? "," : "");
  Out += Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_10.json";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strncmp(Argv[I], "--out=", 6) == 0)
      OutPath = Argv[I] + 6;
    else {
      std::fprintf(stderr, "bench_report: unknown option %s\n", Argv[I]);
      std::fprintf(stderr, "usage: bench_report [--quick] [--out=FILE]\n");
      return 0; // Non-gating by design; see the header comment.
    }
  }

  // Budgets: long enough for stable rates in full mode, short enough for
  // a non-gating smoke entry in quick mode.
  const double MicroBudget = Quick ? 0.5 : 3.0;
  const int ParPhilosophers = Quick ? 3 : 4;
  const double ParBudget = Quick ? 20.0 : 120.0;
  // Three philosophers: the deadlock is reached within the budget by the
  // plain fair DFS, so the row measures time-to-first-bug (Table 3's
  // metric), not budget exhaustion.
  const int FigPhilosophers = 3;
  const double FigBudget = Quick ? 10.0 : 60.0;

  std::fprintf(stderr, "bench_report: micro_scheduler (reuse off)...\n");
  Meas MicroOff = measureMicro(/*Reuse=*/false, MicroBudget);
  std::fprintf(stderr, "bench_report: micro_scheduler (reuse on)...\n");
  Meas MicroOn = measureMicro(/*Reuse=*/true, MicroBudget);
  std::fprintf(stderr, "bench_report: par_speedup jobs=1...\n");
  Meas Par1 = measurePar(ParPhilosophers, 1, ParBudget);
  std::fprintf(stderr, "bench_report: par_speedup jobs=4...\n");
  Meas Par4 = measurePar(ParPhilosophers, 4, ParBudget);
  std::fprintf(stderr, "bench_report: fig5 dining deadlock...\n");
  Meas Fig = measureFigDeadlock(FigPhilosophers, FigBudget);
  std::fprintf(stderr, "bench_report: por micro (off)...\n");
  Meas PorMicroOff = measurePorMicro(/*Por=*/false, FigBudget);
  std::fprintf(stderr, "bench_report: por micro (on)...\n");
  Meas PorMicroOn = measurePorMicro(/*Por=*/true, FigBudget);
  std::fprintf(stderr, "bench_report: por dining deadlock (off)...\n");
  Meas PorFigOff = measureFigDeadlock(FigPhilosophers, FigBudget);
  std::fprintf(stderr, "bench_report: por dining deadlock (on)...\n");
  Meas PorFigOn = measureFigDeadlock(FigPhilosophers, FigBudget, /*Por=*/true);
  std::fprintf(stderr, "bench_report: telemetry micro (off)...\n");
  Meas TelMicroOff = measureTelemetryMicro(/*Telemetry=*/false, MicroBudget);
  std::fprintf(stderr, "bench_report: telemetry micro (on)...\n");
  Meas TelMicroOn = measureTelemetryMicro(/*Telemetry=*/true, MicroBudget);
  std::fprintf(stderr, "bench_report: telemetry dining (off)...\n");
  Meas TelDiningOff =
      measureTelemetryDining(/*Telemetry=*/false, FigPhilosophers, FigBudget);
  std::fprintf(stderr, "bench_report: telemetry dining (on)...\n");
  Meas TelDiningOn =
      measureTelemetryDining(/*Telemetry=*/true, FigPhilosophers, FigBudget);

  // Fleet vs jobs at matched widths on the par_speedup workload, plus
  // the undiluted-overhead micro row and the injected-kill deadlock hunt.
  Meas FleetJobs[3], FleetPar[3];
  const int FleetWidths[3] = {1, 2, 4};
  for (int I = 0; I < 3; ++I) {
    std::fprintf(stderr, "bench_report: fleet dining jobs=%d...\n",
                 FleetWidths[I]);
    FleetJobs[I] = measurePar(ParPhilosophers, FleetWidths[I], ParBudget);
    std::fprintf(stderr, "bench_report: fleet dining fleet=%d...\n",
                 FleetWidths[I]);
    FleetPar[I] = measureFleetPar(ParPhilosophers, FleetWidths[I], ParBudget);
  }
  std::fprintf(stderr, "bench_report: fleet micro (width 2)...\n");
  Meas FleetMicro = measureFleetMicro(MicroBudget);
  std::fprintf(stderr, "bench_report: fleet first-bug (healthy)...\n");
  Meas FleetBugClean =
      measureFleetDeadlock(FigPhilosophers, 2, FigBudget, nullptr);
  std::fprintf(stderr, "bench_report: fleet first-bug (kill:1)...\n");
  Meas FleetBugKill =
      measureFleetDeadlock(FigPhilosophers, 2, FigBudget, "kill:1");
  // Work-stealing scaling sweep: the par_speedup workload at jobs
  // 1/2/4/8 with contention counters attached.
  const int ScalingJobs[4] = {1, 2, 4, 8};
  ScalingMeas Scaling[4];
  for (int I = 0; I < 4; ++I) {
    std::fprintf(stderr, "bench_report: scaling jobs=%d...\n", ScalingJobs[I]);
    Scaling[I] = measureScaling(ParPhilosophers, ScalingJobs[I], ParBudget);
  }

  std::fprintf(stderr, "bench_report: memory micro (sc)...\n");
  Meas MemMicroSc = measureMemoryMicro(MemoryModel::Sc, FigBudget);
  std::fprintf(stderr, "bench_report: memory micro (tso)...\n");
  Meas MemMicroTso = measureMemoryMicro(MemoryModel::Tso, FigBudget);
  std::fprintf(stderr, "bench_report: memory wsq (sc)...\n");
  Meas MemWsqSc = measureMemoryWsq(MemoryModel::Sc, FigBudget);
  std::fprintf(stderr, "bench_report: memory wsq (tso)...\n");
  Meas MemWsqTso = measureMemoryWsq(MemoryModel::Tso, FigBudget);

  double Speedup =
      MicroOff.ExecsPerSec > 0 ? MicroOn.ExecsPerSec / MicroOff.ExecsPerSec
                               : 0;

  std::string Out;
  Out += "{\n";
  Out += "  \"schema\": 1,\n";
  Out += "  \"bench\": 10,\n";
  Out += std::string("  \"mode\": \"") + (Quick ? "quick" : "full") + "\",\n";
#ifdef NDEBUG
  Out += "  \"asserts\": false,\n";
#else
  Out += "  \"asserts\": true,\n";
#endif
  Out += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";

  Out += "  \"micro_scheduler\": {\n";
  Out += "    \"workload\": \"spinwait exhaustive fair DFS, repeated for a "
         "fixed budget\",\n";
  appendMeas(Out, "baseline_reuse_off", MicroOff, 4, true);
  appendMeas(Out, "pooled_reuse_on", MicroOn, 4, true);
  {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "    \"speedup\": %.2f\n", Speedup);
    Out += Buf;
  }
  Out += "  },\n";

  Out += "  \"par_speedup\": {\n";
  Out += "    \"workload\": \"dining(" + std::to_string(ParPhilosophers) +
         ") mixed, cb=2, coverage on\",\n";
  Out += "    \"rows\": [\n";
  {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "      { \"jobs\": 1, \"executions\": %llu, \"wall_ms\": "
                  "%.1f, \"execs_per_sec\": %.1f, \"exhausted\": %s },\n",
                  (unsigned long long)Par1.Executions, Par1.WallMs,
                  Par1.ExecsPerSec, Par1.Exhausted ? "true" : "false");
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "      { \"jobs\": 4, \"executions\": %llu, \"wall_ms\": "
                  "%.1f, \"execs_per_sec\": %.1f, \"exhausted\": %s }\n",
                  (unsigned long long)Par4.Executions, Par4.WallMs,
                  Par4.ExecsPerSec, Par4.Exhausted ? "true" : "false");
    Out += Buf;
  }
  Out += "    ]\n";
  Out += "  },\n";

  Out += "  \"fig5_dining_deadlock\": {\n";
  Out += "    \"workload\": \"dining(" + std::to_string(FigPhilosophers) +
         ") deadlock-prone, fair DFS to first bug\",\n";
  {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    \"executions\": %llu,\n    \"wall_ms\": %.1f,\n"
                  "    \"found_deadlock\": %s\n",
                  (unsigned long long)Fig.Executions, Fig.WallMs,
                  Fig.Exhausted ? "true" : "false");
    Out += Buf;
  }
  Out += "  },\n";

  // Schedule-reduction factors, not rates: how many fewer executions the
  // sleep-set search needs for the same result.
  double PorMicroReduction =
      PorMicroOn.Executions > 0
          ? double(PorMicroOff.Executions) / double(PorMicroOn.Executions)
          : 0;
  double PorFigReduction =
      PorFigOn.Executions > 0
          ? double(PorFigOff.Executions) / double(PorFigOn.Executions)
          : 0;
  Out += "  \"por\": {\n";
  Out += "    \"workload\": \"spinwait exhaustive fair DFS and dining(" +
         std::to_string(FigPhilosophers) +
         ") deadlock-prone executions-to-first-bug, --por off vs on\",\n";
  appendMeas(Out, "micro_off", PorMicroOff, 4, true);
  appendMeas(Out, "micro_on", PorMicroOn, 4, true);
  appendMeas(Out, "dining_first_bug_off", PorFigOff, 4, true);
  appendMeas(Out, "dining_first_bug_on", PorFigOn, 4, true);
  {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "    \"micro_reduction\": %.2f,\n"
                  "    \"dining_first_bug_reduction\": %.2f,\n"
                  "    \"dining_found_deadlock\": %s\n",
                  PorMicroReduction, PorFigReduction,
                  PorFigOn.Exhausted && PorFigOff.Exhausted ? "true"
                                                            : "false");
    Out += Buf;
  }
  Out += "  },\n";

  // Throughput overhead of the telemetry layer, in percent of the off
  // rate; negative = measured faster with telemetry on (noise). The
  // acceptance bar is < 5 on both workloads.
  auto OverheadPct = [](const Meas &Off, const Meas &On) {
    return Off.ExecsPerSec > 0
               ? 100.0 * (Off.ExecsPerSec - On.ExecsPerSec) / Off.ExecsPerSec
               : 0.0;
  };
  Out += "  \"telemetry\": {\n";
  Out += "    \"workload\": \"spinwait exhaustive fair DFS and dining(" +
         std::to_string(FigPhilosophers) +
         ") mixed cb=2, --estimate + --profile-search off vs on\",\n";
  appendMeas(Out, "micro_off", TelMicroOff, 4, true);
  appendMeas(Out, "micro_on", TelMicroOn, 4, true);
  appendMeas(Out, "dining_off", TelDiningOff, 4, true);
  appendMeas(Out, "dining_on", TelDiningOn, 4, true);
  {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "    \"micro_overhead_pct\": %.2f,\n"
                  "    \"dining_overhead_pct\": %.2f\n",
                  OverheadPct(TelMicroOff, TelMicroOn),
                  OverheadPct(TelDiningOff, TelDiningOn));
    Out += Buf;
  }
  Out += "  },\n";

  Out += "  \"fleet\": {\n";
  Out += "    \"workload\": \"dining(" + std::to_string(ParPhilosophers) +
         ") mixed cb=2 at matched --fleet/--jobs widths; spinwait micro at "
         "width 2; dining(" +
         std::to_string(FigPhilosophers) +
         ") deadlock-prone time-to-first-bug healthy vs one injected worker "
         "kill\",\n";
  Out += "    \"rows\": [\n";
  for (int I = 0; I < 3; ++I) {
    double Ratio = FleetJobs[I].ExecsPerSec > 0
                       ? FleetPar[I].ExecsPerSec / FleetJobs[I].ExecsPerSec
                       : 0;
    char Buf[320];
    std::snprintf(
        Buf, sizeof(Buf),
        "      { \"width\": %d, \"fleet_execs_per_sec\": %.1f, "
        "\"jobs_execs_per_sec\": %.1f, \"fleet_wall_ms\": %.1f, "
        "\"jobs_wall_ms\": %.1f, \"fleet_vs_jobs\": %.2f, "
        "\"exhausted\": %s }%s\n",
        FleetWidths[I], FleetPar[I].ExecsPerSec, FleetJobs[I].ExecsPerSec,
        FleetPar[I].WallMs, FleetJobs[I].WallMs, Ratio,
        FleetPar[I].Exhausted && FleetJobs[I].Exhausted ? "true" : "false",
        I + 1 < 3 ? "," : "");
    Out += Buf;
  }
  Out += "    ],\n";
  appendMeas(Out, "micro_width2", FleetMicro, 4, true);
  {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    \"first_bug_healthy_ms\": %.1f,\n"
                  "    \"first_bug_one_kill_ms\": %.1f,\n"
                  "    \"first_bug_found\": %s\n",
                  FleetBugClean.WallMs, FleetBugKill.WallMs,
                  FleetBugClean.Exhausted && FleetBugKill.Exhausted
                      ? "true"
                      : "false");
    Out += Buf;
  }
  Out += "  },\n";

  // Execution blow-up of weak-memory exploration: tso executions over sc
  // executions for the same exhausted search (>= 1 by construction; the
  // flush agents only add schedule points).
  double MemMicroBlowup =
      MemMicroSc.Executions > 0
          ? double(MemMicroTso.Executions) / double(MemMicroSc.Executions)
          : 0;
  double MemWsqBlowup =
      MemWsqSc.Executions > 0
          ? double(MemWsqTso.Executions) / double(MemWsqSc.Executions)
          : 0;
  Out += "  \"memory\": {\n";
  Out += "    \"workload\": \"spinwait exhaustive fair DFS and bug-free "
         "wsq(1 stealer, 2 tasks) cb=2, --memory sc vs tso\",\n";
  appendMeas(Out, "micro_sc", MemMicroSc, 4, true);
  appendMeas(Out, "micro_tso", MemMicroTso, 4, true);
  appendMeas(Out, "wsq_sc", MemWsqSc, 4, true);
  appendMeas(Out, "wsq_tso", MemWsqTso, 4, true);
  {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "    \"micro_blowup\": %.2f,\n"
                  "    \"wsq_blowup\": %.2f,\n"
                  "    \"exhausted\": %s\n",
                  MemMicroBlowup, MemWsqBlowup,
                  MemMicroSc.Exhausted && MemMicroTso.Exhausted &&
                          MemWsqSc.Exhausted && MemWsqTso.Exhausted
                      ? "true"
                      : "false");
    Out += Buf;
  }
  Out += "  },\n";

  // Lock contention of the work-stealing engine. The donation-era
  // engine's floor was two shared-lock acquisitions per execution (the
  // hungry() poll under the queue mutex plus the best-bug mutex in the
  // per-execution hook), so the reduction factor is that floor over the
  // measured rate at jobs 4.
  const double DonationLockFloor = 2.0;
  double Jobs4Locks = Scaling[2].locksPerExecution();
  double LockReduction = Jobs4Locks > 0 ? DonationLockFloor / Jobs4Locks : 0;
  Out += "  \"scaling\": {\n";
  Out += "    \"workload\": \"dining(" + std::to_string(ParPhilosophers) +
         ") mixed cb=2, coverage on, work-stealing engine with contention "
         "counters\",\n";
  Out += "    \"rows\": [\n";
  for (int I = 0; I < 4; ++I) {
    const ScalingMeas &S = Scaling[I];
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "      { \"jobs\": %d, \"executions\": %llu, \"wall_ms\": %.1f, "
        "\"execs_per_sec\": %.1f, \"steals\": %llu, \"steal_fails\": %llu, "
        "\"queue_lock_acquires\": %llu, \"merge_ns\": %llu, "
        "\"donation_bytes\": %llu, \"prefixes_donated\": %llu, "
        "\"locks_per_execution\": %.4f, \"exhausted\": %s }%s\n",
        ScalingJobs[I], (unsigned long long)S.M.Executions, S.M.WallMs,
        S.M.ExecsPerSec, (unsigned long long)S.Steals,
        (unsigned long long)S.StealFails,
        (unsigned long long)S.QueueLockAcquires,
        (unsigned long long)S.MergeNs, (unsigned long long)S.DonationBytes,
        (unsigned long long)S.PrefixesDonated, S.locksPerExecution(),
        S.M.Exhausted ? "true" : "false", I + 1 < 4 ? "," : "");
    Out += Buf;
  }
  Out += "    ],\n";
  {
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "    \"donation_engine_locks_per_execution_floor\": %.1f,\n"
                  "    \"lock_reduction_vs_donation\": %.1f\n",
                  DonationLockFloor, LockReduction);
    Out += Buf;
  }
  Out += "  },\n";

  Out += "  \"peak_rss_kb\": " + std::to_string(peakRssKb()) + "\n";
  Out += "}\n";

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "bench_report: cannot open %s; report follows:\n%s",
                 OutPath.c_str(), Out.c_str());
    return 0;
  }
  std::fwrite(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  std::fprintf(stderr,
               "bench_report: wrote %s (micro speedup %.2fx: %.0f -> %.0f "
               "execs/s)\n",
               OutPath.c_str(), Speedup, MicroOff.ExecsPerSec,
               MicroOn.ExecsPerSec);
  return 0;
}
