//===- tools/fsmc_run.cpp - Command-line checker driver ------------------===//
//
// A small CLI over the checker, in the spirit of the chess.exe driver:
// pick a registered workload (or one of the seeded-bug variants), choose
// a search strategy, run, and print the verdict plus the replayable
// schedule of any counterexample.
//
//   fsmc_run --list
//   fsmc_run --program=wsq-bug1 --cb=2
//   fsmc_run --program=dining-livelock --bound=300
//   fsmc_run --program=minikernel --random --executions=100
//   fsmc_run --program=wsq-bug1 --cb=2 --stats-json=- --trace-out=t.jsonl
//   fsmc_run --program=crashfault-segv --isolate=batch --repro-dir=repros
//   fsmc_run --program=peterson --checkpoint=run.ckpt --checkpoint-every=50
//   fsmc_run --resume=run.ckpt --checkpoint=run.ckpt
//   fsmc_run --program=dining --fleet=4        (supervised worker fleet)
//
// Installed as `fsmc_fleet`, the same binary defaults --fleet to the
// hardware concurrency (clamped to [2,8]) so `fsmc_fleet --program=X`
// is the supervised-search spelling of `fsmc_run --program=X`.
//
// Exit codes (docs/ROBUSTNESS.md, docs/RACES.md, docs/FLEET.md):
//   0 = no bug found            4 = workload hang (sandbox watchdog)
//   1 = bug found               5 = interrupted (SIGINT/SIGTERM)
//   2 = usage/setup error       6 = replay divergence (checker limitation)
//   3 = workload crash          7 = data race (--races=on|fatal)
//                               8 = corrupt/truncated checkpoint (--resume)
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "core/Checkpoint.h"
#include "core/Explorer.h"
#include "core/IterativeCheck.h"
#include "core/Schedule.h"
#include "obs/EventSink.h"
#include "obs/Explain.h"
#include "obs/HtmlReport.h"
#include "obs/Observer.h"
#include "obs/ProgressReporter.h"
#include "obs/StatsJson.h"
#include "support/OutStream.h"
#include "support/TablePrinter.h"
#include "workloads/Channels.h"
#include "workloads/CrashFault.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Peterson.h"
#include "workloads/Promise.h"
#include "workloads/SpinWait.h"
#include "workloads/WorkStealQueue.h"
#include "workloads/WorkerGroup.h"
#include "workloads/WorkloadRegistry.h"
#include "workloads/minikernel/Kernel.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

using namespace fsmc;

namespace {

/// Named test programs available to the CLI: every registry row plus the
/// seeded-bug variants the paper's Table 3 and Section 4.3 evaluate.
std::map<std::string, std::function<TestProgram()>> catalogue() {
  std::map<std::string, std::function<TestProgram()>> C;
  for (const RegisteredWorkload &W : allWorkloads()) {
    std::string Key;
    for (char Ch : W.Name)
      Key += Ch == ' ' ? '-' : char(std::tolower(Ch));
    C[Key] = W.Make;
  }
  C["dining-livelock"] = [] {
    DiningConfig D;
    D.Philosophers = 2;
    D.Kind = DiningConfig::Variant::TryLockRetry;
    return makeDiningProgram(D);
  };
  C["dining-deadlock"] = [] {
    DiningConfig D;
    D.Philosophers = 2;
    D.Kind = DiningConfig::Variant::DeadlockProne;
    return makeDiningProgram(D);
  };
  // wsq-bug1 is the missing-fence defect (workloads/WorkStealQueue.h):
  // it manifests only under --memory=tso|pso; under the default sc model
  // the variant is indistinguishable from the correct code. bug2/bug3
  // are ordering bugs and reproduce under every memory model.
  for (int B = 1; B <= 3; ++B)
    C["wsq-bug" + std::to_string(B)] = [B] {
      WsqConfig W;
      W.Stealers = 1;
      W.Tasks = 2;
      W.Bug = WsqBug(B);
      return makeWsqProgram(W);
    };
  for (int B = 1; B <= 4; ++B)
    C["channels-bug" + std::to_string(B)] = [B] {
      ChannelsConfig Ch;
      Ch.Bug = ChannelBug(B);
      if (Ch.Bug == ChannelBug::LostSignal) {
        Ch.Producers = 2;
        Ch.Consumers = 1;
      }
      if (Ch.Bug == ChannelBug::RacyClose ||
          Ch.Bug == ChannelBug::BadCloseFix)
        Ch.CloseAfter = 1;
      return makeChannelsProgram(Ch);
    };
  C["promise-livelock"] = [] {
    PromiseConfig P;
    P.StaleReadBug = true;
    return makePromiseProgram(P);
  };
  C["workergroup-gs"] = [] {
    WorkerGroupConfig W;
    return makeWorkerGroupProgram(W);
  };
  C["spinwait-noyield"] = [] {
    SpinWaitConfig S;
    S.WithYield = false;
    return makeSpinWaitProgram(S);
  };
  C["peterson"] = [] { return makePetersonProgram(PetersonConfig()); };
  C["peterson-livelock"] = [] {
    PetersonConfig P;
    P.Kind = PetersonConfig::Variant::NoTurn;
    return makePetersonProgram(P);
  };
  C["peterson-bug"] = [] {
    PetersonConfig P;
    P.Kind = PetersonConfig::Variant::FlagAfterCheck;
    return makePetersonProgram(P);
  };
  // Fault-injection variants for --isolate=batch (docs/ROBUSTNESS.md).
  // Deliberately kept out of the workload registry: they kill the process
  // that runs them, so only the sandbox can search them.
  C["crashfault-segv"] = [] {
    CrashFaultConfig F;
    F.Kind = CrashFaultConfig::Fault::NullDeref;
    return makeCrashFaultProgram(F);
  };
  C["crashfault-abort"] = [] {
    CrashFaultConfig F;
    F.Kind = CrashFaultConfig::Fault::Abort;
    return makeCrashFaultProgram(F);
  };
  C["crashfault-hang"] = [] {
    CrashFaultConfig F;
    F.Kind = CrashFaultConfig::Fault::Hang;
    return makeCrashFaultProgram(F);
  };
  // Seeded data races for --races (docs/RACES.md). Like the fault
  // variants, these stay out of the workload registry: the registry rows
  // double as the detector's zero-false-positive corpus.
  C["crashfault-race"] = [] {
    CrashFaultConfig F;
    F.Kind = CrashFaultConfig::Fault::Race;
    return makeCrashFaultProgram(F);
  };
  C["wsq-racy"] = [] {
    WsqConfig W;
    W.Stealers = 1;
    W.Tasks = 2;
    W.RacySize = true;
    return makeWsqProgram(W);
  };
  C["minikernel"] = [] {
    return minikernel::makeKernelBootProgram(minikernel::KernelConfig());
  };
  return C;
}

bool parseFlag(const char *Arg, const char *Name, const char **Value) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0)
    return false;
  if (Arg[Len] == '\0') {
    *Value = "";
    return true;
  }
  if (Arg[Len] == '=') {
    *Value = Arg + Len + 1;
    return true;
  }
  return false;
}

int usage() {
  errs() << "usage: fsmc_run --program=<name> [options]\n"
            "       fsmc_run --list [--stats-json=FILE|-]\n\n"
            "search options:\n"
            "  --cb=N           context-bounded search with N preemptions\n"
            "  --iterative=N    iterative context bounding up to N\n"
            "  --random         random-walk search\n"
            "  --unfair         disable the fair scheduler\n"
            "  --depth=N        depth bound (with --unfair: the baseline "
            "mode)\n"
            "  --bound=N        execution bound for divergence detection\n"
            "  --executions=N   cap on executions\n"
            "  --jobs=N         parallel search with N worker threads\n"
            "  --seconds=S      time budget\n"
            "  --seed=N         PRNG seed\n"
            "  --yieldk=N       process every k-th yield\n"
            "  --por=on|off     sleep-set partial-order reduction "
            "(docs/POR.md;\n"
            "                   default off)\n"
            "  --memory=MODEL   sc (default) | tso | pso: explore under a "
            "weak\n"
            "                   memory model with per-thread store buffers "
            "whose\n"
            "                   flushes are schedule points (docs/MEMORY.md;\n"
            "                   wsq-bug1 needs --memory=tso to manifest)\n"
            "  --replay=SCHED   replay a recorded schedule (an fsmc1:... "
            "string\n"
            "                   or the path of a file holding one)\n\n"
            "robustness options (docs/ROBUSTNESS.md):\n"
            "  --isolate=MODE   off (default) | batch: fork worker "
            "processes so\n"
            "                   workload crashes/hangs are harvested, not "
            "fatal\n"
            "  --batch-size=N   executions per forked worker (default 64)\n"
            "  --hang-timeout=S sandbox watchdog: kill a silent child "
            "after S\n"
            "                   seconds (default 10)\n"
            "  --divergence-retries=N  retries before a mismatching "
            "prefix is\n"
            "                   discarded as a divergence (default 3)\n"
            "  --checkpoint=F   write a resumable checkpoint to F on "
            "SIGINT/\n"
            "                   SIGTERM (and periodically, see below)\n"
            "  --checkpoint-every=K    also checkpoint every K "
            "executions\n"
            "  --resume=F       continue the search recorded in "
            "checkpoint F\n"
            "  --repro-dir=D    write every bug/crash/hang schedule "
            "under D as\n"
            "                   a file --replay accepts\n"
            "  --races=MODE     off (default) | on: report happens-before "
            "data\n"
            "                   races as incidents without changing the "
            "search |\n"
            "                   fatal: stop at the first race like a bug "
            "(docs/\n"
            "                   RACES.md)\n\n"
            "fleet options (docs/FLEET.md):\n"
            "  --fleet=N        supervised multi-process search: a "
            "coordinator\n"
            "                   forks N long-lived workers, re-issues the "
            "units of\n"
            "                   crashed/hung workers and degrades "
            "gracefully\n"
            "                   (mutually exclusive with --jobs/--isolate="
            "batch/\n"
            "                   --random; the fsmc_fleet binary defaults "
            "this)\n"
            "  --fleet-batch=N  execution budget per leased work unit "
            "(default 64)\n"
            "  --fleet-quarantine=K    quarantine a unit after K "
            "consecutive\n"
            "                   fatal attempts as a replayable crash "
            "incident\n"
            "                   (default 3)\n\n"
            "observability options:\n"
            "  --stats-json=F   machine-readable run report to file F "
            "('-' = stdout)\n"
            "  --trace-out=F    Chrome trace_event JSONL trace to file F "
            "(Perfetto-loadable;\n"
            "                   '-' = stdout)\n"
            "  --progress[=S]   live status line to stderr every S seconds "
            "(default 1)\n"
            "  --estimate       online tree-size estimation: progress %% "
            "and projected\n"
            "                   total executions in the progress line and "
            "stats-json\n"
            "                   (docs/OBSERVABILITY.md)\n"
            "  --profile-search schedule-point hotspot profile (per-op/"
            "per-object\n"
            "                   branch points) in stats-json\n"
            "  --report=F       self-contained HTML search report to F "
            "(implies\n"
            "                   --profile-search)\n"
            "  --explain=S      render schedule S (literal, file, or "
            "--repro-dir\n"
            "                   directory) as a thread-by-step timeline\n"
            "  --coverage       track state signatures; adds the coverage "
            "section\n"
            "                   (distinct states, hit rate) to stats-json\n"
            "  --step-timing    fill the per-transition latency histogram\n"
            "  --timing         add the wall-clock timing block (elapsed_ms,\n"
            "                   execs_per_sec) to --stats-json reports\n"
            "  --phase-timing   split wall time into replay/execute/race-"
            "check/\n"
            "                   snapshot buckets (shown under timing with "
            "--timing)\n"
            "  --reuse=on|off   recycle runtime state and pooled fiber "
            "stacks\n"
            "                   across executions (default on; off is the\n"
            "                   measurement baseline, docs/PERFORMANCE.md)\n"
            "  --quiet          suppress the human-readable summary\n"
            "  --verbose        also print the counter and per-op tables\n\n"
            "exit codes: 0 = no bug found, 1 = bug found, 2 = usage "
            "error,\n"
            "            3 = workload crash, 4 = workload hang, "
            "5 = interrupted,\n"
            "            6 = replay divergence, 7 = data race,\n"
            "            8 = corrupt/truncated checkpoint\n";
  return 2;
}

/// Set by the SIGINT/SIGTERM handler; polled by the search at execution
/// boundaries (and by the sandbox watchdog loop).
std::atomic<bool> GInterrupted{false};

extern "C" void onInterrupt(int) {
  // Second signal: the user really wants out. 130 = 128 + SIGINT, the
  // shell convention for death-by-interrupt.
  if (GInterrupted.exchange(true))
    _exit(130);
}

/// Maps a finished run to the documented exit code. Interruption wins
/// (the verdict is provisional -- the search did not finish), then the
/// sandbox incident classes, then the divergence non-verdict, then the
/// plain bug/no-bug split.
int exitCode(const CheckResult &R) {
  if (R.Stats.Interrupted)
    return 5;
  if (R.Kind == Verdict::Crash)
    return 3;
  if (R.Kind == Verdict::Hang)
    return 4;
  if (R.Kind == Verdict::Divergence)
    return 6;
  if (R.Kind == Verdict::DataRace)
    return 7;
  return R.foundBug() ? 1 : 0;
}

/// A --replay operand is either a literal schedule or the path of a file
/// holding one (as written by --repro-dir). Files win the ambiguity by
/// the literal's mandatory "fsmc1:" prefix.
bool loadReplayOperand(const std::string &Operand, std::string &Schedule) {
  if (Operand.rfind("fsmc1:", 0) == 0) {
    Schedule = Operand;
    return true;
  }
  std::ifstream In(Operand);
  if (!In)
    return false;
  std::stringstream SS;
  SS << In.rdbuf();
  Schedule = SS.str();
  // Trim trailing/leading whitespace so a text editor's final newline is
  // harmless.
  while (!Schedule.empty() && std::isspace((unsigned char)Schedule.back()))
    Schedule.pop_back();
  size_t B = 0;
  while (B < Schedule.size() && std::isspace((unsigned char)Schedule[B]))
    ++B;
  Schedule.erase(0, B);
  return true;
}

/// File-name token for a verdict ("safety violation" -> "safety-violation").
std::string verdictSlug(Verdict V) {
  std::string S = verdictName(V);
  for (char &C : S)
    if (C == ' ')
      C = '-';
  return S;
}

/// Writes one repro file per distinct failure of the run: the bug (if
/// any) and every sandbox incident. Each file holds a single schedule
/// line that --replay accepts verbatim. Returns the paths written.
std::vector<std::string> writeReproFiles(const std::string &Dir,
                                         const std::string &Program,
                                         const CheckResult &R) {
  std::vector<std::string> Paths;
  ::mkdir(Dir.c_str(), 0777); // EEXIST is fine; open() below reports others.
  int N = 0;
  auto WriteOne = [&](const BugReport &B) {
    if (B.Schedule.empty())
      return;
    std::string Path = Dir + "/" + Program + "." + verdictSlug(B.Kind) +
                       "." + std::to_string(N++) + ".sched";
    OutStream F = OutStream::open(Path);
    if (!F.valid()) {
      errs() << "warning: cannot write repro file " << Path << "\n";
      return;
    }
    F << B.Schedule << "\n";
    Paths.push_back(std::move(Path));
  };
  if (R.Bug)
    WriteOne(*R.Bug);
  for (const BugReport &B : R.Incidents)
    if (!R.Bug || B.Schedule != R.Bug->Schedule)
      WriteOne(B);
  return Paths;
}

/// Appends "key:  value\n"-style summary lines, padding keys to a fixed
/// column so the block stays aligned.
void summaryLine(std::string &Out, const char *Key, const std::string &Val) {
  std::string K = Key;
  K += ':';
  if (K.size() < 13)
    K += std::string(13 - K.size(), ' ');
  Out += K + Val + "\n";
}

std::string formatSeconds(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3fs", S);
  return Buf;
}

/// Runs one frozen replay of \p Schedule with an explain log attached and
/// prints renderExplainTimeline. Exit code as for a replay of the same
/// schedule.
int explainOne(const TestProgram &Program, const CheckerOptions &Opts,
               const std::string &Schedule) {
  std::vector<ScheduleChoice> Choices;
  if (!decodeSchedule(Schedule, Choices)) {
    errs() << "malformed schedule string\n";
    return 2;
  }
  CheckerOptions Effective = Opts;
  Effective.MaxExecutions = 1;
  Effective.StopOnFirstBug = true;
  Effective.Jobs = 1;
  // In-process always: the explain log borrows runtime state (names) that
  // a sandbox child could not hand back.
  Effective.Isolate = IsolationMode::Off;
  obs::ExplainLog Log;
  Explorer E(Program, Effective);
  E.setExplainLog(&Log);
  E.preloadSchedule(Choices, /*Frozen=*/true);
  CheckResult R = E.run();
  finalizeRaces(R, Effective);
  outs() << obs::renderExplainTimeline(Log, R, Program.Name);
  return exitCode(R);
}

/// The --explain operand is a schedule (literal or file, like --replay)
/// or a --repro-dir directory, in which case every *.sched file inside is
/// explained in name order. Returns the worst exit code seen.
int runExplain(const TestProgram &Program, const CheckerOptions &Opts,
               const std::string &Operand) {
  struct stat St;
  if (::stat(Operand.c_str(), &St) == 0 && S_ISDIR(St.st_mode)) {
    std::vector<std::string> Files;
    if (DIR *D = ::opendir(Operand.c_str())) {
      while (struct dirent *Ent = ::readdir(D)) {
        std::string Name = Ent->d_name;
        if (Name.size() > 6 && Name.rfind(".sched") == Name.size() - 6)
          Files.push_back(Name);
      }
      ::closedir(D);
    }
    std::sort(Files.begin(), Files.end());
    if (Files.empty()) {
      errs() << "no .sched files in " << Operand << "\n";
      return 2;
    }
    int Code = 0;
    bool First = true;
    for (const std::string &Name : Files) {
      std::string Schedule;
      if (!loadReplayOperand(Operand + "/" + Name, Schedule)) {
        errs() << "cannot read " << Operand << "/" << Name << "\n";
        Code = std::max(Code, 2);
        continue;
      }
      if (!First)
        outs() << "\n";
      outs() << "== " << Name << " ==\n";
      Code = std::max(Code, explainOne(Program, Opts, Schedule));
      First = false;
    }
    return Code;
  }
  std::string Schedule;
  if (!loadReplayOperand(Operand, Schedule)) {
    errs() << "cannot read explain operand " << Operand << "\n";
    return 2;
  }
  return explainOne(Program, Opts, Schedule);
}

/// The --verbose counter dump: every nonzero counter and gauge, then the
/// per-op scheduling-point table, then the latency histogram if filled.
void printVerboseTables(const obs::CounterSnapshot &S) {
  TablePrinter Counters({"counter", "value"});
  for (unsigned I = 0; I < unsigned(obs::Counter::NumCounters); ++I)
    if (uint64_t V = S.counter(obs::Counter(I)))
      Counters.addRow({obs::counterName(obs::Counter(I)),
                       TablePrinter::cell(V)});
  for (unsigned I = 0; I < unsigned(obs::Gauge::NumGauges); ++I)
    if (uint64_t V = S.gauge(obs::Gauge(I)))
      Counters.addRow({obs::gaugeName(obs::Gauge(I)),
                       TablePrinter::cell(V)});
  outs() << "\ncounters:\n";
  Counters.print(outs());

  TablePrinter Ops({"op", "schedule points", "contended"});
  for (unsigned I = 0; I <= unsigned(OpKind::VarFence); ++I)
    if (S.Ops[I] || S.Contended[I])
      Ops.addRow({opKindName(OpKind(I)), TablePrinter::cell(S.Ops[I]),
                  TablePrinter::cell(S.Contended[I])});
  outs() << "\nscheduling points by op:\n";
  Ops.print(outs());

  bool AnyLatency = false;
  for (uint64_t V : S.Latency)
    AnyLatency |= V != 0;
  if (AnyLatency) {
    TablePrinter Lat({"step latency (ns)", "count"});
    for (size_t I = 0; I < obs::LatencyBuckets; ++I)
      if (S.Latency[I])
        Lat.addRow({"< " + std::to_string(uint64_t(1) << (I + 1)),
                    TablePrinter::cell(S.Latency[I])});
    outs() << "\nstep latency histogram:\n";
    Lat.print(outs());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  auto Programs = catalogue();
  std::string ProgramName;
  std::string Replay;
  std::string StatsJsonPath;
  std::string TraceOutPath;
  std::string CheckpointPath;
  std::string ResumePath;
  std::string ReproDir;
  std::string ReportPath;
  std::string ExplainOperand;
  CheckerOptions Opts;
  int Iterative = -1;
  bool List = false;
  bool Progress = false;
  double ProgressSeconds = 1.0;
  bool Quiet = false;
  bool Verbose = false;
  bool StepTiming = false;
  bool Timing = false;
  bool PhaseTiming = false;
  bool SeedSet = false;

  for (int I = 1; I < Argc; ++I) {
    const char *V = nullptr;
    if (parseFlag(Argv[I], "--list", &V))
      List = true;
    else if (parseFlag(Argv[I], "--program", &V))
      ProgramName = V;
    else if (parseFlag(Argv[I], "--cb", &V)) {
      Opts.Kind = SearchKind::ContextBounded;
      Opts.ContextBound = std::atoi(V);
    } else if (parseFlag(Argv[I], "--iterative", &V))
      Iterative = std::atoi(V);
    else if (parseFlag(Argv[I], "--random", &V))
      Opts.Kind = SearchKind::RandomWalk;
    else if (parseFlag(Argv[I], "--unfair", &V))
      Opts.Fair = false;
    else if (parseFlag(Argv[I], "--depth", &V))
      Opts.DepthBound = std::strtoull(V, nullptr, 10);
    else if (parseFlag(Argv[I], "--bound", &V))
      Opts.ExecutionBound = std::strtoull(V, nullptr, 10);
    else if (parseFlag(Argv[I], "--executions", &V))
      Opts.MaxExecutions = std::strtoull(V, nullptr, 10);
    else if (parseFlag(Argv[I], "--jobs", &V)) {
      Opts.Jobs = std::atoi(V);
      if (Opts.Jobs < 1) {
        errs() << "--jobs must be >= 1\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--fleet", &V)) {
      Opts.FleetWorkers = std::atoi(V);
      if (Opts.FleetWorkers < 1) {
        errs() << "--fleet must be >= 1\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--fleet-batch", &V)) {
      Opts.FleetBatchSize = std::atoi(V);
      if (Opts.FleetBatchSize < 1) {
        errs() << "--fleet-batch must be >= 1\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--fleet-quarantine", &V)) {
      Opts.FleetQuarantine = std::atoi(V);
      if (Opts.FleetQuarantine < 1) {
        errs() << "--fleet-quarantine must be >= 1\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--seconds", &V))
      Opts.TimeBudgetSeconds = std::atof(V);
    else if (parseFlag(Argv[I], "--seed", &V)) {
      Opts.Seed = std::strtoull(V, nullptr, 10);
      SeedSet = true;
    } else if (parseFlag(Argv[I], "--yieldk", &V))
      Opts.YieldK = std::atoi(V);
    else if (parseFlag(Argv[I], "--por", &V)) {
      if (*V == '\0' || std::strcmp(V, "on") == 0)
        Opts.Por = true;
      else if (std::strcmp(V, "off") == 0)
        Opts.Por = false;
      else {
        errs() << "--por must be 'on' or 'off'\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--memory", &V)) {
      if (std::strcmp(V, "sc") == 0)
        Opts.Memory = MemoryModel::Sc;
      else if (std::strcmp(V, "tso") == 0)
        Opts.Memory = MemoryModel::Tso;
      else if (std::strcmp(V, "pso") == 0)
        Opts.Memory = MemoryModel::Pso;
      else {
        errs() << "--memory must be 'sc', 'tso' or 'pso'\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--replay", &V))
      Replay = V;
    else if (parseFlag(Argv[I], "--isolate", &V)) {
      if (std::strcmp(V, "off") == 0)
        Opts.Isolate = IsolationMode::Off;
      else if (std::strcmp(V, "batch") == 0)
        Opts.Isolate = IsolationMode::Batch;
      else {
        errs() << "--isolate must be 'off' or 'batch'\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--batch-size", &V)) {
      Opts.SandboxBatchSize = std::atoi(V);
      if (Opts.SandboxBatchSize < 1) {
        errs() << "--batch-size must be >= 1\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--hang-timeout", &V)) {
      Opts.HangTimeoutSeconds = std::atof(V);
      if (Opts.HangTimeoutSeconds <= 0) {
        errs() << "--hang-timeout must be > 0\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--races", &V)) {
      if (std::strcmp(V, "off") == 0)
        Opts.Races = RaceCheckMode::Off;
      else if (std::strcmp(V, "on") == 0)
        Opts.Races = RaceCheckMode::On;
      else if (std::strcmp(V, "fatal") == 0)
        Opts.Races = RaceCheckMode::Fatal;
      else {
        errs() << "--races must be 'off', 'on' or 'fatal'\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--divergence-retries", &V)) {
      Opts.DivergenceRetries = std::atoi(V);
      if (Opts.DivergenceRetries < 0) {
        errs() << "--divergence-retries must be >= 0\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--checkpoint", &V)) {
      if (!*V) {
        errs() << "--checkpoint needs a file name\n";
        return usage();
      }
      CheckpointPath = V;
    } else if (parseFlag(Argv[I], "--checkpoint-every", &V)) {
      Opts.CheckpointEvery = std::strtoull(V, nullptr, 10);
      if (!Opts.CheckpointEvery) {
        errs() << "--checkpoint-every must be >= 1\n";
        return usage();
      }
    } else if (parseFlag(Argv[I], "--resume", &V)) {
      if (!*V) {
        errs() << "--resume needs a file name\n";
        return usage();
      }
      ResumePath = V;
    } else if (parseFlag(Argv[I], "--repro-dir", &V)) {
      if (!*V) {
        errs() << "--repro-dir needs a directory\n";
        return usage();
      }
      ReproDir = V;
    } else if (parseFlag(Argv[I], "--stats-json", &V)) {
      if (!*V) {
        errs() << "--stats-json needs a file name (or '-')\n";
        return usage();
      }
      StatsJsonPath = V;
    } else if (parseFlag(Argv[I], "--trace-out", &V)) {
      if (!*V) {
        errs() << "--trace-out needs a file name\n";
        return usage();
      }
      TraceOutPath = V;
    } else if (parseFlag(Argv[I], "--progress", &V)) {
      Progress = true;
      if (*V) {
        ProgressSeconds = std::atof(V);
        if (ProgressSeconds <= 0) {
          errs() << "--progress interval must be > 0\n";
          return usage();
        }
      }
    } else if (parseFlag(Argv[I], "--step-timing", &V))
      StepTiming = true;
    else if (parseFlag(Argv[I], "--timing", &V))
      Timing = true;
    else if (parseFlag(Argv[I], "--phase-timing", &V))
      PhaseTiming = true;
    else if (parseFlag(Argv[I], "--estimate", &V))
      Opts.Estimate = true;
    else if (parseFlag(Argv[I], "--profile-search", &V))
      Opts.ProfileSearch = true;
    else if (parseFlag(Argv[I], "--coverage", &V))
      Opts.TrackCoverage = true;
    else if (parseFlag(Argv[I], "--report", &V)) {
      if (!*V) {
        errs() << "--report needs a file name\n";
        return usage();
      }
      ReportPath = V;
    } else if (parseFlag(Argv[I], "--explain", &V)) {
      if (!*V) {
        errs() << "--explain needs a schedule, file or repro directory\n";
        return usage();
      }
      ExplainOperand = V;
    }
    else if (parseFlag(Argv[I], "--reuse", &V)) {
      if (std::strcmp(V, "on") == 0)
        Opts.ReuseExecutionState = true;
      else if (std::strcmp(V, "off") == 0)
        Opts.ReuseExecutionState = false;
      else {
        errs() << "--reuse must be 'on' or 'off'\n";
        return usage();
      }
    }
    else if (parseFlag(Argv[I], "--quiet", &V))
      Quiet = true;
    else if (parseFlag(Argv[I], "--verbose", &V))
      Verbose = true;
    else {
      errs() << "unknown option: " << Argv[I] << "\n";
      return usage();
    }
  }

  if (List) {
    if (!StatsJsonPath.empty()) {
      // Machine-readable program list, mirroring the stats-json schema.
      std::string Out = "{\n  \"schema\": 1,\n  \"programs\": [";
      bool First = true;
      for (const auto &[Name, _] : Programs) {
        Out += First ? "\n    \"" : ",\n    \"";
        obs::appendJsonEscaped(Out, Name);
        Out += '"';
        First = false;
      }
      Out += "\n  ]\n}\n";
      if (StatsJsonPath == "-") {
        outs() << Out;
      } else {
        OutStream F = OutStream::open(StatsJsonPath);
        if (!F.valid()) {
          errs() << "cannot open " << StatsJsonPath << " for writing\n";
          return 2;
        }
        F << Out;
      }
    } else {
      std::string Out;
      for (const auto &[Name, _] : Programs)
        Out += Name + "\n";
      outs() << Out;
    }
    return 0;
  }
  if (Opts.CheckpointEvery && CheckpointPath.empty()) {
    errs() << "--checkpoint-every needs --checkpoint=FILE to write to\n";
    return usage();
  }

  // Installed as fsmc_fleet, the binary is the supervised-search spelling:
  // default the fleet width to the machine, clamped so a 128-core box does
  // not fork 128 checkers for a toy workload.
  {
    const char *Base = std::strrchr(Argv[0], '/');
    Base = Base ? Base + 1 : Argv[0];
    if (std::strcmp(Base, "fsmc_fleet") == 0 && Opts.FleetWorkers == 0) {
      unsigned HW = std::thread::hardware_concurrency();
      Opts.FleetWorkers = int(std::min(8u, std::max(2u, HW ? HW : 2u)));
    }
  }
  if (Opts.FleetWorkers > 0) {
    if (Opts.Jobs > 1) {
      errs() << "--fleet and --jobs are mutually exclusive (fleet workers "
                "are processes, not threads)\n";
      return usage();
    }
    if (Opts.Isolate == IsolationMode::Batch) {
      errs() << "--fleet already isolates workloads in worker processes; "
                "drop --isolate=batch\n";
      return usage();
    }
    if (Opts.Kind == SearchKind::RandomWalk) {
      errs() << "--fleet needs a deterministic frontier and cannot drive "
                "--random\n";
      return usage();
    }
  }

  // A checkpoint names the program and seed it froze; --resume alone is a
  // complete invocation. Explicit flags still win so a resumed search can
  // e.g. lower its remaining time budget.
  CheckpointState ResumeCK;
  if (!ResumePath.empty()) {
    if (!Replay.empty() || Iterative >= 0) {
      errs() << "--resume cannot be combined with --replay/--iterative\n";
      return usage();
    }
    std::string CkProgram, Err;
    uint64_t CkSeed = 0;
    if (!readCheckpointFile(ResumePath, ResumeCK, CkProgram, CkSeed, Err)) {
      errs() << "cannot resume from " << ResumePath << ": " << Err << "\n";
      // 8 = the file exists but is corrupt/truncated -- distinguishable
      // from plain usage errors so automation can tell "retry with the
      // previous checkpoint" from "fix the command line".
      std::ifstream Probe(ResumePath);
      return Probe ? 8 : 2;
    }
    if (ProgramName.empty())
      ProgramName = CkProgram;
    else if (ProgramName != CkProgram) {
      errs() << "checkpoint " << ResumePath << " is for program '"
             << CkProgram << "', not '" << ProgramName << "'\n";
      return 2;
    }
    if (!SeedSet)
      Opts.Seed = CkSeed;
  }

  auto It = Programs.find(ProgramName);
  if (It == Programs.end()) {
    errs() << "unknown program '" << ProgramName << "' (try --list)\n";
    return usage();
  }
  TestProgram Program = It->second();

  // Explain mode: one frozen replay with the timeline log attached,
  // rendered and done. Search-shaping options (--por, --races, --cb) must
  // match the recording run, which is why they stay honored here.
  if (!ExplainOperand.empty()) {
    if (!Replay.empty() || !ResumePath.empty() || Iterative >= 0) {
      errs() << "--explain cannot be combined with --replay/--resume/"
                "--iterative\n";
      return usage();
    }
    return runExplain(Program, Opts, ExplainOperand);
  }

  // The HTML report is built from the search profile.
  if (!ReportPath.empty())
    Opts.ProfileSearch = true;

  // Observability: one Observer per run, attached through CheckerOptions.
  // Created whenever any consumer of its counters/events is requested.
  std::unique_ptr<obs::JsonlTraceSink> Sink;
  if (!TraceOutPath.empty()) {
    Sink = std::make_unique<obs::JsonlTraceSink>(TraceOutPath);
    if (!Sink->valid()) {
      errs() << "cannot open " << TraceOutPath << " for writing\n";
      return 2;
    }
  }
  std::unique_ptr<obs::Observer> Obs;
  if (Sink || !StatsJsonPath.empty() || Progress || Verbose || StepTiming ||
      PhaseTiming || Opts.Estimate) {
    obs::Observer::Config OC;
    OC.Sink = Sink.get();
    OC.StepTiming = StepTiming;
    OC.PhaseTiming = PhaseTiming;
    Obs = std::make_unique<obs::Observer>(OC);
    Opts.Obs = Obs.get();
  }

  std::unique_ptr<obs::ProgressReporter> Reporter;
  if (Progress && Obs) {
    obs::ProgressReporter::Config PC;
    PC.IntervalSeconds = ProgressSeconds;
    PC.TimeBudgetSeconds = Opts.TimeBudgetSeconds;
    PC.MaxExecutions = Opts.MaxExecutions;
    PC.Jobs = Opts.FleetWorkers > 0 ? Opts.FleetWorkers : Opts.Jobs;
    PC.Estimate = Opts.Estimate;
    Reporter = std::make_unique<obs::ProgressReporter>(*Obs, PC, errs());
  }

  // Interrupt and checkpoint wiring. The handler only sets a flag; the
  // search notices it at the next execution boundary (or sandbox watchdog
  // slice), checkpoints cleanly and returns with Stats.Interrupted. No
  // SA_RESTART: an interrupted syscall should surface promptly.
  Opts.InterruptFlag = &GInterrupted;
  {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = onInterrupt;
    sigemptyset(&SA.sa_mask);
    sigaction(SIGINT, &SA, nullptr);
    sigaction(SIGTERM, &SA, nullptr);
  }
  if (!CheckpointPath.empty() && Opts.CheckpointEvery)
    Opts.CheckpointSink = [&](const CheckpointState &CK) {
      if (!writeCheckpointFile(CheckpointPath, CK, Program.Name, Opts.Seed))
        errs() << "warning: cannot write checkpoint " << CheckpointPath
               << "\n";
    };

  CheckResult R;
  if (!Replay.empty()) {
    std::string Schedule;
    if (!loadReplayOperand(Replay, Schedule)) {
      errs() << "cannot read replay file " << Replay << "\n";
      return 2;
    }
    R = replaySchedule(Program, Opts, Schedule);
  } else if (!ResumePath.empty()) {
    R = resumeCheck(Program, Opts, ResumeCK);
  } else if (Iterative >= 0) {
    IterativeCheckResult IR = iterativeCheck(Program, Opts, Iterative);
    if (!Quiet)
      for (const IterationResult &Step : IR.PerBound) {
        char Buf[128];
        std::snprintf(Buf, sizeof(Buf), "cb=%d: %s (%llu executions, %.2fs)\n",
                      Step.Bound, verdictName(Step.Result.Kind),
                      (unsigned long long)Step.Result.Stats.Executions,
                      Step.Result.Stats.Seconds);
        outs() << Buf;
      }
    R = IR.Final;
  } else {
    R = check(Program, Opts);
  }

  // Quiesce the background output before printing the summary, and seal
  // the trace so it is valid JSON even if the summary path throws.
  Reporter.reset();
  if (Sink)
    Sink->close();

  // An interrupted search hands back its frontier; persist it so the run
  // can be continued with --resume. Without --checkpoint the progress is
  // lost, which the summary calls out.
  bool CheckpointSaved = false;
  if (R.Stats.Interrupted && R.Resume && !CheckpointPath.empty()) {
    if (writeCheckpointFile(CheckpointPath, *R.Resume, Program.Name,
                            Opts.Seed))
      CheckpointSaved = true;
    else
      errs() << "warning: cannot write checkpoint " << CheckpointPath
             << "\n";
  }

  std::vector<std::string> ReproPaths;
  if (!ReproDir.empty())
    ReproPaths = writeReproFiles(ReproDir, Program.Name, R);

  if (!Quiet) {
    std::string Out;
    summaryLine(Out, "program", Program.Name);
    summaryLine(Out, "verdict", verdictName(R.Kind));
    summaryLine(Out, "executions",
                std::to_string(R.Stats.Executions) +
                    (R.Stats.SearchExhausted ? " (search exhausted)" : ""));
    summaryLine(Out, "transitions", std::to_string(R.Stats.Transitions));
    summaryLine(Out, "states", std::to_string(R.Stats.DistinctStates));
    summaryLine(Out, "time", formatSeconds(R.Stats.Seconds));
    summaryLine(Out, "stop reason", obs::stopReason(R));
    std::string Note = obs::budgetNote(R, Opts);
    if (!Note.empty())
      summaryLine(Out, "note", Note);
    if (R.Stats.Interrupted) {
      if (CheckpointSaved)
        summaryLine(Out, "checkpoint",
                    CheckpointPath + " (continue with --resume)");
      else
        summaryLine(Out, "checkpoint",
                    "not saved -- progress lost (pass --checkpoint=FILE)");
    }
    for (const BugReport &B : R.Incidents) {
      if (R.Bug && B.Schedule == R.Bug->Schedule)
        continue; // Already shown as the bug below.
      summaryLine(Out, "incident", B.Message);
      summaryLine(Out, "schedule", B.Schedule);
    }
    if (R.Bug) {
      summaryLine(Out, "bug", R.Bug->Message);
      summaryLine(Out, "schedule", R.Bug->Schedule);
      Out += "trace suffix:\n" + R.Bug->TraceText;
    }
    for (const std::string &P : ReproPaths)
      summaryLine(Out, "repro", P);
    outs() << Out;
    if (Verbose && Obs)
      printVerboseTables(Obs->snapshot());
  }

  if (!StatsJsonPath.empty()) {
    obs::StatsJsonInfo Info;
    Info.Program = Program.Name;
    Info.Options = &Opts;
    Info.Obs = Obs.get();
    Info.Replay = !Replay.empty();
    Info.Timing = Timing;
    if (StatsJsonPath == "-") {
      obs::writeStatsJson(outs(), R, Info);
    } else {
      OutStream F = OutStream::open(StatsJsonPath);
      if (!F.valid()) {
        errs() << "cannot open " << StatsJsonPath << " for writing\n";
        return 2;
      }
      obs::writeStatsJson(F, R, Info);
    }
  }

  if (!ReportPath.empty()) {
    OutStream F = OutStream::open(ReportPath);
    if (!F.valid()) {
      errs() << "cannot open " << ReportPath << " for writing\n";
      return 2;
    }
    F << obs::renderHtmlReport(R, Opts, Program.Name);
  }
  return exitCode(R);
}
