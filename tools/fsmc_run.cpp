//===- tools/fsmc_run.cpp - Command-line checker driver ------------------===//
//
// A small CLI over the checker, in the spirit of the chess.exe driver:
// pick a registered workload (or one of the seeded-bug variants), choose
// a search strategy, run, and print the verdict plus the replayable
// schedule of any counterexample.
//
//   fsmc_run --list
//   fsmc_run --program=wsq-bug1 --cb=2
//   fsmc_run --program=dining-livelock --bound=300
//   fsmc_run --program=minikernel --random --executions=100
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "core/IterativeCheck.h"
#include "core/Schedule.h"
#include "workloads/Channels.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Peterson.h"
#include "workloads/Promise.h"
#include "workloads/SpinWait.h"
#include "workloads/WorkStealQueue.h"
#include "workloads/WorkerGroup.h"
#include "workloads/WorkloadRegistry.h"
#include "workloads/minikernel/Kernel.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>

using namespace fsmc;

namespace {

/// Named test programs available to the CLI: every registry row plus the
/// seeded-bug variants the paper's Table 3 and Section 4.3 evaluate.
std::map<std::string, std::function<TestProgram()>> catalogue() {
  std::map<std::string, std::function<TestProgram()>> C;
  for (const RegisteredWorkload &W : allWorkloads()) {
    std::string Key;
    for (char Ch : W.Name)
      Key += Ch == ' ' ? '-' : char(std::tolower(Ch));
    C[Key] = W.Make;
  }
  C["dining-livelock"] = [] {
    DiningConfig D;
    D.Philosophers = 2;
    D.Kind = DiningConfig::Variant::TryLockRetry;
    return makeDiningProgram(D);
  };
  C["dining-deadlock"] = [] {
    DiningConfig D;
    D.Philosophers = 2;
    D.Kind = DiningConfig::Variant::DeadlockProne;
    return makeDiningProgram(D);
  };
  for (int B = 1; B <= 3; ++B)
    C["wsq-bug" + std::to_string(B)] = [B] {
      WsqConfig W;
      W.Stealers = 1;
      W.Tasks = 2;
      W.Bug = WsqBug(B);
      return makeWsqProgram(W);
    };
  for (int B = 1; B <= 4; ++B)
    C["channels-bug" + std::to_string(B)] = [B] {
      ChannelsConfig Ch;
      Ch.Bug = ChannelBug(B);
      if (Ch.Bug == ChannelBug::LostSignal) {
        Ch.Producers = 2;
        Ch.Consumers = 1;
      }
      if (Ch.Bug == ChannelBug::RacyClose ||
          Ch.Bug == ChannelBug::BadCloseFix)
        Ch.CloseAfter = 1;
      return makeChannelsProgram(Ch);
    };
  C["promise-livelock"] = [] {
    PromiseConfig P;
    P.StaleReadBug = true;
    return makePromiseProgram(P);
  };
  C["workergroup-gs"] = [] {
    WorkerGroupConfig W;
    return makeWorkerGroupProgram(W);
  };
  C["spinwait-noyield"] = [] {
    SpinWaitConfig S;
    S.WithYield = false;
    return makeSpinWaitProgram(S);
  };
  C["peterson"] = [] { return makePetersonProgram(PetersonConfig()); };
  C["peterson-livelock"] = [] {
    PetersonConfig P;
    P.Kind = PetersonConfig::Variant::NoTurn;
    return makePetersonProgram(P);
  };
  C["minikernel"] = [] {
    return minikernel::makeKernelBootProgram(minikernel::KernelConfig());
  };
  return C;
}

bool parseFlag(const char *Arg, const char *Name, const char **Value) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0)
    return false;
  if (Arg[Len] == '\0') {
    *Value = "";
    return true;
  }
  if (Arg[Len] == '=') {
    *Value = Arg + Len + 1;
    return true;
  }
  return false;
}

int usage() {
  std::printf(
      "usage: fsmc_run --program=<name> [options]\n"
      "       fsmc_run --list\n\n"
      "options:\n"
      "  --cb=N           context-bounded search with N preemptions\n"
      "  --iterative=N    iterative context bounding up to N\n"
      "  --random         random-walk search\n"
      "  --unfair         disable the fair scheduler\n"
      "  --depth=N        depth bound (with --unfair: the baseline mode)\n"
      "  --bound=N        execution bound for divergence detection\n"
      "  --executions=N   cap on executions\n"
      "  --jobs=N         parallel search with N worker threads\n"
      "  --seconds=S      time budget\n"
      "  --seed=N         PRNG seed\n"
      "  --yieldk=N       process every k-th yield\n"
      "  --por            experimental sleep-set reduction\n"
      "  --replay=SCHED   replay a recorded schedule (fsmc1:...)\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  auto Programs = catalogue();
  std::string ProgramName;
  std::string Replay;
  CheckerOptions Opts;
  int Iterative = -1;
  bool List = false;

  for (int I = 1; I < Argc; ++I) {
    const char *V = nullptr;
    if (parseFlag(Argv[I], "--list", &V))
      List = true;
    else if (parseFlag(Argv[I], "--program", &V))
      ProgramName = V;
    else if (parseFlag(Argv[I], "--cb", &V)) {
      Opts.Kind = SearchKind::ContextBounded;
      Opts.ContextBound = std::atoi(V);
    } else if (parseFlag(Argv[I], "--iterative", &V))
      Iterative = std::atoi(V);
    else if (parseFlag(Argv[I], "--random", &V))
      Opts.Kind = SearchKind::RandomWalk;
    else if (parseFlag(Argv[I], "--unfair", &V))
      Opts.Fair = false;
    else if (parseFlag(Argv[I], "--depth", &V))
      Opts.DepthBound = std::strtoull(V, nullptr, 10);
    else if (parseFlag(Argv[I], "--bound", &V))
      Opts.ExecutionBound = std::strtoull(V, nullptr, 10);
    else if (parseFlag(Argv[I], "--executions", &V))
      Opts.MaxExecutions = std::strtoull(V, nullptr, 10);
    else if (parseFlag(Argv[I], "--jobs", &V)) {
      Opts.Jobs = std::atoi(V);
      if (Opts.Jobs < 1) {
        std::fprintf(stderr, "--jobs must be >= 1\n");
        return usage();
      }
    }
    else if (parseFlag(Argv[I], "--seconds", &V))
      Opts.TimeBudgetSeconds = std::atof(V);
    else if (parseFlag(Argv[I], "--seed", &V))
      Opts.Seed = std::strtoull(V, nullptr, 10);
    else if (parseFlag(Argv[I], "--yieldk", &V))
      Opts.YieldK = std::atoi(V);
    else if (parseFlag(Argv[I], "--por", &V))
      Opts.SleepSets = true;
    else if (parseFlag(Argv[I], "--replay", &V))
      Replay = V;
    else {
      std::fprintf(stderr, "unknown option: %s\n", Argv[I]);
      return usage();
    }
  }

  if (List) {
    for (const auto &[Name, _] : Programs)
      std::printf("%s\n", Name.c_str());
    return 0;
  }
  auto It = Programs.find(ProgramName);
  if (It == Programs.end()) {
    std::fprintf(stderr, "unknown program '%s' (try --list)\n",
                 ProgramName.c_str());
    return usage();
  }
  TestProgram Program = It->second();

  CheckResult R;
  if (!Replay.empty()) {
    R = replaySchedule(Program, Opts, Replay);
  } else if (Iterative >= 0) {
    IterativeCheckResult IR = iterativeCheck(Program, Opts, Iterative);
    for (const IterationResult &Step : IR.PerBound)
      std::printf("cb=%d: %s (%llu executions, %.2fs)\n", Step.Bound,
                  verdictName(Step.Result.Kind),
                  (unsigned long long)Step.Result.Stats.Executions,
                  Step.Result.Stats.Seconds);
    R = IR.Final;
  } else {
    R = check(Program, Opts);
  }

  std::printf("program:     %s\n", Program.Name.c_str());
  std::printf("verdict:     %s\n", verdictName(R.Kind));
  std::printf("executions:  %llu%s\n",
              (unsigned long long)R.Stats.Executions,
              R.Stats.SearchExhausted ? " (search exhausted)" : "");
  std::printf("transitions: %llu\n", (unsigned long long)R.Stats.Transitions);
  std::printf("states:      %llu\n",
              (unsigned long long)R.Stats.DistinctStates);
  std::printf("time:        %.3fs\n", R.Stats.Seconds);
  if (R.Bug) {
    std::printf("bug:         %s\n", R.Bug->Message.c_str());
    std::printf("schedule:    %s\n", R.Bug->Schedule.c_str());
    std::printf("trace suffix:\n%s", R.Bug->TraceText.c_str());
  }
  return R.foundBug() ? 1 : 0;
}
