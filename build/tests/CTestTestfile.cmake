# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fsmc_support_tests[1]_include.cmake")
include("/root/repo/build/tests/fsmc_runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/fsmc_core_tests[1]_include.cmake")
include("/root/repo/build/tests/fsmc_sync_tests[1]_include.cmake")
include("/root/repo/build/tests/fsmc_state_tests[1]_include.cmake")
include("/root/repo/build/tests/fsmc_workload_tests[1]_include.cmake")
