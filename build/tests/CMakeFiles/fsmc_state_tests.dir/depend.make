# Empty dependencies file for fsmc_state_tests.
# This may be replaced when dependencies are built.
