file(REMOVE_RECURSE
  "CMakeFiles/fsmc_state_tests.dir/state/StateTest.cpp.o"
  "CMakeFiles/fsmc_state_tests.dir/state/StateTest.cpp.o.d"
  "fsmc_state_tests"
  "fsmc_state_tests.pdb"
  "fsmc_state_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmc_state_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
