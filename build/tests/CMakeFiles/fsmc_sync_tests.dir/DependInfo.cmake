
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sync/AtomicTest.cpp" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/AtomicTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/AtomicTest.cpp.o.d"
  "/root/repo/tests/sync/BarrierTest.cpp" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/BarrierTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/BarrierTest.cpp.o.d"
  "/root/repo/tests/sync/CondVarTest.cpp" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/CondVarTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/CondVarTest.cpp.o.d"
  "/root/repo/tests/sync/EventTest.cpp" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/EventTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/EventTest.cpp.o.d"
  "/root/repo/tests/sync/MutexTest.cpp" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/MutexTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/MutexTest.cpp.o.d"
  "/root/repo/tests/sync/RwLockTest.cpp" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/RwLockTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/RwLockTest.cpp.o.d"
  "/root/repo/tests/sync/SemaphoreTest.cpp" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/SemaphoreTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_sync_tests.dir/sync/SemaphoreTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fsmc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fsmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
