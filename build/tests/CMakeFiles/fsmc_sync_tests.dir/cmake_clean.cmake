file(REMOVE_RECURSE
  "CMakeFiles/fsmc_sync_tests.dir/sync/AtomicTest.cpp.o"
  "CMakeFiles/fsmc_sync_tests.dir/sync/AtomicTest.cpp.o.d"
  "CMakeFiles/fsmc_sync_tests.dir/sync/BarrierTest.cpp.o"
  "CMakeFiles/fsmc_sync_tests.dir/sync/BarrierTest.cpp.o.d"
  "CMakeFiles/fsmc_sync_tests.dir/sync/CondVarTest.cpp.o"
  "CMakeFiles/fsmc_sync_tests.dir/sync/CondVarTest.cpp.o.d"
  "CMakeFiles/fsmc_sync_tests.dir/sync/EventTest.cpp.o"
  "CMakeFiles/fsmc_sync_tests.dir/sync/EventTest.cpp.o.d"
  "CMakeFiles/fsmc_sync_tests.dir/sync/MutexTest.cpp.o"
  "CMakeFiles/fsmc_sync_tests.dir/sync/MutexTest.cpp.o.d"
  "CMakeFiles/fsmc_sync_tests.dir/sync/RwLockTest.cpp.o"
  "CMakeFiles/fsmc_sync_tests.dir/sync/RwLockTest.cpp.o.d"
  "CMakeFiles/fsmc_sync_tests.dir/sync/SemaphoreTest.cpp.o"
  "CMakeFiles/fsmc_sync_tests.dir/sync/SemaphoreTest.cpp.o.d"
  "fsmc_sync_tests"
  "fsmc_sync_tests.pdb"
  "fsmc_sync_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmc_sync_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
