# Empty compiler generated dependencies file for fsmc_sync_tests.
# This may be replaced when dependencies are built.
