
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/HashingTest.cpp" "tests/CMakeFiles/fsmc_support_tests.dir/support/HashingTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_support_tests.dir/support/HashingTest.cpp.o.d"
  "/root/repo/tests/support/TablePrinterTest.cpp" "tests/CMakeFiles/fsmc_support_tests.dir/support/TablePrinterTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_support_tests.dir/support/TablePrinterTest.cpp.o.d"
  "/root/repo/tests/support/ThreadSetTest.cpp" "tests/CMakeFiles/fsmc_support_tests.dir/support/ThreadSetTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_support_tests.dir/support/ThreadSetTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fsmc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fsmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
