file(REMOVE_RECURSE
  "CMakeFiles/fsmc_support_tests.dir/support/HashingTest.cpp.o"
  "CMakeFiles/fsmc_support_tests.dir/support/HashingTest.cpp.o.d"
  "CMakeFiles/fsmc_support_tests.dir/support/TablePrinterTest.cpp.o"
  "CMakeFiles/fsmc_support_tests.dir/support/TablePrinterTest.cpp.o.d"
  "CMakeFiles/fsmc_support_tests.dir/support/ThreadSetTest.cpp.o"
  "CMakeFiles/fsmc_support_tests.dir/support/ThreadSetTest.cpp.o.d"
  "fsmc_support_tests"
  "fsmc_support_tests.pdb"
  "fsmc_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmc_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
