# Empty dependencies file for fsmc_support_tests.
# This may be replaced when dependencies are built.
