
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/FiberTest.cpp" "tests/CMakeFiles/fsmc_runtime_tests.dir/runtime/FiberTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_runtime_tests.dir/runtime/FiberTest.cpp.o.d"
  "/root/repo/tests/runtime/RuntimeTest.cpp" "tests/CMakeFiles/fsmc_runtime_tests.dir/runtime/RuntimeTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_runtime_tests.dir/runtime/RuntimeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fsmc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fsmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
