# Empty compiler generated dependencies file for fsmc_runtime_tests.
# This may be replaced when dependencies are built.
