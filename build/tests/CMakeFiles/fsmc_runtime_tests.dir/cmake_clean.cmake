file(REMOVE_RECURSE
  "CMakeFiles/fsmc_runtime_tests.dir/runtime/FiberTest.cpp.o"
  "CMakeFiles/fsmc_runtime_tests.dir/runtime/FiberTest.cpp.o.d"
  "CMakeFiles/fsmc_runtime_tests.dir/runtime/RuntimeTest.cpp.o"
  "CMakeFiles/fsmc_runtime_tests.dir/runtime/RuntimeTest.cpp.o.d"
  "fsmc_runtime_tests"
  "fsmc_runtime_tests.pdb"
  "fsmc_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmc_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
