
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/ExplorerTest.cpp" "tests/CMakeFiles/fsmc_core_tests.dir/core/ExplorerTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_core_tests.dir/core/ExplorerTest.cpp.o.d"
  "/root/repo/tests/core/FairSchedulerTest.cpp" "tests/CMakeFiles/fsmc_core_tests.dir/core/FairSchedulerTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_core_tests.dir/core/FairSchedulerTest.cpp.o.d"
  "/root/repo/tests/core/IterativeCheckTest.cpp" "tests/CMakeFiles/fsmc_core_tests.dir/core/IterativeCheckTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_core_tests.dir/core/IterativeCheckTest.cpp.o.d"
  "/root/repo/tests/core/LivenessTest.cpp" "tests/CMakeFiles/fsmc_core_tests.dir/core/LivenessTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_core_tests.dir/core/LivenessTest.cpp.o.d"
  "/root/repo/tests/core/PorTest.cpp" "tests/CMakeFiles/fsmc_core_tests.dir/core/PorTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_core_tests.dir/core/PorTest.cpp.o.d"
  "/root/repo/tests/core/PriorityGraphTest.cpp" "tests/CMakeFiles/fsmc_core_tests.dir/core/PriorityGraphTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_core_tests.dir/core/PriorityGraphTest.cpp.o.d"
  "/root/repo/tests/core/ScheduleTest.cpp" "tests/CMakeFiles/fsmc_core_tests.dir/core/ScheduleTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_core_tests.dir/core/ScheduleTest.cpp.o.d"
  "/root/repo/tests/core/TheoremTest.cpp" "tests/CMakeFiles/fsmc_core_tests.dir/core/TheoremTest.cpp.o" "gcc" "tests/CMakeFiles/fsmc_core_tests.dir/core/TheoremTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fsmc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fsmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
