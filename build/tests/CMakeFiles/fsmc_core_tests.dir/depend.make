# Empty dependencies file for fsmc_core_tests.
# This may be replaced when dependencies are built.
