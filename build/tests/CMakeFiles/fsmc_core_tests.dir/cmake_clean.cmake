file(REMOVE_RECURSE
  "CMakeFiles/fsmc_core_tests.dir/core/ExplorerTest.cpp.o"
  "CMakeFiles/fsmc_core_tests.dir/core/ExplorerTest.cpp.o.d"
  "CMakeFiles/fsmc_core_tests.dir/core/FairSchedulerTest.cpp.o"
  "CMakeFiles/fsmc_core_tests.dir/core/FairSchedulerTest.cpp.o.d"
  "CMakeFiles/fsmc_core_tests.dir/core/IterativeCheckTest.cpp.o"
  "CMakeFiles/fsmc_core_tests.dir/core/IterativeCheckTest.cpp.o.d"
  "CMakeFiles/fsmc_core_tests.dir/core/LivenessTest.cpp.o"
  "CMakeFiles/fsmc_core_tests.dir/core/LivenessTest.cpp.o.d"
  "CMakeFiles/fsmc_core_tests.dir/core/PorTest.cpp.o"
  "CMakeFiles/fsmc_core_tests.dir/core/PorTest.cpp.o.d"
  "CMakeFiles/fsmc_core_tests.dir/core/PriorityGraphTest.cpp.o"
  "CMakeFiles/fsmc_core_tests.dir/core/PriorityGraphTest.cpp.o.d"
  "CMakeFiles/fsmc_core_tests.dir/core/ScheduleTest.cpp.o"
  "CMakeFiles/fsmc_core_tests.dir/core/ScheduleTest.cpp.o.d"
  "CMakeFiles/fsmc_core_tests.dir/core/TheoremTest.cpp.o"
  "CMakeFiles/fsmc_core_tests.dir/core/TheoremTest.cpp.o.d"
  "fsmc_core_tests"
  "fsmc_core_tests.pdb"
  "fsmc_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmc_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
