file(REMOVE_RECURSE
  "CMakeFiles/fsmc_workload_tests.dir/workloads/KernelTest.cpp.o"
  "CMakeFiles/fsmc_workload_tests.dir/workloads/KernelTest.cpp.o.d"
  "CMakeFiles/fsmc_workload_tests.dir/workloads/PetersonTest.cpp.o"
  "CMakeFiles/fsmc_workload_tests.dir/workloads/PetersonTest.cpp.o.d"
  "CMakeFiles/fsmc_workload_tests.dir/workloads/WorkloadTest.cpp.o"
  "CMakeFiles/fsmc_workload_tests.dir/workloads/WorkloadTest.cpp.o.d"
  "fsmc_workload_tests"
  "fsmc_workload_tests.pdb"
  "fsmc_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmc_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
