# Empty dependencies file for fsmc_workload_tests.
# This may be replaced when dependencies are built.
