# Empty compiler generated dependencies file for ablation_yieldk.
# This may be replaced when dependencies are built.
