file(REMOVE_RECURSE
  "CMakeFiles/ablation_yieldk.dir/ablation_yieldk.cpp.o"
  "CMakeFiles/ablation_yieldk.dir/ablation_yieldk.cpp.o.d"
  "ablation_yieldk"
  "ablation_yieldk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_yieldk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
