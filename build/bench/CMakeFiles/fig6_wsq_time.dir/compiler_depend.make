# Empty compiler generated dependencies file for fig6_wsq_time.
# This may be replaced when dependencies are built.
