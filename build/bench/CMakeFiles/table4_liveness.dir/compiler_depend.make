# Empty compiler generated dependencies file for table4_liveness.
# This may be replaced when dependencies are built.
