file(REMOVE_RECURSE
  "CMakeFiles/table4_liveness.dir/table4_liveness.cpp.o"
  "CMakeFiles/table4_liveness.dir/table4_liveness.cpp.o.d"
  "table4_liveness"
  "table4_liveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
