file(REMOVE_RECURSE
  "CMakeFiles/table3_bugs.dir/table3_bugs.cpp.o"
  "CMakeFiles/table3_bugs.dir/table3_bugs.cpp.o.d"
  "table3_bugs"
  "table3_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
