# Empty dependencies file for table3_bugs.
# This may be replaced when dependencies are built.
