# Empty dependencies file for table2_coverage.
# This may be replaced when dependencies are built.
