file(REMOVE_RECURSE
  "CMakeFiles/table1_programs.dir/table1_programs.cpp.o"
  "CMakeFiles/table1_programs.dir/table1_programs.cpp.o.d"
  "table1_programs"
  "table1_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
