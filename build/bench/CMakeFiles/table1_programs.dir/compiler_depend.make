# Empty compiler generated dependencies file for table1_programs.
# This may be replaced when dependencies are built.
