file(REMOVE_RECURSE
  "CMakeFiles/fig2_nonterminating.dir/fig2_nonterminating.cpp.o"
  "CMakeFiles/fig2_nonterminating.dir/fig2_nonterminating.cpp.o.d"
  "fig2_nonterminating"
  "fig2_nonterminating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_nonterminating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
