# Empty dependencies file for fig2_nonterminating.
# This may be replaced when dependencies are built.
