file(REMOVE_RECURSE
  "CMakeFiles/fig5_dining_time.dir/fig5_dining_time.cpp.o"
  "CMakeFiles/fig5_dining_time.dir/fig5_dining_time.cpp.o.d"
  "fig5_dining_time"
  "fig5_dining_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dining_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
