# Empty dependencies file for fig5_dining_time.
# This may be replaced when dependencies are built.
