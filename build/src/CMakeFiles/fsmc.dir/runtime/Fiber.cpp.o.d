src/CMakeFiles/fsmc.dir/runtime/Fiber.cpp.o: \
 /root/repo/src/runtime/Fiber.cpp /usr/include/stdc-predef.h \
 /root/repo/src/runtime/Fiber.h /usr/include/c++/12/cstddef \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h \
 /usr/include/ucontext.h \
 /usr/include/x86_64-linux-gnu/bits/indirect-return.h \
 /usr/include/x86_64-linux-gnu/sys/ucontext.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/types/sigset_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__sigset_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/stack_t.h \
 /usr/include/c++/12/cassert /usr/include/assert.h \
 /usr/include/c++/12/cstdint \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h \
 /usr/include/x86_64-linux-gnu/sys/mman.h \
 /usr/include/x86_64-linux-gnu/bits/mman.h \
 /usr/include/x86_64-linux-gnu/bits/mman-map-flags-generic.h \
 /usr/include/x86_64-linux-gnu/bits/mman-linux.h \
 /usr/include/x86_64-linux-gnu/bits/mman-shared.h \
 /usr/include/x86_64-linux-gnu/bits/mman_ext.h /usr/include/unistd.h \
 /usr/include/x86_64-linux-gnu/bits/posix_opt.h \
 /usr/include/x86_64-linux-gnu/bits/environments.h \
 /usr/include/x86_64-linux-gnu/bits/confname.h \
 /usr/include/x86_64-linux-gnu/bits/getopt_posix.h \
 /usr/include/x86_64-linux-gnu/bits/getopt_core.h \
 /usr/include/x86_64-linux-gnu/bits/unistd_ext.h \
 /usr/include/linux/close_range.h
