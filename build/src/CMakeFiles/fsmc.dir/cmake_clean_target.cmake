file(REMOVE_RECURSE
  "libfsmc.a"
)
