# Empty dependencies file for fsmc.
# This may be replaced when dependencies are built.
