
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Checker.cpp" "src/CMakeFiles/fsmc.dir/core/Checker.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/core/Checker.cpp.o.d"
  "/root/repo/src/core/Explorer.cpp" "src/CMakeFiles/fsmc.dir/core/Explorer.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/core/Explorer.cpp.o.d"
  "/root/repo/src/core/FairScheduler.cpp" "src/CMakeFiles/fsmc.dir/core/FairScheduler.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/core/FairScheduler.cpp.o.d"
  "/root/repo/src/core/IterativeCheck.cpp" "src/CMakeFiles/fsmc.dir/core/IterativeCheck.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/core/IterativeCheck.cpp.o.d"
  "/root/repo/src/core/LivenessMonitor.cpp" "src/CMakeFiles/fsmc.dir/core/LivenessMonitor.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/core/LivenessMonitor.cpp.o.d"
  "/root/repo/src/core/PriorityGraph.cpp" "src/CMakeFiles/fsmc.dir/core/PriorityGraph.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/core/PriorityGraph.cpp.o.d"
  "/root/repo/src/core/Schedule.cpp" "src/CMakeFiles/fsmc.dir/core/Schedule.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/core/Schedule.cpp.o.d"
  "/root/repo/src/core/SearchStrategy.cpp" "src/CMakeFiles/fsmc.dir/core/SearchStrategy.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/core/SearchStrategy.cpp.o.d"
  "/root/repo/src/core/Trace.cpp" "src/CMakeFiles/fsmc.dir/core/Trace.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/core/Trace.cpp.o.d"
  "/root/repo/src/runtime/Fiber.cpp" "src/CMakeFiles/fsmc.dir/runtime/Fiber.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/runtime/Fiber.cpp.o.d"
  "/root/repo/src/runtime/PendingOp.cpp" "src/CMakeFiles/fsmc.dir/runtime/PendingOp.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/runtime/PendingOp.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/CMakeFiles/fsmc.dir/runtime/Runtime.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/runtime/Runtime.cpp.o.d"
  "/root/repo/src/state/CoverageTracker.cpp" "src/CMakeFiles/fsmc.dir/state/CoverageTracker.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/state/CoverageTracker.cpp.o.d"
  "/root/repo/src/state/HeapCanonicalizer.cpp" "src/CMakeFiles/fsmc.dir/state/HeapCanonicalizer.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/state/HeapCanonicalizer.cpp.o.d"
  "/root/repo/src/state/StateBuilder.cpp" "src/CMakeFiles/fsmc.dir/state/StateBuilder.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/state/StateBuilder.cpp.o.d"
  "/root/repo/src/support/TablePrinter.cpp" "src/CMakeFiles/fsmc.dir/support/TablePrinter.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/support/TablePrinter.cpp.o.d"
  "/root/repo/src/support/ThreadSet.cpp" "src/CMakeFiles/fsmc.dir/support/ThreadSet.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/support/ThreadSet.cpp.o.d"
  "/root/repo/src/support/Xorshift.cpp" "src/CMakeFiles/fsmc.dir/support/Xorshift.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/support/Xorshift.cpp.o.d"
  "/root/repo/src/sync/Barrier.cpp" "src/CMakeFiles/fsmc.dir/sync/Barrier.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/sync/Barrier.cpp.o.d"
  "/root/repo/src/sync/CondVar.cpp" "src/CMakeFiles/fsmc.dir/sync/CondVar.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/sync/CondVar.cpp.o.d"
  "/root/repo/src/sync/Event.cpp" "src/CMakeFiles/fsmc.dir/sync/Event.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/sync/Event.cpp.o.d"
  "/root/repo/src/sync/Mutex.cpp" "src/CMakeFiles/fsmc.dir/sync/Mutex.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/sync/Mutex.cpp.o.d"
  "/root/repo/src/sync/RwLock.cpp" "src/CMakeFiles/fsmc.dir/sync/RwLock.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/sync/RwLock.cpp.o.d"
  "/root/repo/src/sync/Semaphore.cpp" "src/CMakeFiles/fsmc.dir/sync/Semaphore.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/sync/Semaphore.cpp.o.d"
  "/root/repo/src/sync/TestThread.cpp" "src/CMakeFiles/fsmc.dir/sync/TestThread.cpp.o" "gcc" "src/CMakeFiles/fsmc.dir/sync/TestThread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
