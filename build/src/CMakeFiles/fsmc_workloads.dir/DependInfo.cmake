
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Ape.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/Ape.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/Ape.cpp.o.d"
  "/root/repo/src/workloads/Channels.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/Channels.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/Channels.cpp.o.d"
  "/root/repo/src/workloads/DiningPhilosophers.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/DiningPhilosophers.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/DiningPhilosophers.cpp.o.d"
  "/root/repo/src/workloads/Peterson.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/Peterson.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/Peterson.cpp.o.d"
  "/root/repo/src/workloads/Promise.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/Promise.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/Promise.cpp.o.d"
  "/root/repo/src/workloads/SpinWait.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/SpinWait.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/SpinWait.cpp.o.d"
  "/root/repo/src/workloads/WorkStealQueue.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/WorkStealQueue.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/WorkStealQueue.cpp.o.d"
  "/root/repo/src/workloads/WorkerGroup.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/WorkerGroup.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/WorkerGroup.cpp.o.d"
  "/root/repo/src/workloads/WorkloadRegistry.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/WorkloadRegistry.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/WorkloadRegistry.cpp.o.d"
  "/root/repo/src/workloads/minikernel/Ipc.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Ipc.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Ipc.cpp.o.d"
  "/root/repo/src/workloads/minikernel/Kernel.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Kernel.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Kernel.cpp.o.d"
  "/root/repo/src/workloads/minikernel/Services.cpp" "src/CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Services.cpp.o" "gcc" "src/CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fsmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
