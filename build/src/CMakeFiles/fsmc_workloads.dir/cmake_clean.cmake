file(REMOVE_RECURSE
  "CMakeFiles/fsmc_workloads.dir/workloads/Ape.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/Ape.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/Channels.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/Channels.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/DiningPhilosophers.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/DiningPhilosophers.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/Peterson.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/Peterson.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/Promise.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/Promise.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/SpinWait.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/SpinWait.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/WorkStealQueue.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/WorkStealQueue.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/WorkerGroup.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/WorkerGroup.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/WorkloadRegistry.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/WorkloadRegistry.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Ipc.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Ipc.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Kernel.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Kernel.cpp.o.d"
  "CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Services.cpp.o"
  "CMakeFiles/fsmc_workloads.dir/workloads/minikernel/Services.cpp.o.d"
  "libfsmc_workloads.a"
  "libfsmc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
