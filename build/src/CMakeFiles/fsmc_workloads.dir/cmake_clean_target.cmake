file(REMOVE_RECURSE
  "libfsmc_workloads.a"
)
