# Empty compiler generated dependencies file for fsmc_workloads.
# This may be replaced when dependencies are built.
