# Empty compiler generated dependencies file for livelock_dining.
# This may be replaced when dependencies are built.
