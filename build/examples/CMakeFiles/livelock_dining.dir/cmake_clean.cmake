file(REMOVE_RECURSE
  "CMakeFiles/livelock_dining.dir/livelock_dining.cpp.o"
  "CMakeFiles/livelock_dining.dir/livelock_dining.cpp.o.d"
  "livelock_dining"
  "livelock_dining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livelock_dining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
