file(REMOVE_RECURSE
  "CMakeFiles/minios_boot.dir/minios_boot.cpp.o"
  "CMakeFiles/minios_boot.dir/minios_boot.cpp.o.d"
  "minios_boot"
  "minios_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minios_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
