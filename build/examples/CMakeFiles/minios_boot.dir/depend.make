# Empty dependencies file for minios_boot.
# This may be replaced when dependencies are built.
