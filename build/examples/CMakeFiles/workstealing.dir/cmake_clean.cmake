file(REMOVE_RECURSE
  "CMakeFiles/workstealing.dir/workstealing.cpp.o"
  "CMakeFiles/workstealing.dir/workstealing.cpp.o.d"
  "workstealing"
  "workstealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workstealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
