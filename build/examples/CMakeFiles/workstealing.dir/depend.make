# Empty dependencies file for workstealing.
# This may be replaced when dependencies are built.
