file(REMOVE_RECURSE
  "CMakeFiles/fsmc_run.dir/fsmc_run.cpp.o"
  "CMakeFiles/fsmc_run.dir/fsmc_run.cpp.o.d"
  "fsmc_run"
  "fsmc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
