# Empty dependencies file for fsmc_run.
# This may be replaced when dependencies are built.
