//===- tests/state/StateTest.cpp ------------------------------------------===//

#include "state/StateBuilder.h"

#include "state/CoverageTracker.h"
#include "state/HeapCanonicalizer.h"

#include <gtest/gtest.h>

using namespace fsmc;

TEST(HeapCanonicalizer, NullIsZero) {
  HeapCanonicalizer C;
  EXPECT_EQ(C.idOf(nullptr), 0u);
  EXPECT_EQ(C.distinctPointers(), 0u);
}

TEST(HeapCanonicalizer, FirstVisitOrderNames) {
  HeapCanonicalizer C;
  int A, B;
  EXPECT_EQ(C.idOf(&A), 1u);
  EXPECT_EQ(C.idOf(&B), 2u);
  EXPECT_EQ(C.idOf(&A), 1u) << "revisits keep their name";
  EXPECT_TRUE(C.seen(&A));
  EXPECT_FALSE(C.seen(&C));
  EXPECT_EQ(C.distinctPointers(), 2u);
}

TEST(HeapCanonicalizer, EquivalentHeapsHashEqual) {
  // The Section 4.2.1 requirement: two heaps with the same shape but
  // different addresses (different executions of the allocator) must get
  // the same signature.
  auto signatureOf = [](const std::vector<int *> &Objects) {
    StateBuilder B;
    for (int *P : Objects) {
      B.addPointer(P);
      if (P)
        B.addU64(uint64_t(*P));
    }
    return B.digest();
  };
  int X1 = 7, Y1 = 9;
  int X2 = 7, Y2 = 9;
  // Same traversal order, same contents, different addresses.
  EXPECT_EQ(signatureOf({&X1, &Y1, &X1}), signatureOf({&X2, &Y2, &X2}));
  // Different aliasing structure must differ.
  EXPECT_NE(signatureOf({&X1, &Y1, &X1}), signatureOf({&X1, &Y1, &Y1}));
}

TEST(StateBuilder, SeparatorsPreventFieldAliasing) {
  StateBuilder A;
  A.addU64(1);
  A.addSeparator();
  A.addU64(2);
  StateBuilder B;
  B.addU64(1);
  B.addU64(2);
  EXPECT_NE(A.digest(), B.digest());
}

TEST(StateBuilder, StringsAreLengthPrefixed) {
  StateBuilder A, B;
  A.addString("ab");
  A.addString("c");
  B.addString("a");
  B.addString("bc");
  EXPECT_NE(A.digest(), B.digest());
}

TEST(StateBuilder, BoolsAndIntsContribute) {
  StateBuilder A, B;
  A.addBool(true);
  B.addBool(false);
  EXPECT_NE(A.digest(), B.digest());
  StateBuilder C, D;
  C.addI64(-1);
  D.addI64(1);
  EXPECT_NE(C.digest(), D.digest());
}

TEST(CoverageTracker, RecordsDistinctAndHits) {
  CoverageTracker T;
  EXPECT_TRUE(T.record(10));
  EXPECT_TRUE(T.record(20));
  EXPECT_FALSE(T.record(10));
  EXPECT_EQ(T.distinct(), 2u);
  EXPECT_EQ(T.hits(), 1u);
  EXPECT_EQ(T.records(), 3u);
  EXPECT_TRUE(T.contains(20));
  EXPECT_FALSE(T.contains(30));
}

TEST(CoverageTracker, CoverageOfReference) {
  CoverageTracker Ref;
  Ref.record(1);
  Ref.record(2);
  Ref.record(3);
  Ref.record(4);
  CoverageTracker Run;
  Run.record(1);
  Run.record(3);
  Run.record(99); // Extra states do not hurt coverage.
  EXPECT_DOUBLE_EQ(Run.coverageOf(Ref), 0.5);
  EXPECT_DOUBLE_EQ(Ref.coverageOf(Ref), 1.0);
  CoverageTracker Empty;
  EXPECT_DOUBLE_EQ(Run.coverageOf(Empty), 1.0);
}

TEST(CoverageTracker, ClearResets) {
  CoverageTracker T;
  T.record(5);
  T.record(5);
  T.clear();
  EXPECT_EQ(T.distinct(), 0u);
  EXPECT_EQ(T.hits(), 0u);
}
