//===- tests/tools/RunToolTest.cpp ----------------------------------------===//
//
// End-to-end tests of the fsmc_run binary: the documented exit codes,
// SIGINT checkpointing (the "kill -INT a week-long run and lose nothing"
// contract of docs/ROBUSTNESS.md), and the --repro-dir / --replay round
// trip. The binary's path arrives via the FSMC_RUN_PATH compile
// definition; every test works in its own temp directory.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

namespace {

std::string runBinary() { return FSMC_RUN_PATH; }
std::string fleetBinary() { return FSMC_FLEET_PATH; }

/// A fresh temp directory per test.
class RunTool : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/fsmc-runtool-XXXXXX";
    char *D = mkdtemp(Template);
    ASSERT_NE(D, nullptr);
    Dir = D;
  }
  void TearDown() override {
    // Best-effort cleanup; leaks a small temp dir on failure paths.
    std::string Cmd = "rm -rf '" + Dir + "'";
    (void)system(Cmd.c_str());
  }
  std::string Dir;
};

/// fork/execs \p Bin with \p Args. Returns the child's pid; the caller
/// reaps it. stdout/stderr are discarded (tests read the artifact files).
pid_t spawnBin(const std::string &Bin, const std::vector<std::string> &Args) {
  pid_t Pid = fork();
  if (Pid != 0)
    return Pid;
  // Child.
  FILE *Null = std::fopen("/dev/null", "w");
  if (Null) {
    dup2(fileno(Null), 1);
    dup2(fileno(Null), 2);
  }
  std::vector<char *> Argv;
  std::string Copy0 = Bin;
  Argv.push_back(Copy0.data());
  std::vector<std::string> Copy = Args;
  for (std::string &A : Copy)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);
  execv(Argv[0], Argv.data());
  _exit(127);
}

pid_t spawn(const std::vector<std::string> &Args) {
  return spawnBin(runBinary(), Args);
}

/// Runs \p Bin to completion; returns its exit code (-1 on signal).
int runBin(const std::string &Bin, const std::vector<std::string> &Args) {
  pid_t Pid = spawnBin(Bin, Args);
  if (Pid < 0)
    return -2;
  int Status = 0;
  while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

int run(const std::vector<std::string> &Args) {
  return runBin(runBinary(), Args);
}

/// Like run(), but captures the child's stdout into \p Out (for --explain
/// and other reports that print to the terminal rather than a file).
int runCapture(const std::vector<std::string> &Args, const std::string &Dir,
               std::string &Out) {
  std::string Path = Dir + "/stdout.txt";
  pid_t Pid = fork();
  if (Pid < 0)
    return -2;
  if (Pid == 0) {
    FILE *F = std::fopen(Path.c_str(), "w");
    FILE *Null = std::fopen("/dev/null", "w");
    if (F)
      dup2(fileno(F), 1);
    if (Null)
      dup2(fileno(Null), 2);
    std::vector<char *> Argv;
    std::string Bin = runBinary();
    Argv.push_back(Bin.data());
    std::vector<std::string> Copy = Args;
    for (std::string &A : Copy)
      Argv.push_back(A.data());
    Argv.push_back(nullptr);
    execv(Argv[0], Argv.data());
    _exit(127);
  }
  int Status = 0;
  while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// First integer after `"Key": ` in a stats-json body, or -1.
long long jsonInt(const std::string &Json, const std::string &Key) {
  size_t At = Json.find("\"" + Key + "\": ");
  if (At == std::string::npos)
    return -1;
  return atoll(Json.c_str() + At + Key.size() + 4);
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool contains(const std::string &Hay, const std::string &Needle) {
  return Hay.find(Needle) != std::string::npos;
}

/// First *.sched file in \p Dir, or "".
std::string firstSched(const std::string &Dir) {
  std::string Out;
  std::string Cmd = "ls '" + Dir + "'/*.sched 2>/dev/null | head -1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return Out;
  char Buf[512];
  if (fgets(Buf, sizeof(Buf), P))
    Out.assign(Buf, strcspn(Buf, "\n"));
  pclose(P);
  return Out;
}

} // namespace

TEST_F(RunTool, ExitCodesMatchTheContract) {
  EXPECT_EQ(run({"--program=peterson", "--executions=50", "--quiet"}), 0);
  EXPECT_EQ(run({"--program=peterson-bug", "--quiet"}), 1);
  EXPECT_EQ(run({"--no-such-flag"}), 2);
  EXPECT_EQ(run({"--program=does-not-exist"}), 2);
  EXPECT_EQ(run({"--program=crashfault-segv", "--isolate=batch", "--quiet"}),
            3);
}

TEST_F(RunTool, SigintWritesCheckpointAndHonestStats) {
  // Launch an effectively unbounded search, interrupt it, and assert the
  // documented contract: exit code 5, a loadable checkpoint, and a
  // stats-json that says "interrupted" rather than claiming completion.
  std::string Ckpt = Dir + "/run.ckpt";
  std::string Stats = Dir + "/stats.json";
  pid_t Pid = spawn({"--program=peterson", "--checkpoint=" + Ckpt,
                     "--stats-json=" + Stats, "--quiet"});
  ASSERT_GT(Pid, 0);
  // Give the search time to pass a few thousand execution boundaries.
  usleep(500 * 1000);
  ASSERT_EQ(kill(Pid, SIGINT), 0);
  int Status = 0;
  while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 5);

  std::string CkptText = slurp(Ckpt);
  EXPECT_TRUE(contains(CkptText, "fsmc-ckpt 3")) << CkptText.substr(0, 80);
  EXPECT_TRUE(contains(CkptText, "program peterson"));

  std::string Json = slurp(Stats);
  EXPECT_TRUE(contains(Json, "\"stop_reason\": \"interrupted\"")) << Json;
  EXPECT_TRUE(contains(Json, "\"interrupted\": true"));

  // The checkpoint must actually resume: a bounded continuation exits 0
  // and reports cumulative executions past what the checkpoint froze.
  EXPECT_EQ(run({"--resume=" + Ckpt, "--executions=999999999",
                 "--seconds=2", "--quiet"}),
            0);
}

TEST_F(RunTool, SigintPorRunCheckpointsAndResumes) {
  // The SIGINT contract composes with --por=on: the interrupted run's
  // checkpoint carries the POR stat keys (v2 format) and resumes under
  // the same flag. Exact interrupted-vs-straight stats equality is
  // pinned in-process by Resume.PorInterruptedSearchMatchesUninterrupted;
  // this covers the tool-level plumbing end to end.
  std::string Ckpt = Dir + "/por.ckpt";
  std::string Stats = Dir + "/stats.json";
  pid_t Pid = spawn({"--program=peterson", "--por=on",
                     "--checkpoint=" + Ckpt, "--stats-json=" + Stats,
                     "--quiet"});
  ASSERT_GT(Pid, 0);
  usleep(500 * 1000);
  ASSERT_EQ(kill(Pid, SIGINT), 0);
  int Status = 0;
  while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 5);

  std::string CkptText = slurp(Ckpt);
  EXPECT_TRUE(contains(CkptText, "fsmc-ckpt 3")) << CkptText.substr(0, 80);
  EXPECT_TRUE(contains(CkptText, "stat por_sleep_hits"));

  std::string Json = slurp(Stats);
  EXPECT_TRUE(contains(Json, "\"interrupted\": true"));
  EXPECT_TRUE(contains(Json, "\"por\": true"));
  EXPECT_TRUE(contains(Json, "por_sleep_hits")) << Json;

  // The continuation must run under the same reduction mode: recorded
  // frontier prefixes carry sleep masks that only validate with POR on.
  EXPECT_EQ(run({"--resume=" + Ckpt, "--por=on",
                 "--executions=999999999", "--seconds=2", "--quiet"}),
            0);
}

TEST_F(RunTool, ReproDirRoundTripsThroughReplay) {
  std::string Repro = Dir + "/repros";
  ASSERT_EQ(run({"--program=peterson-bug", "--repro-dir=" + Repro,
                 "--quiet"}),
            1);
  std::string Sched = firstSched(Repro);
  ASSERT_FALSE(Sched.empty()) << "expected a .sched repro file";
  std::string Content = slurp(Sched);
  EXPECT_TRUE(contains(Content, "fsmc1:")) << Content;
  // Replaying the repro file reproduces the bug: exit code 1 again.
  EXPECT_EQ(run({"--program=peterson-bug", "--replay=" + Sched, "--quiet"}),
            1);
}

TEST_F(RunTool, CrashReproRoundTripsUnderIsolation) {
  std::string Repro = Dir + "/repros";
  ASSERT_EQ(run({"--program=crashfault-segv", "--isolate=batch",
                 "--repro-dir=" + Repro, "--quiet"}),
            3);
  std::string Sched = firstSched(Repro);
  ASSERT_FALSE(Sched.empty());
  EXPECT_EQ(run({"--program=crashfault-segv", "--isolate=batch",
                 "--replay=" + Sched, "--quiet"}),
            3);
}

TEST_F(RunTool, PeriodicCheckpointsAppearDuringTheRun) {
  std::string Ckpt = Dir + "/periodic.ckpt";
  std::string Stats = Dir + "/stats.json";
  ASSERT_EQ(run({"--program=peterson", "--executions=100",
                 "--checkpoint=" + Ckpt, "--checkpoint-every=30",
                 "--stats-json=" + Stats, "--quiet"}),
            0);
  EXPECT_TRUE(contains(slurp(Ckpt), "fsmc-ckpt 3"));
  EXPECT_TRUE(contains(slurp(Stats), "\"checkpoints\": 3"));
}

TEST_F(RunTool, CheckpointEveryRequiresAFile) {
  EXPECT_EQ(run({"--program=peterson", "--checkpoint-every=10"}), 2);
}

TEST_F(RunTool, EstimateIsExactAtExhaustion) {
  // Knuth's estimator telescopes to the truth on a fully explored tree:
  // at exhaustion the explored mass is exactly 1 and the projected total
  // equals the executions actually counted.
  std::string Stats = Dir + "/stats.json";
  ASSERT_EQ(run({"--program=peterson", "--cb=1", "--estimate",
                 "--stats-json=" + Stats, "--quiet"}),
            0);
  std::string Json = slurp(Stats);
  EXPECT_TRUE(contains(Json, "\"explored_mass\": 1,")) << Json;
  EXPECT_TRUE(contains(Json, "\"progress_pct\": 100.000")) << Json;
  long long Execs = jsonInt(Json, "executions");
  long long Est = jsonInt(Json, "estimated_total_executions");
  ASSERT_GT(Execs, 0);
  EXPECT_EQ(Est, Execs) << Json;
}

TEST_F(RunTool, EstimatePorMassIsExactAtExhaustion) {
  // The estimator credits POR-pruned subtrees at the prune site, so the
  // mass identity survives sleep-set pruning: an exhausted --por=on run
  // reports exactly mass 1 and est == executions, serial and parallel.
  for (const char *Jobs : {"--jobs=1", "--jobs=4"}) {
    SCOPED_TRACE(Jobs);
    std::string Stats = Dir + "/por-est.json";
    ASSERT_EQ(run({"--program=peterson", "--cb=1", "--estimate",
                   "--por=on", Jobs, "--stats-json=" + Stats, "--quiet"}),
              0);
    std::string Json = slurp(Stats);
    EXPECT_TRUE(contains(Json, "\"search_exhausted\": true")) << Json;
    EXPECT_TRUE(contains(Json, "\"explored_mass\": 1,")) << Json;
    EXPECT_TRUE(contains(Json, "\"progress_pct\": 100.000")) << Json;
    long long Execs = jsonInt(Json, "executions");
    long long Est = jsonInt(Json, "estimated_total_executions");
    ASSERT_GT(Execs, 0);
    EXPECT_EQ(Est, Execs) << Json;
  }
}

TEST_F(RunTool, EstimateSurvivesCheckpointResume) {
  // A mid-run checkpoint freezes the partial mass (a hexfloat `statf`
  // record); resuming -- serial or parallel -- must finish with the same
  // final estimate as the uninterrupted run. The execution cap stops the
  // first run past a periodic checkpoint but well before exhaustion.
  std::string Ckpt = Dir + "/est.ckpt";
  std::string StraightStats = Dir + "/straight.json";
  ASSERT_EQ(run({"--program=peterson", "--cb=1", "--estimate",
                 "--stats-json=" + StraightStats, "--quiet"}),
            0);
  long long Truth = jsonInt(slurp(StraightStats), "estimated_total_executions");
  ASSERT_GT(Truth, 0);

  ASSERT_EQ(run({"--program=peterson", "--cb=1", "--estimate",
                 "--executions=30", "--checkpoint=" + Ckpt,
                 "--checkpoint-every=10", "--quiet"}),
            0);
  std::string CkptText = slurp(Ckpt);
  ASSERT_TRUE(contains(CkptText, "statf estimate_mass 0x"))
      << CkptText.substr(0, 200);

  for (const char *Jobs : {"--jobs=1", "--jobs=4"}) {
    std::string Stats = Dir + "/resume.json";
    ASSERT_EQ(run({"--resume=" + Ckpt, "--cb=1", "--estimate", Jobs,
                   "--stats-json=" + Stats, "--quiet"}),
              0)
        << Jobs;
    std::string Json = slurp(Stats);
    EXPECT_TRUE(contains(Json, "\"explored_mass\": 1,")) << Jobs << Json;
    EXPECT_EQ(jsonInt(Json, "estimated_total_executions"), Truth) << Json;
  }
}

TEST_F(RunTool, ExplainNamesTheDeadlockCycle) {
  // --explain replays a repro schedule and renders the thread x step
  // timeline plus a verdict-specific epilogue; for a deadlock that is
  // the wait cycle, by thread and object name.
  std::string Repro = Dir + "/repros";
  ASSERT_EQ(run({"--program=dining-deadlock", "--repro-dir=" + Repro,
                 "--quiet"}),
            1);
  std::string Sched = firstSched(Repro);
  ASSERT_FALSE(Sched.empty());

  std::string Out;
  EXPECT_EQ(runCapture({"--program=dining-deadlock", "--explain=" + Sched},
                       Dir, Out),
            1);
  EXPECT_TRUE(contains(Out, "verdict: deadlock")) << Out;
  EXPECT_TRUE(contains(Out, "step  thread")) << Out;
  EXPECT_TRUE(contains(Out, "phil0 waits for lock on fork1")) << Out;
  EXPECT_TRUE(contains(Out, "phil1 waits for lock on fork0")) << Out;
  EXPECT_TRUE(contains(Out, "main waits for join")) << Out;

  // The directory form explains every .sched file under a header line.
  EXPECT_EQ(runCapture({"--program=dining-deadlock", "--explain=" + Repro},
                       Dir, Out),
            1);
  EXPECT_TRUE(contains(Out, "== ")) << Out;
  EXPECT_TRUE(contains(Out, ".sched ==")) << Out;
}

TEST_F(RunTool, ExplainFlagsTheRacingStep) {
  std::string Repro = Dir + "/repros";
  ASSERT_EQ(run({"--program=wsq-racy", "--races=fatal", "--cb=2",
                 "--repro-dir=" + Repro, "--quiet"}),
            7);
  std::string Sched = firstSched(Repro);
  ASSERT_FALSE(Sched.empty());

  std::string Out;
  EXPECT_EQ(runCapture({"--program=wsq-racy", "--races=fatal",
                        "--explain=" + Sched},
                       Dir, Out),
            7);
  EXPECT_TRUE(contains(Out, "verdict: data race")) << Out;
  // The failing step is flagged in the timeline, and the epilogue names
  // the racing accesses.
  EXPECT_TRUE(contains(Out, "<<< fails here")) << Out;
  EXPECT_TRUE(contains(Out, "data race on 'wsq.size'")) << Out;
  EXPECT_TRUE(contains(Out, "write by thread 'main'")) << Out;
  EXPECT_TRUE(contains(Out, "read by thread 'steal0'")) << Out;
}

TEST_F(RunTool, ReportWritesSelfContainedHtml) {
  std::string Html = Dir + "/report.html";
  std::string Stats = Dir + "/stats.json";
  ASSERT_EQ(run({"--program=peterson", "--cb=1", "--estimate",
                 "--report=" + Html, "--stats-json=" + Stats, "--quiet"}),
            0);
  std::string Doc = slurp(Html);
  EXPECT_TRUE(contains(Doc, "<!DOCTYPE html>"));
  EXPECT_TRUE(contains(Doc, "peterson"));
  // --report implies --profile-search, so the schedule-point sections
  // are populated alongside the estimate.
  EXPECT_TRUE(contains(Doc, "Tree-size estimate")) << Doc.substr(0, 400);
  EXPECT_TRUE(contains(Doc, "Branch points by operation class"))
      << Doc.substr(0, 400);
  // No external fetches: self-contained means no src/href URLs.
  EXPECT_FALSE(contains(Doc, "http://"));
  EXPECT_FALSE(contains(Doc, "https://"));
  // The implied profile also lands in stats-json.
  EXPECT_TRUE(contains(slurp(Stats), "\"profile\""));
}

//===----------------------------------------------------------------------===//
// Fleet mode (docs/FLEET.md): the --fleet flag family, the fsmc_fleet
// entry point, SIGTERM drain/resume, chaos counters in stats-json, and
// the exit-code-8 corrupt-checkpoint contract.
//===----------------------------------------------------------------------===//

TEST_F(RunTool, FleetUsageErrorsExitTwo) {
  EXPECT_EQ(run({"--program=peterson", "--fleet=0"}), 2);
  EXPECT_EQ(run({"--program=peterson", "--fleet=2", "--jobs=4"}), 2);
  EXPECT_EQ(run({"--program=peterson", "--fleet=2", "--isolate=batch"}), 2);
  EXPECT_EQ(run({"--program=peterson", "--fleet=2", "--random"}), 2);
}

TEST_F(RunTool, SigtermMidFleetDrainsCheckpointAndResumes) {
  // The ISSUE's robustness contract at both supervised widths: SIGTERM
  // mid-search exits 5 after draining every outstanding lease into one
  // v2 checkpoint, and that checkpoint resumes into a fleet of the same
  // width. (Multiset exactness is pinned below and in FleetParityTest.)
  for (const char *Width : {"--fleet=2", "--fleet=4"}) {
    SCOPED_TRACE(Width);
    std::string Ckpt = Dir + "/fleet.ckpt";
    std::string Stats = Dir + "/fleet-stats.json";
    pid_t Pid = spawn({"--program=peterson", Width, "--checkpoint=" + Ckpt,
                       "--stats-json=" + Stats, "--quiet"});
    ASSERT_GT(Pid, 0);
    // Let the coordinator fork its workers and stream a few batches.
    usleep(700 * 1000);
    ASSERT_EQ(kill(Pid, SIGTERM), 0);
    int Status = 0;
    while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
    }
    ASSERT_TRUE(WIFEXITED(Status));
    EXPECT_EQ(WEXITSTATUS(Status), 5);

    std::string CkptText = slurp(Ckpt);
    EXPECT_TRUE(contains(CkptText, "fsmc-ckpt 3")) << CkptText.substr(0, 80);
    EXPECT_TRUE(contains(CkptText, "program peterson"));
    std::string Json = slurp(Stats);
    EXPECT_TRUE(contains(Json, "\"stop_reason\": \"interrupted\"")) << Json;
    EXPECT_TRUE(contains(Json, "\"interrupted\": true"));

    EXPECT_EQ(run({"--resume=" + Ckpt, Width, "--executions=999999999",
                   "--seconds=2", "--quiet"}),
              0);
  }
}

TEST_F(RunTool, FleetResumeReachesUninterruptedTotals) {
  // A capped fleet run's checkpoint, resumed at the same width, must
  // finish with exactly the uninterrupted run's cumulative multiset --
  // the tool-level spelling of FleetResume's in-process exactness tests.
  std::string Straight = Dir + "/straight.json";
  ASSERT_EQ(run({"--program=peterson", "--cb=2", "--fleet=2",
                 "--stats-json=" + Straight, "--quiet"}),
            0);
  long long Execs = jsonInt(slurp(Straight), "executions");
  long long Trans = jsonInt(slurp(Straight), "transitions");
  ASSERT_GT(Execs, 0);

  std::string Ckpt = Dir + "/fleet.ckpt";
  ASSERT_EQ(run({"--program=peterson", "--cb=2", "--fleet=2",
                 "--executions=300", "--checkpoint=" + Ckpt,
                 "--checkpoint-every=10", "--quiet"}),
            0);
  std::string Stats = Dir + "/resumed.json";
  ASSERT_EQ(run({"--resume=" + Ckpt, "--cb=2", "--fleet=2",
                 "--stats-json=" + Stats, "--quiet"}),
            0);
  std::string Json = slurp(Stats);
  EXPECT_TRUE(contains(Json, "\"search_exhausted\": true")) << Json;
  EXPECT_EQ(jsonInt(Json, "executions"), Execs);
  EXPECT_EQ(jsonInt(Json, "transitions"), Trans);
}

TEST_F(RunTool, FleetChaosCountersLandInStatsJson) {
  // Acceptance criterion: under FSMC_FLEET_CHAOS=kill:3 the verdict and
  // explored multiset are unchanged (no lost or duplicated units) and
  // the recovery shows up as fleet_reissues >= 3 in stats-json. The
  // quarantine threshold is raised so three re-runs of one unlucky unit
  // can never retire it.
  std::string Clean = Dir + "/clean.json";
  std::string Chaos = Dir + "/chaos.json";
  ASSERT_EQ(run({"--program=peterson", "--cb=2", "--fleet=4",
                 "--fleet-quarantine=10", "--stats-json=" + Clean,
                 "--quiet"}),
            0);
  setenv("FSMC_FLEET_CHAOS", "kill:3", 1);
  int Rc = run({"--program=peterson", "--cb=2", "--fleet=4",
                "--fleet-quarantine=10", "--stats-json=" + Chaos,
                "--quiet"});
  unsetenv("FSMC_FLEET_CHAOS");
  ASSERT_EQ(Rc, 0);

  std::string A = slurp(Clean);
  std::string B = slurp(Chaos);
  EXPECT_EQ(jsonInt(B, "executions"), jsonInt(A, "executions"));
  EXPECT_EQ(jsonInt(B, "transitions"), jsonInt(A, "transitions"));
  EXPECT_GE(jsonInt(B, "fleet_worker_crashes"), 3);
  EXPECT_GE(jsonInt(B, "fleet_reissues"), 3);
  EXPECT_FALSE(contains(A, "fleet_worker_crashes"))
      << "healthy runs must omit the recovery counters";
}

TEST_F(RunTool, FleetBinaryDefaultsToSupervisedSearch) {
  // Invoked as fsmc_fleet, the driver defaults --fleet to the hardware
  // concurrency clamped to [2,8]; an explicit --fleet still wins.
  std::string Stats = Dir + "/stats.json";
  ASSERT_EQ(runBin(fleetBinary(), {"--program=peterson", "--cb=1",
                                   "--stats-json=" + Stats, "--quiet"}),
            0);
  long long W = jsonInt(slurp(Stats), "fleet_workers");
  EXPECT_GE(W, 2);
  EXPECT_LE(W, 8);
  ASSERT_EQ(runBin(fleetBinary(), {"--program=peterson", "--cb=1",
                                   "--fleet=1", "--stats-json=" + Stats,
                                   "--quiet"}),
            0);
  EXPECT_EQ(jsonInt(slurp(Stats), "fleet_workers"), 1);
}

TEST_F(RunTool, CorruptCheckpointExitsEightEverywhere) {
  // Write a small real checkpoint, then attack it: truncation at every
  // line boundary, a mid-line cut, and targeted field corruption must
  // all be rejected with the dedicated exit code 8 -- never a crash,
  // never a silent partial resume. A missing file stays the generic
  // usage error 2 (nothing to diagnose, the path is just wrong).
  std::string Ckpt = Dir + "/good.ckpt";
  ASSERT_EQ(run({"--program=peterson", "--cb=1", "--executions=30",
                 "--checkpoint=" + Ckpt, "--checkpoint-every=10",
                 "--quiet"}),
            0);
  std::string Good = slurp(Ckpt);
  ASSERT_TRUE(contains(Good, "fsmc-ckpt 3"));
  ASSERT_EQ(run({"--resume=" + Ckpt, "--cb=1", "--quiet"}), 0)
      << "the intact checkpoint must resume before we corrupt copies";

  std::string Bad = Dir + "/bad.ckpt";
  auto writeBad = [&](const std::string &Text) {
    std::ofstream Out(Bad, std::ios::trunc);
    Out << Text;
  };

  // Truncation sweep: every proper line-boundary prefix lacks at least
  // the end marker and must be rejected.
  int Cuts = 0;
  for (size_t At = Good.find('\n');
       At != std::string::npos && At + 1 < Good.size();
       At = Good.find('\n', At + 1), ++Cuts) {
    writeBad(Good.substr(0, At + 1));
    EXPECT_EQ(run({"--resume=" + Bad, "--cb=1", "--quiet"}), 8)
        << "prefix of " << (At + 1) << " bytes was accepted";
  }
  EXPECT_GT(Cuts, 5) << "checkpoint too small for the sweep to mean much";

  // Mid-line cut: a record chopped without its newline.
  writeBad(Good.substr(0, Good.size() / 2));
  EXPECT_EQ(run({"--resume=" + Bad, "--cb=1", "--quiet"}), 8);

  // Targeted byte mutations of individual records.
  auto mutate = [&](const std::string &From, const std::string &To) {
    std::string Text = Good;
    size_t At = Text.find(From);
    ASSERT_NE(At, std::string::npos) << From;
    Text.replace(At, From.size(), To);
    writeBad(Text);
    EXPECT_EQ(run({"--resume=" + Bad, "--cb=1", "--quiet"}), 8)
        << From << " -> " << To;
  };
  mutate("fsmc-ckpt 3", "fsmc-ckpt 9");            // unknown version
  mutate("seed ", "seed garbage-");                // unparseable seed
  mutate("stat executions ", "stat executions x"); // unparseable stat
  mutate("\nend\n", "\n");                         // missing end marker

  EXPECT_EQ(run({"--resume=" + Dir + "/does-not-exist.ckpt"}), 2);
}

TEST_F(RunTool, OlderCheckpointVersionsStillLoad) {
  // The v3 magic bump (store-buffer stats) must not orphan existing
  // checkpoint files: a plain run writes no v3-only records, so
  // rewriting its magic to the v2 or v1 tag produces exactly what those
  // versions' writers emitted -- and both must still resume.
  std::string Ckpt = Dir + "/good.ckpt";
  ASSERT_EQ(run({"--program=peterson", "--cb=1", "--executions=30",
                 "--checkpoint=" + Ckpt, "--checkpoint-every=10",
                 "--quiet"}),
            0);
  std::string Good = slurp(Ckpt);
  ASSERT_TRUE(contains(Good, "fsmc-ckpt 3"));
  ASSERT_FALSE(contains(Good, "buffered_stores"))
      << "an sc run must not write v3-only stat records";

  for (const char *Old : {"fsmc-ckpt 2", "fsmc-ckpt 1"}) {
    SCOPED_TRACE(Old);
    std::string Text = Good;
    Text.replace(Text.find("fsmc-ckpt 3"), strlen("fsmc-ckpt 3"), Old);
    std::string Path = Dir + "/old.ckpt";
    std::ofstream(Path, std::ios::trunc) << Text;
    EXPECT_EQ(run({"--resume=" + Path, "--cb=1", "--quiet"}), 0);
  }
}

TEST_F(RunTool, MemoryFlagRoundTripsThroughReplay) {
  // The tentpole's end-to-end acceptance at the tool level: wsq-bug1 is
  // clean under the default sc search, found under --memory=tso with a
  // flush-recording repro that replays -- and that repro is rejected as
  // a divergence (exit 6), not silently re-explored, when replayed under
  // the wrong model.
  EXPECT_EQ(run({"--program=wsq-bug1", "--cb=2", "--quiet"}), 0);

  std::string Repro = Dir + "/repros";
  std::string Stats = Dir + "/stats.json";
  ASSERT_EQ(run({"--program=wsq-bug1", "--cb=2", "--memory=tso",
                 "--repro-dir=" + Repro, "--stats-json=" + Stats,
                 "--quiet"}),
            1);
  std::string Json = slurp(Stats);
  EXPECT_TRUE(contains(Json, "\"memory\": \"tso\"")) << Json;
  EXPECT_GT(jsonInt(Json, "buffered_stores"), 0) << Json;

  std::string Sched = firstSched(Repro);
  ASSERT_FALSE(Sched.empty());
  EXPECT_TRUE(contains(slurp(Sched), "f")) << slurp(Sched);
  EXPECT_EQ(run({"--program=wsq-bug1", "--cb=2", "--memory=tso",
                 "--replay=" + Sched, "--quiet"}),
            1);
  EXPECT_EQ(run({"--program=wsq-bug1", "--cb=2", "--replay=" + Sched,
                 "--quiet"}),
            6);

  EXPECT_EQ(run({"--program=peterson", "--memory=bogus"}), 2);
}

TEST_F(RunTool, ExplainRejectsConflictingModes) {
  EXPECT_EQ(run({"--program=peterson", "--explain=fsmc1:0/1",
                 "--replay=fsmc1:0/1"}),
            2);
  EXPECT_EQ(run({"--program=peterson", "--explain="}), 2);
}
