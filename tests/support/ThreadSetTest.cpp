//===- tests/support/ThreadSetTest.cpp ------------------------------------===//

#include "support/ThreadSet.h"

#include "support/Xorshift.h"

#include <gtest/gtest.h>
#include <set>

using namespace fsmc;

TEST(ThreadSet, StartsEmpty) {
  ThreadSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.size(), 0);
  for (Tid T = 0; T < MaxThreads; ++T)
    EXPECT_FALSE(S.contains(T));
}

TEST(ThreadSet, InsertEraseContains) {
  ThreadSet S;
  S.insert(3);
  S.insert(17);
  S.insert(63);
  EXPECT_EQ(S.size(), 3);
  EXPECT_TRUE(S.contains(3));
  EXPECT_TRUE(S.contains(17));
  EXPECT_TRUE(S.contains(63));
  EXPECT_FALSE(S.contains(4));
  S.erase(17);
  EXPECT_FALSE(S.contains(17));
  EXPECT_EQ(S.size(), 2);
  S.erase(17); // Idempotent.
  EXPECT_EQ(S.size(), 2);
}

TEST(ThreadSet, FirstN) {
  EXPECT_TRUE(ThreadSet::firstN(0).empty());
  ThreadSet S = ThreadSet::firstN(5);
  EXPECT_EQ(S.size(), 5);
  for (Tid T = 0; T < 5; ++T)
    EXPECT_TRUE(S.contains(T));
  EXPECT_FALSE(S.contains(5));
  EXPECT_EQ(ThreadSet::firstN(MaxThreads).size(), MaxThreads);
}

TEST(ThreadSet, AllAndSingleton) {
  EXPECT_EQ(ThreadSet::all().size(), MaxThreads);
  ThreadSet S = ThreadSet::singleton(42);
  EXPECT_EQ(S.size(), 1);
  EXPECT_TRUE(S.contains(42));
  EXPECT_EQ(S.first(), 42);
}

TEST(ThreadSet, SetAlgebra) {
  ThreadSet A = ThreadSet::firstN(4);       // {0,1,2,3}
  ThreadSet B = ThreadSet::singleton(2) |
                ThreadSet::singleton(5);    // {2,5}
  EXPECT_EQ((A | B).size(), 5);
  EXPECT_EQ((A & B), ThreadSet::singleton(2));
  ThreadSet Diff = A - B; // {0,1,3}
  EXPECT_EQ(Diff.size(), 3);
  EXPECT_FALSE(Diff.contains(2));
  EXPECT_TRUE(A.intersects(B));
  EXPECT_FALSE((A - B).intersects(B));
  EXPECT_TRUE(ThreadSet().isSubsetOf(A));
  EXPECT_TRUE((A & B).isSubsetOf(A));
  EXPECT_FALSE(A.isSubsetOf(B));
}

TEST(ThreadSet, IterationIsAscending) {
  ThreadSet S;
  S.insert(9);
  S.insert(1);
  S.insert(33);
  std::vector<Tid> Got;
  for (Tid T : S)
    Got.push_back(T);
  EXPECT_EQ(Got, (std::vector<Tid>{1, 9, 33}));
}

TEST(ThreadSet, FirstIsMinimum) {
  ThreadSet S;
  S.insert(40);
  S.insert(7);
  EXPECT_EQ(S.first(), 7);
}

TEST(ThreadSet, Str) {
  ThreadSet S;
  EXPECT_EQ(S.str(), "{}");
  S.insert(2);
  S.insert(5);
  EXPECT_EQ(S.str(), "{2, 5}");
}

/// Property test: ThreadSet agrees with std::set under random operations.
class ThreadSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThreadSetPropertyTest, MatchesReferenceSet) {
  Xorshift Rng(GetParam());
  ThreadSet S;
  std::set<Tid> Ref;
  for (int Step = 0; Step < 2000; ++Step) {
    Tid T = Rng.nextBelow(MaxThreads);
    switch (Rng.nextBelow(3)) {
    case 0:
      S.insert(T);
      Ref.insert(T);
      break;
    case 1:
      S.erase(T);
      Ref.erase(T);
      break;
    default:
      ASSERT_EQ(S.contains(T), Ref.count(T) != 0);
    }
    ASSERT_EQ(S.size(), int(Ref.size()));
    ASSERT_EQ(S.empty(), Ref.empty());
  }
  std::vector<Tid> FromSet(Ref.begin(), Ref.end());
  std::vector<Tid> FromBits;
  for (Tid T : S)
    FromBits.push_back(T);
  EXPECT_EQ(FromBits, FromSet);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadSetPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

/// Property: algebra laws hold for random pairs.
TEST_P(ThreadSetPropertyTest, AlgebraLaws) {
  Xorshift Rng(GetParam() * 7919);
  for (int Iter = 0; Iter < 200; ++Iter) {
    ThreadSet A, B;
    for (int I = 0; I < 10; ++I) {
      A.insert(Rng.nextBelow(MaxThreads));
      B.insert(Rng.nextBelow(MaxThreads));
    }
    EXPECT_EQ((A | B).size() + (A & B).size(), A.size() + B.size());
    EXPECT_EQ(((A - B) | (A & B)), A);
    EXPECT_TRUE((A - B).isSubsetOf(A));
    EXPECT_FALSE((A - B).intersects(B));
  }
}
