//===- tests/support/TablePrinterTest.cpp ---------------------------------===//

#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace fsmc;

TEST(TablePrinter, HeaderOnly) {
  TablePrinter T({"A", "B"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| A | B |"), std::string::npos);
  EXPECT_NE(Out.find("|---|---|"), std::string::npos);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T({"Name", "N"});
  T.addRow({"x", "12345"});
  T.addRow({"longer-name", "7"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| longer-name | 7     |"), std::string::npos);
  EXPECT_NE(Out.find("| x           | 12345 |"), std::string::npos);
}

TEST(TablePrinter, MissingCellsRenderEmpty) {
  TablePrinter T({"A", "B", "C"});
  T.addRow({"1"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| 1 |"), std::string::npos);
}

TEST(TablePrinter, CellHelpers) {
  EXPECT_EQ(TablePrinter::cell(uint64_t(42)), "42");
  EXPECT_EQ(TablePrinter::cell(-3), "-3");
  EXPECT_EQ(TablePrinter::cellTimedOut(245), "245*");
  EXPECT_EQ(TablePrinter::cellSeconds(1.234), "1.23");
  EXPECT_EQ(TablePrinter::cellSeconds(0.0042), "0.0042");
}
