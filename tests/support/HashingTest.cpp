//===- tests/support/HashingTest.cpp --------------------------------------===//

#include "support/Hashing.h"

#include "support/Xorshift.h"

#include <gtest/gtest.h>
#include <unordered_set>

using namespace fsmc;

TEST(Fnv1a, EmptyDigestIsOffset) {
  Fnv1a H;
  EXPECT_EQ(H.digest(), Fnv1a::Offset);
}

TEST(Fnv1a, Deterministic) {
  Fnv1a A, B;
  A.addU64(12345);
  A.addString("hello");
  B.addU64(12345);
  B.addString("hello");
  EXPECT_EQ(A.digest(), B.digest());
}

TEST(Fnv1a, OrderSensitive) {
  Fnv1a A, B;
  A.addU64(1);
  A.addU64(2);
  B.addU64(2);
  B.addU64(1);
  EXPECT_NE(A.digest(), B.digest());
}

TEST(Fnv1a, BytesMatchString) {
  Fnv1a A, B;
  A.addString("abc");
  B.addBytes("abc", 3);
  EXPECT_EQ(A.digest(), B.digest());
}

TEST(Fnv1a, SingleBitSensitivity) {
  // Flipping one input bit must change the digest (for these inputs).
  Fnv1a A, B;
  A.addU64(0x10);
  B.addU64(0x11);
  EXPECT_NE(A.digest(), B.digest());
}

TEST(Fnv1a, FewCollisionsOnSequentialInputs) {
  std::unordered_set<uint64_t> Seen;
  for (uint64_t I = 0; I < 100000; ++I)
    Seen.insert(hashU64(I));
  EXPECT_EQ(Seen.size(), 100000u);
}

TEST(Xorshift, DeterministicForSeed) {
  Xorshift A(99), B(99);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Xorshift, ZeroSeedIsValid) {
  Xorshift A(0);
  EXPECT_NE(A.next(), 0u);
}

TEST(Xorshift, NextBelowInRange) {
  Xorshift A(7);
  for (int I = 0; I < 1000; ++I) {
    int V = A.nextBelow(17);
    EXPECT_GE(V, 0);
    EXPECT_LT(V, 17);
  }
}

TEST(Xorshift, NextBelowCoversAllResidues) {
  Xorshift A(5);
  std::unordered_set<int> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(A.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(Xorshift, ReseedRestartsSequence) {
  Xorshift A(31337);
  uint64_t First = A.next();
  A.next();
  A.reseed(31337);
  EXPECT_EQ(A.next(), First);
}
