//===- tests/race/RaceTest.cpp --------------------------------------------===//
//
// The race-detection contract (docs/RACES.md):
//
//  * Positive goldens: every seeded racy workload variant is reported as
//    Verdict::DataRace with a replayable schedule, in serial, parallel,
//    and sandboxed runs, and the replay reproduces the race.
//
//  * Zero false positives: the whole workload registry is data-race-free
//    (every shared variable is a modeled sync object), so --races=on
//    must find nothing on any of it, at jobs=1 and jobs=4.
//
//  * Non-perturbation: detection is purely observational. With the same
//    seed and budget, --races=on explores byte-for-byte the same serial
//    trace and the same parallel event multiset as --races=off; only the
//    reporting differs.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "core/Schedule.h"
#include "obs/EventSink.h"
#include "obs/Observer.h"
#include "obs/StatsJson.h"
#include "obs/TraceValidate.h"
#include "runtime/Runtime.h"
#include "sync/Plain.h"
#include "sync/TestThread.h"
#include "workloads/CrashFault.h"
#include "workloads/WorkStealQueue.h"
#include "workloads/WorkloadRegistry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>

using namespace fsmc;

namespace {

TestProgram racyCrashFault() {
  CrashFaultConfig F;
  F.Kind = CrashFaultConfig::Fault::Race;
  return makeCrashFaultProgram(F);
}

TestProgram racyWsq() {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.RacySize = true;
  return makeWsqProgram(C);
}

CheckerOptions boundedRacy(RaceCheckMode Mode) {
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  O.Races = Mode;
  return O;
}

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream F(Path, std::ios::binary);
  std::ostringstream S;
  S << F.rdbuf();
  return S.str();
}

CheckResult runWithTrace(const TestProgram &Program, CheckerOptions Opts,
                         const std::string &TracePath) {
  obs::JsonlTraceSink Sink(TracePath);
  EXPECT_TRUE(Sink.valid());
  obs::Observer::Config OC;
  OC.Sink = &Sink;
  obs::Observer Obs(OC);
  Opts.Obs = &Obs;
  CheckResult R = check(Program, Opts);
  Sink.close();
  return R;
}

std::vector<std::string> normalizedMultiset(const std::string &Path) {
  std::vector<std::string> Out;
  std::string Err;
  EXPECT_TRUE(obs::loadNormalizedEvents(Path, /*StripWorkerAndTime=*/true,
                                        {"par"}, Out, Err))
      << Err;
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Positive goldens: the seeded races are found and fully reported.
//===----------------------------------------------------------------------===//

TEST(RaceDetection, FindsSeededCrashFaultRace) {
  TestProgram P = racyCrashFault();
  CheckResult R = check(P, boundedRacy(RaceCheckMode::On));
  ASSERT_EQ(R.Kind, Verdict::DataRace) << verdictName(R.Kind);
  ASSERT_TRUE(R.Bug.has_value());
  EXPECT_EQ(R.Bug->Kind, Verdict::DataRace);
  EXPECT_NE(R.Bug->Message.find("data race on 'x'"), std::string::npos)
      << R.Bug->Message;
  EXPECT_FALSE(R.Bug->Schedule.empty());
  // Both access sites and both threads' clocks are in the long report.
  EXPECT_NE(R.Bug->TraceText.find("clock"), std::string::npos)
      << R.Bug->TraceText;
  ASSERT_FALSE(R.Incidents.empty());
  EXPECT_GE(R.Stats.RacesFound, 1u);
  EXPECT_GT(R.Stats.RacesChecked, 0u);
  // Two writers plus a reader on one plain variable: the write/write pair
  // and at least one write/read pair are distinct races.
  EXPECT_GE(R.Incidents.size(), 2u);
}

TEST(RaceDetection, FindsSeededWsqTornSizeRace) {
  CheckerOptions O = boundedRacy(RaceCheckMode::On);
  // The race shows up within the first few executions; no need to let the
  // bounded search run to exhaustion.
  O.MaxExecutions = 500;
  CheckResult R = check(racyWsq(), O);
  ASSERT_EQ(R.Kind, Verdict::DataRace) << verdictName(R.Kind);
  ASSERT_TRUE(R.Bug.has_value());
  EXPECT_NE(R.Bug->Message.find("wsq.size"), std::string::npos)
      << R.Bug->Message;
  EXPECT_FALSE(R.Bug->Schedule.empty());
  EXPECT_GE(R.Stats.RacesFound, 1u);
}

TEST(RaceDetection, RaceScheduleReplays) {
  TestProgram P = racyCrashFault();
  CheckerOptions O = boundedRacy(RaceCheckMode::On);
  CheckResult R = check(P, O);
  ASSERT_EQ(R.Kind, Verdict::DataRace);
  ASSERT_FALSE(R.Bug->Schedule.empty());

  CheckResult Replay = replaySchedule(P, O, R.Bug->Schedule);
  EXPECT_EQ(Replay.Kind, Verdict::DataRace) << verdictName(Replay.Kind);
  EXPECT_EQ(Replay.Stats.Executions, 1u);
  ASSERT_TRUE(Replay.Bug.has_value());
  EXPECT_EQ(Replay.Bug->Message, R.Bug->Message);
}

TEST(RaceDetection, FatalModeStopsOnFirstRacyExecution) {
  CheckResult R = check(racyCrashFault(), boundedRacy(RaceCheckMode::Fatal));
  ASSERT_EQ(R.Kind, Verdict::DataRace) << verdictName(R.Kind);
  // Every interleaving of the seeded program races, so with
  // StopOnFirstBug the very first execution ends the search.
  EXPECT_EQ(R.Stats.Executions, 1u);
  ASSERT_TRUE(R.Bug.has_value());
  EXPECT_FALSE(R.Bug->Schedule.empty());
}

TEST(RaceDetection, ParallelSearchFindsAndDedupsRaces) {
  CheckerOptions O = boundedRacy(RaceCheckMode::On);
  O.Jobs = 4;
  CheckResult R = check(racyCrashFault(), O);
  ASSERT_EQ(R.Kind, Verdict::DataRace) << verdictName(R.Kind);
  // RacesFound counts *distinct* races across all workers: the same three
  // incident messages as the serial run, not one copy per worker.
  EXPECT_EQ(R.Stats.RacesFound, R.Incidents.size());
  std::vector<std::string> Keys;
  for (const BugReport &I : R.Incidents)
    Keys.push_back(I.Message);
  std::sort(Keys.begin(), Keys.end());
  EXPECT_EQ(std::adjacent_find(Keys.begin(), Keys.end()), Keys.end())
      << "duplicate race incidents across workers";
}

TEST(RaceDetection, SandboxedSearchHarvestsRaces) {
  CheckerOptions O = boundedRacy(RaceCheckMode::On);
  O.Isolate = IsolationMode::Batch;
  O.MaxExecutions = 20;
  CheckResult R = check(racyCrashFault(), O);
  ASSERT_EQ(R.Kind, Verdict::DataRace) << verdictName(R.Kind);
  ASSERT_FALSE(R.Incidents.empty());
  EXPECT_GE(R.Stats.RacesFound, 1u);
  EXPECT_EQ(R.Stats.RacesFound, R.Incidents.size());
  EXPECT_FALSE(R.Incidents.front().Schedule.empty());
}

//===----------------------------------------------------------------------===//
// Zero false positives: the whole registry is DRF.
//===----------------------------------------------------------------------===//

TEST(RaceDetection, NoFalsePositivesAcrossRegistry) {
  for (int Jobs : {1, 4}) {
    for (const RegisteredWorkload &W : allWorkloads()) {
      SCOPED_TRACE(W.Name + " jobs=" + std::to_string(Jobs));
      CheckerOptions O = W.MeasureOptions;
      O.MaxExecutions = 3;
      O.ExecutionBound = 200000;
      O.Races = RaceCheckMode::On;
      O.Jobs = Jobs;
      CheckResult R = check(W.Make(), O);
      EXPECT_EQ(R.Kind, Verdict::Pass) << verdictName(R.Kind);
      EXPECT_EQ(R.Stats.RacesFound, 0u);
      // Registry workloads share state only through modeled sync objects,
      // so nothing is even race-checked.
      EXPECT_EQ(R.Stats.RacesChecked, 0u);
      EXPECT_TRUE(R.Incidents.empty());
    }
  }
}

//===----------------------------------------------------------------------===//
// Non-perturbation: --races=on explores exactly what --races=off does.
//===----------------------------------------------------------------------===//

TEST(RaceDetection, OnModeTraceIsByteIdenticalToOff) {
  // A program that actually races: detection must observe without
  // steering. The engine-level verdict stays Pass in both modes
  // (promotion happens above the engine), so the traces match fully.
  const std::string POff = tempPath("races_off.json");
  const std::string POn = tempPath("races_on.json");
  CheckResult Off =
      runWithTrace(racyCrashFault(), boundedRacy(RaceCheckMode::Off), POff);
  CheckResult On =
      runWithTrace(racyCrashFault(), boundedRacy(RaceCheckMode::On), POn);

  EXPECT_EQ(Off.Kind, Verdict::Pass);
  EXPECT_EQ(On.Kind, Verdict::DataRace);
  EXPECT_EQ(On.Stats.Executions, Off.Stats.Executions);
  EXPECT_EQ(On.Stats.Transitions, Off.Stats.Transitions);

  std::string TOff = slurp(POff);
  ASSERT_FALSE(TOff.empty());
  EXPECT_EQ(TOff, slurp(POn));
}

TEST(RaceDetection, OnModeParallelMultisetMatchesOff) {
  CheckerOptions O = boundedRacy(RaceCheckMode::Off);
  O.Jobs = 4;
  const std::string POff = tempPath("races_par_off.json");
  CheckResult Off = runWithTrace(racyCrashFault(), O, POff);
  ASSERT_TRUE(Off.Stats.SearchExhausted)
      << "the multiset contract needs an exhaustive search";

  O.Races = RaceCheckMode::On;
  const std::string POn = tempPath("races_par_on.json");
  CheckResult On = runWithTrace(racyCrashFault(), O, POn);
  EXPECT_TRUE(On.Stats.SearchExhausted);
  EXPECT_EQ(On.Kind, Verdict::DataRace);
  EXPECT_EQ(On.Stats.Executions, Off.Stats.Executions);
  EXPECT_EQ(On.Stats.Transitions, Off.Stats.Transitions);
  EXPECT_EQ(normalizedMultiset(POn), normalizedMultiset(POff));
}

TEST(RaceDetection, OffModeStatsJsonMentionsNoRaceKeys) {
  // Default-off must be invisible: a racy program checked with races off
  // renders the exact pre-detector report shape -- no races option echo,
  // no races_* stats, no races_* counters.
  obs::Observer Obs{obs::Observer::Config{}};
  CheckerOptions O = boundedRacy(RaceCheckMode::Off);
  O.Obs = &Obs;
  CheckResult R = check(racyCrashFault(), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);

  obs::StatsJsonInfo Info;
  Info.Program = "crashfault-race";
  Info.Options = &O;
  Info.Obs = &Obs;
  std::string Json = obs::renderStatsJson(R, Info);
  EXPECT_EQ(Json.find("races"), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// chooseInt validation (satellite bugfix): a non-positive alternative
// count is a reported workload error, not a checker assert.
//===----------------------------------------------------------------------===//

TEST(RaceDetection, ChooseIntRejectsNonPositiveCounts) {
  for (int N : {0, -3}) {
    SCOPED_TRACE("N=" + std::to_string(N));
    TestProgram P;
    P.Name = "choose-bad";
    P.Body = [N] { (void)Runtime::current().chooseInt(N); };
    CheckResult R = check(P, CheckerOptions());
    ASSERT_EQ(R.Kind, Verdict::SafetyViolation) << verdictName(R.Kind);
    EXPECT_NE(R.Bug->Message.find("chooseInt"), std::string::npos)
        << R.Bug->Message;
  }
}
