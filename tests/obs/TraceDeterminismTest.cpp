//===- tests/obs/TraceDeterminismTest.cpp ---------------------------------===//
//
// The trace-determinism contract from the obs subsystem's design notes:
//
//  * A serial search is fully deterministic, so running it twice with a
//    trace sink attached produces byte-identical files (timestamps are
//    logical, never wall clock).
//
//  * The prefix shards of a parallel exhaustive search partition the
//    choice tree exactly, so the *tree-scoped* events (transitions,
//    execution spans, fairness churn, verdicts) form the same multiset
//    at every --jobs width once worker ids and per-worker clocks are
//    stripped. Engine-scoped events (category "par": work-item pops,
//    donations) exist only in parallel runs and are excluded.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "obs/EventSink.h"
#include "obs/Observer.h"
#include "obs/TraceValidate.h"
#include "workloads/Peterson.h"
#include "workloads/WorkStealQueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace fsmc;
using namespace fsmc::obs;

namespace {

std::string tempPath(const char *Name) {
  return testing::TempDir() + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream F(Path, std::ios::binary);
  std::ostringstream S;
  S << F.rdbuf();
  return S.str();
}

CheckResult runWithTrace(const TestProgram &Program, CheckerOptions Opts,
                         const std::string &TracePath) {
  JsonlTraceSink Sink(TracePath);
  EXPECT_TRUE(Sink.valid());
  Observer::Config OC;
  OC.Sink = &Sink;
  Observer Obs(OC);
  Opts.Obs = &Obs;
  CheckResult R = check(Program, Opts);
  Sink.close();
  return R;
}

/// Sorted canonical event strings with worker/timestamp fields stripped
/// and engine-scoped ("par") events dropped.
std::vector<std::string> normalizedMultiset(const std::string &Path) {
  std::vector<std::string> Out;
  std::string Err;
  EXPECT_TRUE(loadNormalizedEvents(Path, /*StripWorkerAndTime=*/true,
                                   {"par"}, Out, Err))
      << Err;
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(TraceDeterminism, SerialRunsAreByteIdentical) {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = WsqBug::PopReordered;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  // Bug1 is the missing-fence defect; it only manifests under a weak
  // memory model (workloads/WorkStealQueue.h).
  O.Memory = MemoryModel::Tso;

  const std::string P1 = tempPath("serial_run1.json");
  const std::string P2 = tempPath("serial_run2.json");
  CheckResult R1 = runWithTrace(makeWsqProgram(C), O, P1);
  CheckResult R2 = runWithTrace(makeWsqProgram(C), O, P2);
  ASSERT_TRUE(R1.foundBug());
  ASSERT_TRUE(R2.foundBug());

  std::string T1 = slurp(P1);
  ASSERT_FALSE(T1.empty());
  EXPECT_EQ(T1, slurp(P2));

  std::string Err;
  size_t Events = 0;
  EXPECT_TRUE(validateTraceFile(P1, Err, &Events)) << Err;
  EXPECT_GT(Events, R1.Stats.Transitions);
}

TEST(TraceDeterminism, ParallelWidthsAgreeOnTreeEvents) {
  PetersonConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;

  const std::string SerialPath = tempPath("det_jobs1.json");
  O.Jobs = 1;
  CheckResult Serial = runWithTrace(makePetersonProgram(C), O, SerialPath);
  ASSERT_TRUE(Serial.Stats.SearchExhausted)
      << "the multiset contract needs an exhaustive search";
  ASSERT_FALSE(Serial.foundBug());
  std::vector<std::string> Expected = normalizedMultiset(SerialPath);
  ASSERT_FALSE(Expected.empty());

  for (int Jobs : {2, 4}) {
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    const std::string Path =
        tempPath(("det_jobs" + std::to_string(Jobs) + ".json").c_str());
    O.Jobs = Jobs;
    CheckResult Par = runWithTrace(makePetersonProgram(C), O, Path);
    EXPECT_TRUE(Par.Stats.SearchExhausted);
    EXPECT_EQ(Par.Stats.Transitions, Serial.Stats.Transitions);

    std::string Err;
    EXPECT_TRUE(validateTraceFile(Path, Err)) << Err;
    EXPECT_EQ(normalizedMultiset(Path), Expected);
  }
}

} // namespace
