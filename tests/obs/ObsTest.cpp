//===- tests/obs/ObsTest.cpp - Observability unit tests -------------------===//
//
// Unit tests for the obs subsystem: the sharded counter registry and its
// snapshot semantics, the stats-json report (parsed back with the
// in-tree JSON parser, no external tooling), the stop-reason mapping,
// the JSONL trace sink's round trip through the validator, the
// validator's rejection of malformed traces, and the checked-in golden
// trace that pins the on-disk schema.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "obs/Counters.h"
#include "obs/EventSink.h"
#include "obs/Observer.h"
#include "obs/StatsJson.h"
#include "obs/TraceValidate.h"
#include "workloads/WorkStealQueue.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace fsmc;
using namespace fsmc::obs;

namespace {

std::string tempPath(const char *Name) {
  return testing::TempDir() + Name;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream F(Path, std::ios::binary | std::ios::trunc);
  F << Text;
}

TestProgram wsqBug1() {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = WsqBug::PopReordered;
  return makeWsqProgram(C);
}

//===----------------------------------------------------------------------===
// Counter registry.
//===----------------------------------------------------------------------===

TEST(Counters, SnapshotSumsCounterShards) {
  CounterRegistry Reg(4);
  Reg.shard(0).add(Counter::Transitions, 5);
  Reg.shard(1).add(Counter::Transitions, 7);
  Reg.shard(3).add(Counter::Transitions);
  Reg.shard(2).add(Counter::Executions, 2);

  CounterSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.counter(Counter::Transitions), 13u);
  EXPECT_EQ(S.counter(Counter::Executions), 2u);
  EXPECT_EQ(S.counter(Counter::Preemptions), 0u);
}

TEST(Counters, GaugeAggregation) {
  CounterRegistry Reg(4);
  // MaxDepth: per-shard maxima combine with max.
  Reg.shard(0).maxGauge(Gauge::MaxDepth, 10);
  Reg.shard(1).maxGauge(Gauge::MaxDepth, 25);
  Reg.shard(1).maxGauge(Gauge::MaxDepth, 3); // must not lower it
  // ActiveWorkers: each worker contributes its own 0/1; readers sum.
  Reg.shard(1).setGauge(Gauge::ActiveWorkers, 1);
  Reg.shard(2).setGauge(Gauge::ActiveWorkers, 1);
  Reg.shard(0).setGauge(Gauge::WorkQueueDepth, 6);

  CounterSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.gauge(Gauge::MaxDepth), 25u);
  EXPECT_EQ(S.gauge(Gauge::ActiveWorkers), 2u);
  EXPECT_EQ(S.gauge(Gauge::WorkQueueDepth), 6u);
}

TEST(Counters, OutOfRangeWorkerClampsToLastShard) {
  CounterRegistry Reg(2);
  Reg.shard(99).add(Counter::Executions);
  EXPECT_EQ(Reg.snapshot().counter(Counter::Executions), 1u);
}

TEST(Counters, LatencyHistogramBuckets) {
  WorkerCounters W;
  W.addLatencyNs(1);    // [1, 2)      -> bucket 0
  W.addLatencyNs(3);    // [2, 4)      -> bucket 1
  W.addLatencyNs(1000); // [512, 1024) -> bucket 9
  EXPECT_EQ(W.Latency[0].load(), 1u);
  EXPECT_EQ(W.Latency[1].load(), 1u);
  EXPECT_EQ(W.Latency[9].load(), 1u);
}

TEST(Counters, WireNamesAreStable) {
  EXPECT_STREQ(counterName(Counter::Executions), "executions");
  EXPECT_STREQ(counterName(Counter::ReplaySteps), "replay_steps");
  EXPECT_STREQ(counterName(Counter::FairEdgeAdds), "fair_edge_adds");
  EXPECT_STREQ(gaugeName(Gauge::WorkQueueDepth), "workqueue_depth");
  for (unsigned I = 0; I < unsigned(Counter::NumCounters); ++I)
    EXPECT_GT(std::string(counterName(Counter(I))).size(), 0u);
  for (unsigned I = 0; I < unsigned(Gauge::NumGauges); ++I)
    EXPECT_GT(std::string(gaugeName(Gauge(I))).size(), 0u);
}

//===----------------------------------------------------------------------===
// Stats-json report.
//===----------------------------------------------------------------------===

TEST(StatsJson, EscapesStrings) {
  std::string Out;
  appendJsonEscaped(Out, "a\"b\\c\nd\x01");
  EXPECT_EQ(Out, "a\\\"b\\\\c\\nd\\u0001");
}

TEST(StatsJson, StopReasonMapping) {
  CheckResult R;
  R.Stats.SearchExhausted = true;
  EXPECT_STREQ(stopReason(R), "search_exhausted");
  EXPECT_TRUE(budgetNote(R, CheckerOptions()).empty());

  R = CheckResult();
  R.Stats.TimedOut = true;
  EXPECT_STREQ(stopReason(R), "time_budget_exhausted");
  EXPECT_FALSE(budgetNote(R, CheckerOptions()).empty());

  R = CheckResult();
  R.Stats.ExecutionCapHit = true;
  EXPECT_STREQ(stopReason(R), "execution_cap_hit");
  EXPECT_FALSE(budgetNote(R, CheckerOptions()).empty());

  R = CheckResult();
  R.Kind = Verdict::Deadlock;
  EXPECT_STREQ(stopReason(R), "bug_found");
}

TEST(StatsJson, ReportParsesAndMatchesRun) {
  Observer Obs;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  // Bug1 needs a weak-memory search (workloads/WorkStealQueue.h).
  O.Memory = MemoryModel::Tso;
  O.Obs = &Obs;
  CheckResult R = check(wsqBug1(), O);
  ASSERT_TRUE(R.foundBug());

  StatsJsonInfo Info;
  Info.Program = "wsq-bug1";
  Info.Options = &O;
  Info.Obs = &Obs;
  std::string Json = renderStatsJson(R, Info);

  JsonValue V;
  std::string Err;
  ASSERT_TRUE(parseJson(Json, V, Err)) << Err;
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.find("schema")->Num, 1);
  EXPECT_EQ(V.find("program")->Str, "wsq-bug1");
  EXPECT_EQ(V.find("stop_reason")->Str, "bug_found");
  EXPECT_EQ(V.find("replay")->B, false);

  const JsonValue *Stats = V.find("stats");
  ASSERT_NE(Stats, nullptr);
  EXPECT_EQ(uint64_t(Stats->find("executions")->Num), R.Stats.Executions);
  EXPECT_EQ(uint64_t(Stats->find("transitions")->Num), R.Stats.Transitions);

  // The live counters and the post-hoc stats must agree on the serial
  // path: one shard, no sampling.
  const JsonValue *Counters = V.find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(uint64_t(Counters->find("transitions")->Num),
            R.Stats.Transitions);
  EXPECT_EQ(uint64_t(Counters->find("executions")->Num), R.Stats.Executions);
  EXPECT_EQ(uint64_t(Counters->find("bugs_found")->Num), 1u);

  const JsonValue *Bug = V.find("bug");
  ASSERT_NE(Bug, nullptr);
  ASSERT_TRUE(Bug->isObject());
  EXPECT_EQ(Bug->find("schedule")->Str, R.Bug->Schedule);
  EXPECT_EQ(uint64_t(Bug->find("at_execution")->Num), R.Bug->AtExecution);
}

//===----------------------------------------------------------------------===
// JSON parser negatives.
//===----------------------------------------------------------------------===

TEST(JsonParser, RejectsMalformedInput) {
  JsonValue V;
  std::string Err;
  EXPECT_FALSE(parseJson("{", V, Err));
  EXPECT_FALSE(parseJson("[1, 2] trailing", V, Err));
  EXPECT_FALSE(parseJson("\"unterminated", V, Err));
  EXPECT_FALSE(parseJson("{\"a\": }", V, Err));
  EXPECT_FALSE(parseJson("", V, Err));
}

TEST(JsonParser, AcceptsValidDocuments) {
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(parseJson("{\"a\": [1, -2.5, true, null, \"s\"]}", V, Err))
      << Err;
  const JsonValue *A = V.find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->Arr.size(), 5u);
  EXPECT_EQ(A->Arr[0].Num, 1);
  EXPECT_EQ(A->Arr[1].Num, -2.5);
  EXPECT_TRUE(A->Arr[2].B);
  EXPECT_EQ(A->Arr[3].T, JsonValue::Type::Null);
  EXPECT_EQ(A->Arr[4].Str, "s");
}

//===----------------------------------------------------------------------===
// Trace validator.
//===----------------------------------------------------------------------===

TEST(TraceValidator, RejectsMalformedTraces) {
  std::string Err;
  const std::string P = tempPath("bad_trace.json");

  writeFile(P, "{\"not\": \"an array\"}");
  EXPECT_FALSE(validateTraceFile(P, Err));

  // Missing the leading meta record.
  writeFile(P, "[\n{\"name\":\"x\",\"cat\":\"transition\",\"ph\":\"X\","
               "\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0}\n]");
  EXPECT_FALSE(validateTraceFile(P, Err));

  // Unknown phase letter.
  writeFile(P,
            "[\n{\"name\":\"fsmc_trace\",\"cat\":\"meta\",\"ph\":\"i\","
            "\"ts\":0,\"pid\":0,\"tid\":0},\n"
            "{\"name\":\"x\",\"cat\":\"transition\",\"ph\":\"Z\",\"ts\":0,"
            "\"pid\":0,\"tid\":0},\n"
            "{\"name\":\"fsmc_trace_end\",\"cat\":\"meta\",\"ph\":\"i\","
            "\"ts\":0,\"pid\":0,\"tid\":0}\n]");
  EXPECT_FALSE(validateTraceFile(P, Err));

  // "X" span without a duration.
  writeFile(P,
            "[\n{\"name\":\"fsmc_trace\",\"cat\":\"meta\",\"ph\":\"i\","
            "\"ts\":0,\"pid\":0,\"tid\":0},\n"
            "{\"name\":\"x\",\"cat\":\"transition\",\"ph\":\"X\",\"ts\":0,"
            "\"pid\":0,\"tid\":0},\n"
            "{\"name\":\"fsmc_trace_end\",\"cat\":\"meta\",\"ph\":\"i\","
            "\"ts\":0,\"pid\":0,\"tid\":0}\n]");
  EXPECT_FALSE(validateTraceFile(P, Err));
}

TEST(TraceValidator, ArgsFieldTyping) {
  std::string Err;
  const std::string P = tempPath("args_trace.json");
  // Wraps one event in the meta records every valid trace carries.
  auto Trace = [](const std::string &Event) {
    return "[\n{\"name\":\"fsmc_trace\",\"cat\":\"meta\",\"ph\":\"i\","
           "\"ts\":0,\"pid\":0,\"tid\":0},\n" +
           Event +
           ",\n{\"name\":\"fsmc_trace_end\",\"cat\":\"meta\",\"ph\":\"i\","
           "\"ts\":0,\"pid\":0,\"tid\":0}\n]";
  };

  // args must be an object when present.
  writeFile(P, Trace("{\"name\":\"x\",\"cat\":\"execution\",\"ph\":\"X\","
                     "\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0,\"args\":[1]}"));
  EXPECT_FALSE(validateTraceFile(P, Err));
  EXPECT_NE(Err.find("'args'"), std::string::npos) << Err;

  // args.mass must be numeric...
  writeFile(P,
            Trace("{\"name\":\"x\",\"cat\":\"execution\",\"ph\":\"X\","
                  "\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0,"
                  "\"args\":{\"mass\":\"0.5\"}}"));
  EXPECT_FALSE(validateTraceFile(P, Err));

  // ...and a probability: in (0, 1].
  writeFile(P, Trace("{\"name\":\"x\",\"cat\":\"execution\",\"ph\":\"X\","
                     "\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0,"
                     "\"args\":{\"mass\":1.5}}"));
  EXPECT_FALSE(validateTraceFile(P, Err));
  writeFile(P, Trace("{\"name\":\"x\",\"cat\":\"execution\",\"ph\":\"X\","
                     "\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0,"
                     "\"args\":{\"mass\":0}}"));
  EXPECT_FALSE(validateTraceFile(P, Err));

  // steps/end carry declared types.
  writeFile(P, Trace("{\"name\":\"x\",\"cat\":\"execution\",\"ph\":\"X\","
                     "\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0,"
                     "\"args\":{\"steps\":\"two\"}}"));
  EXPECT_FALSE(validateTraceFile(P, Err));
  writeFile(P, Trace("{\"name\":\"x\",\"cat\":\"execution\",\"ph\":\"X\","
                     "\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0,"
                     "\"args\":{\"end\":7}}"));
  EXPECT_FALSE(validateTraceFile(P, Err));

  // A well-formed mass passes, and unknown args keys are accepted so new
  // telemetry can land without a schema bump.
  size_t Events = 0;
  writeFile(P,
            Trace("{\"name\":\"x\",\"cat\":\"execution\",\"ph\":\"X\","
                  "\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0,"
                  "\"args\":{\"steps\":2,\"end\":\"terminated\","
                  "\"mass\":0.125,\"future_field\":[1,2]}}"));
  EXPECT_TRUE(validateTraceFile(P, Err, &Events)) << Err;
  EXPECT_EQ(Events, 1u);
}

TEST(TraceValidator, SinkOutputRoundTrips) {
  const std::string P = tempPath("sink_trace.json");
  {
    JsonlTraceSink Sink(P);
    ASSERT_TRUE(Sink.valid());

    ObsEvent T;
    T.Kind = EventKind::Transition;
    T.Thread = 1;
    T.Ts = 0;
    T.Dur = 1;
    T.Op = OpKind::MutexLock;
    T.Object = 3;
    Sink.event(T);

    ObsEvent E;
    E.Kind = EventKind::ExecutionEnd;
    E.Ts = 0;
    E.Dur = 1;
    E.ArgA = 1;
    E.Detail = "terminated";
    E.Mass = 0.25; // estimator on: the leaf mass rides in args.mass
    Sink.event(E);

    ObsEvent B;
    B.Kind = EventKind::BugFound;
    B.Thread = 0;
    B.Ts = 1;
    B.Detail = "deadlock";
    Sink.event(B);
    Sink.close();
  }

  std::string Err;
  size_t Events = 0;
  EXPECT_TRUE(validateTraceFile(P, Err, &Events)) << Err;
  EXPECT_EQ(Events, 3u);

  std::vector<std::string> Norm;
  ASSERT_TRUE(loadNormalizedEvents(P, /*StripWorkerAndTime=*/true, {}, Norm,
                                   Err))
      << Err;
  ASSERT_EQ(Norm.size(), 3u);
  // Normalization drops pid/ts and sorts keys; the canonical form is the
  // comparison unit of the determinism tests.
  EXPECT_EQ(Norm[0].find("\"pid\""), std::string::npos);
  EXPECT_EQ(Norm[0].find("\"ts\""), std::string::npos);
  EXPECT_NE(Norm[0].find("\"name\":\"lock\""), std::string::npos);
  // The execution event's Mass round-trips as args.mass.
  EXPECT_NE(Norm[1].find("\"mass\":0.25"), std::string::npos) << Norm[1];

  std::vector<std::string> NoVerdict;
  ASSERT_TRUE(loadNormalizedEvents(P, true, {"verdict"}, NoVerdict, Err));
  EXPECT_EQ(NoVerdict.size(), 2u);
}

TEST(TraceValidator, CliEndToEndTraceValidates) {
  const std::string P = tempPath("cli_trace.json");
  Observer::Config OC;
  JsonlTraceSink Sink(P);
  ASSERT_TRUE(Sink.valid());
  OC.Sink = &Sink;
  Observer Obs(OC);

  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 1;
  O.Obs = &Obs;
  CheckResult R = check(wsqBug1(), O);
  Sink.close();

  std::string Err;
  size_t Events = 0;
  ASSERT_TRUE(validateTraceFile(P, Err, &Events)) << Err;
  // At minimum: one span per transition, one per execution, one verdict.
  EXPECT_GE(Events, R.Stats.Transitions + R.Stats.Executions);
}

//===----------------------------------------------------------------------===
// Golden trace: pins the on-disk schema. Regenerate only on a deliberate
// schema bump (see docs/OBSERVABILITY.md).
//===----------------------------------------------------------------------===

TEST(GoldenTrace, SchemaV1Validates) {
  const std::string P =
      std::string(FSMC_SOURCE_DIR) + "/tests/obs/golden/trace_v1.json";
  std::string Err;
  size_t Events = 0;
  ASSERT_TRUE(validateTraceFile(P, Err, &Events)) << Err;
  EXPECT_EQ(Events, 6u);

  std::vector<std::string> Norm;
  ASSERT_TRUE(loadNormalizedEvents(P, true, {}, Norm, Err)) << Err;
  ASSERT_EQ(Norm.size(), 6u);
  EXPECT_EQ(Norm[0],
            "{\"args\":{\"obj\":-1,\"step\":0},\"cat\":\"transition\","
            "\"dur\":1,\"name\":\"start\",\"ph\":\"X\",\"tid\":0}");
  // The estimator's optional mass field is part of schema v1: present on
  // estimator-on executions, absent otherwise (both forms in the golden).
  EXPECT_EQ(Norm[3].find("\"mass\""), std::string::npos) << Norm[3];
  EXPECT_NE(Norm[4].find("\"mass\":0.25"), std::string::npos) << Norm[4];
}

} // namespace
