//===- tests/sync/EventTest.cpp -------------------------------------------===//

#include "sync/Event.h"

#include "core/Checker.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

TEST(Event, ManualResetReleasesAllWaiters) {
  TestProgram P;
  P.Name = "event-manual";
  P.Body = [] {
    auto E = std::make_shared<Event>(Event::Reset::Manual, false, "e");
    auto Count = std::make_shared<Atomic<int>>(0, "count");
    auto Waiter = [E, Count] {
      E->wait();
      Count->fetchAdd(1);
    };
    TestThread A(Waiter, "a");
    TestThread B(Waiter, "b");
    E->set();
    A.join();
    B.join();
    checkThat(Count->raw() == 2, "manual event must release everyone");
    checkThat(E->isSet(), "manual event stays set");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Event, AutoResetReleasesOnePerSet) {
  TestProgram P;
  P.Name = "event-auto";
  P.Body = [] {
    auto E = std::make_shared<Event>(Event::Reset::Auto, false, "e");
    auto Count = std::make_shared<Atomic<int>>(0, "count");
    auto Waiter = [E, Count] {
      E->wait();
      Count->fetchAdd(1);
    };
    TestThread A(Waiter, "a");
    TestThread B(Waiter, "b");
    E->set();
    while (Count->load() < 1)
      sleepFor();
    checkThat(Count->raw() == 1, "auto event released more than one");
    E->set();
    A.join();
    B.join();
    checkThat(Count->raw() == 2, "second set must release the other");
  };
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Event, InitiallySetEventDoesNotBlock) {
  TestProgram P;
  P.Name = "event-preset";
  P.Body = [] {
    Event E(Event::Reset::Auto, true, "e");
    E.wait(); // Must not block.
    checkThat(!E.isSet(), "auto event consumed by wait");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(R.Stats.Executions, 1u);
}

TEST(Event, ResetBlocksSubsequentWaiters) {
  TestProgram P;
  P.Name = "event-reset";
  P.Body = [] {
    auto E = std::make_shared<Event>(Event::Reset::Manual, true, "e");
    E->reset();
    TestThread Setter([E] { E->set(); }, "setter");
    E->wait(); // Blocks until the setter runs.
    Setter.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Event, TimedWaitObservesBothOutcomes) {
  auto TimedOut = std::make_shared<bool>(false);
  auto Signaled = std::make_shared<bool>(false);
  TestProgram P;
  P.Name = "event-timed";
  P.Body = [TimedOut, Signaled] {
    auto E = std::make_shared<Event>(Event::Reset::Auto, false, "e");
    TestThread Setter([E] { E->set(); }, "setter");
    if (E->waitTimed())
      *Signaled = true;
    else
      *TimedOut = true;
    Setter.join();
    // Drain so the auto event's final state is deterministic per branch.
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(*TimedOut) << "the timeout branch must be explored";
  EXPECT_TRUE(*Signaled) << "the signaled branch must be explored";
}

TEST(Event, WaitOnNeverSetEventDeadlocks) {
  TestProgram P;
  P.Name = "event-deadlock";
  P.Body = [] {
    Event E(Event::Reset::Auto, false, "e");
    E.wait();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Deadlock);
}
