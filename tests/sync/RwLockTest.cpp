//===- tests/sync/RwLockTest.cpp ------------------------------------------===//

#include "sync/RwLock.h"

#include "core/Checker.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

TEST(RwLock, WriterExcludesReadersAndWriters) {
  TestProgram P;
  P.Name = "rw-excl";
  P.Body = [] {
    auto L = std::make_shared<RwLock>("l");
    auto Data = std::make_shared<Atomic<int>>(0, "data");
    TestThread Writer([L, Data] {
      L->lockExclusive();
      Data->store(1);
      yieldNow(); // Nobody may observe the intermediate state.
      Data->store(2);
      L->unlockExclusive();
    }, "writer");
    TestThread Reader([L, Data] {
      L->lockShared();
      int V = Data->load();
      checkThat(V == 0 || V == 2, "reader saw a torn write");
      L->unlockShared();
    }, "reader");
    Writer.join();
    Reader.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(RwLock, ReadersShareInSomeInterleaving) {
  auto MaxReaders = std::make_shared<int>(0);
  TestProgram P;
  P.Name = "rw-share";
  P.Body = [MaxReaders] {
    auto L = std::make_shared<RwLock>("l");
    auto Reader = [L, MaxReaders] {
      L->lockShared();
      if (L->readers() > *MaxReaders)
        *MaxReaders = L->readers();
      yieldNow();
      L->unlockShared();
    };
    TestThread A(Reader, "a");
    TestThread B(Reader, "b");
    A.join();
    B.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(*MaxReaders, 2)
      << "some interleaving must admit both readers concurrently";
}

TEST(RwLock, WriterBlockedWhileReaderHolds) {
  TestProgram P;
  P.Name = "rw-block";
  P.Body = [] {
    auto L = std::make_shared<RwLock>("l");
    auto Order = std::make_shared<Atomic<int>>(0, "order");
    L->lockShared();
    TestThread Writer([L, Order] {
      L->lockExclusive();
      checkThat(Order->raw() == 1, "writer ran before reader released");
      L->unlockExclusive();
    }, "writer");
    yieldNow();
    Order->store(1);
    L->unlockShared();
    Writer.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(RwLock, UnlockSharedWithoutReadersIsViolation) {
  TestProgram P;
  P.Name = "rw-bad";
  P.Body = [] {
    RwLock L("l");
    L.unlockShared();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
}

TEST(RwLock, UnlockExclusiveByNonWriterIsViolation) {
  TestProgram P;
  P.Name = "rw-bad2";
  P.Body = [] {
    RwLock L("l");
    L.unlockExclusive();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
}
