//===- tests/sync/MutexTest.cpp -------------------------------------------===//

#include "sync/Mutex.h"

#include "core/Checker.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

TEST(Mutex, MutualExclusionHoldsInAllInterleavings) {
  // A classic non-atomic read-modify-write protected by a mutex: the
  // exhaustive search proves no interleaving tears it.
  TestProgram P;
  P.Name = "mutex-rmw";
  P.Body = [] {
    auto M = std::make_shared<Mutex>("m");
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Worker = [M, X] {
      M->lock();
      int V = X->load();
      yieldNow(); // Widen the window: still protected by the mutex.
      X->store(V + 1);
      M->unlock();
    };
    TestThread A(Worker, "a");
    TestThread B(Worker, "b");
    A.join();
    B.join();
    checkThat(X->raw() == 2, "lost update despite mutex");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Mutex, UnprotectedRmwIsTornInSomeInterleaving) {
  // The same program without the mutex must fail: this checks that the
  // checker actually explores the interleaving that loses an update.
  TestProgram P;
  P.Name = "racy-rmw";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Worker = [X] {
      int V = X->load();
      X->store(V + 1);
    };
    TestThread A(Worker, "a");
    TestThread B(Worker, "b");
    A.join();
    B.join();
    checkThat(X->raw() == 2, "lost update");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
  EXPECT_NE(R.Bug->Message.find("lost update"), std::string::npos);
}

TEST(Mutex, TryLockFailsExactlyWhenHeld) {
  auto SawFail = std::make_shared<bool>(false);
  auto SawSucceed = std::make_shared<bool>(false);
  TestProgram P;
  P.Name = "trylock";
  P.Body = [SawFail, SawSucceed] {
    auto M = std::make_shared<Mutex>("m");
    TestThread Holder([M] {
      M->lock();
      yieldNow();
      M->unlock();
    }, "holder");
    if (M->tryLock()) {
      *SawSucceed = true;
      checkThat(M->holder() == Runtime::current().self(),
                "tryLock success must record the holder");
      M->unlock();
    } else {
      *SawFail = true;
      checkThat(M->isHeld(), "tryLock may only fail while held");
    }
    Holder.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(*SawFail) << "some interleaving must observe a held mutex";
  EXPECT_TRUE(*SawSucceed) << "some interleaving must acquire directly";
}

TEST(Mutex, UnlockByNonOwnerIsAViolation) {
  TestProgram P;
  P.Name = "bad-unlock";
  P.Body = [] {
    Mutex M("m");
    M.unlock();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
  EXPECT_NE(R.Bug->Message.find("unlock"), std::string::npos);
}

TEST(Mutex, LockIsDisabledWhileHeldAndWakesOnUnlock) {
  // Covered at runtime level too; here through the full checker: a
  // blocking chain of three threads must serialize all 3 increments.
  TestProgram P;
  P.Name = "chain";
  P.Body = [] {
    auto M = std::make_shared<Mutex>("m");
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Worker = [M, X] {
      M->lock();
      X->store(X->load() + 1);
      M->unlock();
    };
    TestThread A(Worker, "a");
    TestThread B(Worker, "b");
    TestThread C(Worker, "c");
    A.join();
    B.join();
    C.join();
    checkThat(X->raw() == 3, "serialized increments must all land");
  };
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}
