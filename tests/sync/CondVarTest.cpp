//===- tests/sync/CondVarTest.cpp -----------------------------------------===//

#include "sync/CondVar.h"

#include "core/Checker.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

TEST(CondVar, WaitNotifyDeliversPredicate) {
  TestProgram P;
  P.Name = "cv-basic";
  P.Body = [] {
    auto M = std::make_shared<Mutex>("m");
    auto CV = std::make_shared<CondVar>("cv");
    auto Ready = std::make_shared<Atomic<int>>(0, "ready");
    TestThread Setter([M, CV, Ready] {
      M->lock();
      Ready->store(1);
      CV->notifyOne();
      M->unlock();
    }, "setter");
    M->lock();
    while (Ready->load() == 0)
      CV->wait(*M);
    checkThat(Ready->raw() == 1, "woken before the predicate held");
    M->unlock();
    Setter.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(CondVar, NotifyWithNoWaiterIsLost) {
  // The canonical missed-wakeup: signal first, wait after -> deadlock in
  // the interleaving where the waiter checks before the setter runs...
  // unless the predicate loop re-checks, which it does here, so the
  // *correct* idiom passes.
  TestProgram P;
  P.Name = "cv-lost-signal-ok";
  P.Body = [] {
    auto M = std::make_shared<Mutex>("m");
    auto CV = std::make_shared<CondVar>("cv");
    auto Flag = std::make_shared<Atomic<int>>(0, "flag");
    TestThread Setter([M, CV, Flag] {
      M->lock();
      Flag->store(1);
      CV->notifyOne();
      M->unlock();
    }, "setter");
    M->lock();
    while (Flag->load() == 0)
      CV->wait(*M);
    M->unlock();
    Setter.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(CondVar, WaitWithoutPredicateLoopDeadlocks) {
  // Waiting unconditionally after the signal was already consumed (sent
  // before the waiter registered) deadlocks: the checker must find it.
  TestProgram P;
  P.Name = "cv-no-loop";
  P.Body = [] {
    auto M = std::make_shared<Mutex>("m");
    auto CV = std::make_shared<CondVar>("cv");
    TestThread Setter([M, CV] {
      M->lock();
      CV->notifyOne(); // Lost if nobody is waiting yet.
      M->unlock();
    }, "setter");
    M->lock();
    CV->wait(*M); // No predicate: waits forever in some interleaving.
    M->unlock();
    Setter.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Deadlock);
}

TEST(CondVar, NotifyOneWakesExactlyOne) {
  TestProgram P;
  P.Name = "cv-one";
  P.Body = [] {
    auto M = std::make_shared<Mutex>("m");
    auto CV = std::make_shared<CondVar>("cv");
    auto Woken = std::make_shared<Atomic<int>>(0, "woken");
    auto Waiter = [M, CV, Woken] {
      M->lock();
      CV->wait(*M);
      Woken->fetchAdd(1);
      M->unlock();
    };
    TestThread A(Waiter, "a");
    TestThread B(Waiter, "b");
    // Let both block, then wake one; then wake the other so the test
    // terminates. The yielding sleeps order the phases fairly.
    while (CV->waiters() < 2)
      sleepFor();
    M->lock();
    CV->notifyOne();
    M->unlock();
    while (Woken->load() < 1)
      sleepFor();
    checkThat(Woken->raw() == 1, "notifyOne woke more than one waiter");
    M->lock();
    CV->notifyOne();
    M->unlock();
    A.join();
    B.join();
    checkThat(Woken->raw() == 2, "second notify must wake the other");
  };
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  TestProgram P;
  P.Name = "cv-all";
  P.Body = [] {
    auto M = std::make_shared<Mutex>("m");
    auto CV = std::make_shared<CondVar>("cv");
    auto Woken = std::make_shared<Atomic<int>>(0, "woken");
    auto Waiter = [M, CV, Woken] {
      M->lock();
      CV->wait(*M);
      Woken->fetchAdd(1);
      M->unlock();
    };
    TestThread A(Waiter, "a");
    TestThread B(Waiter, "b");
    while (CV->waiters() < 2)
      sleepFor();
    M->lock();
    CV->notifyAll();
    M->unlock();
    A.join();
    B.join();
    checkThat(Woken->raw() == 2, "notifyAll must wake everyone");
  };
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(CondVar, TimedWaitAlwaysReturnsAndYields) {
  // A timed wait may time out with no signal at all; the loop around it
  // re-checks and so the program still terminates (fairly).
  TestProgram P;
  P.Name = "cv-timed";
  P.Body = [] {
    auto M = std::make_shared<Mutex>("m");
    auto CV = std::make_shared<CondVar>("cv");
    auto Flag = std::make_shared<Atomic<int>>(0, "flag");
    TestThread Setter([Flag] { Flag->store(1); }, "setter");
    M->lock();
    while (Flag->load() == 0)
      (void)CV->waitTimed(*M); // Timeout path: no notify ever sent.
    M->unlock();
    Setter.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted)
      << "timed waits are yields; fairness must terminate the spin";
}

TEST(CondVar, WaitWithoutMutexIsViolation) {
  TestProgram P;
  P.Name = "cv-nolock";
  P.Body = [] {
    Mutex M("m");
    CondVar CV("cv");
    CV.wait(M); // Caller does not hold M.
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
}
