//===- tests/sync/BarrierTest.cpp -----------------------------------------===//

#include "sync/Barrier.h"

#include "core/Checker.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

TEST(Barrier, NoThreadPassesEarly) {
  // Phase separation: everyone writes in phase 1, the barrier, everyone
  // reads in phase 2. In every interleaving the reads see all writes.
  TestProgram P;
  P.Name = "barrier-phases";
  P.Body = [] {
    const int N = 3;
    auto B = std::make_shared<Barrier>(N, "b");
    auto Flags = std::make_shared<std::vector<int>>(N, 0);
    auto Sum = std::make_shared<Atomic<int>>(0, "sum");
    std::vector<TestThread> Ts;
    for (int I = 0; I < N; ++I)
      Ts.emplace_back(
          [B, Flags, Sum, I, N] {
            (*Flags)[size_t(I)] = 1;
            yieldNow();
            B->arriveAndWait();
            int Total = 0;
            for (int J = 0; J < N; ++J)
              Total += (*Flags)[size_t(J)];
            checkThat(Total == N, "crossed the barrier before everyone");
            Sum->fetchAdd(Total);
          },
          "t" + std::to_string(I));
    for (TestThread &T : Ts)
      T.join();
    checkThat(Sum->raw() == N * N, "all phases must complete");
  };
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Barrier, ExactlyOneSerialThreadPerGeneration) {
  TestProgram P;
  P.Name = "barrier-serial";
  P.Body = [] {
    auto B = std::make_shared<Barrier>(2, "b");
    auto Serials = std::make_shared<Atomic<int>>(0, "serials");
    auto Worker = [B, Serials] {
      if (B->arriveAndWait())
        Serials->fetchAdd(1);
    };
    TestThread A(Worker, "a");
    TestThread C(Worker, "c");
    A.join();
    C.join();
    checkThat(Serials->raw() == 1, "exactly one serial thread");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Barrier, IsCyclicAcrossGenerations) {
  TestProgram P;
  P.Name = "barrier-cyclic";
  P.Body = [] {
    const int Rounds = 3;
    auto B = std::make_shared<Barrier>(2, "b");
    auto Phase = std::make_shared<Atomic<int>>(0, "phase");
    auto Worker = [B, Phase] {
      for (int R = 0; R < Rounds; ++R) {
        int Before = Phase->load();
        checkThat(Before / 2 == R, "phase out of sync with round");
        Phase->fetchAdd(1);
        B->arriveAndWait();
      }
    };
    TestThread A(Worker, "a");
    TestThread C(Worker, "c");
    A.join();
    C.join();
    checkThat(Phase->raw() == 2 * Rounds, "all rounds completed");
    checkThat(B->generation() == Rounds, "one generation per round");
  };
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 1;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Barrier, MissingParticipantDeadlocks) {
  TestProgram P;
  P.Name = "barrier-short";
  P.Body = [] {
    Barrier B(2, "b");
    B.arriveAndWait(); // The second participant never arrives.
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Deadlock);
}
