//===- tests/sync/AtomicTest.cpp ------------------------------------------===//

#include "sync/Atomic.h"

#include "core/Checker.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

TEST(Atomic, FetchAddIsAtomicUnderAllInterleavings) {
  TestProgram P;
  P.Name = "atomic-fa";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Worker = [X] {
      X->fetchAdd(1);
      X->fetchAdd(1);
    };
    TestThread A(Worker, "a");
    TestThread B(Worker, "b");
    A.join();
    B.join();
    checkThat(X->raw() == 4, "fetchAdd lost an update");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Atomic, CompareExchangePublishesExactlyOnce) {
  TestProgram P;
  P.Name = "atomic-cas";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Winners = std::make_shared<Atomic<int>>(0, "winners");
    auto Claim = [X, Winners] {
      int Expected = 0;
      if (X->compareExchange(Expected, 1))
        Winners->fetchAdd(1);
      else
        checkThat(Expected == 1, "failed CAS must report observed value");
    };
    TestThread A(Claim, "a");
    TestThread B(Claim, "b");
    A.join();
    B.join();
    checkThat(Winners->raw() == 1, "exactly one CAS may win");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Atomic, ExchangeReturnsOldValue) {
  TestProgram P;
  P.Name = "atomic-xchg";
  P.Body = [] {
    Atomic<int> X(5, "x");
    int Old = X.exchange(9);
    checkThat(Old == 5, "exchange must return the prior value");
    checkThat(X.raw() == 9, "exchange must install the new value");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Atomic, LoadStoreInterleavingsExposeRaces) {
  // A read-modify-write split into load and store must lose updates in
  // some interleaving: the dual of the fetchAdd test.
  auto SawLost = std::make_shared<bool>(false);
  TestProgram P;
  P.Name = "atomic-torn";
  P.Body = [SawLost] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Worker = [X] { X->store(X->load() + 1); };
    TestThread A(Worker, "a");
    TestThread B(Worker, "b");
    A.join();
    B.join();
    if (X->raw() != 2)
      *SawLost = true;
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(*SawLost) << "the lost-update interleaving must be explored";
}

TEST(Atomic, RawAccessIsInvisibleToScheduler) {
  TestProgram P;
  P.Name = "atomic-raw";
  P.Body = [] {
    Atomic<int> X(0, "x");
    X.rawStore(3);
    checkThat(X.raw() == 3, "raw store round-trips");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  // start transition only: raw accesses introduce no scheduling points.
  EXPECT_EQ(R.Stats.MaxSyncOps, 0u);
}

TEST(Atomic, WorksWithBoolAndEnums) {
  enum class Color { Red, Green };
  TestProgram P;
  P.Name = "atomic-types";
  P.Body = [] {
    Atomic<bool> B(false, "b");
    B.store(true);
    checkThat(B.load(), "bool store/load");
    Atomic<Color> C(Color::Red, "c");
    C.store(Color::Green);
    checkThat(C.load() == Color::Green, "enum store/load");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
}
