//===- tests/sync/SemaphoreTest.cpp ---------------------------------------===//

#include "sync/Semaphore.h"

#include "core/Checker.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

TEST(Semaphore, CountNeverGoesNegative) {
  TestProgram P;
  P.Name = "sem-basic";
  P.Body = [] {
    auto S = std::make_shared<Semaphore>(1, "s");
    auto InCrit = std::make_shared<Atomic<int>>(0, "crit");
    auto Worker = [S, InCrit] {
      S->wait();
      int N = InCrit->fetchAdd(1);
      checkThat(N == 0, "two threads inside a binary semaphore");
      InCrit->fetchAdd(-1);
      S->post();
    };
    TestThread A(Worker, "a");
    TestThread B(Worker, "b");
    A.join();
    B.join();
    checkThat(S->count() == 1, "semaphore count must return to 1");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Semaphore, ProducerConsumerHandshake) {
  TestProgram P;
  P.Name = "sem-handshake";
  P.Body = [] {
    auto Items = std::make_shared<Semaphore>(0, "items");
    auto Data = std::make_shared<Atomic<int>>(0, "data");
    TestThread Producer([Items, Data] {
      Data->store(42);
      Items->post();
    }, "producer");
    Items->wait(); // Blocks until the producer posts.
    checkThat(Data->raw() == 42, "semaphore must order the publication");
    Producer.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Semaphore, TryWaitObservesBothOutcomes) {
  auto Hit = std::make_shared<bool>(false);
  auto Miss = std::make_shared<bool>(false);
  TestProgram P;
  P.Name = "sem-trywait";
  P.Body = [Hit, Miss] {
    auto S = std::make_shared<Semaphore>(0, "s");
    TestThread Poster([S] { S->post(); }, "poster");
    if (S->tryWait())
      *Hit = true;
    else
      *Miss = true;
    Poster.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(*Hit);
  EXPECT_TRUE(*Miss);
}

TEST(Semaphore, CountingAdmitsExactlyN) {
  TestProgram P;
  P.Name = "sem-counting";
  P.Body = [] {
    auto S = std::make_shared<Semaphore>(2, "s");
    auto Inside = std::make_shared<Atomic<int>>(0, "inside");
    auto Max = std::make_shared<Atomic<int>>(0, "max");
    auto Worker = [S, Inside, Max] {
      S->wait();
      int Now = Inside->fetchAdd(1) + 1;
      if (Now > Max->raw())
        Max->rawStore(Now);
      Inside->fetchAdd(-1);
      S->post();
    };
    TestThread A(Worker, "a");
    TestThread B(Worker, "b");
    TestThread C(Worker, "c");
    A.join();
    B.join();
    C.join();
    checkThat(Max->raw() <= 2, "semaphore admitted more than its count");
  };
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Semaphore, WaitOnZeroBlocksForever) {
  TestProgram P;
  P.Name = "sem-deadlock";
  P.Body = [] {
    Semaphore S(0, "s");
    S.wait(); // Nobody posts: deadlock.
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Deadlock);
}
