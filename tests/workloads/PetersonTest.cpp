//===- tests/workloads/PetersonTest.cpp -----------------------------------===//
//
// Peterson's algorithm under the fair checker: exhaustive verification of
// the correct protocol, livelock detection for the no-turn variant, and
// safety violation for the flag-after-check variant.
//
//===----------------------------------------------------------------------===//

#include "workloads/Peterson.h"

#include <gtest/gtest.h>

using namespace fsmc;

TEST(Peterson, CorrectProtocolVerifiedExhaustively) {
  // The unbounded fair DFS on Peterson is finite (the protocol has no
  // fair cycle) but very large; the context-bounded searches exhaust
  // quickly and already cover every reachable state at cb=3.
  PetersonConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 3;
  O.TrackCoverage = true;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(makePetersonProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted)
      << "the fair search must terminate despite the spin loops";
  EXPECT_GT(R.Stats.DistinctStates, 20u);
}

TEST(Peterson, UnboundedFairSearchFindsNoBugWithinBudget) {
  PetersonConfig C;
  CheckerOptions O;
  O.TimeBudgetSeconds = 10;
  CheckResult R = check(makePetersonProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Peterson, TwoRoundsStillExhaustible) {
  PetersonConfig C;
  C.Rounds = 2;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(makePetersonProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Peterson, NoTurnVariantLivelocks) {
  PetersonConfig C;
  C.Kind = PetersonConfig::Variant::NoTurn;
  CheckerOptions O;
  O.ExecutionBound = 300;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(makePetersonProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Livelock)
      << "both flags up -> both spin (yielding): a fair livelock";
}

TEST(Peterson, FlagAfterCheckBreaksMutualExclusion) {
  PetersonConfig C;
  C.Kind = PetersonConfig::Variant::FlagAfterCheck;
  CheckerOptions O;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(makePetersonProgram(C), O);
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation);
  EXPECT_NE(R.Bug->Message.find("mutual exclusion"), std::string::npos);
}

TEST(Peterson, SpinWithoutYieldIsGoodSamaritanViolation) {
  PetersonConfig C;
  C.YieldInSpin = false;
  CheckerOptions O;
  O.GoodSamaritanBound = 150;
  O.ExecutionBound = 2000;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(makePetersonProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::GoodSamaritanViolation);
}

TEST(Peterson, ContextBoundZeroMissesTheLivelock) {
  // Sustaining the no-turn livelock needs preemptions each lap, so the
  // non-preemptive search completes without seeing it -- the same
  // phenomenon as Figure 1's livelock needing unbounded search.
  PetersonConfig C;
  C.Kind = PetersonConfig::Variant::NoTurn;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 0;
  O.ExecutionBound = 300;
  O.TimeBudgetSeconds = 60;
  CheckResult R = check(makePetersonProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}
