//===- tests/workloads/WorkloadTest.cpp -----------------------------------===//
//
// The evaluation programs: correct variants pass bounded fair searches,
// every seeded bug is found with its expected verdict (the Table 3 bug
// inventory), and the workload registry is coherent.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadRegistry.h"

#include "workloads/Ape.h"
#include "workloads/Channels.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Promise.h"
#include "workloads/WorkStealQueue.h"

#include <gtest/gtest.h>

using namespace fsmc;

namespace {

CheckerOptions boundedFair(double Seconds = 60) {
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = Seconds;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===
// Dining philosophers.
//===----------------------------------------------------------------------===

TEST(Dining, MixedVariantIsCorrectAndExhaustible) {
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::Mixed;
  CheckerOptions O;
  O.TrackCoverage = true;
  CheckResult R = check(makeDiningProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
  EXPECT_GT(R.Stats.DistinctStates, 10u);
}

TEST(Dining, ThreePhilosophersStillExhaustible) {
  DiningConfig C;
  C.Philosophers = 3;
  C.Kind = DiningConfig::Variant::Mixed;
  CheckerOptions O = boundedFair(120);
  CheckResult R = check(makeDiningProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Dining, DeadlockVariantWithThreePhilosophers) {
  DiningConfig C;
  C.Philosophers = 3;
  C.Kind = DiningConfig::Variant::DeadlockProne;
  CheckResult R = check(makeDiningProgram(C), CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Deadlock);
}

TEST(Dining, MultipleMealsSupported) {
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::OrderedBlocking;
  C.Meals = 2;
  CheckResult R = check(makeDiningProgram(C), CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

//===----------------------------------------------------------------------===
// Work-stealing queue: Table 3's WSQ bugs.
//===----------------------------------------------------------------------===

TEST(Wsq, CorrectTheProtocolPasses) {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  CheckResult R = check(makeWsqProgram(C), boundedFair());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Wsq, CorrectWithTwoStealersAndInterleavedPops) {
  WsqConfig C;
  C.Stealers = 2;
  C.Tasks = 2;
  C.InterleavePops = true;
  CheckerOptions O = boundedFair(120);
  O.ContextBound = 1;
  CheckResult R = check(makeWsqProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

struct WsqBugCase {
  const char *Name;
  WsqBug Bug;
  const char *ExpectMsg;
  /// Bug1 is the missing-fence defect: only a weak-memory search exposes
  /// it (workloads/WorkStealQueue.h); bug2/bug3 reproduce under sc.
  MemoryModel Memory;
};

class WsqBugTest : public ::testing::TestWithParam<WsqBugCase> {};

TEST_P(WsqBugTest, SeededBugIsFound) {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = GetParam().Bug;
  CheckerOptions O = boundedFair(120);
  O.Memory = GetParam().Memory;
  CheckResult R = check(makeWsqProgram(C), O);
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation)
      << "bug " << GetParam().Name << " not found";
  EXPECT_NE(R.Bug->Message.find(GetParam().ExpectMsg), std::string::npos)
      << "actual: " << R.Bug->Message;
}

INSTANTIATE_TEST_SUITE_P(
    Bugs, WsqBugTest,
    ::testing::Values(
        WsqBugCase{"PopReordered", WsqBug::PopReordered, "twice",
                   MemoryModel::Tso},
        WsqBugCase{"StealNoRestore", WsqBug::StealNoRestore, "lost",
                   MemoryModel::Sc},
        WsqBugCase{"PopNoRecheck", WsqBug::PopNoRecheck, "lost",
                   MemoryModel::Sc}),
    [](const auto &Info) { return std::string(Info.param.Name); });

//===----------------------------------------------------------------------===
// Channels: Table 3's Dryad bugs.
//===----------------------------------------------------------------------===

TEST(Channels, CorrectChannelPassesBoundedSearch) {
  ChannelsConfig C;
  C.Producers = 1;
  C.Consumers = 2;
  C.Messages = 2;
  CheckerOptions O = boundedFair(120);
  O.ContextBound = 1;
  CheckResult R = check(makeChannelsProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Channels, Bug1IfInsteadOfWhile) {
  ChannelsConfig C;
  C.Bug = ChannelBug::IfInsteadOfWhile;
  CheckResult R = check(makeChannelsProgram(C), boundedFair(180));
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
  EXPECT_NE(R.Bug->Message.find("empty buffer"), std::string::npos);
}

TEST(Channels, Bug2LostSignalDeadlocks) {
  ChannelsConfig C;
  C.Bug = ChannelBug::LostSignal;
  C.Producers = 2;
  C.Consumers = 1;
  C.Messages = 2;
  C.Capacity = 2;
  CheckResult R = check(makeChannelsProgram(C), boundedFair(180));
  EXPECT_EQ(R.Kind, Verdict::Deadlock);
}

TEST(Channels, Bug3RacyCloseUseAfterFree) {
  ChannelsConfig C;
  C.Bug = ChannelBug::RacyClose;
  C.CloseAfter = 1;
  CheckResult R = check(makeChannelsProgram(C), boundedFair(180));
  // The unlocked teardown either trips the use-after-free check or
  // deadlocks waiters the close no longer wakes correctly; both are
  // manifestations of bug 3.
  EXPECT_TRUE(R.Kind == Verdict::SafetyViolation ||
              R.Kind == Verdict::Deadlock)
      << verdictName(R.Kind);
}

TEST(Channels, Bug4BadCloseFixFound) {
  ChannelsConfig C;
  C.Bug = ChannelBug::BadCloseFix;
  C.CloseAfter = 1;
  CheckResult R = check(makeChannelsProgram(C), boundedFair(180));
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
  EXPECT_NE(R.Bug->Message.find("after close"), std::string::npos);
}

TEST(Channels, CancellationPathIsCorrectWithoutBugs) {
  ChannelsConfig C;
  C.CloseAfter = 1;
  CheckerOptions O = boundedFair(120);
  O.ContextBound = 1;
  CheckResult R = check(makeChannelsProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Channels, FifoMuxPreservesPerInputOrder) {
  FifoMuxConfig C;
  C.Inputs = 2;
  C.MessagesPerInput = 2;
  CheckerOptions O;
  O.Kind = SearchKind::RandomWalk;
  O.MaxExecutions = 300;
  O.ExecutionBound = 100000;
  CheckResult R = check(makeFifoMuxProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

//===----------------------------------------------------------------------===
// Promise and APE.
//===----------------------------------------------------------------------===

TEST(Promise, DeliversValuesInOrder) {
  PromiseConfig C;
  C.Cells = 3;
  CheckResult R = check(makePromiseProgram(C), boundedFair());
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Ape, CompletesAllItemsAcrossRetries) {
  ApeConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::RandomWalk;
  O.MaxExecutions = 300;
  O.Seed = 11;
  O.ExecutionBound = 100000;
  CheckResult R = check(makeApeProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Ape, BoundedFairSearchOnSmallConfig) {
  ApeConfig C;
  C.Workers = 1;
  C.Items = 2;
  C.TransientFailures = false;
  CheckerOptions O = boundedFair(180);
  O.ContextBound = 1;
  CheckResult R = check(makeApeProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

//===----------------------------------------------------------------------===
// Registry.
//===----------------------------------------------------------------------===

TEST(Registry, AllWorkloadsRegisteredAndRunnable) {
  const auto &All = allWorkloads();
  ASSERT_GE(All.size(), 7u) << "every Table 1 row needs a workload";
  for (const auto &W : All) {
    EXPECT_FALSE(W.Name.empty());
    EXPECT_FALSE(W.SourceFiles.empty());
    TestProgram P = W.Make();
    EXPECT_TRUE(P.Body) << W.Name;
    CheckerOptions O = W.MeasureOptions;
    O.MaxExecutions = 3;
    O.ExecutionBound = 200000;
    CheckResult R = check(P, O);
    EXPECT_EQ(R.Kind, Verdict::Pass) << W.Name << ": "
                                     << (R.Bug ? R.Bug->Message : "");
    EXPECT_GT(R.Stats.MaxThreads, 1) << W.Name;
    EXPECT_GT(R.Stats.MaxSyncOps, 0u) << W.Name;
  }
}
