//===- tests/workloads/KernelTest.cpp -------------------------------------===//
//
// The mini-kernel (Singularity analog): boot/shutdown under the checker,
// plus unit tests of the IPC port and the individual services.
//
//===----------------------------------------------------------------------===//

#include "workloads/minikernel/Kernel.h"

#include "sync/TestThread.h"
#include "workloads/minikernel/Ipc.h"
#include "workloads/minikernel/Services.h"

#include <gtest/gtest.h>

using namespace fsmc;
using namespace fsmc::minikernel;

TEST(Port, SendRecvFifo) {
  TestProgram P;
  P.Name = "port-fifo";
  P.Body = [] {
    Port Q(2, "q");
    TestThread Producer([&Q] {
      for (int I = 0; I < 4; ++I) {
        Message M;
        M.Op = 100 + I;
        Q.send(M);
      }
      Q.close();
    }, "producer");
    Message M;
    int Expected = 100;
    while (Q.recv(M))
      checkThat(M.Op == Expected++, "port must be FIFO");
    checkThat(Expected == 104, "port dropped messages");
    Producer.join();
  };
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Port, SendOnClosedPortIsViolation) {
  TestProgram P;
  P.Name = "port-closed";
  P.Body = [] {
    Port Q(2, "q");
    Q.close();
    Message M;
    Q.send(M);
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
}

TEST(Port, RpcRoundTrip) {
  TestProgram P;
  P.Name = "rpc";
  P.Body = [] {
    Port Q(2, "q");
    TestThread Server([&Q] {
      Message M;
      while (Q.recv(M))
        rpcReply(M, M.A * 10);
    }, "server");
    checkThat(rpcCall(Q, 1, 7) == 70, "rpc must return the computed value");
    checkThat(rpcCall(Q, 1, 3) == 30, "second rpc must also work");
    Q.close();
    Server.join();
  };
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(MemoryService, DetectsDoubleFree) {
  TestProgram P;
  P.Name = "mem-doublefree";
  P.Body = [] {
    MemoryService Mem(4);
    TestThread T([&Mem] { Mem.run(); }, "svc");
    Mem.ready().wait();
    int Page = rpcCall(Mem.port(), OpAlloc);
    rpcCall(Mem.port(), OpFree, Page);
    rpcCall(Mem.port(), OpFree, Page); // Double free.
    Mem.port().close();
    T.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
  EXPECT_NE(R.Bug->Message.find("free"), std::string::npos);
}

TEST(MemoryService, AllocatorExhaustionIsViolation) {
  TestProgram P;
  P.Name = "mem-oom";
  P.Body = [] {
    MemoryService Mem(1);
    TestThread T([&Mem] { Mem.run(); }, "svc");
    Mem.ready().wait();
    rpcCall(Mem.port(), OpAlloc);
    rpcCall(Mem.port(), OpAlloc); // Out of pages.
    Mem.port().close();
    T.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
}

TEST(NameService, RegisterLookupUnregister) {
  TestProgram P;
  P.Name = "names";
  P.Body = [] {
    NameService Names;
    TestThread T([&Names] { Names.run(); }, "svc");
    Names.ready().wait();
    checkThat(rpcCall(Names.port(), OpLookup, 5) == -1, "empty lookup");
    rpcCall(Names.port(), OpRegister, 5, 99);
    checkThat(rpcCall(Names.port(), OpLookup, 5) == 99, "lookup");
    checkThat(rpcCall(Names.port(), OpUnregister, 5) == 1, "unregister");
    checkThat(rpcCall(Names.port(), OpUnregister, 5) == 0,
              "second unregister reports missing");
    Names.port().close();
    T.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Kernel, BootAndShutdownUnderRandomWalks) {
  KernelConfig C;
  C.Apps = 3;
  CheckerOptions O;
  O.Kind = SearchKind::RandomWalk;
  O.MaxExecutions = 100;
  O.Seed = 5;
  O.ExecutionBound = 200000;
  CheckResult R = check(makeKernelBootProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass)
      << (R.Bug ? R.Bug->Message : "") << "\n"
      << (R.Bug ? R.Bug->TraceText : "");
}

TEST(Kernel, BootWithFullTableOneConfig) {
  // The Table 1 shape: 14 threads (main + 4 services + 9 apps).
  KernelConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::RandomWalk;
  O.MaxExecutions = 10;
  O.Seed = 9;
  O.ExecutionBound = 500000;
  CheckResult R = check(makeKernelBootProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(R.Stats.MaxThreads, 14);
}

TEST(Kernel, BootUnderBoundedFairSearch) {
  // A tiny configuration that the systematic fair search can cover.
  KernelConfig C;
  C.Apps = 1;
  C.WithTimer = false;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 1;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(makeKernelBootProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Kernel, TimerMakesStateSpaceCyclicYetFairTerminating) {
  KernelConfig C;
  C.Apps = 1;
  C.WithTimer = true;
  CheckerOptions O;
  O.Kind = SearchKind::RandomWalk;
  O.MaxExecutions = 50;
  O.Seed = 13;
  O.ExecutionBound = 200000;
  CheckResult R = check(makeKernelBootProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}
