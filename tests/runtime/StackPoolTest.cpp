//===- tests/runtime/StackPoolTest.cpp ------------------------------------===//
//
// The StackPool contract (runtime/StackPool.h): released mappings come
// back on the next same-size acquire (that reuse is the whole point), the
// hit/miss/high-water accounting is exact, trim really unmaps, and --
// load-bearing for memory safety -- the guard page at the base of a
// mapping keeps faulting after any number of pool round trips, because
// its PROT_NONE protection is set once at map time and never relaxed.
//
//===----------------------------------------------------------------------===//

#include "runtime/StackPool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <unistd.h>

using namespace fsmc;

namespace {

size_t pageSize() { return size_t(sysconf(_SC_PAGESIZE)); }

/// A convenient mapped size: guard page + a few usable pages.
size_t smallMapping() { return pageSize() * 5; }

TEST(StackPool, AcquireReleaseReusesSameMapping) {
  StackPool Pool;
  const size_t Bytes = smallMapping();

  char *First = Pool.acquire(Bytes);
  ASSERT_NE(First, nullptr);
  Pool.release(First, Bytes);
  EXPECT_EQ(Pool.freeCount(), 1u);

  // The free list is LIFO per size class: the very next acquire of the
  // same size must hand back the released mapping, not a fresh mmap.
  char *Second = Pool.acquire(Bytes);
  EXPECT_EQ(Second, First);
  EXPECT_EQ(Pool.freeCount(), 0u);
  Pool.release(Second, Bytes);
}

TEST(StackPool, StatsCountHitsMissesAndHighWater) {
  StackPool Pool;
  const size_t Bytes = smallMapping();

  char *A = Pool.acquire(Bytes); // miss
  char *B = Pool.acquire(Bytes); // miss: A still out
  EXPECT_EQ(Pool.stats().Acquires, 2u);
  EXPECT_EQ(Pool.stats().Misses, 2u);
  EXPECT_EQ(Pool.stats().Hits, 0u);
  EXPECT_EQ(Pool.stats().HighWater, 2u);

  Pool.release(A, Bytes);
  Pool.release(B, Bytes);
  EXPECT_EQ(Pool.stats().Releases, 2u);

  char *C = Pool.acquire(Bytes); // hit
  EXPECT_EQ(Pool.stats().Hits, 1u);
  // Two live mappings was the peak; a hit does not move the high water.
  EXPECT_EQ(Pool.stats().HighWater, 2u);
  Pool.release(C, Bytes);
}

TEST(StackPool, DistinctSizesGetDistinctClasses) {
  StackPool Pool;
  const size_t Small = smallMapping();
  const size_t Large = smallMapping() * 2;

  char *S = Pool.acquire(Small);
  Pool.release(S, Small);
  // A different size must not be served from the small free list.
  char *L = Pool.acquire(Large);
  EXPECT_EQ(Pool.stats().Misses, 2u);
  EXPECT_EQ(Pool.stats().Hits, 0u);
  EXPECT_EQ(Pool.freeCount(), 1u); // the small mapping, still free
  Pool.release(L, Large);
  EXPECT_EQ(Pool.freeCount(), 2u);
}

TEST(StackPool, TrimUnmapsFreeMappings) {
  StackPool Pool;
  const size_t Bytes = smallMapping();
  char *A = Pool.acquire(Bytes);
  char *B = Pool.acquire(Bytes);
  Pool.release(A, Bytes);
  Pool.release(B, Bytes);
  ASSERT_EQ(Pool.freeCount(), 2u);

  Pool.trim();
  EXPECT_EQ(Pool.freeCount(), 0u);
  // After a trim the next acquire is a fresh mapping again.
  char *C = Pool.acquire(Bytes);
  EXPECT_EQ(Pool.stats().Misses, 3u);
  Pool.release(C, Bytes);
}

TEST(StackPool, UsableRegionIsWritableAcrossReuse) {
  StackPool Pool;
  Pool.setTrimOnRelease(true); // exercise the madvise path too
  const size_t Bytes = smallMapping();
  const size_t Page = pageSize();

  for (int Round = 0; Round < 3; ++Round) {
    char *Base = Pool.acquire(Bytes);
    ASSERT_NE(Base, nullptr);
    // Everything above the guard page belongs to the client.
    std::memset(Base + Page, 0xAB, Bytes - Page);
    EXPECT_EQ(char(0xAB), Base[Bytes - 1]);
    Pool.release(Base, Bytes);
  }
}

using StackPoolDeathTest = StackPool;

TEST(StackPoolDeathTest, GuardPageFaultsAfterReuse) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        StackPool Pool;
        const size_t Bytes = smallMapping();
        // One full round trip first: the reused mapping must still have
        // its PROT_NONE base page.
        char *Base = Pool.acquire(Bytes);
        Pool.release(Base, Bytes);
        char *Again = Pool.acquire(Bytes);
        Again[0] = 1; // lands in the guard page -> SIGSEGV
      },
      "");
}

} // namespace
