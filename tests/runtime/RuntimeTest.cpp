//===- tests/runtime/RuntimeTest.cpp --------------------------------------===//
//
// Controller-level tests of the Runtime: these drive executions manually
// (no Explorer), checking the enabled/yield predicates, transition
// granularity, spawn/finish bookkeeping, failure reporting and state
// signatures.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "sync/Atomic.h"
#include "sync/Mutex.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>

using namespace fsmc;

namespace {

/// A scripted choice source for manual driving; data choices always 0.
class FixedChoices : public ChoiceSource {
public:
  int chooseInt(int N) override { return 0; }
};

/// Runs all enabled threads in ascending tid order until none are live
/// (or a failure stops the execution). \returns transitions executed.
int runRoundRobin(Runtime &RT) {
  int Steps = 0;
  while (!RT.liveSet().empty()) {
    ThreadSet ES = RT.enabledSet();
    if (ES.empty())
      break;
    StepStatus St = RT.step(ES.first());
    ++Steps;
    if (St == StepStatus::Failed)
      break;
  }
  return Steps;
}

} // namespace

TEST(Runtime, MainThreadRunsToCompletion) {
  FixedChoices C;
  Runtime RT(C);
  int Ran = 0;
  RT.start([&Ran] { Ran = 1; });
  EXPECT_EQ(RT.liveSet().size(), 1);
  EXPECT_EQ(RT.enabledSet().size(), 1);
  EXPECT_EQ(RT.pendingOf(0).Kind, OpKind::ThreadStart);
  StepStatus St = RT.step(0);
  EXPECT_EQ(St, StepStatus::Finished);
  EXPECT_EQ(Ran, 1);
  EXPECT_TRUE(RT.liveSet().empty());
  EXPECT_TRUE(RT.isFinished(0));
}

TEST(Runtime, SpawnedThreadsGetDenseIds) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    TestThread A([] {}, "a");
    TestThread B([] {}, "b");
    EXPECT_EQ(A.tid(), 1);
    EXPECT_EQ(B.tid(), 2);
    A.join();
    B.join();
  });
  runRoundRobin(RT);
  EXPECT_EQ(RT.threadCount(), 3);
  EXPECT_EQ(RT.threadName(1), "a");
  EXPECT_EQ(RT.threadName(2), "b");
  EXPECT_FALSE(RT.hasFailure());
}

TEST(Runtime, JoinDisablesUntilTargetFinishes) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    TestThread A([] { yieldNow(); }, "a");
    A.join();
  });
  // Step main: it spawns and parks at join. A has not run: join disabled.
  EXPECT_EQ(RT.step(0), StepStatus::Parked);
  EXPECT_EQ(RT.pendingOf(0).Kind, OpKind::Join);
  EXPECT_FALSE(RT.enabledSet().contains(0));
  EXPECT_TRUE(RT.enabledSet().contains(1));
  // Run A through its yield and to completion.
  EXPECT_EQ(RT.step(1), StepStatus::Parked); // Runs to its yield point.
  EXPECT_TRUE(RT.yieldPending(1));
  EXPECT_EQ(RT.step(1), StepStatus::Finished);
  // Main is enabled again and finishes.
  EXPECT_TRUE(RT.enabledSet().contains(0));
  EXPECT_EQ(RT.step(0), StepStatus::Finished);
}

TEST(Runtime, YieldPredicateMatchesSection4Rules) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    yieldNow();                    // Yield op.
    sleepFor(3);                   // Sleep: yielding.
    Atomic<int> X(0, "x");
    X.store(1);                    // Store: not yielding.
  });
  EXPECT_EQ(RT.step(0), StepStatus::Parked);
  EXPECT_TRUE(RT.yieldPending(0)); // Parked at yieldNow.
  EXPECT_EQ(RT.step(0), StepStatus::Parked);
  EXPECT_TRUE(RT.yieldPending(0)); // Parked at sleepFor.
  EXPECT_EQ(RT.pendingOf(0).Aux, 3);
  EXPECT_EQ(RT.step(0), StepStatus::Parked);
  EXPECT_FALSE(RT.yieldPending(0)); // Parked at the store.
  EXPECT_EQ(RT.pendingOf(0).Kind, OpKind::VarStore);
  EXPECT_EQ(RT.step(0), StepStatus::Finished);
}

TEST(Runtime, MutexDisablesCompetingLocker) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    Mutex M("m");
    M.lock();
    TestThread A([&M] {
      M.lock();
      M.unlock();
    }, "a");
    yieldNow();
    M.unlock();
    A.join();
  });
  RT.step(0); // Main: creates M, parks at lock.
  RT.step(0); // Main: acquires M, spawns A, parks at yield.
  RT.step(1); // A: starts, parks at lock (M held).
  EXPECT_EQ(RT.pendingOf(1).Kind, OpKind::MutexLock);
  EXPECT_FALSE(RT.enabledSet().contains(1)) << "lock on held mutex disables";
  RT.step(0); // Main: yields, parks at unlock.
  EXPECT_FALSE(RT.enabledSet().contains(1));
  RT.step(0); // Main: unlocks, parks at join.
  EXPECT_TRUE(RT.enabledSet().contains(1)) << "unlock re-enables the waiter";
  runRoundRobin(RT);
  EXPECT_FALSE(RT.hasFailure()) << RT.failureMessage();
}

TEST(Runtime, FailStopsExecutionWithMessage) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    yieldNow();
    checkThat(false, "boom");
  });
  EXPECT_EQ(RT.step(0), StepStatus::Parked);
  EXPECT_EQ(RT.step(0), StepStatus::Failed);
  EXPECT_TRUE(RT.hasFailure());
  EXPECT_EQ(RT.failureMessage(), "boom");
  EXPECT_EQ(RT.failureTid(), 0);
}

TEST(Runtime, SyncOpCountCountsSchedulePoints) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    yieldNow();
    yieldNow();
    Atomic<int> X(0, "x");
    X.store(1);
    X.load();
  });
  runRoundRobin(RT);
  // ThreadStart is not a schedulePoint; 2 yields + store + load = 4.
  EXPECT_EQ(RT.syncOpCount(), 4u);
}

TEST(Runtime, AnnotationsVisibleToController) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    Runtime::current().annotate(7);
    yieldNow();
    Runtime::current().annotate(13);
  });
  RT.step(0); // Runs annotate(7), parks at yield.
  EXPECT_EQ(RT.annotationOf(0), 7u);
  RT.step(0);
  EXPECT_EQ(RT.annotationOf(0), 13u);
}

TEST(Runtime, StateSignatureDistinguishesProgress) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    Runtime::current().annotate(1);
    yieldNow();
    Runtime::current().annotate(2);
    yieldNow();
  });
  RT.step(0);
  uint64_t S1 = RT.stateSignature();
  RT.step(0);
  uint64_t S2 = RT.stateSignature();
  EXPECT_NE(S1, S2);
}

TEST(Runtime, StateExtractorDroppedWhenOwnerExits) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    int Local = 5;
    Runtime::current().setStateExtractor(
        [&Local] { return uint64_t(Local); });
    yieldNow();
  });
  RT.step(0);
  (void)RT.stateSignature(); // Extractor active while main is live.
  RT.step(0);                // Main finishes; extractor must be dropped.
  (void)RT.stateSignature(); // Must not touch the dead frame.
  SUCCEED();
}

TEST(Runtime, ObjectNamesResolveInTraces) {
  FixedChoices C;
  Runtime RT(C);
  RT.start([] {
    Mutex M("my-mutex");
    M.lock();
    M.unlock();
  });
  RT.step(0); // Parks at lock.
  EXPECT_EQ(RT.objectName(RT.pendingOf(0).ObjectId), "my-mutex");
  EXPECT_EQ(RT.objectName(-1), "<none>");
  runRoundRobin(RT);
}

TEST(Runtime, TransitionRunsToNextVisibleOp) {
  // One transition = the pending visible op plus all invisible local code
  // up to the next scheduling point.
  FixedChoices C;
  Runtime RT(C);
  int Progress = 0;
  RT.start([&Progress] {
    Progress = 1; // Invisible.
    yieldNow();
    Progress = 2;
    Progress = 3; // Both invisible: same transition.
    yieldNow();
    Progress = 4;
  });
  RT.step(0);
  EXPECT_EQ(Progress, 1);
  RT.step(0);
  EXPECT_EQ(Progress, 3);
  RT.step(0);
  EXPECT_EQ(Progress, 4);
  EXPECT_TRUE(RT.isFinished(0));
}
