//===- tests/runtime/FiberTest.cpp ----------------------------------------===//

#include "runtime/Fiber.h"

#include <gtest/gtest.h>
#include <vector>

using namespace fsmc;

namespace {

/// A little ping-pong harness: host <-> fiber.
struct PingPong {
  Fiber Host;
  Fiber Worker;
  std::vector<int> Log;
  int Rounds = 0;

  static void entry(void *Arg) {
    auto *Self = static_cast<PingPong *>(Arg);
    for (int I = 0; I < Self->Rounds; ++I) {
      Self->Log.push_back(100 + I);
      Fiber::switchTo(Self->Worker, Self->Host);
    }
    Self->Log.push_back(999);
    Fiber::switchTo(Self->Worker, Self->Host);
    FAIL() << "fiber resumed after its final switch-away";
  }
};

} // namespace

TEST(Fiber, PingPongInterleaves) {
  PingPong P;
  P.Rounds = 3;
  P.Host.initAsHost();
  ASSERT_TRUE(P.Worker.initWithEntry(64 * 1024, &PingPong::entry, &P));
  for (int I = 0; I < 3; ++I) {
    P.Log.push_back(I);
    Fiber::switchTo(P.Host, P.Worker);
  }
  Fiber::switchTo(P.Host, P.Worker); // Final leg: fiber logs 999.
  EXPECT_EQ(P.Log, (std::vector<int>{0, 100, 1, 101, 2, 102, 999}));
}

TEST(Fiber, HasStackReflectsInit) {
  Fiber Host;
  Host.initAsHost();
  EXPECT_FALSE(Host.hasStack());
  PingPong P;
  P.Rounds = 0;
  P.Host.initAsHost();
  ASSERT_TRUE(P.Worker.initWithEntry(64 * 1024, &PingPong::entry, &P));
  EXPECT_TRUE(P.Worker.hasStack());
  Fiber::switchTo(P.Host, P.Worker); // Runs to the 999 log and parks.
  EXPECT_EQ(P.Log, (std::vector<int>{999}));
}

namespace {

struct DeepState {
  Fiber Host;
  Fiber Worker;
  int Result = 0;

  static int collatzSteps(unsigned long N, int Depth) {
    // Some genuine stack usage to exercise the mapped stack.
    volatile char Pad[512];
    Pad[0] = char(Depth);
    (void)Pad;
    if (N == 1)
      return Depth;
    return collatzSteps(N % 2 ? 3 * N + 1 : N / 2, Depth + 1);
  }

  static void entry(void *Arg) {
    auto *Self = static_cast<DeepState *>(Arg);
    Self->Result = collatzSteps(27, 0); // 111 steps, ~56 KiB of frames.
    Fiber::switchTo(Self->Worker, Self->Host);
  }
};

} // namespace

TEST(Fiber, SupportsDeepStacks) {
  DeepState D;
  D.Host.initAsHost();
  ASSERT_TRUE(D.Worker.initWithEntry(256 * 1024, &DeepState::entry, &D));
  Fiber::switchTo(D.Host, D.Worker);
  EXPECT_EQ(D.Result, 111);
}

namespace {

struct Counter {
  Fiber Host;
  Fiber Worker;
  int Value = 0;

  static void entry(void *Arg) {
    auto *Self = static_cast<Counter *>(Arg);
    ++Self->Value;
    Fiber::switchTo(Self->Worker, Self->Host);
  }
};

} // namespace

TEST(Fiber, ManyFibersCoexist) {
  Fiber Host;
  Host.initAsHost();
  std::vector<std::unique_ptr<Counter>> Fibers;
  for (int I = 0; I < 50; ++I) {
    auto C = std::make_unique<Counter>();
    C->Host.initAsHost();
    ASSERT_TRUE(C->Worker.initWithEntry(64 * 1024, &Counter::entry, C.get()));
    Fibers.push_back(std::move(C));
  }
  for (auto &C : Fibers)
    Fiber::switchTo(C->Host, C->Worker);
  for (auto &C : Fibers)
    EXPECT_EQ(C->Value, 1);
}

TEST(Fiber, UnstartedFiberIsFreedSafely) {
  // A fiber that is initialized but never switched to must clean up its
  // stack without running the entry.
  auto *C = new Counter();
  C->Host.initAsHost();
  ASSERT_TRUE(C->Worker.initWithEntry(64 * 1024, &Counter::entry, C));
  int Val = C->Value;
  delete C;
  EXPECT_EQ(Val, 0);
}
