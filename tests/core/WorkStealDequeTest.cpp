//===- tests/core/WorkStealDequeTest.cpp ----------------------------------===//
//
// Unit pins for the per-worker steal deque (core/WorkStealDeque.h): the
// owner's LIFO discipline, the steal-half split, the empty and one-item
// edges, and -- because the parallel engine's exactness contract rides
// on it -- a randomized multi-thread stress proving no item is ever lost
// or duplicated, whichever mix of owner pops and concurrent steals races
// over the deque.
//
//===----------------------------------------------------------------------===//

#include "core/WorkStealDeque.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <random>
#include <thread>
#include <vector>

using namespace fsmc;

namespace {

/// Wraps an integer id as a WorkItem (the id rides in Prefix[0].Chosen).
WorkItem item(int Id) {
  WorkItem I;
  I.Prefix.push_back(ScheduleChoice{Id, Id + 1, true, 0, 0});
  return I;
}

int idOf(const WorkItem &I) {
  return I.Prefix.empty() ? -1 : I.Prefix[0].Chosen;
}

} // namespace

TEST(WorkStealDeque, StartsEmpty) {
  WorkStealDeque D;
  EXPECT_TRUE(D.empty());
  EXPECT_EQ(D.size(), 0u);
  EXPECT_FALSE(D.popBottom().has_value());
  std::vector<WorkItem> Out;
  EXPECT_EQ(D.stealTop(Out), 0u);
  EXPECT_TRUE(Out.empty());
}

TEST(WorkStealDeque, OwnerPopsLifo) {
  WorkStealDeque D;
  for (int I = 0; I < 5; ++I)
    D.pushBottom(item(I));
  EXPECT_EQ(D.size(), 5u);
  for (int I = 4; I >= 0; --I) {
    auto Got = D.popBottom();
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(idOf(*Got), I);
  }
  EXPECT_TRUE(D.empty());
}

TEST(WorkStealDeque, PublishTopPreservesOrderAndPopsBottomFirst) {
  WorkStealDeque D;
  D.pushBottom(item(100));
  // Publish 10,11,12 on top, shallowest (10) topmost.
  std::vector<WorkItem> Batch;
  for (int I = 10; I <= 12; ++I)
    Batch.push_back(item(I));
  D.publishTop(std::move(Batch));
  EXPECT_EQ(D.size(), 4u);
  // The owner still sees its own deepest item first...
  EXPECT_EQ(idOf(*D.popBottom()), 100);
  // ...and a thief takes from the top in published order.
  std::vector<WorkItem> Out;
  EXPECT_EQ(D.stealTop(Out), 2u); // ceil(3/2)
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(idOf(Out[0]), 10);
  EXPECT_EQ(idOf(Out[1]), 11);
  EXPECT_EQ(idOf(*D.popBottom()), 12);
}

TEST(WorkStealDeque, StealTakesHalfRoundedUpFromTop) {
  for (size_t N : {1u, 2u, 3u, 7u, 8u}) {
    WorkStealDeque D;
    for (size_t I = 0; I < N; ++I)
      D.pushBottom(item(int(I)));
    std::vector<WorkItem> Out;
    EXPECT_EQ(D.stealTop(Out), (N + 1) / 2) << "N=" << N;
    ASSERT_EQ(Out.size(), (N + 1) / 2);
    // Top of the deque = oldest pushes = shallowest prefixes.
    for (size_t I = 0; I < Out.size(); ++I)
      EXPECT_EQ(idOf(Out[I]), int(I));
    EXPECT_EQ(D.size(), N - Out.size());
  }
}

TEST(WorkStealDeque, OneItemGoesToExactlyOneSide) {
  // Race the owner's pop against a thief's steal over a single item many
  // times: exactly one side must win each round, never both, never
  // neither.
  for (int Round = 0; Round < 200; ++Round) {
    WorkStealDeque D;
    D.pushBottom(item(Round));
    std::atomic<int> Got{0};
    std::thread Thief([&] {
      std::vector<WorkItem> Out;
      if (D.stealTop(Out)) {
        EXPECT_EQ(Out.size(), 1u);
        EXPECT_EQ(idOf(Out[0]), Round);
        Got.fetch_add(1);
      }
    });
    if (auto I = D.popBottom()) {
      EXPECT_EQ(idOf(*I), Round);
      Got.fetch_add(1);
    }
    Thief.join();
    EXPECT_EQ(Got.load(), 1);
    EXPECT_TRUE(D.empty());
  }
}

TEST(WorkStealDeque, DrainAllEmptiesAndCounts) {
  WorkStealDeque D;
  for (int I = 0; I < 6; ++I)
    D.pushBottom(item(I));
  std::vector<WorkItem> Out;
  EXPECT_EQ(D.drainAll(Out), 6u);
  EXPECT_EQ(Out.size(), 6u);
  EXPECT_TRUE(D.empty());
  EXPECT_EQ(D.drainAll(Out), 0u);
}

// The termination-count discipline the engine builds on the deque: every
// pushed item is popped or stolen exactly once, so an outstanding
// counter incremented per push and decremented per consumed item must
// come back to zero with every id seen exactly once.
TEST(WorkStealDeque, TerminationCountBalances) {
  WorkStealDeque D;
  std::atomic<uint64_t> Outstanding{0};
  const int N = 1000;
  for (int I = 0; I < N; ++I) {
    Outstanding.fetch_add(1);
    D.pushBottom(item(I));
  }
  std::vector<bool> Seen(N, false);
  std::vector<WorkItem> Loot;
  while (true) {
    if (auto I = D.popBottom()) {
      ASSERT_FALSE(Seen[size_t(idOf(*I))]);
      Seen[size_t(idOf(*I))] = true;
      Outstanding.fetch_sub(1);
      continue;
    }
    Loot.clear();
    if (!D.stealTop(Loot))
      break;
    for (WorkItem &I : Loot) {
      ASSERT_FALSE(Seen[size_t(idOf(I))]);
      Seen[size_t(idOf(I))] = true;
      Outstanding.fetch_sub(1);
    }
  }
  EXPECT_EQ(Outstanding.load(), 0u);
  EXPECT_TRUE(std::all_of(Seen.begin(), Seen.end(), [](bool B) { return B; }));
}

// Randomized multi-thread stress: one owner pushing, popping and
// publishing, several thieves stealing, with every consumed id recorded.
// The popped multiset must equal the pushed multiset exactly -- the
// no-lost-no-duplicated-item property behind the engine's "identical
// execution multisets" guarantee.
TEST(WorkStealDeque, RandomizedStealStressPreservesMultiset) {
  WorkStealDeque D;
  constexpr int NumIds = 20000;
  constexpr int NumThieves = 3;
  std::atomic<bool> OwnerDone{false};
  std::vector<std::vector<int>> ThiefGot(NumThieves);
  std::vector<int> OwnerGot;

  std::vector<std::thread> Thieves;
  for (int T = 0; T < NumThieves; ++T)
    Thieves.emplace_back([&, T] {
      std::vector<WorkItem> Out;
      while (!OwnerDone.load(std::memory_order_acquire) || !D.empty()) {
        Out.clear();
        if (D.stealTop(Out))
          for (WorkItem &I : Out)
            ThiefGot[size_t(T)].push_back(idOf(I));
        else
          std::this_thread::yield();
      }
    });

  std::mt19937 Rng(12345);
  int NextId = 0;
  while (NextId < NumIds || !D.empty()) {
    unsigned Op = Rng() % 8;
    if (Op < 4 && NextId < NumIds) {
      D.pushBottom(item(NextId++));
    } else if (Op < 6 && NextId < NumIds) {
      // Publish a small batch on top, like a splitWork response.
      std::vector<WorkItem> Batch;
      size_t K = 1 + Rng() % 5;
      for (size_t I = 0; I < K && NextId < NumIds; ++I)
        Batch.push_back(item(NextId++));
      D.publishTop(std::move(Batch));
    } else {
      if (auto I = D.popBottom())
        OwnerGot.push_back(idOf(*I));
    }
  }
  OwnerDone.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();
  // Late stragglers: anything still in the deque after the thieves left.
  while (auto I = D.popBottom())
    OwnerGot.push_back(idOf(*I));

  std::map<int, int> Counts;
  for (int Id : OwnerGot)
    ++Counts[Id];
  for (auto &TG : ThiefGot)
    for (int Id : TG)
      ++Counts[Id];
  ASSERT_EQ(Counts.size(), size_t(NumIds));
  for (auto &KV : Counts)
    EXPECT_EQ(KV.second, 1) << "id " << KV.first;
}
