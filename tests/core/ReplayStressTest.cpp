//===- tests/core/ReplayStressTest.cpp ------------------------------------===//
//
// Replay-determinism stress: the CHESS contract is that a recorded
// schedule is a total repro -- same verdict, same failing step, every
// time, from any entry point. We hammer that with 100 random-walk seeds
// over a racy program: every bug trace found is serialized via
// core/Schedule, preloaded back into a fresh Explorer, and must
// reproduce the identical verdict and step count. Random walks are the
// adversarial case because their schedules carry non-backtrackable
// (`r`-suffixed) choices that replay must honor verbatim.
//
//===----------------------------------------------------------------------===//

#include "core/Explorer.h"
#include "core/Schedule.h"
#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

namespace {

/// The classic lost-update race: both threads read-modify-write X
/// non-atomically, so many interleavings drop an increment.
TestProgram makeRaceProgram() {
  TestProgram P;
  P.Name = "replay-stress-race";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Bump = [X] { X->store(X->load() + 1); };
    TestThread A(Bump, "a");
    TestThread B(Bump, "b");
    A.join();
    B.join();
    checkThat(X->raw() == 2, "lost update");
  };
  return P;
}

} // namespace

TEST(ReplayStress, HundredRandomSeedsReplayExactly) {
  TestProgram P = makeRaceProgram();
  int BugsFound = 0;

  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    CheckerOptions Find;
    Find.Kind = SearchKind::RandomWalk;
    Find.Seed = Seed;
    Find.MaxExecutions = 50;
    CheckResult R = check(P, Find);
    if (!R.foundBug())
      continue;
    ++BugsFound;
    ASSERT_TRUE(R.Bug.has_value());
    ASSERT_FALSE(R.Bug->Schedule.empty());

    // Preload the recorded trace into a fresh Explorer and run exactly
    // one execution; the walk's randomness must be fully captured by
    // the schedule, so the seed is irrelevant on replay.
    std::vector<ScheduleChoice> Choices;
    ASSERT_TRUE(decodeSchedule(R.Bug->Schedule, Choices));
    CheckerOptions ReplayOpts;
    ReplayOpts.MaxExecutions = 1;
    ReplayOpts.Seed = Seed + 1;
    Explorer E(P, ReplayOpts);
    E.preloadSchedule(Choices);
    CheckResult Replay = E.run();

    ASSERT_EQ(Replay.Kind, R.Kind);
    ASSERT_TRUE(Replay.Bug.has_value());
    EXPECT_EQ(Replay.Bug->AtStep, R.Bug->AtStep);
    EXPECT_EQ(Replay.Bug->Message, R.Bug->Message);
    EXPECT_EQ(Replay.Stats.Executions, 1u);

    // The public replay entry point must agree with the raw preload.
    CheckResult Public = replaySchedule(P, ReplayOpts, R.Bug->Schedule);
    EXPECT_EQ(Public.Kind, R.Kind);
    EXPECT_EQ(Public.Bug->AtStep, R.Bug->AtStep);
  }

  // The race fires in most interleavings; if the walks stopped finding
  // it, the generator (or the schedule recorder) regressed.
  EXPECT_GE(BugsFound, 50) << "random walks found too few bugs to make "
                              "the replay stress meaningful";
}

TEST(ReplayStress, DfsBugSchedulesReplayAcrossSeeds) {
  // Same determinism check for backtracking search: the recorded
  // schedule alone pins the execution, whatever seed the replaying
  // checker carries.
  TestProgram P = makeRaceProgram();
  CheckerOptions Find;
  CheckResult R = check(P, Find);
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation);
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    CheckerOptions ReplayOpts;
    ReplayOpts.Seed = Seed * 977;
    CheckResult Replay = replaySchedule(P, ReplayOpts, R.Bug->Schedule);
    ASSERT_EQ(Replay.Kind, R.Kind) << "seed " << Seed;
    EXPECT_EQ(Replay.Bug->AtStep, R.Bug->AtStep);
  }
}

TEST(ReplayStress, PorSchedulesReplayByteIdentically) {
  // A schedule recorded under --por=on carries sleep masks (the s<hex>
  // suffix, core/Schedule.h) and indexes its choices into the
  // sleep-filtered candidate set, so it is replayed under --por=on.
  // Replay must reproduce the bug at the same step AND re-record the
  // byte-identical schedule string: the recomputed sleep state validates
  // against every recorded mask along the path.
  TestProgram P = makeRaceProgram();
  CheckerOptions Find;
  Find.Por = true;
  CheckResult R = check(P, Find);
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation);
  ASSERT_TRUE(R.Bug.has_value());
  ASSERT_NE(R.Bug->Schedule.find('s'), std::string::npos)
      << "expected at least one recorded sleep mask in " << R.Bug->Schedule;

  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    CheckerOptions ReplayOpts;
    ReplayOpts.Por = true;
    ReplayOpts.Seed = Seed * 977;
    CheckResult Replay = replaySchedule(P, ReplayOpts, R.Bug->Schedule);
    ASSERT_EQ(Replay.Kind, R.Kind) << "seed " << Seed;
    ASSERT_TRUE(Replay.Bug.has_value());
    EXPECT_EQ(Replay.Bug->AtStep, R.Bug->AtStep);
    EXPECT_EQ(Replay.Bug->Message, R.Bug->Message);
    EXPECT_EQ(Replay.Bug->Schedule, R.Bug->Schedule)
        << "replay re-recorded a different schedule";
  }
}

TEST(ReplayStress, PorScheduleUnderWrongModeIsDivergenceNotBug) {
  // Replaying a masked schedule with POR off changes the candidate
  // numbering the recorded indices assume. The engine must classify the
  // mismatch as a divergence (a checker-side limitation), never
  // misattribute it as a workload verdict.
  TestProgram P = makeRaceProgram();
  CheckerOptions Find;
  Find.Por = true;
  CheckResult R = check(P, Find);
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation);

  CheckerOptions ReplayOpts; // Por left off.
  CheckResult Replay = replaySchedule(P, ReplayOpts, R.Bug->Schedule);
  EXPECT_TRUE(Replay.Kind == Verdict::Divergence ||
              Replay.Kind == Verdict::SafetyViolation)
      << "wrong-mode replay produced " << verdictName(Replay.Kind);
}
