//===- tests/core/PorParityTest.cpp ---------------------------------------===//
//
// Differential bug-parity suite for --por=on: partial-order reduction is
// only a *reduction* if it preserves what the search can observe.  Every
// workload registry entry must produce the same verdict and the same
// deduplicated bug/race set with POR on and off, while executing no more
// schedules; the seeded-bug catalogue (dining deadlock, Peterson, WSQ,
// crash-fault race) must additionally show a real reduction in
// executions-to-first-bug, pinning the acceptance numbers recorded in
// BENCH_6.json.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include "workloads/CrashFault.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Peterson.h"
#include "workloads/WorkStealQueue.h"
#include "workloads/WorkloadRegistry.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <set>
#include <string>
#include <vector>

using namespace fsmc;

namespace {

/// The deduplicated incident view: every distinct crash/hang/race message
/// the run harvested, plus the primary bug.  Sorting makes the comparison
/// order-insensitive (parallel runs discover incidents in racy order).
std::set<std::string> incidentSet(const CheckResult &R) {
  std::set<std::string> S;
  if (R.Bug)
    S.insert(verdictName(R.Bug->Kind) + std::string(": ") + R.Bug->Message);
  for (const BugReport &I : R.Incidents)
    S.insert(verdictName(I.Kind) + std::string(": ") + I.Message);
  return S;
}

/// Bounded fair DFS over a registry entry.  POR is inert without
/// backtracking, so the sweep deliberately replaces the registry's
/// RandomWalk MeasureOptions with a capped DFS.
CheckerOptions sweepOptions(int Jobs, bool Por) {
  CheckerOptions O;
  O.Kind = SearchKind::Dfs;
  O.MaxExecutions = 80;
  O.TimeBudgetSeconds = 60;
  O.Races = RaceCheckMode::On;
  O.StopOnFirstBug = false;
  O.Jobs = Jobs;
  O.Por = Por;
  return O;
}

void sweepRegistry(int Jobs) {
  for (const RegisteredWorkload &W : allWorkloads()) {
    SCOPED_TRACE(W.Name);
    CheckResult Off = check(W.Make(), sweepOptions(Jobs, /*Por=*/false));
    CheckResult On = check(W.Make(), sweepOptions(Jobs, /*Por=*/true));
    EXPECT_EQ(Off.Kind, On.Kind);
    EXPECT_EQ(incidentSet(Off), incidentSet(On));
    // A reduction never explores *more* schedules.  Parallel workers
    // check the execution cap between executions, so a jobs>1 run can
    // overshoot the cap by at most one execution per worker; grant the
    // reduced run the same slack the unreduced run gets.
    uint64_t Slack = Jobs > 1 ? uint64_t(Jobs - 1) : 0;
    EXPECT_LE(On.Stats.Executions, Off.Stats.Executions + Slack);
  }
}

} // namespace

TEST(PorParity, RegistrySweepSerial) { sweepRegistry(/*Jobs=*/1); }

TEST(PorParity, RegistrySweepJobs4) { sweepRegistry(/*Jobs=*/4); }

// More workers than cores: the work-stealing engine's exactness must not
// depend on every worker getting a CPU.
TEST(PorParity, RegistrySweepJobs8) { sweepRegistry(/*Jobs=*/8); }

//===----------------------------------------------------------------------===//
// Seeded-bug catalogue: POR must find every bug the full search finds,
// in fewer executions.
//===----------------------------------------------------------------------===//

namespace {

struct CatalogueEntry {
  const char *Name;
  std::function<TestProgram()> Make;
  RaceCheckMode Races;
  /// wsq-bug1 is the missing-fence defect: it needs --memory=tso to be
  /// reachable at all (workloads/WorkStealQueue.h), so its POR-vs-full
  /// comparison runs under tso on both sides.
  MemoryModel Memory = MemoryModel::Sc;
};

std::vector<CatalogueEntry> seededBugCatalogue() {
  std::vector<CatalogueEntry> C;
  C.push_back({"dining-deadlock",
               [] {
                 DiningConfig D;
                 D.Philosophers = 3;
                 D.Kind = DiningConfig::Variant::DeadlockProne;
                 return makeDiningProgram(D);
               },
               RaceCheckMode::Off});
  C.push_back({"peterson-noturn",
               [] {
                 PetersonConfig P;
                 P.Kind = PetersonConfig::Variant::NoTurn;
                 return makePetersonProgram(P);
               },
               RaceCheckMode::Off});
  C.push_back({"wsq-bug1",
               [] {
                 WsqConfig W;
                 W.Stealers = 1;
                 W.Tasks = 2;
                 W.Bug = WsqBug::PopReordered;
                 return makeWsqProgram(W);
               },
               RaceCheckMode::Off,
               MemoryModel::Tso});
  C.push_back({"crashfault-race",
               [] {
                 CrashFaultConfig F;
                 F.Kind = CrashFaultConfig::Fault::Race;
                 return makeCrashFaultProgram(F);
               },
               RaceCheckMode::On});
  return C;
}

/// Fair context-bounded search (the configuration the workload suite's
/// own bug goldens use: every catalogue bug is reachable within two
/// preemptions) to the first bug; Stats.Executions is then the
/// executions-to-first-bug count BENCH_6.json's por section reports.
CheckResult firstBug(const CatalogueEntry &E, bool Por) {
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  O.Races = E.Races;
  O.Memory = E.Memory;
  O.Por = Por;
  return check(E.Make(), O);
}

} // namespace

TEST(PorParity, SeededBugCatalogueFindsEveryBugInFewerExecutions) {
  int TwoFold = 0;
  for (const CatalogueEntry &E : seededBugCatalogue()) {
    SCOPED_TRACE(E.Name);
    CheckResult Off = firstBug(E, /*Por=*/false);
    CheckResult On = firstBug(E, /*Por=*/true);
    ASSERT_TRUE(Off.foundBug());
    ASSERT_TRUE(On.foundBug()) << "POR dropped a real bug";
    EXPECT_EQ(Off.Kind, On.Kind);
    EXPECT_LE(On.Stats.Executions, Off.Stats.Executions);
    if (On.Stats.Executions * 2 <= Off.Stats.Executions)
      ++TwoFold;
    RecordProperty(std::string(E.Name) + "_executions_off",
                   int(Off.Stats.Executions));
    RecordProperty(std::string(E.Name) + "_executions_on",
                   int(On.Stats.Executions));
    std::printf("[por-parity] %-16s off=%llu on=%llu\n", E.Name,
                (unsigned long long)Off.Stats.Executions,
                (unsigned long long)On.Stats.Executions);
  }
  // The acceptance bar from the PR issue: at least a 2x schedule
  // reduction on at least two catalogue entries.
  EXPECT_GE(TwoFold, 2);
}
