//===- tests/core/WorkLeaseTest.cpp ---------------------------------------===//
//
// Unit tests for the fleet coordinator's lease table (core/WorkLease.h):
// the queue/lease/commit lifecycle, failure backoff and quarantine
// thresholds, the drain-path release, heartbeat renewal and deadline
// expiry. The table is a pure data structure with injected clocks, so
// every recovery policy decision is pinned here without forking a single
// process; docs/FLEET.md describes how the coordinator drives it.
//
//===----------------------------------------------------------------------===//

#include "core/WorkLease.h"

#include <gtest/gtest.h>

using namespace fsmc;

namespace {

std::vector<ScheduleChoice> prefix(int Tag) {
  // Distinct single-choice prefixes so tests can tell units apart.
  return {{Tag, Tag + 1, true, 0}};
}

} // namespace

TEST(WorkLease, LifecycleQueuedLeasedCommitted) {
  LeaseTable LT;
  uint64_t Id = LT.add(prefix(0), 1);
  EXPECT_EQ(Id, 1u) << "ids start at 1 so 0 can mean 'none'";
  EXPECT_EQ(LT.queuedCount(), 1u);
  EXPECT_EQ(LT.state(Id), LeaseState::Queued);

  const WorkUnit *U = LT.lease(/*Owner=*/7, /*Now=*/0.0, /*Deadline=*/5.0);
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(U->Id, Id);
  EXPECT_EQ(U->FrozenLen, 1u);
  EXPECT_EQ(LT.state(Id), LeaseState::Leased);
  EXPECT_EQ(LT.owner(Id), 7);
  EXPECT_EQ(LT.leasedBy(7), Id);
  EXPECT_EQ(LT.queuedCount(), 0u);
  EXPECT_EQ(LT.leasedCount(), 1u);
  EXPECT_EQ(LT.pendingCount(), 1u);

  LT.commit(Id);
  EXPECT_EQ(LT.state(Id), LeaseState::Committed);
  EXPECT_EQ(LT.pendingCount(), 0u);
  EXPECT_EQ(LT.leasedBy(7), 0u);
}

TEST(WorkLease, LeasesOldestFirst) {
  LeaseTable LT;
  uint64_t A = LT.add(prefix(0), 0);
  uint64_t B = LT.add(prefix(1), 0);
  const WorkUnit *U1 = LT.lease(1, 0.0, 5.0);
  const WorkUnit *U2 = LT.lease(2, 0.0, 5.0);
  ASSERT_NE(U1, nullptr);
  ASSERT_NE(U2, nullptr);
  EXPECT_EQ(U1->Id, A);
  EXPECT_EQ(U2->Id, B);
  EXPECT_EQ(LT.lease(3, 0.0, 5.0), nullptr) << "queue is empty";
}

TEST(WorkLease, FailRequeuesWithExponentialBackoff) {
  LeaseTable::Config C;
  C.QuarantineAfter = 10;
  C.BackoffBaseSeconds = 0.05;
  C.BackoffCapSeconds = 2.0;
  LeaseTable LT(C);
  uint64_t Id = LT.add(prefix(0), 0);

  // Attempt 1 fails at t=0: backoff 0.05s.
  ASSERT_NE(LT.lease(1, 0.0, 5.0), nullptr);
  EXPECT_EQ(LT.fail(Id, 0.0), LeaseTable::FailOutcome::Requeued);
  EXPECT_EQ(LT.attempts(Id), 1);
  EXPECT_EQ(LT.lease(2, 0.01, 5.0), nullptr) << "still cooling down";
  ASSERT_NE(LT.lease(2, 0.06, 5.0), nullptr);

  // Attempt 2 fails at t=1: backoff doubles to 0.1s.
  EXPECT_EQ(LT.fail(Id, 1.0), LeaseTable::FailOutcome::Requeued);
  EXPECT_EQ(LT.lease(3, 1.05, 5.0), nullptr);
  ASSERT_NE(LT.lease(3, 1.11, 5.0), nullptr);

  // Attempt 3 fails at t=2: backoff 0.2s; nextReadyAt reports the wake.
  EXPECT_EQ(LT.fail(Id, 2.0), LeaseTable::FailOutcome::Requeued);
  EXPECT_NEAR(LT.nextReadyAt(99.0), 2.2, 1e-9);
  ASSERT_NE(LT.lease(4, 2.25, 5.0), nullptr);
}

TEST(WorkLease, BackoffIsCapped) {
  LeaseTable::Config C;
  C.QuarantineAfter = 100;
  C.BackoffBaseSeconds = 0.05;
  C.BackoffCapSeconds = 2.0;
  LeaseTable LT(C);
  uint64_t Id = LT.add(prefix(0), 0);
  // Drive the attempt count high; the cool-down must clamp at the cap.
  // Each round leases well past the previous backoff window.
  double Now = 0;
  for (int I = 0; I < 12; ++I) {
    ASSERT_NE(LT.lease(1, Now, Now + 100.0), nullptr);
    LT.fail(Id, Now);
    Now += 10.0;
  }
  // Last failure at t=110 with 12 attempts: 0.05 * 2^11 >> 2.0, so the
  // unit must be issuable exactly 2.0s later, not minutes later.
  EXPECT_EQ(LT.lease(1, 111.9, 200.0), nullptr);
  ASSERT_NE(LT.lease(1, 112.01, 200.0), nullptr);
}

TEST(WorkLease, BackoffDoesNotBlockOtherUnits) {
  LeaseTable LT;
  uint64_t Poison = LT.add(prefix(0), 0);
  uint64_t Healthy = LT.add(prefix(1), 0);
  ASSERT_NE(LT.lease(1, 0.0, 5.0), nullptr);
  LT.fail(Poison, 0.0);
  // The poison unit is older but cooling down; the healthy one must not
  // be stuck behind it.
  const WorkUnit *U = LT.lease(2, 0.0, 5.0);
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(U->Id, Healthy);
}

TEST(WorkLease, QuarantineAfterConsecutiveFatalAttempts) {
  LeaseTable::Config C;
  C.QuarantineAfter = 3;
  C.BackoffBaseSeconds = 0.0;
  LeaseTable LT(C);
  uint64_t Id = LT.add(prefix(0), 0);
  for (int Attempt = 1; Attempt <= 2; ++Attempt) {
    ASSERT_NE(LT.lease(1, 100.0 * Attempt, 1000.0), nullptr);
    EXPECT_EQ(LT.fail(Id, 100.0 * Attempt),
              LeaseTable::FailOutcome::Requeued);
  }
  ASSERT_NE(LT.lease(1, 300.0, 1000.0), nullptr);
  EXPECT_EQ(LT.fail(Id, 300.0), LeaseTable::FailOutcome::Quarantined);
  EXPECT_EQ(LT.state(Id), LeaseState::Quarantined);
  EXPECT_EQ(LT.quarantinedCount(), 1u);
  EXPECT_EQ(LT.pendingCount(), 0u);
}

TEST(WorkLease, ReleaseRequeuesFrontWithNoPenalty) {
  LeaseTable LT;
  uint64_t A = LT.add(prefix(0), 0);
  uint64_t B = LT.add(prefix(1), 0);
  ASSERT_NE(LT.lease(1, 0.0, 5.0), nullptr);
  LT.release(A);
  EXPECT_EQ(LT.state(A), LeaseState::Queued);
  EXPECT_EQ(LT.attempts(A), 0) << "a drain is not the unit's fault";
  // Released units go to the FRONT: the drained unit resumes first.
  const WorkUnit *U = LT.lease(2, 0.0, 5.0);
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(U->Id, A);
  (void)B;
}

TEST(WorkLease, ForcedQuarantineFromAnyPendingState) {
  LeaseTable LT;
  uint64_t First = LT.add(prefix(0), 0);
  uint64_t StillQueued = LT.add(prefix(1), 0);
  ASSERT_NE(LT.lease(1, 0.0, 5.0), nullptr); // leases First (oldest)
  // Quarantine works on a leased unit (crash-suspect with its holder
  // gone) and on a queued one (no worker left to try it).
  LT.quarantine(First);
  LT.quarantine(StillQueued);
  EXPECT_EQ(LT.state(First), LeaseState::Quarantined);
  EXPECT_EQ(LT.state(StillQueued), LeaseState::Quarantined);
  EXPECT_EQ(LT.quarantinedCount(), 2u);
  EXPECT_EQ(LT.pendingCount(), 0u);
  LT.quarantine(First); // Idempotent on retired units.
  EXPECT_EQ(LT.quarantinedCount(), 2u);
}

TEST(WorkLease, HeartbeatRenewalAndExpiry) {
  LeaseTable LT;
  uint64_t Id = LT.add(prefix(0), 0);
  ASSERT_NE(LT.lease(1, 0.0, /*Deadline=*/1.0), nullptr);
  EXPECT_TRUE(LT.expiredLeases(0.5).empty());
  ASSERT_EQ(LT.expiredLeases(1.5).size(), 1u);
  EXPECT_EQ(LT.expiredLeases(1.5)[0], Id);
  // A heartbeat pushes the deadline out; the lease is no longer expired.
  LT.renew(Id, 3.0);
  EXPECT_TRUE(LT.expiredLeases(1.5).empty());
  ASSERT_EQ(LT.expiredLeases(3.5).size(), 1u);
  // Renewal of a non-leased unit is a no-op, not a crash (stale beats
  // from a worker whose lease was already failed arrive in practice).
  LT.fail(Id, 3.5);
  LT.renew(Id, 9.0);
  EXPECT_EQ(LT.state(Id), LeaseState::Queued);
}

TEST(WorkLease, ZeroDeadlineNeverExpires) {
  LeaseTable LT;
  uint64_t Id = LT.add(prefix(0), 0);
  ASSERT_NE(LT.lease(1, 0.0, /*Deadline=*/0.0), nullptr);
  EXPECT_TRUE(LT.expiredLeases(1e9).empty())
      << "deadline 0 means heartbeat supervision is off";
  LT.commit(Id);
}

TEST(WorkLease, PendingUnitsSortedAndComplete) {
  LeaseTable LT;
  uint64_t A = LT.add(prefix(0), 0);
  uint64_t B = LT.add(prefix(1), 1);
  uint64_t C = LT.add(prefix(2), 0);
  ASSERT_NE(LT.lease(1, 0.0, 5.0), nullptr); // A leased
  LT.commit(A);
  ASSERT_NE(LT.lease(2, 0.0, 5.0), nullptr); // B leased
  // Pending = leased B + queued C, sorted by id; committed A is gone.
  std::vector<const WorkUnit *> P = LT.pendingUnits();
  ASSERT_EQ(P.size(), 2u);
  EXPECT_EQ(P[0]->Id, B);
  EXPECT_EQ(P[0]->FrozenLen, 1u);
  EXPECT_EQ(P[1]->Id, C);
}
