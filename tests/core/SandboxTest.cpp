//===- tests/core/SandboxTest.cpp -----------------------------------------===//
//
// Process-isolation contract (docs/ROBUSTNESS.md): --isolate=batch runs
// the same search as the in-process explorer on healthy workloads (same
// executions, transitions, verdict, coverage), and on faulty workloads
// it harvests process death -- SIGSEGV, SIGABRT, a hard spin -- as
// Verdict::Crash / Verdict::Hang incidents with replayable schedules
// while the search of the remaining interleavings completes.
//
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"
#include "core/Sandbox.h"
#include "core/Schedule.h"
#include "workloads/CrashFault.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Peterson.h"

#include <gtest/gtest.h>

using namespace fsmc;

namespace {

CheckerOptions isolated() {
  CheckerOptions O;
  O.Isolate = IsolationMode::Batch;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===
// Equivalence with the in-process explorer on healthy workloads.
//===----------------------------------------------------------------------===

TEST(Sandbox, MatchesInProcessSearchOnHealthyWorkload) {
  PetersonConfig C;
  TestProgram P = makePetersonProgram(C);
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.ExportStateSignatures = true;

  CheckResult In = check(P, O);
  ASSERT_TRUE(In.Stats.SearchExhausted);

  CheckerOptions Iso = O;
  Iso.Isolate = IsolationMode::Batch;
  Iso.SandboxBatchSize = 7; // Deliberately misaligned with the search size.
  CheckResult Out = check(P, Iso);
  EXPECT_TRUE(Out.Stats.SearchExhausted);
  EXPECT_EQ(Out.Kind, In.Kind);
  EXPECT_EQ(Out.Stats.Executions, In.Stats.Executions);
  EXPECT_EQ(Out.Stats.Transitions, In.Stats.Transitions);
  EXPECT_EQ(Out.Stats.Preemptions, In.Stats.Preemptions);
  EXPECT_EQ(Out.Stats.MaxDepth, In.Stats.MaxDepth);
  EXPECT_EQ(Out.Stats.DistinctStates, In.Stats.DistinctStates);
  EXPECT_EQ(Out.StateSignatures, In.StateSignatures);
  EXPECT_EQ(Out.Stats.Crashes, 0u);
  EXPECT_EQ(Out.Stats.Hangs, 0u);
}

TEST(Sandbox, ReportsTheSameFirstBug) {
  PetersonConfig C;
  C.Kind = PetersonConfig::Variant::FlagAfterCheck;
  TestProgram P = makePetersonProgram(C);
  CheckerOptions O;

  CheckResult In = check(P, O);
  ASSERT_TRUE(In.foundBug());
  ASSERT_TRUE(In.Bug.has_value());

  CheckerOptions Iso = O;
  Iso.Isolate = IsolationMode::Batch;
  CheckResult Out = check(P, Iso);
  ASSERT_TRUE(Out.foundBug());
  ASSERT_TRUE(Out.Bug.has_value());
  EXPECT_EQ(Out.Kind, In.Kind);
  EXPECT_EQ(Out.Bug->Schedule, In.Bug->Schedule);
  EXPECT_EQ(Out.Bug->Message, In.Bug->Message);
  EXPECT_EQ(Out.Stats.Executions, In.Stats.Executions);
}

TEST(Sandbox, DeadlockVerdictCrossesTheProcessBoundary) {
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::DeadlockProne;
  TestProgram P = makeDiningProgram(C);

  CheckResult In = check(P, CheckerOptions());
  ASSERT_EQ(In.Kind, Verdict::Deadlock);

  CheckResult Out = check(P, isolated());
  EXPECT_EQ(Out.Kind, Verdict::Deadlock);
  ASSERT_TRUE(Out.Bug.has_value());
  EXPECT_EQ(Out.Bug->Schedule, In.Bug->Schedule);
}

//===----------------------------------------------------------------------===
// Crash harvesting.
//===----------------------------------------------------------------------===

TEST(Sandbox, SegfaultIsHarvestedAndSearchCompletes) {
  CrashFaultConfig C;
  C.Kind = CrashFaultConfig::Fault::NullDeref;
  TestProgram P = makeCrashFaultProgram(C);
  CheckResult R = check(P, isolated());

  EXPECT_EQ(R.Kind, Verdict::Crash);
  EXPECT_TRUE(R.foundBug()) << "a workload that dies is buggy";
  EXPECT_GT(R.Stats.Crashes, 0u);
  EXPECT_TRUE(R.Stats.SearchExhausted)
      << "the search must outlive the crashing interleavings";
  EXPECT_GT(R.Stats.Executions, R.Stats.Crashes)
      << "healthy interleavings keep being explored";
  ASSERT_FALSE(R.Incidents.empty());
  for (const BugReport &B : R.Incidents) {
    EXPECT_EQ(B.Kind, Verdict::Crash);
    EXPECT_FALSE(B.Schedule.empty());
  }
}

TEST(Sandbox, AbortIsHarvested) {
  CrashFaultConfig C;
  C.Kind = CrashFaultConfig::Fault::Abort;
  TestProgram P = makeCrashFaultProgram(C);
  CheckResult R = check(P, isolated());
  EXPECT_EQ(R.Kind, Verdict::Crash);
  EXPECT_GT(R.Stats.Crashes, 0u);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Sandbox, CrashScheduleReproducesTheCrash) {
  CrashFaultConfig C;
  C.Kind = CrashFaultConfig::Fault::NullDeref;
  TestProgram P = makeCrashFaultProgram(C);
  CheckResult R = check(P, isolated());
  ASSERT_FALSE(R.Incidents.empty());

  // Replaying the harvested schedule (under isolation -- in-process it
  // would kill this test binary) must crash again on the first try.
  CheckResult Replay =
      replaySchedule(P, isolated(), R.Incidents.front().Schedule);
  EXPECT_EQ(Replay.Kind, Verdict::Crash);
  EXPECT_EQ(Replay.Stats.Crashes, 1u);
}

TEST(Sandbox, HangIsKilledByTheWatchdogAndReported) {
  // Finding the hang window by search would cost one watchdog period per
  // hanging interleaving; instead harvest the window from the segv twin
  // (same thread structure, same schedules) and replay it against the
  // hanging variant with a short watchdog.
  CrashFaultConfig Segv;
  Segv.Kind = CrashFaultConfig::Fault::NullDeref;
  CheckResult Windows = check(makeCrashFaultProgram(Segv), isolated());
  ASSERT_FALSE(Windows.Incidents.empty());

  CrashFaultConfig Hang;
  Hang.Kind = CrashFaultConfig::Fault::Hang;
  TestProgram P = makeCrashFaultProgram(Hang);
  CheckerOptions O = isolated();
  O.HangTimeoutSeconds = 0.4;
  CheckResult R = replaySchedule(P, O, Windows.Incidents.front().Schedule);
  EXPECT_EQ(R.Kind, Verdict::Hang);
  EXPECT_EQ(R.Stats.Hangs, 1u);
  ASSERT_FALSE(R.Incidents.empty());
  EXPECT_EQ(R.Incidents.front().Kind, Verdict::Hang);
}

//===----------------------------------------------------------------------===
// Interaction with the rest of the robustness layer.
//===----------------------------------------------------------------------===

TEST(Sandbox, InterruptFlagStopsTheSandboxedSearch) {
  PetersonConfig C;
  TestProgram P = makePetersonProgram(C);
  std::atomic<bool> Flag{true}; // Already set: stop before any batch.
  CheckerOptions O = isolated();
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.InterruptFlag = &Flag;
  CheckResult R = check(P, O);
  EXPECT_TRUE(R.Stats.Interrupted);
  EXPECT_EQ(R.Stats.Executions, 0u);
  ASSERT_TRUE(R.Resume != nullptr);

  // Resuming (without the flag) must complete the search with the same
  // totals as a straight run.
  CheckerOptions Again = O;
  Again.InterruptFlag = nullptr;
  CheckResult Straight = check(P, Again);
  CheckResult Done = resumeCheck(P, Again, *R.Resume);
  EXPECT_TRUE(Done.Stats.SearchExhausted);
  EXPECT_EQ(Done.Stats.Executions, Straight.Stats.Executions);
  EXPECT_EQ(Done.Stats.Transitions, Straight.Stats.Transitions);
}

TEST(Sandbox, CrashesAreCountedButDoNotAbortStopOnFirstBugSearches) {
  // StopOnFirstBug refers to workload bugs the checker can attribute; a
  // crash is an incident -- the search continues so an unattended run
  // reports every crashing window, not just the first.
  CrashFaultConfig C;
  C.Kind = CrashFaultConfig::Fault::NullDeref;
  TestProgram P = makeCrashFaultProgram(C);
  CheckerOptions O = isolated();
  O.StopOnFirstBug = true;
  CheckResult R = check(P, O);
  EXPECT_TRUE(R.Stats.SearchExhausted);
  EXPECT_GT(R.Stats.Crashes, 1u);
}
