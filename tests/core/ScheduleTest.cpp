//===- tests/core/ScheduleTest.cpp ----------------------------------------===//
//
// Schedule serialization and deterministic bug replay -- the CHESS repro
// workflow: find a bug once, re-run its exact schedule forever.
//
//===----------------------------------------------------------------------===//

#include "core/Schedule.h"

#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/WorkStealQueue.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

TEST(Schedule, EncodeDecodeRoundTrip) {
  std::vector<ScheduleChoice> In = {
      {0, 2, true}, {1, 3, true}, {2, 4, false}, {0, 7, true}};
  std::string Text = encodeSchedule(In);
  EXPECT_EQ(Text, "fsmc1:0/2;1/3;2/4r;0/7");
  std::vector<ScheduleChoice> Out;
  ASSERT_TRUE(decodeSchedule(Text, Out));
  ASSERT_EQ(Out.size(), In.size());
  for (size_t I = 0; I < In.size(); ++I) {
    EXPECT_EQ(Out[I].Chosen, In[I].Chosen);
    EXPECT_EQ(Out[I].Num, In[I].Num);
    EXPECT_EQ(Out[I].Backtrack, In[I].Backtrack);
  }
}

TEST(Schedule, FlushMaskRoundTrip) {
  // `f<hex>` records flush-agent candidate bits under --memory=tso|pso.
  // Suffix order is r, f<hex>, s<hex>; bit 32 is the main thread's flush
  // agent (Runtime::FlushBase), the common case in real tso schedules.
  std::vector<ScheduleChoice> In = {
      {0, 3, true, 0, 0x100000000ull},
      {2, 3, false, 0, 0x300000000ull},
      {1, 2, true, 0x5, 0x100000000ull},
      {0, 2, false, 0x2, 0x600000000ull},
      {1, 4, true, 0, 0}};
  std::string Text = encodeSchedule(In);
  EXPECT_EQ(Text, "fsmc1:0/3f100000000;2/3rf300000000;"
                  "1/2f100000000s5;0/2rf600000000s2;1/4");
  std::vector<ScheduleChoice> Out;
  ASSERT_TRUE(decodeSchedule(Text, Out));
  ASSERT_EQ(Out.size(), In.size());
  for (size_t I = 0; I < In.size(); ++I) {
    EXPECT_EQ(Out[I].Chosen, In[I].Chosen) << I;
    EXPECT_EQ(Out[I].Num, In[I].Num) << I;
    EXPECT_EQ(Out[I].Backtrack, In[I].Backtrack) << I;
    EXPECT_EQ(Out[I].SleepMask, In[I].SleepMask) << I;
    EXPECT_EQ(Out[I].FlushMask, In[I].FlushMask) << I;
  }
}

TEST(Schedule, RejectsMalformedFlushMask) {
  std::vector<ScheduleChoice> Out;
  EXPECT_FALSE(decodeSchedule("fsmc1:0/2f", Out));     // Empty mask.
  EXPECT_FALSE(decodeSchedule("fsmc1:0/2fzz", Out));   // Not hex.
  EXPECT_FALSE(decodeSchedule("fsmc1:0/2f1x", Out));   // Trailing junk.
  EXPECT_FALSE(decodeSchedule("fsmc1:0/2fs1", Out));   // f mask empty, s ok.
  // Well-formed combined suffixes still parse.
  EXPECT_TRUE(decodeSchedule("fsmc1:0/2rf100000000s3", Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_FALSE(Out[0].Backtrack);
  EXPECT_EQ(Out[0].FlushMask, 0x100000000ull);
  EXPECT_EQ(Out[0].SleepMask, 0x3ull);
}

TEST(Schedule, EmptyScheduleIsValid) {
  std::vector<ScheduleChoice> Out{{1, 2, true}};
  ASSERT_TRUE(decodeSchedule("fsmc1:", Out));
  EXPECT_TRUE(Out.empty());
}

TEST(Schedule, RejectsMalformedInput) {
  std::vector<ScheduleChoice> Out;
  EXPECT_FALSE(decodeSchedule("", Out));
  EXPECT_FALSE(decodeSchedule("bogus", Out));
  EXPECT_FALSE(decodeSchedule("fsmc1:1", Out));       // No slash.
  EXPECT_FALSE(decodeSchedule("fsmc1:/2", Out));      // No chosen.
  EXPECT_FALSE(decodeSchedule("fsmc1:3/2", Out));     // Chosen >= num.
  EXPECT_FALSE(decodeSchedule("fsmc1:0/1", Out));     // Forced move.
  EXPECT_FALSE(decodeSchedule("fsmc1:0/", Out));      // No num.
}

TEST(Schedule, BugReportCarriesReplayableSchedule) {
  TestProgram P;
  P.Name = "choice-bug";
  P.Body = [] {
    int V = Runtime::current().chooseInt(5);
    checkThat(V != 3, "branch 3 fails");
  };
  CheckResult R = check(P, CheckerOptions());
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation);
  ASSERT_FALSE(R.Bug->Schedule.empty());

  // Replaying the recorded schedule reproduces the bug in ONE execution.
  CheckResult Replay = replaySchedule(P, CheckerOptions(), R.Bug->Schedule);
  EXPECT_EQ(Replay.Kind, Verdict::SafetyViolation);
  EXPECT_EQ(Replay.Stats.Executions, 1u);
  EXPECT_NE(Replay.Bug->Message.find("branch 3"), std::string::npos);
}

TEST(Schedule, ReplaysInterleavingBugDeterministically) {
  TestProgram P;
  P.Name = "race";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Bump = [X] { X->store(X->load() + 1); };
    TestThread A(Bump, "a");
    TestThread B(Bump, "b");
    A.join();
    B.join();
    checkThat(X->raw() == 2, "lost update");
  };
  CheckResult R = check(P, CheckerOptions());
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation);
  for (int I = 0; I < 3; ++I) {
    CheckResult Replay =
        replaySchedule(P, CheckerOptions(), R.Bug->Schedule);
    ASSERT_EQ(Replay.Kind, Verdict::SafetyViolation)
        << "replay " << I << " did not reproduce";
    EXPECT_EQ(Replay.Bug->AtStep, R.Bug->AtStep);
  }
}

TEST(Schedule, ReplaysWorkloadBug) {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = WsqBug::PopReordered;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  // Bug1 needs --memory=tso to manifest; the replay inherits the same
  // options, round-tripping the f<hex> flush masks in the schedule.
  O.Memory = MemoryModel::Tso;
  O.TimeBudgetSeconds = 120;
  TestProgram P = makeWsqProgram(C);
  CheckResult R = check(P, O);
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation);
  CheckResult Replay = replaySchedule(P, O, R.Bug->Schedule);
  EXPECT_EQ(Replay.Kind, Verdict::SafetyViolation);
  EXPECT_EQ(Replay.Stats.Executions, 1u);
  EXPECT_EQ(Replay.Bug->Message, R.Bug->Message);
}

TEST(Schedule, MalformedScheduleReportsCleanly) {
  TestProgram P;
  P.Name = "noop";
  P.Body = [] {};
  CheckResult R = replaySchedule(P, CheckerOptions(), "not-a-schedule");
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
  EXPECT_NE(R.Bug->Message.find("malformed"), std::string::npos);
}

TEST(Schedule, PassingScheduleReplaysAsPass) {
  TestProgram P;
  P.Name = "choices";
  P.Body = [] { (void)Runtime::current().chooseInt(4); };
  // Branch 2, hand-written.
  CheckResult R = replaySchedule(P, CheckerOptions(), "fsmc1:2/4");
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(R.Stats.Executions, 1u);
}
