//===- tests/core/PorDeterminismTest.cpp ----------------------------------===//
//
// --por=on variants of the engine's determinism contracts (this suite
// carries the tier1 label so the asan preset's gate runs it):
//
//  * A serial POR'd search is fully deterministic: running it twice
//    produces byte-identical event traces and stats-json. Sleep sets are
//    a pure function of the choice-stack path, so they cannot introduce
//    run-to-run variance.
//
//  * The reduced tree is the same at every --jobs width: prefix shards
//    replay their frozen choices and recompute the donor's sleep state
//    deterministically, so executions, transitions, POR counters, and
//    the tree-scoped event multiset all match the serial run.
//
//  * POR composes with execution-state reuse: recycling runtimes under
//    --por=on stays observationally invisible.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "obs/EventSink.h"
#include "obs/Observer.h"
#include "obs/StatsJson.h"
#include "obs/TraceValidate.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Peterson.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace fsmc;
using namespace fsmc::obs;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream F(Path, std::ios::binary);
  std::ostringstream S;
  S << F.rdbuf();
  return S.str();
}

CheckResult runWithTrace(const TestProgram &Program, CheckerOptions Opts,
                         const std::string &TracePath) {
  JsonlTraceSink Sink(TracePath);
  EXPECT_TRUE(Sink.valid());
  Observer::Config OC;
  OC.Sink = &Sink;
  Observer Obs(OC);
  Opts.Obs = &Obs;
  CheckResult R = check(Program, Opts);
  Sink.close();
  return R;
}

std::string normalizedStatsJson(const CheckResult &R,
                                const CheckerOptions &Opts) {
  StatsJsonInfo Info;
  Info.Program = "por_determinism";
  Info.Options = &Opts;
  std::string Text = renderStatsJson(R, Info);
  size_t Pos = Text.find("\"seconds\": ");
  EXPECT_NE(Pos, std::string::npos);
  if (Pos != std::string::npos) {
    size_t End = Text.find(',', Pos);
    EXPECT_NE(End, std::string::npos);
    Text.replace(Pos, End - Pos, "\"seconds\": 0");
  }
  return Text;
}

std::vector<std::string> normalizedMultiset(const std::string &Path) {
  std::vector<std::string> Out;
  std::string Err;
  EXPECT_TRUE(loadNormalizedEvents(Path, /*StripWorkerAndTime=*/true,
                                   {"par"}, Out, Err))
      << Err;
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// A workload with real independence (distinct forks), so these runs
/// exercise sleep hits and prunes/wakes, not just the Por=true flag.
TestProgram diningMixed() {
  DiningConfig C;
  C.Philosophers = 3;
  C.Kind = DiningConfig::Variant::Mixed;
  return makeDiningProgram(C);
}

CheckerOptions porOptions() {
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.Por = true;
  return O;
}

} // namespace

TEST(PorDeterminism, SerialRunsAreByteIdentical) {
  CheckerOptions O = porOptions();
  const std::string PathA = tempPath("por_serial_a.json");
  const std::string PathB = tempPath("por_serial_b.json");
  CheckResult A = runWithTrace(diningMixed(), O, PathA);
  CheckResult B = runWithTrace(diningMixed(), O, PathB);

  ASSERT_TRUE(A.Stats.SearchExhausted);
  EXPECT_GT(A.Stats.PorSleepHits, 0u) << "POR never engaged; weak test";

  std::string TraceA = slurp(PathA);
  ASSERT_FALSE(TraceA.empty());
  EXPECT_EQ(TraceA, slurp(PathB));
  EXPECT_EQ(normalizedStatsJson(A, O), normalizedStatsJson(B, O));
}

TEST(PorDeterminism, ParallelWidthsAgreeWithSerial) {
  CheckerOptions Serial = porOptions();
  const std::string SerialPath = tempPath("por_jobs1.json");
  CheckResult S = runWithTrace(diningMixed(), Serial, SerialPath);
  ASSERT_TRUE(S.Stats.SearchExhausted);

  CheckerOptions Par = porOptions();
  Par.Jobs = 4;
  const std::string ParPath = tempPath("por_jobs4.json");
  CheckResult P = runWithTrace(diningMixed(), Par, ParPath);
  ASSERT_TRUE(P.Stats.SearchExhausted);

  // Same reduced tree: the sharded search may neither re-explore a
  // branch the serial reduction pruned nor prune one it kept.
  EXPECT_EQ(P.Stats.Executions, S.Stats.Executions);
  EXPECT_EQ(P.Stats.Transitions, S.Stats.Transitions);
  EXPECT_EQ(P.Stats.PorSleepHits, S.Stats.PorSleepHits);
  EXPECT_EQ(P.Stats.PorBranchesPruned, S.Stats.PorBranchesPruned);
  EXPECT_EQ(P.Stats.PorFairWakes, S.Stats.PorFairWakes);

  std::vector<std::string> Expected = normalizedMultiset(SerialPath);
  ASSERT_FALSE(Expected.empty());
  EXPECT_EQ(normalizedMultiset(ParPath), Expected);
}

TEST(PorDeterminism, ComposesWithExecutionStateReuse) {
  CheckerOptions On = porOptions();
  On.ReuseExecutionState = true;
  const std::string OnPath = tempPath("por_reuse_on.json");
  CheckResult A = runWithTrace(diningMixed(), On, OnPath);

  CheckerOptions Off = porOptions();
  Off.ReuseExecutionState = false;
  const std::string OffPath = tempPath("por_reuse_off.json");
  CheckResult B = runWithTrace(diningMixed(), Off, OffPath);

  ASSERT_TRUE(A.Stats.SearchExhausted);
  ASSERT_TRUE(B.Stats.SearchExhausted);
  std::string OnTrace = slurp(OnPath);
  ASSERT_FALSE(OnTrace.empty());
  EXPECT_EQ(OnTrace, slurp(OffPath));
  EXPECT_EQ(normalizedStatsJson(A, On), normalizedStatsJson(B, Off));
}

TEST(PorDeterminism, BugScheduleStableUnderPor) {
  // Deadlock-prone dining under POR: the recorded schedule and bug
  // position must be identical run to run (the repro contract replay
  // depends on).
  DiningConfig C;
  C.Philosophers = 3;
  C.Kind = DiningConfig::Variant::DeadlockProne;
  CheckerOptions O;
  O.Por = true;
  CheckResult A = check(makeDiningProgram(C), O);
  CheckResult B = check(makeDiningProgram(C), O);
  ASSERT_EQ(A.Kind, Verdict::Deadlock);
  ASSERT_EQ(B.Kind, Verdict::Deadlock);
  ASSERT_TRUE(A.Bug && B.Bug);
  EXPECT_EQ(A.Bug->Schedule, B.Bug->Schedule);
  EXPECT_EQ(A.Bug->AtExecution, B.Bug->AtExecution);
  EXPECT_EQ(A.Stats.Executions, B.Stats.Executions);
}
