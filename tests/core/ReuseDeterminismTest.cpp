//===- tests/core/ReuseDeterminismTest.cpp --------------------------------===//
//
// Pins the invisibility contract of CheckerOptions::ReuseExecutionState
// (docs/PERFORMANCE.md): recycling runtimes and pooling fiber stacks is
// a pure hot-path optimization, so a search run with reuse on must be
// observationally indistinguishable from the same search with reuse off
// -- byte-identical event trace and stats-json at jobs=1, and identical
// normalized event multiset plus stats-json at jobs=4 (where only worker
// interleaving, never the explored tree, may differ between runs).
//
// The stats-json comparison normalizes the one wall-clock field
// ("seconds") and renders without an Observer: per-worker work-stealing
// counters (items popped, prefixes donated) legitimately vary run to run
// at jobs > 1, while everything SearchStats holds must not.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "obs/EventSink.h"
#include "obs/Observer.h"
#include "obs/StatsJson.h"
#include "obs/TraceValidate.h"
#include "workloads/Peterson.h"
#include "workloads/WorkStealQueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace fsmc;
using namespace fsmc::obs;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream F(Path, std::ios::binary);
  std::ostringstream S;
  S << F.rdbuf();
  return S.str();
}

CheckResult runWithTrace(const TestProgram &Program, CheckerOptions Opts,
                         const std::string &TracePath) {
  JsonlTraceSink Sink(TracePath);
  EXPECT_TRUE(Sink.valid());
  Observer::Config OC;
  OC.Sink = &Sink;
  Observer Obs(OC);
  Opts.Obs = &Obs;
  CheckResult R = check(Program, Opts);
  Sink.close();
  return R;
}

/// stats-json with the wall-clock "seconds" value blanked; every other
/// byte must match between reuse on and off.
std::string normalizedStatsJson(const CheckResult &R,
                                const CheckerOptions &Opts) {
  StatsJsonInfo Info;
  Info.Program = "reuse_determinism";
  Info.Options = &Opts;
  std::string Text = renderStatsJson(R, Info);
  size_t Pos = Text.find("\"seconds\": ");
  EXPECT_NE(Pos, std::string::npos);
  if (Pos != std::string::npos) {
    size_t End = Text.find(',', Pos);
    EXPECT_NE(End, std::string::npos);
    Text.replace(Pos, End - Pos, "\"seconds\": 0");
  }
  return Text;
}

std::vector<std::string> normalizedMultiset(const std::string &Path) {
  std::vector<std::string> Out;
  std::string Err;
  EXPECT_TRUE(loadNormalizedEvents(Path, /*StripWorkerAndTime=*/true,
                                   {"par"}, Out, Err))
      << Err;
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(ReuseDeterminism, SerialTraceAndStatsByteIdentical) {
  PetersonConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.Jobs = 1;

  const std::string OnPath = tempPath("reuse_on_jobs1.json");
  const std::string OffPath = tempPath("reuse_off_jobs1.json");
  O.ReuseExecutionState = true;
  CheckResult On = runWithTrace(makePetersonProgram(C), O, OnPath);
  CheckerOptions OOff = O;
  OOff.ReuseExecutionState = false;
  CheckResult Off = runWithTrace(makePetersonProgram(C), OOff, OffPath);

  ASSERT_TRUE(On.Stats.SearchExhausted);
  ASSERT_TRUE(Off.Stats.SearchExhausted);

  std::string OnTrace = slurp(OnPath);
  ASSERT_FALSE(OnTrace.empty());
  EXPECT_EQ(OnTrace, slurp(OffPath));
  EXPECT_EQ(normalizedStatsJson(On, O), normalizedStatsJson(Off, OOff));
}

TEST(ReuseDeterminism, SerialBugTraceByteIdentical) {
  // A bug-finding run exercises the reportBug serialization path (the
  // recycled schedule scratch) on top of the plain exploration loop.
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = WsqBug::PopReordered;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  // Bug1 needs a weak-memory search (workloads/WorkStealQueue.h); this
  // also pins reuse-determinism of the store-buffer machinery itself.
  O.Memory = MemoryModel::Tso;

  const std::string OnPath = tempPath("reuse_on_bug.json");
  const std::string OffPath = tempPath("reuse_off_bug.json");
  O.ReuseExecutionState = true;
  CheckResult On = runWithTrace(makeWsqProgram(C), O, OnPath);
  CheckerOptions OOff = O;
  OOff.ReuseExecutionState = false;
  CheckResult Off = runWithTrace(makeWsqProgram(C), OOff, OffPath);

  ASSERT_TRUE(On.foundBug());
  ASSERT_TRUE(Off.foundBug());
  ASSERT_TRUE(On.Bug && Off.Bug);
  EXPECT_EQ(On.Bug->Schedule, Off.Bug->Schedule);
  EXPECT_EQ(On.Bug->AtExecution, Off.Bug->AtExecution);

  std::string OnTrace = slurp(OnPath);
  ASSERT_FALSE(OnTrace.empty());
  EXPECT_EQ(OnTrace, slurp(OffPath));
  EXPECT_EQ(normalizedStatsJson(On, O), normalizedStatsJson(Off, OOff));
}

TEST(ReuseDeterminism, ParallelMultisetAndStatsIdentical) {
  PetersonConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.Jobs = 4;

  const std::string OnPath = tempPath("reuse_on_jobs4.json");
  const std::string OffPath = tempPath("reuse_off_jobs4.json");
  O.ReuseExecutionState = true;
  CheckResult On = runWithTrace(makePetersonProgram(C), O, OnPath);
  CheckerOptions OOff = O;
  OOff.ReuseExecutionState = false;
  CheckResult Off = runWithTrace(makePetersonProgram(C), OOff, OffPath);

  ASSERT_TRUE(On.Stats.SearchExhausted);
  ASSERT_TRUE(Off.Stats.SearchExhausted);
  EXPECT_EQ(On.Stats.Executions, Off.Stats.Executions);
  EXPECT_EQ(On.Stats.Transitions, Off.Stats.Transitions);

  std::vector<std::string> Expected = normalizedMultiset(OnPath);
  ASSERT_FALSE(Expected.empty());
  EXPECT_EQ(normalizedMultiset(OffPath), Expected);
  EXPECT_EQ(normalizedStatsJson(On, O), normalizedStatsJson(Off, OOff));
}

} // namespace
