//===- tests/core/ParallelExplorerTest.cpp --------------------------------===//
//
// Serial-equivalence regression suite for the prefix-sharded parallel
// explorer. The parallel engine's contract is exact: an exhaustive
// search with --jobs N visits the same executions, the same transition
// total and the same state-signature *set* as --jobs 1, and under
// StopOnFirstBug it reports the identical (DFS-smallest) counterexample
// -- same schedule string, message, and failing step. These tests pin
// that contract down for Peterson, DiningPhilosophers and the
// work-stealing queue at small sizes, for every bug class (safety,
// deadlock, livelock), and for a worker exploring from a nonempty
// frozen prefix (the fairness-under-parallelism theorem case).
//
//===----------------------------------------------------------------------===//

#include "core/Explorer.h"
#include "core/Checkpoint.h"
#include "core/ParallelExplorer.h"
#include "core/Schedule.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Peterson.h"
#include "workloads/SpinWait.h"
#include "workloads/WorkStealQueue.h"

#include <gtest/gtest.h>

using namespace fsmc;

namespace {

const int JobCounts[] = {2, 4, 8};

/// Runs the exhaustive search serially and at each parallel width and
/// asserts the full equivalence contract.
void expectExhaustiveEquivalence(const TestProgram &Program,
                                 CheckerOptions Opts) {
  Opts.ExportStateSignatures = true;
  Opts.Jobs = 1;
  CheckResult Serial = check(Program, Opts);
  ASSERT_TRUE(Serial.Stats.SearchExhausted)
      << "equivalence requires a search that completes";

  for (int Jobs : JobCounts) {
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    Opts.Jobs = Jobs;
    CheckResult Par = check(Program, Opts);
    EXPECT_TRUE(Par.Stats.SearchExhausted);
    EXPECT_EQ(Par.Kind, Serial.Kind);
    EXPECT_EQ(Par.Stats.Executions, Serial.Stats.Executions);
    EXPECT_EQ(Par.Stats.Transitions, Serial.Stats.Transitions);
    EXPECT_EQ(Par.Stats.Preemptions, Serial.Stats.Preemptions);
    EXPECT_EQ(Par.Stats.MaxDepth, Serial.Stats.MaxDepth);
    EXPECT_EQ(Par.Stats.DistinctStates, Serial.Stats.DistinctStates);
    EXPECT_EQ(Par.Stats.BugsFound, Serial.Stats.BugsFound);
    // The sorted signature vectors must be identical element-wise: the
    // shards partition the choice tree, so their union is exactly the
    // serial visit set.
    EXPECT_EQ(Par.StateSignatures, Serial.StateSignatures);
  }
}

/// Runs a first-bug search at every width and asserts the identical
/// counterexample is reported.
void expectSameFirstBug(const TestProgram &Program, CheckerOptions Opts) {
  Opts.StopOnFirstBug = true;
  Opts.Jobs = 1;
  CheckResult Serial = check(Program, Opts);
  ASSERT_TRUE(Serial.foundBug());
  ASSERT_TRUE(Serial.Bug.has_value());

  for (int Jobs : JobCounts) {
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    Opts.Jobs = Jobs;
    CheckResult Par = check(Program, Opts);
    ASSERT_TRUE(Par.foundBug());
    ASSERT_TRUE(Par.Bug.has_value());
    EXPECT_EQ(Par.Kind, Serial.Kind);
    // The schedule string is the bug's identity: equal schedules mean
    // the exact same execution was reported.
    EXPECT_EQ(Par.Bug->Schedule, Serial.Bug->Schedule);
    EXPECT_EQ(Par.Bug->Message, Serial.Bug->Message);
    EXPECT_EQ(Par.Bug->AtStep, Serial.Bug->AtStep);
  }
}

} // namespace

//===----------------------------------------------------------------------===
// Exhaustive-search equivalence: executions, transitions, state sets.
//===----------------------------------------------------------------------===

TEST(ParallelEquivalence, PetersonContextBounded) {
  PetersonConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  expectExhaustiveEquivalence(makePetersonProgram(C), O);
}

TEST(ParallelEquivalence, DiningPhilosophersFairDfs) {
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::Mixed;
  expectExhaustiveEquivalence(makeDiningProgram(C), CheckerOptions());
}

TEST(ParallelEquivalence, DiningPhilosophersOrderedCb) {
  DiningConfig C;
  C.Philosophers = 3;
  C.Kind = DiningConfig::Variant::OrderedBlocking;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 1;
  expectExhaustiveEquivalence(makeDiningProgram(C), O);
}

TEST(ParallelEquivalence, WorkStealQueueContextBounded) {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 1;
  expectExhaustiveEquivalence(makeWsqProgram(C), O);
}

TEST(ParallelEquivalence, CountsAllBugsWhenNotStoppingEarly) {
  // With StopOnFirstBug off the whole tree is enumerated even though it
  // contains bugs; every buggy execution must be counted exactly once
  // across the shards.
  PetersonConfig C;
  C.Kind = PetersonConfig::Variant::FlagAfterCheck;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.StopOnFirstBug = false;
  expectExhaustiveEquivalence(makePetersonProgram(C), O);
}

//===----------------------------------------------------------------------===
// First-bug determinism: --jobs N reports the serial counterexample.
//===----------------------------------------------------------------------===

TEST(ParallelFirstBug, SafetyViolationInWorkStealQueue) {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = WsqBug::PopReordered;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  // Bug1 needs a weak-memory search (workloads/WorkStealQueue.h).
  O.Memory = MemoryModel::Tso;
  expectSameFirstBug(makeWsqProgram(C), O);
}

TEST(ParallelFirstBug, SafetyViolationInPeterson) {
  PetersonConfig C;
  C.Kind = PetersonConfig::Variant::FlagAfterCheck;
  expectSameFirstBug(makePetersonProgram(C), CheckerOptions());
}

TEST(ParallelFirstBug, DeadlockInDiningPhilosophers) {
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::DeadlockProne;
  expectSameFirstBug(makeDiningProgram(C), CheckerOptions());
}

TEST(ParallelFirstBug, ReportedScheduleReplaysToTheSameBug) {
  // The parallel bug report must be replayable exactly like a serial
  // one: its schedule is a root-relative choice sequence even when the
  // finding worker ran from a donated prefix.
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = WsqBug::PopReordered;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  // Bug1 needs a weak-memory search (workloads/WorkStealQueue.h).
  O.Memory = MemoryModel::Tso;
  O.Jobs = 4;
  TestProgram P = makeWsqProgram(C);
  CheckResult R = check(P, O);
  ASSERT_TRUE(R.foundBug());
  CheckerOptions ReplayOpts = O;
  ReplayOpts.Jobs = 1;
  CheckResult Replay = replaySchedule(P, ReplayOpts, R.Bug->Schedule);
  EXPECT_EQ(Replay.Kind, R.Kind);
  EXPECT_EQ(Replay.Stats.Executions, 1u);
  EXPECT_EQ(Replay.Bug->Message, R.Bug->Message);
}

//===----------------------------------------------------------------------===
// Fairness under parallelism: liveness theorems survive sharding.
//===----------------------------------------------------------------------===

TEST(ParallelFairness, FairNonterminationDetectedAtEveryWidth) {
  // Theorem 6 / TheoremTest.FairCycleYieldsDivergence: the Figure 1/2
  // retry cycle is a fair livelock; the parallel search must report the
  // same diverging execution regardless of which worker owns it.
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::TryLockRetry;
  CheckerOptions O;
  O.ExecutionBound = 200;
  expectSameFirstBug(makeDiningProgram(C), O);
}

TEST(ParallelFairness, FairSearchStillExhaustsSpinWait) {
  // Theorem 2: fair termination of the search is a per-subtree property;
  // sharding must not reintroduce divergence. Figure 3's program only
  // fair-terminates because the scheduler lowers the spinner's priority;
  // every shard must inherit that.
  SpinWaitConfig C;
  expectExhaustiveEquivalence(makeSpinWaitProgram(C), CheckerOptions());
}

TEST(ParallelFairness, LivelockFoundFromNonemptyFrozenPrefix) {
  // The worker-level guarantee behind the jobs-level tests: seed an
  // Explorer with a frozen prefix of the livelock schedule and let it
  // search only that subtree -- the fair scheduler and the divergence
  // monitor must still flag the cycle below the preloaded prefix.
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::TryLockRetry;
  CheckerOptions O;
  O.ExecutionBound = 200;
  TestProgram P = makeDiningProgram(C);

  CheckResult Serial = check(P, O);
  ASSERT_EQ(Serial.Kind, Verdict::Livelock);
  std::vector<ScheduleChoice> Choices;
  ASSERT_TRUE(decodeSchedule(Serial.Bug->Schedule, Choices));
  ASSERT_GT(Choices.size(), 4u);

  // Freeze the first four choices; the livelock lives in this subtree.
  Choices.resize(4);
  Explorer Sub(P, O);
  Sub.preloadSchedule(Choices, /*Frozen=*/true);
  CheckResult R = Sub.run();
  EXPECT_EQ(R.Kind, Verdict::Livelock);
  // The reported schedule must still be root-relative and replayable.
  CheckResult Replay = replaySchedule(P, O, R.Bug->Schedule);
  EXPECT_EQ(Replay.Kind, Verdict::Livelock);
}

TEST(ParallelFairness, FrozenPrefixConfinesTheSearch) {
  // A frozen prefix must shard, not just seed: the subtree explorer may
  // never backtrack above the prefix, so its execution count is that of
  // one subtree, strictly less than the whole tree's.
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::Mixed;
  CheckerOptions O;
  TestProgram P = makeDiningProgram(C);
  CheckResult Whole = check(P, O);
  ASSERT_TRUE(Whole.Stats.SearchExhausted);

  // The first scheduling point of this workload offers two threads;
  // freezing one choice confines the search to half the tree.
  Explorer Sub(P, O);
  std::vector<ScheduleChoice> Prefix = {{0, 2, true}};
  Sub.preloadSchedule(Prefix, /*Frozen=*/true);
  CheckResult R = Sub.run();
  EXPECT_TRUE(R.Stats.SearchExhausted);
  EXPECT_LT(R.Stats.Executions, Whole.Stats.Executions);
  EXPECT_GE(R.Stats.Executions, 1u);
}

//===----------------------------------------------------------------------===
// Interrupt / resume at parallel widths (docs/ROBUSTNESS.md).
//===----------------------------------------------------------------------===

TEST(ParallelResume, InterruptedParallelSearchResumesToTheSerialTotals) {
  // Interrupt a --jobs 4 search at a checkpoint epoch, then resume the
  // stashed frontier (again at --jobs 4): the chain must reach the same
  // executions, transitions and state-signature set as one uninterrupted
  // serial run.
  PetersonConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.ExportStateSignatures = true;

  CheckResult Serial = check(makePetersonProgram(C), O);
  ASSERT_TRUE(Serial.Stats.SearchExhausted);

  TestProgram P = makePetersonProgram(C);
  std::atomic<bool> Flag{false};
  CheckerOptions Cut = O;
  Cut.Jobs = 4;
  Cut.InterruptFlag = &Flag;
  Cut.CheckpointEvery = 40;
  Cut.CheckpointSink = [&](const CheckpointState &) { Flag.store(true); };
  CheckResult Partial = check(P, Cut);

  CheckResult Final;
  if (Partial.Stats.Interrupted) {
    ASSERT_TRUE(Partial.Resume != nullptr);
    EXPECT_LT(Partial.Stats.Executions, Serial.Stats.Executions);
    CheckerOptions Again = O;
    Again.Jobs = 4;
    Final = resumeCheck(P, Again, *Partial.Resume);
  } else {
    // The whole tree fit before the first epoch boundary -- equivalence
    // still must hold, there was just nothing to resume.
    Final = Partial;
  }
  EXPECT_TRUE(Final.Stats.SearchExhausted);
  EXPECT_EQ(Final.Kind, Serial.Kind);
  EXPECT_EQ(Final.Stats.Executions, Serial.Stats.Executions);
  EXPECT_EQ(Final.Stats.Transitions, Serial.Stats.Transitions);
  EXPECT_EQ(Final.Stats.DistinctStates, Serial.Stats.DistinctStates);
  EXPECT_EQ(Final.StateSignatures, Serial.StateSignatures);
}

TEST(ParallelResume, PeriodicParallelCheckpointIsIndependentlyResumable) {
  // Every periodic checkpoint of an uninterrupted parallel run must be a
  // complete description of the remaining search: resuming the *first*
  // one (serially) and adding nothing else reaches the full totals.
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::Mixed;
  TestProgram P = makeDiningProgram(C);
  CheckerOptions O;
  O.ExportStateSignatures = true;

  CheckResult Serial = check(P, O);
  ASSERT_TRUE(Serial.Stats.SearchExhausted);

  std::vector<CheckpointState> Checkpoints;
  CheckerOptions Par = O;
  Par.Jobs = 4;
  Par.CheckpointEvery = 15;
  Par.CheckpointSink = [&](const CheckpointState &CK) {
    Checkpoints.push_back(CK);
  };
  CheckResult Full = check(P, Par);
  ASSERT_TRUE(Full.Stats.SearchExhausted);
  EXPECT_EQ(Full.Stats.Executions, Serial.Stats.Executions);
  if (Checkpoints.empty())
    GTEST_SKIP() << "search completed before the first epoch";

  CheckResult Resumed = resumeCheck(P, O, Checkpoints.front());
  EXPECT_TRUE(Resumed.Stats.SearchExhausted);
  EXPECT_EQ(Resumed.Stats.Executions, Serial.Stats.Executions);
  EXPECT_EQ(Resumed.Stats.Transitions, Serial.Stats.Transitions);
  EXPECT_EQ(Resumed.StateSignatures, Serial.StateSignatures);
}
