//===- tests/core/FleetParityTest.cpp -------------------------------------===//
//
// Differential parity suite for --fleet=N (core/Fleet.cpp): the
// supervised multi-process search must be a *transport*, not a different
// search. On exhaustive runs its verdicts, stats and deduplicated
// incident sets equal --jobs=N and the serial engine exactly -- and stay
// exactly equal under FSMC_FLEET_CHAOS fault injection (killed workers,
// hung workers, zero respawn budget), because a worker that dies commits
// nothing and its unit is re-run identically. The only permitted deltas
// are wall time and the fleet_* recovery counters.
//
// Also here: the degradation ladder (reduced width, in-process fallback,
// poison-unit quarantine) and the interrupt/checkpoint/resume loop.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "core/Checkpoint.h"

#include "workloads/CrashFault.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Peterson.h"
#include "workloads/WorkloadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

using namespace fsmc;

namespace {

/// Scoped FSMC_FLEET_CHAOS override: a spec sets it, nullptr clears it.
/// CI's chaos job runs this whole suite with an ambient spec, so runs
/// that must stay healthy (the Clean baselines) clear it explicitly;
/// ctest runs every test in its own process, so the ambient spec is
/// re-seen by each test even though the destructor unsets.
struct ChaosEnv {
  explicit ChaosEnv(const char *Spec) {
    if (Spec)
      setenv("FSMC_FLEET_CHAOS", Spec, 1);
    else
      unsetenv("FSMC_FLEET_CHAOS");
  }
  ~ChaosEnv() { unsetenv("FSMC_FLEET_CHAOS"); }
};

/// Order-insensitive deduplicated incident view (idiom shared with
/// PorParityTest): fleet workers commit incidents in racy arrival order.
std::set<std::string> incidentSet(const CheckResult &R) {
  std::set<std::string> S;
  if (R.Bug)
    S.insert(verdictName(R.Bug->Kind) + std::string(": ") + R.Bug->Message);
  for (const BugReport &I : R.Incidents)
    S.insert(verdictName(I.Kind) + std::string(": ") + I.Message);
  return S;
}

/// The exactness bar: everything the search observed must match, only
/// wall time and the fleet_* recovery counters may differ.
void expectExactlyEqual(const CheckResult &A, const CheckResult &B) {
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(incidentSet(A), incidentSet(B));
  EXPECT_EQ(A.Stats.Executions, B.Stats.Executions);
  EXPECT_EQ(A.Stats.Transitions, B.Stats.Transitions);
  EXPECT_EQ(A.Stats.Preemptions, B.Stats.Preemptions);
  EXPECT_EQ(A.Stats.MaxDepth, B.Stats.MaxDepth);
  EXPECT_EQ(A.Stats.BugsFound, B.Stats.BugsFound);
  EXPECT_EQ(A.Stats.RacesFound, B.Stats.RacesFound);
  EXPECT_EQ(A.Stats.SearchExhausted, B.Stats.SearchExhausted);
  ASSERT_EQ(A.Bug.has_value(), B.Bug.has_value());
  if (A.Bug) {
    // Both engines converge on the DFS-smallest counterexample.
    EXPECT_EQ(A.Bug->Schedule, B.Bug->Schedule);
    EXPECT_EQ(A.Bug->Message, B.Bug->Message);
  }
}

/// Exhaustive fair context-bounded search; every catalogue workload below
/// finishes it in well under a second, so the multiset of executions is
/// fully determined and fleet/jobs/serial must agree exactly.
CheckerOptions exhaustiveOpts(int Cb) {
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = Cb;
  O.TimeBudgetSeconds = 120;
  O.StopOnFirstBug = false;
  return O;
}

CheckerOptions fleetOpts(CheckerOptions O, int Workers, int Batch = 16) {
  O.FleetWorkers = Workers;
  O.FleetBatchSize = Batch;
  return O;
}

/// Registry key ("Dining Philosophers" -> "dining-philosophers"), the
/// same folding tools/fsmc_run.cpp applies.
std::string keyOf(const std::string &Name) {
  std::string Key;
  for (char Ch : Name)
    Key += Ch == ' ' ? '-' : char(std::tolower((unsigned char)Ch));
  return Key;
}

TestProgram registryProgram(const std::string &Key) {
  // Peterson is a CLI-extra program, not a registry row; resolve it the
  // way tools/fsmc_run.cpp does.
  if (Key == "peterson")
    return makePetersonProgram(PetersonConfig());
  for (const RegisteredWorkload &W : allWorkloads())
    if (keyOf(W.Name) == Key)
      return W.Make();
  ADD_FAILURE() << "registry workload '" << Key << "' not found";
  return makePetersonProgram(PetersonConfig());
}

} // namespace

//===----------------------------------------------------------------------===//
// Whole-registry sweep (the acceptance criterion): --fleet=4 produces the
// same verdicts and deduplicated incident sets as --jobs=4 on every
// registered workload. Rows small enough to exhaust under the cap must
// also match execution-for-execution.
//===----------------------------------------------------------------------===//

TEST(FleetParity, RegistrySweepFleet4MatchesJobs4) {
  for (const RegisteredWorkload &W : allWorkloads()) {
    SCOPED_TRACE(W.Name);
    CheckerOptions Base;
    Base.Kind = SearchKind::ContextBounded;
    Base.ContextBound = 1;
    Base.MaxExecutions = 400;
    Base.TimeBudgetSeconds = 60;
    Base.Races = RaceCheckMode::On;
    Base.StopOnFirstBug = false;

    CheckerOptions Jobs = Base;
    Jobs.Jobs = 4;
    CheckResult J = check(W.Make(), Jobs);
    CheckResult F = check(W.Make(), fleetOpts(Base, /*Workers=*/4));

    EXPECT_EQ(F.Kind, J.Kind);
    EXPECT_EQ(incidentSet(F), incidentSet(J));
    if (F.Stats.SearchExhausted && J.Stats.SearchExhausted)
      expectExactlyEqual(F, J);
  }
}

//===----------------------------------------------------------------------===//
// Exhaustive catalogue: exact multiset parity at widths 1, 2, 4 and 8
// against both the serial engine and --jobs=4.
//===----------------------------------------------------------------------===//

TEST(FleetParity, ExhaustiveCatalogueExactAtAllWidths) {
  struct Entry {
    const char *Key;
    int Cb;
  };
  const Entry Catalogue[] = {
      {"peterson", 2},
      {"dining-philosophers", 2},
      {"crash-fault", 2},
      {"promise", 2},
      {"work-stealing-queue", 1},
  };
  for (const Entry &E : Catalogue) {
    SCOPED_TRACE(E.Key);
    CheckerOptions Base = exhaustiveOpts(E.Cb);
    CheckResult Serial = check(registryProgram(E.Key), Base);
    ASSERT_TRUE(Serial.Stats.SearchExhausted);

    CheckerOptions Jobs = Base;
    Jobs.Jobs = 4;
    CheckResult J = check(registryProgram(E.Key), Jobs);
    expectExactlyEqual(J, Serial);

    for (int Width : {1, 2, 4, 8}) {
      SCOPED_TRACE("fleet width " + std::to_string(Width));
      CheckResult F =
          check(registryProgram(E.Key), fleetOpts(Base, Width));
      expectExactlyEqual(F, Serial);
      // CI's chaos job reruns this suite with ambient FSMC_FLEET_CHAOS;
      // exactness must hold regardless, but a quiet run additionally
      // proves the supervisor never intervened.
      if (!std::getenv("FSMC_FLEET_CHAOS")) {
        EXPECT_EQ(F.Stats.FleetWorkerCrashes, 0u);
        EXPECT_EQ(F.Stats.FleetReissues, 0u);
      }
    }
  }
}

TEST(FleetParity, BugSearchConvergesOnDfsSmallestCounterexample) {
  // StopOnFirstBug off: the whole buggy tree is enumerated and every
  // engine must return the DFS-smallest schedule, independent of which
  // worker stumbled on a bug first.
  PetersonConfig C;
  C.Kind = PetersonConfig::Variant::FlagAfterCheck;
  CheckerOptions Base = exhaustiveOpts(2);
  CheckResult Serial = check(makePetersonProgram(C), Base);
  ASSERT_TRUE(Serial.foundBug());
  for (int Width : {2, 4}) {
    SCOPED_TRACE(Width);
    CheckResult F =
        check(makePetersonProgram(C), fleetOpts(Base, Width, /*Batch=*/8));
    expectExactlyEqual(F, Serial);
  }
}

TEST(FleetParity, RaceIncidentsDedupAcrossWorkers) {
  // Both engines run the race detector per execution; the merge must
  // deduplicate identical race reports arriving from different workers.
  CrashFaultConfig C;
  C.Kind = CrashFaultConfig::Fault::Race;
  CheckerOptions Base = exhaustiveOpts(2);
  Base.Races = RaceCheckMode::On;
  CheckResult Serial = check(makeCrashFaultProgram(C), Base);
  ASSERT_GT(Serial.Stats.RacesFound, 0u) << "seeded race never fired";
  CheckResult F =
      check(makeCrashFaultProgram(C), fleetOpts(Base, 4, /*Batch=*/4));
  expectExactlyEqual(F, Serial);
}

//===----------------------------------------------------------------------===//
// Chaos: fault injection must change the fleet_* counters and nothing
// else. A killed worker commits nothing, so the re-run of its unit
// reproduces the identical subtree.
//===----------------------------------------------------------------------===//

TEST(FleetChaos, KilledWorkersChangeNothingButTheCounters) {
  TestProgram P = registryProgram("dining-philosophers");
  CheckerOptions Base = fleetOpts(exhaustiveOpts(2), /*Workers=*/4,
                                  /*Batch=*/8);
  // kill:3 arms the first three spawned workers to SIGKILL themselves
  // mid-attempt; with the quarantine threshold raised the re-issues must
  // absorb all three deaths without losing or duplicating a unit.
  Base.FleetQuarantine = 10;
  CheckResult Clean;
  {
    ChaosEnv Env(nullptr);
    Clean = check(registryProgram("dining-philosophers"), Base);
  }
  ASSERT_TRUE(Clean.Stats.SearchExhausted);

  CheckResult Chaos;
  {
    ChaosEnv Env("kill:3");
    Chaos = check(registryProgram("dining-philosophers"), Base);
  }
  expectExactlyEqual(Chaos, Clean);
  EXPECT_GE(Chaos.Stats.FleetWorkerCrashes, 3u);
  EXPECT_GE(Chaos.Stats.FleetReissues, 3u);
  EXPECT_GE(Chaos.Stats.FleetRespawns, 3u);
  EXPECT_EQ(Chaos.Stats.FleetQuarantined, 0u);
  EXPECT_EQ(Clean.Stats.FleetWorkerCrashes, 0u);
}

TEST(FleetChaos, HungWorkerIsDetectedByHeartbeatAndRecovered) {
  CheckerOptions Base = fleetOpts(exhaustiveOpts(2), /*Workers=*/2,
                                  /*Batch=*/16);
  Base.FleetQuarantine = 10;
  // Tight heartbeat so the hang is declared in well under a second.
  Base.FleetHeartbeatTimeout = 0.4;
  CheckResult Clean;
  {
    ChaosEnv Env(nullptr);
    Clean = check(makePetersonProgram(PetersonConfig()), Base);
  }
  ASSERT_TRUE(Clean.Stats.SearchExhausted);

  CheckResult Chaos;
  {
    ChaosEnv Env("hang:1");
    Chaos = check(makePetersonProgram(PetersonConfig()), Base);
  }
  expectExactlyEqual(Chaos, Clean);
  EXPECT_GE(Chaos.Stats.FleetWorkerCrashes, 1u);
  EXPECT_GE(Chaos.Stats.FleetReissues, 1u);
}

TEST(FleetChaos, ReducedWidthAfterExhaustedRespawnBudgetStaysExact) {
  // Two of four workers die and may not be replaced; the surviving pair
  // absorbs the re-issued units and the result is still exact.
  CheckerOptions Base = fleetOpts(exhaustiveOpts(2), /*Workers=*/4,
                                  /*Batch=*/8);
  Base.FleetQuarantine = 10;
  Base.FleetRespawnBudget = 0;
  CheckResult Clean;
  {
    ChaosEnv Env(nullptr);
    Clean = check(registryProgram("dining-philosophers"), Base);
  }

  CheckResult Chaos;
  {
    ChaosEnv Env("kill:2");
    Chaos = check(registryProgram("dining-philosophers"), Base);
  }
  expectExactlyEqual(Chaos, Clean);
  EXPECT_EQ(Chaos.Stats.FleetWorkerCrashes, 2u);
  EXPECT_EQ(Chaos.Stats.FleetRespawns, 0u);
}

TEST(FleetChaos, AllWorkersDeadDegradesToInProcessWithoutDeadlock) {
  // Every worker dies with no respawn budget. The coordinator must not
  // hang on dead pipes: units whose attempts killed workers are
  // quarantined as crash suspects, anything untried runs in-process, and
  // the run terminates with an honest verdict.
  CheckerOptions Base = fleetOpts(exhaustiveOpts(2), /*Workers=*/2,
                                  /*Batch=*/64);
  Base.FleetRespawnBudget = 0;
  CheckResult R;
  {
    ChaosEnv Env("kill:2");
    R = check(makePetersonProgram(PetersonConfig()), Base);
  }
  EXPECT_EQ(R.Stats.FleetWorkerCrashes, 2u);
  EXPECT_EQ(R.Stats.FleetRespawns, 0u);
  // The first unit absorbed both deaths and was quarantined on fallback;
  // it surfaces as a replayable crash incident, not a silent loss.
  EXPECT_GE(R.Stats.FleetQuarantined, 1u);
  EXPECT_EQ(R.Kind, Verdict::Crash);
  ASSERT_FALSE(R.Incidents.empty());
  EXPECT_FALSE(R.Incidents.front().Schedule.empty());
}

TEST(FleetChaos, PoisonUnitIsQuarantinedAsReplayableCrash) {
  // A workload that genuinely crashes the process running it: the unit
  // kills its worker every time, hits the quarantine threshold, and is
  // retired as a Verdict::Crash incident carrying a replayable schedule
  // prefix -- while the coordinator survives.
  CrashFaultConfig C;
  C.Kind = CrashFaultConfig::Fault::NullDeref;
  CheckerOptions Base = fleetOpts(exhaustiveOpts(2), /*Workers=*/2,
                                  /*Batch=*/32);
  Base.FleetQuarantine = 1;
  Base.FleetRespawnBudget = 64;
  CheckResult R = check(makeCrashFaultProgram(C), Base);
  EXPECT_EQ(R.Kind, Verdict::Crash);
  EXPECT_GE(R.Stats.FleetWorkerCrashes, 1u);
  EXPECT_GE(R.Stats.FleetQuarantined, 1u);
  ASSERT_FALSE(R.Incidents.empty());
  EXPECT_EQ(R.Incidents.front().Kind, Verdict::Crash);
  EXPECT_FALSE(R.Incidents.front().Schedule.empty());
}

//===----------------------------------------------------------------------===//
// Interrupt / checkpoint / resume: a drained fleet checkpoint must
// reproduce the uninterrupted multiset, and checkpoints cross engines in
// both directions.
//===----------------------------------------------------------------------===//

namespace {

/// Repeated-interrupt harness (idiom from RobustnessTest): trip the
/// interrupt flag at every periodic checkpoint, resume from the drained
/// frontier, and iterate until the search completes.
CheckResult runWithRepeatedInterrupts(const TestProgram &Program,
                                      CheckerOptions Opts, uint64_t After,
                                      int *InterruptsTaken) {
  std::atomic<bool> Flag{false};
  Opts.InterruptFlag = &Flag;
  Opts.CheckpointEvery = After;
  Opts.CheckpointSink = [&](const CheckpointState &) {
    Flag.store(true, std::memory_order_relaxed);
  };
  CheckResult R = check(Program, Opts);
  int Interrupts = 0;
  while (R.Stats.Interrupted) {
    if (!R.Resume) {
      ADD_FAILURE() << "interrupted fleet must hand back a checkpoint";
      break;
    }
    ++Interrupts;
    // Wire round-trip every time: what --resume reads is the file, not
    // the in-memory state.
    std::string Text = encodeCheckpoint(*R.Resume, Program.Name, Opts.Seed);
    CheckpointState CK;
    std::string Name, Err;
    uint64_t Seed = 0;
    EXPECT_TRUE(decodeCheckpoint(Text, CK, Name, Seed, Err)) << Err;
    Flag.store(false, std::memory_order_relaxed);
    R = resumeCheck(Program, Opts, CK);
  }
  if (InterruptsTaken)
    *InterruptsTaken = Interrupts;
  return R;
}

} // namespace

TEST(FleetResume, InterruptedFleetMatchesUninterrupted) {
  TestProgram P = makePetersonProgram(PetersonConfig());
  CheckerOptions Base = fleetOpts(exhaustiveOpts(2), /*Workers=*/2,
                                  /*Batch=*/32);
  CheckResult Straight = check(P, Base);
  ASSERT_TRUE(Straight.Stats.SearchExhausted);

  int Interrupts = 0;
  CheckResult Chopped = runWithRepeatedInterrupts(P, Base, 60, &Interrupts);
  ASSERT_GT(Interrupts, 1) << "the fleet was never actually interrupted";
  EXPECT_TRUE(Chopped.Stats.SearchExhausted);
  EXPECT_EQ(Chopped.Kind, Straight.Kind);
  EXPECT_EQ(Chopped.Stats.Executions, Straight.Stats.Executions);
  EXPECT_EQ(Chopped.Stats.Transitions, Straight.Stats.Transitions);
  EXPECT_EQ(Chopped.Stats.Preemptions, Straight.Stats.Preemptions);
}

TEST(FleetResume, SerialCheckpointResumesIntoFleet) {
  // Cross-engine: a serial run's checkpoint (a DFS stack decomposed into
  // frozen prefixes) must finish exactly under fleet supervision.
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::Mixed;
  TestProgram P = makeDiningProgram(C);
  CheckerOptions O;
  O.ExportStateSignatures = true;

  CheckResult Straight = check(P, O);
  ASSERT_TRUE(Straight.Stats.SearchExhausted);

  std::atomic<bool> Flag{false};
  CheckerOptions Cut = O;
  Cut.InterruptFlag = &Flag;
  Cut.CheckpointEvery = 10;
  Cut.CheckpointSink = [&](const CheckpointState &) { Flag.store(true); };
  CheckResult Partial = check(P, Cut);
  ASSERT_TRUE(Partial.Stats.Interrupted);
  ASSERT_TRUE(Partial.Resume != nullptr);

  CheckerOptions Fleet = fleetOpts(O, /*Workers=*/4, /*Batch=*/8);
  CheckResult Resumed = resumeCheck(P, Fleet, *Partial.Resume);
  EXPECT_TRUE(Resumed.Stats.SearchExhausted);
  EXPECT_EQ(Resumed.Kind, Straight.Kind);
  EXPECT_EQ(Resumed.Stats.Executions, Straight.Stats.Executions);
  EXPECT_EQ(Resumed.Stats.Transitions, Straight.Stats.Transitions);
  EXPECT_EQ(Resumed.Stats.DistinctStates, Straight.Stats.DistinctStates);
  EXPECT_EQ(Resumed.StateSignatures, Straight.StateSignatures);
}

TEST(FleetResume, InterruptedFleetUnderChaosStillResumesExactly) {
  // The two robustness layers compose: a fleet that is losing workers to
  // chaos *and* being interrupted still reconstructs the uninterrupted
  // multiset across resumes.
  TestProgram P = makePetersonProgram(PetersonConfig());
  CheckerOptions Base = fleetOpts(exhaustiveOpts(2), /*Workers=*/2,
                                  /*Batch=*/32);
  Base.FleetQuarantine = 10;
  CheckResult Straight = check(P, Base);

  CheckResult Chopped;
  {
    ChaosEnv Env("kill:1");
    Chopped = runWithRepeatedInterrupts(P, Base, 100, nullptr);
  }
  EXPECT_TRUE(Chopped.Stats.SearchExhausted);
  EXPECT_EQ(Chopped.Stats.Executions, Straight.Stats.Executions);
  EXPECT_EQ(Chopped.Stats.Transitions, Straight.Stats.Transitions);
}
