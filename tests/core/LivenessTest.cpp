//===- tests/core/LivenessTest.cpp ----------------------------------------===//
//
// Liveness detection: the semi-algorithm's outcomes 2 (good samaritan
// violations) and 3 (livelocks), plus unit tests of the divergence
// classifier.
//
//===----------------------------------------------------------------------===//

#include "core/LivenessMonitor.h"

#include "core/Checker.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Promise.h"
#include "workloads/SpinWait.h"
#include "workloads/WorkerGroup.h"

#include <gtest/gtest.h>

using namespace fsmc;

TEST(LivenessMonitor, EagerDetectorFlagsPersistentSpinner) {
  LivenessMonitor M(/*GsBound=*/10);
  M.beginExecution();
  for (int I = 0; I < 9; ++I) {
    M.onTransition(3, /*WasYield=*/false, /*OthersEnabled=*/true);
    EXPECT_EQ(M.eagerGsViolator(), -1);
  }
  M.onTransition(3, false, true);
  EXPECT_EQ(M.eagerGsViolator(), 3);
}

TEST(LivenessMonitor, YieldResetsTheWindow) {
  LivenessMonitor M(10);
  M.beginExecution();
  for (int Round = 0; Round < 20; ++Round) {
    for (int I = 0; I < 9; ++I)
      M.onTransition(1, false, true);
    M.onTransition(1, /*WasYield=*/true, true);
  }
  EXPECT_EQ(M.eagerGsViolator(), -1);
}

TEST(LivenessMonitor, LoneSpinnerIsNotFlagged) {
  // A thread spinning with no other enabled thread starves nobody.
  LivenessMonitor M(10);
  M.beginExecution();
  for (int I = 0; I < 100; ++I)
    M.onTransition(0, false, /*OthersEnabled=*/false);
  EXPECT_EQ(M.eagerGsViolator(), -1);
}

TEST(LivenessMonitor, ZeroBoundDisablesEagerDetection) {
  LivenessMonitor M(0);
  M.beginExecution();
  for (int I = 0; I < 1000; ++I)
    M.onTransition(0, false, true);
  EXPECT_EQ(M.eagerGsViolator(), -1);
}

namespace {

Trace makeSuffixTrace(int Laps, bool UYields) {
  // Threads 1 and 2 alternate; thread 2 yields each lap iff UYields.
  Trace T;
  for (int I = 0; I < Laps; ++I) {
    T.record({1, OpKind::VarLoad, 0, 0, 0, false});
    T.record({1, OpKind::Sleep, -1, 0, 0, true});
    T.record({2, OpKind::VarLoad, 0, 0, 0, false});
    T.record({2, UYields ? OpKind::Sleep : OpKind::VarStore, -1, 0, 0,
              UYields});
  }
  return T;
}

} // namespace

TEST(LivenessMonitor, ClassifiesFairDivergenceAsLivelock) {
  Trace T = makeSuffixTrace(100, /*UYields=*/true);
  auto D = LivenessMonitor::classifyDivergence(T, 200);
  EXPECT_FALSE(D.IsGoodSamaritan);
  EXPECT_NE(D.Summary.find("livelock"), std::string::npos);
}

TEST(LivenessMonitor, ClassifiesNonYieldingSpinnerAsGsViolation) {
  Trace T = makeSuffixTrace(100, /*UYields=*/false);
  auto D = LivenessMonitor::classifyDivergence(T, 200);
  EXPECT_TRUE(D.IsGoodSamaritan);
  EXPECT_EQ(D.Culprit, 2);
}

TEST(LivenessMonitor, RareThreadInSuffixIsNotASpinner) {
  // A joiner scheduled twice without yielding must not trigger the GS
  // classification while the real threads cycle fairly.
  Trace T = makeSuffixTrace(100, /*UYields=*/true);
  T.record({0, OpKind::Join, -1, 1, 0, false});
  T.record({0, OpKind::Join, -1, 2, 0, false});
  auto D = LivenessMonitor::classifyDivergence(T, 200);
  EXPECT_FALSE(D.IsGoodSamaritan);
}

//===----------------------------------------------------------------------===
// End-to-end liveness detection through the checker.
//===----------------------------------------------------------------------===

TEST(Liveness, SpinWithYieldIsFairTerminating) {
  SpinWaitConfig C;
  CheckResult R = check(makeSpinWaitProgram(C), CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted)
      << "the fair search must terminate on Figure 3's program";
}

TEST(Liveness, SpinWithoutYieldViolatesGoodSamaritan) {
  SpinWaitConfig C;
  C.WithYield = false;
  CheckerOptions O;
  O.GoodSamaritanBound = 100;
  CheckResult R = check(makeSpinWaitProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::GoodSamaritanViolation);
  ASSERT_TRUE(R.Bug.has_value());
  EXPECT_NE(R.Bug->Message.find("u0"), std::string::npos)
      << "the spinner must be named in the report";
}

TEST(Liveness, DiningTryLockLivelockFound) {
  // Figure 1's livelock: a *fair* cycle. Found by the unbounded fair DFS
  // via the execution bound; each lap needs preemptions, so context
  // bounding would hide it.
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::TryLockRetry;
  CheckerOptions O;
  O.ExecutionBound = 200;
  O.TimeBudgetSeconds = 60;
  CheckResult R = check(makeDiningProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Livelock);
  ASSERT_TRUE(R.Bug.has_value());
  EXPECT_NE(R.Bug->Message.find("livelock"), std::string::npos);
}

TEST(Liveness, PromiseStaleReadLivelockFound) {
  PromiseConfig C;
  C.StaleReadBug = true;
  CheckerOptions O;
  O.ExecutionBound = 1000;
  O.TimeBudgetSeconds = 60;
  CheckResult R = check(makePromiseProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Livelock)
      << "Figure 8's stale read yields each lap: a fair livelock";
}

TEST(Liveness, PromiseWithoutBugPasses) {
  PromiseConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 60;
  CheckResult R = check(makePromiseProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Liveness, WorkerGroupShutdownSpinDetected) {
  WorkerGroupConfig C;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.GoodSamaritanBound = 200;
  O.TimeBudgetSeconds = 60;
  CheckResult R = check(makeWorkerGroupProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::GoodSamaritanViolation)
      << "Figure 7's stop-flag window must surface as a GS violation";
}

TEST(Liveness, FixedWorkerGroupHasNoSpin) {
  WorkerGroupConfig C;
  C.ShutdownSpinBug = false;
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 1;
  O.GoodSamaritanBound = 200;
  O.TimeBudgetSeconds = 60;
  O.MaxExecutions = 30000;
  CheckResult R = check(makeWorkerGroupProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Liveness, DivergenceDetectionCanBeDisabled) {
  SpinWaitConfig C;
  C.WithYield = false;
  CheckerOptions O;
  O.DetectDivergence = false;
  O.GoodSamaritanBound = 100;
  // DFS reaches the diverging branch only after roughly ExecutionBound
  // executions (each backtrack extends the spin by one lap), so keep the
  // bound small and the execution budget above it.
  O.ExecutionBound = 60;
  O.MaxExecutions = 500;
  CheckResult R = check(makeSpinWaitProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_GT(R.Stats.NonterminatingExecutions, 0u);
}
