//===- tests/core/IterativeCheckTest.cpp ----------------------------------===//

#include "core/IterativeCheck.h"

#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"
#include "workloads/WorkStealQueue.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

namespace {

/// A bug that requires exactly two preemptions: one to deschedule main
/// (enabled at its load) so the writer starts, one to interrupt the
/// writer between its stores so main observes the intermediate value.
TestProgram twoPreemptionBug() {
  TestProgram P;
  P.Name = "needs-2-preemptions";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    TestThread Writer([X] {
      X->store(1);
      X->store(2);
    }, "writer");
    int Seen = X->load();
    checkThat(Seen != 1, "intermediate value observed");
    Writer.join();
  };
  return P;
}

} // namespace

TEST(IterativeCheck, CleanProgramRunsAllBounds) {
  TestProgram P;
  P.Name = "clean";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    TestThread W([X] { X->store(1); }, "w");
    W.join();
    checkThat(X->raw() == 1, "value written");
  };
  IterativeCheckResult R = iterativeCheck(P, CheckerOptions(), 3);
  EXPECT_FALSE(R.foundBug());
  ASSERT_EQ(R.PerBound.size(), 4u);
  for (size_t I = 0; I < R.PerBound.size(); ++I) {
    EXPECT_EQ(R.PerBound[I].Bound, int(I));
    EXPECT_EQ(R.PerBound[I].Result.Kind, Verdict::Pass);
  }
  EXPECT_EQ(R.Final.Kind, Verdict::Pass);
}

TEST(IterativeCheck, FindsBugAtItsMinimalBound) {
  IterativeCheckResult R = iterativeCheck(twoPreemptionBug(),
                                          CheckerOptions(), 3);
  ASSERT_TRUE(R.foundBug());
  // cb<=1 cannot both start the writer and interrupt it; cb=2 can. The
  // PLDI'07 promise: the bug surfaces at the smallest sufficient bound.
  EXPECT_EQ(R.BugBound, 2);
  ASSERT_EQ(R.PerBound.size(), 3u);
  EXPECT_EQ(R.PerBound[0].Result.Kind, Verdict::Pass);
  EXPECT_EQ(R.PerBound[1].Result.Kind, Verdict::Pass);
  EXPECT_EQ(R.PerBound[2].Result.Kind, Verdict::SafetyViolation);
  EXPECT_EQ(R.Final.Kind, Verdict::SafetyViolation);
}

TEST(IterativeCheck, StopsAtFirstBuggyBound) {
  IterativeCheckResult R = iterativeCheck(twoPreemptionBug(),
                                          CheckerOptions(), 10);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.PerBound.size(), 3u) << "bounds after the bug must not run";
}

TEST(IterativeCheck, WorkloadBugHasSmallPreemptionBound) {
  // The WSQ reorder bug needs very few preemptions -- the kind of defect
  // iterative context bounding is built for.
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = WsqBug::PopReordered;
  CheckerOptions O;
  O.TimeBudgetSeconds = 120;
  // Bug1 needs a weak-memory search (workloads/WorkStealQueue.h).
  O.Memory = MemoryModel::Tso;
  IterativeCheckResult R = iterativeCheck(makeWsqProgram(C), O, 3);
  ASSERT_TRUE(R.foundBug());
  EXPECT_LE(R.BugBound, 2);
}

TEST(IterativeCheck, RespectsTotalTimeBudget) {
  WsqConfig C;
  C.Stealers = 2;
  C.Tasks = 3;
  CheckerOptions O;
  O.TimeBudgetSeconds = 0.2; // Total across bounds.
  IterativeCheckResult R = iterativeCheck(makeWsqProgram(C), O, 50);
  EXPECT_FALSE(R.foundBug());
  EXPECT_LT(R.PerBound.size(), 51u)
      << "the shared budget must cut the bound ladder short";
}
