//===- tests/core/FairSchedulerTest.cpp -----------------------------------===//
//
// Unit tests of Algorithm 1, including a step-by-step replay of the
// paper's Figure 4 emulation and property tests of the Theorem 3
// invariants.
//
//===----------------------------------------------------------------------===//

#include "core/FairScheduler.h"

#include "support/Xorshift.h"

#include <gtest/gtest.h>

using namespace fsmc;

namespace {
constexpr Tid T = 0; // Figure 3's thread t.
constexpr Tid U = 1; // Figure 3's thread u.

ThreadSet both() {
  ThreadSet S;
  S.insert(T);
  S.insert(U);
  return S;
}
} // namespace

TEST(FairScheduler, InitialStateMatchesAlgorithmLines1To4) {
  FairScheduler FS;
  EXPECT_TRUE(FS.priorities().empty());
  for (Tid X = 0; X < 4; ++X) {
    EXPECT_EQ(FS.scheduledSince(X), ThreadSet::all());
    EXPECT_EQ(FS.disabledBySince(X), ThreadSet::all());
    EXPECT_TRUE(FS.continuouslyEnabledSince(X).empty());
  }
}

TEST(FairScheduler, InitiallyFullyNondeterministic) {
  // With an empty priority relation the scheduler is the standard demonic
  // one: allowed == ES.
  FairScheduler FS;
  EXPECT_EQ(FS.allowed(both()), both());
  EXPECT_EQ(FS.allowed(ThreadSet::singleton(U)), ThreadSet::singleton(U));
  EXPECT_TRUE(FS.allowed(ThreadSet()).empty());
}

/// The Figure 4 emulation, transition for transition. The scheduler keeps
/// choosing u; the priority edge (u, t) must appear exactly after u's
/// *second* yield, forcing t to run.
TEST(FairScheduler, Figure4Emulation) {
  FairScheduler FS;
  ThreadSet ES = both(); // Both threads stay enabled throughout.

  // (a,c) -> (a,d): u executes the while check; not a yield.
  ASSERT_EQ(FS.allowed(ES), both());
  FS.onTransition(U, ES, ES, /*WasYield=*/false);
  EXPECT_TRUE(FS.priorities().empty());

  // (a,d) -> (a,c): u yields. First yield of u: S(u)/D(u) start full, so
  // H = (E ∪ D) \ S = {} and P stays empty; the first window begins.
  ASSERT_TRUE(FS.allowed(ES).contains(U));
  FS.onTransition(U, ES, ES, /*WasYield=*/true);
  EXPECT_TRUE(FS.priorities().empty()) << "first yield must not add edges";
  EXPECT_EQ(FS.continuouslyEnabledSince(U), both());
  EXPECT_TRUE(FS.scheduledSince(U).empty());
  EXPECT_TRUE(FS.disabledBySince(U).empty());

  // (a,c) -> (a,d): u executes the while check again. Still no priority:
  // the paper stresses "the P relation is still empty allowing the
  // scheduler to choose either of the two threads".
  ASSERT_EQ(FS.allowed(ES), both());
  FS.onTransition(U, ES, ES, /*WasYield=*/false);
  EXPECT_TRUE(FS.priorities().empty());
  EXPECT_EQ(FS.scheduledSince(U), ThreadSet::singleton(U));

  // (a,d) -> (a,c): u's second yield closes its first real window. u ran
  // the whole window while t stayed continuously enabled and unscheduled:
  // H = {t} and the edge (u, t) appears.
  ASSERT_TRUE(FS.allowed(ES).contains(U));
  FS.onTransition(U, ES, ES, /*WasYield=*/true);
  EXPECT_TRUE(FS.priorities().hasEdge(U, T));
  EXPECT_EQ(FS.edgeAdditions(), 1u);

  // Now the scheduler's choices are T = {t}: u is starving t no longer.
  EXPECT_EQ(FS.allowed(ES), ThreadSet::singleton(T));

  // Scheduling t removes the edge into t (line 13), restoring full
  // nondeterminism.
  FS.onTransition(T, ES, ES, /*WasYield=*/false);
  EXPECT_FALSE(FS.priorities().hasEdge(U, T));
  EXPECT_EQ(FS.allowed(ES), both());
}

TEST(FairScheduler, DisabledSinkDoesNotBlockSource) {
  // (u, t) only forbids u when t is *enabled*: priority is over the
  // enabled set, per line 7.
  FairScheduler FS;
  ThreadSet ES = both();
  // Drive u to acquire the edge (u, t) as in Figure 4.
  FS.onTransition(U, ES, ES, true);
  FS.onTransition(U, ES, ES, false);
  FS.onTransition(U, ES, ES, true);
  ASSERT_TRUE(FS.priorities().hasEdge(U, T));
  // With t disabled, u is schedulable again.
  EXPECT_EQ(FS.allowed(ThreadSet::singleton(U)), ThreadSet::singleton(U));
}

TEST(FairScheduler, TracksThreadsDisabledByTransition) {
  // Line 17: a transition of t that shrinks the enabled set charges the
  // disappearance to t's D set.
  FairScheduler FS;
  ThreadSet Before = both();
  ThreadSet After = ThreadSet::singleton(T); // t's transition disabled u.
  // Open t's window first (its initial D/S are full).
  FS.onTransition(T, Before, Before, true);
  FS.onTransition(T, Before, After, false);
  EXPECT_TRUE(FS.disabledBySince(T).contains(U));
  // u was disabled by t and never scheduled: t's next yield demotes t.
  FS.onTransition(T, After, After, true);
  EXPECT_TRUE(FS.priorities().hasEdge(T, U));
}

TEST(FairScheduler, ScheduledThreadNeverEntersH) {
  // A thread that ran during the window is not starved: line 21 ensures
  // it is in S and thus excluded from H.
  FairScheduler FS;
  ThreadSet ES = both();
  FS.onTransition(U, ES, ES, true); // Open u's window.
  FS.onTransition(T, ES, ES, false); // t runs inside u's window.
  FS.onTransition(U, ES, ES, true);  // u's window closes.
  EXPECT_FALSE(FS.priorities().hasEdge(U, T));
}

TEST(FairScheduler, YieldCountParameterK) {
  // With k = 2 only every second yield closes a window (Section 3's
  // parameterized algorithm), so the Figure 4 edge appears one whole
  // window later.
  FairScheduler FS(/*YieldK=*/2);
  ThreadSet ES = both();
  // Yields 1 and 2: the first *processed* yield is yield 2, which opens
  // the first window (H is empty then because S/D start full... they are
  // reset only at processed yields).
  FS.onTransition(U, ES, ES, true);
  EXPECT_TRUE(FS.priorities().empty());
  FS.onTransition(U, ES, ES, true);
  EXPECT_TRUE(FS.priorities().empty()) << "yield 2 opens the first window";
  FS.onTransition(U, ES, ES, true);
  EXPECT_TRUE(FS.priorities().empty()) << "yield 3 is unprocessed under k=2";
  FS.onTransition(U, ES, ES, true);
  EXPECT_TRUE(FS.priorities().hasEdge(U, T)) << "yield 4 closes the window";
}

TEST(FairScheduler, ResetRestoresInitialState) {
  FairScheduler FS;
  ThreadSet ES = both();
  FS.onTransition(U, ES, ES, true);
  FS.onTransition(U, ES, ES, true);
  ASSERT_FALSE(FS.priorities().empty());
  FS.reset();
  EXPECT_TRUE(FS.priorities().empty());
  EXPECT_EQ(FS.edgeAdditions(), 0u);
  EXPECT_EQ(FS.scheduledSince(U), ThreadSet::all());
}

/// Property: under arbitrary transition streams, P stays acyclic and the
/// schedulable set is empty iff ES is empty (Theorem 3).
class FairSchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FairSchedulerPropertyTest, Theorem3HoldsOnRandomStreams) {
  Xorshift Rng(GetParam());
  FairScheduler FS;
  const int NumThreads = 5;
  ThreadSet ES = ThreadSet::firstN(NumThreads);
  for (int Step = 0; Step < 4000; ++Step) {
    ThreadSet Allowed = FS.allowed(ES);
    ASSERT_EQ(Allowed.empty(), ES.empty());
    ASSERT_TRUE(Allowed.isSubsetOf(ES));
    if (ES.empty())
      break;
    // Pick a random allowed thread; random next enabled set containing
    // at least one thread.
    int Idx = Rng.nextBelow(Allowed.size());
    Tid Chosen = -1;
    for (Tid X : Allowed)
      if (Idx-- == 0) {
        Chosen = X;
        break;
      }
    ThreadSet Next;
    for (Tid X = 0; X < NumThreads; ++X)
      if (Rng.nextBelow(4) != 0)
        Next.insert(X);
    if (Next.empty())
      Next.insert(Chosen);
    bool WasYield = Rng.nextBelow(3) == 0;
    FS.onTransition(Chosen, ES, Next, WasYield);
    ASSERT_TRUE(FS.priorities().isAcyclic());
    ES = Next;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairSchedulerPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));
