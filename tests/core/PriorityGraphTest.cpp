//===- tests/core/PriorityGraphTest.cpp -----------------------------------===//

#include "core/PriorityGraph.h"

#include "support/Xorshift.h"

#include <gtest/gtest.h>

using namespace fsmc;

TEST(PriorityGraph, StartsEmptyAndAcyclic) {
  PriorityGraph P;
  EXPECT_TRUE(P.empty());
  EXPECT_EQ(P.edgeCount(), 0);
  EXPECT_TRUE(P.isAcyclic());
  EXPECT_TRUE(P.pre(ThreadSet::all()).empty());
}

TEST(PriorityGraph, AddAndQueryEdges) {
  PriorityGraph P;
  ThreadSet Sinks;
  Sinks.insert(2);
  Sinks.insert(5);
  P.addEdgesFrom(1, Sinks);
  EXPECT_TRUE(P.hasEdge(1, 2));
  EXPECT_TRUE(P.hasEdge(1, 5));
  EXPECT_FALSE(P.hasEdge(2, 1));
  EXPECT_EQ(P.edgeCount(), 2);
  EXPECT_EQ(P.successorsOf(1), Sinks);
}

TEST(PriorityGraph, PreComputesLosers) {
  // pre(P, X) = threads with an edge into X: they may not be scheduled
  // while a member of X is enabled.
  PriorityGraph P;
  P.addEdgesFrom(0, ThreadSet::singleton(3));
  P.addEdgesFrom(1, ThreadSet::singleton(4));
  ThreadSet X;
  X.insert(3);
  EXPECT_EQ(P.pre(X), ThreadSet::singleton(0));
  X.insert(4);
  ThreadSet Both = ThreadSet::singleton(0) | ThreadSet::singleton(1);
  EXPECT_EQ(P.pre(X), Both);
  EXPECT_TRUE(P.pre(ThreadSet::singleton(9)).empty());
}

TEST(PriorityGraph, RemoveEdgesIntoClearsAllSinks) {
  PriorityGraph P;
  P.addEdgesFrom(0, ThreadSet::singleton(7));
  P.addEdgesFrom(1, ThreadSet::singleton(7));
  P.addEdgesFrom(2, ThreadSet::singleton(8));
  P.removeEdgesInto(7);
  EXPECT_FALSE(P.hasEdge(0, 7));
  EXPECT_FALSE(P.hasEdge(1, 7));
  EXPECT_TRUE(P.hasEdge(2, 8));
  EXPECT_EQ(P.edgeCount(), 1);
}

TEST(PriorityGraph, DetectsCycles) {
  PriorityGraph P;
  P.addEdgesFrom(0, ThreadSet::singleton(1));
  EXPECT_TRUE(P.isAcyclic());
  P.addEdgesFrom(1, ThreadSet::singleton(2));
  EXPECT_TRUE(P.isAcyclic());
  P.addEdgesFrom(2, ThreadSet::singleton(0)); // 0 -> 1 -> 2 -> 0.
  EXPECT_FALSE(P.isAcyclic());
  P.removeEdgesInto(0);
  EXPECT_TRUE(P.isAcyclic());
}

TEST(PriorityGraph, TwoCycleDetected) {
  PriorityGraph P;
  P.addEdgesFrom(3, ThreadSet::singleton(4));
  P.addEdgesFrom(4, ThreadSet::singleton(3));
  EXPECT_FALSE(P.isAcyclic());
}

TEST(PriorityGraph, ClearResets) {
  PriorityGraph P;
  P.addEdgesFrom(0, ThreadSet::firstN(8) - ThreadSet::singleton(0));
  EXPECT_EQ(P.edgeCount(), 7);
  P.clear();
  EXPECT_TRUE(P.empty());
  EXPECT_TRUE(P.isAcyclic());
}

TEST(PriorityGraph, EqualityIsStructural) {
  PriorityGraph A, B;
  A.addEdgesFrom(1, ThreadSet::singleton(2));
  EXPECT_NE(A, B);
  B.addEdgesFrom(1, ThreadSet::singleton(2));
  EXPECT_EQ(A, B);
}

/// Property: the maximal-element argument of Theorem 3. For any acyclic P
/// and nonempty X, X \ pre(P, X) is nonempty.
class PriorityGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PriorityGraphPropertyTest, AcyclicImpliesMaximalElement) {
  Xorshift Rng(GetParam());
  for (int Round = 0; Round < 300; ++Round) {
    PriorityGraph P;
    // Random DAG: edges only from lower to higher id keep it acyclic.
    for (int E = 0; E < 12; ++E) {
      Tid From = Rng.nextBelow(15);
      Tid To = From + 1 + Rng.nextBelow(16 - From - 1 + 1);
      if (To >= 16 || To == From)
        continue;
      P.addEdgesFrom(From, ThreadSet::singleton(To));
    }
    ASSERT_TRUE(P.isAcyclic());
    ThreadSet X;
    for (int I = 0; I < 6; ++I)
      X.insert(Rng.nextBelow(16));
    if (X.empty())
      continue;
    ThreadSet T = X - P.pre(X);
    ASSERT_FALSE(T.empty())
        << "acyclic priority relation produced an empty schedulable set";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PriorityGraphPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));
