//===- tests/core/PorFuzzTest.cpp -----------------------------------------===//
//
// Differential fuzzing of the sleep-set reduction: ~200 small random
// pass-only programs (plain vars, atomics, mutexes, spawn/join, from a
// seeded xorshift generator), each explored exhaustively with --por off
// and on. Partial-order reduction may drop redundant interleavings but
// never a reachable outcome, so the SET of terminal-state digests must
// be identical in both modes (the multiset legitimately shrinks). On a
// mismatch the test dumps the seed and a replayable schedule artifact
// for every diverging digest, so the offending interleaving can be
// re-run directly with fsmc_run --replay.
//
// Runs under the `slow` label: this is minutes of small searches, not
// part of the tier-1 gate.
//
//===----------------------------------------------------------------------===//

#include "core/Explorer.h"
#include "core/Schedule.h"
#include "runtime/Runtime.h"
#include "support/Xorshift.h"
#include "sync/Atomic.h"
#include "sync/Mutex.h"
#include "sync/Plain.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace fsmc;

namespace {

/// One generated instruction: an opcode plus the shared object it hits.
struct FuzzOp {
  enum Kind {
    PlainLoad,
    PlainStore,
    AtomicLoad,
    AtomicStore,
    AtomicAdd,
    LockedAdd, // lock; counter += k; unlock
  };
  Kind K;
  int Obj; ///< Index into the vars/atomics/mutexes pool for K's class.
  int Arg; ///< Stored value / added delta.
};

struct FuzzSpec {
  int Threads = 2;
  int Vars = 1;
  int Atomics = 1;
  int Mutexes = 1;
  /// Per thread: the op sequence it executes.
  std::vector<std::vector<FuzzOp>> Code;
  /// One thread (or -1) additionally spawns and joins a nested child
  /// running Code.back(), covering tid-assignment ordering under POR.
  int NestedSpawner = -1;
};

/// Deterministic program shapes from the seed. Sizes are kept small so
/// the *unreduced* exhaustive fair DFS stays in the low thousands of
/// executions per seed.
FuzzSpec makeSpec(uint64_t Seed) {
  Xorshift Rng(Seed);
  FuzzSpec S;
  // Two top-level threads (a third arrives via the nested spawner on
  // some seeds): exhaustive fair DFS stays well under the cap while the
  // op mix still covers every dependence class.
  S.Threads = 2;
  S.Vars = 1 + Rng.nextBelow(2);     // 1..2
  S.Atomics = 1 + Rng.nextBelow(2);  // 1..2
  S.Mutexes = 1;
  int Bodies = S.Threads + 1; // Last body is the nested child's.
  for (int T = 0; T < Bodies; ++T) {
    int Len = 2 + Rng.nextBelow(2); // 2..3 ops
    std::vector<FuzzOp> Ops;
    for (int I = 0; I < Len; ++I) {
      FuzzOp Op;
      Op.K = FuzzOp::Kind(Rng.nextBelow(6));
      switch (Op.K) {
      case FuzzOp::PlainLoad:
      case FuzzOp::PlainStore:
        Op.Obj = Rng.nextBelow(S.Vars);
        break;
      case FuzzOp::AtomicLoad:
      case FuzzOp::AtomicStore:
      case FuzzOp::AtomicAdd:
        Op.Obj = Rng.nextBelow(S.Atomics);
        break;
      case FuzzOp::LockedAdd:
        Op.Obj = 0;
        break;
      }
      Op.Arg = 1 + Rng.nextBelow(7);
      Ops.push_back(Op);
    }
    S.Code.push_back(std::move(Ops));
  }
  if (Rng.nextBelow(3) == 0)
    S.NestedSpawner = Rng.nextBelow(S.Threads);
  return S;
}

/// What one run observed: terminal-state digests, and for each digest a
/// replayable schedule that produced it (first occurrence wins).
struct FuzzOutcome {
  std::set<uint64_t> Digests;
  std::map<uint64_t, std::string> Schedules;
  SearchStats Stats;
  bool Exhausted = false;
};

uint64_t fnv1a(uint64_t H, uint64_t V) {
  for (int B = 0; B < 8; ++B) {
    H ^= (V >> (B * 8)) & 0xff;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Builds the TestProgram for \p Spec. The digest covers every shared
/// location *and* each thread's accumulated read values, so two
/// interleavings differing in any visible read or final state hash
/// differently. Digest/flag live behind shared_ptrs: executions run
/// one-at-a-time inside the checker, so plain writes are safe.
TestProgram makeFuzzProgram(const FuzzSpec &Spec,
                            std::shared_ptr<uint64_t> LastDigest,
                            std::shared_ptr<bool> DigestValid) {
  TestProgram P;
  P.Name = "por-fuzz";
  P.Body = [Spec, LastDigest, DigestValid] {
    auto Vars = std::make_shared<std::vector<PlainVar<int>>>();
    auto Atomics = std::make_shared<std::vector<Atomic<int>>>();
    Vars->reserve(size_t(Spec.Vars));
    Atomics->reserve(size_t(Spec.Atomics));
    for (int I = 0; I < Spec.Vars; ++I)
      Vars->emplace_back(0, "v" + std::to_string(I));
    for (int I = 0; I < Spec.Atomics; ++I)
      Atomics->emplace_back(0, "a" + std::to_string(I));
    auto Lock = std::make_shared<Mutex>("m");
    auto Counter = std::make_shared<int>(0);
    // Slot per body (threads + nested child), written only by its owner.
    auto Sums = std::make_shared<std::vector<uint64_t>>(Spec.Code.size(), 0);

    auto RunBody = [=](int Body) {
      uint64_t Sum = 0;
      for (const FuzzOp &Op : Spec.Code[size_t(Body)]) {
        switch (Op.K) {
        case FuzzOp::PlainLoad:
          Sum = Sum * 31 + uint64_t((*Vars)[size_t(Op.Obj)].load());
          break;
        case FuzzOp::PlainStore:
          (*Vars)[size_t(Op.Obj)].store(Op.Arg + Body);
          break;
        case FuzzOp::AtomicLoad:
          Sum = Sum * 31 + uint64_t((*Atomics)[size_t(Op.Obj)].load());
          break;
        case FuzzOp::AtomicStore:
          (*Atomics)[size_t(Op.Obj)].store(Op.Arg + Body);
          break;
        case FuzzOp::AtomicAdd:
          Sum = Sum * 31 +
                uint64_t((*Atomics)[size_t(Op.Obj)].fetchAdd(Op.Arg));
          break;
        case FuzzOp::LockedAdd:
          Lock->lock();
          *Counter += Op.Arg;
          Lock->unlock();
          break;
        }
      }
      (*Sums)[size_t(Body)] = Sum;
    };

    std::vector<TestThread> Threads;
    for (int T = 0; T < Spec.Threads; ++T) {
      int Nested = Spec.NestedSpawner == T ? int(Spec.Code.size()) - 1 : -1;
      Threads.emplace_back(
          [RunBody, T, Nested] {
            if (Nested >= 0) {
              TestThread Child([RunBody, Nested] { RunBody(Nested); },
                               "nested");
              RunBody(T);
              Child.join();
            } else {
              RunBody(T);
            }
          },
          "t" + std::to_string(T));
    }
    for (TestThread &T : Threads)
      T.join();

    uint64_t H = 0xcbf29ce484222325ULL;
    for (int I = 0; I < Spec.Vars; ++I)
      H = fnv1a(H, uint64_t((*Vars)[size_t(I)].raw()));
    for (int I = 0; I < Spec.Atomics; ++I)
      H = fnv1a(H, uint64_t((*Atomics)[size_t(I)].raw()));
    H = fnv1a(H, uint64_t(*Counter));
    for (uint64_t S : *Sums)
      H = fnv1a(H, S);
    *LastDigest = H;
    *DigestValid = true;
  };
  return P;
}

/// Exhaustive fair DFS of \p Spec with POR on or off, harvesting the
/// terminal digest set. The execution hook snapshots the choice stack
/// after each completed execution, so every digest maps back to a
/// replayable schedule.
FuzzOutcome explore(const FuzzSpec &Spec, bool Por, uint64_t ExecCap) {
  auto LastDigest = std::make_shared<uint64_t>(0);
  auto DigestValid = std::make_shared<bool>(false);
  TestProgram P = makeFuzzProgram(Spec, LastDigest, DigestValid);
  CheckerOptions O;
  O.Por = Por;
  O.MaxExecutions = ExecCap;

  FuzzOutcome Out;
  Explorer E(P, O);
  E.setExecutionHook([&](Explorer &Ex) {
    if (*DigestValid) {
      *DigestValid = false;
      if (Out.Digests.insert(*LastDigest).second)
        Out.Schedules[*LastDigest] =
            encodeSchedule(Ex.currentStackSnapshot());
    }
    return true;
  });
  CheckResult R = E.run();
  EXPECT_EQ(R.Kind, Verdict::Pass)
      << "fuzz programs are pass-only; got " << verdictName(R.Kind);
  Out.Stats = R.Stats;
  Out.Exhausted = R.Stats.SearchExhausted;
  return Out;
}

/// Writes the replayable artifact for a diverging digest and returns its
/// path. The file holds exactly one fsmc1: schedule string, the format
/// fsmc_run --replay accepts.
std::string dumpArtifact(uint64_t Seed, uint64_t Digest, const char *Side,
                         const std::string &Schedule) {
  std::string Path = testing::TempDir() + "por_fuzz_seed" +
                     std::to_string(Seed) + "_" + Side + "_" +
                     std::to_string(Digest) + ".sched";
  std::ofstream F(Path);
  F << Schedule << "\n";
  return Path;
}

} // namespace

TEST(PorFuzz, TerminalStateSetsMatchAcrossTwoHundredSeeds) {
  const uint64_t Seeds = 200;
  const uint64_t ExecCap = 100000;
  uint64_t Compared = 0, TotalOff = 0, TotalOn = 0;

  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    FuzzSpec Spec = makeSpec(Seed);
    FuzzOutcome Off = explore(Spec, /*Por=*/false, ExecCap);
    FuzzOutcome On = explore(Spec, /*Por=*/true, ExecCap);
    TotalOff += Off.Stats.Executions;
    TotalOn += On.Stats.Executions;

    if (!Off.Exhausted || !On.Exhausted)
      continue; // Capped: the sets are partial, not comparable.
    ++Compared;

    EXPECT_LE(On.Stats.Executions, Off.Stats.Executions);
    if (On.Digests == Off.Digests)
      continue;

    // Mismatch: dump every diverging outcome as a replayable artifact.
    for (uint64_t D : Off.Digests)
      if (!On.Digests.count(D))
        ADD_FAILURE() << "POR LOST terminal state " << D << " (seed "
                      << Seed << "); schedule: "
                      << dumpArtifact(Seed, D, "off", Off.Schedules[D]);
    for (uint64_t D : On.Digests)
      if (!Off.Digests.count(D))
        ADD_FAILURE() << "POR INVENTED terminal state " << D << " (seed "
                      << Seed << "); schedule: "
                      << dumpArtifact(Seed, D, "on", On.Schedules[D]);
  }

  // The cap is a safety net, not the norm: if most seeds failed to
  // exhaust, the generator grew too big to fuzz meaningfully.
  EXPECT_GE(Compared, Seeds * 9 / 10)
      << "too many seeds hit the execution cap";
  std::printf("[por-fuzz] %llu/%llu seeds compared, executions off=%llu "
              "on=%llu\n",
              (unsigned long long)Compared, (unsigned long long)Seeds,
              (unsigned long long)TotalOff, (unsigned long long)TotalOn);
}
