//===- tests/core/RobustnessTest.cpp --------------------------------------===//
//
// Fault-tolerance contract of the robustness layer (docs/ROBUSTNESS.md):
// divergence recovery (a mismatching replay is retried, then discarded --
// never a bug verdict, never a halt), and checkpoint/resume (a search
// interrupted at any execution boundary and resumed from its checkpoint
// reaches exactly the executions, transitions and state-signature set of
// an uninterrupted run, no matter how often it is interrupted).
//
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"
#include "core/Explorer.h"
#include "core/Schedule.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Peterson.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

using namespace fsmc;

namespace {

/// A program that is deterministic on its first execution and changes
/// its chooseInt arity on every later one: replay always mismatches.
TestProgram persistentlyNondeterministic() {
  auto RunCounter = std::make_shared<int>(0);
  TestProgram P;
  P.Name = "nondet-persistent";
  P.Body = [RunCounter] {
    int Runs = (*RunCounter)++;
    (void)Runtime::current().chooseInt(Runs == 0 ? 2 : 3);
    (void)Runtime::current().chooseInt(2);
  };
  return P;
}

/// The small exhaustive search the checkpoint tests interrupt: Peterson
/// under a context bound, a few hundred executions.
CheckerOptions boundedPetersonOpts() {
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.ExportStateSignatures = true;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===
// Divergence recovery.
//===----------------------------------------------------------------------===

TEST(Divergence, RetryBudgetIsConfigurable) {
  CheckerOptions O;
  O.DivergenceRetries = 1;
  CheckResult R = check(persistentlyNondeterministic(), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(R.Stats.DivergenceRetries, 1u);
  EXPECT_EQ(R.Stats.Divergences, 1u);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Divergence, ZeroRetriesDiscardsImmediately) {
  CheckerOptions O;
  O.DivergenceRetries = 0;
  CheckResult R = check(persistentlyNondeterministic(), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(R.Stats.DivergenceRetries, 0u);
  EXPECT_EQ(R.Stats.Divergences, 1u);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Divergence, ReplayOfMismatchingScheduleIsDivergenceNotBug) {
  // A recorded schedule replayed against a program with a different
  // choice structure must come back Verdict::Divergence -- a checker
  // limitation, not a workload bug (the historic failure mode reported
  // it as a SafetyViolation).
  TestProgram Rec;
  Rec.Name = "recorder";
  Rec.Body = [] {
    (void)Runtime::current().chooseInt(2);
    (void)Runtime::current().chooseInt(2);
  };
  CheckerOptions One;
  One.MaxExecutions = 1;
  CheckResult First = check(Rec, One);
  ASSERT_EQ(First.Kind, Verdict::Pass);

  // Re-derive the schedule of the first execution: both choices 0/2.
  std::string Sched = "fsmc1:0/2;0/2";
  TestProgram Wider;
  Wider.Name = "recorder"; // Same name, different arity.
  Wider.Body = [] {
    (void)Runtime::current().chooseInt(3);
    (void)Runtime::current().chooseInt(2);
  };
  CheckResult R = replaySchedule(Wider, CheckerOptions(), Sched);
  EXPECT_EQ(R.Kind, Verdict::Divergence);
  EXPECT_FALSE(R.foundBug());
  EXPECT_EQ(R.Stats.Executions, 0u);
  EXPECT_EQ(R.Stats.Divergences, 1u);
  EXPECT_EQ(R.Stats.DivergenceRetries, 3u);
}

TEST(Divergence, MismatchInFinalTransitionIsStillCaught) {
  // The mismatch fires inside the program's last transition, after which
  // no scheduling point remains: the execution must still be classified
  // as diverged, not silently counted (and the stale flag must not leak
  // into the next attempt).
  auto RunCounter = std::make_shared<int>(0);
  TestProgram P;
  P.Name = "nondet-tail";
  P.Body = [RunCounter] {
    int Runs = (*RunCounter)++;
    (void)Runtime::current().chooseInt(2);
    (void)Runtime::current().chooseInt(Runs == 0 ? 2 : 3);
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(R.Stats.Divergences, 1u);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

//===----------------------------------------------------------------------===
// Checkpoint encode/decode.
//===----------------------------------------------------------------------===

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  CheckpointState CK;
  CK.Stats.Executions = 123;
  CK.Stats.Transitions = 4567;
  CK.Stats.MaxDepth = 17;
  CK.Stats.Divergences = 2;
  CK.Rng = 0xdeadbeefULL;
  CK.States = {3, 5, 8};
  CK.Frontier.push_back({{{0, 2, true}, {1, 3, true}}, 1});
  CK.Frontier.push_back({{{2, 3, true}}, 1});
  BugReport B;
  B.Kind = Verdict::Deadlock;
  B.Message = "deadlock: blocked threads: a b";
  B.Schedule = "fsmc1:0/2;1/3";
  B.AtExecution = 99;
  B.AtStep = 12;
  CK.Bug = B;

  std::string Text = encodeCheckpoint(CK, "prog x", 42);
  CheckpointState Out;
  std::string Program, Err;
  uint64_t Seed = 0;
  ASSERT_TRUE(decodeCheckpoint(Text, Out, Program, Seed, Err)) << Err;
  EXPECT_EQ(Program, "prog x");
  EXPECT_EQ(Seed, 42u);
  EXPECT_EQ(Out.Rng, CK.Rng);
  EXPECT_EQ(Out.Stats.Executions, CK.Stats.Executions);
  EXPECT_EQ(Out.Stats.Transitions, CK.Stats.Transitions);
  EXPECT_EQ(Out.Stats.MaxDepth, CK.Stats.MaxDepth);
  EXPECT_EQ(Out.Stats.Divergences, CK.Stats.Divergences);
  EXPECT_EQ(Out.States, CK.States);
  ASSERT_EQ(Out.Frontier.size(), CK.Frontier.size());
  for (size_t I = 0; I < CK.Frontier.size(); ++I) {
    EXPECT_EQ(Out.Frontier[I].FrozenLen, CK.Frontier[I].FrozenLen);
    ASSERT_EQ(Out.Frontier[I].Prefix.size(), CK.Frontier[I].Prefix.size());
    for (size_t J = 0; J < CK.Frontier[I].Prefix.size(); ++J) {
      EXPECT_EQ(Out.Frontier[I].Prefix[J].Chosen,
                CK.Frontier[I].Prefix[J].Chosen);
      EXPECT_EQ(Out.Frontier[I].Prefix[J].Num,
                CK.Frontier[I].Prefix[J].Num);
      EXPECT_EQ(Out.Frontier[I].Prefix[J].Backtrack,
                CK.Frontier[I].Prefix[J].Backtrack);
    }
  }
  ASSERT_TRUE(Out.Bug.has_value());
  EXPECT_EQ(Out.Bug->Kind, B.Kind);
  EXPECT_EQ(Out.Bug->Message, B.Message);
  EXPECT_EQ(Out.Bug->Schedule, B.Schedule);
  EXPECT_EQ(Out.Bug->AtExecution, B.AtExecution);
}

TEST(Checkpoint, DecodeRejectsGarbage) {
  CheckpointState CK;
  std::string Program, Err;
  uint64_t Seed = 0;
  EXPECT_FALSE(decodeCheckpoint("not a checkpoint", CK, Program, Seed, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(decodeCheckpoint("fsmc-ckpt 99\n", CK, Program, Seed, Err));
}

//===----------------------------------------------------------------------===
// Interrupt / resume equivalence.
//===----------------------------------------------------------------------===

namespace {

/// Interrupts the search after roughly \p After executions (using the
/// periodic checkpoint callback as the trigger point), then resumes --
/// repeatedly, until the search completes. Returns the final result.
CheckResult runWithRepeatedInterrupts(const TestProgram &Program,
                                      CheckerOptions Opts, uint64_t After,
                                      int *InterruptsTaken) {
  std::atomic<bool> Flag{false};
  Opts.InterruptFlag = &Flag;
  Opts.CheckpointEvery = After;
  Opts.CheckpointSink = [&](const CheckpointState &) {
    Flag.store(true, std::memory_order_relaxed);
  };

  CheckResult R = check(Program, Opts);
  int Interrupts = 0;
  while (R.Stats.Interrupted) {
    if (!R.Resume) {
      ADD_FAILURE() << "interrupted run must hand back a resume checkpoint";
      break;
    }
    ++Interrupts;
    // Round-trip the checkpoint through its wire format every time: the
    // file a real run writes must carry everything resume needs.
    std::string Text = encodeCheckpoint(*R.Resume, Program.Name, Opts.Seed);
    CheckpointState CK;
    std::string Name, Err;
    uint64_t Seed = 0;
    EXPECT_TRUE(decodeCheckpoint(Text, CK, Name, Seed, Err)) << Err;
    Flag.store(false, std::memory_order_relaxed);
    R = resumeCheck(Program, Opts, CK);
  }
  if (InterruptsTaken)
    *InterruptsTaken = Interrupts;
  return R;
}

} // namespace

TEST(Resume, InterruptedSerialSearchMatchesUninterrupted) {
  PetersonConfig C;
  TestProgram P = makePetersonProgram(C);
  CheckerOptions O = boundedPetersonOpts();

  CheckResult Straight = check(P, O);
  ASSERT_TRUE(Straight.Stats.SearchExhausted);

  int Interrupts = 0;
  CheckResult Chopped = runWithRepeatedInterrupts(P, O, 25, &Interrupts);
  ASSERT_GT(Interrupts, 2) << "the run must actually have been interrupted";
  EXPECT_TRUE(Chopped.Stats.SearchExhausted);
  EXPECT_EQ(Chopped.Kind, Straight.Kind);
  EXPECT_EQ(Chopped.Stats.Executions, Straight.Stats.Executions);
  EXPECT_EQ(Chopped.Stats.Transitions, Straight.Stats.Transitions);
  EXPECT_EQ(Chopped.Stats.Preemptions, Straight.Stats.Preemptions);
  EXPECT_EQ(Chopped.Stats.DistinctStates, Straight.Stats.DistinctStates);
  EXPECT_EQ(Chopped.StateSignatures, Straight.StateSignatures);
}

TEST(Resume, InterruptedBugSearchStillFindsTheBug) {
  // StopOnFirstBug off: the whole buggy tree is enumerated across the
  // interruptions and the DFS-smallest counterexample survives the
  // checkpoint chain.
  PetersonConfig C;
  C.Kind = PetersonConfig::Variant::FlagAfterCheck;
  TestProgram P = makePetersonProgram(C);
  CheckerOptions O = boundedPetersonOpts();
  O.StopOnFirstBug = false;

  CheckResult Straight = check(P, O);
  ASSERT_TRUE(Straight.foundBug());

  CheckResult Chopped = runWithRepeatedInterrupts(P, O, 20, nullptr);
  ASSERT_TRUE(Chopped.foundBug());
  EXPECT_EQ(Chopped.Kind, Straight.Kind);
  EXPECT_EQ(Chopped.Stats.Executions, Straight.Stats.Executions);
  EXPECT_EQ(Chopped.Stats.BugsFound, Straight.Stats.BugsFound);
  ASSERT_TRUE(Chopped.Bug.has_value());
  EXPECT_EQ(Chopped.Bug->Schedule, Straight.Bug->Schedule);
  EXPECT_EQ(Chopped.Bug->Message, Straight.Bug->Message);
}

TEST(Resume, ParallelResumeOfSerialCheckpointMatches) {
  // A checkpoint taken by a serial run can be resumed at --jobs N: the
  // driver decomposes the serial DFS stack into frozen subtree prefixes.
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::Mixed;
  TestProgram P = makeDiningProgram(C);
  CheckerOptions O;
  O.ExportStateSignatures = true;

  CheckResult Straight = check(P, O);
  ASSERT_TRUE(Straight.Stats.SearchExhausted);

  // Interrupt the serial run once, early.
  std::atomic<bool> Flag{false};
  CheckerOptions Cut = O;
  Cut.InterruptFlag = &Flag;
  Cut.CheckpointEvery = 10;
  Cut.CheckpointSink = [&](const CheckpointState &) { Flag.store(true); };
  CheckResult Partial = check(P, Cut);
  ASSERT_TRUE(Partial.Stats.Interrupted);
  ASSERT_TRUE(Partial.Resume != nullptr);

  CheckerOptions Par = O;
  Par.Jobs = 4;
  CheckResult Resumed = resumeCheck(P, Par, *Partial.Resume);
  EXPECT_TRUE(Resumed.Stats.SearchExhausted);
  EXPECT_EQ(Resumed.Kind, Straight.Kind);
  EXPECT_EQ(Resumed.Stats.Executions, Straight.Stats.Executions);
  EXPECT_EQ(Resumed.Stats.Transitions, Straight.Stats.Transitions);
  EXPECT_EQ(Resumed.Stats.DistinctStates, Straight.Stats.DistinctStates);
  EXPECT_EQ(Resumed.StateSignatures, Straight.StateSignatures);
}

TEST(Resume, CompletedCheckpointResumesToNoWork) {
  // A checkpoint with an empty frontier (taken exactly at exhaustion)
  // must resume to the recorded totals without running anything.
  CheckpointState CK;
  CK.Stats.Executions = 77;
  CK.Stats.Transitions = 900;
  CK.States = {1, 2, 3};
  TestProgram P = makePetersonProgram(PetersonConfig());
  CheckResult R = resumeCheck(P, CheckerOptions(), CK);
  EXPECT_TRUE(R.Stats.SearchExhausted);
  EXPECT_EQ(R.Stats.Executions, 77u);
  EXPECT_EQ(R.Stats.DistinctStates, 3u);
}

//===----------------------------------------------------------------------===
// Checkpoint/resume under --por=on: sleep sets are a pure function of
// the choice-stack path, so a frontier unit replayed after resume must
// recompute them exactly and reach the same terminal stats -- including
// the POR counters -- as an uninterrupted reduced search.
//===----------------------------------------------------------------------===

TEST(Resume, PorInterruptedSearchMatchesUninterrupted) {
  PetersonConfig C;
  TestProgram P = makePetersonProgram(C);
  CheckerOptions O = boundedPetersonOpts();
  O.Por = true;

  CheckResult Straight = check(P, O);
  ASSERT_TRUE(Straight.Stats.SearchExhausted);
  ASSERT_GT(Straight.Stats.PorSleepHits, 0u) << "POR never engaged";

  int Interrupts = 0;
  CheckResult Chopped = runWithRepeatedInterrupts(P, O, 25, &Interrupts);
  ASSERT_GT(Interrupts, 1) << "the run must actually have been interrupted";
  EXPECT_TRUE(Chopped.Stats.SearchExhausted);
  EXPECT_EQ(Chopped.Kind, Straight.Kind);
  EXPECT_EQ(Chopped.Stats.Executions, Straight.Stats.Executions);
  EXPECT_EQ(Chopped.Stats.Transitions, Straight.Stats.Transitions);
  EXPECT_EQ(Chopped.Stats.PorSleepHits, Straight.Stats.PorSleepHits);
  EXPECT_EQ(Chopped.Stats.PorBranchesPruned, Straight.Stats.PorBranchesPruned);
  EXPECT_EQ(Chopped.Stats.PorFairWakes, Straight.Stats.PorFairWakes);
  EXPECT_EQ(Chopped.StateSignatures, Straight.StateSignatures);
}

TEST(Resume, PorParallelResumeOfSerialCheckpointMatches) {
  // The sharded resume decomposes the interrupted POR'd DFS stack into
  // frozen prefixes whose recorded sleep masks must validate on replay.
  DiningConfig C;
  C.Philosophers = 3;
  C.Kind = DiningConfig::Variant::Mixed;
  TestProgram P = makeDiningProgram(C);
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.Por = true;

  CheckResult Straight = check(P, O);
  ASSERT_TRUE(Straight.Stats.SearchExhausted);
  ASSERT_GT(Straight.Stats.PorSleepHits, 0u) << "POR never engaged";

  std::atomic<bool> Flag{false};
  CheckerOptions Cut = O;
  Cut.InterruptFlag = &Flag;
  Cut.CheckpointEvery = 10;
  Cut.CheckpointSink = [&](const CheckpointState &) { Flag.store(true); };
  CheckResult Partial = check(P, Cut);
  ASSERT_TRUE(Partial.Stats.Interrupted);
  ASSERT_TRUE(Partial.Resume != nullptr);

  // Wire round-trip: the v2 format must carry the POR stat keys.
  std::string Text = encodeCheckpoint(*Partial.Resume, P.Name, O.Seed);
  CheckpointState CK;
  std::string Name, Err;
  uint64_t Seed = 0;
  ASSERT_TRUE(decodeCheckpoint(Text, CK, Name, Seed, Err)) << Err;

  CheckerOptions Par = O;
  Par.Jobs = 4;
  CheckResult Resumed = resumeCheck(P, Par, CK);
  EXPECT_TRUE(Resumed.Stats.SearchExhausted);
  EXPECT_EQ(Resumed.Kind, Straight.Kind);
  EXPECT_EQ(Resumed.Stats.Executions, Straight.Stats.Executions);
  EXPECT_EQ(Resumed.Stats.Transitions, Straight.Stats.Transitions);
  EXPECT_EQ(Resumed.Stats.PorSleepHits, Straight.Stats.PorSleepHits);
  EXPECT_EQ(Resumed.Stats.PorBranchesPruned,
            Straight.Stats.PorBranchesPruned);
  EXPECT_EQ(Resumed.Stats.PorFairWakes, Straight.Stats.PorFairWakes);
}
