//===- tests/core/ExplorerTest.cpp ----------------------------------------===//
//
// End-to-end tests of the stateless explorer: enumeration counts,
// replay determinism, choice-stack behaviour for data nondeterminism,
// context bounding, depth bounding and stateful pruning.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/Mutex.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

namespace {

/// N threads, each performing one visible store, spawned by main which
/// then joins them. The schedule orderings of the stores are N!.
TestProgram independentWriters(int N) {
  TestProgram P;
  P.Name = "writers";
  P.Body = [N] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    std::vector<TestThread> Ts;
    for (int I = 0; I < N; ++I)
      Ts.emplace_back([X, I] { X->store(I); }, "w" + std::to_string(I));
    for (TestThread &T : Ts)
      T.join();
  };
  return P;
}

} // namespace

TEST(Explorer, SingleThreadedProgramHasOneExecution) {
  TestProgram P;
  P.Name = "solo";
  P.Body = [] {
    Atomic<int> X(0, "x");
    X.store(1);
    X.store(2);
    EXPECT_EQ(X.load(), 2);
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(R.Stats.Executions, 1u);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Explorer, TwoEmptyThreadsGiveThreeSchedules) {
  // Each child is a single ThreadStart transition; main joins them in
  // order. Hand enumeration: w0-first branches on {main, w1} (2 paths),
  // w1-first forces w0 then main (1 path) -- three executions total.
  TestProgram P;
  P.Name = "empty2";
  P.Body = [] {
    TestThread A([] {}, "w0");
    TestThread B([] {}, "w1");
    A.join();
    B.join();
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(R.Stats.Executions, 3u);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

TEST(Explorer, InterleavingCountGrowsWithThreads) {
  CheckResult R2 = check(independentWriters(2), CheckerOptions());
  CheckResult R3 = check(independentWriters(3), CheckerOptions());
  EXPECT_EQ(R2.Kind, Verdict::Pass);
  EXPECT_EQ(R3.Kind, Verdict::Pass);
  EXPECT_TRUE(R2.Stats.SearchExhausted);
  EXPECT_TRUE(R3.Stats.SearchExhausted);
  EXPECT_GT(R2.Stats.Executions, 1u);
  EXPECT_GT(R3.Stats.Executions, 4 * R2.Stats.Executions)
      << "adding a thread must blow up the interleaving count";
}

TEST(Explorer, ChooseIntEnumeratesDataChoices) {
  auto Seen = std::make_shared<std::vector<int>>();
  TestProgram P;
  P.Name = "choices";
  P.Body = [Seen] {
    int V = Runtime::current().chooseInt(3);
    Seen->push_back(V);
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Stats.Executions, 3u);
  EXPECT_EQ(*Seen, (std::vector<int>{0, 1, 2}));
}

TEST(Explorer, NestedChoicesMultiply) {
  auto Count = std::make_shared<int>(0);
  TestProgram P;
  P.Name = "nested";
  P.Body = [Count] {
    Runtime &RT = Runtime::current();
    (void)RT.chooseInt(2);
    (void)RT.chooseInt(3);
    ++*Count;
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Stats.Executions, 6u);
  EXPECT_EQ(*Count, 6);
}

TEST(Explorer, DeterministicAcrossRuns) {
  CheckerOptions O;
  O.TrackCoverage = true;
  CheckResult A = check(independentWriters(3), O);
  CheckResult B = check(independentWriters(3), O);
  EXPECT_EQ(A.Stats.Executions, B.Stats.Executions);
  EXPECT_EQ(A.Stats.Transitions, B.Stats.Transitions);
  EXPECT_EQ(A.Stats.DistinctStates, B.Stats.DistinctStates);
}

TEST(Explorer, AssertionFailureProducesCounterexample) {
  TestProgram P;
  P.Name = "assert";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    TestThread W([X] { X->store(7); }, "w");
    int V = X->load();
    W.join();
    checkThat(V == 0, "reader must run before writer in this branch");
  };
  CheckResult R = check(P, CheckerOptions());
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation);
  ASSERT_TRUE(R.Bug.has_value());
  EXPECT_NE(R.Bug->Message.find("reader must run"), std::string::npos);
  EXPECT_FALSE(R.Bug->TraceText.empty());
  EXPECT_NE(R.Bug->TraceText.find("store"), std::string::npos);
}

TEST(Explorer, DeadlockDetected) {
  TestProgram P;
  P.Name = "abba";
  P.Body = [] {
    auto A = std::make_shared<Mutex>("A");
    auto B = std::make_shared<Mutex>("B");
    TestThread T1([A, B] {
      A->lock();
      B->lock();
      B->unlock();
      A->unlock();
    }, "t1");
    TestThread T2([A, B] {
      B->lock();
      A->lock();
      A->unlock();
      B->unlock();
    }, "t2");
    T1.join();
    T2.join();
  };
  CheckResult R = check(P, CheckerOptions());
  ASSERT_EQ(R.Kind, Verdict::Deadlock);
  EXPECT_NE(R.Bug->Message.find("t1"), std::string::npos);
  EXPECT_NE(R.Bug->Message.find("t2"), std::string::npos);
}

TEST(Explorer, StopOnFirstBugCountsExecutions) {
  TestProgram P;
  P.Name = "maybe";
  P.Body = [] {
    int V = Runtime::current().chooseInt(4);
    checkThat(V != 2, "branch 2 is buggy");
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
  // Branches 0, 1 pass; branch 2 fails; branch 3 never runs.
  EXPECT_EQ(R.Stats.Executions, 3u);
  EXPECT_EQ(R.Bug->AtExecution, 2u);
}

TEST(Explorer, ContinuePastBugsCountsAll) {
  TestProgram P;
  P.Name = "multi-bug";
  P.Body = [] {
    int V = Runtime::current().chooseInt(4);
    checkThat(V % 2 == 0, "odd branches are buggy");
  };
  CheckerOptions O;
  O.StopOnFirstBug = false;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
  EXPECT_EQ(R.Stats.Executions, 4u);
  EXPECT_EQ(R.Stats.BugsFound, 2u);
  EXPECT_EQ(R.Bug->AtExecution, 1u) << "first counterexample is kept";
}

TEST(Explorer, ContextBoundZeroMeansNoPreemptions) {
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 0;
  CheckResult R = check(independentWriters(3), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_EQ(R.Stats.Preemptions, 0u);
  EXPECT_TRUE(R.Stats.SearchExhausted);
  // Far fewer schedules than the unbounded search explores.
  CheckResult Full = check(independentWriters(3), CheckerOptions());
  EXPECT_LT(R.Stats.Executions, Full.Stats.Executions);
}

TEST(Explorer, ContextBoundGrowsCoverageMonotonically) {
  uint64_t Prev = 0;
  for (int CB = 0; CB <= 3; ++CB) {
    CheckerOptions O;
    O.Kind = SearchKind::ContextBounded;
    O.ContextBound = CB;
    O.TrackCoverage = true;
    CheckResult R = check(independentWriters(3), O);
    EXPECT_EQ(R.Kind, Verdict::Pass);
    EXPECT_GE(R.Stats.DistinctStates, Prev)
        << "state coverage must not shrink as the bound grows";
    Prev = R.Stats.DistinctStates;
  }
}

TEST(Explorer, DepthBoundCutCountsNonterminatingExecutions) {
  // The Figure 2 measurement mode: unfair search, no tail; executions
  // reaching the bound are counted and abandoned.
  TestProgram P;
  P.Name = "spin";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    TestThread T([X] { X->store(1); }, "t");
    TestThread U([X] {
      while (X->load() != 1)
        yieldNow();
    }, "u");
    T.join();
    U.join();
  };
  CheckerOptions O;
  O.Fair = false;
  O.DepthBound = 25;
  O.RandomTail = false;
  O.DetectDivergence = false;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
  EXPECT_GT(R.Stats.NonterminatingExecutions, 0u)
      << "the unfair search must waste executions unrolling the spin loop";
  EXPECT_LT(R.Stats.NonterminatingExecutions, R.Stats.Executions);
}

TEST(Explorer, RandomTailTerminatesExecutions) {
  TestProgram P = independentWriters(2);
  CheckerOptions O;
  O.Fair = false;
  O.DepthBound = 3;
  O.RandomTail = true;
  O.Seed = 42;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
  EXPECT_EQ(R.Stats.NonterminatingExecutions, 0u);
}

TEST(Explorer, RandomWalkRespectsExecutionCap) {
  CheckerOptions O;
  O.Kind = SearchKind::RandomWalk;
  O.MaxExecutions = 37;
  CheckResult R = check(independentWriters(3), O);
  EXPECT_EQ(R.Stats.Executions, 37u);
  EXPECT_TRUE(R.Stats.ExecutionCapHit);
}

TEST(Explorer, StatefulPruningFindsExactStateCount) {
  // Two writers of distinct values to distinct variables: reachable
  // states are the 4 combinations of (x set?, y set?) crossed with thread
  // liveness; the precise count matters less than pruned < unpruned
  // executions and identical distinct-state counts.
  TestProgram P;
  P.Name = "xy";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Y = std::make_shared<Atomic<int>>(0, "y");
    Runtime::current().setStateExtractor(
        [X, Y] { return uint64_t(X->raw()) * 2 + uint64_t(Y->raw()); });
    TestThread A([X] { X->store(1); }, "a");
    TestThread B([Y] { Y->store(1); }, "b");
    A.join();
    B.join();
  };
  CheckerOptions Full;
  Full.TrackCoverage = true;
  CheckResult R1 = check(P, Full);

  CheckerOptions Pruned = Full;
  Pruned.StatefulPruning = true;
  CheckResult R2 = check(P, Pruned);

  EXPECT_EQ(R1.Stats.DistinctStates, R2.Stats.DistinctStates)
      << "stateful pruning must not lose states";
  EXPECT_LE(R2.Stats.Transitions, R1.Stats.Transitions)
      << "pruning must not do more work than the full search";
  EXPECT_GT(R2.Stats.PrunedExecutions, 0u);
}

TEST(Explorer, TimeBudgetStopsSearch) {
  // An effectively unbounded search must stop on the time budget.
  TestProgram P = independentWriters(6);
  CheckerOptions O;
  O.TimeBudgetSeconds = 0.05;
  CheckResult R = check(P, O);
  EXPECT_TRUE(R.Stats.TimedOut || R.Stats.SearchExhausted);
}

TEST(Explorer, MaxDepthTracksLongestExecution) {
  CheckResult R = check(independentWriters(2), CheckerOptions());
  // main start + 2 spawduled starts/stores + joins: at least 5.
  EXPECT_GE(R.Stats.MaxDepth, 5u);
}

TEST(Explorer, NondeterministicProgramIsDiagnosed) {
  // A program whose choice structure changes across executions (here via
  // state smuggled across runs) breaks stateless replay. The explorer
  // retries the mismatching prefix DivergenceRetries times, then discards
  // it as a counted divergence and finishes the search -- never a bug
  // verdict, never a halt (docs/ROBUSTNESS.md).
  auto RunCounter = std::make_shared<int>(0);
  TestProgram P;
  P.Name = "nondet";
  P.Body = [RunCounter] {
    int Runs = (*RunCounter)++;
    // Arity varies between the first execution and its replays.
    (void)Runtime::current().chooseInt(Runs == 0 ? 2 : 3);
    (void)Runtime::current().chooseInt(2);
  };
  CheckResult R = check(P, CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_FALSE(R.foundBug());
  EXPECT_EQ(R.Stats.Executions, 1u) << "only the first execution replays";
  EXPECT_EQ(R.Stats.Divergences, 1u);
  EXPECT_EQ(R.Stats.DivergenceRetries, 3u) << "default retry budget";
  EXPECT_TRUE(R.Stats.SearchExhausted)
      << "a divergent subtree is discarded, not fatal";
}

TEST(Explorer, TableOneCountersPopulated) {
  CheckResult R = check(independentWriters(3), CheckerOptions());
  EXPECT_EQ(R.Stats.MaxThreads, 4);
  EXPECT_GT(R.Stats.MaxSyncOps, 0u);
}
