//===- tests/core/TheoremTest.cpp -----------------------------------------===//
//
// End-to-end property tests tied to the paper's theorems:
//
//   Theorem 2: the fair search terminates on programs with no infinite
//              GS-conforming fair executions.
//   Theorem 3: the scheduler never reports a false deadlock.
//   Theorem 4: unfair cycles are unrolled at most twice, so fair search
//              depth stays near the program's true depth.
//   Theorem 5: every reachable state of yield count zero is visited.
//   Theorem 6: a reachable fair cycle of yield count <= 1 produces a
//              diverging execution.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/Mutex.h"
#include "sync/TestThread.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/SpinWait.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

//===----------------------------------------------------------------------===
// Theorem 2: termination of the fair search.
//===----------------------------------------------------------------------===

struct FairTerminationCase {
  const char *Name;
  int Spinners;
};

class Theorem2Test : public ::testing::TestWithParam<FairTerminationCase> {};

TEST_P(Theorem2Test, FairSearchExhaustsFairTerminatingPrograms) {
  SpinWaitConfig C;
  C.Spinners = GetParam().Spinners;
  CheckerOptions O;
  // The two-spinner search takes ~100s of CPU on a slow host; the budget
  // must leave room for `ctest -j` contention or the theorem assertion
  // below turns into a load-dependent flake.
  O.TimeBudgetSeconds = 280;
  CheckResult R = check(makeSpinWaitProgram(C), O);
  if (R.Stats.TimedOut && !R.foundBug())
    GTEST_SKIP() << "host too slow to finish the search inside the budget; "
                    "a timeout says nothing about divergence";
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted)
      << "fair DFS diverged on a fair-terminating program";
}

INSTANTIATE_TEST_SUITE_P(Spinners, Theorem2Test,
                         ::testing::Values(FairTerminationCase{"one", 1},
                                           FairTerminationCase{"two", 2}),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

//===----------------------------------------------------------------------===
// Theorem 3: no false deadlocks.
//===----------------------------------------------------------------------===

class Theorem3Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem3Test, CorrectLockingNeverReportsDeadlock) {
  // Philosophers with ordered blocking acquisition are deadlock-free; the
  // fair scheduler's priority restrictions must never manufacture one.
  DiningConfig C;
  C.Philosophers = GetParam();
  C.Kind = DiningConfig::Variant::OrderedBlocking;
  CheckerOptions O;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(makeDiningProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Pass) << "false deadlock or other bug reported";
  EXPECT_TRUE(R.Stats.SearchExhausted);
}

INSTANTIATE_TEST_SUITE_P(Philosophers, Theorem3Test, ::testing::Values(2, 3));

TEST(Theorem3, RealDeadlockStillReported) {
  // The dual direction: genuine deadlocks must not be masked.
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::DeadlockProne;
  CheckResult R = check(makeDiningProgram(C), CheckerOptions());
  EXPECT_EQ(R.Kind, Verdict::Deadlock);
}

//===----------------------------------------------------------------------===
// Theorem 4: unfair cycles unrolled at most twice.
//===----------------------------------------------------------------------===

TEST(Theorem4, FairSearchDepthStaysNearProgramDepth) {
  // Figure 3's program: the only cycle (u's spin loop) is unfair. The
  // fair search may unroll it at most twice, so the deepest execution is
  // within a constant of the straight-line depth; the unfair search keeps
  // unrolling until its depth bound.
  SpinWaitConfig C;
  CheckerOptions Fair;
  CheckResult RF = check(makeSpinWaitProgram(C), Fair);
  ASSERT_TRUE(RF.Stats.SearchExhausted);
  EXPECT_LE(RF.Stats.MaxDepth, 30u)
      << "fair search unrolled the unfair spin cycle more than Theorem 4 "
         "permits";

  CheckerOptions Unfair;
  Unfair.Fair = false;
  Unfair.DepthBound = 60;
  Unfair.RandomTail = false;
  Unfair.DetectDivergence = false;
  CheckResult RU = check(makeSpinWaitProgram(C), Unfair);
  EXPECT_EQ(RU.Stats.MaxDepth, 60u)
      << "the unfair search should unroll the cycle to its depth bound";
  EXPECT_GT(RU.Stats.NonterminatingExecutions, 0u);
}

TEST(Theorem4, FairSearchExploresFarFewerExecutions) {
  SpinWaitConfig C;
  CheckerOptions Fair;
  CheckResult RF = check(makeSpinWaitProgram(C), Fair);

  CheckerOptions Unfair;
  Unfair.Fair = false;
  Unfair.DepthBound = 40;
  Unfair.RandomTail = false;
  Unfair.DetectDivergence = false;
  CheckResult RU = check(makeSpinWaitProgram(C), Unfair);
  EXPECT_LT(4 * RF.Stats.Executions, RU.Stats.Executions)
      << "pruning unfair cycles must shrink the search drastically";
}

//===----------------------------------------------------------------------===
// Theorem 5: all yield-count-zero states are visited.
//===----------------------------------------------------------------------===

namespace {

/// A yield-free program: three threads each do two visible increments of
/// distinct counters. Every reachable state has yield count zero.
TestProgram yieldFreeCounters() {
  TestProgram P;
  P.Name = "yieldfree";
  P.Body = [] {
    auto A = std::make_shared<Atomic<int>>(0, "a");
    auto B = std::make_shared<Atomic<int>>(0, "b");
    auto C = std::make_shared<Atomic<int>>(0, "c");
    Runtime::current().setStateExtractor([A, B, C] {
      return uint64_t(A->raw()) | uint64_t(B->raw()) << 8 |
             uint64_t(C->raw()) << 16;
    });
    TestThread T1([A] {
      A->fetchAdd(1);
      A->fetchAdd(1);
    }, "t1");
    TestThread T2([B] {
      B->fetchAdd(1);
      B->fetchAdd(1);
    }, "t2");
    TestThread T3([C] {
      C->fetchAdd(1);
      C->fetchAdd(1);
    }, "t3");
    T1.join();
    T2.join();
    T3.join();
  };
  return P;
}

} // namespace

TEST(Theorem5, FairSearchCoversAllYieldFreeStates) {
  CheckerOptions Fair;
  Fair.TrackCoverage = true;
  CheckResult RF = check(yieldFreeCounters(), Fair);
  ASSERT_TRUE(RF.Stats.SearchExhausted);

  CheckerOptions Unfair = Fair;
  Unfair.Fair = false;
  CheckResult RU = check(yieldFreeCounters(), Unfair);
  ASSERT_TRUE(RU.Stats.SearchExhausted);

  // On a yield-free program the priority relation stays empty, so the
  // fair search is exactly the unconstrained demonic search.
  EXPECT_EQ(RF.Stats.DistinctStates, RU.Stats.DistinctStates);
  EXPECT_EQ(RF.Stats.Executions, RU.Stats.Executions);
  EXPECT_EQ(RF.Stats.FairEdgeAdditions, 0u)
      << "a yield-free program must never trigger a priority demotion";
}

TEST(Theorem5, StatefulReferenceAgreesWithFairSearch) {
  CheckerOptions Fair;
  Fair.TrackCoverage = true;
  CheckResult RF = check(yieldFreeCounters(), Fair);

  CheckerOptions Reference;
  Reference.Fair = false;
  Reference.StatefulPruning = true;
  CheckResult RS = check(yieldFreeCounters(), Reference);
  ASSERT_TRUE(RS.Stats.SearchExhausted);
  EXPECT_EQ(RF.Stats.DistinctStates, RS.Stats.DistinctStates)
      << "fair search must reach every state the stateful reference finds";
}

//===----------------------------------------------------------------------===
// Theorem 6: fair cycles produce divergence.
//===----------------------------------------------------------------------===

TEST(Theorem6, FairCycleYieldsDivergence) {
  // Figure 1's livelock cycle is fair with yield count 1 per thread; the
  // fair search must generate a diverging execution (reported here as a
  // livelock through the execution bound).
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::TryLockRetry;
  CheckerOptions O;
  O.ExecutionBound = 200;
  O.TimeBudgetSeconds = 120;
  CheckResult R = check(makeDiningProgram(C), O);
  EXPECT_EQ(R.Kind, Verdict::Livelock);
}
