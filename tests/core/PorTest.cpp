//===- tests/core/PorTest.cpp ---------------------------------------------===//
//
// Sleep-set partial-order reduction (the paper's stated future work,
// implemented here as an experimental option): independence relation
// unit tests, plus end-to-end checks that POR preserves verdicts while
// shrinking the search on programs whose shared state is fully modeled.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include "core/Dependence.h"
#include "runtime/PendingOp.h"
#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/Mutex.h"
#include "sync/TestThread.h"

#include <gtest/gtest.h>
#include <memory>

using namespace fsmc;

TEST(Independence, DistinctObjectsCommute) {
  PendingOp A = makeOp(OpKind::VarStore, /*ObjectId=*/1);
  PendingOp B = makeOp(OpKind::VarLoad, /*ObjectId=*/2);
  EXPECT_TRUE(independentOps(A, B));
  EXPECT_TRUE(independentOps(B, A));
}

TEST(Independence, SameObjectConflicts) {
  PendingOp A = makeOp(OpKind::VarStore, 5);
  PendingOp B = makeOp(OpKind::VarLoad, 5);
  EXPECT_FALSE(independentOps(A, B));
  PendingOp L1 = makeOp(OpKind::MutexLock, 7);
  PendingOp L2 = makeOp(OpKind::MutexTryLock, 7);
  EXPECT_FALSE(independentOps(L1, L2));
}

TEST(Independence, YieldsCommuteWithEverything) {
  PendingOp Y = makeOp(OpKind::Yield);
  PendingOp S = makeOp(OpKind::Sleep);
  PendingOp Store = makeOp(OpKind::VarStore, 3);
  PendingOp J = makeOp(OpKind::Join, -1, 1);
  EXPECT_TRUE(independentOps(Y, Store));
  EXPECT_TRUE(independentOps(S, J));
  EXPECT_TRUE(independentOps(Y, S));
}

TEST(Independence, ThreadManagementConflictsWithEverything) {
  PendingOp J = makeOp(OpKind::Join, -1, 1);
  PendingOp Start = makeOp(OpKind::ThreadStart);
  PendingOp Store = makeOp(OpKind::VarStore, 3);
  EXPECT_FALSE(independentOps(J, Store));
  EXPECT_FALSE(independentOps(Start, Store));
  EXPECT_FALSE(independentOps(J, Start));
}

TEST(Independence, UnknownObjectsConflictConservatively) {
  PendingOp A = makeOp(OpKind::VarStore, -1);
  PendingOp B = makeOp(OpKind::VarLoad, -1);
  EXPECT_FALSE(independentOps(A, B));
}

TEST(Independence, ReadsOfSameObjectCommute) {
  // Mirrors the race detector: two reads never conflict, even on the
  // same object (src/race/RaceDetector.h classifies them the same way).
  PendingOp A = makeOp(OpKind::VarLoad, 5);
  PendingOp B = makeOp(OpKind::VarLoad, 5);
  EXPECT_TRUE(independentOps(A, B));
  PendingOp R1 = makeOp(OpKind::RwReadLock, 9);
  PendingOp R2 = makeOp(OpKind::RwReadLock, 9);
  EXPECT_TRUE(independentOps(R1, R2));
  // ...but a read still conflicts with a writer-side rwlock acquire.
  PendingOp W = makeOp(OpKind::RwWriteLock, 9);
  EXPECT_FALSE(independentOps(R1, W));
}

TEST(Independence, JoinDependsOnlyOnItsTarget) {
  // join(t) commutes with transitions of threads other than t: whether
  // the target has exited is unaffected by what bystanders do.  The
  // tid-aware entry point carries the executing thread.
  PendingOp J = makeOp(OpKind::Join, -1, /*Aux=target tid*/ 2);
  PendingOp Store = makeOp(OpKind::VarStore, 3);
  EXPECT_TRUE(independentTransitions(/*TA=*/0, J, /*TB=*/1, Store));
  EXPECT_FALSE(independentTransitions(/*TA=*/0, J, /*TB=*/2, Store));
  // Without an executing tid (the legacy pairwise entry point) the
  // oracle stays conservative.
  EXPECT_FALSE(independentOps(J, Store));
}

TEST(Independence, DepClassOfCoversTheFootprintLattice) {
  EXPECT_EQ(depClassOf(OpKind::Yield), DepClass::Pure);
  EXPECT_EQ(depClassOf(OpKind::Sleep), DepClass::Pure);
  EXPECT_EQ(depClassOf(OpKind::VarLoad), DepClass::ObjectRead);
  EXPECT_EQ(depClassOf(OpKind::RwReadLock), DepClass::ObjectRead);
  EXPECT_EQ(depClassOf(OpKind::MutexLock), DepClass::ObjectRw);
  EXPECT_EQ(depClassOf(OpKind::Join), DepClass::ThreadLife);
  EXPECT_EQ(depClassOf(OpKind::ThreadStart), DepClass::Global);
  EXPECT_EQ(depClassOf(OpKind::UserOp), DepClass::Global);
}

namespace {

/// Three writers to three distinct variables: all interleavings are
/// equivalent, POR should collapse most of them.
TestProgram disjointWriters() {
  TestProgram P;
  P.Name = "disjoint";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Y = std::make_shared<Atomic<int>>(0, "y");
    auto Z = std::make_shared<Atomic<int>>(0, "z");
    TestThread A([X] { X->store(1); }, "a");
    TestThread B([Y] { Y->store(1); }, "b");
    TestThread C([Z] { Z->store(1); }, "c");
    A.join();
    B.join();
    C.join();
    checkThat(X->raw() + Y->raw() + Z->raw() == 3, "all writes landed");
  };
  return P;
}

} // namespace

TEST(Por, ShrinksSearchOnIndependentPrograms) {
  CheckerOptions Plain;
  Plain.Fair = false;
  CheckResult Full = check(disjointWriters(), Plain);
  ASSERT_EQ(Full.Kind, Verdict::Pass);
  ASSERT_TRUE(Full.Stats.SearchExhausted);

  CheckerOptions Por = Plain;
  Por.Por = true;
  CheckResult Reduced = check(disjointWriters(), Por);
  EXPECT_EQ(Reduced.Kind, Verdict::Pass);
  EXPECT_TRUE(Reduced.Stats.SearchExhausted);
  EXPECT_LT(Reduced.Stats.Transitions, Full.Stats.Transitions)
      << "POR must prune equivalent interleavings";
  EXPECT_GT(Reduced.Stats.PorBranchesPruned, 0u);
}

TEST(Por, StillFindsConflictingBug) {
  // Racy RMW on one variable: the conflict is real, POR must keep it.
  TestProgram P;
  P.Name = "racy";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Bump = [X] { X->store(X->load() + 1); };
    TestThread A(Bump, "a");
    TestThread B(Bump, "b");
    A.join();
    B.join();
    checkThat(X->raw() == 2, "lost update");
  };
  CheckerOptions O;
  O.Fair = false;
  O.Por = true;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::SafetyViolation);
}

TEST(Por, StillFindsDeadlock) {
  TestProgram P;
  P.Name = "abba";
  P.Body = [] {
    auto A = std::make_shared<Mutex>("A");
    auto B = std::make_shared<Mutex>("B");
    TestThread T1([A, B] {
      A->lock();
      B->lock();
      B->unlock();
      A->unlock();
    }, "t1");
    TestThread T2([A, B] {
      B->lock();
      A->lock();
      A->unlock();
      B->unlock();
    }, "t2");
    T1.join();
    T2.join();
  };
  CheckerOptions O;
  O.Fair = false;
  O.Por = true;
  CheckResult R = check(P, O);
  EXPECT_EQ(R.Kind, Verdict::Deadlock);
}

TEST(Por, SleepBlockedStateIsNotADeadlock) {
  // On a program with independent moves the reduced search prunes whole
  // branches; none of those prunes may masquerade as a deadlock.
  CheckerOptions O;
  O.Fair = false;
  O.Por = true;
  CheckResult R = check(disjointWriters(), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
}

TEST(Por, ComposesWithFairnessExperimentally) {
  // The paper leaves POR-over-fair-schedules as future work; we verify
  // the combination at least preserves the verdict on a terminating
  // spin-free program.
  CheckerOptions O;
  O.Por = true; // Fair stays on.
  CheckResult R = check(disjointWriters(), O);
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
}
