//===- tests/core/MemoryModelTest.cpp -------------------------------------===//
//
// Weak-memory exploration contract (docs/MEMORY.md): under --memory=tso
// stores sit in per-thread FIFO buffers whose flush points are schedule
// points, --memory=pso splits the buffer per variable, fsmc::fence()
// drains, and --memory=sc is byte-identical to a build that never heard
// of store buffers.  The litmus tests below are the standard hardware
// ones (store buffering, message passing); the registry sweep pins that
// weak memory only *adds* interleavings to well-fenced programs, never
// changes their verdicts.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include "core/Checkpoint.h"
#include "core/Schedule.h"
#include "obs/StatsJson.h"
#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"
#include "workloads/WorkStealQueue.h"
#include "workloads/WorkloadRegistry.h"

#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace fsmc;

namespace {

CheckerOptions withMemory(MemoryModel M) {
  CheckerOptions O;
  O.Memory = M;
  return O;
}

/// The classic store-buffering (Dekker core) litmus: two threads each
/// store their own flag then load the other's.  Under SC at least one
/// load observes a store; both loads reading the initial value is the
/// TSO-only outcome a delayed flush produces.
TestProgram storeBufferLitmus(bool Fenced) {
  TestProgram P;
  P.Name = Fenced ? "litmus-sb-fenced" : "litmus-sb";
  P.Body = [Fenced] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Y = std::make_shared<Atomic<int>>(0, "y");
    auto R1 = std::make_shared<int>(-1);
    auto R2 = std::make_shared<int>(-1);
    // The trailing yield keeps thread exit (whose buffer drain is fused
    // with the thread's final transition) from committing the store in
    // the same step as the load -- real SB code keeps running too.
    TestThread A([=] {
      X->store(1);
      if (Fenced)
        fence();
      *R1 = Y->load();
      yieldNow();
    }, "a");
    TestThread B([=] {
      Y->store(1);
      if (Fenced)
        fence();
      *R2 = X->load();
      yieldNow();
    }, "b");
    A.join();
    B.join();
    checkThat(*R1 == 1 || *R2 == 1, "both loads saw the initial value");
  };
  return P;
}

/// Message passing: writer publishes data then sets a flag; reader that
/// observes the flag must observe the data.  FIFO (TSO) buffers preserve
/// the store order, per-variable (PSO) buffers may flush the flag first.
TestProgram messagePassingLitmus() {
  TestProgram P;
  P.Name = "litmus-mp";
  P.Body = [] {
    auto Data = std::make_shared<Atomic<int>>(0, "data");
    auto Flag = std::make_shared<Atomic<int>>(0, "flag");
    TestThread Writer([=] {
      Data->store(42);
      Flag->store(1);
      // Keep the writer alive past the flag store so its exit drain
      // cannot commit both stores in one indivisible step.
      yieldNow();
      yieldNow();
    }, "writer");
    if (Flag->load() == 1)
      checkThat(Data->load() == 42, "flag visible before data");
    Writer.join();
  };
  return P;
}

TestProgram wsqBug1() {
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = WsqBug::PopReordered;
  return makeWsqProgram(C);
}

CheckerOptions wsqSearch(MemoryModel M) {
  CheckerOptions O;
  O.Kind = SearchKind::ContextBounded;
  O.ContextBound = 2;
  O.TimeBudgetSeconds = 120;
  O.Memory = M;
  return O;
}

/// True when any record in the wire string carries an f<hex> flush mask.
bool hasFlushRecords(const std::string &Schedule) {
  std::vector<ScheduleChoice> Choices;
  EXPECT_TRUE(decodeSchedule(Schedule, Choices));
  for (const ScheduleChoice &C : Choices)
    if (C.FlushMask)
      return true;
  return false;
}

std::set<std::string> incidentSet(const CheckResult &R) {
  std::set<std::string> S;
  if (R.Bug)
    S.insert(verdictName(R.Bug->Kind) + std::string(": ") + R.Bug->Message);
  for (const BugReport &I : R.Incidents)
    S.insert(verdictName(I.Kind) + std::string(": ") + I.Message);
  return S;
}

} // namespace

//===----------------------------------------------------------------------===
// Litmus tests: the memory models differ exactly where hardware does.
//===----------------------------------------------------------------------===

TEST(MemoryModel, StoreBufferingIsUnreachableUnderSc) {
  CheckResult R = check(storeBufferLitmus(/*Fenced=*/false),
                        withMemory(MemoryModel::Sc));
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
  EXPECT_EQ(R.Stats.BufferedStores, 0u);
  EXPECT_EQ(R.Stats.StoreFlushes, 0u);
}

TEST(MemoryModel, StoreBufferingIsReachableUnderTso) {
  CheckResult R = check(storeBufferLitmus(/*Fenced=*/false),
                        withMemory(MemoryModel::Tso));
  ASSERT_EQ(R.Kind, Verdict::SafetyViolation);
  ASSERT_TRUE(R.Bug.has_value());
  EXPECT_NE(R.Bug->Message.find("initial value"), std::string::npos);
  EXPECT_GT(R.Stats.BufferedStores, 0u);
  // The violating schedule records its flush choices and replays.
  EXPECT_TRUE(hasFlushRecords(R.Bug->Schedule));
  CheckResult Replay = replaySchedule(storeBufferLitmus(false),
                                      withMemory(MemoryModel::Tso),
                                      R.Bug->Schedule);
  EXPECT_EQ(Replay.Kind, Verdict::SafetyViolation);
  EXPECT_EQ(Replay.Stats.Executions, 1u);
}

TEST(MemoryModel, FencesRestoreSequentialConsistency) {
  CheckResult R = check(storeBufferLitmus(/*Fenced=*/true),
                        withMemory(MemoryModel::Tso));
  EXPECT_EQ(R.Kind, Verdict::Pass);
  EXPECT_TRUE(R.Stats.SearchExhausted);
  // The fence drains buffered stores; the search still paid for them.
  EXPECT_GT(R.Stats.BufferedStores, 0u);
  EXPECT_GT(R.Stats.StoreFlushes, 0u);
}

TEST(MemoryModel, TsoExploresStrictlyMoreSchedules) {
  // Same fenced (bug-free) program, both searches exhaust: delayed
  // flushes are extra schedule points, so the TSO tree strictly
  // contains the SC one.
  CheckResult Sc = check(storeBufferLitmus(true), withMemory(MemoryModel::Sc));
  CheckResult Tso =
      check(storeBufferLitmus(true), withMemory(MemoryModel::Tso));
  ASSERT_TRUE(Sc.Stats.SearchExhausted);
  ASSERT_TRUE(Tso.Stats.SearchExhausted);
  EXPECT_GT(Tso.Stats.Executions, Sc.Stats.Executions);
}

TEST(MemoryModel, StoreToLoadForwardingSeesOwnBufferedStore) {
  // A thread always reads its own newest buffered store, even before any
  // flush: r == 0 would be a forwarding bug, not a weak-memory outcome.
  TestProgram P;
  P.Name = "litmus-fwd";
  P.Body = [] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    TestThread Other([X] { (void)X->load(); }, "other");
    X->store(7);
    checkThat(X->load() == 7, "own buffered store not forwarded");
    Other.join();
  };
  for (MemoryModel M :
       {MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso}) {
    CheckResult R = check(P, withMemory(M));
    EXPECT_EQ(R.Kind, Verdict::Pass) << memoryModelName(M);
    EXPECT_TRUE(R.Stats.SearchExhausted) << memoryModelName(M);
  }
}

TEST(MemoryModel, MessagePassingHoldsUnderTsoBreaksUnderPso) {
  // FIFO buffers commit data before flag; per-variable buffers need not.
  CheckResult Tso = check(messagePassingLitmus(), withMemory(MemoryModel::Tso));
  EXPECT_EQ(Tso.Kind, Verdict::Pass);
  EXPECT_TRUE(Tso.Stats.SearchExhausted);

  CheckResult Pso = check(messagePassingLitmus(), withMemory(MemoryModel::Pso));
  ASSERT_EQ(Pso.Kind, Verdict::SafetyViolation);
  ASSERT_TRUE(Pso.Bug.has_value());
  EXPECT_NE(Pso.Bug->Message.find("flag visible"), std::string::npos);
  CheckResult Replay = replaySchedule(messagePassingLitmus(),
                                      withMemory(MemoryModel::Pso),
                                      Pso.Bug->Schedule);
  EXPECT_EQ(Replay.Kind, Verdict::SafetyViolation);
}

//===----------------------------------------------------------------------===
// The WSQ missing-fence bug: the tentpole's acceptance case.
//===----------------------------------------------------------------------===

TEST(MemoryModel, WsqMissingFenceBugNeedsTso) {
  // Under sc the buffered Tail.store is never delayed past the Head.load,
  // so the THE-protocol race window does not exist.
  CheckResult Sc = check(wsqBug1(), wsqSearch(MemoryModel::Sc));
  EXPECT_EQ(Sc.Kind, Verdict::Pass);
  EXPECT_TRUE(Sc.Stats.SearchExhausted);

  CheckResult Tso = check(wsqBug1(), wsqSearch(MemoryModel::Tso));
  ASSERT_EQ(Tso.Kind, Verdict::SafetyViolation);
  ASSERT_TRUE(Tso.Bug.has_value());
  EXPECT_TRUE(hasFlushRecords(Tso.Bug->Schedule))
      << "the repro must pin its flush choices: " << Tso.Bug->Schedule;

  CheckResult Replay =
      replaySchedule(wsqBug1(), wsqSearch(MemoryModel::Tso),
                     Tso.Bug->Schedule);
  EXPECT_EQ(Replay.Kind, Verdict::SafetyViolation);
  EXPECT_EQ(Replay.Stats.Executions, 1u);
  EXPECT_EQ(Replay.Bug->Message, Tso.Bug->Message);

  // Replaying the tso schedule under sc must diverge loudly (the f-masks
  // no longer match), never silently wander into a passing execution.
  CheckResult Wrong =
      replaySchedule(wsqBug1(), wsqSearch(MemoryModel::Sc),
                     Tso.Bug->Schedule);
  EXPECT_EQ(Wrong.Kind, Verdict::Divergence);
}

TEST(MemoryModel, SandboxHarvestsFlushMaskSchedules) {
  // --isolate=batch streams every choice, flush masks included, through
  // the child pipe; the harvested repro must equal the in-process one.
  CheckResult In = check(wsqBug1(), wsqSearch(MemoryModel::Tso));
  ASSERT_TRUE(In.foundBug());

  CheckerOptions Iso = wsqSearch(MemoryModel::Tso);
  Iso.Isolate = IsolationMode::Batch;
  CheckResult Out = check(wsqBug1(), Iso);
  ASSERT_TRUE(Out.foundBug());
  ASSERT_TRUE(Out.Bug.has_value() && In.Bug.has_value());
  EXPECT_EQ(Out.Bug->Schedule, In.Bug->Schedule);
  EXPECT_EQ(Out.Bug->Message, In.Bug->Message);
  EXPECT_EQ(Out.Stats.Executions, In.Stats.Executions);
  EXPECT_TRUE(hasFlushRecords(Out.Bug->Schedule));
}

//===----------------------------------------------------------------------===
// sc byte-identity and wire-format pins.
//===----------------------------------------------------------------------===

TEST(MemoryModel, ScRunsCarryNoWeakMemoryArtifacts) {
  // Under the default model no schedule record may carry an f-mask and
  // stats-json must not grow memory/buffer keys -- that is what keeps
  // --memory=sc output byte-identical to pre-weak-memory builds.
  CheckerOptions O = wsqSearch(MemoryModel::Sc);
  WsqConfig C;
  C.Stealers = 1;
  C.Tasks = 2;
  C.Bug = WsqBug::StealNoRestore; // Bug2 is an sc bug: a repro exists.
  CheckResult R = check(makeWsqProgram(C), O);
  ASSERT_TRUE(R.foundBug());
  EXPECT_FALSE(hasFlushRecords(R.Bug->Schedule));

  obs::StatsJsonInfo Info;
  Info.Program = "wsq-bug2";
  Info.Options = &O;
  std::string Json = obs::renderStatsJson(R, Info);
  EXPECT_EQ(Json.find("\"memory\""), std::string::npos);
  EXPECT_EQ(Json.find("buffered_stores"), std::string::npos);
  EXPECT_EQ(Json.find("store_flushes"), std::string::npos);
}

TEST(MemoryModel, TsoRunsEchoModelAndCounters) {
  CheckerOptions O = withMemory(MemoryModel::Tso);
  CheckResult R = check(storeBufferLitmus(true), O);
  ASSERT_TRUE(R.Stats.SearchExhausted);
  obs::StatsJsonInfo Info;
  Info.Program = "litmus-sb-fenced";
  Info.Options = &O;
  std::string Json = obs::renderStatsJson(R, Info);
  EXPECT_NE(Json.find("\"memory\": \"tso\""), std::string::npos);
  EXPECT_NE(Json.find("\"buffered_stores\": "), std::string::npos);
  EXPECT_NE(Json.find("\"store_flushes\": "), std::string::npos);
}

TEST(MemoryModel, CheckpointRoundTripsFlushMasks) {
  // Frontier prefixes recorded under tso carry f-masks through the
  // checkpoint text format and through decomposeUnitToFrozenPrefixes
  // (the fleet sharding path).
  CheckpointState CK;
  CheckpointUnit U;
  U.Prefix = {{1, 3, true, 0, 0x100000000ull},
              {0, 2, true, 0x4, 0x300000000ull},
              {1, 2, false, 0, 0}};
  U.FrozenLen = 1;
  CK.Frontier.push_back(U);
  std::string Text = encodeCheckpoint(CK, "litmus-sb", 7);

  CheckpointState Back;
  std::string Program, Err;
  uint64_t Seed = 0;
  ASSERT_TRUE(decodeCheckpoint(Text, Back, Program, Seed, Err)) << Err;
  ASSERT_EQ(Back.Frontier.size(), 1u);
  ASSERT_EQ(Back.Frontier[0].Prefix.size(), 3u);
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(Back.Frontier[0].Prefix[I].FlushMask, U.Prefix[I].FlushMask);
    EXPECT_EQ(Back.Frontier[0].Prefix[I].SleepMask, U.Prefix[I].SleepMask);
  }

  // Sharding a unit copies each sibling's node masks verbatim.
  std::vector<std::vector<ScheduleChoice>> Shards =
      decomposeUnitToFrozenPrefixes(Back.Frontier[0]);
  ASSERT_FALSE(Shards.empty());
  bool SawSibling = false;
  for (const auto &Shard : Shards) {
    ASSERT_FALSE(Shard.empty());
    if (Shard.size() == 2 && Shard.back().Chosen == 1) {
      // The untried sibling of record 1 keeps that node's masks.
      EXPECT_EQ(Shard.back().FlushMask, 0x300000000ull);
      EXPECT_EQ(Shard.back().SleepMask, 0x4ull);
      SawSibling = true;
    }
  }
  EXPECT_TRUE(SawSibling);
}

//===----------------------------------------------------------------------===
// Registry sweep: weak memory must not change verdicts of fenced code.
//===----------------------------------------------------------------------===

TEST(MemoryModel, RegistrySweepScVsTsoVerdictParity) {
  // Every registry entry is race-free and properly fenced (the seeded
  // bugs live behind config flags the registry leaves off), so tso may
  // only add interleavings -- same verdict, same incidents, at least as
  // many executions whenever the sc search exhausted under the cap.
  CheckerOptions Base;
  Base.Kind = SearchKind::Dfs;
  Base.MaxExecutions = 60;
  Base.TimeBudgetSeconds = 60;
  Base.StopOnFirstBug = false;
  for (const RegisteredWorkload &W : allWorkloads()) {
    SCOPED_TRACE(W.Name);
    CheckerOptions Sc = Base;
    Sc.Memory = MemoryModel::Sc;
    CheckerOptions Tso = Base;
    Tso.Memory = MemoryModel::Tso;
    CheckResult RS = check(W.Make(), Sc);
    CheckResult RT = check(W.Make(), Tso);
    EXPECT_EQ(RS.Kind, RT.Kind);
    EXPECT_EQ(incidentSet(RS), incidentSet(RT));
    if (RS.Stats.SearchExhausted) {
      EXPECT_GE(RT.Stats.Executions, RS.Stats.Executions);
    }
  }
}
