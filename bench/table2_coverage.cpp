//===- bench/table2_coverage.cpp - Table 2 reproduction ------------------===//
//
// Table 2 of the paper: states visited by the context-bounded (cb=1..3)
// and depth-first strategies, with and without fairness, on dining
// philosophers (2 and 3) and the work-stealing queue (1 and 2 stealers).
//
// "Total States" comes from the stateful reference search (visited-state
// hash table), exactly as in Section 4.2.1. Without fairness the search
// is cut at a depth bound db and a random walk finishes each execution;
// states found in the tail count. A '*' marks searches that did not
// finish within the budget (the paper's notation, at 5000 s; override
// our default budget with FSMC_BENCH_BUDGET).
//
// Expected shape: fairness reaches the full state count and terminates;
// small depth bounds terminate but miss states; larger ones time out.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/DiningPhilosophers.h"
#include "workloads/WorkStealQueue.h"

#include <cstdio>
#include <functional>

using namespace fsmc;
using namespace fsmc::bench;

namespace {

struct Config {
  std::string Name;
  std::function<TestProgram()> Make;
};

CheckerOptions baseOptions(const StrategyRow &S, double Budget) {
  CheckerOptions O;
  O.Kind = S.Kind;
  O.ContextBound = S.ContextBound;
  O.TimeBudgetSeconds = Budget;
  O.TrackCoverage = true;
  O.DetectDivergence = false;
  O.ExecutionBound = 5000;
  return O;
}

} // namespace

int main() {
  printHeader("Table 2: state coverage with and without fairness",
              "Table 2 (Section 4.2.1)");

  std::vector<Config> Configs;
  for (int Phils : {2, 3}) {
    DiningConfig C;
    C.Philosophers = Phils;
    C.Kind = DiningConfig::Variant::Mixed;
    Configs.push_back({"Dining Philosophers " + std::to_string(Phils),
                       [C] { return makeDiningProgram(C); }});
  }
  for (int Stealers : {1, 2}) {
    WsqConfig C;
    C.Stealers = Stealers;
    C.Tasks = 2;
    Configs.push_back({"Work-Stealing Queue " + std::to_string(Stealers) +
                           " stealer",
                       [C] { return makeWsqProgram(C); }});
  }

  double Budget = runBudget(5.0);
  int StratCount = 0;
  const StrategyRow *Strats = strategyRows(StratCount);

  TablePrinter Table({"Configuration", "Strategy", "Total states",
                      "With fairness", "db=20", "db=40", "db=60"});

  for (const Config &Cfg : Configs) {
    for (int SI = 0; SI < StratCount; ++SI) {
      const StrategyRow &S = Strats[SI];
      std::vector<std::string> Row{Cfg.Name, S.Label};

      // Ground truth: the stateful reference search under this strategy.
      {
        CheckerOptions O = baseOptions(S, Budget);
        O.Fair = false;
        O.StatefulPruning = true;
        CheckResult R = check(Cfg.Make(), O);
        Row.push_back(countCell(R.Stats.DistinctStates, R.Stats));
      }
      // With fairness: no depth bound needed; the search terminates.
      {
        CheckerOptions O = baseOptions(S, Budget);
        CheckResult R = check(Cfg.Make(), O);
        Row.push_back(countCell(R.Stats.DistinctStates, R.Stats));
      }
      // Without fairness: depth bound + random tail.
      for (uint64_t Db : {20, 40, 60}) {
        CheckerOptions O = baseOptions(S, Budget);
        O.Fair = false;
        O.DepthBound = Db;
        O.RandomTail = true;
        O.RandomTailCap = 5000;
        CheckResult R = check(Cfg.Make(), O);
        Row.push_back(countCell(R.Stats.DistinctStates, R.Stats));
      }
      Table.addRow(Row);
    }
  }

  Table.print(outs());
  outs() << '\n';
  std::printf(
      "Paper's qualitative claims to verify here:\n"
      " 1. 'With fairness' matches or exceeds 'Total states' in all but\n"
      "    the hardest case (the paper's exception was dfs on WSQ-2).\n"
      " 2. Small depth bounds terminate but under-cover; larger depth\n"
      "    bounds approach full coverage or time out ('*').\n"
      " 3. Fairness may visit MORE than the per-strategy total: its\n"
      "    priority-induced switches are free and reach states beyond\n"
      "    the context bound (Section 4.2.1).\n");
  return 0;
}
