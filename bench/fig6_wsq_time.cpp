//===- bench/fig6_wsq_time.cpp - Figure 6 reproduction -------------------===//
//
// Figure 6: time to complete the search on the work-stealing queue with
// two stealers, per strategy, fair vs unfair at depth bounds 20..60.
//
// Expected shape: same as Figure 5 but on a much larger state space; the
// paper's dfs runs time out in every configuration, and one unfair cb=3
// db=20 run finishes quickly *without* covering all states -- coverage is
// the table2 bench's job.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/WorkStealQueue.h"

#include <cstdio>

using namespace fsmc;
using namespace fsmc::bench;

int main() {
  printHeader("Figure 6: search completion time, work-stealing queue (2)",
              "Figure 6 (Section 4.2.2)");

  WsqConfig C;
  C.Stealers = 2;
  C.Tasks = 2;

  double Budget = runBudget(10.0);
  int StratCount = 0;
  const StrategyRow *Strats = strategyRows(StratCount);

  TablePrinter Table({"Strategy", "Mode", "Time (s)", "Executions",
                      "Completed"});

  for (int SI = 0; SI < StratCount; ++SI) {
    const StrategyRow &S = Strats[SI];
    {
      CheckerOptions O;
      O.Kind = S.Kind;
      O.ContextBound = S.ContextBound;
      O.TimeBudgetSeconds = Budget;
      O.DetectDivergence = false;
      O.ExecutionBound = 5000;
      CheckResult R = check(makeWsqProgram(C), O);
      Table.addRow({S.Label, "fair", TablePrinter::cellSeconds(R.Stats.Seconds),
                    TablePrinter::cell(R.Stats.Executions),
                    R.Stats.SearchExhausted ? "yes" : "NO (budget)"});
    }
    for (uint64_t Db : {20, 30, 40, 50, 60}) {
      CheckerOptions O;
      O.Kind = S.Kind;
      O.ContextBound = S.ContextBound;
      O.Fair = false;
      O.DepthBound = Db;
      O.RandomTail = true;
      O.RandomTailCap = 5000;
      O.DetectDivergence = false;
      O.TimeBudgetSeconds = Budget;
      CheckResult R = check(makeWsqProgram(C), O);
      Table.addRow({S.Label, "nf db=" + std::to_string(Db),
                    TablePrinter::cellSeconds(R.Stats.Seconds),
                    TablePrinter::cell(R.Stats.Executions),
                    R.Stats.SearchExhausted ? "yes" : "NO (budget)"});
    }
  }
  Table.print(outs());
  outs() << '\n';
  std::printf("Paper (Figure 6): on this larger space the fair cb runs\n"
              "finish while deep unfair bounds and all dfs runs time out;\n"
              "shallow unfair bounds may finish sooner but under-cover\n"
              "(see table2_coverage).\n");
  return 0;
}
