//===- bench/ablation_yieldk.cpp - k-yield and fairness ablations --------===//
//
// Ablations for the design choices DESIGN.md calls out:
//
//  1. The k-yield parameterization (end of Section 3): processing only
//     every k-th yield trades longer searches for soundness on states
//     whose yield count is below k.
//  2. Fairness on/off on a fair-terminating cyclic program: edge
//     additions, executions, and termination.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/DiningPhilosophers.h"
#include "workloads/SpinWait.h"

#include <cstdio>

using namespace fsmc;
using namespace fsmc::bench;

int main() {
  printHeader("Ablation: k-yield parameter and fairness toggling",
              "Section 3's parameterized algorithm");

  double Budget = runBudget(10.0);

  {
    TablePrinter Table({"Program", "k", "Executions", "States",
                        "Priority edges", "Max depth", "Completed"});
    for (int K : {1, 2, 4}) {
      for (int Which = 0; Which < 2; ++Which) {
        TestProgram P;
        std::string Name;
        if (Which == 0) {
          SpinWaitConfig C;
          P = makeSpinWaitProgram(C);
          Name = "spinwait";
        } else {
          DiningConfig C;
          C.Philosophers = 2;
          C.Kind = DiningConfig::Variant::Mixed;
          P = makeDiningProgram(C);
          Name = "dining-2 mixed";
        }
        CheckerOptions O;
        O.YieldK = K;
        O.TrackCoverage = true;
        O.TimeBudgetSeconds = Budget;
        O.DetectDivergence = false;
        O.ExecutionBound = 5000;
        CheckResult R = check(P, O);
        Table.addRow({Name, TablePrinter::cell(K),
                      TablePrinter::cell(R.Stats.Executions),
                      TablePrinter::cell(R.Stats.DistinctStates),
                      TablePrinter::cell(R.Stats.FairEdgeAdditions),
                      TablePrinter::cell(R.Stats.MaxDepth),
                      R.Stats.SearchExhausted ? "yes" : "NO"});
      }
    }
    Table.print(outs());
    outs() << '\n';
    std::printf("Expected: larger k processes fewer yields, so spin loops\n"
                "unroll up to k extra times (deeper, more executions, at\n"
                "least as many states) while the search still terminates.\n\n");
  }

  {
    TablePrinter Table({"Program", "Fairness", "Executions", "Nonterm execs",
                        "Max depth", "Completed"});
    SpinWaitConfig C;
    TestProgram P = makeSpinWaitProgram(C);
    {
      CheckerOptions O;
      O.TimeBudgetSeconds = Budget;
      CheckResult R = check(P, O);
      Table.addRow({"spinwait", "on", TablePrinter::cell(R.Stats.Executions),
                    TablePrinter::cell(R.Stats.NonterminatingExecutions),
                    TablePrinter::cell(R.Stats.MaxDepth),
                    R.Stats.SearchExhausted ? "yes" : "NO"});
    }
    {
      CheckerOptions O;
      O.Fair = false;
      O.DepthBound = 40;
      O.RandomTail = false;
      O.DetectDivergence = false;
      O.TimeBudgetSeconds = Budget;
      CheckResult R = check(P, O);
      Table.addRow({"spinwait", "off (db=40)",
                    TablePrinter::cell(R.Stats.Executions),
                    TablePrinter::cell(R.Stats.NonterminatingExecutions),
                    TablePrinter::cell(R.Stats.MaxDepth),
                    R.Stats.SearchExhausted ? "yes" : "NO"});
    }
    Table.print(outs());
    outs() << '\n';
    std::printf("Expected: with fairness the search is small, terminates\n"
                "and wastes zero nonterminating executions; without it the\n"
                "same program costs orders of magnitude more.\n");
  }
  return 0;
}
