//===- bench/table4_liveness.cpp - Section 4.3 reproduction --------------===//
//
// Section 4.3 of the paper: liveness violations. The paper reports two
// real finds -- a good-samaritan violation in a worker-pool shutdown
// (Figure 7) and a livelock in the Promise library (Figure 8) -- plus the
// dining-philosophers livelock of Figure 1. This bench runs the checker
// over all three (and their fixed counterparts) and reports detection
// cost. There is no numbered table in the paper for these; we present
// them in Table 3's format.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/DiningPhilosophers.h"
#include "workloads/Promise.h"
#include "workloads/SpinWait.h"
#include "workloads/WorkerGroup.h"

#include <cstdio>
#include <functional>

using namespace fsmc;
using namespace fsmc::bench;

namespace {

struct LivenessCase {
  std::string Name;
  std::function<TestProgram()> Make;
  CheckerOptions Options;
  Verdict Expected;
};

} // namespace

int main() {
  printHeader("Liveness violations (Sections 4.3.1 and 4.3.2)",
              "Figures 1, 7 and 8");

  double Budget = runBudget(30.0);
  std::vector<LivenessCase> Cases;

  {
    DiningConfig C;
    C.Philosophers = 2;
    C.Kind = DiningConfig::Variant::TryLockRetry;
    CheckerOptions O;
    O.ExecutionBound = 300;
    Cases.push_back({"Dining livelock (Fig 1)",
                     [C] { return makeDiningProgram(C); }, O,
                     Verdict::Livelock});
  }
  {
    PromiseConfig C;
    C.StaleReadBug = true;
    CheckerOptions O;
    O.ExecutionBound = 1000;
    Cases.push_back({"Promise stale read (Fig 8)",
                     [C] { return makePromiseProgram(C); }, O,
                     Verdict::Livelock});
  }
  {
    WorkerGroupConfig C;
    CheckerOptions O;
    O.Kind = SearchKind::ContextBounded;
    O.ContextBound = 2;
    O.GoodSamaritanBound = 200;
    Cases.push_back({"WorkerGroup shutdown spin (Fig 7)",
                     [C] { return makeWorkerGroupProgram(C); }, O,
                     Verdict::GoodSamaritanViolation});
  }
  {
    SpinWaitConfig C;
    C.WithYield = false;
    CheckerOptions O;
    O.GoodSamaritanBound = 100;
    Cases.push_back({"Spin without yield (Fig 3 variant)",
                     [C] { return makeSpinWaitProgram(C); }, O,
                     Verdict::GoodSamaritanViolation});
  }
  // Fixed counterparts: must pass.
  {
    PromiseConfig C;
    CheckerOptions O;
    O.Kind = SearchKind::ContextBounded;
    O.ContextBound = 2;
    Cases.push_back({"Promise (fixed)",
                     [C] { return makePromiseProgram(C); }, O,
                     Verdict::Pass});
  }
  {
    WorkerGroupConfig C;
    C.ShutdownSpinBug = false;
    CheckerOptions O;
    O.Kind = SearchKind::ContextBounded;
    O.ContextBound = 1;
    O.GoodSamaritanBound = 200;
    Cases.push_back({"WorkerGroup (fixed)",
                     [C] { return makeWorkerGroupProgram(C); }, O,
                     Verdict::GoodSamaritanViolation /*placeholder*/});
    Cases.back().Expected = Verdict::Pass;
  }

  TablePrinter Table({"Program", "Verdict", "Expected", "Executions",
                      "Time (s)", "OK"});
  for (LivenessCase &Case : Cases) {
    Case.Options.TimeBudgetSeconds = Budget;
    CheckResult R = check(Case.Make(), Case.Options);
    Table.addRow({Case.Name, verdictName(R.Kind),
                  verdictName(Case.Expected),
                  TablePrinter::cell(R.Stats.Executions),
                  TablePrinter::cellSeconds(R.Stats.Seconds),
                  R.Kind == Case.Expected ? "yes" : "NO"});
  }
  Table.print(outs());
  outs() << '\n';
  std::printf("The buggy programs are detected as the paper classifies\n"
              "them: fair divergence -> livelock; a thread scheduled\n"
              "persistently without yielding -> good samaritan violation.\n");
  return 0;
}
