//===- bench/fig5_dining_time.cpp - Figure 5 reproduction ----------------===//
//
// Figure 5: time to complete the search on dining philosophers (3), per
// strategy, with fairness vs without fairness at depth bounds 20..60
// (log-scale in the paper). Executions are printed too: they are
// hardware-independent, so the exponential gap survives the change of
// testbed.
//
// Expected shape: the fair runs complete orders of magnitude faster than
// the deep-bounded unfair runs (which blow up or time out), without
// sacrificing coverage (cf. table2_coverage).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/DiningPhilosophers.h"

#include <cstdio>

using namespace fsmc;
using namespace fsmc::bench;

int main() {
  printHeader("Figure 5: search completion time, dining philosophers (3)",
              "Figure 5 (Section 4.2.2)");

  DiningConfig C;
  C.Philosophers = 3;
  C.Kind = DiningConfig::Variant::Mixed;

  double Budget = runBudget(10.0);
  int StratCount = 0;
  const StrategyRow *Strats = strategyRows(StratCount);

  TablePrinter Table({"Strategy", "Mode", "Time (s)", "Executions",
                      "Completed"});

  for (int SI = 0; SI < StratCount; ++SI) {
    const StrategyRow &S = Strats[SI];
    {
      CheckerOptions O;
      O.Kind = S.Kind;
      O.ContextBound = S.ContextBound;
      O.TimeBudgetSeconds = Budget;
      O.DetectDivergence = false;
      O.ExecutionBound = 5000;
      CheckResult R = check(makeDiningProgram(C), O);
      Table.addRow({S.Label, "fair", TablePrinter::cellSeconds(R.Stats.Seconds),
                    TablePrinter::cell(R.Stats.Executions),
                    R.Stats.SearchExhausted ? "yes" : "NO (budget)"});
    }
    for (uint64_t Db : {20, 30, 40, 50, 60}) {
      CheckerOptions O;
      O.Kind = S.Kind;
      O.ContextBound = S.ContextBound;
      O.Fair = false;
      O.DepthBound = Db;
      O.RandomTail = true;
      O.RandomTailCap = 5000;
      O.DetectDivergence = false;
      O.TimeBudgetSeconds = Budget;
      CheckResult R = check(makeDiningProgram(C), O);
      Table.addRow({S.Label, "nf db=" + std::to_string(Db),
                    TablePrinter::cellSeconds(R.Stats.Seconds),
                    TablePrinter::cell(R.Stats.Executions),
                    R.Stats.SearchExhausted ? "yes" : "NO (budget)"});
    }
  }
  Table.print(outs());
  outs() << '\n';
  std::printf("Paper (Figure 5, log scale): fair runs finish exponentially\n"
              "faster than the depth-bounded runs as db grows; dfs without\n"
              "fairness times out at every db.\n");
  return 0;
}
