//===- bench/par_speedup.cpp - Parallel explorer speedup ----------------===//
//
// Wall-clock speedup of the prefix-sharded parallel explorer over the
// serial search on an exhaustive DiningPhilosophers(4) run. This is the
// extension experiment for the ROADMAP's "as fast as the hardware
// allows" goal: stateless search parallelizes by schedule prefix, and
// the equivalence columns double-check that every jobs count visits the
// same executions and state signatures (the property the test suite
// locks in; see tests/core/ParallelExplorerTest.cpp).
//
// Knobs:
//   FSMC_PAR_PHILOSOPHERS  table size (default 4)
//   FSMC_PAR_JOBS_MAX      highest jobs count (default 4; doubled rows)
//   FSMC_PAR_DFS           1 = unbounded fair DFS instead of cb=2
//
// Expect near-linear speedup up to the physical core count; on a
// single-core machine the parallel rows only measure the sharding
// overhead (replayed prefixes + queue traffic).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/DiningPhilosophers.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace fsmc;
using namespace fsmc::bench;

static int envInt(const char *Name, int Default) {
  if (const char *V = std::getenv(Name)) {
    int N = std::atoi(V);
    if (N > 0)
      return N;
  }
  return Default;
}

int main() {
  printHeader("Parallel explorer speedup, dining philosophers",
              "extension: prefix-sharded search; ROADMAP north star");

  DiningConfig C;
  C.Philosophers = envInt("FSMC_PAR_PHILOSOPHERS", 4);
  C.Kind = DiningConfig::Variant::Mixed;

  CheckerOptions Base;
  Base.TrackCoverage = true;
  if (!envInt("FSMC_PAR_DFS", 0)) {
    // cb=2 keeps the exhaustive search a few seconds at 4 philosophers;
    // FSMC_PAR_DFS=1 runs the full fair DFS for a longer-haul measurement.
    Base.Kind = SearchKind::ContextBounded;
    Base.ContextBound = 2;
  }
  Base.TimeBudgetSeconds = runBudget(120.0);

  int JobsMax = envInt("FSMC_PAR_JOBS_MAX", 4);
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("philosophers=%d, strategy=%s, hardware threads=%u\n\n",
              C.Philosophers,
              Base.Kind == SearchKind::ContextBounded ? "cb=2" : "dfs",
              Cores);

  TablePrinter Table({"Jobs", "Time (s)", "Speedup", "Executions", "States",
                      "Completed", "Equivalent"});
  double SerialSeconds = 0;
  uint64_t SerialExecutions = 0, SerialStates = 0;

  for (int Jobs = 1; Jobs <= JobsMax; Jobs *= 2) {
    CheckerOptions O = Base;
    O.Jobs = Jobs;
    CheckResult R = check(makeDiningProgram(C), O);

    std::string Speedup = "1.00x";
    std::string Equivalent = "baseline";
    if (Jobs == 1) {
      SerialSeconds = R.Stats.Seconds;
      SerialExecutions = R.Stats.Executions;
      SerialStates = R.Stats.DistinctStates;
    } else {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.2fx",
                    R.Stats.Seconds > 0 ? SerialSeconds / R.Stats.Seconds
                                        : 0.0);
      Speedup = Buf;
      Equivalent = (R.Stats.Executions == SerialExecutions &&
                    R.Stats.DistinctStates == SerialStates)
                       ? "yes"
                       : "NO";
    }
    Table.addRow({std::to_string(Jobs),
                  TablePrinter::cellSeconds(R.Stats.Seconds), Speedup,
                  TablePrinter::cell(R.Stats.Executions),
                  TablePrinter::cell(R.Stats.DistinctStates),
                  R.Stats.SearchExhausted ? "yes" : "NO (budget)",
                  Equivalent});
  }
  Table.print(outs());
  outs() << '\n';
  std::printf("Each worker owns a private Explorer/Runtime; subtrees are\n"
              "sharded by frozen schedule prefix and re-balanced by\n"
              "thief-driven work stealing between per-worker deques, so\n"
              "executions and state coverage are identical at every jobs\n"
              "count.\n");
  return 0;
}
