//===- bench/BenchUtil.h - Shared helpers for the bench harnesses --------===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/figure benchmark binaries. Each binary
/// prints the same rows the paper reports; absolute times differ from the
/// 2008 testbed, so executions/transitions (hardware-independent) are
/// printed alongside.
///
/// The per-run search budget defaults to a few seconds so the whole bench
/// suite finishes quickly; set FSMC_BENCH_BUDGET (seconds) to reproduce
/// with longer budgets (the paper used 5000 s).
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_BENCH_BENCHUTIL_H
#define FSMC_BENCH_BENCHUTIL_H

#include "core/Checker.h"
#include "obs/StatsJson.h"
#include "support/OutStream.h"
#include "support/TablePrinter.h"

#include <cstdlib>
#include <string>

namespace fsmc {
namespace bench {

/// Per-run time budget in seconds (FSMC_BENCH_BUDGET overrides).
inline double runBudget(double Default = 5.0) {
  if (const char *Env = std::getenv("FSMC_BENCH_BUDGET")) {
    double V = std::atof(Env);
    if (V > 0)
      return V;
  }
  return Default;
}

/// Formats a state/execution count, starring it when the search did not
/// finish within the budget (the paper's Table 2 notation).
inline std::string countCell(uint64_t Count, const SearchStats &S) {
  bool Finished = S.SearchExhausted && !S.TimedOut;
  return Finished ? TablePrinter::cell(Count)
                  : TablePrinter::cellTimedOut(Count);
}

/// The paper's strategy axis: cb=1..3 and dfs.
struct StrategyRow {
  const char *Label;
  SearchKind Kind;
  int ContextBound;
};

inline const StrategyRow *strategyRows(int &Count) {
  static const StrategyRow Rows[] = {
      {"cb=1", SearchKind::ContextBounded, 1},
      {"cb=2", SearchKind::ContextBounded, 2},
      {"cb=3", SearchKind::ContextBounded, 3},
      {"dfs", SearchKind::Dfs, 0},
  };
  Count = 4;
  return Rows;
}

inline void printHeader(const char *Title, const char *PaperRef) {
  std::string Out = "=== ";
  Out += Title;
  Out += " ===\n(reproduces ";
  Out += PaperRef;
  Out += "; budgets scaled via FSMC_BENCH_BUDGET)\n\n";
  outs() << Out;
}

/// Machine-readable bench export: when FSMC_STATS_JSON names a file, each
/// recordRun() call appends one stats-json report line (JSONL, one run per
/// line) so CI can diff executions/transitions across revisions without
/// scraping the human tables. A no-op when the variable is unset.
class StatsJsonlExport {
public:
  StatsJsonlExport() {
    if (const char *Env = std::getenv("FSMC_STATS_JSON"))
      Path = Env;
  }

  bool enabled() const { return !Path.empty(); }

  /// Appends the report for one checker run under the row label \p Name.
  void recordRun(const std::string &Name, const CheckResult &R,
                 const CheckerOptions &Opts) {
    if (Path.empty())
      return;
    obs::StatsJsonInfo Info;
    Info.Program = Name;
    Info.Options = &Opts;
    std::string Json = obs::renderStatsJson(R, Info);
    // One line per run: collapse the pretty-printed report.
    std::string Line;
    Line.reserve(Json.size());
    bool InString = false;
    for (size_t I = 0; I < Json.size(); ++I) {
      char C = Json[I];
      if (C == '"' && (I == 0 || Json[I - 1] != '\\'))
        InString = !InString;
      if (!InString && (C == '\n' || C == ' '))
        continue;
      Line += C;
    }
    Line += '\n';
    if (std::FILE *F = std::fopen(Path.c_str(), "a")) {
      std::fwrite(Line.data(), 1, Line.size(), F);
      std::fclose(F);
    }
  }

private:
  std::string Path;
};

} // namespace bench
} // namespace fsmc

#endif // FSMC_BENCH_BENCHUTIL_H
