//===- bench/table1_programs.cpp - Table 1 reproduction ------------------===//
//
// Table 1 of the paper: characteristics of the input programs -- LOC,
// threads, and synchronization operations per execution. Our LOC column
// counts this repository's implementation of each workload (the paper's
// numbers describe Microsoft's proprietary systems; the substitution
// table lives in DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/WorkloadRegistry.h"

#include <cstdio>
#include <fstream>
#include <string>

using namespace fsmc;
using namespace fsmc::bench;

namespace {

/// Counts lines of the workload's source files under the repo root.
uint64_t countLoc(const std::vector<std::string> &Files) {
  uint64_t Lines = 0;
  for (const std::string &Rel : Files) {
    std::ifstream In(std::string(FSMC_SOURCE_DIR) + "/" + Rel);
    std::string Line;
    while (std::getline(In, Line))
      ++Lines;
  }
  return Lines;
}

} // namespace

int main() {
  printHeader("Table 1: characteristics of input programs",
              "Table 1 (Section 4)");

  TablePrinter Table({"Program", "LOC", "Threads", "Synch Ops",
                      "Paper counterpart"});
  for (const RegisteredWorkload &W : allWorkloads()) {
    CheckerOptions O = W.MeasureOptions;
    O.ExecutionBound = 500000;
    CheckResult R = check(W.Make(), O);
    std::string Verdict =
        R.Kind == Verdict::Pass ? "" : std::string(" [") +
                                           verdictName(R.Kind) + "]";
    Table.addRow({W.Name + Verdict, TablePrinter::cell(countLoc(W.SourceFiles)),
                  TablePrinter::cell(R.Stats.MaxThreads),
                  TablePrinter::cell(R.Stats.MaxSyncOps),
                  W.PaperCounterpart});
  }
  Table.print(outs());
  outs() << '\n';
  std::printf("Threads/sync-ops are maxima per execution over bounded\n"
              "random exploration, as in the paper. Our LOC are smaller:\n"
              "the paper measured entire production systems, we measure\n"
              "the reimplemented concurrency cores (see DESIGN.md).\n");
  return 0;
}
