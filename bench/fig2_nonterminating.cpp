//===- bench/fig2_nonterminating.cpp - Figure 2 reproduction -------------===//
//
// Figure 2 of the paper: "the number of nonterminating executions
// explored increases exponentially with the depth bound" for the
// Figure 1 program (dining philosophers with try-lock retry loops),
// checked WITHOUT fairness under a depth bound.
//
// Expected shape: the count grows by roughly an order of magnitude every
// few depth-bound steps, exactly the wasted work fairness eliminates.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/DiningPhilosophers.h"

#include <cstdio>

using namespace fsmc;
using namespace fsmc::bench;

int main() {
  printHeader("Figure 2: nonterminating executions vs depth bound",
              "Figure 2 (Section 1)");

  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::TryLockRetry;
  C.CaptureState = false;

  TablePrinter Table({"Depth bound", "Nonterminating execs",
                      "Total execs", "Time (s)"});
  double Budget = runBudget(10.0);

  for (uint64_t Db = 15; Db <= 40; Db += 5) {
    CheckerOptions O;
    O.Fair = false;
    O.Kind = SearchKind::Dfs;
    O.DepthBound = Db;
    O.RandomTail = false; // Figure 2 counts executions cut at the bound.
    O.DetectDivergence = false;
    O.TimeBudgetSeconds = Budget;
    CheckResult R = check(makeDiningProgram(C), O);
    Table.addRow({TablePrinter::cell(Db),
                  countCell(R.Stats.NonterminatingExecutions, R.Stats),
                  TablePrinter::cell(R.Stats.Executions),
                  TablePrinter::cellSeconds(R.Stats.Seconds)});
  }

  Table.print(outs());
  outs() << '\n';
  std::printf("Paper: counts rise exponentially from ~10 at db=15 toward\n"
              "10^4..10^5 by db=40 (Figure 2's log-scale curve). A '*'\n"
              "marks searches cut off by the time budget before\n"
              "exhausting the bounded space.\n");

  // Contrast row: the fair search on the same program prunes the unfair
  // unrollings entirely; its livelock detection is exercised in
  // table4_liveness.
  CheckerOptions Fair;
  Fair.ExecutionBound = 200;
  Fair.TimeBudgetSeconds = Budget;
  CheckResult RF = check(makeDiningProgram(C), Fair);
  std::printf("\nFair search on the same program: verdict=%s after %llu "
              "executions (finds the livelock instead of unrolling it).\n",
              verdictName(RF.Kind),
              (unsigned long long)RF.Stats.Executions);
  return 0;
}
