//===- bench/table3_bugs.cpp - Table 3 reproduction ----------------------===//
//
// Table 3 of the paper: executions and time to find each seeded bug in
// the work-stealing queue (WSQ bugs 1-3) and the Dryad channel library
// (bugs 1-4), with and without fairness. Both modes use a context bound
// of 2; the no-fairness mode additionally needs a depth bound (250, "the
// minimum required to find these errors") with a random tail, since the
// programs do not terminate without fairness.
//
// Expected shape: fairness finds every bug in far fewer executions; the
// hardest bugs (Dryad 3's fix race and Dryad 4, the previously-unknown
// bug in that fix) are found only with fairness within the budget
// ("-" rows, the paper's notation).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/Channels.h"
#include "workloads/WorkStealQueue.h"

#include <cstdio>
#include <functional>

using namespace fsmc;
using namespace fsmc::bench;

namespace {

struct BugCase {
  std::string Name;
  std::function<TestProgram()> Make;
};

std::vector<BugCase> bugCases() {
  std::vector<BugCase> Cases;
  auto addWsq = [&Cases](const char *Name, WsqBug Bug) {
    WsqConfig C;
    C.Stealers = 1;
    C.Tasks = 2;
    C.Bug = Bug;
    C.CaptureState = false;
    Cases.push_back({Name, [C] { return makeWsqProgram(C); }});
  };
  addWsq("WSQ bug 1", WsqBug::PopReordered);
  addWsq("WSQ bug 2", WsqBug::StealNoRestore);
  addWsq("WSQ bug 3", WsqBug::PopNoRecheck);

  {
    ChannelsConfig C;
    C.Bug = ChannelBug::IfInsteadOfWhile;
    Cases.push_back({"Dryad bug 1", [C] { return makeChannelsProgram(C); }});
  }
  {
    ChannelsConfig C;
    C.Bug = ChannelBug::LostSignal;
    C.Producers = 2;
    C.Consumers = 1;
    C.Messages = 2;
    C.Capacity = 2;
    Cases.push_back({"Dryad bug 2", [C] { return makeChannelsProgram(C); }});
  }
  {
    // The close must land mid-stream but only after real progress: the
    // unfair search burns its depth budget unrolling the drain loop long
    // before the racing window opens.
    ChannelsConfig C;
    C.Bug = ChannelBug::RacyClose;
    C.Producers = 2;
    C.Messages = 2;
    C.CloseAfter = 3;
    Cases.push_back({"Dryad bug 3", [C] { return makeChannelsProgram(C); }});
  }
  {
    ChannelsConfig C;
    C.Bug = ChannelBug::BadCloseFix;
    C.Producers = 2;
    C.Messages = 2;
    C.CloseAfter = 3;
    Cases.push_back({"Dryad bug 4", [C] { return makeChannelsProgram(C); }});
  }
  return Cases;
}

} // namespace

int main() {
  printHeader("Table 3: executions and time to first bug",
              "Table 3 (Section 4.2.3)");

  double Budget = runBudget(30.0);
  StatsJsonlExport Export;
  TablePrinter Table({"Bug", "Execs (fair)", "Time (fair)",
                      "Execs (no fair)", "Time (no fair)"});

  for (const BugCase &Case : bugCases()) {
    std::vector<std::string> Row{Case.Name};

    // With fairness: cb=2, no depth bound needed.
    {
      CheckerOptions O;
      O.Kind = SearchKind::ContextBounded;
      O.ContextBound = 2;
      O.TimeBudgetSeconds = Budget;
      O.DetectDivergence = false;
      O.ExecutionBound = 5000;
      CheckResult R = check(Case.Make(), O);
      Export.recordRun(Case.Name + " (fair)", R, O);
      if (R.foundBug()) {
        Row.push_back(TablePrinter::cell(R.Bug->AtExecution + 1));
        Row.push_back(TablePrinter::cellSeconds(R.Stats.Seconds));
      } else {
        Row.push_back("-");
        Row.push_back(">" + TablePrinter::cellSeconds(Budget));
      }
    }
    // Without fairness: cb=2 plus depth bound 250 + random tail.
    {
      CheckerOptions O;
      O.Kind = SearchKind::ContextBounded;
      O.ContextBound = 2;
      O.Fair = false;
      O.DepthBound = 250;
      O.RandomTail = true;
      O.RandomTailCap = 5000;
      O.DetectDivergence = false;
      O.TimeBudgetSeconds = Budget;
      CheckResult R = check(Case.Make(), O);
      Export.recordRun(Case.Name + " (no fair)", R, O);
      if (R.foundBug()) {
        Row.push_back(TablePrinter::cell(R.Bug->AtExecution + 1));
        Row.push_back(TablePrinter::cellSeconds(R.Stats.Seconds));
      } else {
        Row.push_back("-");
        Row.push_back(">" + TablePrinter::cellSeconds(Budget));
      }
    }
    Table.addRow(Row);
  }

  Table.print(outs());
  outs() << "\nPaper's shape to verify: every bug found with fairness, in\n"
            "fewer executions than without; the last Dryad bugs ('-')\n"
            "not found without fairness within the budget. Absolute\n"
            "counts differ (our workloads are reimplementations); the\n"
            "ordering and the found/not-found split should hold.\n";
  return 0;
}
