//===- bench/micro_scheduler.cpp - Scheduler microbenchmarks -------------===//
//
// google-benchmark microbenchmarks for the fair scheduler's hot path:
// the per-transition cost of Algorithm 1's bookkeeping, the priority
// graph's pre() query, and end-to-end checker throughput (transitions
// per second) on a representative workload.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "core/FairScheduler.h"
#include "core/PriorityGraph.h"
#include "obs/Observer.h"
#include "support/Xorshift.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/SpinWait.h"

#include <benchmark/benchmark.h>

using namespace fsmc;

static void BM_ThreadSetIteration(benchmark::State &State) {
  ThreadSet S;
  for (Tid T = 0; T < MaxThreads; T += 3)
    S.insert(T);
  for (auto _ : State) {
    int Sum = 0;
    for (Tid T : S)
      Sum += T;
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_ThreadSetIteration);

static void BM_PriorityGraphPre(benchmark::State &State) {
  PriorityGraph P;
  Xorshift Rng(7);
  for (int E = 0; E < 40; ++E) {
    Tid From = Rng.nextBelow(32);
    Tid To = Rng.nextBelow(32);
    if (From != To && !P.hasEdge(To, From))
      P.addEdgesFrom(From, ThreadSet::singleton(To));
  }
  ThreadSet ES = ThreadSet::firstN(24);
  for (auto _ : State) {
    ThreadSet Pre = P.pre(ES);
    benchmark::DoNotOptimize(Pre);
  }
}
BENCHMARK(BM_PriorityGraphPre);

/// Cost of one Algorithm 1 transition (lines 12-29) at varying thread
/// counts; yields every 4th transition exercise the window-close path.
static void BM_FairSchedulerTransition(benchmark::State &State) {
  int Threads = int(State.range(0));
  FairScheduler FS;
  ThreadSet ES = ThreadSet::firstN(Threads);
  Xorshift Rng(13);
  uint64_t I = 0;
  for (auto _ : State) {
    Tid T = Rng.nextBelow(Threads);
    ThreadSet Allowed = FS.allowed(ES);
    if (!Allowed.contains(T))
      T = Allowed.first();
    FS.onTransition(T, ES, ES, (++I & 3) == 0);
    benchmark::DoNotOptimize(FS.priorities());
  }
}
BENCHMARK(BM_FairSchedulerTransition)->Arg(2)->Arg(8)->Arg(32);

/// End-to-end throughput: transitions per second through the full stack
/// (fibers + runtime + fair scheduler + explorer).
static void BM_CheckerThroughputSpinWait(benchmark::State &State) {
  SpinWaitConfig C;
  uint64_t Transitions = 0;
  for (auto _ : State) {
    CheckerOptions O;
    O.DetectDivergence = false;
    CheckResult R = check(makeSpinWaitProgram(C), O);
    Transitions += R.Stats.Transitions;
    benchmark::DoNotOptimize(R.Stats.Executions);
  }
  State.counters["transitions/s"] = benchmark::Counter(
      double(Transitions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckerThroughputSpinWait)->Unit(benchmark::kMillisecond);

static void BM_CheckerThroughputDining(benchmark::State &State) {
  DiningConfig C;
  C.Philosophers = 2;
  C.Kind = DiningConfig::Variant::Mixed;
  C.CaptureState = false;
  uint64_t Transitions = 0;
  for (auto _ : State) {
    CheckerOptions O;
    O.DetectDivergence = false;
    CheckResult R = check(makeDiningProgram(C), O);
    Transitions += R.Stats.Transitions;
  }
  State.counters["transitions/s"] = benchmark::Counter(
      double(Transitions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckerThroughputDining)->Unit(benchmark::kMillisecond);

/// Observability overhead, enabled path: the SpinWait throughput run with
/// an Observer attached (sharded counters live, no event sink). Compare
/// against BM_CheckerThroughputSpinWait, which is the compiled-in-but-
/// disabled path guarded by docs/OBSERVABILITY.md's <=2% budget.
static void BM_CheckerThroughputSpinWaitObserved(benchmark::State &State) {
  SpinWaitConfig C;
  uint64_t Transitions = 0;
  for (auto _ : State) {
    obs::Observer Obs;
    CheckerOptions O;
    O.DetectDivergence = false;
    O.Obs = &Obs;
    CheckResult R = check(makeSpinWaitProgram(C), O);
    Transitions += R.Stats.Transitions;
    benchmark::DoNotOptimize(Obs.snapshot().counter(obs::Counter::Transitions));
  }
  State.counters["transitions/s"] = benchmark::Counter(
      double(Transitions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckerThroughputSpinWaitObserved)->Unit(benchmark::kMillisecond);

/// Fairness bookkeeping overhead: same workload with the scheduler's
/// restriction disabled (pure demonic search, depth-cut).
static void BM_CheckerThroughputUnfair(benchmark::State &State) {
  SpinWaitConfig C;
  uint64_t Transitions = 0;
  for (auto _ : State) {
    CheckerOptions O;
    O.Fair = false;
    O.DepthBound = 25;
    O.RandomTail = false;
    O.DetectDivergence = false;
    CheckResult R = check(makeSpinWaitProgram(C), O);
    Transitions += R.Stats.Transitions;
  }
  State.counters["transitions/s"] = benchmark::Counter(
      double(Transitions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckerThroughputUnfair)->Unit(benchmark::kMillisecond);
