//===- race/RaceDetector.cpp - Happens-before data race detection ---------===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//

#include "race/RaceDetector.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace fsmc;

namespace {

/// `Into |= From`, componentwise max.
void joinInto(std::vector<uint32_t> &Into, const std::vector<uint32_t> &From) {
  if (Into.size() < From.size())
    Into.resize(From.size(), 0);
  for (size_t I = 0; I < From.size(); ++I)
    Into[I] = std::max(Into[I], From[I]);
}

void renderClock(std::ostringstream &OS, const std::vector<uint32_t> &C) {
  OS << '{';
  bool First = true;
  for (size_t I = 0; I < C.size(); ++I) {
    if (C[I] == 0)
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << 't' << I << ':' << C[I];
  }
  OS << '}';
}

} // namespace

RaceDetector::Clock &RaceDetector::clockOf(Tid T) {
  assert(T >= 0 && "race detector needs a real thread id");
  if (size_t(T) >= Clocks.size())
    Clocks.resize(size_t(T) + 1);
  Clock &C = Clocks[size_t(T)];
  if (C.size() <= size_t(T))
    C.resize(size_t(T) + 1, 0);
  if (C[size_t(T)] == 0)
    C[size_t(T)] = 1;
  return C;
}

void RaceDetector::onSpawn(Tid Parent, Tid Child) {
  // Materialize both clocks before taking references: clockOf may grow
  // the Clocks table, invalidating a reference taken earlier.
  (void)clockOf(Parent);
  (void)clockOf(Child);
  Clock &P = Clocks[size_t(Parent)];
  Clock &C = Clocks[size_t(Child)];
  joinInto(C, P);
  // The child is a new epoch of its own; the parent advances so its
  // post-spawn actions are not ordered into the child.
  C[size_t(Child)] = std::max<uint32_t>(C[size_t(Child)], 1);
  P[size_t(Parent)]++;
}

void RaceDetector::onJoin(Tid Joiner, Tid Target) {
  (void)clockOf(Target);
  (void)clockOf(Joiner); // Same reallocation hazard as onSpawn.
  joinInto(Clocks[size_t(Joiner)], Clocks[size_t(Target)]);
}

void RaceDetector::onAcquire(Tid T, int Obj) {
  auto It = ObjClocks.find(Obj);
  if (It == ObjClocks.end())
    return;
  joinInto(clockOf(T), It->second);
}

void RaceDetector::onRelease(Tid T, int Obj) {
  Clock &C = clockOf(T);
  joinInto(ObjClocks[Obj], C);
  C[size_t(T)]++;
}

bool RaceDetector::happenedBefore(const Access &A, Tid T) {
  if (A.T == T)
    return true;
  const Clock &C = clockOf(T);
  return size_t(A.T) < C.size() && A.C <= C[size_t(A.T)];
}

void RaceDetector::report(VarState &V, const Access &Prior, bool PriorIsWrite,
                          const Access &Cur, bool CurIsWrite,
                          const std::string &VarName) {
  if (V.Reported)
    return;
  V.Reported = true;

  // The Message is the cross-execution dedup key, so it must not depend on
  // which interleaving surfaced the race: no step indices or clocks, and a
  // normalized ordering (write first; same-kind pairs sorted by thread
  // name).
  RaceReport R;
  std::ostringstream Msg;
  Msg << "data race on '" << VarName << "': ";
  if (PriorIsWrite == CurIsWrite) {
    const std::string &A = std::min(Prior.Thread, Cur.Thread);
    const std::string &B = std::max(Prior.Thread, Cur.Thread);
    Msg << "concurrent " << (CurIsWrite ? "writes" : "reads")
        << " by threads '" << A << "' and '" << B << "'";
  } else {
    const Access &W = PriorIsWrite ? Prior : Cur;
    const Access &Rd = PriorIsWrite ? Cur : Prior;
    Msg << "write by thread '" << W.Thread
        << "' concurrent with read by thread '" << Rd.Thread << "'";
  }
  R.Message = Msg.str();

  std::ostringstream Det;
  Det << R.Message << "\n";
  auto Site = [&](const char *Label, const Access &A, bool IsWrite) {
    Det << "  " << Label << ": " << (IsWrite ? "store" : "load") << " of '"
        << VarName << "' by thread '" << A.Thread << "' (t" << A.T
        << ") at step " << A.Step << ", clock ";
    renderClock(Det, A.Snapshot);
    Det << "\n";
  };
  Site("first access ", Prior, PriorIsWrite);
  Site("second access", Cur, CurIsWrite);
  Det << "  no happens-before edge orders the two accesses\n";
  R.Detail = Det.str();

  Races.push_back(std::move(R));
}

void RaceDetector::onBufferedHazard(Tid Loader, const std::string &LoaderName,
                                    uint64_t LoadStep, Tid Storer,
                                    const std::string &StorerName,
                                    uint64_t StoreStep, int Var,
                                    const std::string &VarName) {
  VarState &V = Vars[Var];
  if (V.Reported)
    return;
  V.Reported = true;

  // Like report(): the Message is the cross-execution dedup key, so it
  // carries no step indices or clocks -- only the variable, the roles and
  // the weak-memory tag.
  RaceReport R;
  std::ostringstream Msg;
  Msg << "data race on '" << VarName << "': buffered store by thread '"
      << StorerName << "' concurrent with read by thread '" << LoaderName
      << "' [tso]";
  R.Message = Msg.str();

  std::ostringstream Det;
  Det << R.Message << "\n";
  Det << "  store: plain store of '" << VarName << "' by thread '"
      << StorerName << "' (t" << Storer << ") buffered at step " << StoreStep
      << ", not yet flushed\n";
  Det << "  load : plain load of '" << VarName << "' by thread '"
      << LoaderName << "' (t" << Loader << ") at step " << LoadStep << "\n";
  Det << "  the store was still in t" << Storer
      << "'s store buffer when the load executed; no happens-before edge "
         "can order a still-buffered store before another thread's load "
         "(docs/MEMORY.md)\n";
  R.Detail = Det.str();

  Races.push_back(std::move(R));
}

void RaceDetector::onAccess(Tid T, int Var, bool IsWrite,
                            const std::string &VarName,
                            const std::string &ThreadName, uint64_t Step) {
  ++Checks;
  Clock &C = clockOf(T);
  VarState &V = Vars[Var];

  Access Cur;
  Cur.T = T;
  Cur.C = C[size_t(T)];
  Cur.Step = Step;
  Cur.Thread = ThreadName;
  Cur.Snapshot = C;

  if (V.Write.T != -1 && !happenedBefore(V.Write, T))
    report(V, V.Write, /*PriorIsWrite=*/true, Cur, IsWrite, VarName);

  if (IsWrite) {
    for (const Access &Rd : V.Reads)
      if (!happenedBefore(Rd, T))
        report(V, Rd, /*PriorIsWrite=*/false, Cur, /*CurIsWrite=*/true,
               VarName);
    V.Write = std::move(Cur);
    V.Reads.clear();
  } else {
    // Keep the read set minimal: drop reads the current one supersedes
    // (they happened-before this thread's point), then record this read.
    // A same-thread entry is always superseded; genuinely concurrent
    // reads accumulate -- the FastTrack read-share promotion.
    V.Reads.erase(std::remove_if(V.Reads.begin(), V.Reads.end(),
                                 [&](const Access &Rd) {
                                   return happenedBefore(Rd, T);
                                 }),
                  V.Reads.end());
    V.Reads.push_back(std::move(Cur));
  }
}
