//===- race/RaceDetector.h - Happens-before data race detection -*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FastTrack-style happens-before race detector (docs/RACES.md) driven
/// from the runtime's visible-operation stream. The checker's soundness
/// argument assumes every shared access is a modeled scheduling point; this
/// detector validates that assumption for the one class of accesses where a
/// workload can get it wrong -- plain (non-synchronizing) shared variables
/// -- and reports concurrent conflicting accesses as first-class
/// `Verdict::DataRace` results.
///
/// The detector is a pure observer: it never makes or influences a
/// scheduling choice, so enabling it cannot perturb the search (the
/// execution multiset with detection on is identical to detection off).
/// One detector instance observes exactly one execution; the explorer
/// constructs a fresh one per execution, mirroring the stateless replays.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_RACE_RACEDETECTOR_H
#define FSMC_RACE_RACEDETECTOR_H

#include "support/ThreadSet.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fsmc {

/// One detected data race: two concurrent conflicting accesses to the same
/// plain shared variable.
struct RaceReport {
  /// Stable description of the race -- variable, access kinds, thread
  /// names, normalized so the same race found in a different interleaving
  /// produces the same string. Used as the cross-execution dedup key.
  std::string Message;
  /// Both access sites in full: per-site step index, thread, access kind,
  /// and the accessing thread's vector clock at the access.
  std::string Detail;
};

/// Vector-clock happens-before detector with FastTrack-style epochs.
///
/// Per-thread clocks `C[t]`, per-sync-object release clocks `L[o]`, and
/// per-variable access summaries: a single last-write epoch plus a read
/// set that stays a one-element epoch until genuinely concurrent reads
/// force promotion (the FastTrack read-share case).
///
/// Sync objects contribute edges conservatively via clock join:
/// `onRelease` folds the releaser's clock into the object
/// (`L[o] |= C[t]`), `onAcquire` folds the object into the acquirer
/// (`C[t] |= L[o]`). Joining (rather than overwriting) release clocks can
/// only *add* happens-before edges, so the detector may miss races on
/// exotic semaphore/event accumulation patterns but never reports a false
/// positive -- the right trade for a checker whose verdicts gate CI.
class RaceDetector {
public:
  /// Ensures thread \p T has a clock (used for the root thread, which is
  /// not created via onSpawn).
  void onThreadStart(Tid T) { (void)clockOf(T); }

  /// Child inherits the parent's clock: everything the parent did before
  /// the spawn happens-before everything the child does.
  void onSpawn(Tid Parent, Tid Child);

  /// Joiner inherits the (final) clock of the joined thread.
  void onJoin(Tid Joiner, Tid Target);

  /// Acquire edge: \p T observes everything released through \p Obj.
  void onAcquire(Tid T, int Obj);

  /// Release edge: \p Obj accumulates \p T's clock; \p T starts a new
  /// epoch.
  void onRelease(Tid T, int Obj);

  /// Race-checks one plain access, then folds it into the variable's
  /// access summary. \p Step is the execution's visible-operation index,
  /// used only for report formatting.
  void onAccess(Tid T, int Var, bool IsWrite, const std::string &VarName,
                const std::string &ThreadName, uint64_t Step);

  /// Weak-memory hazard (--memory=tso|pso, docs/MEMORY.md): thread
  /// \p Loader performs a plain load of \p Var while thread \p Storer
  /// still holds a plain buffered store to it. Such a pair is always a
  /// genuine race -- every happens-before edge out of the storer either
  /// drains its buffer or is itself deferred behind the buffered store --
  /// so this reports directly, tagged "[tso]", without a clock check.
  /// Shares the one-report-per-variable dedup with onAccess.
  void onBufferedHazard(Tid Loader, const std::string &LoaderName,
                        uint64_t LoadStep, Tid Storer,
                        const std::string &StorerName, uint64_t StoreStep,
                        int Var, const std::string &VarName);

  /// Number of plain accesses race-checked so far.
  uint64_t checks() const { return Checks; }

  /// Races found in this execution, at most one per variable.
  const std::vector<RaceReport> &races() const { return Races; }

private:
  using Clock = std::vector<uint32_t>;

  /// One recorded access: the epoch (owner thread + its clock component),
  /// plus everything a report needs to describe the site.
  struct Access {
    Tid T = -1;
    uint32_t C = 0;
    uint64_t Step = 0;
    std::string Thread;
    Clock Snapshot; ///< Full clock of the accessing thread, for reports.
  };

  struct VarState {
    Access Write;              ///< Last-write epoch (-1 tid = none yet).
    std::vector<Access> Reads; ///< Read epoch; >1 entry iff read-shared.
    bool Reported = false;     ///< First race per variable per execution.
  };

  Clock &clockOf(Tid T);
  /// True iff the access epoch (\p A.T, \p A.C) happened-before thread
  /// \p T's current point.
  bool happenedBefore(const Access &A, Tid T);
  void report(VarState &V, const Access &Prior, bool PriorIsWrite,
              const Access &Cur, bool CurIsWrite,
              const std::string &VarName);

  std::vector<Clock> Clocks;                 ///< C[t], indexed by tid.
  std::unordered_map<int, Clock> ObjClocks;  ///< L[o], by object id.
  std::unordered_map<int, VarState> Vars;    ///< By variable object id.
  std::vector<RaceReport> Races;
  uint64_t Checks = 0;
};

} // namespace fsmc

#endif // FSMC_RACE_RACEDETECTOR_H
