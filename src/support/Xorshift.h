//===- support/Xorshift.h - Deterministic PRNG for search ------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic xorshift64* generator. The paper's evaluation
/// (Section 4.2.1) follows depth-bounded search with a random walk to the
/// end of the execution; the generator must be seedable and reproducible so
/// that whole checker runs are replayable.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SUPPORT_XORSHIFT_H
#define FSMC_SUPPORT_XORSHIFT_H

#include <cassert>
#include <cstdint>

namespace fsmc {

/// xorshift64* PRNG. Not cryptographic; used only to pick scheduling
/// choices in random-walk phases of the search.
class Xorshift {
public:
  explicit Xorshift(uint64_t Seed = 0x9e3779b97f4a7c15ULL)
      : State(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform value in [0, N). \p N must be positive.
  ///
  /// Lemire's bounded rejection method: multiply-shift maps the 64-bit
  /// word onto [0, N) without the modulo bias of `next() % N`, and the
  /// low-word rejection loop removes the residual bias entirely. The
  /// rejection threshold is `2^64 mod N`, computed as `(0 - N) mod N`
  /// in 64-bit arithmetic.
  int nextBelow(int N) {
    assert(N > 0 && "nextBelow requires a positive bound");
    const uint64_t Bound = uint64_t(N);
    uint64_t X = next();
    __uint128_t M = __uint128_t(X) * Bound;
    uint64_t Low = uint64_t(M);
    if (Low < Bound) {
      const uint64_t Threshold = (0 - Bound) % Bound;
      while (Low < Threshold) {
        X = next();
        M = __uint128_t(X) * Bound;
        Low = uint64_t(M);
      }
    }
    return int(uint64_t(M >> 64));
  }

  /// Reseeds the generator (0 maps to a fixed nonzero constant).
  void reseed(uint64_t Seed);

  /// Raw generator state, for checkpoint/resume. Restoring it with
  /// setState continues the exact random sequence; unlike reseed it
  /// applies no zero-mapping (state captured from a live generator is
  /// never zero).
  uint64_t state() const { return State; }
  void setState(uint64_t S) { State = S ? S : 0x9e3779b97f4a7c15ULL; }

private:
  uint64_t State;
};

} // namespace fsmc

#endif // FSMC_SUPPORT_XORSHIFT_H
