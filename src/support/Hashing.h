//===- support/Hashing.h - FNV-1a hashing for state signatures -*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit FNV-1a hashing used to build the state signatures of Section
/// 4.2.1 of the paper ("we performed a stateful search of the state space
/// and stored the state signatures in a hash table").
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SUPPORT_HASHING_H
#define FSMC_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fsmc {

/// Incremental 64-bit FNV-1a hasher.
class Fnv1a {
public:
  static constexpr uint64_t Offset = 0xcbf29ce484222325ULL;
  static constexpr uint64_t Prime = 0x100000001b3ULL;

  void addByte(uint8_t B) {
    H ^= B;
    H *= Prime;
  }

  void addU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      addByte(uint8_t(V >> (I * 8)));
  }

  void addBytes(const void *Data, size_t Len) {
    const auto *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I < Len; ++I)
      addByte(P[I]);
  }

  void addString(std::string_view S) { addBytes(S.data(), S.size()); }

  uint64_t digest() const { return H; }

private:
  uint64_t H = Offset;
};

/// Convenience one-shot hash of a 64-bit value.
inline uint64_t hashU64(uint64_t V) {
  Fnv1a H;
  H.addU64(V);
  return H.digest();
}

} // namespace fsmc

#endif // FSMC_SUPPORT_HASHING_H
