//===- support/ThreadSet.h - Small bitset over thread ids ------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A value-type set of thread identifiers backed by a single 64-bit word.
///
/// The fair scheduler (Algorithm 1 of the paper) manipulates sets of threads
/// on every transition: the enabled set ES, the per-thread windows E(u),
/// D(u), S(u), and the image pre(P, ES) of the priority relation. All of
/// these are hot, so the representation is a fixed bitset over at most
/// `MaxThreads` thread ids rather than a dynamic container.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SUPPORT_THREADSET_H
#define FSMC_SUPPORT_THREADSET_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

namespace fsmc {

/// Identifier of a test thread within one execution. Ids are dense and
/// allocated in spawn order starting from 0, so they are stable across the
/// deterministic replays performed by the stateless explorer.
using Tid = int;

/// Maximum number of threads per execution. The largest program in the
/// paper's evaluation (Dryad Fifo) uses 25 threads; 64 keeps `ThreadSet`
/// a single machine word.
inline constexpr int MaxThreads = 64;

/// A set of thread ids, represented as a 64-bit mask.
class ThreadSet {
public:
  constexpr ThreadSet() = default;

  /// Builds the set {0, 1, ..., n-1}.
  static constexpr ThreadSet firstN(int N) {
    assert(N >= 0 && N <= MaxThreads && "thread count out of range");
    return ThreadSet(N == MaxThreads ? ~uint64_t(0)
                                     : ((uint64_t(1) << N) - 1));
  }

  /// Builds the full set of all representable thread ids. Used for the
  /// initial D(u) and S(u) of Algorithm 1, which start as `Tid` (the set of
  /// all threads) so that the first window of a thread begins only after
  /// its first yield.
  static constexpr ThreadSet all() { return ThreadSet(~uint64_t(0)); }

  /// Builds a singleton set.
  static constexpr ThreadSet singleton(Tid T) {
    assert(T >= 0 && T < MaxThreads && "tid out of range");
    return ThreadSet(uint64_t(1) << T);
  }

  constexpr bool empty() const { return Bits == 0; }
  constexpr int size() const { return std::popcount(Bits); }
  constexpr bool contains(Tid T) const {
    assert(T >= 0 && T < MaxThreads && "tid out of range");
    return (Bits >> T) & 1;
  }

  void insert(Tid T) {
    assert(T >= 0 && T < MaxThreads && "tid out of range");
    Bits |= uint64_t(1) << T;
  }
  void erase(Tid T) {
    assert(T >= 0 && T < MaxThreads && "tid out of range");
    Bits &= ~(uint64_t(1) << T);
  }
  void clear() { Bits = 0; }

  /// Smallest id in the set; the set must be nonempty.
  Tid first() const {
    assert(!empty() && "first() on empty ThreadSet");
    return std::countr_zero(Bits);
  }

  /// Set algebra. These mirror the operations of Algorithm 1 directly:
  /// union (line 17, 21, 25), intersection (line 15), difference (line 7).
  constexpr ThreadSet operator|(ThreadSet O) const {
    return ThreadSet(Bits | O.Bits);
  }
  constexpr ThreadSet operator&(ThreadSet O) const {
    return ThreadSet(Bits & O.Bits);
  }
  /// Set difference `*this \ O`.
  constexpr ThreadSet operator-(ThreadSet O) const {
    return ThreadSet(Bits & ~O.Bits);
  }
  ThreadSet &operator|=(ThreadSet O) {
    Bits |= O.Bits;
    return *this;
  }
  ThreadSet &operator&=(ThreadSet O) {
    Bits &= O.Bits;
    return *this;
  }
  ThreadSet &operator-=(ThreadSet O) {
    Bits &= ~O.Bits;
    return *this;
  }
  constexpr bool operator==(const ThreadSet &O) const = default;

  constexpr bool intersects(ThreadSet O) const { return (Bits & O.Bits) != 0; }
  constexpr bool isSubsetOf(ThreadSet O) const {
    return (Bits & ~O.Bits) == 0;
  }

  /// Iteration over members in increasing id order. The order matters: the
  /// explorer enumerates scheduling choices in this order, which makes
  /// depth-first search deterministic and replayable.
  class iterator {
  public:
    explicit iterator(uint64_t Bits) : Rest(Bits) {}
    Tid operator*() const { return std::countr_zero(Rest); }
    iterator &operator++() {
      Rest &= Rest - 1;
      return *this;
    }
    bool operator!=(const iterator &O) const { return Rest != O.Rest; }

  private:
    uint64_t Rest;
  };
  iterator begin() const { return iterator(Bits); }
  iterator end() const { return iterator(0); }

  constexpr uint64_t rawBits() const { return Bits; }

  /// Renders the set as "{0, 2, 5}" for diagnostics and traces.
  std::string str() const;

private:
  explicit constexpr ThreadSet(uint64_t Bits) : Bits(Bits) {}

  uint64_t Bits = 0;
};

} // namespace fsmc

#endif // FSMC_SUPPORT_THREADSET_H
