//===- support/OutStream.h - Library output sink ---------------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A raw_ostream-style text sink. All human-readable library output --
/// tables, bug reports, progress lines, the CLI summary -- funnels through
/// OutStream instead of bare printf, so (a) library code never writes to
/// stdout behind the caller's back and (b) concurrent writers (a progress
/// reporter ticking on stderr while a worker prints a bug report) cannot
/// interleave mid-line: every write() call is atomic with respect to other
/// streams sharing the same underlying FILE group.
///
/// A single operator<< or write() call is atomic; multi-part lines built
/// from several << calls may interleave with other threads, so concurrent
/// writers should compose a full line first and emit it with one call
/// (see ProgressReporter).
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SUPPORT_OUTSTREAM_H
#define FSMC_SUPPORT_OUTSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace fsmc {

/// Text sink over a stdio FILE. Writes are unbuffered beyond stdio's own
/// buffering; a process-wide mutex serializes every write across *all*
/// OutStream instances so stdout and stderr lines never shear.
class OutStream {
public:
  /// Wraps \p F; the stream does not own the FILE unless \p Owned.
  explicit OutStream(std::FILE *F, bool Owned = false);
  ~OutStream();

  OutStream(const OutStream &) = delete;
  OutStream &operator=(const OutStream &) = delete;

  /// Opens \p Path for writing. \returns a stream whose valid() is false
  /// on failure (writes then go nowhere).
  static OutStream open(const std::string &Path);

  bool valid() const { return F != nullptr; }

  /// Writes \p Size bytes atomically with respect to other OutStreams.
  void write(const char *Data, size_t Size);
  void flush();

  OutStream &operator<<(std::string_view S) {
    write(S.data(), S.size());
    return *this;
  }
  OutStream &operator<<(const char *S) { return *this << std::string_view(S); }
  OutStream &operator<<(const std::string &S) {
    return *this << std::string_view(S);
  }
  OutStream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }
  OutStream &operator<<(uint64_t V);
  OutStream &operator<<(int64_t V);
  OutStream &operator<<(unsigned V) { return *this << uint64_t(V); }
  OutStream &operator<<(int V) { return *this << int64_t(V); }
  OutStream &operator<<(double V);

private:
  std::FILE *F;
  bool Owned;
};

/// The process's standard output/error sinks. Library code and tools
/// print through these, never through printf directly.
OutStream &outs();
OutStream &errs();

} // namespace fsmc

#endif // FSMC_SUPPORT_OUTSTREAM_H
