//===- support/TablePrinter.cpp -------------------------------------------===//

#include "support/TablePrinter.h"

#include "support/OutStream.h"

#include <cassert>
#include <cstdio>

using namespace fsmc;

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() <= Headers.size() && "row has more cells than headers");
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::cellSeconds(double Secs) {
  char Buf[32];
  if (Secs < 0.01)
    std::snprintf(Buf, sizeof(Buf), "%.4f", Secs);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f", Secs);
  return Buf;
}

void TablePrinter::print(OutStream &OS) const {
  std::string Text = render();
  OS.write(Text.data(), Text.size());
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Line = "|";
    for (size_t I = 0; I < Headers.size(); ++I) {
      const std::string &Cell = I < Row.size() ? Row[I] : std::string();
      Line += " " + Cell + std::string(Widths[I] - Cell.size(), ' ') + " |";
    }
    Line += "\n";
    return Line;
  };

  std::string Out = renderRow(Headers);
  std::string Sep = "|";
  for (size_t I = 0; I < Headers.size(); ++I)
    Sep += std::string(Widths[I] + 2, '-') + "|";
  Out += Sep + "\n";
  for (const auto &Row : Rows)
    Out += renderRow(Row);
  return Out;
}
