//===- support/Xorshift.cpp -----------------------------------------------===//

#include "support/Xorshift.h"

using namespace fsmc;

void Xorshift::reseed(uint64_t Seed) {
  State = Seed ? Seed : 0x9e3779b97f4a7c15ULL;
}
