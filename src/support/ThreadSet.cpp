//===- support/ThreadSet.cpp ----------------------------------------------===//

#include "support/ThreadSet.h"

using namespace fsmc;

std::string ThreadSet::str() const {
  std::string Out = "{";
  bool First = true;
  for (Tid T : *this) {
    if (!First)
      Out += ", ";
    Out += std::to_string(T);
    First = false;
  }
  Out += "}";
  return Out;
}
