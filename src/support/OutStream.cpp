//===- support/OutStream.cpp ----------------------------------------------===//

#include "support/OutStream.h"

#include <cinttypes>
#include <mutex>

using namespace fsmc;

namespace {
/// One mutex for every OutStream in the process: a progress line on stderr
/// and a bug report on stdout must not shear even though they target
/// different FILEs (terminals merge both).
std::mutex &ioMutex() {
  static std::mutex M;
  return M;
}
} // namespace

OutStream::OutStream(std::FILE *F, bool Owned) : F(F), Owned(Owned) {}

OutStream::~OutStream() {
  if (F && Owned) {
    std::fflush(F);
    std::fclose(F);
  }
}

OutStream OutStream::open(const std::string &Path) {
  return OutStream(std::fopen(Path.c_str(), "w"), /*Owned=*/true);
}

void OutStream::write(const char *Data, size_t Size) {
  if (!F || Size == 0)
    return;
  std::lock_guard<std::mutex> Lock(ioMutex());
  std::fwrite(Data, 1, Size, F);
}

void OutStream::flush() {
  if (!F)
    return;
  std::lock_guard<std::mutex> Lock(ioMutex());
  std::fflush(F);
}

OutStream &OutStream::operator<<(uint64_t V) {
  char Buf[24];
  int N = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  write(Buf, size_t(N));
  return *this;
}

OutStream &OutStream::operator<<(int64_t V) {
  char Buf[24];
  int N = std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  write(Buf, size_t(N));
  return *this;
}

OutStream &OutStream::operator<<(double V) {
  char Buf[40];
  int N = std::snprintf(Buf, sizeof(Buf), "%g", V);
  write(Buf, size_t(N));
  return *this;
}

OutStream &fsmc::outs() {
  static OutStream S(stdout);
  return S;
}

OutStream &fsmc::errs() {
  static OutStream S(stderr);
  return S;
}
