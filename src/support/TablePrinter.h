//===- support/TablePrinter.h - Paper-style result tables ------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny fixed-width text table builder used by the benchmark harnesses to
/// print rows in the same layout as the paper's Tables 1-3 and the data
/// series behind Figures 2, 5 and 6.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SUPPORT_TABLEPRINTER_H
#define FSMC_SUPPORT_TABLEPRINTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace fsmc {

class OutStream;

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends a data row; missing trailing cells render empty, extra cells
  /// are asserted against in debug builds.
  void addRow(std::vector<std::string> Cells);

  /// Renders the full table (header, separator, rows) as a string.
  std::string render() const;

  /// Emits the rendered table through \p OS as one atomic write (whole
  /// tables never interleave with concurrent progress output).
  void print(OutStream &OS) const;

  /// Helpers for common cell formats.
  static std::string cell(uint64_t V) { return std::to_string(V); }
  static std::string cell(int V) { return std::to_string(V); }
  static std::string cellSeconds(double Secs);
  /// Renders a count with a trailing '*' marker, the paper's notation for
  /// searches that did not terminate within the time budget.
  static std::string cellTimedOut(uint64_t V) {
    return std::to_string(V) + "*";
  }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace fsmc

#endif // FSMC_SUPPORT_TABLEPRINTER_H
