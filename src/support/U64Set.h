//===- support/U64Set.h - Open-addressing set of uint64 keys ---*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat open-addressing hash set specialized for 64-bit keys -- state
/// signatures and prune keys, the hottest sets in the checker. Compared
/// to std::unordered_set<uint64_t> (node-per-element, one allocation and
/// one pointer chase per insert), this is a single power-of-two array
/// probed linearly: inserts on the signature hot path touch one or two
/// cache lines and allocate only on growth, and reserve() can pre-size
/// the table from a checkpoint's state count so long resumed runs never
/// rehash at all.
///
/// Keys are already well-mixed hashes almost everywhere this is used,
/// but a splitmix64 finalizer is applied anyway so adversarial or
/// low-entropy keys (prune keys, test values) cannot degenerate the
/// probe sequence. Slot value 0 marks "empty"; the key 0 itself is
/// carried in a side flag. No erase -- the checker's sets only grow
/// within a run and clear() between runs, so tombstones are dead weight.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SUPPORT_U64SET_H
#define FSMC_SUPPORT_U64SET_H

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>

namespace fsmc {

class U64Set {
public:
  U64Set() = default;

  /// Inserts \p Key. \returns true if it was not present before.
  bool insert(uint64_t Key) {
    if (Key == 0) {
      bool New = !HasZero;
      HasZero = true;
      return New;
    }
    if ((Count + 1) * 10 >= Cap * 7) // max load factor 0.7
      grow(Cap ? Cap * 2 : 64);
    size_t I = probeStart(Key);
    for (;;) {
      uint64_t S = Slots[I];
      if (S == Key)
        return false;
      if (S == 0) {
        Slots[I] = Key;
        ++Count;
        return true;
      }
      I = (I + 1) & (Cap - 1);
    }
  }

  bool contains(uint64_t Key) const {
    if (Key == 0)
      return HasZero;
    if (!Cap)
      return false;
    size_t I = probeStart(Key);
    for (;;) {
      uint64_t S = Slots[I];
      if (S == Key)
        return true;
      if (S == 0)
        return false;
      I = (I + 1) & (Cap - 1);
    }
  }

  size_t size() const { return Count + (HasZero ? 1 : 0); }
  bool empty() const { return size() == 0; }

  /// Pre-sizes the table for \p N keys without rehash churn.
  void reserve(size_t N) {
    size_t Need = 64;
    while (N * 10 >= Need * 7)
      Need *= 2;
    if (Need > Cap)
      grow(Need);
  }

  void clear() {
    Slots.reset();
    Cap = Count = 0;
    HasZero = false;
  }

  /// Forward iteration in unspecified order (like unordered_set). The
  /// zero key, if present, comes first.
  class const_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint64_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint64_t *;
    using reference = uint64_t;

    const_iterator(const U64Set *S, size_t I, bool AtZero)
        : S(S), I(I), AtZero(AtZero) {
      if (!AtZero)
        skipEmpty();
    }
    uint64_t operator*() const { return AtZero ? 0 : S->Slots[I]; }
    const_iterator &operator++() {
      if (AtZero)
        AtZero = false;
      else
        ++I;
      skipEmpty();
      return *this;
    }
    bool operator==(const const_iterator &O) const {
      return AtZero == O.AtZero && I == O.I;
    }
    bool operator!=(const const_iterator &O) const { return !(*this == O); }

  private:
    void skipEmpty() {
      while (I < S->Cap && S->Slots[I] == 0)
        ++I;
    }
    const U64Set *S;
    size_t I;
    bool AtZero;
  };

  const_iterator begin() const {
    return const_iterator(this, 0, HasZero);
  }
  const_iterator end() const { return const_iterator(this, Cap, false); }

private:
  /// splitmix64 finalizer: defends the probe sequence against keys that
  /// are not already uniformly mixed.
  static uint64_t mix(uint64_t X) {
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ULL;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebULL;
    X ^= X >> 31;
    return X;
  }

  size_t probeStart(uint64_t Key) const { return mix(Key) & (Cap - 1); }

  void grow(size_t NewCap) {
    std::unique_ptr<uint64_t[]> Old = std::move(Slots);
    size_t OldCap = Cap;
    Slots = std::make_unique<uint64_t[]>(NewCap); // zero-initialized
    Cap = NewCap;
    for (size_t I = 0; I < OldCap; ++I) {
      uint64_t Key = Old[I];
      if (Key == 0)
        continue;
      size_t J = probeStart(Key);
      while (Slots[J] != 0)
        J = (J + 1) & (Cap - 1);
      Slots[J] = Key;
    }
  }

  std::unique_ptr<uint64_t[]> Slots;
  size_t Cap = 0;   ///< Power of two (or 0 before first insert).
  size_t Count = 0; ///< Non-zero keys stored.
  bool HasZero = false;
};

} // namespace fsmc

#endif // FSMC_SUPPORT_U64SET_H
