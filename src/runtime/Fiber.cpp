//===- runtime/Fiber.cpp --------------------------------------------------===//

#include "runtime/Fiber.h"

#include <cassert>
#include <cstdint>
#include <sys/mman.h>
#include <unistd.h>

using namespace fsmc;

Fiber::~Fiber() {
  if (StackBase)
    munmap(StackBase, MappedBytes);
}

void Fiber::initAsHost() {
  // Nothing to do: the first switchTo() away from the host fills Ctx via
  // getcontext-like semantics of swapcontext.
  assert(!StackBase && "host fiber must not own a stack");
}

void Fiber::trampoline(unsigned HiHalf, unsigned LoHalf) {
  // makecontext only passes ints; reassemble the Fiber pointer.
  auto Bits = (uint64_t(HiHalf) << 32) | uint64_t(LoHalf);
  auto *Self = reinterpret_cast<Fiber *>(uintptr_t(Bits));
  Self->Entry(Self->EntryArg);
  // Entry functions must switch away before returning; see Runtime.
  assert(false && "fiber entry returned without switching away");
}

bool Fiber::initWithEntry(size_t StackBytes, EntryFn Entry, void *Arg) {
  assert(!StackBase && "fiber already initialized");
  long Page = sysconf(_SC_PAGESIZE);
  size_t Usable = (StackBytes + Page - 1) / Page * Page;
  MappedBytes = Usable + Page; // one guard page below the stack
  void *Map = mmap(nullptr, MappedBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Map == MAP_FAILED) {
    MappedBytes = 0;
    return false;
  }
  StackBase = static_cast<char *>(Map);
  mprotect(StackBase, Page, PROT_NONE);

  getcontext(&Ctx);
  Ctx.uc_stack.ss_sp = StackBase + Page;
  Ctx.uc_stack.ss_size = Usable;
  Ctx.uc_link = nullptr;

  this->Entry = Entry;
  this->EntryArg = Arg;
  auto Bits = uint64_t(uintptr_t(this));
  makecontext(&Ctx, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              unsigned(Bits >> 32), unsigned(Bits & 0xffffffffu));
  return true;
}

void Fiber::switchTo(Fiber &From, Fiber &To) {
  [[maybe_unused]] int RC = swapcontext(&From.Ctx, &To.Ctx);
  assert(RC == 0 && "swapcontext failed");
}
