//===- runtime/Fiber.cpp --------------------------------------------------===//

#include "runtime/Fiber.h"

#include "runtime/Sanitizer.h"
#include "runtime/StackPool.h"

#include <cassert>
#include <cstdint>
#include <sys/mman.h>
#include <unistd.h>

using namespace fsmc;

#if FSMC_ASAN
namespace {
/// Stack extent of this OS thread, captured the first time one of its
/// fibers runs (__sanitizer_finish_switch_fiber reports the stack that
/// was switched away from). Fibers that switch back to the controller --
/// whose "stack" is the host OS-thread stack -- announce this extent.
thread_local const void *HostStackBottom = nullptr;
thread_local size_t HostStackSize = 0;
} // namespace
#endif

#if FSMC_TSAN
namespace {
/// TSan's handle for this OS thread's own (root) fiber, captured on the
/// first switch away from it. Switches back to the controller target
/// this handle; it is never destroyed.
thread_local void *HostTsanFiber = nullptr;
} // namespace
#endif

Fiber::~Fiber() { releaseStack(); }

void Fiber::releaseStack() {
  if (!StackBase)
    return;
#if FSMC_TSAN
  if (TsanFiber) {
    __tsan_destroy_fiber(TsanFiber);
    TsanFiber = nullptr;
  }
#endif
  if (Pool) {
    Pool->release(StackBase, MappedBytes);
  } else {
    long Page = sysconf(_SC_PAGESIZE);
    // Shadow poison is not cleared by munmap; scrub it so an unrelated
    // later mapping at the same address starts clean under ASan.
    fsmcAsanUnpoison(StackBase + Page, MappedBytes - size_t(Page));
    munmap(StackBase, MappedBytes);
  }
  StackBase = nullptr;
  MappedBytes = 0;
  Pool = nullptr;
  AsanStackBottom = nullptr;
  AsanStackSize = 0;
}

void Fiber::initAsHost() {
  // Nothing to do: the first switchTo() away from the host fills Ctx via
  // getcontext-like semantics of swapcontext.
  assert(!StackBase && "host fiber must not own a stack");
}

void Fiber::trampoline(unsigned HiHalf, unsigned LoHalf) {
  // makecontext only passes ints; reassemble the Fiber pointer.
  auto Bits = (uint64_t(HiHalf) << 32) | uint64_t(LoHalf);
  auto *Self = reinterpret_cast<Fiber *>(uintptr_t(Bits));
#if FSMC_ASAN
  // First activation of this fiber: complete the switch ASan saw begin in
  // switchTo, and learn the host stack's extent from it (the stack we
  // just left is the OS thread's own).
  __sanitizer_finish_switch_fiber(nullptr, &HostStackBottom, &HostStackSize);
#endif
  Self->Entry(Self->EntryArg);
  // Entry functions must switch away before returning; see Runtime.
  assert(false && "fiber entry returned without switching away");
}

bool Fiber::initWithEntry(size_t StackBytes, EntryFn Entry, void *Arg,
                          StackPool *Pool) {
  long Page = sysconf(_SC_PAGESIZE);
  size_t Usable = (StackBytes + Page - 1) / Page * Page;
  size_t Wanted = Usable + Page; // one guard page below the stack
  if (StackBase && (MappedBytes != Wanted || this->Pool != Pool))
    releaseStack();
  if (StackBase) {
    // Recycling fast path: same mapping, no syscalls. The previous fiber
    // abandoned frames here; clear their stale sanitizer poison.
    fsmcAsanUnpoison(StackBase + Page, Usable);
  } else {
    char *Map;
    if (Pool) {
      Map = Pool->acquire(Wanted);
    } else {
      void *Raw = mmap(nullptr, Wanted, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      Map = Raw == MAP_FAILED ? nullptr : static_cast<char *>(Raw);
      if (Map)
        mprotect(Map, size_t(Page), PROT_NONE);
    }
    if (!Map)
      return false;
    StackBase = Map;
    MappedBytes = Wanted;
    this->Pool = Pool;
  }

  getcontext(&Ctx);
  Ctx.uc_stack.ss_sp = StackBase + Page;
  Ctx.uc_stack.ss_size = Usable;
  Ctx.uc_link = nullptr;
  AsanStackBottom = StackBase + Page;
  AsanStackSize = Usable;
#if FSMC_TSAN
  // A fresh logical fiber, even on a recycled stack: the old handle's
  // synchronization history must not leak into the new fiber.
  if (TsanFiber)
    __tsan_destroy_fiber(TsanFiber);
  TsanFiber = __tsan_create_fiber(0);
#endif

  this->Entry = Entry;
  this->EntryArg = Arg;
  auto Bits = uint64_t(uintptr_t(this));
  makecontext(&Ctx, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              unsigned(Bits >> 32), unsigned(Bits & 0xffffffffu));
  return true;
}

void Fiber::switchTo(Fiber &From, Fiber &To) {
#if FSMC_TSAN
  // Announce the logical-thread switch before the stacks actually swap.
  // Leaving the host for the first time on this OS thread is when its
  // root-fiber handle becomes known.
  if (!From.StackBase && !HostTsanFiber)
    HostTsanFiber = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(To.StackBase ? To.TsanFiber : HostTsanFiber, 0);
#endif
#if FSMC_ASAN
  // Tell ASan which stack is about to run. A stackless target is the
  // controller, i.e. the host OS-thread stack captured at the first
  // fiber activation on this thread.
  const void *Bottom = To.StackBase ? To.AsanStackBottom : HostStackBottom;
  size_t Size = To.StackBase ? To.AsanStackSize : HostStackSize;
  void *FakeStack = nullptr;
  __sanitizer_start_switch_fiber(&FakeStack, Bottom, Size);
  [[maybe_unused]] int RC = swapcontext(&From.Ctx, &To.Ctx);
  // Control came back to From (possibly much later, from another fiber).
  __sanitizer_finish_switch_fiber(FakeStack, nullptr, nullptr);
#else
  [[maybe_unused]] int RC = swapcontext(&From.Ctx, &To.Ctx);
#endif
  assert(RC == 0 && "swapcontext failed");
}
