//===- runtime/Fiber.h - Cooperative execution contexts --------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User-space execution contexts (fibers) built on POSIX ucontext.
///
/// CHESS intercepts Win32/.NET synchronization calls made by real OS
/// threads and serializes them with semaphores. This repository substitutes
/// a cooperative fiber runtime: every test thread is a fiber owned by a
/// single OS thread, and the controller switches to exactly one fiber at a
/// time. The substitution preserves what the checker needs -- complete
/// control over scheduling, deterministic replay, and the enabled/yield
/// predicates -- while removing OS-scheduler noise entirely.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_RUNTIME_FIBER_H
#define FSMC_RUNTIME_FIBER_H

#include <cstddef>
#include <ucontext.h>

namespace fsmc {

/// A single execution context with its own stack.
///
/// Two kinds of fibers exist: the controller fiber, which wraps the host
/// context and owns no stack (\ref initAsHost), and test-thread fibers with
/// a freshly mapped, guard-paged stack (\ref initWithEntry). Switching is
/// always symmetric via \ref switchTo.
class Fiber {
public:
  using EntryFn = void (*)(void *Arg);

  Fiber() = default;
  ~Fiber();

  Fiber(const Fiber &) = delete;
  Fiber &operator=(const Fiber &) = delete;

  /// Marks this fiber as the host (controller) context. No stack is
  /// allocated; the context is filled in by the first switch away from it.
  void initAsHost();

  /// Allocates a stack and arranges for \p Entry(\p Arg) to run when this
  /// fiber is first switched to. The stack has an inaccessible guard page
  /// below it so overflow faults instead of corrupting a neighbour.
  ///
  /// \returns false if stack allocation failed.
  bool initWithEntry(size_t StackBytes, EntryFn Entry, void *Arg);

  /// Saves the current context into \p From and resumes \p To. When some
  /// other fiber later switches back to \p From, this call returns.
  static void switchTo(Fiber &From, Fiber &To);

  bool hasStack() const { return StackBase != nullptr; }

  /// Default stack size for test threads. Workload threads are ordinary
  /// C++ with shallow call chains; 256 KiB is generous.
  static constexpr size_t DefaultStackBytes = 256 * 1024;

private:
  static void trampoline(unsigned HiHalf, unsigned LoHalf);

  ucontext_t Ctx = {};
  char *StackBase = nullptr; ///< mmap base (guard page + usable stack).
  size_t MappedBytes = 0;
  EntryFn Entry = nullptr;
  void *EntryArg = nullptr;
};

} // namespace fsmc

#endif // FSMC_RUNTIME_FIBER_H
