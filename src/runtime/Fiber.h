//===- runtime/Fiber.h - Cooperative execution contexts --------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User-space execution contexts (fibers) built on POSIX ucontext.
///
/// CHESS intercepts Win32/.NET synchronization calls made by real OS
/// threads and serializes them with semaphores. This repository substitutes
/// a cooperative fiber runtime: every test thread is a fiber owned by a
/// single OS thread, and the controller switches to exactly one fiber at a
/// time. The substitution preserves what the checker needs -- complete
/// control over scheduling, deterministic replay, and the enabled/yield
/// predicates -- while removing OS-scheduler noise entirely.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_RUNTIME_FIBER_H
#define FSMC_RUNTIME_FIBER_H

#include <cstddef>
#include <ucontext.h>

namespace fsmc {

class StackPool;

/// A single execution context with its own stack.
///
/// Two kinds of fibers exist: the controller fiber, which wraps the host
/// context and owns no stack (\ref initAsHost), and test-thread fibers with
/// a guard-paged stack (\ref initWithEntry) -- mapped directly, or acquired
/// from a StackPool so re-initialization across executions reuses the same
/// mapping instead of paying mmap/munmap per execution. Switching is
/// always symmetric via \ref switchTo.
class Fiber {
public:
  using EntryFn = void (*)(void *Arg);

  Fiber() = default;
  ~Fiber();

  Fiber(const Fiber &) = delete;
  Fiber &operator=(const Fiber &) = delete;

  /// Marks this fiber as the host (controller) context. No stack is
  /// allocated; the context is filled in by the first switch away from it.
  void initAsHost();

  /// Arranges for \p Entry(\p Arg) to run when this fiber is first
  /// switched to, on a stack with an inaccessible guard page below it so
  /// overflow faults instead of corrupting a neighbour.
  ///
  /// May be called again on an already-initialized fiber: when the
  /// existing mapping fits \p StackBytes it is reused in place with no
  /// syscalls (the recycling fast path); otherwise the old stack is
  /// returned and a new one acquired. \p Pool, when non-null, supplies
  /// and takes back mappings; it must outlive the fiber.
  ///
  /// \returns false if stack allocation failed.
  bool initWithEntry(size_t StackBytes, EntryFn Entry, void *Arg,
                     StackPool *Pool = nullptr);

  /// Returns this fiber's stack to its pool (or unmaps it) now, leaving
  /// the fiber uninitialized. The destructor does this implicitly.
  void releaseStack();

  /// Saves the current context into \p From and resumes \p To. When some
  /// other fiber later switches back to \p From, this call returns.
  static void switchTo(Fiber &From, Fiber &To);

  bool hasStack() const { return StackBase != nullptr; }

  /// Default stack size for test threads. Workload threads are ordinary
  /// C++ with shallow call chains; 256 KiB is generous.
  static constexpr size_t DefaultStackBytes = 256 * 1024;

private:
  static void trampoline(unsigned HiHalf, unsigned LoHalf);

  ucontext_t Ctx = {};
  char *StackBase = nullptr; ///< mmap base (guard page + usable stack).
  size_t MappedBytes = 0;
  StackPool *Pool = nullptr; ///< Where StackBase goes back on release.
  EntryFn Entry = nullptr;
  void *EntryArg = nullptr;
  /// ASan switch annotations need the target's stack extent; kept
  /// unconditionally (two words) so the layout is sanitizer-independent.
  /// Null bottom means "the host OS-thread stack" (resolved lazily).
  const void *AsanStackBottom = nullptr;
  size_t AsanStackSize = 0;
  /// ThreadSanitizer's handle for this fiber-as-logical-thread; created
  /// per initWithEntry (a recycled stack hosts a *new* logical fiber, so
  /// it gets a fresh handle) and destroyed with the stack. Null in
  /// non-TSan builds and for the host fiber (whose handle lives in a
  /// thread_local; destroying a thread's root fiber is forbidden).
  void *TsanFiber = nullptr;
};

} // namespace fsmc

#endif // FSMC_RUNTIME_FIBER_H
