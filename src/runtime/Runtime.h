//===- runtime/Runtime.h - Per-execution test-thread world -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Runtime owns one execution of a test program: its fibers, their
/// pending visible operations, and the bookkeeping the explorer needs to
/// drive Algorithm 1 (enabled set, yield predicate, per-thread annotations).
///
/// The runtime is *passive*: it exposes `enabledSet()` and `step(t)` and
/// leaves every scheduling decision -- fairness, search strategy, choice
/// enumeration -- to the core library. This mirrors the paper's split
/// between the program model (Section 3, `NextState`) and the scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_RUNTIME_RUNTIME_H
#define FSMC_RUNTIME_RUNTIME_H

#include "runtime/Fiber.h"
#include "runtime/PendingOp.h"
#include "support/ThreadSet.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace fsmc {

namespace obs {
struct WorkerCounters;
} // namespace obs

class RaceDetector;
class StackPool;

/// Resolves nondeterministic choices that arise *inside* a transition.
///
/// Thread scheduling is the primary nondeterminism, handled by the explorer
/// between transitions. Data nondeterminism (`Runtime::chooseInt`) is the
/// "nondeterministic but finitely-branching thread transition relation"
/// generalization mentioned in Section 3; it funnels through this interface
/// so the explorer can enumerate it with the same choice stack.
class ChoiceSource {
public:
  virtual ~ChoiceSource();
  /// \returns a value in [0, N) for a data choice among \p N alternatives.
  virtual int chooseInt(int N) = 0;
};

/// Result of running one transition via Runtime::step.
enum class StepStatus {
  Parked,   ///< The thread reached its next scheduling point.
  Finished, ///< The thread's body returned; it is no longer live.
  Failed,   ///< The thread reported a safety violation; stop the execution.
};

/// One execution's world: test threads, their fibers and pending ops.
///
/// Lifecycle: construct, `start()` with the main thread's body, then the
/// explorer repeatedly calls `enabledSet()` / `step(t)` until no live
/// threads remain (or a bug/bound stops the execution). Every execution
/// gets a logically fresh Runtime -- either a new object, or the previous
/// one rewound via `reset()`, which recycles thread records and fiber
/// stacks without changing observable behaviour; the stateless explorer
/// replays by re-running the test with the same choice sequence.
class Runtime {
public:
  struct Options {
    size_t StackBytes = Fiber::DefaultStackBytes;
    /// Maximum trace length retained (0 = unlimited). Long diverging
    /// executions keep only a suffix-relevant window via the explorer.
    bool CountOps = true;
    /// Observability shard of the worker driving this execution, or null.
    /// When set, schedulePoint and the sync primitives' contention
    /// notifications feed live counters (see src/obs/Counters.h).
    obs::WorkerCounters *Ctr = nullptr;
    /// Happens-before race detector observing this execution, or null.
    /// When set, spawn/join and the sync primitives' race* notifications
    /// feed vector-clock edges, and PlainVar accesses are race-checked
    /// (see src/race/RaceDetector.h). Purely observational: never
    /// influences scheduling.
    RaceDetector *Race = nullptr;
    /// Stack pool fiber stacks are acquired from and released to; null
    /// maps/unmaps stacks directly. Must outlive the Runtime (and any
    /// Runtime later reset() to a different pool, since recycled fibers
    /// return their stack to the pool that issued it).
    StackPool *Pool = nullptr;
    /// Memory model executions run under (docs/MEMORY.md). Away from Sc,
    /// every thread gets a FIFO store buffer, integral Atomic/PlainVar
    /// stores enqueue instead of writing memory, and per-thread flush
    /// agents (tids FlushBase + t) join the enabled set while the buffer
    /// is non-empty. Sc is byte-identical to the pre-feature runtime.
    MemoryModel Memory = MemoryModel::Sc;
  };

  /// First pseudo-tid of the store-buffer flush agents: agent
  /// FlushBase + t commits the oldest buffered store of thread t. Real
  /// threads are capped at FlushBase under --memory=tso|pso so both
  /// populations fit one ThreadSet (MaxThreads = 64).
  static constexpr Tid FlushBase = MaxThreads / 2;

  /// \returns true iff \p T names a flush agent, not a real thread.
  static constexpr bool isFlushAgent(Tid T) { return T >= FlushBase; }

  explicit Runtime(ChoiceSource &Choices);
  Runtime(ChoiceSource &Choices, Options Opts);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  //===--------------------------------------------------------------------
  // Thread-side API: called from within test-thread fibers.
  //===--------------------------------------------------------------------

  /// \returns the runtime of the execution the calling fiber belongs to.
  /// Only valid while an execution is in progress.
  static Runtime &current();

  /// Spawns a new test thread. The child starts with a ThreadStart pending
  /// op and runs only when the scheduler first picks it.
  Tid spawn(std::function<void()> Body, std::string Name = "");

  /// Parks the calling thread at a scheduling point described by \p Op.
  /// Returns when the scheduler picks this thread; at that moment \p Op's
  /// enabled predicate is guaranteed to hold, and the caller performs the
  /// operation's effect atomically (no other thread runs until the next
  /// scheduling point).
  void schedulePoint(const PendingOp &Op);

  /// Resolves a data-nondeterministic choice among \p N alternatives.
  int chooseInt(int N);

  /// Records an abstract per-thread program counter, used by workloads
  /// that support state capture (Section 4.2.1's manual state extraction).
  void annotate(uint64_t Value);

  /// \returns the calling thread's id.
  Tid self() const;

  /// Reports a safety violation and abandons the execution. Never returns
  /// to the caller; control transfers to the explorer.
  [[noreturn]] void fail(std::string Message);

  /// Registers a named object (mutex, variable, ...) for traces.
  int newObjectId(std::string Name);

  /// Telemetry from a sync primitive: the calling thread is about to park
  /// on a busy object (lock held, queue full, ...). One counter increment
  /// when observability is attached; otherwise free.
  void noteContended(OpKind Kind);

  /// Happens-before edges from sync primitives to the attached race
  /// detector (no-ops when detection is off). raceAcquire: the caller
  /// observes everything released through object \p Obj. raceRelease: the
  /// caller publishes its history into \p Obj. raceJoin: the caller
  /// inherits joined thread \p Target's final clock. raceLoad/raceStore:
  /// race-checked plain accesses to variable \p Var.
  void raceAcquire(int Obj);
  void raceRelease(int Obj);
  void raceJoin(Tid Target);
  void raceLoad(int Var);
  void raceStore(int Var);

  /// The memory model of this execution; workloads and sync primitives
  /// branch on it to pick the buffered or direct store path.
  MemoryModel memory() const { return Opts.Memory; }

  /// Enqueues a store of \p Value to variable \p Var into the calling
  /// thread's store buffer (--memory=tso|pso). \p Commit is invoked with
  /// (\p Obj, \p Value) when the entry is flushed -- by the flush agent, a
  /// fence, or an implicit drain at a fencing sync operation. \p Plain
  /// marks race-checked PlainVar stores: their race-detector write access
  /// is registered at commit time, when the store becomes visible.
  void bufferStore(int Var, int64_t Value, void (*Commit)(void *, int64_t),
                   void *Obj, bool Plain);

  /// Store-to-load forwarding: if the calling thread's buffer holds an
  /// entry for \p Var, writes the *newest* such value to \p Out and
  /// returns true; the load must then not read memory.
  bool forwardedLoad(int Var, int64_t &Out) const;

  /// Registers the workload's manual state-extraction function (Section
  /// 4.2.1: "we manually added facilities to extract states"). The
  /// callback is invoked from the controller after every transition while
  /// the execution is alive; it must only read workload state. Because
  /// extractors typically read locals of the registering thread, the
  /// runtime automatically drops the extractor when that thread finishes.
  void setStateExtractor(std::function<uint64_t()> Fn);

  //===--------------------------------------------------------------------
  // Controller-side API: called by the explorer between transitions.
  //===--------------------------------------------------------------------

  /// Creates thread 0 with \p MainBody. Must be called exactly once.
  void start(std::function<void()> MainBody, std::string Name = "main");

  /// Rewinds this Runtime to its just-constructed state under \p NewOpts,
  /// recycling what the next execution will rebuild anyway: thread
  /// records, their fiber stack mappings, and name storage survive, so a
  /// reset + start() costs no allocations or mmaps in the steady state.
  /// The stateless search (Algorithm 1) re-executes the program per
  /// schedule; this is its per-execution fast path.
  void reset(const Options &NewOpts);

  /// Threads that have been spawned and have not finished.
  ThreadSet liveSet() const { return Live; }

  /// The enabled set ES of the current state: live threads whose pending
  /// operation can execute now.
  ThreadSet enabledSet() const;

  /// The pending visible operation of live thread \p T.
  const PendingOp &pendingOf(Tid T) const;

  /// The `yield(t)` predicate of Section 3: true iff \p T is live and its
  /// pending operation is a yielding one.
  bool yieldPending(Tid T) const;

  /// Runs one transition of \p T: resumes its fiber until the next
  /// scheduling point, thread exit, or failure. \p T must be enabled.
  StepStatus step(Tid T);

  bool hasFailure() const { return Failed; }
  const std::string &failureMessage() const { return FailureMsg; }
  /// Thread that called fail(), or -1.
  Tid failureTid() const { return FailureBy; }

  /// Total threads ever spawned in this execution (Table 1 "Threads").
  int threadCount() const { return int(NumThreads); }
  /// Scheduling points executed so far (Table 1 "Synch Ops").
  uint64_t syncOpCount() const { return SyncOps; }

  /// Stores enqueued into / committed from store buffers this execution.
  /// Both are zero under --memory=sc.
  uint64_t bufferedStoreCount() const { return BufferedStores; }
  uint64_t storeFlushCount() const { return StoreFlushes; }

  /// Signature of the current program state: the workload extractor's
  /// digest (if registered) combined with each thread's liveness, pending
  /// operation and annotation. Used for coverage counting and for the
  /// stateful reference search of Table 2.
  uint64_t stateSignature() const;

  bool isFinished(Tid T) const;
  const std::string &threadName(Tid T) const;
  uint64_t annotationOf(Tid T) const;
  const std::string &objectName(int Id) const;

private:
  struct ThreadState;

  /// Readies slot \p Id (recycled or freshly allocated) for a new thread.
  ThreadState &claimThreadSlot(Tid Id);

  static void threadEntry(void *Arg);
  [[noreturn]] void exitThread(ThreadState &TS);
  void switchToController(ThreadState &TS);

  /// Commits every buffered store of thread \p T, oldest first. Called at
  /// fences, at fencing sync operations (drain-at-resume), at spawn (the
  /// parent's writes happen-before the child), and at thread exit.
  void drainBuffer(Tid T);
  /// One transition of flush agent FlushBase + \p Owner: commits one
  /// buffered store of thread \p Owner (the oldest under TSO; under PSO a
  /// data choice picks among the buffered variables first-come-first-
  /// served per variable).
  void flushStep(Tid Owner);
  /// Recomputes thread \p T's flush-agent pending op after any buffer
  /// mutation, so pendingOf(FlushBase + T) stays a stable reference.
  void refreshFlushPending(Tid T);
  /// Commits (and erases) entry \p Index of thread \p Owner's buffer:
  /// runs the deferred store, feeds the race detector, bumps counters.
  void commitEntryAt(Tid Owner, size_t Index);

  ChoiceSource &Choices;
  Options Opts;
  Fiber Controller;
  /// Thread records of this execution in slots [0, NumThreads); slots
  /// beyond that are recycled records from an earlier execution of this
  /// (reset) Runtime, kept so their storage and stacks can be reused.
  std::vector<std::unique_ptr<ThreadState>> Threads;
  size_t NumThreads = 0;
  std::vector<std::string> ObjectNames;
  ThreadSet Live;
  Tid CurTid = -1;       ///< Thread currently executing a transition.
  bool Failed = false;
  Tid FailureBy = -1;
  std::string FailureMsg;
  uint64_t SyncOps = 0;
  uint64_t BufferedStores = 0;
  uint64_t StoreFlushes = 0;
  /// Lazily built display names of flush agents ("sb(main)", ...),
  /// indexed by owner tid; cleared on reset with the rest of the naming
  /// state. Mutable because threadName() is const.
  mutable std::vector<std::string> FlushNames;
  bool InController = true;
  std::function<uint64_t()> StateExtractor;
  Tid ExtractorOwner = -1;
#ifndef NDEBUG
  /// The single OS thread allowed to drive this Runtime's fibers; set on
  /// the first step(). See the assertion in step().
  std::thread::id OwnerThread;
#endif
};

/// Checks a safety property from inside a test thread; on failure reports
/// a safety violation (with \p Msg) and abandons the execution.
void checkThat(bool Cond, const char *Msg);

/// Full memory barrier: drains the calling thread's store buffer. A
/// complete no-op under --memory=sc (no scheduling point is published, so
/// sc schedules are byte-identical with or without fences); under tso/pso
/// it parks at a VarFence scheduling point and commits every buffered
/// store before continuing.
void fence();

} // namespace fsmc

#endif // FSMC_RUNTIME_RUNTIME_H
