//===- runtime/PendingOp.cpp ----------------------------------------------===//

#include "runtime/PendingOp.h"

using namespace fsmc;

const char *fsmc::opKindName(OpKind K) {
  switch (K) {
  case OpKind::ThreadStart:
    return "start";
  case OpKind::Yield:
    return "yield";
  case OpKind::Sleep:
    return "sleep";
  case OpKind::MutexLock:
    return "lock";
  case OpKind::MutexTryLock:
    return "trylock";
  case OpKind::MutexUnlock:
    return "unlock";
  case OpKind::SemWait:
    return "sem.wait";
  case OpKind::SemPost:
    return "sem.post";
  case OpKind::CondWait:
    return "cond.wait";
  case OpKind::CondTimedWait:
    return "cond.timedwait";
  case OpKind::CondNotify:
    return "cond.notify";
  case OpKind::EventWait:
    return "event.wait";
  case OpKind::EventTimedWait:
    return "event.timedwait";
  case OpKind::EventSet:
    return "event.set";
  case OpKind::EventReset:
    return "event.reset";
  case OpKind::BarrierArrive:
    return "barrier.arrive";
  case OpKind::RwReadLock:
    return "rw.rdlock";
  case OpKind::RwWriteLock:
    return "rw.wrlock";
  case OpKind::RwUnlock:
    return "rw.unlock";
  case OpKind::Join:
    return "join";
  case OpKind::VarLoad:
    return "load";
  case OpKind::VarStore:
    return "store";
  case OpKind::VarRmw:
    return "rmw";
  case OpKind::UserOp:
    return "userop";
  }
  return "?";
}

bool fsmc::independentOps(const PendingOp &A, const PendingOp &B) {
  auto classify = [](const PendingOp &Op) -> int {
    switch (Op.Kind) {
    case OpKind::Yield:
    case OpKind::Sleep:
      return 0; // Pure: commutes with everything.
    case OpKind::ThreadStart:
    case OpKind::Join:
    case OpKind::UserOp:
      return 2; // Global: conflicts with everything.
    default:
      return 1; // Object-local: commutes across distinct objects.
    }
  };
  int CA = classify(A), CB = classify(B);
  if (CA == 0 || CB == 0)
    return true;
  if (CA == 2 || CB == 2)
    return false;
  return A.ObjectId >= 0 && B.ObjectId >= 0 && A.ObjectId != B.ObjectId;
}

bool fsmc::isYieldKind(OpKind K) {
  switch (K) {
  case OpKind::Yield:
  case OpKind::Sleep:
  case OpKind::CondTimedWait:
  case OpKind::EventTimedWait:
    return true;
  default:
    return false;
  }
}
