//===- runtime/PendingOp.cpp ----------------------------------------------===//

#include "runtime/PendingOp.h"

using namespace fsmc;

const char *fsmc::opKindName(OpKind K) {
  switch (K) {
  case OpKind::ThreadStart:
    return "start";
  case OpKind::Yield:
    return "yield";
  case OpKind::Sleep:
    return "sleep";
  case OpKind::MutexLock:
    return "lock";
  case OpKind::MutexTryLock:
    return "trylock";
  case OpKind::MutexUnlock:
    return "unlock";
  case OpKind::SemWait:
    return "sem.wait";
  case OpKind::SemPost:
    return "sem.post";
  case OpKind::CondWait:
    return "cond.wait";
  case OpKind::CondTimedWait:
    return "cond.timedwait";
  case OpKind::CondNotify:
    return "cond.notify";
  case OpKind::EventWait:
    return "event.wait";
  case OpKind::EventTimedWait:
    return "event.timedwait";
  case OpKind::EventSet:
    return "event.set";
  case OpKind::EventReset:
    return "event.reset";
  case OpKind::BarrierArrive:
    return "barrier.arrive";
  case OpKind::RwReadLock:
    return "rw.rdlock";
  case OpKind::RwWriteLock:
    return "rw.wrlock";
  case OpKind::RwUnlock:
    return "rw.unlock";
  case OpKind::Join:
    return "join";
  case OpKind::VarLoad:
    return "load";
  case OpKind::VarStore:
    return "store";
  case OpKind::VarRmw:
    return "rmw";
  case OpKind::UserOp:
    return "userop";
  case OpKind::VarFlush:
    return "flush";
  case OpKind::VarFence:
    return "fence";
  }
  return "?";
}

bool fsmc::isYieldKind(OpKind K) {
  switch (K) {
  case OpKind::Yield:
  case OpKind::Sleep:
  case OpKind::CondTimedWait:
  case OpKind::EventTimedWait:
    return true;
  default:
    return false;
  }
}

bool fsmc::isFencingKind(OpKind K) {
  switch (K) {
  case OpKind::ThreadStart: // First transition; the buffer is empty.
  case OpKind::Yield:
  case OpKind::Sleep:
  case OpKind::VarLoad:
  case OpKind::VarStore:
  case OpKind::VarFlush:
    return false;
  default:
    return true;
  }
}

const char *fsmc::memoryModelName(MemoryModel M) {
  switch (M) {
  case MemoryModel::Sc:
    return "sc";
  case MemoryModel::Tso:
    return "tso";
  case MemoryModel::Pso:
    return "pso";
  }
  return "?";
}
