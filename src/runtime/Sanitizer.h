//===- runtime/Sanitizer.h - Sanitizer build detection ---------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FSMC_ASAN: 1 when compiling under AddressSanitizer (the `asan` CMake
/// preset), 0 otherwise. The fiber runtime swaps stacks underneath the
/// compiler, which ASan can only follow if it is told about every switch
/// (__sanitizer_start/finish_switch_fiber) and if recycled stack memory
/// is unpoisoned before reuse. All of that instrumentation compiles to
/// nothing in non-sanitizer builds.
///
/// FSMC_TSAN: 1 when compiling under ThreadSanitizer (the `tsan` CMake
/// preset), 0 otherwise. TSan models each ucontext fiber as its own
/// logical thread: every fiber gets a __tsan_create_fiber handle, every
/// swapcontext is announced with __tsan_switch_to_fiber, and recycled
/// stacks get a fresh handle so two logical fibers never share TSan
/// state. Without this, TSan sees one OS thread whose stack pointer
/// teleports and reports garbage. This is what lets the checker's own
/// concurrency -- the work-stealing parallel engine -- run under the
/// same sanitizer treatment it gives workloads (ctest preset tsan-par).
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_RUNTIME_SANITIZER_H
#define FSMC_RUNTIME_SANITIZER_H

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define FSMC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FSMC_ASAN 1
#endif
#endif
#ifndef FSMC_ASAN
#define FSMC_ASAN 0
#endif

#if FSMC_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define FSMC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FSMC_TSAN 1
#endif
#endif
#ifndef FSMC_TSAN
#define FSMC_TSAN 0
#endif

#if FSMC_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace fsmc {

/// Clears ASan shadow poison over [\p Addr, \p Addr + \p Bytes); no-op in
/// regular builds. A fiber that parked or exited leaves poisoned redzones
/// from its abandoned frames on its stack, so the memory must be
/// unpoisoned before a new fiber runs on it.
inline void fsmcAsanUnpoison(void *Addr, size_t Bytes) {
#if FSMC_ASAN
  __asan_unpoison_memory_region(Addr, Bytes);
#else
  (void)Addr;
  (void)Bytes;
#endif
}

} // namespace fsmc

#endif // FSMC_RUNTIME_SANITIZER_H
