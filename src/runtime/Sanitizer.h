//===- runtime/Sanitizer.h - Sanitizer build detection ---------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FSMC_ASAN: 1 when compiling under AddressSanitizer (the `asan` CMake
/// preset), 0 otherwise. The fiber runtime swaps stacks underneath the
/// compiler, which ASan can only follow if it is told about every switch
/// (__sanitizer_start/finish_switch_fiber) and if recycled stack memory
/// is unpoisoned before reuse. All of that instrumentation compiles to
/// nothing in non-sanitizer builds.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_RUNTIME_SANITIZER_H
#define FSMC_RUNTIME_SANITIZER_H

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define FSMC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FSMC_ASAN 1
#endif
#endif
#ifndef FSMC_ASAN
#define FSMC_ASAN 0
#endif

#if FSMC_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace fsmc {

/// Clears ASan shadow poison over [\p Addr, \p Addr + \p Bytes); no-op in
/// regular builds. A fiber that parked or exited leaves poisoned redzones
/// from its abandoned frames on its stack, so the memory must be
/// unpoisoned before a new fiber runs on it.
inline void fsmcAsanUnpoison(void *Addr, size_t Bytes) {
#if FSMC_ASAN
  __asan_unpoison_memory_region(Addr, Bytes);
#else
  (void)Addr;
  (void)Bytes;
#endif
}

} // namespace fsmc

#endif // FSMC_RUNTIME_SANITIZER_H
