//===- runtime/StackPool.h - Reusable guard-paged fiber stacks -*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A free list of guard-paged stack mappings for fiber reuse across
/// executions.
///
/// The stateless search re-executes the test program for every schedule
/// (Algorithm 1), so per-execution setup cost -- not the scheduler --
/// bounds throughput. Without pooling, every test thread of every
/// execution pays an mmap + mprotect on creation and a munmap on teardown;
/// at millions of executions x N threads that is millions of syscalls on
/// the hottest path in the checker. The pool keeps released mappings,
/// guard page intact, and hands them back to the next acquire of the same
/// size, reducing the steady-state cost to a vector pop.
///
/// Threading: a pool is single-threaded by design -- one pool per search
/// worker, mirroring how each worker owns its private Runtime. Stacks
/// never migrate between pools.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_RUNTIME_STACKPOOL_H
#define FSMC_RUNTIME_STACKPOOL_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fsmc {

/// Owns guard-paged stack mappings and recycles them by size.
///
/// Layout of every mapping (identical to what Fiber::initWithEntry maps
/// directly): one inaccessible guard page at the base, then the usable
/// stack above it. The guard page's protection is set once at map time
/// and survives reuse, so pooled stacks still fault on overflow.
class StackPool {
public:
  struct Stats {
    uint64_t Acquires = 0; ///< Total acquire() calls.
    uint64_t Hits = 0;     ///< Acquires served from the free list.
    uint64_t Misses = 0;   ///< Acquires that fell back to mmap.
    uint64_t Releases = 0; ///< Stacks returned to the free list.
    size_t HighWater = 0;  ///< Max mappings alive (in use + free) at once.
  };

  StackPool() = default;
  ~StackPool();

  StackPool(const StackPool &) = delete;
  StackPool &operator=(const StackPool &) = delete;

  /// \returns the base of a mapping of exactly \p MappedBytes (guard page
  /// at the base, already PROT_NONE), or null if mmap failed. Reuses a
  /// free mapping of the same size when one exists.
  char *acquire(size_t MappedBytes);

  /// Returns \p Base (previously obtained from acquire) to the free list.
  /// With trim-on-release set, the usable region's pages are given back
  /// to the kernel via madvise(MADV_DONTNEED) first, so an idle pool
  /// holds address space but not resident memory.
  void release(char *Base, size_t MappedBytes);

  /// Unmaps every free mapping now (in-use stacks are unaffected).
  void trim();

  /// Makes every future release() madvise the usable region away.
  void setTrimOnRelease(bool On) { TrimOnRelease = On; }

  const Stats &stats() const { return S; }

  /// Free mappings currently held, across all sizes.
  size_t freeCount() const;

private:
  struct SizeClass {
    size_t MappedBytes = 0;
    std::vector<char *> Free;
  };

  SizeClass &classFor(size_t MappedBytes);

  /// Keyed linearly: real runs use exactly one stack size, so the "map"
  /// is a one-element vector and lookup is a single compare.
  std::vector<SizeClass> Classes;
  Stats S;
  size_t LiveMappings = 0; ///< In use + free, for the high-water mark.
  bool TrimOnRelease = false;
};

} // namespace fsmc

#endif // FSMC_RUNTIME_STACKPOOL_H
