//===- runtime/Runtime.cpp ------------------------------------------------===//

#include "runtime/Runtime.h"

#include "obs/Counters.h"
#include "race/RaceDetector.h"
#include "support/Hashing.h"

#include <cassert>

using namespace fsmc;

ChoiceSource::~ChoiceSource() = default;

namespace {
/// The runtime of the execution currently running on this OS thread. All
/// fibers of one execution share the host OS thread, so one pointer per
/// OS thread suffices; it is set for the duration of step(). thread_local
/// (not a plain global) so parallel workers can each drive a private
/// Runtime concurrently.
thread_local Runtime *CurrentRuntime = nullptr;
} // namespace

struct Runtime::ThreadState {
  Tid Id = -1;
  std::string Name;
  Fiber F;
  std::function<void()> Body;
  PendingOp Pending;
  bool FinishedFlag = false;
  uint64_t Annotation = 0;
  Runtime *RT = nullptr;
};

Runtime::Runtime(ChoiceSource &Choices) : Runtime(Choices, Options()) {}

Runtime::Runtime(ChoiceSource &Choices, Options Opts)
    : Choices(Choices), Opts(Opts) {
  Controller.initAsHost();
}

Runtime::~Runtime() {
  // Fibers of unfinished threads are freed without unwinding their stacks.
  // This abandons any heap owned by objects on those stacks; acceptable for
  // bug-reporting executions, and workloads are written to keep transient
  // allocations off abandoned paths.
}

Runtime &Runtime::current() {
  assert(CurrentRuntime && "no execution in progress");
  return *CurrentRuntime;
}

void Runtime::threadEntry(void *Arg) {
  auto *TS = static_cast<ThreadState *>(Arg);
  // The first transition of a thread begins here (its ThreadStart op).
  TS->Body();
  TS->Body = nullptr;
  TS->RT->exitThread(*TS);
}

void Runtime::exitThread(ThreadState &TS) {
  TS.FinishedFlag = true;
  Live.erase(TS.Id);
  // The extractor reads locals of its registering thread; those are gone
  // now, so stop calling it.
  if (ExtractorOwner == TS.Id)
    StateExtractor = nullptr;
  switchToController(TS);
  assert(false && "finished thread was rescheduled");
  __builtin_unreachable();
}

void Runtime::switchToController(ThreadState &TS) {
  InController = true;
  Fiber::switchTo(TS.F, Controller);
  // Execution resumes here when the scheduler picks this thread again.
  InController = false;
}

Runtime::ThreadState &Runtime::claimThreadSlot(Tid Id) {
  if (size_t(Id) == Threads.size())
    Threads.push_back(std::make_unique<ThreadState>());
  // Else: a recycled record from before the last reset(). Its fiber keeps
  // its stack mapping; initWithEntry below reuses it in place.
  ThreadState &TS = *Threads[Id];
  TS.Id = Id;
  TS.RT = this;
  TS.FinishedFlag = false;
  TS.Annotation = 0;
  TS.Pending = makeOp(OpKind::ThreadStart);
  ++NumThreads;
  return TS;
}

Tid Runtime::spawn(std::function<void()> Body, std::string Name) {
  assert(!InController && "spawn must be called from a test thread");
  Tid Id = Tid(NumThreads);
  if (Id >= MaxThreads)
    fail("thread limit exceeded (MaxThreads = 64)");
  ThreadState &TS = claimThreadSlot(Id);
  TS.Name = Name.empty() ? ("t" + std::to_string(Id)) : std::move(Name);
  TS.Body = std::move(Body);
  if (!TS.F.initWithEntry(Opts.StackBytes, &Runtime::threadEntry, &TS,
                          Opts.Pool))
    fail("fiber stack allocation failed");
  Live.insert(Id);
  if (Opts.Race)
    Opts.Race->onSpawn(CurTid, Id);
  return Id;
}

void Runtime::start(std::function<void()> MainBody, std::string Name) {
  assert(NumThreads == 0 && "start() called twice");
  assert(InController && "start must be called from the controller");
  Tid Id = 0;
  ThreadState &TS = claimThreadSlot(Id);
  TS.Name = std::move(Name);
  TS.Body = std::move(MainBody);
  bool OK = TS.F.initWithEntry(Opts.StackBytes, &Runtime::threadEntry, &TS,
                               Opts.Pool);
  assert(OK && "fiber stack allocation failed for main thread");
  (void)OK;
  Live.insert(Id);
  if (Opts.Race)
    Opts.Race->onThreadStart(Id);
}

void Runtime::reset(const Options &NewOpts) {
  assert(InController && "reset must be called from the controller");
  Opts = NewOpts;
  // Recycled records keep their fiber (and stack mapping) and their
  // string capacity; everything execution-specific is re-armed by
  // claimThreadSlot when the slot is claimed again. Unfinished fibers
  // are abandoned without unwinding, exactly as the destructor would.
  for (size_t I = 0; I < NumThreads; ++I)
    Threads[I]->Body = nullptr;
  NumThreads = 0;
  ObjectNames.clear();
  Live.clear();
  CurTid = -1;
  Failed = false;
  FailureBy = -1;
  FailureMsg.clear();
  SyncOps = 0;
  InController = true;
  StateExtractor = nullptr;
  ExtractorOwner = -1;
}

void Runtime::schedulePoint(const PendingOp &Op) {
  assert(!InController && "schedulePoint must be called from a test thread");
  ThreadState &TS = *Threads[CurTid];
  TS.Pending = Op;
  if (Opts.CountOps)
    ++SyncOps;
  if (Opts.Ctr)
    Opts.Ctr->add(obs::Counter::SchedulePoints);
  switchToController(TS);
  assert(TS.Pending.isEnabled() &&
         "scheduler resumed a thread whose pending op is disabled");
}

int Runtime::chooseInt(int N) {
  // A nonpositive alternative count is a workload bug; report it through
  // the same path as fail() so release builds get a diagnosed safety
  // violation instead of undefined behaviour.
  if (N <= 0)
    fail("chooseInt(" + std::to_string(N) +
         "): the number of alternatives must be positive");
  if (N == 1)
    return 0;
  return Choices.chooseInt(N);
}

void Runtime::annotate(uint64_t Value) {
  assert(!InController && "annotate must be called from a test thread");
  Threads[CurTid]->Annotation = Value;
}

Tid Runtime::self() const {
  assert(!InController && "self() must be called from a test thread");
  return CurTid;
}

void Runtime::fail(std::string Message) {
  assert(!InController && "fail must be called from a test thread");
  Failed = true;
  FailureBy = CurTid;
  FailureMsg = std::move(Message);
  ThreadState &TS = *Threads[CurTid];
  switchToController(TS);
  assert(false && "failed thread was rescheduled");
  __builtin_unreachable();
}

int Runtime::newObjectId(std::string Name) {
  ObjectNames.push_back(std::move(Name));
  return int(ObjectNames.size()) - 1;
}

void Runtime::noteContended(OpKind Kind) {
  if (!Opts.Ctr)
    return;
  Opts.Ctr->add(obs::Counter::SyncContention);
  Opts.Ctr->addContended(unsigned(Kind));
}

void Runtime::raceAcquire(int Obj) {
  if (Opts.Race)
    Opts.Race->onAcquire(CurTid, Obj);
}

void Runtime::raceRelease(int Obj) {
  if (Opts.Race)
    Opts.Race->onRelease(CurTid, Obj);
}

void Runtime::raceJoin(Tid Target) {
  if (Opts.Race)
    Opts.Race->onJoin(CurTid, Target);
}

void Runtime::raceLoad(int Var) {
  if (Opts.Race)
    Opts.Race->onAccess(CurTid, Var, /*IsWrite=*/false, objectName(Var),
                        Threads[CurTid]->Name, SyncOps);
}

void Runtime::raceStore(int Var) {
  if (Opts.Race)
    Opts.Race->onAccess(CurTid, Var, /*IsWrite=*/true, objectName(Var),
                        Threads[CurTid]->Name, SyncOps);
}

void Runtime::setStateExtractor(std::function<uint64_t()> Fn) {
  assert(!InController && "extractors are registered by test threads");
  StateExtractor = std::move(Fn);
  ExtractorOwner = CurTid;
}

uint64_t Runtime::stateSignature() const {
  Fnv1a H;
  H.addU64(StateExtractor ? StateExtractor() : 0);
  for (size_t I = 0; I < NumThreads; ++I) {
    const auto &TS = Threads[I];
    if (TS->FinishedFlag) {
      H.addU64(0xf1f1f1f1f1f1f1f1ULL);
      continue;
    }
    H.addByte(uint8_t(TS->Pending.Kind));
    H.addU64(uint64_t(TS->Pending.ObjectId) + 1);
    H.addU64(uint64_t(TS->Pending.Aux));
    H.addU64(TS->Annotation);
  }
  return H.digest();
}

ThreadSet Runtime::enabledSet() const {
  ThreadSet ES;
  for (Tid T : Live)
    if (Threads[T]->Pending.isEnabled())
      ES.insert(T);
  return ES;
}

const PendingOp &Runtime::pendingOf(Tid T) const {
  assert(Live.contains(T) && "pendingOf on a non-live thread");
  return Threads[T]->Pending;
}

bool Runtime::yieldPending(Tid T) const {
  return Live.contains(T) && Threads[T]->Pending.isYield();
}

StepStatus Runtime::step(Tid T) {
  assert(InController && "step must be called from the controller");
  assert(Live.contains(T) && "stepping a non-live thread");
  assert(Threads[T]->Pending.isEnabled() && "stepping a disabled thread");
  assert(!Failed && "stepping after a failure");
#ifndef NDEBUG
  // Fibers are ucontexts bound to the stack of the OS thread that first
  // stepped them; migrating a Runtime across OS threads mid-execution
  // would switch onto a foreign stack. Each Runtime has exactly one
  // owning OS thread for its whole lifetime.
  if (OwnerThread == std::thread::id())
    OwnerThread = std::this_thread::get_id();
  assert(OwnerThread == std::this_thread::get_id() &&
         "Runtime stepped from a second OS thread");
#endif

  Runtime *PrevRuntime = CurrentRuntime;
  CurrentRuntime = this;
  CurTid = T;
  InController = false;
  Fiber::switchTo(Controller, Threads[T]->F);
  // Back in the controller: the thread parked, finished, or failed.
  CurTid = -1;
  CurrentRuntime = PrevRuntime;

  if (Failed)
    return StepStatus::Failed;
  if (Threads[T]->FinishedFlag)
    return StepStatus::Finished;
  return StepStatus::Parked;
}

bool Runtime::isFinished(Tid T) const {
  assert(T >= 0 && size_t(T) < NumThreads && "unknown thread");
  return Threads[T]->FinishedFlag;
}

const std::string &Runtime::threadName(Tid T) const {
  assert(T >= 0 && size_t(T) < NumThreads && "unknown thread");
  return Threads[T]->Name;
}

uint64_t Runtime::annotationOf(Tid T) const {
  assert(T >= 0 && size_t(T) < NumThreads && "unknown thread");
  return Threads[T]->Annotation;
}

const std::string &Runtime::objectName(int Id) const {
  static const std::string None = "<none>";
  if (Id < 0 || Id >= int(ObjectNames.size()))
    return None;
  return ObjectNames[Id];
}

void fsmc::checkThat(bool Cond, const char *Msg) {
  if (!Cond)
    Runtime::current().fail(Msg);
}
