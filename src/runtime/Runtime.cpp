//===- runtime/Runtime.cpp ------------------------------------------------===//

#include "runtime/Runtime.h"

#include "obs/Counters.h"
#include "race/RaceDetector.h"
#include "support/Hashing.h"

#include <cassert>

using namespace fsmc;

ChoiceSource::~ChoiceSource() = default;

namespace {
/// The runtime of the execution currently running on this OS thread. All
/// fibers of one execution share the host OS thread, so one pointer per
/// OS thread suffices; it is set for the duration of step(). thread_local
/// (not a plain global) so parallel workers can each drive a private
/// Runtime concurrently.
thread_local Runtime *CurrentRuntime = nullptr;
} // namespace

namespace {
/// One entry of a thread's FIFO store buffer (--memory=tso|pso): a store
/// whose effect on memory is deferred until a flush agent, a fence, or a
/// fencing sync operation commits it.
struct BufferedStore {
  int ObjectId = -1;
  int64_t Value = 0;
  /// Writes Value into the variable behind Obj; supplied by the sync
  /// primitive that enqueued the store (it knows the variable's type).
  void (*Commit)(void *, int64_t) = nullptr;
  void *Obj = nullptr;
  /// Race-checked PlainVar store: its race-detector write access is
  /// registered at commit time, when the store becomes visible.
  bool Plain = false;
  /// SyncOps at enqueue, used only for race-report step numbering.
  uint64_t Step = 0;
};
} // namespace

struct Runtime::ThreadState {
  Tid Id = -1;
  std::string Name;
  Fiber F;
  std::function<void()> Body;
  PendingOp Pending;
  bool FinishedFlag = false;
  uint64_t Annotation = 0;
  Runtime *RT = nullptr;
  /// FIFO store buffer, oldest entry first. Always empty under
  /// --memory=sc and whenever the thread is finished (exit drains).
  std::vector<BufferedStore> Buffer;
  /// Pending op of this thread's flush agent while Buffer is non-empty;
  /// kept current by refreshFlushPending so pendingOf(FlushBase + Id)
  /// returns a stable reference.
  PendingOp FlushPending;
};

Runtime::Runtime(ChoiceSource &Choices) : Runtime(Choices, Options()) {}

Runtime::Runtime(ChoiceSource &Choices, Options Opts)
    : Choices(Choices), Opts(Opts) {
  Controller.initAsHost();
}

Runtime::~Runtime() {
  // Fibers of unfinished threads are freed without unwinding their stacks.
  // This abandons any heap owned by objects on those stacks; acceptable for
  // bug-reporting executions, and workloads are written to keep transient
  // allocations off abandoned paths.
}

Runtime &Runtime::current() {
  assert(CurrentRuntime && "no execution in progress");
  return *CurrentRuntime;
}

void Runtime::threadEntry(void *Arg) {
  auto *TS = static_cast<ThreadState *>(Arg);
  // The first transition of a thread begins here (its ThreadStart op).
  TS->Body();
  TS->Body = nullptr;
  TS->RT->exitThread(*TS);
}

void Runtime::exitThread(ThreadState &TS) {
  // A real processor's buffer drains before the thread's context dies;
  // modeling that here also keeps the invariant that flush agents only
  // ever belong to live threads.
  if (Opts.Memory != MemoryModel::Sc)
    drainBuffer(TS.Id);
  TS.FinishedFlag = true;
  Live.erase(TS.Id);
  // The extractor reads locals of its registering thread; those are gone
  // now, so stop calling it.
  if (ExtractorOwner == TS.Id)
    StateExtractor = nullptr;
  switchToController(TS);
  assert(false && "finished thread was rescheduled");
  __builtin_unreachable();
}

void Runtime::switchToController(ThreadState &TS) {
  InController = true;
  Fiber::switchTo(TS.F, Controller);
  // Execution resumes here when the scheduler picks this thread again.
  InController = false;
}

Runtime::ThreadState &Runtime::claimThreadSlot(Tid Id) {
  if (size_t(Id) == Threads.size())
    Threads.push_back(std::make_unique<ThreadState>());
  // Else: a recycled record from before the last reset(). Its fiber keeps
  // its stack mapping; initWithEntry below reuses it in place.
  ThreadState &TS = *Threads[Id];
  TS.Id = Id;
  TS.RT = this;
  TS.FinishedFlag = false;
  TS.Annotation = 0;
  TS.Pending = makeOp(OpKind::ThreadStart);
  TS.Buffer.clear(); // Keeps capacity across reset(), like the strings.
  TS.FlushPending = makeOp(OpKind::VarFlush, -1, Id);
  ++NumThreads;
  return TS;
}

Tid Runtime::spawn(std::function<void()> Body, std::string Name) {
  assert(!InController && "spawn must be called from a test thread");
  Tid Id = Tid(NumThreads);
  // Under weak memory the upper half of the tid space belongs to the
  // flush agents, so real threads cap at FlushBase.
  if (Opts.Memory != MemoryModel::Sc && Id >= FlushBase)
    fail("thread limit exceeded (32 under --memory=tso|pso)");
  if (Id >= MaxThreads)
    fail("thread limit exceeded (MaxThreads = 64)");
  // Spawning is a release: the parent's writes happen-before the child's
  // first transition, so its buffered stores must be visible by then.
  if (Opts.Memory != MemoryModel::Sc)
    drainBuffer(CurTid);
  ThreadState &TS = claimThreadSlot(Id);
  TS.Name = Name.empty() ? ("t" + std::to_string(Id)) : std::move(Name);
  TS.Body = std::move(Body);
  if (!TS.F.initWithEntry(Opts.StackBytes, &Runtime::threadEntry, &TS,
                          Opts.Pool))
    fail("fiber stack allocation failed");
  Live.insert(Id);
  if (Opts.Race)
    Opts.Race->onSpawn(CurTid, Id);
  return Id;
}

void Runtime::start(std::function<void()> MainBody, std::string Name) {
  assert(NumThreads == 0 && "start() called twice");
  assert(InController && "start must be called from the controller");
  Tid Id = 0;
  ThreadState &TS = claimThreadSlot(Id);
  TS.Name = std::move(Name);
  TS.Body = std::move(MainBody);
  bool OK = TS.F.initWithEntry(Opts.StackBytes, &Runtime::threadEntry, &TS,
                               Opts.Pool);
  assert(OK && "fiber stack allocation failed for main thread");
  (void)OK;
  Live.insert(Id);
  if (Opts.Race)
    Opts.Race->onThreadStart(Id);
}

void Runtime::reset(const Options &NewOpts) {
  assert(InController && "reset must be called from the controller");
  Opts = NewOpts;
  // Recycled records keep their fiber (and stack mapping) and their
  // string capacity; everything execution-specific is re-armed by
  // claimThreadSlot when the slot is claimed again. Unfinished fibers
  // are abandoned without unwinding, exactly as the destructor would.
  for (size_t I = 0; I < NumThreads; ++I)
    Threads[I]->Body = nullptr;
  NumThreads = 0;
  ObjectNames.clear();
  Live.clear();
  CurTid = -1;
  Failed = false;
  FailureBy = -1;
  FailureMsg.clear();
  SyncOps = 0;
  BufferedStores = 0;
  StoreFlushes = 0;
  FlushNames.clear();
  InController = true;
  StateExtractor = nullptr;
  ExtractorOwner = -1;
}

void Runtime::schedulePoint(const PendingOp &Op) {
  assert(!InController && "schedulePoint must be called from a test thread");
  ThreadState &TS = *Threads[CurTid];
  TS.Pending = Op;
  if (Opts.CountOps)
    ++SyncOps;
  if (Opts.Ctr)
    Opts.Ctr->add(obs::Counter::SchedulePoints);
  switchToController(TS);
  // The scheduler picked this thread; its visible operation is about to
  // take effect. Fencing operations (docs/MEMORY.md) drain the store
  // buffer first, so e.g. a mutex acquire never completes with the
  // acquirer's own stores still pending.
  if (Opts.Memory != MemoryModel::Sc && isFencingKind(TS.Pending.Kind))
    drainBuffer(TS.Id);
  assert(TS.Pending.isEnabled() &&
         "scheduler resumed a thread whose pending op is disabled");
}

int Runtime::chooseInt(int N) {
  // A nonpositive alternative count is a workload bug; report it through
  // the same path as fail() so release builds get a diagnosed safety
  // violation instead of undefined behaviour.
  if (N <= 0)
    fail("chooseInt(" + std::to_string(N) +
         "): the number of alternatives must be positive");
  if (N == 1)
    return 0;
  return Choices.chooseInt(N);
}

void Runtime::annotate(uint64_t Value) {
  assert(!InController && "annotate must be called from a test thread");
  Threads[CurTid]->Annotation = Value;
}

Tid Runtime::self() const {
  assert(!InController && "self() must be called from a test thread");
  return CurTid;
}

void Runtime::fail(std::string Message) {
  assert(!InController && "fail must be called from a test thread");
  Failed = true;
  FailureBy = CurTid;
  FailureMsg = std::move(Message);
  ThreadState &TS = *Threads[CurTid];
  switchToController(TS);
  assert(false && "failed thread was rescheduled");
  __builtin_unreachable();
}

int Runtime::newObjectId(std::string Name) {
  ObjectNames.push_back(std::move(Name));
  return int(ObjectNames.size()) - 1;
}

void Runtime::noteContended(OpKind Kind) {
  if (!Opts.Ctr)
    return;
  Opts.Ctr->add(obs::Counter::SyncContention);
  Opts.Ctr->addContended(unsigned(Kind));
}

void Runtime::raceAcquire(int Obj) {
  if (Opts.Race)
    Opts.Race->onAcquire(CurTid, Obj);
}

void Runtime::raceRelease(int Obj) {
  if (Opts.Race)
    Opts.Race->onRelease(CurTid, Obj);
}

void Runtime::raceJoin(Tid Target) {
  if (Opts.Race)
    Opts.Race->onJoin(CurTid, Target);
}

void Runtime::raceLoad(int Var) {
  if (!Opts.Race)
    return;
  if (Opts.Memory != MemoryModel::Sc) {
    // A plain load racing with a *still-buffered* plain store is always a
    // genuine data race: any happens-before edge from the storer into
    // this load either came from a fencing operation (which would have
    // drained the entry) or from an atomic store whose release is
    // deferred to its commit -- and FIFO order commits entries enqueued
    // before it first. So no edge can cover a store that is still in the
    // buffer; report it immediately with the weak-memory tag.
    for (Tid U : Live) {
      if (U == CurTid)
        continue;
      for (const BufferedStore &E : Threads[U]->Buffer)
        if (E.Plain && E.ObjectId == Var) {
          Opts.Race->onBufferedHazard(CurTid, Threads[CurTid]->Name,
                                      SyncOps, U, Threads[U]->Name, E.Step,
                                      Var, objectName(Var));
          break;
        }
    }
  }
  Opts.Race->onAccess(CurTid, Var, /*IsWrite=*/false, objectName(Var),
                      Threads[CurTid]->Name, SyncOps);
}

void Runtime::raceStore(int Var) {
  if (Opts.Race)
    Opts.Race->onAccess(CurTid, Var, /*IsWrite=*/true, objectName(Var),
                        Threads[CurTid]->Name, SyncOps);
}

void Runtime::bufferStore(int Var, int64_t Value,
                          void (*Commit)(void *, int64_t), void *Obj,
                          bool Plain) {
  assert(!InController && "bufferStore must be called from a test thread");
  assert(Opts.Memory != MemoryModel::Sc && "store buffered under sc");
  ThreadState &TS = *Threads[CurTid];
  TS.Buffer.push_back({Var, Value, Commit, Obj, Plain, SyncOps});
  ++BufferedStores;
  if (Opts.Ctr)
    Opts.Ctr->add(obs::Counter::BufferedStores);
  refreshFlushPending(CurTid);
}

bool Runtime::forwardedLoad(int Var, int64_t &Out) const {
  assert(!InController && "forwardedLoad must be called from a test thread");
  const ThreadState &TS = *Threads[CurTid];
  // Newest entry wins: the thread sees its own latest store.
  for (auto It = TS.Buffer.rbegin(); It != TS.Buffer.rend(); ++It)
    if (It->ObjectId == Var) {
      Out = It->Value;
      return true;
    }
  return false;
}

void Runtime::commitEntryAt(Tid Owner, size_t Index) {
  ThreadState &TS = *Threads[Owner];
  assert(Index < TS.Buffer.size() && "committing past the buffer");
  const BufferedStore E = TS.Buffer[Index];
  TS.Buffer.erase(TS.Buffer.begin() + Index);
  E.Commit(E.Obj, E.Value);
  ++StoreFlushes;
  if (Opts.Ctr)
    Opts.Ctr->add(obs::Counter::StoreFlushes);
  if (Opts.Race) {
    // The store becomes visible now, so this is where its race-detector
    // event belongs: the write access of a plain store, the release edge
    // of an atomic one. Deferring the release is what lets the detector
    // see that synchronizing through a still-buffered atomic store does
    // not order the storer's earlier plain writes (docs/MEMORY.md).
    if (E.Plain)
      Opts.Race->onAccess(Owner, E.ObjectId, /*IsWrite=*/true,
                          objectName(E.ObjectId), TS.Name, E.Step);
    else
      Opts.Race->onRelease(Owner, E.ObjectId);
  }
  refreshFlushPending(Owner);
}

void Runtime::drainBuffer(Tid T) {
  ThreadState &TS = *Threads[T];
  while (!TS.Buffer.empty())
    commitEntryAt(T, 0);
}

void Runtime::flushStep(Tid Owner) {
  assert(Opts.Memory != MemoryModel::Sc && "flush step under --memory=sc");
  ThreadState &TS = *Threads[Owner];
  assert(!TS.Buffer.empty() && "flush agent stepped with an empty buffer");
  if (Opts.Memory == MemoryModel::Tso) {
    commitEntryAt(Owner, 0); // TSO: strictly FIFO.
    return;
  }
  // PSO relaxes inter-variable order: a data choice picks which buffered
  // variable commits next (within one variable, FIFO still holds). The
  // choice lands on the explorer's stack like any chooseInt, so replay
  // and backtracking round-trip it. Distinct variables are enumerated in
  // first-occurrence order to keep the numbering deterministic.
  auto IsFirstOccurrence = [&](size_t I) {
    for (size_t J = 0; J < I; ++J)
      if (TS.Buffer[J].ObjectId == TS.Buffer[I].ObjectId)
        return false;
    return true;
  };
  int K = 0;
  for (size_t I = 0; I < TS.Buffer.size(); ++I)
    if (IsFirstOccurrence(I))
      ++K;
  int Pick = K == 1 ? 0 : Choices.chooseInt(K);
  int Nth = -1;
  for (size_t I = 0; I < TS.Buffer.size(); ++I)
    if (IsFirstOccurrence(I) && ++Nth == Pick) {
      commitEntryAt(Owner, I);
      return;
    }
  assert(false && "PSO flush choice out of range");
}

void Runtime::refreshFlushPending(Tid T) {
  ThreadState &TS = *Threads[T];
  if (TS.Buffer.empty())
    return; // Agent leaves the enabled set; its op is never consulted.
  // Under TSO only the front entry can commit, so the agent's op carries
  // its precise variable for the dependence oracle. A PSO flush may pick
  // any buffered variable: a single distinct id stays precise, several
  // collapse to -1 (aliases every object -- conservatively dependent).
  int Obj = TS.Buffer.front().ObjectId;
  if (Opts.Memory == MemoryModel::Pso)
    for (const BufferedStore &E : TS.Buffer)
      if (E.ObjectId != Obj) {
        Obj = -1;
        break;
      }
  TS.FlushPending = makeOp(OpKind::VarFlush, Obj, /*Aux=*/T);
}

void Runtime::setStateExtractor(std::function<uint64_t()> Fn) {
  assert(!InController && "extractors are registered by test threads");
  StateExtractor = std::move(Fn);
  ExtractorOwner = CurTid;
}

uint64_t Runtime::stateSignature() const {
  Fnv1a H;
  H.addU64(StateExtractor ? StateExtractor() : 0);
  for (size_t I = 0; I < NumThreads; ++I) {
    const auto &TS = Threads[I];
    if (TS->FinishedFlag) {
      H.addU64(0xf1f1f1f1f1f1f1f1ULL);
      continue;
    }
    H.addByte(uint8_t(TS->Pending.Kind));
    H.addU64(uint64_t(TS->Pending.ObjectId) + 1);
    H.addU64(uint64_t(TS->Pending.Aux));
    H.addU64(TS->Annotation);
    // Buffer contents are program state under weak memory: two points
    // that differ only in pending stores must not collapse to one
    // signature. Gated so sc digests stay byte-identical.
    if (Opts.Memory != MemoryModel::Sc) {
      H.addU64(TS->Buffer.size());
      for (const BufferedStore &E : TS->Buffer) {
        H.addU64(uint64_t(E.ObjectId) + 1);
        H.addU64(uint64_t(E.Value));
      }
    }
  }
  return H.digest();
}

ThreadSet Runtime::enabledSet() const {
  ThreadSet ES;
  for (Tid T : Live) {
    if (Threads[T]->Pending.isEnabled())
      ES.insert(T);
    // A thread's flush agent is enabled exactly while the buffer holds
    // stores -- even if the thread itself is blocked (a parked thread's
    // buffer still drains in real hardware). Note flush agents are never
    // in liveSet(): they have no fiber and never finish, they just fall
    // out of the enabled set when the buffer empties.
    if (Opts.Memory != MemoryModel::Sc && !Threads[T]->Buffer.empty())
      ES.insert(FlushBase + T);
  }
  return ES;
}

const PendingOp &Runtime::pendingOf(Tid T) const {
  if (isFlushAgent(T)) {
    const ThreadState &TS = *Threads[T - FlushBase];
    assert(!TS.Buffer.empty() && "pendingOf on an idle flush agent");
    return TS.FlushPending;
  }
  assert(Live.contains(T) && "pendingOf on a non-live thread");
  return Threads[T]->Pending;
}

bool Runtime::yieldPending(Tid T) const {
  return Live.contains(T) && Threads[T]->Pending.isYield();
}

StepStatus Runtime::step(Tid T) {
  assert(InController && "step must be called from the controller");
  if (isFlushAgent(T)) {
    // Flush transitions run entirely in the controller: no fiber switch,
    // no invisible code -- one buffered store commits, and the agent
    // "parks" again (or leaves the enabled set if the buffer emptied).
    flushStep(T - FlushBase);
    return StepStatus::Parked;
  }
  assert(Live.contains(T) && "stepping a non-live thread");
  assert(Threads[T]->Pending.isEnabled() && "stepping a disabled thread");
  assert(!Failed && "stepping after a failure");
#ifndef NDEBUG
  // Fibers are ucontexts bound to the stack of the OS thread that first
  // stepped them; migrating a Runtime across OS threads mid-execution
  // would switch onto a foreign stack. Each Runtime has exactly one
  // owning OS thread for its whole lifetime.
  if (OwnerThread == std::thread::id())
    OwnerThread = std::this_thread::get_id();
  assert(OwnerThread == std::this_thread::get_id() &&
         "Runtime stepped from a second OS thread");
#endif

  Runtime *PrevRuntime = CurrentRuntime;
  CurrentRuntime = this;
  CurTid = T;
  InController = false;
  Fiber::switchTo(Controller, Threads[T]->F);
  // Back in the controller: the thread parked, finished, or failed.
  CurTid = -1;
  CurrentRuntime = PrevRuntime;

  if (Failed)
    return StepStatus::Failed;
  if (Threads[T]->FinishedFlag)
    return StepStatus::Finished;
  return StepStatus::Parked;
}

bool Runtime::isFinished(Tid T) const {
  if (isFlushAgent(T)) {
    assert(size_t(T - FlushBase) < NumThreads && "unknown flush agent");
    return Threads[T - FlushBase]->Buffer.empty();
  }
  assert(T >= 0 && size_t(T) < NumThreads && "unknown thread");
  return Threads[T]->FinishedFlag;
}

const std::string &Runtime::threadName(Tid T) const {
  if (isFlushAgent(T)) {
    Tid Owner = T - FlushBase;
    assert(size_t(Owner) < NumThreads && "unknown flush agent");
    if (size_t(Owner) >= FlushNames.size())
      FlushNames.resize(NumThreads);
    if (FlushNames[Owner].empty())
      FlushNames[Owner] = "sb(" + Threads[Owner]->Name + ")";
    return FlushNames[Owner];
  }
  assert(T >= 0 && size_t(T) < NumThreads && "unknown thread");
  return Threads[T]->Name;
}

uint64_t Runtime::annotationOf(Tid T) const {
  if (isFlushAgent(T))
    return 0; // Agents carry no program counter of their own.
  assert(T >= 0 && size_t(T) < NumThreads && "unknown thread");
  return Threads[T]->Annotation;
}

const std::string &Runtime::objectName(int Id) const {
  static const std::string None = "<none>";
  if (Id < 0 || Id >= int(ObjectNames.size()))
    return None;
  return ObjectNames[Id];
}

void fsmc::checkThat(bool Cond, const char *Msg) {
  if (!Cond)
    Runtime::current().fail(Msg);
}

void fsmc::fence() {
  Runtime &RT = Runtime::current();
  // Under sc a fence is a *complete* no-op -- no scheduling point is
  // published, so schedules with and without fences are byte-identical.
  if (RT.memory() == MemoryModel::Sc)
    return;
  // VarFence is a fencing kind; schedulePoint's drain-at-resume commits
  // the whole buffer before this returns.
  RT.schedulePoint(makeOp(OpKind::VarFence));
}
