//===- runtime/PendingOp.h - Visible operation descriptors -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Describes the *visible operation* a parked test thread will perform when
/// it is next scheduled.
///
/// The paper's program model equips every state with two predicates per
/// thread (Section 3): `enabled(t)` -- executing t can proceed -- and
/// `yield(t)` -- executing t results in a yield. In CHESS these are derived
/// by intercepting synchronization APIs; here every modeled primitive
/// publishes a PendingOp at its scheduling point, and the controller
/// evaluates both predicates from it. Following Section 4 of the paper,
/// "every synchronization operation with a finite timeout and every
/// explicit processor yield" counts as a yielding operation.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_RUNTIME_PENDINGOP_H
#define FSMC_RUNTIME_PENDINGOP_H

#include <cstdint>

namespace fsmc {

/// Kinds of visible operations. One transition of the transition relation
/// is: perform the pending visible operation, then run invisible thread-
/// local code up to the next scheduling point.
enum class OpKind : uint8_t {
  ThreadStart,   ///< First transition of a freshly spawned thread.
  Yield,         ///< Explicit processor yield (Sleep(0), sched_yield).
  Sleep,         ///< Timed sleep; modeled as a yield, always enabled.
  MutexLock,     ///< Blocking acquire; enabled iff the mutex is free.
  MutexTryLock,  ///< Non-blocking acquire; always enabled, may fail.
  MutexUnlock,   ///< Release; always enabled.
  SemWait,       ///< Semaphore P(); enabled iff count > 0.
  SemPost,       ///< Semaphore V(); always enabled.
  CondWait,      ///< Untimed wait; enabled once signaled (lock reacquire
                 ///< is a separate MutexLock transition).
  CondTimedWait, ///< Wait with finite timeout; always enabled, yielding.
  CondNotify,    ///< signal/broadcast; always enabled.
  EventWait,     ///< Untimed wait on an event; enabled iff set.
  EventTimedWait,///< Timed wait on an event; always enabled, yielding.
  EventSet,      ///< Set an event; always enabled.
  EventReset,    ///< Reset a manual event; always enabled.
  BarrierArrive, ///< Arrive at barrier; enabled iff this arrival releases
                 ///< the barrier or registers and blocks (two-phase).
  RwReadLock,    ///< Reader acquire; enabled iff no writer holds the lock.
  RwWriteLock,   ///< Writer acquire; enabled iff the lock is free.
  RwUnlock,      ///< Release read or write lock; always enabled.
  Join,          ///< Join another thread; enabled iff the target finished.
  VarLoad,       ///< Load of a modeled shared variable.
  VarStore,      ///< Store to a modeled shared variable.
  VarRmw,        ///< Atomic read-modify-write (exchange, CAS, fetch-add).
  UserOp,        ///< Workload-defined visible operation.
  // Weak-memory operations (docs/MEMORY.md). Appended after UserOp so the
  // numeric values of every pre-existing kind -- and with them traces,
  // stats-json op tables and counter slots -- are unchanged under
  // --memory=sc.
  VarFlush,      ///< Store-buffer flush agent commits its owner's oldest
                 ///< buffered store to memory (--memory=tso|pso).
  VarFence,      ///< fsmc::fence(): drains the calling thread's store
                 ///< buffer. Never published under --memory=sc.
};

/// \returns a short stable name for \p K, used in traces and bug reports.
const char *opKindName(OpKind K);

/// \returns true if operations of kind \p K are *yielding*: they signal
/// that the thread cannot make progress and donate its turn. The fair
/// scheduler only ever demotes a thread's priority at these points
/// (Section 2: "the scheduler only penalizes yielding threads").
bool isYieldKind(OpKind K);

/// \returns true if operations of kind \p K drain the executing thread's
/// store buffer before taking effect under --memory=tso|pso
/// (docs/MEMORY.md). Real synchronization primitives are implemented with
/// barriers or interlocked instructions, so every modeled sync operation
/// fences; only plain variable loads/stores, yields and sleeps leave the
/// buffer in place -- those are exactly the operations whose delayed
/// visibility TSO/PSO exploration is after.
bool isFencingKind(OpKind K);

/// The memory model an execution is explored under (--memory=sc|tso|pso;
/// docs/MEMORY.md). Under Tso every thread gets a FIFO store buffer whose
/// flush points are first-class scheduling decisions; Pso additionally
/// relaxes the buffer's inter-variable order (flushes pick which variable
/// commits next). Sc is the historical behavior, byte-identical to a
/// build without the feature.
enum class MemoryModel : uint8_t { Sc, Tso, Pso };

/// \returns the stable wire name ("sc", "tso", "pso") of \p M.
const char *memoryModelName(MemoryModel M);

/// The visible operation a parked thread is about to perform.
///
/// `EnabledFn` is an optional pure predicate over the owning object's
/// current state; null means always enabled. The controller re-evaluates it
/// whenever it computes the enabled set, so it must be side-effect free.
struct PendingOp {
  OpKind Kind = OpKind::ThreadStart;
  /// Runtime-assigned id of the sync object or variable, -1 if none.
  int ObjectId = -1;
  /// Operation-specific payload (e.g. join target tid, store value).
  int64_t Aux = 0;
  bool (*EnabledFn)(const void *Ctx) = nullptr;
  const void *EnabledCtx = nullptr;

  bool isEnabled() const { return !EnabledFn || EnabledFn(EnabledCtx); }
  bool isYield() const { return isYieldKind(Kind); }
};

/// Conservative commutativity check for partial-order reduction: true
/// only if executing one operation can neither change the effect nor the
/// enabledness of the other. This is the tid-less entry point to the
/// dependence oracle (core/Dependence.h, where it is defined): without
/// executor tids, thread-management operations (start, join, user ops)
/// conservatively conflict with everything. The explorer uses the
/// tid-aware independentTransitions instead, which refines Join.
///
/// Soundness caveat: a *transition* is the visible operation plus the
/// invisible code after it. Programs whose shared state lives entirely in
/// modeled objects satisfy this independence; raw() back-channel accesses
/// do not, so POR is an opt-in (CheckerOptions::Por).
bool independentOps(const PendingOp &A, const PendingOp &B);

/// Builds an always-enabled op of kind \p K on object \p ObjectId.
inline PendingOp makeOp(OpKind K, int ObjectId = -1, int64_t Aux = 0) {
  PendingOp Op;
  Op.Kind = K;
  Op.ObjectId = ObjectId;
  Op.Aux = Aux;
  return Op;
}

/// Builds an op guarded by \p Fn(\p Ctx).
inline PendingOp makeGuardedOp(OpKind K, int ObjectId,
                               bool (*Fn)(const void *), const void *Ctx,
                               int64_t Aux = 0) {
  PendingOp Op = makeOp(K, ObjectId, Aux);
  Op.EnabledFn = Fn;
  Op.EnabledCtx = Ctx;
  return Op;
}

} // namespace fsmc

#endif // FSMC_RUNTIME_PENDINGOP_H
