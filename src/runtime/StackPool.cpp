//===- runtime/StackPool.cpp ----------------------------------------------===//

#include "runtime/StackPool.h"

#include "runtime/Sanitizer.h"

#include <cassert>
#include <sys/mman.h>
#include <unistd.h>

using namespace fsmc;

StackPool::~StackPool() { trim(); }

StackPool::SizeClass &StackPool::classFor(size_t MappedBytes) {
  for (SizeClass &C : Classes)
    if (C.MappedBytes == MappedBytes)
      return C;
  Classes.push_back(SizeClass{MappedBytes, {}});
  return Classes.back();
}

char *StackPool::acquire(size_t MappedBytes) {
  ++S.Acquires;
  SizeClass &C = classFor(MappedBytes);
  if (!C.Free.empty()) {
    char *Base = C.Free.back();
    C.Free.pop_back();
    ++S.Hits;
    return Base;
  }
  ++S.Misses;
  void *Map = mmap(nullptr, MappedBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Map == MAP_FAILED)
    return nullptr;
  long Page = sysconf(_SC_PAGESIZE);
  mprotect(Map, size_t(Page), PROT_NONE);
  if (++LiveMappings > S.HighWater)
    S.HighWater = LiveMappings;
  return static_cast<char *>(Map);
}

void StackPool::release(char *Base, size_t MappedBytes) {
  assert(Base && "releasing a null stack");
  ++S.Releases;
  long Page = sysconf(_SC_PAGESIZE);
  // The previous fiber abandoned its frames mid-stack; drop any stale
  // sanitizer poison with the mapping so the next user starts clean.
  fsmcAsanUnpoison(Base + Page, MappedBytes - size_t(Page));
  if (TrimOnRelease)
    madvise(Base + Page, MappedBytes - size_t(Page), MADV_DONTNEED);
  classFor(MappedBytes).Free.push_back(Base);
}

void StackPool::trim() {
  for (SizeClass &C : Classes) {
    for (char *Base : C.Free) {
      munmap(Base, C.MappedBytes);
      --LiveMappings;
    }
    C.Free.clear();
  }
}

size_t StackPool::freeCount() const {
  size_t N = 0;
  for (const SizeClass &C : Classes)
    N += C.Free.size();
  return N;
}
