//===- state/CoverageTracker.cpp ------------------------------------------===//

#include "state/CoverageTracker.h"

using namespace fsmc;

bool CoverageTracker::record(uint64_t Sig) {
  if (States.insert(Sig))
    return true;
  ++Hits;
  return false;
}

double CoverageTracker::coverageOf(const CoverageTracker &Reference) const {
  if (Reference.States.empty())
    return 1.0;
  uint64_t Covered = 0;
  for (uint64_t S : Reference.States)
    if (States.contains(S))
      ++Covered;
  return double(Covered) / double(Reference.States.size());
}

void CoverageTracker::clear() {
  States.clear();
  Hits = 0;
}
