//===- state/CoverageTracker.h - Distinct-state accounting -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records distinct state signatures across a search -- the "states
/// visited" metric of Table 2 -- and answers coverage queries against a
/// reference set (the paper's "we used this table to check if the
/// subsequent runs cover all of the states").
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_STATE_COVERAGETRACKER_H
#define FSMC_STATE_COVERAGETRACKER_H

#include <cstdint>
#include <unordered_set>

namespace fsmc {

/// A set of visited state signatures with hit statistics.
///
/// Accounting: every record() call lands in exactly one of two buckets.
/// A signature seen for the first time grows distinct(); a repeat
/// sighting increments hits(). So records() == distinct() + hits() is
/// the total number of record() calls, and hits() / records() is the
/// revisit rate -- the fraction stats-json reports as coverage.hit_rate
/// (high on searches that keep reaching already-seen states).
class CoverageTracker {
public:
  /// Records \p Sig. \returns true if it was new.
  bool record(uint64_t Sig);

  bool contains(uint64_t Sig) const { return States.count(Sig) != 0; }
  /// Signatures seen at least once (stats-json coverage.distinct_states).
  uint64_t distinct() const { return States.size(); }
  /// Repeat sightings only: record() calls whose signature was already
  /// present. NOT the total call count -- that is records().
  uint64_t hits() const { return Hits; }
  /// Total record() calls: first sightings plus repeats.
  uint64_t records() const { return Hits + States.size(); }

  /// Fraction of \p Reference's states present here, in [0, 1].
  double coverageOf(const CoverageTracker &Reference) const;

  const std::unordered_set<uint64_t> &states() const { return States; }
  void clear();

private:
  std::unordered_set<uint64_t> States;
  uint64_t Hits = 0;
};

} // namespace fsmc

#endif // FSMC_STATE_COVERAGETRACKER_H
