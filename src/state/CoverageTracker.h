//===- state/CoverageTracker.h - Distinct-state accounting -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records distinct state signatures across a search -- the "states
/// visited" metric of Table 2 -- and answers coverage queries against a
/// reference set (the paper's "we used this table to check if the
/// subsequent runs cover all of the states").
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_STATE_COVERAGETRACKER_H
#define FSMC_STATE_COVERAGETRACKER_H

#include "support/U64Set.h"

#include <cstdint>

namespace fsmc {

/// A set of visited state signatures with hit statistics.
///
/// Accounting: every record() call lands in exactly one of two buckets.
/// A signature seen for the first time grows distinct(); a repeat
/// sighting increments hits(). So records() == distinct() + hits() is
/// the total number of record() calls, and hits() / records() is the
/// revisit rate -- the fraction stats-json reports as coverage.hit_rate
/// (high on searches that keep reaching already-seen states).
class CoverageTracker {
public:
  /// Records \p Sig. \returns true if it was new.
  bool record(uint64_t Sig);

  /// Pre-sizes the signature table (e.g. from a checkpoint's state
  /// count) so long runs never pay a rehash stall mid-search.
  void reserve(size_t N) { States.reserve(N); }

  bool contains(uint64_t Sig) const { return States.contains(Sig); }
  /// Signatures seen at least once (stats-json coverage.distinct_states).
  uint64_t distinct() const { return States.size(); }
  /// Repeat sightings only: record() calls whose signature was already
  /// present. NOT the total call count -- that is records().
  uint64_t hits() const { return Hits; }
  /// Total record() calls: first sightings plus repeats.
  uint64_t records() const { return Hits + States.size(); }

  /// Fraction of \p Reference's states present here, in [0, 1].
  double coverageOf(const CoverageTracker &Reference) const;

  const U64Set &states() const { return States; }
  void clear();

private:
  /// Open-addressing flat table (support/U64Set.h): the record() hot
  /// path is one probe, no per-node allocation.
  U64Set States;
  uint64_t Hits = 0;
};

} // namespace fsmc

#endif // FSMC_STATE_COVERAGETRACKER_H
