//===- state/StateBuilder.h - Manual state extraction ----------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helper for writing the per-workload state extractors of Section 4.2.1:
/// "the state of these programs consists of the state of all global
/// variables, the heap, and the stack of all threads ... we had to
/// manually abstract the (infinite) state of the program into a
/// reasonable, finite representation."
///
/// A workload's extractor feeds its logical state -- shared variables,
/// lock holders, per-thread phases -- into a StateBuilder, using the
/// embedded HeapCanonicalizer for pointer-valued data; the digest becomes
/// the state signature the coverage experiments count.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_STATE_STATEBUILDER_H
#define FSMC_STATE_STATEBUILDER_H

#include "state/HeapCanonicalizer.h"
#include "support/Hashing.h"

#include <string_view>

namespace fsmc {

/// Accumulates a state signature. Create a fresh instance per extraction
/// so canonical pointer names restart from zero each time.
class StateBuilder {
public:
  void addU64(uint64_t V) { Hash.addU64(V); }
  void addI64(int64_t V) { Hash.addU64(uint64_t(V)); }
  void addBool(bool B) { Hash.addByte(B ? 1 : 0); }
  void addString(std::string_view S) {
    Hash.addU64(S.size());
    Hash.addString(S);
  }

  /// Adds a pointer by canonical first-visit name, not raw address.
  void addPointer(const void *P) { Hash.addU64(Canon.idOf(P)); }

  /// Marks a structural boundary (e.g. between containers) so that
  /// adjacent fields cannot alias across boundaries.
  void addSeparator() { Hash.addU64(0x5eb0a2d15eb0a2d1ULL); }

  HeapCanonicalizer &canonicalizer() { return Canon; }

  uint64_t digest() const { return Hash.digest(); }

private:
  Fnv1a Hash;
  HeapCanonicalizer Canon;
};

} // namespace fsmc

#endif // FSMC_STATE_STATEBUILDER_H
