//===- state/HeapCanonicalizer.h - Canonical pointer naming ----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical renaming of heap addresses for state signatures.
///
/// Section 4.2.1: "in order to avoid multiple representations of
/// behaviorally equivalent heaps, we used a simple heap-canonicalization
/// algorithm [Iosif, ASE'01]". Two executions that allocate the same
/// logical objects in different orders (or at different addresses, since
/// every execution re-runs the allocator) must produce the same signature.
/// The canonical name of a pointer is its first-visit index in the
/// deterministic traversal order the workload's extractor uses.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_STATE_HEAPCANONICALIZER_H
#define FSMC_STATE_HEAPCANONICALIZER_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace fsmc {

/// Assigns dense canonical ids to pointers in first-visit order. Create a
/// fresh instance per signature computation.
class HeapCanonicalizer {
public:
  /// Canonical id of \p Ptr: 0 for null, otherwise 1 + first-visit index.
  uint64_t idOf(const void *Ptr);

  /// \returns true if \p Ptr has already been named (useful for cycle
  /// detection when walking object graphs).
  bool seen(const void *Ptr) const { return Ids.count(Ptr) != 0; }

  size_t distinctPointers() const { return Ids.size(); }

private:
  std::unordered_map<const void *, uint64_t> Ids;
};

} // namespace fsmc

#endif // FSMC_STATE_HEAPCANONICALIZER_H
