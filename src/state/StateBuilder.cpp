//===- state/StateBuilder.cpp ---------------------------------------------===//
//
// StateBuilder is header-only; this TU anchors the module in the library.
//
//===----------------------------------------------------------------------===//

#include "state/StateBuilder.h"
