//===- state/HeapCanonicalizer.cpp ----------------------------------------===//

#include "state/HeapCanonicalizer.h"

using namespace fsmc;

uint64_t HeapCanonicalizer::idOf(const void *Ptr) {
  if (!Ptr)
    return 0;
  auto [It, Inserted] = Ids.try_emplace(Ptr, Ids.size() + 1);
  (void)Inserted;
  return It->second;
}
