//===- workloads/DiningPhilosophers.h - Figure 1's program -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dining philosophers, the paper's running example.
///
/// Variants:
///  - TryLockRetry: Figure 1 verbatim. Every philosopher acquires its
///    first fork (blocking), TryAcquires the second, and on failure
///    releases and retries after a sleep. The retry loops create cycles in
///    the state space and the symmetric schedule
///        all acquire first / all fail second / all release / repeat
///    is a *fair* livelock -- detected by the fair checker as divergence.
///  - Mixed: philosopher 0 keeps the retry loop, the others acquire both
///    forks in global index order (blocking). Fair-terminating with a
///    cyclic state space: the configuration used for the coverage and
///    search-time experiments (Table 2, Figure 5).
///  - OrderedBlocking: everyone acquires in global order; terminating,
///    used as a correct baseline.
///  - DeadlockProne: everyone blocks on left-then-right; the classic
///    deadlock cycle, used to exercise deadlock detection.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_DININGPHILOSOPHERS_H
#define FSMC_WORKLOADS_DININGPHILOSOPHERS_H

#include "core/Checker.h"

namespace fsmc {

struct DiningConfig {
  enum class Variant { TryLockRetry, Mixed, OrderedBlocking, DeadlockProne };

  int Philosophers = 2;
  Variant Kind = Variant::Mixed;
  /// Meals each philosopher must finish before the test ends (the fair
  /// test-harness bound of Section 2).
  int Meals = 1;
  /// Register the manual state extractor (Section 4.2.1) for coverage
  /// measurements.
  bool CaptureState = true;
};

/// Builds a dining-philosophers test program for \p Config.
TestProgram makeDiningProgram(const DiningConfig &Config);

} // namespace fsmc

#endif // FSMC_WORKLOADS_DININGPHILOSOPHERS_H
