//===- workloads/Ape.h - Asynchronous Processing Environment ---*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An analog of APE, "a library in the Windows operating system that
/// provides a set of data structures and functions for asynchronous
/// multithreaded code" (Table 1: 4 threads).
///
/// Work items are posted to a completion-port-style channel; a pool of
/// worker threads executes them; items can fail transiently (modeled with
/// Runtime::chooseInt, the paper's finitely-branching data nondeterminism)
/// and a retry timer thread reposts them after a back-off sleep. The whole
/// environment is a nonterminating service; the test harness bounds the
/// number of items, making it fair-terminating (Section 2's test-harness
/// discipline).
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_APE_H
#define FSMC_WORKLOADS_APE_H

#include "core/Checker.h"

namespace fsmc {

struct ApeConfig {
  int Workers = 2;
  int Items = 3;
  /// Allow items to fail transiently once and be retried by the timer.
  bool TransientFailures = true;
};

/// Builds the asynchronous-processing-environment test program.
TestProgram makeApeProgram(const ApeConfig &Config);

} // namespace fsmc

#endif // FSMC_WORKLOADS_APE_H
