//===- workloads/WorkStealQueue.cpp ---------------------------------------===//

#include "workloads/WorkStealQueue.h"

#include "runtime/Runtime.h"
#include "state/StateBuilder.h"
#include "sync/Atomic.h"
#include "sync/Mutex.h"
#include "sync/Plain.h"
#include "sync/TestThread.h"

#include <vector>

using namespace fsmc;

namespace {

/// Per-thread abstract pcs for the state extractor.
enum WsqPhase : uint64_t {
  PhasePush = 1,
  PhasePop = 2,
  PhaseStealTry = 3,
  PhaseGotTask = 4,
  PhaseIdle = 5,
  PhaseDone = 6,
};

/// THE-protocol deque over modeled shared variables.
class WsqDeque {
public:
  WsqDeque(int Capacity, WsqBug Bug, bool RacySize)
      : Elems(size_t(Capacity), -1), Head(0, "wsq.head"), Tail(0, "wsq.tail"),
        ForeignLock("wsq.lock"), Size(0, "wsq.size"), RacySize(RacySize),
        Bug(Bug) {}

  /// Owner-only push at the tail.
  void push(int Task) {
    long T = Tail.load();
    checkThat(T - Head.raw() < long(Elems.size()), "wsq overflow");
    Elems[size_t(T) % Elems.size()] = Task;
    Tail.store(T + 1);
    if (RacySize)
      Size.store(Size.raw() + 1); // Racy: written without the lock.
  }

  /// Owner-only pop at the tail. \returns false when empty.
  bool pop(int &Task) {
    long T = Tail.load() - 1;
    Tail.store(T);
    // Publish the tail decrement before reading head. Under
    // --memory=tso|pso the store sits in this thread's store buffer until
    // flushed; without the fence a thief can still read the stale tail
    // after this pop has read head, and both take the last element. Bug1
    // is exactly this missing fence -- the store/load reordering TSO
    // permits. Under sc the fence is a no-op and stores are immediately
    // visible, so the Bug1 variant is indistinguishable from the correct
    // code there: the bug needs a weak memory model to manifest.
    if (Bug != WsqBug::PopReordered)
      fence();
    long H = Head.load();
    if (H <= T) {
      Task = Elems[size_t(T) % Elems.size()];
      return true;
    }
    // Possible conflict with a thief on the last element: reconcile under
    // the lock. Bug3 reuses the stale head value read outside the lock
    // instead of re-reading it; if the thief had only *claimed* the
    // element and then restored head, the stale value makes this pop give
    // up on an element nobody took, and the queue silently strands it.
    ForeignLock.lock();
    long H2 = Bug == WsqBug::PopNoRecheck ? H : Head.load();
    if (H2 <= T) {
      Task = Elems[size_t(T) % Elems.size()];
      ForeignLock.unlock();
      return true;
    }
    Tail.store(T + 1); // Restore: the thief won.
    ForeignLock.unlock();
    return false;
  }

  /// Thief-side steal at the head. \returns false when empty or losing
  /// the race.
  bool steal(int &Task) {
    // Emptiness hint read without any synchronization against the owner's
    // lock-free Size updates: a write/read data race by construction.
    if (RacySize && Size.load() <= 0)
      return false;
    if (!ForeignLock.tryLock())
      return false;
    long H = Head.load();
    Head.store(H + 1); // Claim first; the owner's pop sees the claim.
    // The claim must be visible before probing the tail: the owner's
    // lock-free pop fast path does not take ForeignLock, so under
    // --memory=tso|pso a buffered claim could be missed and the last
    // element taken twice even in the bug-free configuration. (The
    // restore path below needs no fence; the unlock is a fencing op and
    // drains the buffer.)
    fence();
    if (H < Tail.load()) {
      Task = Elems[size_t(H) % Elems.size()];
      if (RacySize)
        Size.store(Size.raw() - 1); // Racy even under the lock: the owner
                                    // never takes it for its updates.
      ForeignLock.unlock();
      return true;
    }
    if (Bug != WsqBug::StealNoRestore)
      Head.store(H); // Bug2 omits this restore, leaking the claim.
    ForeignLock.unlock();
    return false;
  }

  long headRaw() const { return Head.raw(); }
  long tailRaw() const { return Tail.raw(); }
  int elemRaw(size_t I) const { return Elems[I % Elems.size()]; }
  size_t capacity() const { return Elems.size(); }
  Tid lockHolder() const { return ForeignLock.holder(); }

private:
  std::vector<int> Elems;
  Atomic<long> Head;
  Atomic<long> Tail;
  Mutex ForeignLock;
  PlainVar<long> Size; ///< Approximate count; racy when RacySize is on.
  bool RacySize;
  WsqBug Bug;
};

/// Shared harness state.
struct WsqWorld {
  WsqWorld(const WsqConfig &Config)
      : Deque(Config.Capacity, Config.Bug, Config.RacySize),
        Done(false, "wsq.done") {
    Executed.assign(size_t(Config.Tasks), 0);
  }

  WsqDeque Deque;
  Atomic<bool> Done;
  std::vector<int> Executed; ///< Exactly-once accounting per task.
};

void runTask(WsqWorld &W, int Task) {
  checkThat(Task >= 0 && Task < int(W.Executed.size()),
            "wsq produced an out-of-range task");
  ++W.Executed[size_t(Task)];
  checkThat(W.Executed[size_t(Task)] == 1, "wsq task executed twice");
}

} // namespace

TestProgram fsmc::makeWsqProgram(const WsqConfig &Config) {
  TestProgram P;
  P.Name = "wsq-" + std::to_string(Config.Stealers) + "s";
  if (Config.RacySize)
    P.Name += "-racy";
  P.Body = [Config] {
    Runtime &RT = Runtime::current();
    WsqWorld W(Config);

    if (Config.CaptureState)
      RT.setStateExtractor([&W] {
        StateBuilder B;
        long H = W.Deque.headRaw(), T = W.Deque.tailRaw();
        B.addI64(H);
        B.addI64(T);
        for (long I = H; I < T; ++I)
          B.addI64(W.Deque.elemRaw(size_t(I)));
        B.addSeparator();
        B.addI64(W.Deque.lockHolder());
        B.addBool(W.Done.raw());
        for (int E : W.Executed)
          B.addI64(E);
        return B.digest();
      });

    std::vector<TestThread> Thieves;
    for (int I = 0; I < Config.Stealers; ++I)
      Thieves.emplace_back(
          [&W] {
            Runtime &R = Runtime::current();
            // Nonterminating steal loop, made fair-terminating by the
            // harness's Done flag -- the service-loop shape of Section 2.
            while (!W.Done.load()) {
              R.annotate(PhaseStealTry);
              int Task;
              if (W.Deque.steal(Task)) {
                R.annotate(PhaseGotTask);
                runTask(W, Task);
              } else {
                R.annotate(PhaseIdle);
                sleepFor();
              }
            }
            R.annotate(PhaseDone);
          },
          "steal" + std::to_string(I));

    // The main thread is the deque's owner.
    for (int Task = 0; Task < Config.Tasks; ++Task) {
      RT.annotate(PhasePush);
      W.Deque.push(Task);
      if (Config.InterleavePops) {
        RT.annotate(PhasePop);
        int Got;
        if (W.Deque.pop(Got))
          runTask(W, Got);
      }
    }
    RT.annotate(PhasePop);
    int Got;
    while (W.Deque.pop(Got))
      runTask(W, Got);

    W.Done.store(true);
    for (TestThread &Thief : Thieves)
      Thief.join();
    RT.annotate(PhaseDone);

    for (int Task = 0; Task < Config.Tasks; ++Task)
      checkThat(W.Executed[size_t(Task)] == 1,
                "wsq task lost: executed zero times");
  };
  return P;
}
