//===- workloads/CrashFault.h - Fault-injection workload -------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small racy program that injects a process-level fault -- a null
/// dereference, std::abort, or a hard spin -- on one rare interleaving.
/// CHESS's production targets (Section 6) misbehaved exactly like this:
/// the bug is not an assertion the checker can catch in-process but a
/// death of the process itself. This workload exercises --isolate=batch:
/// the sandbox must harvest the fault as Verdict::Crash / Verdict::Hang
/// with a replayable schedule while the search of the remaining
/// interleavings completes.
///
/// The benign configuration (Fault::None) is an ordinary two-writer race
/// check and is safe to run in-process.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_CRASHFAULT_H
#define FSMC_WORKLOADS_CRASHFAULT_H

#include "core/Checker.h"

namespace fsmc {

struct CrashFaultConfig {
  /// What happens on the triggering interleaving.
  enum class Fault {
    None,     ///< Nothing: the benign race-reader configuration.
    NullDeref,///< Dereference null: SIGSEGV, the sandbox sees a crash.
    Abort,    ///< std::abort(): SIGABRT, the sandbox sees a crash.
    Hang,     ///< Spin inside one transition forever: the sandbox
              ///< watchdog kills the child and reports a hang.
    Race,     ///< No process fault; the writers and the reader share a
              ///< plain (unsynchronized) variable instead, seeding the
              ///< data races --races=on must find.
  };
  Fault Kind = Fault::None;
};

/// Builds the fault-injection program. Two writers race a reader; the
/// fault fires only when the reader observes the first writer's value
/// after the second writer already started -- one specific interleaving
/// among dozens, so the search survives several executions before
/// tripping it.
TestProgram makeCrashFaultProgram(const CrashFaultConfig &Config);

} // namespace fsmc

#endif // FSMC_WORKLOADS_CRASHFAULT_H
