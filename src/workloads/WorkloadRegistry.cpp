//===- workloads/WorkloadRegistry.cpp -------------------------------------===//

#include "workloads/WorkloadRegistry.h"

#include "workloads/Ape.h"
#include "workloads/Channels.h"
#include "workloads/CrashFault.h"
#include "workloads/DiningPhilosophers.h"
#include "workloads/Promise.h"
#include "workloads/WorkStealQueue.h"
#include "workloads/WorkerGroup.h"
#include "workloads/minikernel/Kernel.h"

using namespace fsmc;

static std::vector<RegisteredWorkload> buildRegistry() {
  std::vector<RegisteredWorkload> R;

  // Bounded random exploration is enough to measure per-execution
  // characteristics (Table 1 reports maxima per execution, not search
  // results).
  CheckerOptions Sample;
  Sample.Kind = SearchKind::RandomWalk;
  Sample.MaxExecutions = 20;
  Sample.DetectDivergence = true;

  {
    DiningConfig C;
    C.Philosophers = 3;
    C.Kind = DiningConfig::Variant::Mixed;
    R.push_back({"Dining Philosophers",
                 "Dining Philosophers (54 LOC, 3 threads)",
                 {"src/workloads/DiningPhilosophers.h",
                  "src/workloads/DiningPhilosophers.cpp"},
                 [C] { return makeDiningProgram(C); },
                 Sample});
  }
  {
    WsqConfig C;
    C.Stealers = 2;
    C.Tasks = 3;
    R.push_back({"Work-Stealing Queue",
                 "Work-Stealing Queue (1266 LOC, 3 threads)",
                 {"src/workloads/WorkStealQueue.h",
                  "src/workloads/WorkStealQueue.cpp"},
                 [C] { return makeWsqProgram(C); },
                 Sample});
  }
  {
    PromiseConfig C;
    C.Cells = 3;
    R.push_back({"Promise",
                 "Promise (14044 LOC, 3 threads)",
                 {"src/workloads/Promise.h", "src/workloads/Promise.cpp"},
                 [C] { return makePromiseProgram(C); },
                 Sample});
  }
  {
    ApeConfig C;
    R.push_back({"APE",
                 "APE (18947 LOC, 4 threads)",
                 {"src/workloads/Ape.h", "src/workloads/Ape.cpp"},
                 [C] { return makeApeProgram(C); },
                 Sample});
  }
  {
    ChannelsConfig C;
    C.Producers = 2;
    C.Consumers = 2;
    C.Messages = 2;
    R.push_back({"Dryad Channels",
                 "Dryad Channels (16036 LOC, 5 threads)",
                 {"src/workloads/Channels.h", "src/workloads/Channels.cpp"},
                 [C] { return makeChannelsProgram(C); },
                 Sample});
  }
  {
    FifoMuxConfig C;
    C.Inputs = 12;
    R.push_back({"Dryad Fifo",
                 "Dryad Fifo (18093 LOC, 25 threads)",
                 {"src/workloads/Channels.h", "src/workloads/Channels.cpp"},
                 [C] { return makeFifoMuxProgram(C); },
                 Sample});
  }
  {
    minikernel::KernelConfig C;
    R.push_back({"Mini-kernel (Singularity)",
                 "Singularity kernel (174601 LOC, 14 threads)",
                 {"src/workloads/minikernel/Kernel.h",
                  "src/workloads/minikernel/Kernel.cpp",
                  "src/workloads/minikernel/Ipc.h",
                  "src/workloads/minikernel/Ipc.cpp",
                  "src/workloads/minikernel/Services.h",
                  "src/workloads/minikernel/Services.cpp"},
                 [C] { return minikernel::makeKernelBootProgram(C); },
                 Sample});
  }
  {
    // Benign configuration only: the faulting variants (segv/abort/hang)
    // are reserved for --isolate=batch runs via the fsmc_run catalogue;
    // a registry enumerator must be safe to run in-process.
    CrashFaultConfig C;
    C.Kind = CrashFaultConfig::Fault::None;
    R.push_back({"Crash Fault",
                 "Section 6 unattended-run fault injection",
                 {"src/workloads/CrashFault.h",
                  "src/workloads/CrashFault.cpp"},
                 [C] { return makeCrashFaultProgram(C); },
                 Sample});
  }
  {
    WorkerGroupConfig C;
    C.ShutdownSpinBug = false;
    R.push_back({"Worker Group",
                 "Section 4.3.1 parallel-task library",
                 {"src/workloads/WorkerGroup.h",
                  "src/workloads/WorkerGroup.cpp"},
                 [C] { return makeWorkerGroupProgram(C); },
                 Sample});
  }
  return R;
}

const std::vector<RegisteredWorkload> &fsmc::allWorkloads() {
  static const std::vector<RegisteredWorkload> Registry = buildRegistry();
  return Registry;
}
