//===- workloads/WorkloadRegistry.h - All evaluation programs --*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of the evaluation programs in their Table 1 configurations,
/// so benches and examples can enumerate them uniformly: the Table 1 rows
/// (Dining Philosophers, Work-Stealing Queue, Promise, APE, Dryad
/// Channels, Dryad Fifo, Singularity kernel) mapped to this repository's
/// workloads.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_WORKLOADREGISTRY_H
#define FSMC_WORKLOADS_WORKLOADREGISTRY_H

#include "core/Checker.h"

#include <functional>
#include <string>
#include <vector>

namespace fsmc {

/// One registered evaluation program.
struct RegisteredWorkload {
  /// Row label, matching Table 1 where applicable.
  std::string Name;
  std::string PaperCounterpart;
  /// Source files (relative to the repository root) whose line count
  /// stands in for Table 1's "LOC" column.
  std::vector<std::string> SourceFiles;
  /// Builds the workload in its Table 1 configuration.
  std::function<TestProgram()> Make;
  /// A bounded search configuration suitable for measuring the program's
  /// per-execution characteristics (threads, sync ops).
  CheckerOptions MeasureOptions;
};

/// All registered workloads, in Table 1 order.
const std::vector<RegisteredWorkload> &allWorkloads();

} // namespace fsmc

#endif // FSMC_WORKLOADS_WORKLOADREGISTRY_H
