//===- workloads/Promise.cpp ----------------------------------------------===//

#include "workloads/Promise.h"

#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <memory>
#include <vector>

using namespace fsmc;

namespace {

/// One write-once promise cell with a spin-then-sleep reader.
class PromiseCell {
public:
  PromiseCell(int Index, bool StaleReadBug)
      : State(0, "promise" + std::to_string(Index) + ".state"),
        StaleReadBug(StaleReadBug) {}

  /// Publishes \p V; may be called once.
  void set(int V) {
    Value = V;
    int Old = State.exchange(1);
    checkThat(Old == 0, "promise set twice");
  }

  /// Blocks (spinning with sleep back-off) until set, then returns the
  /// value.
  int get() {
    // Fast path: the "common case" of Figure 8.
    int Temp = State.load();
    if (Temp == 1)
      return Value;
    if (StaleReadBug) {
      // Figure 8: "BUG: should read x once again". The loop waits on the
      // stale local copy; it yields each iteration, so the resulting
      // divergence is *fair* -- a livelock.
      while (Temp != 1)
        sleepFor();
      return Value;
    }
    while (State.load() != 1)
      sleepFor();
    return Value;
  }

private:
  Atomic<int> State; ///< 0 = empty, 1 = set.
  int Value = 0;     ///< Published before State, read after.
  bool StaleReadBug;
};

} // namespace

TestProgram fsmc::makePromiseProgram(const PromiseConfig &Config) {
  TestProgram P;
  P.Name = Config.StaleReadBug ? "promise-livelock" : "promise";
  P.Body = [Config] {
    std::vector<std::unique_ptr<PromiseCell>> Cells;
    for (int I = 0; I < Config.Cells; ++I)
      Cells.push_back(std::make_unique<PromiseCell>(I, Config.StaleReadBug));

    Atomic<int> ProducerProgress(0, "producer.progress");

    TestThread Producer(
        [&Cells, &ProducerProgress, &Config] {
          for (int I = 0; I < int(Cells.size()); ++I) {
            // Simulated data-parallel work before the result is ready.
            for (int W = 0; W < Config.ProducerWork; ++W)
              ProducerProgress.fetchAdd(1);
            Cells[size_t(I)]->set(100 + I);
          }
        },
        "producer");

    // The main thread consumes every promise in order.
    for (int I = 0; I < int(Cells.size()); ++I) {
      int V = Cells[size_t(I)]->get();
      checkThat(V == 100 + I, "promise delivered the wrong value");
    }
    Producer.join();
  };
  return P;
}
