//===- workloads/minikernel/Kernel.h - Boot and shutdown -------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-kernel: the Singularity-boot analog of Section 4.1 ("we have
/// successfully booted the Singularity operating system under the control
/// of CHESS") and the Table 1 "Singularity kernel" row.
///
/// The boot harness drives the full lifecycle under the checker:
///   1. boot: start the memory, name, I/O and timer services; wait for
///      each to signal readiness;
///   2. run: launch user processes that exercise the services over IPC;
///   3. shutdown: stop the timer, close every service port, join all
///      threads;
///   4. audit: memory balance zero, name table empty, every request
///      served, every app's I/O in the device log.
///
/// Every service is a nonterminating loop and the timer spins forever by
/// design -- without the fair scheduler, no stateless search of this
/// program terminates, which is exactly the paper's motivation.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_MINIKERNEL_KERNEL_H
#define FSMC_WORKLOADS_MINIKERNEL_KERNEL_H

#include "core/Checker.h"

namespace fsmc {
namespace minikernel {

struct KernelConfig {
  /// User processes launched after boot. 9 apps + 4 services + main = 14
  /// threads, the Table 1 "Singularity kernel" thread count.
  int Apps = 9;
  int MemoryPages = 16;
  bool WithTimer = true;
};

/// Builds the boot/run/shutdown test program for the mini-kernel.
TestProgram makeKernelBootProgram(const KernelConfig &Config);

} // namespace minikernel
} // namespace fsmc

#endif // FSMC_WORKLOADS_MINIKERNEL_KERNEL_H
