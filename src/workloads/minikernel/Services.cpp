//===- workloads/minikernel/Services.cpp ----------------------------------===//

#include "workloads/minikernel/Services.h"

#include "runtime/Runtime.h"
#include "sync/TestThread.h"

using namespace fsmc;
using namespace fsmc::minikernel;

//===----------------------------------------------------------------------===
// MemoryService
//===----------------------------------------------------------------------===

MemoryService::MemoryService(int Pages, std::string Name)
    : Requests(/*Capacity=*/4, Name + ".port"),
      Ready(Event::Reset::Manual, false, Name + ".ready"),
      PageUsed(size_t(Pages), false) {}

void MemoryService::run() {
  Ready.set();
  Message Msg;
  while (Requests.recv(Msg)) {
    ++Served;
    switch (Msg.Op) {
    case OpAlloc: {
      int Page = -1;
      for (size_t I = 0; I < PageUsed.size(); ++I)
        if (!PageUsed[I]) {
          Page = int(I);
          break;
        }
      checkThat(Page >= 0, "kernel out of memory pages");
      PageUsed[size_t(Page)] = true;
      ++Balance;
      rpcReply(Msg, Page);
      break;
    }
    case OpFree: {
      int Page = Msg.A;
      bool OK = Page >= 0 && Page < int(PageUsed.size()) &&
                PageUsed[size_t(Page)];
      checkThat(OK, "double free or bad free in kernel memory service");
      PageUsed[size_t(Page)] = false;
      --Balance;
      rpcReply(Msg, 1);
      break;
    }
    default:
      checkThat(false, "memory service: unknown opcode");
    }
  }
}

//===----------------------------------------------------------------------===
// NameService
//===----------------------------------------------------------------------===

NameService::NameService(std::string Name)
    : Requests(/*Capacity=*/4, Name + ".port"),
      Ready(Event::Reset::Manual, false, Name + ".ready") {}

void NameService::run() {
  Ready.set();
  Message Msg;
  while (Requests.recv(Msg)) {
    ++Served;
    switch (Msg.Op) {
    case OpRegister: {
      bool Fresh = Table.emplace(Msg.A, Msg.B).second;
      checkThat(Fresh, "name registered twice");
      rpcReply(Msg, 1);
      break;
    }
    case OpLookup: {
      auto It = Table.find(Msg.A);
      rpcReply(Msg, It == Table.end() ? -1 : It->second);
      break;
    }
    case OpUnregister: {
      size_t Erased = Table.erase(Msg.A);
      rpcReply(Msg, Erased ? 1 : 0);
      break;
    }
    default:
      checkThat(false, "name service: unknown opcode");
    }
  }
}

//===----------------------------------------------------------------------===
// IoService
//===----------------------------------------------------------------------===

IoService::IoService(std::string Name)
    : Requests(/*Capacity=*/4, Name + ".port"),
      Ready(Event::Reset::Manual, false, Name + ".ready") {}

void IoService::run() {
  Ready.set();
  Message Msg;
  while (Requests.recv(Msg)) {
    ++Served;
    switch (Msg.Op) {
    case OpWrite:
      Log.push_back(Msg.A);
      rpcReply(Msg, 1);
      break;
    case OpRead:
      rpcReply(Msg, Log.empty() ? -1 : Log.back());
      break;
    default:
      checkThat(false, "io service: unknown opcode");
    }
  }
}

//===----------------------------------------------------------------------===
// TimerService
//===----------------------------------------------------------------------===

TimerService::TimerService(std::string Name)
    : StopFlag(false, Name + ".stop"),
      Ready(Event::Reset::Manual, false, Name + ".ready") {}

void TimerService::run() {
  Ready.set();
  // The canonical nonterminating kernel loop: tick, sleep, repeat. Under
  // an unfair scheduler this loop alone makes the boot test diverge; the
  // yielding sleep keeps it good-samaritan conforming so the fair
  // scheduler can drive the rest of the kernel around it.
  while (!StopFlag.load()) {
    ++Ticks;
    sleepFor();
  }
}

//===----------------------------------------------------------------------===
// App processes
//===----------------------------------------------------------------------===

void minikernel::runAppProcess(int Pid, MemoryService &Mem,
                               NameService &Names, IoService &Io) {
  // Allocate a page, publish ourselves, do some I/O, look ourselves up,
  // clean up. Every step checks the service protocol.
  int Page = rpcCall(Mem.port(), OpAlloc);
  checkThat(Page >= 0, "app: alloc failed");

  int RegOK = rpcCall(Names.port(), OpRegister, /*A=*/Pid, /*B=*/Page);
  checkThat(RegOK == 1, "app: register failed");

  int WroteOK = rpcCall(Io.port(), OpWrite, /*A=*/1000 + Pid);
  checkThat(WroteOK == 1, "app: io write failed");

  int Found = rpcCall(Names.port(), OpLookup, /*A=*/Pid);
  checkThat(Found == Page, "app: lookup returned the wrong binding");

  int UnregOK = rpcCall(Names.port(), OpUnregister, /*A=*/Pid);
  checkThat(UnregOK == 1, "app: unregister failed");

  int FreeOK = rpcCall(Mem.port(), OpFree, /*A=*/Page);
  checkThat(FreeOK == 1, "app: free failed");
}
