//===- workloads/minikernel/Services.h - Kernel services -------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-kernel's services: memory manager, name server, I/O service
/// and timer. Each is a nonterminating message loop over a Port -- the
/// shape that made real kernels untestable under stateless checkers
/// before fairness -- brought to fair termination by the kernel's
/// shutdown protocol (close the port, join the thread).
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_MINIKERNEL_SERVICES_H
#define FSMC_WORKLOADS_MINIKERNEL_SERVICES_H

#include "sync/Atomic.h"
#include "sync/Event.h"
#include "workloads/minikernel/Ipc.h"

#include <map>
#include <vector>

namespace fsmc {
namespace minikernel {

/// Request opcodes understood by the services.
enum ServiceOp : int {
  OpAlloc = 1,  ///< Memory: allocate one page; reply = page id.
  OpFree = 2,   ///< Memory: free page A; reply = 1 ok / 0 bad free.
  OpRegister = 3, ///< Names: bind key A -> value B; reply = 1.
  OpLookup = 4,   ///< Names: reply = value of key A, or -1.
  OpUnregister = 5, ///< Names: remove key A; reply = 1 ok / 0 missing.
  OpWrite = 6,  ///< I/O: append A to the device log; reply = bytes (1).
  OpRead = 7,   ///< I/O: reply = last value written, or -1.
};

/// The memory manager: a page allocator with double-free detection.
class MemoryService {
public:
  MemoryService(int Pages, std::string Name = "mem");

  /// The service loop; runs until the port closes.
  void run();

  Port &port() { return Requests; }
  Event &ready() { return Ready; }
  /// Outstanding allocations; must be 0 after a clean shutdown.
  int balance() const { return Balance; }
  int served() const { return Served; }

private:
  Port Requests;
  Event Ready;
  std::vector<bool> PageUsed;
  int Balance = 0;
  int Served = 0;
};

/// The name server: a key -> value binding table.
class NameService {
public:
  explicit NameService(std::string Name = "names");

  void run();

  Port &port() { return Requests; }
  Event &ready() { return Ready; }
  size_t bindings() const { return Table.size(); }
  int served() const { return Served; }

private:
  Port Requests;
  Event Ready;
  std::map<int, int> Table;
  int Served = 0;
};

/// The I/O service: an append-only device log.
class IoService {
public:
  explicit IoService(std::string Name = "io");

  void run();

  Port &port() { return Requests; }
  Event &ready() { return Ready; }
  int served() const { return Served; }
  const std::vector<int> &log() const { return Log; }

private:
  Port Requests;
  Event Ready;
  std::vector<int> Log;
  int Served = 0;
};

/// The timer: ticks (with a yielding sleep) until told to stop. Pure
/// background noise, exactly like a kernel's preemption timer -- the kind
/// of thread that makes the state space cyclic.
class TimerService {
public:
  explicit TimerService(std::string Name = "timer");

  void run();
  void requestStop() { StopFlag.store(true); }

  Event &ready() { return Ready; }
  int ticks() const { return Ticks; }

private:
  Atomic<bool> StopFlag;
  Event Ready;
  int Ticks = 0;
};

/// One user process: allocates memory, registers itself with the name
/// server, performs I/O, looks itself up, releases everything, exits.
/// Reports protocol violations via checkThat.
void runAppProcess(int Pid, MemoryService &Mem, NameService &Names,
                   IoService &Io);

} // namespace minikernel
} // namespace fsmc

#endif // FSMC_WORKLOADS_MINIKERNEL_SERVICES_H
