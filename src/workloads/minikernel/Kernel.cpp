//===- workloads/minikernel/Kernel.cpp ------------------------------------===//

#include "workloads/minikernel/Kernel.h"

#include "runtime/Runtime.h"
#include "sync/TestThread.h"
#include "workloads/minikernel/Services.h"

#include <vector>

using namespace fsmc;
using namespace fsmc::minikernel;

TestProgram minikernel::makeKernelBootProgram(const KernelConfig &Config) {
  TestProgram P;
  P.Name = "minikernel-boot";
  P.Body = [Config] {
    // ---- Phase 1: boot. Construct services and start their threads.
    MemoryService Mem(Config.MemoryPages);
    NameService Names;
    IoService Io;
    TimerService Timer;

    TestThread MemThread([&Mem] { Mem.run(); }, "svc.mem");
    TestThread NameThread([&Names] { Names.run(); }, "svc.names");
    TestThread IoThread([&Io] { Io.run(); }, "svc.io");
    TestThread TimerThread;
    if (Config.WithTimer)
      TimerThread = TestThread([&Timer] { Timer.run(); }, "svc.timer");

    // The boot thread waits for every service to come up, like a kernel
    // waiting on driver initialization.
    Mem.ready().wait();
    Names.ready().wait();
    Io.ready().wait();
    if (Config.WithTimer)
      Timer.ready().wait();

    // ---- Phase 2: run user processes.
    std::vector<TestThread> Apps;
    for (int Pid = 0; Pid < Config.Apps; ++Pid)
      Apps.emplace_back(
          [Pid, &Mem, &Names, &Io] { runAppProcess(Pid, Mem, Names, Io); },
          "app" + std::to_string(Pid));
    for (TestThread &App : Apps)
      App.join();

    // ---- Phase 3: shutdown. Stop the timer, close service ports, join.
    if (Config.WithTimer) {
      Timer.requestStop();
      TimerThread.join();
    }
    Mem.port().close();
    Names.port().close();
    Io.port().close();
    MemThread.join();
    NameThread.join();
    IoThread.join();

    // ---- Phase 4: audit kernel invariants.
    checkThat(Mem.balance() == 0, "kernel shutdown leaked memory pages");
    checkThat(Names.bindings() == 0, "kernel shutdown leaked name bindings");
    checkThat(Mem.served() == Config.Apps * 2,
              "memory service lost requests");
    checkThat(Names.served() == Config.Apps * 3,
              "name service lost requests");
    checkThat(Io.served() == Config.Apps, "io service lost requests");
    checkThat(int(Io.log().size()) == Config.Apps,
              "device log incomplete after shutdown");
  };
  return P;
}
