//===- workloads/minikernel/Ipc.h - Kernel message ports -------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Message ports for the mini-kernel, modeled after Singularity's channel
/// based IPC (the paper's headline demo is booting Singularity under
/// CHESS; Singularity processes communicate exclusively over channels).
///
/// A Port is a bounded mailbox of Messages; rpcCall performs the
/// request/reply pattern every kernel service uses: post a request
/// carrying a reply slot and a one-shot event, then block on the event.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_MINIKERNEL_IPC_H
#define FSMC_WORKLOADS_MINIKERNEL_IPC_H

#include "sync/CondVar.h"
#include "sync/Event.h"
#include "sync/Mutex.h"

#include <string>
#include <vector>

namespace fsmc {
namespace minikernel {

/// One kernel IPC message. Reply delivery writes *ReplySlot then sets
/// *Reply; both point into the caller's frame, which stays alive while it
/// blocks on the event.
struct Message {
  int Op = 0;
  int A = 0;
  int B = 0;
  int *ReplySlot = nullptr;
  Event *Reply = nullptr;
};

/// A bounded MPSC/MPMC mailbox with close semantics.
class Port {
public:
  Port(int Capacity, std::string Name);

  /// Posts \p Msg, blocking while the mailbox is full. Posting to a
  /// closed port is a safety violation (kernel protocol error).
  void send(const Message &Msg);

  /// Receives into \p Msg; blocks while empty; \returns false once the
  /// port is closed and drained.
  bool recv(Message &Msg);

  /// Closes the port; blocked receivers drain and finish.
  void close();

private:
  Mutex M;
  CondVar NotEmpty;
  CondVar NotFull;
  std::vector<Message> Buf;
  size_t Capacity;
  size_t Count = 0;
  size_t Hd = 0;
  bool Closed = false;
};

/// Sends the request (Op, A, B) on \p P and blocks until the service
/// replies. \returns the reply value.
int rpcCall(Port &P, int Op, int A = 0, int B = 0);

/// Replies to \p Msg with \p Result (service side).
void rpcReply(const Message &Msg, int Result);

} // namespace minikernel
} // namespace fsmc

#endif // FSMC_WORKLOADS_MINIKERNEL_IPC_H
