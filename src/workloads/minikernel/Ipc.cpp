//===- workloads/minikernel/Ipc.cpp ---------------------------------------===//

#include "workloads/minikernel/Ipc.h"

#include "runtime/Runtime.h"

using namespace fsmc;
using namespace fsmc::minikernel;

Port::Port(int Capacity, std::string Name)
    : M(Name + ".lock"), NotEmpty(Name + ".notempty"),
      NotFull(Name + ".notfull"), Buf(size_t(Capacity)),
      Capacity(size_t(Capacity)) {
  assert(Capacity > 0 && "port capacity must be positive");
}

void Port::send(const Message &Msg) {
  M.lock();
  while (Count == Capacity && !Closed)
    NotFull.wait(M);
  checkThat(!Closed, "send on a closed kernel port");
  Buf[(Hd + Count) % Capacity] = Msg;
  ++Count;
  NotEmpty.notifyOne();
  M.unlock();
}

bool Port::recv(Message &Msg) {
  M.lock();
  while (Count == 0 && !Closed)
    NotEmpty.wait(M);
  if (Count == 0 && Closed) {
    M.unlock();
    return false;
  }
  Msg = Buf[Hd];
  Hd = (Hd + 1) % Capacity;
  --Count;
  NotFull.notifyOne();
  M.unlock();
  return true;
}

void Port::close() {
  M.lock();
  Closed = true;
  NotEmpty.notifyAll();
  NotFull.notifyAll();
  M.unlock();
}

int minikernel::rpcCall(Port &P, int Op, int A, int B) {
  // Reply plumbing lives on the caller's stack; the caller blocks on the
  // event until the service has written the slot and set the event.
  int Slot = 0;
  Event Done(Event::Reset::Auto, false, "rpc.done");
  Message Msg;
  Msg.Op = Op;
  Msg.A = A;
  Msg.B = B;
  Msg.ReplySlot = &Slot;
  Msg.Reply = &Done;
  P.send(Msg);
  Done.wait();
  return Slot;
}

void minikernel::rpcReply(const Message &Msg, int Result) {
  checkThat(Msg.ReplySlot && Msg.Reply, "rpcReply on a one-way message");
  *Msg.ReplySlot = Result; // Plain write: the event publishes it.
  Msg.Reply->set();
}
