//===- workloads/Ape.cpp --------------------------------------------------===//

#include "workloads/Ape.h"

#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/Mutex.h"
#include "sync/TestThread.h"
#include "workloads/Channels.h"

#include <vector>

using namespace fsmc;

namespace {

/// Shared environment state. The work queue carries item indices; the
/// retry queue carries items whose first attempt failed transiently.
struct ApeWorld {
  explicit ApeWorld(const ApeConfig &Config)
      : Work(/*Capacity=*/Config.Items + 1, ChannelBug::None, "ape.work"),
        Retry(/*Capacity=*/Config.Items + 1, ChannelBug::None, "ape.retry"),
        Completed(0, "ape.completed"), StatsLock("ape.stats") {
    Attempts.assign(size_t(Config.Items), 0);
    DoneFlags.assign(size_t(Config.Items), 0);
  }

  Channel Work;
  Channel Retry;
  Atomic<int> Completed;
  Mutex StatsLock;
  std::vector<int> Attempts;
  std::vector<int> DoneFlags;
};

/// Executes one item; returns false on a (chosen) transient failure.
bool processItem(ApeWorld &W, int Item, bool AllowFailure) {
  Runtime &RT = Runtime::current();
  W.StatsLock.lock();
  ++W.Attempts[size_t(Item)];
  bool FirstAttempt = W.Attempts[size_t(Item)] == 1;
  W.StatsLock.unlock();

  // Data nondeterminism: the checker explores both the success and the
  // transient-failure outcome of a first attempt.
  if (AllowFailure && FirstAttempt && RT.chooseInt(2) == 1)
    return false;

  W.StatsLock.lock();
  checkThat(W.DoneFlags[size_t(Item)] == 0, "APE item completed twice");
  W.DoneFlags[size_t(Item)] = 1;
  W.StatsLock.unlock();
  W.Completed.fetchAdd(1);
  return true;
}

} // namespace

TestProgram fsmc::makeApeProgram(const ApeConfig &Config) {
  TestProgram P;
  P.Name = "ape";
  P.Body = [Config] {
    ApeWorld W(Config);

    std::vector<TestThread> Workers;
    for (int I = 0; I < Config.Workers; ++I)
      Workers.emplace_back(
          [&W, &Config] {
            int Item;
            while (W.Work.recv(Item)) {
              if (!processItem(W, Item, Config.TransientFailures))
                W.Retry.send(Item); // Defer to the retry timer.
            }
          },
          "worker" + std::to_string(I));

    // The retry timer: sleeps (yielding) and reposts failed items.
    TestThread Timer(
        [&W] {
          int Item;
          while (W.Retry.recv(Item)) {
            sleepFor(); // Back-off before the retry.
            W.Work.send(Item);
          }
        },
        "timer");

    for (int Item = 0; Item < Config.Items; ++Item)
      W.Work.send(Item);

    // Wait for all completions (yielding poll), then shut down: the retry
    // channel closes first so the timer exits, then the work channel.
    while (W.Completed.load() < Config.Items)
      sleepFor();
    W.Retry.close();
    Timer.join();
    W.Work.close();
    for (TestThread &Worker : Workers)
      Worker.join();

    for (int Item = 0; Item < Config.Items; ++Item)
      checkThat(W.DoneFlags[size_t(Item)] == 1, "APE item never completed");
  };
  return P;
}
