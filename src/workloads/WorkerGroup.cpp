//===- workloads/WorkerGroup.cpp ------------------------------------------===//

#include "workloads/WorkerGroup.h"

#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/Mutex.h"
#include "sync/TestThread.h"

#include <memory>
#include <vector>

using namespace fsmc;

namespace {

constexpr int NoTask = -1;

class WorkerGroup;

/// One worker of the pool, following Figure 7's Worker::Run verbatim.
class Worker {
public:
  Worker(int Index, WorkerGroup &Group)
      : Stop(false, "worker" + std::to_string(Index) + ".stop"),
        Group(Group) {}

  void run();
  void requestStop() { Stop.store(true); }

  Atomic<bool> Stop;
  int TasksRun = 0;

private:
  WorkerGroup &Group;
};

/// The group of Figure 7: a shared task queue and a group-wide stop flag.
class WorkerGroup {
public:
  WorkerGroup(const WorkerGroupConfig &Config)
      : Stop(false, "group.stop"), QueueLock("group.queue"),
        Buggy(Config.ShutdownSpinBug) {
    for (int I = 0; I < Config.Workers * Config.TasksPerWorker; ++I)
      Tasks.push_back(I);
  }

  /// Figure 7's WorkerGroup::Idle: spin (yielding) until work appears or
  /// the group stops. The return path taken when Stop is already true
  /// performs no yield -- the seed of the violation.
  int idle(Worker &W) {
    while (!Stop.load()) {
      int Task = popTask();
      if (Task != NoTask)
        return Task;
      // "No work to be found. Yield to other threads."
      sleepFor(); // YieldExponential analog.
    }
    return NoTask;
  }

  int popTask() {
    QueueLock.lock();
    int Task = NoTask;
    if (!Tasks.empty()) {
      Task = Tasks.back();
      Tasks.pop_back();
    }
    QueueLock.unlock();
    return Task;
  }

  /// Shutdown: the group flag first, each worker's flag second -- the
  /// window Figure 7's violation lives in.
  void shutdown(std::vector<std::unique_ptr<Worker>> &Workers) {
    Stop.store(true);
    for (auto &W : Workers)
      W->requestStop();
  }

  bool buggy() const { return Buggy; }

  Atomic<bool> Stop;
  Mutex QueueLock;
  std::vector<int> Tasks;
  int TotalRun = 0;

private:
  bool Buggy;
};

void Worker::run() {
  // Figure 7's Worker::Run. The repaired variant also honours the group's
  // stop flag in the outer loop, closing the spin window.
  auto stopping = [this] {
    if (Stop.load())
      return true;
    return !Group.buggy() && Group.Stop.raw();
  };
  int Task = Group.popTask();
  while (!stopping()) {
    while (!Stop.load() && Task != NoTask) {
      // Perform task.
      ++TasksRun;
      ++Group.TotalRun;
      Task = Group.popTask();
    }
    if (!Stop.load())
      Task = Group.idle(*this);
  }
}

} // namespace

TestProgram fsmc::makeWorkerGroupProgram(const WorkerGroupConfig &Config) {
  TestProgram P;
  P.Name = "workergroup";
  P.Body = [Config] {
    WorkerGroup Group(Config);
    std::vector<std::unique_ptr<Worker>> Workers;
    for (int I = 0; I < Config.Workers; ++I)
      Workers.push_back(std::make_unique<Worker>(I, Group));

    std::vector<TestThread> Threads;
    for (int I = 0; I < Config.Workers; ++I) {
      Worker *W = Workers[size_t(I)].get();
      Threads.emplace_back([W] { W->run(); }, "worker" + std::to_string(I));
    }

    // Let the pool drain the queue (yielding poll), then shut it down.
    while (Group.TotalRun < Config.Workers * Config.TasksPerWorker)
      sleepFor();
    Group.shutdown(Workers);
    for (TestThread &T : Threads)
      T.join();

    checkThat(Group.TotalRun == Config.Workers * Config.TasksPerWorker,
              "worker group lost tasks");
  };
  return P;
}
