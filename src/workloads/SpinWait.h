//===- workloads/SpinWait.h - Figure 3's spin-loop program -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-thread program of Figure 3: thread t sets x := 1, thread u
/// spins `while (x != 1) yield()`. Its state space has the (a,c)/(a,d)
/// cycle from u's spin loop; the only infinite execution starves t and is
/// unfair, so the program is fair-terminating. The no-yield variant
/// violates the good samaritan property instead.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_SPINWAIT_H
#define FSMC_WORKLOADS_SPINWAIT_H

#include "core/Checker.h"

namespace fsmc {

struct SpinWaitConfig {
  /// Figure 3 has the yield on the spin loop's back edge; turning it off
  /// produces the good-samaritan-violating variant.
  bool WithYield = true;
  /// Number of spinning threads (Figure 3 has one).
  int Spinners = 1;
};

/// Builds the Figure 3 test program.
TestProgram makeSpinWaitProgram(const SpinWaitConfig &Config);

} // namespace fsmc

#endif // FSMC_WORKLOADS_SPINWAIT_H
