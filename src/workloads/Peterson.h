//===- workloads/Peterson.h - Peterson's mutual exclusion ------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Peterson's two-thread mutual-exclusion algorithm, the textbook
/// spin-loop protocol. It is the ideal showcase for fair stateless model
/// checking: the entry protocol busy-waits, so the state space is cyclic
/// and the checker must be fair to terminate; and the two classic ways to
/// get it wrong produce one bug of each liveness/safety class:
///
///  - Correct: flags + turn, yielding spin loop. Fair-terminating;
///    exhaustive fair search proves mutual exclusion.
///  - NoTurn: drop the turn variable. Both threads can raise their flags
///    and then spin forever waiting on each other -- a *fair livelock*
///    (each spinner yields), exactly outcome 3 of the semi-algorithm.
///  - FlagAfterCheck: check the peer's flag before raising your own.
///    Mutual exclusion breaks -- a safety violation.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_PETERSON_H
#define FSMC_WORKLOADS_PETERSON_H

#include "core/Checker.h"

namespace fsmc {

struct PetersonConfig {
  enum class Variant { Correct, NoTurn, FlagAfterCheck };
  Variant Kind = Variant::Correct;
  /// Critical-section entries per thread.
  int Rounds = 1;
  /// Yield on the spin loop's back edge (the good-samaritan idiom);
  /// turning it off makes even the correct variant a GS violator.
  bool YieldInSpin = true;
};

/// Builds the Peterson test program.
TestProgram makePetersonProgram(const PetersonConfig &Config);

} // namespace fsmc

#endif // FSMC_WORKLOADS_PETERSON_H
