//===- workloads/DiningPhilosophers.cpp -----------------------------------===//

#include "workloads/DiningPhilosophers.h"

#include "runtime/Runtime.h"
#include "state/StateBuilder.h"
#include "sync/Mutex.h"
#include "sync/TestThread.h"

#include <memory>
#include <vector>

using namespace fsmc;

namespace {

/// Abstract per-thread pcs recorded via Runtime::annotate for the state
/// extractor. Values are small and disjoint per phase.
enum PhilPhase : uint64_t {
  PhaseHungry = 1,
  PhaseHaveFirst = 2,
  PhaseRetry = 3,
  PhaseEating = 4,
  PhaseDone = 5,
};

/// Shared table state. Lives on the main thread's fiber stack for the
/// whole execution (main joins every philosopher before returning).
struct Table {
  explicit Table(int N) {
    Forks.reserve(N);
    for (int I = 0; I < N; ++I)
      Forks.push_back(std::make_unique<Mutex>("fork" + std::to_string(I)));
    MealsEaten.assign(N, 0);
  }

  std::vector<std::unique_ptr<Mutex>> Forks;
  std::vector<int> MealsEaten;
};

/// Figure 1's philosopher: blocking acquire of the first fork, TryAcquire
/// of the second, release-and-retry on failure.
void retryPhilosopher(Table &T, int Me, Mutex &First, Mutex &Second,
                      int Meals) {
  Runtime &RT = Runtime::current();
  for (int Meal = 0; Meal < Meals; ++Meal) {
    RT.annotate(PhaseHungry);
    while (true) {
      First.lock();
      RT.annotate(PhaseHaveFirst);
      if (Second.tryLock())
        break;
      RT.annotate(PhaseRetry);
      First.unlock();
      // The back-edge sleep keeps the retry loop good-samaritan
      // conforming; Figure 1 elides it but real retry loops back off.
      sleepFor();
    }
    RT.annotate(PhaseEating);
    ++T.MealsEaten[Me];
    Second.unlock();
    First.unlock();
  }
  RT.annotate(PhaseDone);
}

/// A philosopher that acquires both forks blocking, in the given order.
void blockingPhilosopher(Table &T, int Me, Mutex &First, Mutex &Second,
                         int Meals) {
  Runtime &RT = Runtime::current();
  for (int Meal = 0; Meal < Meals; ++Meal) {
    RT.annotate(PhaseHungry);
    First.lock();
    RT.annotate(PhaseHaveFirst);
    Second.lock();
    RT.annotate(PhaseEating);
    ++T.MealsEaten[Me];
    Second.unlock();
    First.unlock();
  }
  RT.annotate(PhaseDone);
}

} // namespace

TestProgram fsmc::makeDiningProgram(const DiningConfig &Config) {
  assert(Config.Philosophers >= 2 && "need at least two philosophers");
  TestProgram P;
  P.Name = "dining-" + std::to_string(Config.Philosophers);
  P.Body = [Config] {
    Runtime &RT = Runtime::current();
    int N = Config.Philosophers;
    Table T(N);

    if (Config.CaptureState)
      RT.setStateExtractor([&T] {
        StateBuilder B;
        for (const auto &F : T.Forks)
          B.addI64(F->holder());
        B.addSeparator();
        for (int Meals : T.MealsEaten)
          B.addI64(Meals);
        return B.digest();
      });

    std::vector<TestThread> Phils;
    for (int I = 0; I < N; ++I) {
      int LeftIdx = I;
      int RightIdx = (I + 1) % N;
      auto Run = [&T, LeftIdx, RightIdx, I, Config] {
        Mutex &Left = *T.Forks[LeftIdx];
        Mutex &Right = *T.Forks[RightIdx];
        Mutex &Lo = LeftIdx < RightIdx ? Left : Right;
        Mutex &Hi = LeftIdx < RightIdx ? Right : Left;
        switch (Config.Kind) {
        case DiningConfig::Variant::TryLockRetry:
          // Figure 1: first = own left fork; neighbours clash on shared
          // forks in opposite orders.
          retryPhilosopher(T, I, Left, Right, Config.Meals);
          return;
        case DiningConfig::Variant::Mixed:
          if (I == 0)
            retryPhilosopher(T, I, Left, Right, Config.Meals);
          else
            blockingPhilosopher(T, I, Lo, Hi, Config.Meals);
          return;
        case DiningConfig::Variant::OrderedBlocking:
          blockingPhilosopher(T, I, Lo, Hi, Config.Meals);
          return;
        case DiningConfig::Variant::DeadlockProne:
          blockingPhilosopher(T, I, Left, Right, Config.Meals);
          return;
        }
      };
      Phils.emplace_back(Run, "phil" + std::to_string(I));
    }

    for (TestThread &Phil : Phils)
      Phil.join();
    for (int I = 0; I < N; ++I) {
      checkThat(T.MealsEaten[I] == Config.Meals,
                "every philosopher must eat the configured meals");
      checkThat(!T.Forks[I]->isHeld(), "all forks released at the end");
    }
  };
  return P;
}
