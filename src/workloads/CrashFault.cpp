//===- workloads/CrashFault.cpp -------------------------------------------===//

#include "workloads/CrashFault.h"

#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/Plain.h"
#include "sync/TestThread.h"

#include <cstdlib>
#include <memory>

using namespace fsmc;

namespace {

[[noreturn]] void hardSpin() {
  // An infinite loop inside a single transition: no visible operation
  // ever runs again, so the execution bound cannot classify it -- only
  // the sandbox watchdog can. The volatile sink keeps the loop a real
  // loop under optimization.
  volatile unsigned Sink = 0;
  for (;;)
    ++Sink;
}

void fire(CrashFaultConfig::Fault Kind) {
  switch (Kind) {
  case CrashFaultConfig::Fault::None:
    return; // Benign configuration: reaching the window is fine.
  case CrashFaultConfig::Fault::NullDeref: {
    volatile int *P = nullptr;
    *P = 42;
    return;
  }
  case CrashFaultConfig::Fault::Abort:
    std::abort();
  case CrashFaultConfig::Fault::Hang:
    hardSpin();
  case CrashFaultConfig::Fault::Race:
    return; // The race is in the variable accesses, not a process fault.
  }
}

} // namespace

TestProgram fsmc::makeCrashFaultProgram(const CrashFaultConfig &Config) {
  TestProgram P;
  switch (Config.Kind) {
  case CrashFaultConfig::Fault::None:
    P.Name = "crashfault-none";
    break;
  case CrashFaultConfig::Fault::NullDeref:
    P.Name = "crashfault-segv";
    break;
  case CrashFaultConfig::Fault::Abort:
    P.Name = "crashfault-abort";
    break;
  case CrashFaultConfig::Fault::Hang:
    P.Name = "crashfault-hang";
    break;
  case CrashFaultConfig::Fault::Race:
    P.Name = "crashfault-race";
    break;
  }
  if (Config.Kind == CrashFaultConfig::Fault::Race) {
    // The same three-thread shape, but the shared variable is plain: both
    // writer/writer and writer/reader pairs conflict with no happens-
    // before edge, so --races=on reports them while the program itself
    // stays assertion-clean on every interleaving.
    P.Body = [] {
      auto X = std::make_shared<PlainVar<int>>(0, "x");
      TestThread W1([X] { X->store(1); }, "w1");
      TestThread W2([X] { X->store(2); }, "w2");
      TestThread Reader([X] {
        int A = X->load();
        checkThat(A >= 0 && A <= 2, "x holds a written value");
      }, "reader");
      W1.join();
      W2.join();
      Reader.join();
      checkThat(X->raw() == 1 || X->raw() == 2, "x holds a writer's value");
    };
    return P;
  }
  P.Body = [Kind = Config.Kind] {
    auto X = std::make_shared<Atomic<int>>(0, "x");
    auto Y = std::make_shared<Atomic<int>>(0, "y");

    // The fault fires only when the reader lands exactly between the
    // first writer's two stores (x already 1, y still 0) -- one narrow
    // window among all interleavings of three threads, so a DFS survives
    // a handful of executions before tripping it.
    TestThread W1([X, Y] {
      X->store(1);
      Y->store(1);
    }, "w1");
    TestThread W2([X] { X->store(2); }, "w2");
    TestThread Reader([X, Y, Kind] {
      int A = X->load();
      int B = Y->load();
      if (A == 1 && B == 0)
        fire(Kind);
    }, "reader");

    W1.join();
    W2.join();
    Reader.join();
    checkThat(X->raw() == 1 || X->raw() == 2, "x holds a writer's value");
  };
  return P;
}
