//===- workloads/Peterson.cpp ---------------------------------------------===//

#include "workloads/Peterson.h"

#include "runtime/Runtime.h"
#include "state/StateBuilder.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

using namespace fsmc;

namespace {

/// Shared protocol state; lives on main's stack for the execution.
struct PetersonState {
  PetersonState()
      : Flag{Atomic<int>(0, "flag0"), Atomic<int>(0, "flag1")},
        Turn(0, "turn"), InCritical(0, "incrit") {}

  Atomic<int> Flag[2];
  Atomic<int> Turn;
  Atomic<int> InCritical;
  int Entries[2] = {0, 0};
};

void contender(PetersonState &S, int Me, const PetersonConfig &Config) {
  Runtime &RT = Runtime::current();
  int Other = 1 - Me;
  for (int Round = 0; Round < Config.Rounds; ++Round) {
    RT.annotate(1);
    switch (Config.Kind) {
    case PetersonConfig::Variant::Correct:
      S.Flag[Me].store(1);
      S.Turn.store(Other);
      while (S.Flag[Other].load() == 1 && S.Turn.load() == Other)
        if (Config.YieldInSpin)
          yieldNow();
      break;
    case PetersonConfig::Variant::NoTurn:
      // Classic broken protocol: both flags up -> both spin forever.
      S.Flag[Me].store(1);
      while (S.Flag[Other].load() == 1)
        if (Config.YieldInSpin)
          yieldNow();
      break;
    case PetersonConfig::Variant::FlagAfterCheck:
      // TOCTOU: the peer can pass its own check before our flag lands.
      while (S.Flag[Other].load() == 1)
        if (Config.YieldInSpin)
          yieldNow();
      S.Flag[Me].store(1);
      break;
    }

    // Critical section: at most one thread may be inside.
    RT.annotate(2);
    int Occupants = S.InCritical.fetchAdd(1);
    checkThat(Occupants == 0, "mutual exclusion violated");
    ++S.Entries[Me];
    S.InCritical.fetchAdd(-1);

    RT.annotate(3);
    S.Flag[Me].store(0);
  }
  RT.annotate(4);
}

} // namespace

TestProgram fsmc::makePetersonProgram(const PetersonConfig &Config) {
  TestProgram P;
  P.Name = "peterson";
  P.Body = [Config] {
    Runtime &RT = Runtime::current();
    PetersonState S;
    RT.setStateExtractor([&S] {
      StateBuilder B;
      B.addI64(S.Flag[0].raw());
      B.addI64(S.Flag[1].raw());
      B.addI64(S.Turn.raw());
      B.addI64(S.InCritical.raw());
      B.addI64(S.Entries[0]);
      B.addI64(S.Entries[1]);
      return B.digest();
    });
    TestThread T0([&S, Config] { contender(S, 0, Config); }, "p0");
    TestThread T1([&S, Config] { contender(S, 1, Config); }, "p1");
    T0.join();
    T1.join();
    checkThat(S.Entries[0] == Config.Rounds && S.Entries[1] == Config.Rounds,
              "every contender must finish its rounds");
  };
  return P;
}
