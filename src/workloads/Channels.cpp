//===- workloads/Channels.cpp ---------------------------------------------===//

#include "workloads/Channels.h"

#include "runtime/Runtime.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <memory>

using namespace fsmc;

Channel::Channel(int Capacity, ChannelBug Bug, std::string Name)
    : M(Name + ".lock"), NotEmpty(Name + ".notempty"),
      NotFull(Name + ".notfull"), Buf(size_t(Capacity), 0),
      Capacity(Capacity), Bug(Bug) {
  assert(Capacity > 0 && "channel capacity must be positive");
}

int Channel::take() {
  checkThat(!Freed, "channel buffer used after close() freed it");
  checkThat(Count > 0, "channel take() on an empty buffer");
  int V = Buf[size_t(Hd)];
  Hd = (Hd + 1) % Capacity;
  --Count;
  return V;
}

void Channel::put(int V) {
  checkThat(!Freed, "channel buffer used after close() freed it");
  checkThat(Count < Capacity, "channel put() on a full buffer");
  Buf[size_t((Hd + Count) % Capacity)] = V;
  ++Count;
}

void Channel::send(int V) {
  M.lock();
  while (Count == Capacity && !Closed)
    NotFull.wait(M);
  if (Closed) {
    // Cancellation semantics: sends racing a close are dropped.
    M.unlock();
    return;
  }
  put(V);
  NotEmpty.notifyOne();
  M.unlock();
  // Bug4: channel statistics are updated after the lock is released. The
  // locked close() (the "fix" for bug 3) does not protect this late
  // write, so a close sliding into this window still frees the channel
  // under the writer -- the paper's previously-unknown bug in the fix.
  if (Bug == ChannelBug::BadCloseFix) {
    checkThat(!Freed, "channel buffer used after close() freed it");
    LastSent = V;
  }
}

bool Channel::recv(int &V) {
  M.lock();
  if (Bug == ChannelBug::IfInsteadOfWhile) {
    // Bug1: a single re-check admits a receiver whose wakeup another
    // receiver consumed, straight past an empty buffer.
    if (Count == 0 && !Closed)
      NotEmpty.wait(M);
  } else {
    while (Count == 0 && !Closed)
      NotEmpty.wait(M);
  }
  if (Count == 0 && Closed) {
    M.unlock();
    return false;
  }
  V = take();
  if (Bug == ChannelBug::LostSignal) {
    // Bug2: "only the full -> not-full transition needs a signal". Wrong:
    // with two senders blocked, draining two slots produces one wakeup
    // and strands the second sender forever -- a missed-wakeup deadlock.
    if (Count == Capacity - 1)
      NotFull.notifyOne();
  } else {
    NotFull.notifyOne();
  }
  M.unlock();
  return true;
}

void Channel::close() {
  if (Bug == ChannelBug::RacyClose) {
    // Bug3: teardown without the lock. A sender or receiver inside its
    // critical section observes the freed buffer.
    Closed = true;
    Freed = true;
    NotEmpty.notifyAll();
    NotFull.notifyAll();
    return;
  }
  M.lock();
  Closed = true;
  if (Bug == ChannelBug::BadCloseFix || Bug == ChannelBug::RacyClose)
    Freed = true;
  NotEmpty.notifyAll();
  NotFull.notifyAll();
  M.unlock();
}

TestProgram fsmc::makeChannelsProgram(const ChannelsConfig &Config) {
  TestProgram P;
  P.Name = "channels";
  P.Body = [Config] {
    Channel Chan(Config.Capacity, Config.Bug, "chan");
    int Total = Config.Producers * Config.Messages;
    // A close threshold below Total exercises the cancellation path:
    // main closes the channel mid-stream and racing sends are dropped.
    int CloseAfter = Config.CloseAfter >= 0 ? Config.CloseAfter : Total;
    std::vector<int> Received(size_t(Total), 0);
    Atomic<int> ReceivedCount(0, "received.count");

    std::vector<TestThread> Producers;
    for (int I = 0; I < Config.Producers; ++I)
      Producers.emplace_back(
          [&Chan, I, &Config] {
            for (int MsgIdx = 0; MsgIdx < Config.Messages; ++MsgIdx)
              Chan.send(I * Config.Messages + MsgIdx);
          },
          "prod" + std::to_string(I));

    std::vector<TestThread> Consumers;
    for (int I = 0; I < Config.Consumers; ++I)
      Consumers.emplace_back(
          [&Chan, &Received, &ReceivedCount, Total] {
            int V;
            while (Chan.recv(V)) {
              checkThat(V >= 0 && V < Total, "received garbage message");
              ++Received[size_t(V)];
              checkThat(Received[size_t(V)] == 1,
                        "message delivered twice");
              ReceivedCount.fetchAdd(1);
            }
          },
          "cons" + std::to_string(I));

    if (CloseAfter == Total) {
      // Normal shutdown: producers must all finish (a stranded sender --
      // bug 2 -- turns this join into a genuine deadlock), then main
      // waits for the drain and closes.
      for (TestThread &Prod : Producers)
        Prod.join();
      while (ReceivedCount.load() < Total)
        sleepFor(); // Yielding spin: Section 4's good-samaritan idiom.
      Chan.close();
    } else {
      // Cancellation: close mid-stream, racing the producers' sends (the
      // window the close() bugs 3 and 4 need).
      while (ReceivedCount.load() < CloseAfter)
        sleepFor();
      Chan.close();
      for (TestThread &Prod : Producers)
        Prod.join();
    }
    for (TestThread &Cons : Consumers)
      Cons.join();

    if (CloseAfter == Total)
      for (int I = 0; I < Total; ++I)
        checkThat(Received[size_t(I)] == 1, "message lost");
  };
  return P;
}

TestProgram fsmc::makeFifoMuxProgram(const FifoMuxConfig &Config) {
  TestProgram P;
  P.Name = "fifomux";
  P.Body = [Config] {
    // One input channel per source; pump threads multiplex every input
    // into the shared output channel. FIFO order per input must survive.
    std::vector<std::unique_ptr<Channel>> Inputs;
    for (int I = 0; I < Config.Inputs; ++I)
      Inputs.push_back(std::make_unique<Channel>(
          Config.Capacity, ChannelBug::None, "in" + std::to_string(I)));
    Channel Output(Config.Capacity * 2, ChannelBug::None, "out");

    std::vector<TestThread> Workers;
    for (int I = 0; I < Config.Inputs; ++I) {
      Workers.emplace_back(
          [&Inputs, I, &Config] {
            for (int MsgIdx = 0; MsgIdx < Config.MessagesPerInput; ++MsgIdx)
              Inputs[size_t(I)]->send(I * 1000 + MsgIdx);
            Inputs[size_t(I)]->close();
          },
          "src" + std::to_string(I));
      Workers.emplace_back(
          [&Inputs, &Output, I] {
            int V;
            while (Inputs[size_t(I)]->recv(V))
              Output.send(V);
          },
          "pump" + std::to_string(I));
    }

    // Main drains the output and checks per-input FIFO order.
    std::vector<int> LastSeen(size_t(Config.Inputs), -1);
    int Expected = Config.Inputs * Config.MessagesPerInput;
    for (int N = 0; N < Expected; ++N) {
      int V;
      bool OK = Output.recv(V);
      checkThat(OK, "output channel closed early");
      int Src = V / 1000, Seq = V % 1000;
      checkThat(Src >= 0 && Src < Config.Inputs, "bad mux source");
      checkThat(Seq > LastSeen[size_t(Src)],
                "per-input FIFO order violated by the mux");
      LastSeen[size_t(Src)] = Seq;
    }
    for (TestThread &W : Workers)
      W.join();
  };
  return P;
}
