//===- workloads/WorkStealQueue.h - Cilk THE work stealing -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing queue of the paper's evaluation: "an implementation
/// [Leijen, MSR-TR-2006-162] of the work-stealing queue algorithm
/// originally designed for the Cilk multithreaded programming system".
///
/// The deque follows the THE protocol: the owner pushes/pops at the tail
/// with a lock-free fast path, thieves steal at the head under a lock;
/// owner and thieves reconcile through the ordering of the tail
/// decrement against the head read, falling back to the lock on conflict.
///
/// Three seeded bugs reproduce the classes of defects CHESS found in the
/// original (Table 3, "WSQ bug 1-3"):
///   Bug1 -- pop omits the fence between publishing its tail decrement
///           and reading head: under --memory=tso|pso the decrement sits
///           in the owner's store buffer while a thief reads the stale
///           tail, and steal and pop both take the last element. Under
///           --memory=sc stores are immediately visible, the fence is a
///           no-op, and this bug CANNOT manifest -- it is the classic
///           missing-fence defect only a weak-memory search exposes
///           (docs/MEMORY.md).
///   Bug2 -- steal forgets to restore head when it loses the race for the
///           last element: that element is leaked and never executed.
///   Bug3 -- pop's lock-protected slow path takes the element without
///           re-checking against head: it can take an element a thief
///           already stole.
///
/// The harness has the owner push and pop N tasks while S thieves loop
/// stealing until the owner finishes (a nonterminating service loop made
/// fair-terminating by the harness); the safety property is that every
/// task executes exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_WORKSTEALQUEUE_H
#define FSMC_WORKLOADS_WORKSTEALQUEUE_H

#include "core/Checker.h"

namespace fsmc {

enum class WsqBug {
  None,
  PopReordered,   ///< Bug1: missing fence after the tail publish in pop;
                  ///< manifests only under --memory=tso|pso.
  StealNoRestore, ///< Bug2: failed steal leaves head incremented.
  PopNoRecheck,   ///< Bug3: locked pop path skips the head re-check.
};

struct WsqConfig {
  int Stealers = 1;
  int Tasks = 2;
  int Capacity = 8;
  WsqBug Bug = WsqBug::None;
  bool CaptureState = true;
  /// Owner pops after every push (interleaved) instead of pushing all
  /// first; widens the reachable interleavings.
  bool InterleavePops = false;
  /// Seeded data race for --races: maintain an approximate element count
  /// in a plain (unsynchronized) shared variable. The owner updates it
  /// lock-free around push/pop while thieves read it as an emptiness hint
  /// and update it on a successful steal, so the counter is torn between
  /// threads with no happens-before edge -- the classic "size field
  /// updated outside the lock" bug. Benign for the harness (the hint only
  /// skips doomed steal attempts), so the program stays bug-free and the
  /// race is the sole finding.
  bool RacySize = false;
};

/// Builds a work-stealing-queue test program for \p Config.
TestProgram makeWsqProgram(const WsqConfig &Config);

} // namespace fsmc

#endif // FSMC_WORKLOADS_WORKSTEALQUEUE_H
