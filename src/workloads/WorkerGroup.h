//===- workloads/WorkerGroup.h - Figure 7's worker pool --------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel-task library of Section 4.3.1, reproducing Figure 7's
/// good-samaritan violation: both Worker and WorkerGroup carry a `stop`
/// flag, and shutdown sets the group's flag before each worker's. In the
/// window where group.stop is true but worker.stop is false,
/// WorkerGroup::idle returns immediately (its yielding loop body never
/// runs) and Worker::run spins through its outer loop without a single
/// yield -- starving, among others, the very thread that would set its
/// stop flag.
///
/// The fixed variant has the worker treat the group's stop as its own.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_WORKERGROUP_H
#define FSMC_WORKLOADS_WORKERGROUP_H

#include "core/Checker.h"

namespace fsmc {

struct WorkerGroupConfig {
  int Workers = 2;
  int TasksPerWorker = 1;
  /// Reproduce Figure 7's spin-without-yield shutdown window; false
  /// builds the repaired library.
  bool ShutdownSpinBug = true;
};

/// Builds the worker-group test program.
TestProgram makeWorkerGroupProgram(const WorkerGroupConfig &Config);

} // namespace fsmc

#endif // FSMC_WORKLOADS_WORKERGROUP_H
