//===- workloads/Promise.h - Data-parallel promises (Fig. 8) ---*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small promise library in the style of the paper's Promise subject, "a
/// library for data-parallel programs ... optimized for efficiency and
/// selectively uses low-level hardware primitives".
///
/// A promise cell is set once by a producer and read by consumers that
/// spin with a Sleep(1) back-off -- the idiom of Figure 8. The seeded
/// livelock reproduces Figure 8 exactly: for performance the consumer
/// caches the shared state word in a local, and the buggy wait loop spins
/// on the *stale local copy* without re-reading the global. The loop
/// yields (Sleep), so the divergence is fair: a livelock, not a
/// good-samaritan violation. It only manifests when the "common cases"
/// (value already available) are inapplicable, i.e. when the consumer
/// arrives before the producer -- the rare interleaving the paper
/// mentions.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_PROMISE_H
#define FSMC_WORKLOADS_PROMISE_H

#include "core/Checker.h"

namespace fsmc {

struct PromiseConfig {
  /// Number of promises chained producer -> consumer.
  int Cells = 2;
  /// Seed the Figure 8 stale-read livelock in the consumer's wait loop.
  bool StaleReadBug = false;
  /// Extra work transitions in the producer before each set, to widen the
  /// window in which the consumer's fast path misses.
  int ProducerWork = 1;
};

/// Builds a promise-library test program for \p Config.
TestProgram makePromiseProgram(const PromiseConfig &Config);

} // namespace fsmc

#endif // FSMC_WORKLOADS_PROMISE_H
