//===- workloads/SpinWait.cpp ---------------------------------------------===//

#include "workloads/SpinWait.h"

#include "runtime/Runtime.h"
#include "state/StateBuilder.h"
#include "sync/Atomic.h"
#include "sync/TestThread.h"

#include <memory>
#include <vector>

using namespace fsmc;

TestProgram fsmc::makeSpinWaitProgram(const SpinWaitConfig &Config) {
  TestProgram P;
  P.Name = Config.WithYield ? "spinwait" : "spinwait-noyield";
  P.Body = [Config] {
    Runtime &RT = Runtime::current();
    auto X = std::make_shared<Atomic<int>>(0, "x");
    RT.setStateExtractor([X] {
      StateBuilder B;
      B.addU64(uint64_t(X->raw()));
      return B.digest();
    });

    TestThread Setter([X] { X->store(1); }, "t");
    std::vector<TestThread> Spinners;
    bool WithYield = Config.WithYield;
    for (int I = 0; I < Config.Spinners; ++I)
      Spinners.emplace_back(
          [X, WithYield] {
            while (X->load() != 1)
              if (WithYield)
                yieldNow();
          },
          "u" + std::to_string(I));

    Setter.join();
    for (TestThread &S : Spinners)
      S.join();
    checkThat(X->raw() == 1, "x must be 1 after the setter ran");
  };
  return P;
}
