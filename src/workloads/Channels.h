//===- workloads/Channels.h - Dryad-style channel library ------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded FIFO channel library modeled on the channels of Dryad, "a
/// distributed execution engine for coarse-grained data-parallel
/// applications", which the paper checks unmodified (Table 1 "Dryad
/// Channels" / "Dryad Fifo"; Table 3 "Dryad bug 1-4").
///
/// Four seeded bugs reproduce the Table 3 defect classes:
///   Bug1 (IfInsteadOfWhile)  -- the receiver re-checks its wait condition
///        with `if` instead of `while`; with two receivers a batched
///        wakeup admits one past an empty buffer.
///   Bug2 (LostSignal)        -- the sender only signals when the buffer
///        transitions empty -> nonempty; a second blocked receiver sleeps
///        forever: a missed-wakeup deadlock.
///   Bug3 (RacyClose)         -- close() tears the channel down without
///        taking the lock; a receiver inside its critical section touches
///        freed buffer memory.
///   Bug4 (BadCloseFix)       -- the "fix" for bug 3 locks close(), but
///        the sender still updates channel statistics after releasing the
///        lock; the narrower race needs a deeper interleaving, matching
///        the paper's previously-unknown bug found in the fix of bug 3.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_WORKLOADS_CHANNELS_H
#define FSMC_WORKLOADS_CHANNELS_H

#include "core/Checker.h"
#include "sync/CondVar.h"
#include "sync/Mutex.h"

#include <string>
#include <vector>

namespace fsmc {

enum class ChannelBug {
  None,
  IfInsteadOfWhile, ///< Bug1.
  LostSignal,       ///< Bug2.
  RacyClose,        ///< Bug3.
  BadCloseFix,      ///< Bug4.
};

/// A bounded multi-producer multi-consumer FIFO channel. Construct inside
/// a test execution only.
class Channel {
public:
  Channel(int Capacity, ChannelBug Bug, std::string Name = "chan");

  /// Sends \p V, blocking while the buffer is full. Sending on a closed
  /// channel is a safety violation.
  void send(int V);

  /// Receives into \p V, blocking while the buffer is empty and the
  /// channel is open. \returns false once the channel is closed and
  /// drained.
  bool recv(int &V);

  /// Closes the channel and wakes all blocked receivers.
  void close();

  int size() const { return Count; }
  bool closed() const { return Closed; }

private:
  int take();
  void put(int V);

  Mutex M;
  CondVar NotEmpty;
  CondVar NotFull;
  std::vector<int> Buf;
  int Capacity;
  int Count = 0;
  int Hd = 0;
  bool Closed = false;
  bool Freed = false;   ///< Buffer torn down by close().
  int LastSent = 0;     ///< "Statistics" written by send (bug 4's race).
  ChannelBug Bug;
};

struct ChannelsConfig {
  int Capacity = 2;
  int Producers = 1;
  int Consumers = 2;
  int Messages = 2; ///< Messages per producer.
  ChannelBug Bug = ChannelBug::None;
  /// If >= 0, main closes the channel after this many deliveries (the
  /// cancellation path the close() bugs race against); -1 = close only
  /// after all messages arrived.
  int CloseAfter = -1;
};

/// Builds the producer/consumer channel test program.
TestProgram makeChannelsProgram(const ChannelsConfig &Config);

struct FifoMuxConfig {
  /// Input channels, each with a producer and a pump thread multiplexing
  /// into one output; 12 inputs gives the 25-thread "Dryad Fifo" shape of
  /// Table 1 (1 main + 12 producers + 12 pumps).
  int Inputs = 12;
  int MessagesPerInput = 4;
  int Capacity = 2;
};

/// Builds the fifo-multiplexer program (the "Dryad Fifo" analog): per-input
/// FIFO order must be preserved through the mux.
TestProgram makeFifoMuxProgram(const FifoMuxConfig &Config);

} // namespace fsmc

#endif // FSMC_WORKLOADS_CHANNELS_H
