//===- core/Explorer.h - Stateless state-space exploration -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stateless explorer: runs the test program over and over, each time
/// following a recorded choice sequence (replay) up to the deepest branch
/// with untried alternatives, then taking a fresh alternative -- the
/// standard Verisoft-style depth-first search, augmented with:
///
///   - the fair scheduler of Algorithm 1 restricting the choice set;
///   - preemption accounting for context-bounded search, with
///     fairness-induced preemptions uncounted (Section 4);
///   - depth bounding with a random tail (the no-fairness baseline);
///   - divergence detection: executions exceeding the execution bound are
///     classified as livelocks or good-samaritan violations;
///   - optional state-signature coverage, and a stateful pruning mode
///     that reproduces the paper's "Total States" ground truth.
///
/// The explorer captures no program state between executions (beyond the
/// optional signature hash table): it is a *stateless* model checker.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_EXPLORER_H
#define FSMC_CORE_EXPLORER_H

#include "core/Checker.h"
#include "core/SearchStrategy.h"
#include "core/Trace.h"
#include "runtime/Runtime.h"
#include "support/U64Set.h"
#include "support/Xorshift.h"

#include <chrono>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

namespace fsmc {

namespace obs {
struct ObsEvent;
struct WorkerCounters;
struct SearchProfile;
struct ExplainLog;
} // namespace obs

struct CheckpointState;
class StackPool;

/// Drives the whole search for one checker run. Also serves as the
/// ChoiceSource that resolves Runtime::chooseInt data choices, so both
/// scheduling and data nondeterminism share one replayable choice stack.
class Explorer final : public ChoiceSource {
public:
  Explorer(const TestProgram &Program, const CheckerOptions &Opts);
  ~Explorer() override;

  /// Runs executions until the search is exhausted, a bug stops it, or a
  /// budget (time / execution count) runs out.
  CheckResult run();

  /// Seeds the first execution's choice stack with a recorded schedule
  /// (see core/Schedule.h). Must be called before run().
  ///
  /// With \p Frozen set, the preloaded records form an immutable prefix:
  /// the DFS never advances or pops them, so the search is confined to
  /// the subtree below the prefix. This is how ParallelExplorer shards
  /// the choice tree across workers.
  void preloadSchedule(const std::vector<struct ScheduleChoice> &Choices,
                       bool Frozen = false);

  /// preloadSchedule freezing only the first \p FrozenLen records: the
  /// rest of the preloaded stack stays advanceable. This is how a resumed
  /// or sandboxed search re-enters the middle of a frozen subtree.
  void preloadScheduleFrozenPrefix(
      const std::vector<struct ScheduleChoice> &Choices, size_t FrozenLen);

  /// Starts this run's statistics from \p Base instead of zero, so a
  /// resumed search reports cumulative totals and budget checks
  /// (MaxExecutions) span the original and resumed parts. Budget flags
  /// (TimedOut &c.) are cleared. Must precede run().
  void preloadBaseStats(const SearchStats &Base);

  /// Seeds the coverage table with signatures from an earlier run part,
  /// so DistinctStates and exported signatures stay cumulative.
  void preloadSeenStates(const std::vector<uint64_t> &States);

  /// Seeds the first-counterexample slot from an earlier run part
  /// (StopOnFirstBug=false resume), so a later bug cannot displace it.
  void preloadBug(const BugReport &B);

  /// Also record newly inserted state signatures in insertion order
  /// (stateLog); the sandbox child streams coverage deltas from it.
  void enableStateLog() { LogStates = true; }
  const std::vector<uint64_t> &stateLog() const { return StateLog; }

  /// PRNG state accessors for checkpoint/resume and batch chaining.
  uint64_t rngState() const { return Rng.state(); }
  void setRngState(uint64_t S) { Rng.setState(S); }

  /// Live statistics; valid from the execution hook.
  const SearchStats &currentStats() const { return Result.Stats; }

  /// The DFS stack as schedule choices (Donated records excluded from
  /// nothing -- this is the raw stack). Valid from the execution hook or
  /// after run().
  std::vector<struct ScheduleChoice> currentStackSnapshot() const;

  /// Advances the stack past the last executed path and returns it -- the
  /// replay prefix of the next execution this explorer would have run.
  /// std::nullopt when the (sub)tree is exhausted. Call only after run()
  /// returned without itself advancing (hook stop, budget stop, bug
  /// stop); the sandbox parent uses it to chain batches.
  std::optional<std::vector<struct ScheduleChoice>> nextFrontier();

  /// Streams every non-forced choice as it resolves (replayed or fresh):
  /// the sandbox probe uses this to recover the exact stack of a crashing
  /// execution from outside the process. \p SleepMask is the POR sleep
  /// set at the choice point (0 when CheckerOptions::Por is off) and
  /// \p FlushMask the flush-agent bits of the candidate set (0 under
  /// --memory=sc), so recovered crash schedules replay mask-exactly
  /// under POR and weak memory too.
  void setChoiceStream(std::function<void(int Chosen, int Num, bool Backtrack,
                                          uint64_t SleepMask,
                                          uint64_t FlushMask)>
                           CB);

  /// Invoked after every execution (before the DFS stack advances).
  /// Returning false stops the search without marking it exhausted --
  /// the parallel driver's handle for global budgets, first-bug pruning
  /// and work donation.
  void setExecutionHook(std::function<bool(Explorer &)> Hook);

  /// Carves unexplored sibling alternatives off the DFS stack as frozen
  /// prefixes for other workers, shallowest (largest subtree) first, and
  /// marks the donated records so this explorer skips them. Only valid
  /// from within the execution hook. \returns the number of prefixes
  /// appended to \p Out (at most \p MaxItems).
  size_t splitWork(std::vector<std::vector<struct ScheduleChoice>> &Out,
                   size_t MaxItems);

  /// The Chosen values consumed by the execution that just finished --
  /// the path's position in DFS order. Two paths compare by the first
  /// differing choice index; this total order is what makes the parallel
  /// first-bug report deterministic.
  std::vector<int> consumedPathKey() const;

  /// State signatures this explorer inserted (TrackCoverage); the
  /// parallel driver unions the per-worker shards.
  const U64Set &seenStates() const { return SeenStates; }

  /// Binds this explorer to observability shard \p Worker of Opts.Obs
  /// (serial search and the replay path use shard 0; parallel workers get
  /// 1..Jobs). \p StartClock seeds the logical trace clock so a worker
  /// running many short-lived explorers keeps one monotonic time axis.
  /// No-op when no observer is attached.
  void setObsWorker(unsigned Worker, uint64_t StartClock = 0);

  /// Logical transitions this explorer has run; see setObsWorker.
  uint64_t obsClock() const { return ObsClock; }

  /// Uses \p P for fiber stacks instead of a private pool, letting a
  /// parallel worker share one pool across the many short-lived explorers
  /// it runs (one per work item). \p P must outlive the explorer; only
  /// meaningful with CheckerOptions::ReuseExecutionState. Call before
  /// run().
  void setStackPool(StackPool *P) { ExternalPool = P; }

  /// Incidents collected so far (data races under RaceCheckMode::On); the
  /// sandbox child streams deltas of this list to its parent. Valid from
  /// the execution hook or after run().
  const std::vector<BugReport> &incidents() const { return Result.Incidents; }

  /// Records every executed transition (thread, op, object, enabled set,
  /// sleep mask, branch factor) plus the end classification into \p L --
  /// the incident explainer's data source (src/obs/Explain.h). \p L must
  /// outlive the explorer. Intended for single-execution replay runs; a
  /// full search would append every execution's steps.
  void setExplainLog(obs::ExplainLog *L) { Explain = L; }

  // ChoiceSource: data nondeterminism raised from inside a transition.
  int chooseInt(int N) override;

private:
  /// How one execution ended.
  enum class ExecEnd {
    Terminated,  ///< All threads finished.
    Bug,         ///< A violation was reported.
    Abandoned,   ///< Cut at a bound (counted as nonterminating) or timeout.
    Pruned,      ///< Stateful reference search reached a visited state.
    Diverged,    ///< Replay mismatch: the attempt does not count as an
                 ///< execution; the stack is untouched and retriable.
    Interrupted, ///< InterruptFlag observed mid-execution; not counted.
  };

  /// One entry of the DFS choice stack.
  struct ChoiceRec {
    int Chosen;
    int Num;
    bool Backtrack;
    /// Untried alternatives were handed to another worker via splitWork;
    /// advanceStack treats the record as exhausted. Kept separate from
    /// Backtrack so bug schedules serialize identically to a serial run.
    bool Donated = false;
    /// POR sleep set at this choice point (ScheduleChoice::SleepMask).
    uint64_t SleepMask = 0;
    /// Flush-agent candidate bits (ScheduleChoice::FlushMask); nonzero
    /// only under --memory=tso|pso.
    uint64_t FlushMask = 0;
  };

  ExecEnd runOneExecution();
  /// Folds one finished execution's detector results into the run:
  /// RacesChecked, and one deduplicated DataRace incident per novel race
  /// (keyed by the interleaving-independent report message).
  void harvestRaces(const RaceDetector &D, const Runtime &RT);
  /// Snapshot of the whole search state for CheckpointSink /
  /// CheckResult::Resume: stats, the current stack as one non-frozen
  /// frontier unit, RNG state, and sorted coverage signatures.
  std::shared_ptr<CheckpointState> makeCheckpointState() const;
  /// Sends \p E to the observer's sink with this worker's identity filled
  /// in. Call only when Obs && Obs->sink().
  void emitEvent(obs::ObsEvent E);
  /// Advances the deepest backtrackable choice; false when exhausted.
  bool advanceStack();
  /// Resolves one choice among \p N options through the stack. Under POR
  /// \p SleepMask (the sleep set at the choice point) is recorded on
  /// fresh pushes and validated against the stack during replay;
  /// \p FlushMask (flush-agent candidate bits, --memory=tso|pso) is
  /// validated unconditionally -- it is always zero when weak memory is
  /// off, so sc replays of sc schedules are unaffected while a schedule
  /// replayed under the wrong memory model diverges deterministically.
  int pickIndex(int N, bool Backtrack, bool PickRandom,
                uint64_t SleepMask = 0, uint64_t FlushMask = 0);
  void reportBug(Verdict V, std::string Msg, const Runtime &RT,
                 uint64_t Step);
  /// Credits the just-completed path's Knuth leaf mass (the product of
  /// 1/branch-factor over its consumed backtrackable records) into the
  /// weighted-backtrack estimator. No-op unless CheckerOptions::Estimate.
  /// Pruned executions (POR and stateful) call this *at the prune site*,
  /// where the cursor still frames the pruned node, so the pruned
  /// subtree's mass is credited by construction and the estimator sums
  /// to 1.0 at exhaustion regardless of which exits prune; every other
  /// end credits from run().
  void creditEstimateMass();
  bool timeExceeded() const;
  static Tid nthMember(ThreadSet S, int Idx);

  const TestProgram &Program;
  CheckerOptions Opts;
  std::unique_ptr<SearchStrategy> Strategy;
  Xorshift Rng;

  std::vector<ChoiceRec> Stack;
  size_t Cursor = 0;
  size_t ReplayLen = 0; ///< Stack records present when the execution began.
  size_t FrozenLen = 0; ///< Leading records the DFS never advances past.
  bool ReplayMismatch = false;
  size_t MismatchIdx = 0; ///< Stack index where replay diverged.
  std::function<bool(Explorer &)> Hook;
  std::function<void(int, int, bool, uint64_t, uint64_t)> StreamCb;
  bool LogStates = false;
  std::vector<uint64_t> StateLog;
  obs::ExplainLog *Explain = nullptr;

  /// Knuth weighted-backtrack estimator (CheckerOptions::Estimate):
  /// Neumaier-compensated running sum of per-execution leaf masses;
  /// Result.Stats.EstimateMass always holds Sum + Comp so hooks and
  /// checkpoints see the compensated total.
  double EstMassSum = 0;
  double EstMassComp = 0;
  /// Borrowed view of Result.Profile (CheckerOptions::ProfileSearch);
  /// null when profiling is off, so hot-path hooks are one pointer test.
  obs::SearchProfile *Prof = nullptr;

  /// Observability (all null/zero when CheckerOptions::Obs is unset; every
  /// hot-path hook then reduces to one pointer test on Ctr).
  obs::Observer *Obs = nullptr;
  obs::WorkerCounters *Ctr = nullptr;
  unsigned ObsWorker = 0;
  /// Logical clock: transitions run by this explorer. Trace timestamps use
  /// it instead of wall time so serial traces are byte-reproducible.
  uint64_t ObsClock = 0;

  /// Execution-state recycling (CheckerOptions::ReuseExecutionState):
  /// one Runtime rewound via reset() per execution instead of a fresh
  /// object, with fiber stacks drawn from a pool. Declared before
  /// PersistentRT so the pool outlives the fibers that release into it.
  std::unique_ptr<StackPool> OwnPool;
  StackPool *ExternalPool = nullptr;
  std::unique_ptr<Runtime> PersistentRT;

  CheckResult Result;
  Trace CurTrace;
  /// Scratch for serializing Stack into ScheduleChoices (bug reports,
  /// race incidents); a member so repeated serialization reuses capacity.
  std::vector<struct ScheduleChoice> SchedScratch;
  /// Cross-execution race dedup: messages of every race already turned
  /// into an incident (the same race recurs in many interleavings).
  std::unordered_set<std::string> RaceKeys;
  /// Open-addressing flat tables (support/U64Set.h): one probe per
  /// signature on the hot path, pre-sized on resume by
  /// preloadSeenStates so long runs never rehash mid-search.
  U64Set SeenStates;
  U64Set PruneKeys;
  uint64_t CurExecution = 0;
  uint64_t CurSteps = 0;
  std::chrono::steady_clock::time_point StartTime;
};

} // namespace fsmc

#endif // FSMC_CORE_EXPLORER_H
