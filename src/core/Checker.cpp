//===- core/Checker.cpp ---------------------------------------------------===//

#include "core/Checker.h"

#include "core/Explorer.h"
#include "core/ParallelExplorer.h"
#include "core/Sandbox.h"

#include <algorithm>
#include <cassert>

using namespace fsmc;

const char *fsmc::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Pass:
    return "pass";
  case Verdict::SafetyViolation:
    return "safety violation";
  case Verdict::Deadlock:
    return "deadlock";
  case Verdict::Livelock:
    return "livelock";
  case Verdict::GoodSamaritanViolation:
    return "good samaritan violation";
  case Verdict::Divergence:
    return "divergence";
  case Verdict::Crash:
    return "crash";
  case Verdict::Hang:
    return "hang";
  }
  return "?";
}

void fsmc::mergeSearchStats(SearchStats &Into, const SearchStats &From) {
  Into.Executions += From.Executions;
  Into.Transitions += From.Transitions;
  Into.Preemptions += From.Preemptions;
  Into.NonterminatingExecutions += From.NonterminatingExecutions;
  Into.PrunedExecutions += From.PrunedExecutions;
  Into.SleepSetPrunes += From.SleepSetPrunes;
  Into.MaxDepth = std::max(Into.MaxDepth, From.MaxDepth);
  Into.FairEdgeAdditions += From.FairEdgeAdditions;
  Into.BugsFound += From.BugsFound;
  Into.MaxThreads = std::max(Into.MaxThreads, From.MaxThreads);
  Into.MaxSyncOps = std::max(Into.MaxSyncOps, From.MaxSyncOps);
  Into.Divergences += From.Divergences;
  Into.DivergenceRetries += From.DivergenceRetries;
  Into.Crashes += From.Crashes;
  Into.Hangs += From.Hangs;
  Into.Checkpoints += From.Checkpoints;
}

CheckResult fsmc::check(const TestProgram &Program,
                        const CheckerOptions &Opts) {
  assert(Program.Body && "test program has no body");
  CheckerOptions Effective = Opts;
  // Random walks never exhaust; insist on some budget so check() returns.
  if (Effective.Kind == SearchKind::RandomWalk &&
      Effective.MaxExecutions == 0 && Effective.TimeBudgetSeconds <= 0)
    Effective.MaxExecutions = 10000;
  if (Effective.StatefulPruning || Effective.ExportStateSignatures)
    Effective.TrackCoverage = true;

  // Process isolation forces serial exploration (the frontier must live in
  // one parent); stateful pruning stays in-process because prune keys
  // cannot cross the fork boundary.
  if (Effective.Isolate == IsolationMode::Batch && !Effective.StatefulPruning)
    return runSandboxed(Program, Effective);

  if (Effective.Jobs > 1) {
    ParallelExplorer PE(Program, Effective);
    return PE.run();
  }
  Explorer E(Program, Effective);
  return E.run();
}
