//===- core/Checker.cpp ---------------------------------------------------===//

#include "core/Checker.h"

#include "core/Explorer.h"
#include "core/ParallelExplorer.h"

#include <cassert>

using namespace fsmc;

const char *fsmc::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Pass:
    return "pass";
  case Verdict::SafetyViolation:
    return "safety violation";
  case Verdict::Deadlock:
    return "deadlock";
  case Verdict::Livelock:
    return "livelock";
  case Verdict::GoodSamaritanViolation:
    return "good samaritan violation";
  }
  return "?";
}

CheckResult fsmc::check(const TestProgram &Program,
                        const CheckerOptions &Opts) {
  assert(Program.Body && "test program has no body");
  CheckerOptions Effective = Opts;
  // Random walks never exhaust; insist on some budget so check() returns.
  if (Effective.Kind == SearchKind::RandomWalk &&
      Effective.MaxExecutions == 0 && Effective.TimeBudgetSeconds <= 0)
    Effective.MaxExecutions = 10000;
  if (Effective.StatefulPruning || Effective.ExportStateSignatures)
    Effective.TrackCoverage = true;

  if (Effective.Jobs > 1) {
    ParallelExplorer PE(Program, Effective);
    return PE.run();
  }
  Explorer E(Program, Effective);
  return E.run();
}
