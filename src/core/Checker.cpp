//===- core/Checker.cpp ---------------------------------------------------===//

#include "core/Checker.h"

#include "core/Explorer.h"
#include "core/Fleet.h"
#include "core/ParallelExplorer.h"
#include "core/Sandbox.h"
#include "obs/Counters.h"

#include <algorithm>
#include <cassert>

using namespace fsmc;

const char *fsmc::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Pass:
    return "pass";
  case Verdict::SafetyViolation:
    return "safety violation";
  case Verdict::Deadlock:
    return "deadlock";
  case Verdict::Livelock:
    return "livelock";
  case Verdict::GoodSamaritanViolation:
    return "good samaritan violation";
  case Verdict::Divergence:
    return "divergence";
  case Verdict::Crash:
    return "crash";
  case Verdict::Hang:
    return "hang";
  case Verdict::DataRace:
    return "data race";
  }
  return "?";
}

void fsmc::mergeSearchStats(SearchStats &Into, const SearchStats &From) {
  Into.Executions += From.Executions;
  Into.Transitions += From.Transitions;
  Into.Preemptions += From.Preemptions;
  Into.NonterminatingExecutions += From.NonterminatingExecutions;
  Into.PrunedExecutions += From.PrunedExecutions;
  Into.PorBranchesPruned += From.PorBranchesPruned;
  Into.PorSleepHits += From.PorSleepHits;
  Into.PorFairWakes += From.PorFairWakes;
  Into.MaxDepth = std::max(Into.MaxDepth, From.MaxDepth);
  Into.FairEdgeAdditions += From.FairEdgeAdditions;
  Into.BugsFound += From.BugsFound;
  Into.MaxThreads = std::max(Into.MaxThreads, From.MaxThreads);
  Into.MaxSyncOps = std::max(Into.MaxSyncOps, From.MaxSyncOps);
  Into.Divergences += From.Divergences;
  Into.DivergenceRetries += From.DivergenceRetries;
  Into.Crashes += From.Crashes;
  Into.Hangs += From.Hangs;
  Into.Checkpoints += From.Checkpoints;
  Into.RacesChecked += From.RacesChecked;
  Into.RacesFound += From.RacesFound;
  Into.FleetWorkerCrashes += From.FleetWorkerCrashes;
  Into.FleetReissues += From.FleetReissues;
  Into.FleetRespawns += From.FleetRespawns;
  Into.FleetQuarantined += From.FleetQuarantined;
  Into.StateHits += From.StateHits;
  Into.BufferedStores += From.BufferedStores;
  Into.StoreFlushes += From.StoreFlushes;
  Into.EstimateMass += From.EstimateMass;
}

void fsmc::foldStatsDeltaIntoCounters(obs::WorkerCounters *Ctr,
                                      const SearchStats &Prev,
                                      const SearchStats &Now) {
  if (!Ctr)
    return;
  using obs::Counter;
  auto D = [&](Counter C, uint64_t New, uint64_t Old) {
    if (New > Old)
      Ctr->add(C, New - Old);
  };
  D(Counter::Executions, Now.Executions, Prev.Executions);
  D(Counter::Transitions, Now.Transitions, Prev.Transitions);
  D(Counter::Preemptions, Now.Preemptions, Prev.Preemptions);
  D(Counter::NonterminatingExecutions, Now.NonterminatingExecutions,
    Prev.NonterminatingExecutions);
  D(Counter::StatefulPrunes, Now.PrunedExecutions, Prev.PrunedExecutions);
  D(Counter::PorSleepHits, Now.PorSleepHits, Prev.PorSleepHits);
  D(Counter::PorBranchesPruned, Now.PorBranchesPruned,
    Prev.PorBranchesPruned);
  D(Counter::PorFairWakes, Now.PorFairWakes, Prev.PorFairWakes);
  D(Counter::FairEdgeAdds, Now.FairEdgeAdditions, Prev.FairEdgeAdditions);
  D(Counter::BugsFound, Now.BugsFound, Prev.BugsFound);
  D(Counter::Divergences, Now.Divergences, Prev.Divergences);
  D(Counter::DivergenceRetries, Now.DivergenceRetries,
    Prev.DivergenceRetries);
  // RacesFound is deliberately absent; see the declaration comment.
  D(Counter::RacesChecked, Now.RacesChecked, Prev.RacesChecked);
  D(Counter::BufferedStores, Now.BufferedStores, Prev.BufferedStores);
  D(Counter::StoreFlushes, Now.StoreFlushes, Prev.StoreFlushes);
  Ctr->maxGauge(obs::Gauge::MaxDepth, Now.MaxDepth);
}

void fsmc::bumpBugClassCounter(obs::WorkerCounters *Ctr, Verdict V) {
  if (!Ctr)
    return;
  switch (V) {
  case Verdict::Deadlock:
    Ctr->add(obs::Counter::Deadlocks);
    break;
  case Verdict::Livelock:
    Ctr->add(obs::Counter::Livelocks);
    break;
  case Verdict::GoodSamaritanViolation:
    Ctr->add(obs::Counter::GoodSamaritanViolations);
    break;
  default:
    break;
  }
}

void fsmc::finalizeRaces(CheckResult &R, const CheckerOptions &Opts) {
  if (Opts.Races == RaceCheckMode::Off)
    return;
  // The within-run dedup already happened in whichever engine collected
  // the incidents; the count only needs to be consistent with them.
  uint64_t RaceIncidents = 0;
  const BugReport *First = nullptr;
  for (const BugReport &I : R.Incidents)
    if (I.Kind == Verdict::DataRace) {
      ++RaceIncidents;
      if (!First)
        First = &I;
    }
  R.Stats.RacesFound = std::max(R.Stats.RacesFound, RaceIncidents);
  if (!First)
    return;
  // Promote here, at the top level only: the engines themselves must keep
  // racy executions indistinguishable from clean ones (same StopOnFirstBug
  // behaviour, same multiset) so --races=on explores exactly what
  // --races=off does. In Fatal mode the race already flowed through the
  // normal bug path and R.Bug is set.
  if (R.Kind == Verdict::Pass) {
    R.Kind = Verdict::DataRace;
    if (!R.Bug)
      R.Bug = *First;
  }
}

CheckResult fsmc::check(const TestProgram &Program,
                        const CheckerOptions &Opts) {
  assert(Program.Body && "test program has no body");
  CheckerOptions Effective = Opts;
  // Random walks never exhaust; insist on some budget so check() returns.
  if (Effective.Kind == SearchKind::RandomWalk &&
      Effective.MaxExecutions == 0 && Effective.TimeBudgetSeconds <= 0)
    Effective.MaxExecutions = 10000;
  if (Effective.StatefulPruning || Effective.ExportStateSignatures)
    Effective.TrackCoverage = true;

  // Process isolation forces serial exploration (the frontier must live in
  // one parent); stateful pruning stays in-process because prune keys
  // cannot cross the fork boundary.
  CheckResult R;
  if (Effective.Isolate == IsolationMode::Batch &&
      !Effective.StatefulPruning) {
    R = runSandboxed(Program, Effective);
  } else if (Effective.FleetWorkers >= 1 &&
             Effective.Kind != SearchKind::RandomWalk &&
             !Effective.StatefulPruning) {
    // Fleet mode: supervised multi-process search (docs/FLEET.md). Random
    // walks and stateful pruning fall back to the serial engine exactly as
    // they do for Jobs > 1.
    R = runFleet(Program, Effective);
  } else if (Effective.Jobs > 1) {
    ParallelExplorer PE(Program, Effective);
    R = PE.run();
  } else {
    Explorer E(Program, Effective);
    R = E.run();
  }
  finalizeRaces(R, Effective);
  return R;
}
