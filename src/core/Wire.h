//===- core/Wire.h - Framed pipe protocol shared by sandbox/fleet -*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format the fork-based engines speak over their pipes: records
/// of `u8 tag + u32 length + payload`, written and parsed with the helpers
/// here. Both sides are the same process image (fork, no exec), so
/// trivially-copyable payloads (SearchStats, ScheduleChoice) cross as raw
/// bytes.
///
/// Robustness contract (docs/FLEET.md): writeAll retries EINTR and
/// finishes short writes; FrameParser tolerates arbitrarily fragmented
/// reads (a record is only delivered once all of its bytes arrived); a
/// vanished peer surfaces as a false return from writeAll (EPIPE -- the
/// caller must have SIGPIPE ignored, see ScopedSigpipeIgnore) or as EOF on
/// the read side, never as a crash of the supervising process.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_WIRE_H
#define FSMC_CORE_WIRE_H

#include "core/Checker.h"
#include "core/Schedule.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <signal.h>
#include <unistd.h>

namespace fsmc {
namespace wire {

/// Serializes one record payload.
struct WireWriter {
  std::string Buf;

  void u8(uint8_t V) { Buf.push_back(char(V)); }
  void raw(const void *P, size_t N) {
    Buf.append(reinterpret_cast<const char *>(P), N);
  }
  void u32(uint32_t V) { raw(&V, sizeof(V)); }
  void u64(uint64_t V) { raw(&V, sizeof(V)); }
  void f64(double V) { raw(&V, sizeof(V)); }
  void str(const std::string &S) {
    u32(uint32_t(S.size()));
    Buf.append(S);
  }
  void stats(const SearchStats &S) { raw(&S, sizeof(S)); }
  void choices(const std::vector<ScheduleChoice> &C) {
    u32(uint32_t(C.size()));
    if (!C.empty())
      raw(C.data(), C.size() * sizeof(ScheduleChoice));
  }
  void states(const uint64_t *P, size_t N) {
    u32(uint32_t(N));
    if (N)
      raw(P, N * sizeof(uint64_t));
  }
};

/// Writes the whole buffer, restarting on EINTR and continuing after
/// short writes. Returns false when the peer is gone (EPIPE; SIGPIPE must
/// be ignored in the writing process) or on any other write error.
inline bool writeAll(int Fd, const void *P, size_t N) {
  const char *C = static_cast<const char *>(P);
  while (N) {
    ssize_t W = ::write(Fd, C, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    C += W;
    N -= size_t(W);
  }
  return true;
}

/// Frames and writes one record: tag, length, payload, in a single buffer
/// so a record is never interleaved with another writer's bytes.
inline bool writeRecord(int Fd, uint8_t Tag, const WireWriter &W) {
  std::string Frame;
  Frame.reserve(W.Buf.size() + 5);
  Frame.push_back(char(Tag));
  uint32_t Len = uint32_t(W.Buf.size());
  Frame.append(reinterpret_cast<char *>(&Len), sizeof(Len));
  Frame.append(W.Buf);
  return writeAll(Fd, Frame.data(), Frame.size());
}

/// Cursor over one received payload. All reads are bounds-checked; a
/// short record marks the reader bad and the receiver treats the peer as
/// having died mid-record.
struct WireReader {
  const char *P;
  size_t N;
  bool Ok = true;

  bool take(void *Out, size_t K) {
    if (!Ok || K > N) {
      Ok = false;
      return false;
    }
    std::memcpy(Out, P, K);
    P += K;
    N -= K;
    return true;
  }
  uint8_t u8() {
    uint8_t V = 0;
    take(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    take(&V, sizeof(V));
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    take(&V, sizeof(V));
    return V;
  }
  double f64() {
    double V = 0;
    take(&V, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t K = u32();
    if (!Ok || K > N) {
      Ok = false;
      return {};
    }
    std::string S(P, K);
    P += K;
    N -= K;
    return S;
  }
  SearchStats stats() {
    SearchStats S;
    take(&S, sizeof(S));
    return S;
  }
  std::vector<ScheduleChoice> choices() {
    uint32_t K = u32();
    std::vector<ScheduleChoice> C;
    if (!Ok || size_t(K) * sizeof(ScheduleChoice) > N) {
      Ok = false;
      return C;
    }
    C.resize(K);
    if (K)
      take(C.data(), K * sizeof(ScheduleChoice));
    return C;
  }
  std::vector<uint64_t> states() {
    uint32_t K = u32();
    std::vector<uint64_t> V;
    if (!Ok || size_t(K) * sizeof(uint64_t) > N) {
      Ok = false;
      return V;
    }
    V.resize(K);
    if (K)
      take(V.data(), K * sizeof(uint64_t));
    return V;
  }
};

/// Reassembles records from an arbitrarily fragmented byte stream. Feed
/// raw read() chunks in; complete records come out via the callback.
/// Bytes of a record whose tail has not arrived yet stay buffered.
class FrameParser {
public:
  /// Appends \p N bytes and delivers every now-complete record to
  /// \p OnRecord(tag, payload reader).
  template <typename Fn>
  void feed(const char *P, size_t N, Fn &&OnRecord) {
    Buf.append(P, N);
    size_t Off = 0;
    while (Buf.size() - Off >= 5) {
      uint8_t Tag = uint8_t(Buf[Off]);
      uint32_t Len;
      std::memcpy(&Len, Buf.data() + Off + 1, sizeof(Len));
      if (Buf.size() - Off - 5 < Len)
        break;
      OnRecord(Tag, WireReader{Buf.data() + Off + 5, Len});
      Off += 5 + size_t(Len);
    }
    Buf.erase(0, Off);
  }

  /// True when a partial record is still buffered -- at EOF this means the
  /// peer died mid-record.
  bool hasPartial() const { return !Buf.empty(); }

private:
  std::string Buf;
};

/// Ignores SIGPIPE for the lifetime of the scope, restoring the previous
/// disposition on exit. A coordinator writing to a worker that just died
/// must see EPIPE from write(), not take a fatal signal.
class ScopedSigpipeIgnore {
public:
  ScopedSigpipeIgnore() { Prev = ::signal(SIGPIPE, SIG_IGN); }
  ~ScopedSigpipeIgnore() { ::signal(SIGPIPE, Prev); }
  ScopedSigpipeIgnore(const ScopedSigpipeIgnore &) = delete;
  ScopedSigpipeIgnore &operator=(const ScopedSigpipeIgnore &) = delete;

private:
  sighandler_t Prev;
};

} // namespace wire
} // namespace fsmc

#endif // FSMC_CORE_WIRE_H
