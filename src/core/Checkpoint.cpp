//===- core/Checkpoint.cpp ------------------------------------------------===//

#include "core/Checkpoint.h"

#include "core/Explorer.h"
#include "core/Fleet.h"
#include "core/ParallelExplorer.h"
#include "core/Sandbox.h"
#include "obs/SearchProfile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

using namespace fsmc;

// Version 3 adds the weak-memory stat keys and flush-mask suffixes inside
// unit schedules (core/Schedule.h); version 2 added the POR stat keys and
// sleep-mask suffixes. Version-1 and version-2 files are still read, and
// a checkpoint written without --por and with --memory=sc is parseable by
// older readers (unknown stat keys are skipped, masks never appear).
static const char *CheckpointMagic = "fsmc-ckpt 3";
static const char *CheckpointMagicV2 = "fsmc-ckpt 2";
static const char *CheckpointMagicV1 = "fsmc-ckpt 1";

namespace {

/// Stable wire tokens for Verdict in checkpoint files (independent of
/// verdictName, whose strings contain spaces).
const char *verdictWire(Verdict V) {
  switch (V) {
  case Verdict::Pass:
    return "pass";
  case Verdict::SafetyViolation:
    return "safety";
  case Verdict::Deadlock:
    return "deadlock";
  case Verdict::Livelock:
    return "livelock";
  case Verdict::GoodSamaritanViolation:
    return "goodsam";
  case Verdict::Divergence:
    return "divergence";
  case Verdict::Crash:
    return "crash";
  case Verdict::Hang:
    return "hang";
  case Verdict::DataRace:
    return "datarace";
  }
  return "pass";
}

bool parseVerdictWire(const std::string &S, Verdict &V) {
  if (S == "pass")
    V = Verdict::Pass;
  else if (S == "safety")
    V = Verdict::SafetyViolation;
  else if (S == "deadlock")
    V = Verdict::Deadlock;
  else if (S == "livelock")
    V = Verdict::Livelock;
  else if (S == "goodsam")
    V = Verdict::GoodSamaritanViolation;
  else if (S == "divergence")
    V = Verdict::Divergence;
  else if (S == "crash")
    V = Verdict::Crash;
  else if (S == "hang")
    V = Verdict::Hang;
  else if (S == "datarace")
    V = Verdict::DataRace;
  else
    return false;
  return true;
}

} // namespace

std::vector<std::vector<ScheduleChoice>>
fsmc::decomposeUnitToFrozenPrefixes(const CheckpointUnit &U) {
  std::vector<std::vector<ScheduleChoice>> Out;
  if (U.FrozenLen >= U.Prefix.size()) {
    Out.push_back(U.Prefix);
    return Out;
  }
  // The unit's stack is the replay prefix of the next execution a serial
  // explorer would run. Its remainder is that complete path's subtree
  // (the stack itself, fully frozen) plus every untried larger sibling at
  // each advanceable record -- the splitWork carve-up, done statically.
  Out.push_back(U.Prefix);
  for (size_t I = U.FrozenLen; I < U.Prefix.size(); ++I) {
    const ScheduleChoice &C = U.Prefix[I];
    if (!C.Backtrack || C.Chosen + 1 >= C.Num)
      continue;
    for (int Alt = C.Chosen + 1; Alt < C.Num; ++Alt) {
      std::vector<ScheduleChoice> P;
      P.reserve(I + 1);
      P.assign(U.Prefix.begin(), U.Prefix.begin() + long(I));
      // Siblings share the choice point's sleep and flush masks
      // (core/Schedule.h).
      P.push_back({Alt, C.Num, C.Backtrack, C.SleepMask, C.FlushMask});
      Out.push_back(std::move(P));
    }
  }
  return Out;
}

std::string fsmc::encodeCheckpoint(const CheckpointState &CK,
                                   const std::string &Program,
                                   uint64_t Seed) {
  std::ostringstream OS;
  OS << CheckpointMagic << "\n";
  OS << "program " << Program << "\n";
  OS << "seed " << Seed << "\n";
  OS << "rng " << CK.Rng << "\n";
  const SearchStats &S = CK.Stats;
  OS << "stat executions " << S.Executions << "\n";
  OS << "stat transitions " << S.Transitions << "\n";
  OS << "stat preemptions " << S.Preemptions << "\n";
  OS << "stat nonterminating_executions " << S.NonterminatingExecutions
     << "\n";
  OS << "stat pruned_executions " << S.PrunedExecutions << "\n";
  OS << "stat por_branches_pruned " << S.PorBranchesPruned << "\n";
  OS << "stat por_sleep_hits " << S.PorSleepHits << "\n";
  OS << "stat por_fair_wakes " << S.PorFairWakes << "\n";
  OS << "stat max_depth " << S.MaxDepth << "\n";
  OS << "stat fair_edge_additions " << S.FairEdgeAdditions << "\n";
  OS << "stat bugs_found " << S.BugsFound << "\n";
  OS << "stat max_threads " << S.MaxThreads << "\n";
  OS << "stat max_sync_ops " << S.MaxSyncOps << "\n";
  OS << "stat divergences " << S.Divergences << "\n";
  OS << "stat divergence_retries " << S.DivergenceRetries << "\n";
  OS << "stat crashes " << S.Crashes << "\n";
  OS << "stat hangs " << S.Hangs << "\n";
  OS << "stat checkpoints " << S.Checkpoints << "\n";
  // Older readers skip unknown stat keys, so these are forward-compatible.
  OS << "stat races_checked " << S.RacesChecked << "\n";
  OS << "stat races_found " << S.RacesFound << "\n";
  if (S.StateHits)
    OS << "stat state_hits " << S.StateHits << "\n";
  // Fleet recovery counters (docs/FLEET.md): nonzero only when a fleet
  // run actually lost workers, so healthy checkpoints stay byte-identical
  // to earlier revisions.
  if (S.FleetWorkerCrashes)
    OS << "stat fleet_worker_crashes " << S.FleetWorkerCrashes << "\n";
  if (S.FleetReissues)
    OS << "stat fleet_reissues " << S.FleetReissues << "\n";
  if (S.FleetRespawns)
    OS << "stat fleet_respawns " << S.FleetRespawns << "\n";
  if (S.FleetQuarantined)
    OS << "stat fleet_quarantined " << S.FleetQuarantined << "\n";
  // Weak-memory counters (docs/MEMORY.md): nonzero only under
  // --memory=tso|pso, so sc checkpoints stay byte-identical to earlier
  // revisions.
  if (S.BufferedStores)
    OS << "stat buffered_stores " << S.BufferedStores << "\n";
  if (S.StoreFlushes)
    OS << "stat store_flushes " << S.StoreFlushes << "\n";
  // The estimator mass is a double; 'statf' carries it as a lossless
  // hexfloat. Written only when the estimator ran, so checkpoints from
  // estimator-off runs stay byte-identical to earlier revisions (and old
  // readers skip the unknown key either way).
  if (S.EstimateMass != 0) {
    char Buf[48];
    snprintf(Buf, sizeof Buf, "%a", S.EstimateMass);
    OS << "statf estimate_mass " << Buf << "\n";
  }
  if (CK.Bug) {
    OS << "bug " << verdictWire(CK.Bug->Kind) << " " << CK.Bug->AtExecution
       << " " << CK.Bug->AtStep << " " << CK.Bug->Schedule << "\n";
    // The message is free text: keep it on one line.
    std::string Msg = CK.Bug->Message;
    std::replace(Msg.begin(), Msg.end(), '\n', ' ');
    OS << "bugmsg " << Msg << "\n";
  }
  OS << "states " << CK.States.size();
  OS << std::hex;
  for (uint64_t St : CK.States)
    OS << " " << St;
  OS << std::dec << "\n";
  for (const CheckpointUnit &U : CK.Frontier)
    OS << "unit " << U.FrozenLen << " " << encodeSchedule(U.Prefix) << "\n";
  OS << "end\n";
  return OS.str();
}

bool fsmc::decodeCheckpoint(const std::string &Text, CheckpointState &CK,
                            std::string &Program, uint64_t &Seed,
                            std::string &Err) {
  CK = CheckpointState();
  Program.clear();
  Seed = 0;
  std::istringstream IS(Text);
  std::string Line;
  if (!std::getline(IS, Line) ||
      (Line != CheckpointMagic && Line != CheckpointMagicV2 &&
       Line != CheckpointMagicV1)) {
    Err = "not a checkpoint file (missing '" + std::string(CheckpointMagic) +
          "' header)";
    return false;
  }
  bool SawEnd = false;
  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    if (Line == "end") {
      SawEnd = true;
      break;
    }
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key == "program") {
      LS >> std::ws;
      std::getline(LS, Program);
    } else if (Key == "seed") {
      if (!(LS >> Seed)) {
        Err = "corrupt checkpoint: bad seed value in '" + Line + "'";
        return false;
      }
    } else if (Key == "rng") {
      if (!(LS >> CK.Rng)) {
        Err = "corrupt checkpoint: bad rng value in '" + Line + "'";
        return false;
      }
    } else if (Key == "stat") {
      std::string Name;
      uint64_t Val = 0;
      if (!(LS >> Name >> Val)) {
        // Unknown NAMES are fine (forward compatibility) but a known line
        // shape with an unparseable VALUE means the file was damaged.
        Err = "corrupt checkpoint: bad stat line '" + Line + "'";
        return false;
      }
      SearchStats &S = CK.Stats;
      if (Name == "executions")
        S.Executions = Val;
      else if (Name == "transitions")
        S.Transitions = Val;
      else if (Name == "preemptions")
        S.Preemptions = Val;
      else if (Name == "nonterminating_executions")
        S.NonterminatingExecutions = Val;
      else if (Name == "pruned_executions")
        S.PrunedExecutions = Val;
      else if (Name == "por_branches_pruned" || Name == "sleep_set_prunes")
        S.PorBranchesPruned = Val; // sleep_set_prunes: the v1 key.
      else if (Name == "por_sleep_hits")
        S.PorSleepHits = Val;
      else if (Name == "por_fair_wakes")
        S.PorFairWakes = Val;
      else if (Name == "max_depth")
        S.MaxDepth = Val;
      else if (Name == "fair_edge_additions")
        S.FairEdgeAdditions = Val;
      else if (Name == "bugs_found")
        S.BugsFound = Val;
      else if (Name == "max_threads")
        S.MaxThreads = int(Val);
      else if (Name == "max_sync_ops")
        S.MaxSyncOps = Val;
      else if (Name == "divergences")
        S.Divergences = Val;
      else if (Name == "divergence_retries")
        S.DivergenceRetries = Val;
      else if (Name == "crashes")
        S.Crashes = Val;
      else if (Name == "hangs")
        S.Hangs = Val;
      else if (Name == "checkpoints")
        S.Checkpoints = Val;
      else if (Name == "races_checked")
        S.RacesChecked = Val;
      else if (Name == "races_found")
        S.RacesFound = Val;
      else if (Name == "state_hits")
        S.StateHits = Val;
      else if (Name == "fleet_worker_crashes")
        S.FleetWorkerCrashes = Val;
      else if (Name == "fleet_reissues")
        S.FleetReissues = Val;
      else if (Name == "fleet_respawns")
        S.FleetRespawns = Val;
      else if (Name == "fleet_quarantined")
        S.FleetQuarantined = Val;
      else if (Name == "buffered_stores")
        S.BufferedStores = Val;
      else if (Name == "store_flushes")
        S.StoreFlushes = Val;
      // Unknown stat keys are skipped for forward compatibility.
    } else if (Key == "statf") {
      std::string Name, Tok;
      if (!(LS >> Name >> Tok)) {
        Err = "corrupt checkpoint: bad statf line '" + Line + "'";
        return false;
      }
      if (Name == "estimate_mass") {
        char *End = nullptr;
        CK.Stats.EstimateMass = std::strtod(Tok.c_str(), &End);
        if (End == Tok.c_str() || *End != '\0') {
          Err = "corrupt checkpoint: bad estimate_mass value '" + Tok + "'";
          return false;
        }
      }
      // Unknown float stat keys are skipped for forward compatibility.
    } else if (Key == "bug") {
      std::string KindTok, Schedule;
      uint64_t AtExec = 0, AtStep = 0;
      if (!(LS >> KindTok >> AtExec >> AtStep >> Schedule)) {
        Err = "corrupt checkpoint: bad bug line '" + Line + "'";
        return false;
      }
      BugReport B;
      if (!parseVerdictWire(KindTok, B.Kind)) {
        Err = "corrupt checkpoint: bad bug verdict '" + KindTok + "'";
        return false;
      }
      B.AtExecution = AtExec;
      B.AtStep = AtStep;
      B.Schedule = Schedule;
      CK.Bug = std::move(B);
    } else if (Key == "bugmsg") {
      if (CK.Bug) {
        LS >> std::ws;
        std::getline(LS, CK.Bug->Message);
      }
    } else if (Key == "states") {
      size_t N = 0;
      if (!(LS >> N)) {
        Err = "corrupt checkpoint: bad states count in '" + Line + "'";
        return false;
      }
      // Bound the reserve by the line's actual capacity: a corrupted count
      // must not turn into a multi-gigabyte allocation before the per-value
      // reads below catch the truncation.
      CK.States.reserve(std::min(N, Line.size() / 2 + 1));
      LS >> std::hex;
      for (size_t I = 0; I < N; ++I) {
        uint64_t V = 0;
        if (!(LS >> V)) {
          Err = "corrupt checkpoint: truncated states line (" +
                std::to_string(I) + " of " + std::to_string(N) + " values)";
          return false;
        }
        CK.States.push_back(V);
      }
    } else if (Key == "unit") {
      CheckpointUnit U;
      std::string Sched;
      if (!(LS >> U.FrozenLen >> Sched)) {
        Err = "corrupt checkpoint: bad unit line '" + Line + "'";
        return false;
      }
      if (!decodeSchedule(Sched, U.Prefix)) {
        Err = "corrupt checkpoint: malformed unit schedule '" + Sched + "'";
        return false;
      }
      if (U.FrozenLen > U.Prefix.size()) {
        Err = "corrupt checkpoint: unit frozen length exceeds prefix";
        return false;
      }
      CK.Frontier.push_back(std::move(U));
    }
    // Unknown keys are skipped for forward compatibility.
  }
  if (!SawEnd) {
    Err = "corrupt checkpoint: truncated (missing 'end' marker)";
    return false;
  }
  CK.Stats.DistinctStates = CK.States.size();
  return true;
}

bool fsmc::writeCheckpointFile(const std::string &Path,
                               const CheckpointState &CK,
                               const std::string &Program, uint64_t Seed) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return false;
    OS << encodeCheckpoint(CK, Program, Seed);
    OS.flush();
    if (!OS)
      return false;
  }
  return std::rename(Tmp.c_str(), Path.c_str()) == 0;
}

bool fsmc::readCheckpointFile(const std::string &Path, CheckpointState &CK,
                              std::string &Program, uint64_t &Seed,
                              std::string &Err) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    Err = "cannot open checkpoint file '" + Path + "'";
    return false;
  }
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  return decodeCheckpoint(Buf.str(), CK, Program, Seed, Err);
}

CheckResult fsmc::resumeCheck(const TestProgram &Program,
                              const CheckerOptions &Opts,
                              const CheckpointState &CK) {
  CheckerOptions Effective = Opts;
  if (Effective.Kind == SearchKind::RandomWalk &&
      Effective.MaxExecutions == 0 && Effective.TimeBudgetSeconds <= 0)
    Effective.MaxExecutions = 10000;
  if (Effective.StatefulPruning || Effective.ExportStateSignatures)
    Effective.TrackCoverage = true;

  auto Start = std::chrono::steady_clock::now();

  if (CK.Frontier.empty()) {
    // The checkpoint was taken exactly at exhaustion; nothing to run.
    CheckResult R;
    R.Stats = CK.Stats;
    R.Stats.SearchExhausted = true;
    R.Stats.DistinctStates = CK.States.size();
    if (CK.Bug) {
      R.Bug = *CK.Bug;
      R.Kind = CK.Bug->Kind;
    }
    if (Effective.ExportStateSignatures)
      R.StateSignatures = CK.States;
    return R;
  }

  if (Effective.FleetWorkers >= 1 &&
      Effective.Kind != SearchKind::RandomWalk &&
      !Effective.StatefulPruning &&
      Effective.Isolate != IsolationMode::Batch) {
    CheckResult R = runFleet(Program, Effective, &CK);
    finalizeRaces(R, Effective);
    return R;
  }

  if (Effective.Jobs > 1 && Effective.Kind != SearchKind::RandomWalk &&
      !Effective.StatefulPruning &&
      Effective.Isolate != IsolationMode::Batch) {
    ParallelExplorer PE(Program, Effective);
    PE.resumeFrom(CK);
    CheckResult R = PE.run();
    finalizeRaces(R, Effective);
    return R;
  }

  // Serial (optionally sandboxed) chain over the frontier units. Stats,
  // coverage, the RNG and the first-bug slot thread through from unit to
  // unit, so the aggregate equals one uninterrupted run.
  CheckResult Agg;
  Agg.Stats = CK.Stats;
  Agg.Stats.TimedOut = false;
  Agg.Stats.ExecutionCapHit = false;
  Agg.Stats.SearchExhausted = false;
  Agg.Stats.Interrupted = false;
  uint64_t Rng = CK.Rng ? CK.Rng : Effective.Seed;
  std::vector<uint64_t> States = CK.States;
  std::optional<BugReport> Bug;
  if (CK.Bug)
    Bug = *CK.Bug;
  // Each frontier unit runs its own engine with a fresh race-dedup set, so
  // unit N+1 can re-report a race unit N already found; dedup across units
  // here and keep the cumulative count consistent. Races found before the
  // checkpoint are not keyed in the file, so a resumed run may recount
  // them (documented in docs/RACES.md).
  std::unordered_set<std::string> RaceKeys;
  const uint64_t RaceBase = CK.Stats.RacesFound;

  for (size_t U = 0; U < CK.Frontier.size(); ++U) {
    CheckerOptions SubOpts = Effective;
    if (Effective.TimeBudgetSeconds > 0) {
      double Remaining =
          Effective.TimeBudgetSeconds -
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
      SubOpts.TimeBudgetSeconds = Remaining > 0.001 ? Remaining : 0.001;
    }
    if (Effective.CheckpointSink) {
      // A periodic checkpoint inside one unit must also carry the units
      // not yet started, or resuming from it would lose them.
      SubOpts.CheckpointSink = [&Effective, &CK,
                                U](const CheckpointState &S) {
        CheckpointState Full = S;
        for (size_t V = U + 1; V < CK.Frontier.size(); ++V)
          Full.Frontier.push_back(CK.Frontier[V]);
        Effective.CheckpointSink(Full);
      };
    }

    CheckResult R;
    if (Effective.Isolate == IsolationMode::Batch) {
      SandboxResumeContext RC;
      RC.BaseStats = &Agg.Stats;
      RC.BaseStates = &States;
      RC.BaseBug = Bug ? &*Bug : nullptr;
      RC.Rng = Rng;
      // Under TrackCoverage the sandbox always fills StateSignatures
      // (sorted union including the base), so coverage chains across
      // units exactly like the in-process path; RC.Rng comes back as the
      // final PRNG state for the same reason.
      R = runSandboxed(Program, SubOpts, &CK.Frontier[U].Prefix,
                       CK.Frontier[U].FrozenLen, &RC);
      if (SubOpts.TrackCoverage)
        States = R.StateSignatures;
      Rng = RC.Rng;
    } else {
      Explorer E(Program, SubOpts);
      E.preloadScheduleFrozenPrefix(CK.Frontier[U].Prefix,
                                    CK.Frontier[U].FrozenLen);
      E.preloadBaseStats(Agg.Stats);
      E.setRngState(Rng);
      if (SubOpts.TrackCoverage)
        E.preloadSeenStates(States);
      if (Bug)
        E.preloadBug(*Bug);
      R = E.run();
      Rng = E.rngState();
      if (SubOpts.TrackCoverage)
        States.assign(E.seenStates().begin(), E.seenStates().end());
    }

    Agg.Stats = R.Stats; // Cumulative: the explorer ran on top of Agg.
    if (R.Profile) {
      // Per-unit profiles accumulate (stats thread through preloadBaseStats
      // and need no merge; profiles are per-engine and do).
      if (!Agg.Profile)
        Agg.Profile = R.Profile;
      else
        Agg.Profile->merge(*R.Profile);
    }
    if (R.Bug)
      Bug = R.Bug;
    for (const BugReport &I : R.Incidents)
      if (I.Kind != Verdict::DataRace || RaceKeys.insert(I.Message).second)
        Agg.Incidents.push_back(I);
    if (Effective.Races != RaceCheckMode::Off)
      Agg.Stats.RacesFound = RaceBase + RaceKeys.size();

    if (R.Stats.Interrupted && R.Resume) {
      for (size_t V = U + 1; V < CK.Frontier.size(); ++V)
        R.Resume->Frontier.push_back(CK.Frontier[V]);
      Agg.Resume = R.Resume;
      break;
    }
    if (R.Stats.TimedOut || R.Stats.ExecutionCapHit)
      break;
    if (R.foundBug() && Effective.StopOnFirstBug)
      break;
  }

  if (Bug) {
    Agg.Bug = *Bug;
    Agg.Kind = Bug->Kind;
  }
  Agg.Stats.DistinctStates = States.size();
  if (Effective.ExportStateSignatures) {
    std::sort(States.begin(), States.end());
    Agg.StateSignatures = std::move(States);
  }
  Agg.Stats.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  // Top-level promotion, mirroring check(): resumed runs surface data
  // races in the verdict the same way uninterrupted ones do.
  finalizeRaces(Agg, Effective);
  return Agg;
}
