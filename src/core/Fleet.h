//===- core/Fleet.h - Supervised multi-process exploration -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet mode (--fleet=N; docs/FLEET.md): a coordinator process forks N
/// long-lived worker processes and streams leased work units -- frozen
/// schedule prefixes with an execution budget -- over pipes, merging each
/// unit's stats, incidents and remainder prefixes back deterministically.
///
/// The robustness contract, and the difference from both --jobs=N
/// (threads: a crashing workload kills the whole search) and
/// --isolate=batch (a new fork per batch, serial frontier):
///
///   - a worker that crashes, exits or goes silent past its heartbeat
///     deadline loses only its uncommitted attempt; the unit is re-issued
///     with exponential backoff (every commit is one atomic record, so an
///     attempt either merges completely or not at all);
///   - a unit that kills FleetQuarantine consecutive workers is
///     quarantined as a replayable Verdict::Crash incident;
///   - dead workers are replaced up to a respawn budget, then the fleet
///     degrades to reduced width; with every worker gone, never-failed
///     units finish in-process and crash-suspect units are quarantined;
///   - SIGINT/SIGTERM drains the outstanding leases into one checkpoint
///     whose frontier reproduces the uninterrupted multiset on --resume.
///
/// On exhaustive searches the committed-stats-plus-pending-units
/// invariant makes verdicts, stats and incident sets identical to
/// --jobs=N -- including under FSMC_FLEET_CHAOS fault injection, where
/// only the fleet_* recovery counters and wall time change.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_FLEET_H
#define FSMC_CORE_FLEET_H

#include "core/Checker.h"

namespace fsmc {

struct CheckpointState;

/// Runs the supervised multi-process search. \p Opts.FleetWorkers must be
/// >= 1; RandomWalk, StatefulPruning and IsolationMode::Batch are the
/// caller's responsibility to exclude (check() and resumeCheck() route
/// them elsewhere). With \p ResumeCK, seeds the lease table from the
/// checkpoint's frontier and continues cumulatively.
CheckResult runFleet(const TestProgram &Program, const CheckerOptions &Opts,
                     const CheckpointState *ResumeCK = nullptr);

} // namespace fsmc

#endif // FSMC_CORE_FLEET_H
