//===- core/Fleet.cpp - Supervised multi-process exploration --------------===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
// Process layout: the coordinator (this file's runFleet) forks
// FleetWorkers long-lived children, each running fleetWorkerMain in a
// blocking read loop on its "down" pipe. One unit is outstanding per
// worker at a time, so the down pipe never fills and coordinator writes
// never block. All records use the core/Wire.h framing; fork without exec
// means trivially-copyable payloads cross as raw bytes.
//
// The exactness invariant everything rests on: a worker commits an
// attempt with ONE atomic UnitDone record carrying the attempt's stats,
// bug, incidents, coverage delta and remainder prefixes. A worker that
// dies mid-attempt therefore commits nothing, and re-running the same
// unit on another worker reproduces the identical deterministic attempt.
// Committed stats plus pending units always describe exactly the
// remaining search, which is why verdicts and incident sets match
// --jobs=N even under FSMC_FLEET_CHAOS fault injection.
//
//===----------------------------------------------------------------------===//

#include "core/Fleet.h"

#include "core/Checkpoint.h"
#include "core/Explorer.h"
#include "core/Schedule.h"
#include "core/Wire.h"
#include "core/WorkLease.h"
#include "obs/Observer.h"
#include "runtime/StackPool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace fsmc;
using wire::FrameParser;
using wire::WireReader;
using wire::WireWriter;
using wire::writeRecord;

namespace {

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

// Coordinator -> worker.
enum DownTag : uint8_t {
  TagUnit = 1,     // lease id, budget, time budget, frozen len, prefix
  TagStop = 2,     // finish the current attempt early, commit the remainder
  TagBestBug = 3,  // DFS-smallest bug key so far (first-bug pruning)
  TagShutdown = 4, // exit once idle
};

// Worker -> coordinator.
enum UpTag : uint8_t {
  TagUnitDone = 16, // the one atomic commit record per attempt
  TagHeartbeat = 17,
};

enum UnitDoneFlag : uint8_t {
  FlagTimedOut = 1, // the attempt's own time budget expired
};

void putBug(WireWriter &W, const BugReport &B) {
  W.u8(uint8_t(B.Kind));
  W.str(B.Message);
  W.str(B.TraceText);
  W.str(B.Schedule);
  W.u64(B.AtExecution);
  W.u64(B.AtStep);
}

BugReport getBug(WireReader &R) {
  BugReport B;
  B.Kind = Verdict(R.u8());
  B.Message = R.str();
  B.TraceText = R.str();
  B.Schedule = R.str();
  B.AtExecution = R.u64();
  B.AtStep = R.u64();
  return B;
}

//===----------------------------------------------------------------------===//
// DFS order (mirrors core/ParallelExplorer.cpp so first-bug reports agree)
//===----------------------------------------------------------------------===//

/// DFS order over choice paths: the first differing choice index decides;
/// an ancestor precedes its extensions.
bool dfsBefore(const std::vector<int> &A, const std::vector<int> &B) {
  size_t N = A.size() < B.size() ? A.size() : B.size();
  for (size_t I = 0; I < N; ++I)
    if (A[I] != B[I])
      return A[I] < B[I];
  return A.size() < B.size();
}

std::vector<int> pathKeyOfSchedule(const std::string &Schedule) {
  std::vector<ScheduleChoice> Choices;
  std::vector<int> Key;
  if (decodeSchedule(Schedule, Choices))
    for (const ScheduleChoice &C : Choices)
      Key.push_back(C.Chosen);
  return Key;
}

std::vector<int> pathKeyOfPrefix(const std::vector<ScheduleChoice> &P) {
  std::vector<int> Key;
  Key.reserve(P.size());
  for (const ScheduleChoice &C : P)
    Key.push_back(C.Chosen);
  return Key;
}

//===----------------------------------------------------------------------===//
// Chaos fault injection (FSMC_FLEET_CHAOS=kill:<n>,hang:<n>; test-only)
//===----------------------------------------------------------------------===//

/// Armed workers self-destruct after this many lifetime executions --
/// late enough to be mid-attempt, early enough for small test searches.
constexpr uint64_t ChaosTriggerExecs = 3;

struct ChaosSpec {
  int Kills = 0; // next N spawned workers SIGKILL themselves
  int Hangs = 0; // following N spawned workers hang (stop heartbeating)
};

ChaosSpec parseChaos(const char *Env) {
  ChaosSpec C;
  if (!Env)
    return C;
  const char *P = Env;
  while (*P) {
    if (std::strncmp(P, "kill:", 5) == 0)
      C.Kills = std::atoi(P + 5);
    else if (std::strncmp(P, "hang:", 5) == 0)
      C.Hangs = std::atoi(P + 5);
    const char *Comma = std::strchr(P, ',');
    if (!Comma)
      break;
    P = Comma + 1;
  }
  if (C.Kills < 0)
    C.Kills = 0;
  if (C.Hangs < 0)
    C.Hangs = 0;
  return C;
}

//===----------------------------------------------------------------------===//
// Worker side
//===----------------------------------------------------------------------===//

struct WorkerConfig {
  const TestProgram *Program = nullptr;
  CheckerOptions Opts; // stripped attempt options (no Obs, no budgets)
  bool WantStates = false;
  double HeartbeatPeriod = 0.1;
  uint64_t KillAfter = 0; // chaos: SIGKILL self after N lifetime execs
  uint64_t HangAfter = 0; // chaos: hang (no heartbeats) after N execs
};

struct IssuedUnit {
  uint64_t LeaseId = 0;
  uint64_t Budget = 0;
  double TimeBudget = 0;
  uint32_t FrozenLen = 0;
  std::vector<ScheduleChoice> Prefix;
};

/// The worker's view of the down pipe: one FrameParser shared between the
/// idle read loop and the mid-attempt control pump, so records survive
/// arbitrary fragmentation across both.
struct WorkerCtl {
  int DownFd = -1;
  FrameParser Frames;
  std::deque<IssuedUnit> Units;
  bool StopReq = false;
  bool Shutdown = false;
  bool HaveBest = false;
  std::vector<int> BestKey;

  void onRecord(uint8_t Tag, WireReader R) {
    switch (Tag) {
    case TagUnit: {
      IssuedUnit U;
      U.LeaseId = R.u64();
      U.Budget = R.u64();
      U.TimeBudget = R.f64();
      U.FrozenLen = R.u32();
      U.Prefix = R.choices();
      if (R.Ok)
        Units.push_back(std::move(U));
      break;
    }
    case TagStop:
      StopReq = true;
      break;
    case TagBestBug: {
      uint32_t N = R.u32();
      std::vector<int> Key;
      Key.reserve(N);
      for (uint32_t I = 0; I < N && R.Ok; ++I)
        Key.push_back(int(R.u32()));
      if (R.Ok) {
        HaveBest = true;
        BestKey = std::move(Key);
      }
      break;
    }
    case TagShutdown:
      Shutdown = true;
      break;
    }
  }

  /// Drains whatever is readable; with \p Block, waits for at least one
  /// byte first. EOF or a read error means the coordinator is gone -- the
  /// worker has nothing left to live for.
  void pump(bool Block) {
    for (;;) {
      struct pollfd P = {DownFd, POLLIN, 0};
      int R = ::poll(&P, 1, Block ? -1 : 0);
      if (R < 0) {
        if (errno == EINTR)
          continue;
        _exit(0);
      }
      if (R == 0)
        return;
      char Buf[4096];
      ssize_t N = ::read(DownFd, Buf, sizeof Buf);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        _exit(0);
      }
      if (N == 0)
        _exit(0); // coordinator closed the pipe
      Frames.feed(Buf, size_t(N),
                  [&](uint8_t Tag, WireReader Rd) { onRecord(Tag, Rd); });
      Block = false; // got something; finish draining and return
    }
  }
};

/// The worker process: loop forever running issued units, one fresh
/// serial Explorer per attempt (unit-local stats, shared stack pool), and
/// commit each with a single UnitDone record.
[[noreturn]] void fleetWorkerMain(const WorkerConfig &Cfg, int DownFd,
                                  int UpFd) {
  // The coordinator owns interrupt policy; workers die by pipe EOF,
  // TagShutdown, or SIGKILL. SIGPIPE must not kill a worker whose
  // coordinator vanished mid-write.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  ::signal(SIGPIPE, SIG_IGN);

  WorkerCtl Ctl;
  Ctl.DownFd = DownFd;
  StackPool Pool; // persists across attempts (fiber-stack reuse)
  uint64_t LifetimeExecs = 0;

  for (;;) {
    Ctl.pump(/*Block=*/Ctl.Units.empty());
    if (Ctl.Units.empty()) {
      if (Ctl.Shutdown)
        _exit(0);
      continue;
    }
    IssuedUnit U = std::move(Ctl.Units.front());
    Ctl.Units.pop_front();
    Ctl.StopReq = false; // a stale Stop must not kill the fresh attempt

    CheckerOptions AOpts = Cfg.Opts;
    AOpts.TimeBudgetSeconds = U.TimeBudget;
    Explorer E(*Cfg.Program, AOpts);
    if (Cfg.Opts.ReuseExecutionState)
      E.setStackPool(&Pool);
    if (!U.Prefix.empty())
      E.preloadScheduleFrozenPrefix(U.Prefix, U.FrozenLen);

    uint64_t Done = 0;
    std::vector<std::vector<ScheduleChoice>> Remainder;
    auto LastBeat = std::chrono::steady_clock::now();
    bool SentBeat = false;

    E.setExecutionHook([&](Explorer &Ex) {
      ++Done;
      ++LifetimeExecs;
      // Fault injection: die or go silent mid-attempt, before anything
      // is committed -- exactly the failure the recovery path must mask.
      if (Cfg.KillAfter && LifetimeExecs >= Cfg.KillAfter)
        ::kill(::getpid(), SIGKILL);
      if (Cfg.HangAfter && LifetimeExecs >= Cfg.HangAfter)
        for (;;)
          ::pause();
      auto NowT = std::chrono::steady_clock::now();
      if (!SentBeat ||
          std::chrono::duration<double>(NowT - LastBeat).count() >=
              Cfg.HeartbeatPeriod) {
        WireWriter W;
        W.u64(U.LeaseId);
        W.u64(LifetimeExecs);
        if (!writeRecord(UpFd, TagHeartbeat, W))
          _exit(0);
        LastBeat = NowT;
        SentBeat = true;
      }
      Ctl.pump(/*Block=*/false);
      if (Ctl.HaveBest && Cfg.Opts.StopOnFirstBug) {
        // Everything still unexplored in this unit is DFS-after the path
        // just consumed; if that path is already at-or-after the best
        // bug, nothing here can improve it. Drop the rest (mirrors the
        // parallel driver's afterBestBug pruning).
        if (!dfsBefore(Ex.consumedPathKey(), Ctl.BestKey))
          return false;
      }
      if (Ctl.StopReq || Ctl.Shutdown || Done >= U.Budget) {
        Ex.splitWork(Remainder, SIZE_MAX);
        return false;
      }
      return true;
    });

    CheckResult R = E.run();

    WireWriter W;
    W.u64(U.LeaseId);
    uint8_t Flags = 0;
    if (R.Stats.TimedOut)
      Flags |= FlagTimedOut;
    W.u8(Flags);
    W.stats(R.Stats);
    W.u8(R.Bug ? 1 : 0);
    if (R.Bug)
      putBug(W, *R.Bug);
    W.u32(uint32_t(R.Incidents.size()));
    for (const BugReport &I : R.Incidents)
      putBug(W, I);
    if (Cfg.WantStates) {
      std::vector<uint64_t> SS(E.seenStates().begin(), E.seenStates().end());
      std::sort(SS.begin(), SS.end());
      W.states(SS.data(), SS.size());
    } else {
      W.states(nullptr, 0);
    }
    W.u32(uint32_t(Remainder.size()));
    for (const std::vector<ScheduleChoice> &P : Remainder)
      W.choices(P);
    if (!writeRecord(UpFd, TagUnitDone, W))
      _exit(0);
    if (Ctl.Shutdown)
      _exit(0);
  }
}

//===----------------------------------------------------------------------===//
// Coordinator side
//===----------------------------------------------------------------------===//

struct FleetWorker {
  pid_t Pid = -1;
  int DownFd = -1; // coordinator -> worker
  int UpFd = -1;   // worker -> coordinator
  FrameParser Frames;
  uint64_t LeaseId = 0; // 0 = idle
  bool Alive = false;
  bool UpEof = false;
  bool KillSent = false;    // heartbeat-expiry SIGKILL already delivered
  bool DrainKilled = false; // deliberately killed as a drain straggler
};

bool spawnWorker(FleetWorker &W, const WorkerConfig &BaseCfg,
                 ChaosSpec &Chaos) {
  int Down[2], Up[2];
  if (::pipe(Down) != 0)
    return false;
  if (::pipe(Up) != 0) {
    ::close(Down[0]);
    ::close(Down[1]);
    return false;
  }
  // Chaos arming happens at spawn so replacements fork unarmed once the
  // configured fault count is spent -- the search then finishes cleanly.
  uint64_t KillAfter = 0, HangAfter = 0;
  if (Chaos.Kills > 0) {
    KillAfter = ChaosTriggerExecs;
    --Chaos.Kills;
  } else if (Chaos.Hangs > 0) {
    HangAfter = ChaosTriggerExecs;
    --Chaos.Hangs;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Down[0]);
    ::close(Down[1]);
    ::close(Up[0]);
    ::close(Up[1]);
    return false;
  }
  if (Pid == 0) {
    ::close(Down[1]);
    ::close(Up[0]);
    WorkerConfig Cfg = BaseCfg;
    Cfg.KillAfter = KillAfter;
    Cfg.HangAfter = HangAfter;
    fleetWorkerMain(Cfg, Down[0], Up[1]);
  }
  ::close(Down[0]);
  ::close(Up[1]);
  W.Pid = Pid;
  W.DownFd = Down[1];
  W.UpFd = Up[0];
  W.Frames = FrameParser();
  W.LeaseId = 0;
  W.Alive = true;
  W.UpEof = false;
  W.KillSent = false;
  W.DrainKilled = false;
  return true;
}

} // namespace

CheckResult fsmc::runFleet(const TestProgram &Program,
                           const CheckerOptions &Opts,
                           const CheckpointState *ResumeCK) {
  auto StartTime = std::chrono::steady_clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         StartTime)
        .count();
  };
  // A worker dying mid-read must surface as EPIPE from write(), never as
  // a fatal signal to the coordinator.
  wire::ScopedSigpipeIgnore NoSigpipe;

  const bool WantStates = Opts.TrackCoverage || Opts.ExportStateSignatures;
  const int Width = Opts.FleetWorkers > 0 ? Opts.FleetWorkers : 1;
  const uint64_t Batch =
      Opts.FleetBatchSize > 0 ? uint64_t(Opts.FleetBatchSize) : 64;
  const double HbTimeout =
      Opts.FleetHeartbeatTimeout > 0
          ? Opts.FleetHeartbeatTimeout
          : (Opts.HangTimeoutSeconds > 0 ? Opts.HangTimeoutSeconds : 10.0);
  int RespawnsLeft =
      Opts.FleetRespawnBudget >= 0 ? Opts.FleetRespawnBudget : 2 * Width + 2;

  obs::WorkerCounters *Ctr = Opts.Obs ? &Opts.Obs->shard(0) : nullptr;

  // Attempt options: in-process serial exploration with every
  // parent-owned mechanism stripped (mirrors the sandbox's ChildOpts).
  // Budgets are enforced per-unit through the execution hook, and the
  // observer must stay null in children -- fork duplicates sink FILE
  // buffers. Profiles cannot cross the pipe (shared_ptr payload).
  CheckerOptions ChildOpts = Opts;
  ChildOpts.Isolate = IsolationMode::Off;
  ChildOpts.Jobs = 1;
  ChildOpts.FleetWorkers = 0;
  ChildOpts.Obs = nullptr;
  ChildOpts.InterruptFlag = nullptr;
  ChildOpts.CheckpointEvery = 0;
  ChildOpts.CheckpointSink = nullptr;
  ChildOpts.ExportStateSignatures = false;
  ChildOpts.TrackCoverage = WantStates;
  ChildOpts.MaxExecutions = 0;
  ChildOpts.ProfileSearch = false;

  WorkerConfig BaseCfg;
  BaseCfg.Program = &Program;
  BaseCfg.Opts = ChildOpts;
  BaseCfg.WantStates = WantStates;
  BaseCfg.HeartbeatPeriod = std::min(0.1, HbTimeout / 4);

  ChaosSpec Chaos = parseChaos(std::getenv("FSMC_FLEET_CHAOS"));

  LeaseTable::Config LC;
  LC.QuarantineAfter = Opts.FleetQuarantine > 0 ? Opts.FleetQuarantine : 3;
  LeaseTable LT(LC);

  // Committed search state; exactly the parallel driver's Shared merge.
  SearchStats Total;
  std::unordered_set<uint64_t> States;
  std::unordered_set<std::string> RaceKeys;
  std::vector<BugReport> RaceIncidents;
  std::vector<BugReport> CrashIncidents; // quarantine incidents, in order
  bool HasBug = false;
  std::vector<int> BestKey;
  BugReport BestBug;
  Verdict BestKind = Verdict::Pass;
  uint64_t RaceBase = 0;

  bool Interrupted = false, CapHit = false, TimedOut = false;
  std::shared_ptr<CheckpointState> ResumeOut;

  auto offerBug = [&](const BugReport &B, Verdict K) {
    std::vector<int> Key = pathKeyOfSchedule(B.Schedule);
    if (!HasBug || dfsBefore(Key, BestKey)) {
      HasBug = true;
      BestKey = std::move(Key);
      BestBug = B;
      BestKind = K;
      return true;
    }
    return false;
  };

  if (ResumeCK) {
    Total = ResumeCK->Stats;
    Total.TimedOut = Total.ExecutionCapHit = Total.SearchExhausted =
        Total.Interrupted = false;
    Total.Seconds = 0;
    States.insert(ResumeCK->States.begin(), ResumeCK->States.end());
    RaceBase = ResumeCK->Stats.RacesFound;
    if (ResumeCK->Bug)
      offerBug(*ResumeCK->Bug, ResumeCK->Bug->Kind);
    for (const CheckpointUnit &U : ResumeCK->Frontier)
      LT.add(U.Prefix, U.FrozenLen);
  } else {
    LT.add({}, 0); // the whole choice tree
  }

  auto bump = [&](obs::Counter C, uint64_t &Field) {
    ++Field;
    if (Ctr)
      Ctr->add(C);
  };

  std::vector<FleetWorker> Workers;
  Workers.resize(size_t(Width));
  for (FleetWorker &W : Workers)
    (void)spawnWorker(W, BaseCfg, Chaos);

  auto aliveCount = [&]() {
    size_t N = 0;
    for (const FleetWorker &W : Workers)
      if (W.Alive)
        ++N;
    return N;
  };
  auto busyCount = [&]() {
    size_t N = 0;
    for (const FleetWorker &W : Workers)
      if (W.Alive && W.LeaseId)
        ++N;
    return N;
  };

  auto sendTo = [&](FleetWorker &W, uint8_t Tag, const WireWriter &Wr) {
    return writeRecord(W.DownFd, Tag, Wr);
  };
  auto bestBugRecord = [&]() {
    WireWriter Wr;
    Wr.u32(uint32_t(BestKey.size()));
    for (int K : BestKey)
      Wr.u32(uint32_t(K));
    return Wr;
  };
  auto broadcastBestBug = [&]() {
    WireWriter Wr = bestBugRecord();
    for (FleetWorker &W : Workers)
      if (W.Alive && W.LeaseId)
        (void)sendTo(W, TagBestBug, Wr); // EPIPE = dead; reaped below
  };

  auto quarantineIncident = [&](uint64_t Id, const std::string &Why) {
    bump(obs::Counter::FleetQuarantined, Total.FleetQuarantined);
    ++Total.Crashes;
    if (Ctr)
      Ctr->add(obs::Counter::Crashes);
    const WorkUnit &U = LT.unit(Id);
    BugReport I;
    I.Kind = Verdict::Crash;
    I.Message = Why;
    I.Schedule = encodeSchedule(U.Prefix);
    I.AtExecution = Total.Executions;
    CrashIncidents.push_back(std::move(I));
  };

  // Merges one committed attempt -- the only way search results enter the
  // totals, shared by the piped path and the in-process fallback.
  auto commitAttempt = [&](uint64_t LeaseId, const SearchStats &S,
                           bool AttemptTimedOut,
                           const std::optional<BugReport> &Bug,
                           const std::vector<BugReport> &Incs,
                           const std::vector<uint64_t> &UnitStates,
                           std::vector<std::vector<ScheduleChoice>> &&Rem,
                           bool Broadcast) {
    // Attempt stats are unit-local (each attempt starts from zero), so
    // the delta folded into the live counters is the stats themselves.
    foldStatsDeltaIntoCounters(Ctr, SearchStats{}, S);
    mergeSearchStats(Total, S);
    States.insert(UnitStates.begin(), UnitStates.end());
    for (const BugReport &I : Incs)
      if (I.Kind != Verdict::DataRace || RaceKeys.insert(I.Message).second) {
        if (I.Kind == Verdict::DataRace && Ctr)
          Ctr->add(obs::Counter::RacesFound);
        RaceIncidents.push_back(I);
      }
    if (Opts.Races != RaceCheckMode::Off)
      Total.RacesFound = RaceBase + RaceKeys.size();
    if (Bug) {
      bumpBugClassCounter(Ctr, Bug->Kind);
      if (offerBug(*Bug, Bug->Kind) && Broadcast && Opts.StopOnFirstBug)
        broadcastBestBug();
    }
    for (std::vector<ScheduleChoice> &P : Rem) {
      size_t N = P.size();
      LT.add(std::move(P), N);
    }
    LT.commit(LeaseId);
    if (AttemptTimedOut)
      TimedOut = true;
  };

  auto commitUnitDone = [&](FleetWorker &W, WireReader R) {
    uint64_t LeaseId = R.u64();
    uint8_t Flags = R.u8();
    SearchStats S = R.stats();
    std::optional<BugReport> Bug;
    if (R.u8())
      Bug = getBug(R);
    uint32_t NInc = R.u32();
    std::vector<BugReport> Incs;
    for (uint32_t I = 0; I < NInc && R.Ok; ++I)
      Incs.push_back(getBug(R));
    std::vector<uint64_t> UnitStates = R.states();
    uint32_t NRem = R.u32();
    std::vector<std::vector<ScheduleChoice>> Rem;
    for (uint32_t I = 0; I < NRem && R.Ok; ++I)
      Rem.push_back(R.choices());
    if (!R.Ok || LeaseId == 0 || LeaseId != W.LeaseId) {
      // Garbled commit: the worker is compromised; kill it and let the
      // reap path fail its lease so nothing half-merged survives.
      if (W.Alive && !W.KillSent) {
        ::kill(W.Pid, SIGKILL);
        W.KillSent = true;
      }
      return;
    }
    W.LeaseId = 0;
    commitAttempt(LeaseId, S, (Flags & FlagTimedOut) != 0, Bug, Incs,
                  UnitStates, std::move(Rem), /*Broadcast=*/true);
  };

  auto handleDeath = [&](FleetWorker &W) {
    W.Alive = false;
    if (W.DownFd >= 0) {
      ::close(W.DownFd);
      W.DownFd = -1;
    }
    if (W.UpFd >= 0) {
      ::close(W.UpFd);
      W.UpFd = -1;
    }
    uint64_t Id = W.LeaseId;
    W.LeaseId = 0;
    if (W.DrainKilled) {
      // Deliberate straggler kill at drain time: nothing was committed,
      // so releasing the lease keeps the frontier exact. No penalty, no
      // crash accounting, no respawn -- the fleet is shutting down.
      if (Id)
        LT.release(Id);
      return;
    }
    bump(obs::Counter::FleetWorkerCrashes, Total.FleetWorkerCrashes);
    if (Id) {
      if (LT.fail(Id, elapsed()) == LeaseTable::FailOutcome::Requeued)
        bump(obs::Counter::FleetReissues, Total.FleetReissues);
      else
        quarantineIncident(
            Id, "work unit killed " + std::to_string(LT.attempts(Id)) +
                    " consecutive fleet workers; quarantined");
    }
    if (RespawnsLeft > 0) {
      --RespawnsLeft;
      if (spawnWorker(W, BaseCfg, Chaos))
        bump(obs::Counter::FleetRespawns, Total.FleetRespawns);
    }
    // else: degraded width; with zero workers left the main loop falls
    // back to in-process completion.
  };

  auto reapZombies = [&]() {
    for (FleetWorker &W : Workers) {
      if (!W.Alive)
        continue;
      int Status = 0;
      pid_t P = ::waitpid(W.Pid, &Status, WNOHANG);
      if (P == W.Pid)
        handleDeath(W);
    }
  };

  auto expireHeartbeats = [&]() {
    for (uint64_t Id : LT.expiredLeases(elapsed())) {
      int Owner = LT.owner(Id);
      if (Owner < 0 || size_t(Owner) >= Workers.size())
        continue;
      FleetWorker &W = Workers[size_t(Owner)];
      if (W.Alive && !W.KillSent) {
        // Silent past the deadline: hung (or wedged). SIGKILL and let the
        // reap path do the failure bookkeeping.
        ::kill(W.Pid, SIGKILL);
        W.KillSent = true;
      }
    }
  };

  auto processEvents = [&](int TimeoutMs) {
    std::vector<struct pollfd> Pfds;
    std::vector<size_t> Idx;
    for (size_t I = 0; I < Workers.size(); ++I)
      if (Workers[I].Alive && !Workers[I].UpEof && Workers[I].UpFd >= 0) {
        Pfds.push_back({Workers[I].UpFd, POLLIN, 0});
        Idx.push_back(I);
      }
    if (Pfds.empty()) {
      if (TimeoutMs > 0)
        ::usleep(useconds_t(TimeoutMs) * 1000);
    } else {
      int R = ::poll(Pfds.data(), nfds_t(Pfds.size()), TimeoutMs);
      for (size_t K = 0; R > 0 && K < Pfds.size(); ++K) {
        if (!(Pfds[K].revents & (POLLIN | POLLHUP | POLLERR)))
          continue;
        FleetWorker &W = Workers[Idx[K]];
        char Buf[65536];
        ssize_t N = ::read(W.UpFd, Buf, sizeof Buf);
        if (N < 0) {
          if (errno != EINTR && errno != EAGAIN)
            W.UpEof = true;
          continue;
        }
        if (N == 0) {
          W.UpEof = true; // death itself is detected by waitpid
          continue;
        }
        W.Frames.feed(Buf, size_t(N), [&](uint8_t Tag, WireReader Rd) {
          if (Tag == TagHeartbeat) {
            uint64_t Id = Rd.u64();
            (void)Rd.u64(); // lifetime execs: informational
            if (Rd.Ok && Id && Id == W.LeaseId)
              LT.renew(Id, elapsed() + HbTimeout);
          } else if (Tag == TagUnitDone) {
            commitUnitDone(W, Rd);
          }
        });
      }
    }
    reapZombies();
    expireHeartbeats();
  };

  auto interruptRequested = [&]() {
    return Opts.InterruptFlag &&
           Opts.InterruptFlag->load(std::memory_order_relaxed);
  };

  auto issueUnits = [&]() {
    double Now = elapsed();
    for (size_t I = 0; I < Workers.size(); ++I) {
      FleetWorker &W = Workers[I];
      if (!W.Alive || W.LeaseId)
        continue;
      for (;;) {
        const WorkUnit *U = LT.lease(int(I), Now, Now + HbTimeout);
        if (!U)
          break;
        uint64_t Id = U->Id;
        if (Opts.StopOnFirstBug && HasBug &&
            !dfsBefore(pathKeyOfPrefix(U->Prefix), BestKey)) {
          // DFS-at-or-after the best bug: cannot improve it. Retire the
          // unit without running it (the parallel driver's discard rule).
          LT.commit(Id);
          continue;
        }
        uint64_t Budget = Batch;
        if (Opts.MaxExecutions) {
          // Bounded overshoot: each in-flight unit gets at most the cap
          // remainder at issue time; committed units count whole.
          uint64_t Left = Opts.MaxExecutions > Total.Executions
                              ? Opts.MaxExecutions - Total.Executions
                              : 1;
          if (Left < Budget)
            Budget = Left;
        }
        double TimeBudget = 0;
        if (Opts.TimeBudgetSeconds > 0) {
          TimeBudget = Opts.TimeBudgetSeconds - Now;
          if (TimeBudget < 0.001)
            TimeBudget = 0.001;
        }
        WireWriter Wr;
        Wr.u64(Id);
        Wr.u64(Budget);
        Wr.f64(TimeBudget);
        Wr.u32(uint32_t(U->FrozenLen));
        Wr.choices(U->Prefix);
        W.LeaseId = Id;
        if (!sendTo(W, TagUnit, Wr))
          break; // worker just died; reap fails the lease
        if (Opts.StopOnFirstBug && HasBug)
          (void)sendTo(W, TagBestBug, bestBugRecord());
        break; // one outstanding unit per worker
      }
    }
  };

  auto buildCheckpoint = [&]() {
    auto CK = std::make_shared<CheckpointState>();
    CK->Stats = Total;
    CK->Stats.TimedOut = CK->Stats.ExecutionCapHit =
        CK->Stats.SearchExhausted = CK->Stats.Interrupted = false;
    CK->Stats.Seconds = 0;
    CK->Stats.DistinctStates = States.size();
    if (Opts.Races != RaceCheckMode::Off)
      CK->Stats.RacesFound = RaceBase + RaceKeys.size();
    CK->Rng = Opts.Seed;
    CK->States.assign(States.begin(), States.end());
    std::sort(CK->States.begin(), CK->States.end());
    for (const WorkUnit *U : LT.pendingUnits())
      CK->Frontier.push_back({U->Prefix, U->FrozenLen});
    if (HasBug)
      CK->Bug = BestBug;
    return CK;
  };

  // Settles every outstanding lease: asks busy workers to stop (they
  // commit their partial attempt plus remainder), and past the grace
  // deadline SIGKILLs stragglers, whose leases release without penalty.
  // Either way the frontier stays exact.
  auto drainLeases = [&](double GraceSeconds) {
    WireWriter Empty;
    for (FleetWorker &W : Workers)
      if (W.Alive && W.LeaseId)
        (void)sendTo(W, TagStop, Empty);
    double KillAt = elapsed() + GraceSeconds;
    bool Killed = false;
    while (busyCount() > 0 || LT.leasedCount() > 0) {
      if (busyCount() == 0 && LT.leasedCount() > 0) {
        // Leases held by already-dead workers only; reap settles them.
        reapZombies();
        if (LT.leasedCount() == 0)
          break;
      }
      processEvents(20);
      if (!Killed && elapsed() >= KillAt) {
        for (FleetWorker &W : Workers)
          if (W.Alive && W.LeaseId) {
            W.DrainKilled = true;
            ::kill(W.Pid, SIGKILL);
          }
        Killed = true;
      }
    }
  };

  auto shutdownWorkers = [&]() {
    WireWriter Empty;
    for (FleetWorker &W : Workers)
      if (W.Alive) {
        (void)sendTo(W, TagShutdown, Empty);
        ::close(W.DownFd); // EOF makes even a mid-attempt worker exit
        W.DownFd = -1;
      }
    for (int Spin = 0; Spin < 100 && aliveCount() > 0; ++Spin) {
      for (FleetWorker &W : Workers) {
        if (!W.Alive)
          continue;
        int Status = 0;
        if (::waitpid(W.Pid, &Status, WNOHANG) == W.Pid) {
          W.Alive = false;
          if (W.UpFd >= 0) {
            ::close(W.UpFd);
            W.UpFd = -1;
          }
        }
      }
      if (aliveCount() > 0)
        ::usleep(10000);
    }
    for (FleetWorker &W : Workers) {
      if (!W.Alive)
        continue;
      ::kill(W.Pid, SIGKILL);
      int Status = 0;
      ::waitpid(W.Pid, &Status, 0);
      W.Alive = false;
      if (W.UpFd >= 0) {
        ::close(W.UpFd);
        W.UpFd = -1;
      }
    }
  };

  // Last-resort degradation: every worker is gone and the respawn budget
  // is spent. Units that never failed finish in the coordinator; units
  // that already killed a worker are crash suspects and must not run in
  // the only process left -- they are quarantined.
  auto runQueueInProcess = [&]() {
    StackPool Pool;
    for (;;) {
      if (interruptRequested()) {
        Interrupted = true;
        return;
      }
      if (Opts.MaxExecutions && Total.Executions >= Opts.MaxExecutions) {
        CapHit = true;
        return;
      }
      if (Opts.TimeBudgetSeconds > 0 && elapsed() >= Opts.TimeBudgetSeconds) {
        TimedOut = true;
        return;
      }
      if (TimedOut)
        return;
      const WorkUnit *U = LT.lease(/*Owner=*/-2, elapsed(), /*Deadline=*/0);
      if (!U) {
        if (LT.pendingCount() == 0)
          return;
        ::usleep(10000); // only backoff-delayed units remain
        continue;
      }
      uint64_t Id = U->Id;
      if (LT.attempts(Id) > 0) {
        LT.quarantine(Id);
        quarantineIncident(
            Id, "crash-suspect work unit (" + std::to_string(LT.attempts(Id)) +
                    " worker deaths) quarantined: no fleet workers left");
        continue;
      }
      if (Opts.StopOnFirstBug && HasBug &&
          !dfsBefore(pathKeyOfPrefix(U->Prefix), BestKey)) {
        LT.commit(Id);
        continue;
      }
      CheckerOptions AOpts = ChildOpts;
      if (Opts.TimeBudgetSeconds > 0) {
        AOpts.TimeBudgetSeconds = Opts.TimeBudgetSeconds - elapsed();
        if (AOpts.TimeBudgetSeconds < 0.001)
          AOpts.TimeBudgetSeconds = 0.001;
      }
      Explorer E(Program, AOpts);
      if (AOpts.ReuseExecutionState)
        E.setStackPool(&Pool);
      if (!U->Prefix.empty())
        E.preloadScheduleFrozenPrefix(U->Prefix, U->FrozenLen);
      uint64_t Budget = UINT64_MAX;
      if (Opts.MaxExecutions && Opts.MaxExecutions > Total.Executions)
        Budget = Opts.MaxExecutions - Total.Executions;
      uint64_t Done = 0;
      std::vector<std::vector<ScheduleChoice>> Rem;
      E.setExecutionHook([&](Explorer &Ex) {
        ++Done;
        if (Opts.StopOnFirstBug && HasBug &&
            !dfsBefore(Ex.consumedPathKey(), BestKey))
          return false;
        if (interruptRequested() || Done >= Budget) {
          Ex.splitWork(Rem, SIZE_MAX);
          return false;
        }
        return true;
      });
      CheckResult R = E.run();
      std::vector<uint64_t> SS(E.seenStates().begin(), E.seenStates().end());
      commitAttempt(Id, R.Stats, R.Stats.TimedOut, R.Bug, R.Incidents, SS,
                    std::move(Rem), /*Broadcast=*/false);
    }
  };

  uint64_t NextCheckpointAt =
      Opts.CheckpointEvery
          ? (Total.Executions / Opts.CheckpointEvery + 1) *
                Opts.CheckpointEvery
          : 0;

  for (;;) {
    if (interruptRequested()) {
      drainLeases(std::min(2.0, HbTimeout));
      if (LT.pendingCount() > 0) {
        ResumeOut = buildCheckpoint();
        Interrupted = true;
      }
      break;
    }
    if (Opts.MaxExecutions && Total.Executions >= Opts.MaxExecutions) {
      CapHit = true;
      break;
    }
    if (Opts.TimeBudgetSeconds > 0 && elapsed() >= Opts.TimeBudgetSeconds)
      TimedOut = true;
    if (TimedOut)
      break;
    if (LT.pendingCount() == 0)
      break;
    if (aliveCount() == 0) {
      runQueueInProcess();
      if (Interrupted)
        ResumeOut = buildCheckpoint();
      break;
    }
    if (NextCheckpointAt && Opts.CheckpointSink &&
        Total.Executions >= NextCheckpointAt) {
      // Checkpoint barrier: settle every lease so the frontier is exact,
      // persist, then resume issuing.
      drainLeases(2 * HbTimeout);
      ++Total.Checkpoints;
      if (Ctr)
        Ctr->add(obs::Counter::Checkpoints);
      Opts.CheckpointSink(*buildCheckpoint());
      NextCheckpointAt = (Total.Executions / Opts.CheckpointEvery + 1) *
                         Opts.CheckpointEvery;
      continue;
    }
    issueUnits();
    if (Ctr) {
      Ctr->setGauge(obs::Gauge::WorkQueueDepth, LT.queuedCount());
      Ctr->setGauge(obs::Gauge::ActiveWorkers, busyCount());
    }
    processEvents(50);
  }

  shutdownWorkers();

  CheckResult Result;
  Result.Stats = Total;
  Result.Stats.DistinctStates = States.size();
  // Quarantine incidents keep their (unit-id ordered) arrival order, like
  // the sandbox's crash incidents; race incidents sort by message so the
  // list is deterministic across widths and schedules of arrival.
  std::sort(RaceIncidents.begin(), RaceIncidents.end(),
            [](const BugReport &A, const BugReport &B) {
              return A.Message < B.Message;
            });
  Result.Incidents = std::move(CrashIncidents);
  Result.Incidents.insert(Result.Incidents.end(), RaceIncidents.begin(),
                          RaceIncidents.end());
  if (Opts.Races != RaceCheckMode::Off)
    Result.Stats.RacesFound = RaceBase + RaceKeys.size();
  if (Opts.ExportStateSignatures) {
    Result.StateSignatures.assign(States.begin(), States.end());
    std::sort(Result.StateSignatures.begin(), Result.StateSignatures.end());
  }
  Result.Stats.ExecutionCapHit = CapHit;
  Result.Stats.TimedOut = TimedOut;
  Result.Stats.Interrupted = Interrupted;
  if (Interrupted)
    Result.Resume = ResumeOut;
  if (HasBug) {
    Result.Kind = BestKind;
    Result.Bug = BestBug;
  } else {
    // No genuine workload bug: the first crash incident (a quarantined
    // unit) stands in, mirroring the sandbox. Data races never stand in
    // here -- escalation is finalizeRaces' top-level decision.
    for (const BugReport &I : Result.Incidents)
      if (I.Kind != Verdict::DataRace) {
        Result.Kind = I.Kind;
        Result.Bug = I;
        break;
      }
    if (Result.Kind == Verdict::Pass && Total.Divergences > 0 &&
        Total.Executions == 0)
      Result.Kind = Verdict::Divergence;
  }
  // Exhausted iff nothing cut the enumeration short. First-bug pruning
  // mirrors the serial early stop (flag stays clear), and a quarantined
  // subtree counts like the sandbox's skipped crashing subtree.
  Result.Stats.SearchExhausted =
      !CapHit && !TimedOut && !Interrupted && !(HasBug && Opts.StopOnFirstBug);
  Result.Stats.Seconds = elapsed();
  if (Ctr) {
    Ctr->setGauge(obs::Gauge::WorkQueueDepth, 0);
    Ctr->setGauge(obs::Gauge::ActiveWorkers, 0);
  }
  return Result;
}
