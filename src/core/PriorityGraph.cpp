//===- core/PriorityGraph.cpp ---------------------------------------------===//

#include "core/PriorityGraph.h"

using namespace fsmc;

ThreadSet PriorityGraph::pre(ThreadSet X) const {
  ThreadSet Result;
  for (Tid T = 0; T < MaxThreads; ++T)
    if (Succ[T].intersects(X))
      Result.insert(T);
  return Result;
}

int PriorityGraph::removeEdgesInto(Tid T) {
  assert(validTid(T) && "tid out of range");
  int Removed = 0;
  for (auto &S : Succ) {
    Removed += S.contains(T);
    S.erase(T);
  }
  return Removed;
}

void PriorityGraph::addEdgesFrom(Tid From, ThreadSet Sinks) {
  assert(validTid(From) && "tid out of range");
  assert(!Sinks.contains(From) && "self-edge would create a cycle");
  Succ[From] |= Sinks;
}

bool PriorityGraph::isAcyclic() const {
  // Kahn's algorithm over the ≤64-node graph: repeatedly remove nodes with
  // no incoming edge from the remaining subgraph.
  ThreadSet Remaining;
  for (Tid T = 0; T < MaxThreads; ++T)
    if (!Succ[T].empty())
      Remaining.insert(T);
  for (Tid T = 0; T < MaxThreads; ++T)
    for (Tid U : Succ[T])
      Remaining.insert(U);

  bool Progress = true;
  while (!Remaining.empty() && Progress) {
    Progress = false;
    for (Tid T : Remaining) {
      // T is removable if no remaining node has an edge into it.
      bool HasIncoming = false;
      for (Tid S : Remaining)
        if (S != T && Succ[S].contains(T)) {
          HasIncoming = true;
          break;
        }
      if (!HasIncoming) {
        Remaining.erase(T);
        Progress = true;
      }
    }
  }
  return Remaining.empty();
}

bool PriorityGraph::empty() const {
  for (const auto &S : Succ)
    if (!S.empty())
      return false;
  return true;
}

int PriorityGraph::edgeCount() const {
  int N = 0;
  for (const auto &S : Succ)
    N += S.size();
  return N;
}

void PriorityGraph::clear() {
  for (auto &S : Succ)
    S.clear();
}
