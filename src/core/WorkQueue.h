//===- core/WorkQueue.h - MPMC queue of schedule-prefix shards -*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded multi-producer/multi-consumer queue that carries schedule
/// prefixes between parallel workers. Each item is one unexplored subtree
/// of the DFS choice tree, identified by the frozen choice prefix that
/// reaches its root (see Explorer::preloadSchedule(Frozen)).
///
/// The queue also owns search-wide termination: it counts *outstanding*
/// items -- queued plus popped-but-unfinished -- and pop() returns empty
/// only when that count hits zero (every subtree fully explored, and no
/// running worker can donate more) or the search is stopped. This is the
/// standard work-stealing termination argument: an item can only appear
/// while some other item is outstanding, so outstanding==0 is stable.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_WORKQUEUE_H
#define FSMC_CORE_WORKQUEUE_H

#include "core/Schedule.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace fsmc {

namespace obs {
struct WorkerCounters;
} // namespace obs

/// One unit of parallel search: the subtree of schedules below Prefix.
struct WorkItem {
  std::vector<ScheduleChoice> Prefix;
};

class WorkQueue {
public:
  explicit WorkQueue(size_t Capacity) : Capacity(Capacity) {}

  /// Enqueues \p Items, registering them as outstanding. Donation is
  /// gated on freeSlots(), so the capacity is a soft bound: a racing
  /// donor may briefly overshoot it rather than lose donated work.
  void pushAll(std::vector<WorkItem> Items);

  /// Blocks until an item is available, all work is done, or stop().
  /// A successful pop leaves the item outstanding until itemDone().
  std::optional<WorkItem> pop();

  /// Balances one successful pop(); the last call wakes all waiters.
  void itemDone();

  /// Aborts the search: drops queued items and wakes every waiter.
  void stop();

  size_t size() const;
  /// Remaining soft capacity; donors size their splits by this.
  size_t freeSlots() const;
  /// True when the queue holds fewer than \p LowWater items -- the
  /// signal for busy workers to donate a slice of their subtree.
  bool hungry(size_t LowWater) const;

  /// Publishes the queue depth to \p Ctr's WorkQueueDepth gauge after
  /// every mutation (the driver's shard; all writes happen under the
  /// queue lock, so the single-writer protocol holds).
  void setObserver(obs::WorkerCounters *Ctr);

private:
  /// Call with M held after Q changed.
  void publishDepth();

  obs::WorkerCounters *Ctr = nullptr;
  mutable std::mutex M;
  std::condition_variable CV;
  std::deque<WorkItem> Q;
  size_t Capacity;
  size_t Outstanding = 0;
  bool Stopped = false;
};

} // namespace fsmc

#endif // FSMC_CORE_WORKQUEUE_H
