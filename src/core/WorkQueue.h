//===- core/WorkQueue.h - Cold-path injector of prefix shards --*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cold-path *injector* queue of the parallel search. Steady-state
/// work flows through per-worker WorkStealDeques (WorkStealDeque.h) and
/// never touches this queue; the injector carries only the cold paths:
///
///   - seeding (the root item, or a resumed checkpoint frontier),
///   - epoch restarts (requeueing the stash after a periodic checkpoint),
///   - the idle workers' park bench: a worker that finds every deque and
///     the injector empty parks on the injector's condvar with a timeout,
///     and notifyAll() is the global wake signal (work published, search
///     over, epoch stop).
///
/// Each item is one unexplored subtree of the DFS choice tree, identified
/// by the frozen choice prefix that reaches its root (see
/// Explorer::preloadSchedule(Frozen)).
///
/// Termination is *not* this queue's job anymore: the engine counts
/// outstanding items in a shared atomic (see ParallelExplorer.cpp) and
/// uses notifyAll() to broadcast the count reaching zero. That is what
/// lets the hot loop run without ever acquiring this lock.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_WORKQUEUE_H
#define FSMC_CORE_WORKQUEUE_H

#include "core/Schedule.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace fsmc {

namespace obs {
struct WorkerCounters;
} // namespace obs

/// One unit of parallel search: the subtree of schedules below Prefix.
struct WorkItem {
  std::vector<ScheduleChoice> Prefix;
};

class WorkQueue {
public:
  explicit WorkQueue(size_t Capacity) : Capacity(Capacity) {}

  /// Enqueues \p Items and wakes every parked worker. The capacity is a
  /// soft bound: seeding a resumed frontier wider than the queue must
  /// not lose items, so pushes never block or drop.
  void pushAll(std::vector<WorkItem> Items);

  /// Non-blocking pop; nullopt when empty or stopped.
  std::optional<WorkItem> tryPop();

  /// Park for up to \p Timeout or until notifyAll()/pushAll() wakes the
  /// caller, then pop if anything arrived. A nullopt return says only
  /// "nothing here now" -- callers rescan deques and the termination
  /// count, then park again. Deliberately not a predicate loop: any wake
  /// reason (new work, search over, epoch stop) must return control to
  /// the caller's scan loop.
  std::optional<WorkItem> popWait(std::chrono::microseconds Timeout);

  /// Wakes every parked worker without touching the queue.
  void notifyAll();

  /// Aborts the search: drops queued items and wakes every waiter.
  void stop();

  size_t size() const;
  /// Lock-free depth probe for starving workers' rescan loops; may be
  /// stale by the time the caller acts.
  size_t approxSize() const { return Depth.load(std::memory_order_relaxed); }
  /// Remaining soft capacity; donors size their splits by this.
  size_t freeSlots() const;

  /// Publishes the queue depth to \p Ctr's WorkQueueDepth gauge after
  /// every mutation (the driver's shard; all writes happen under the
  /// queue lock, so the single-writer protocol holds).
  void setObserver(obs::WorkerCounters *Ctr);

private:
  /// Call with M held after Q changed.
  void publishDepth();

  obs::WorkerCounters *Ctr = nullptr;
  mutable std::mutex M;
  std::condition_variable CV;
  std::deque<WorkItem> Q;
  /// Mirrors Q.size(); written under M, read without it.
  std::atomic<size_t> Depth{0};
  size_t Capacity;
  bool Stopped = false;
};

} // namespace fsmc

#endif // FSMC_CORE_WORKQUEUE_H
