//===- core/LivenessMonitor.h - Livelock & good-samaritan checks *- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detects the two liveness outcomes of the semi-algorithm (Section 2):
///
///  - outcome 2: a diverging execution that violates the good samaritan
///    property GS = ∀t. GF sched(t) ⇒ GF (sched(t) ∧ yield(t)) -- some
///    thread is scheduled forever without yielding (Section 4.3.1's bug);
///
///  - outcome 3: a diverging execution that is fair -- every thread
///    scheduled in the limit also yields, i.e. a livelock (Section 4.3.2,
///    and the dining-philosophers livelock of Figure 1).
///
/// In practice an infinite execution cannot be generated, so the paper has
/// the user "set a large bound on the execution depth" and examine
/// executions that exceed it. This monitor does that examination
/// automatically, plus an *eager* good-samaritan check that fires as soon
/// as one thread monopolizes the schedule for GoodSamaritanBound
/// transitions without yielding while another thread is enabled.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_LIVENESSMONITOR_H
#define FSMC_CORE_LIVENESSMONITOR_H

#include "core/Trace.h"
#include "support/ThreadSet.h"

#include <array>
#include <cstdint>
#include <string>

namespace fsmc {

/// Per-execution liveness bookkeeping and divergence classification.
class LivenessMonitor {
public:
  /// \p GsBound: eager good-samaritan threshold; 0 disables eager checks.
  explicit LivenessMonitor(uint64_t GsBound) : GsBound(GsBound) {}

  /// Resets per-execution counters.
  void beginExecution();

  /// Ingests one transition of thread \p T. \p WasYield is the yield(t)
  /// predicate at scheduling time; \p OthersEnabled is whether some other
  /// thread was enabled in the pre-state (a lone thread spinning cannot
  /// starve anyone and is not flagged eagerly).
  void onTransition(Tid T, bool WasYield, bool OthersEnabled);

  /// \returns the thread caught by the eager good-samaritan detector, or
  /// -1. Valid immediately after onTransition.
  Tid eagerGsViolator() const { return EagerViolator; }

  /// Classification of an execution that exceeded the execution bound.
  struct Divergence {
    bool IsGoodSamaritan = false; ///< else: fair divergence (livelock).
    Tid Culprit = -1;             ///< Non-yielding thread for GS reports.
    std::string Summary;
  };

  /// Examines the suffix of \p T (an execution that exceeded the bound)
  /// and decides between outcome 2 (good-samaritan violation) and outcome
  /// 3 (livelock): if every thread scheduled in the suffix also yields in
  /// it, the divergence is fair.
  static Divergence classifyDivergence(const Trace &T, size_t Window);

private:
  uint64_t GsBound;
  std::array<uint64_t, MaxThreads> RunSinceYield = {};
  std::array<bool, MaxThreads> StarvedSomeone = {};
  Tid EagerViolator = -1;
};

} // namespace fsmc

#endif // FSMC_CORE_LIVENESSMONITOR_H
