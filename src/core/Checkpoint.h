//===- core/Checkpoint.h - Search checkpoint and resume --------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpointing for long unattended runs (the multi-week Dryad/APE runs
/// of the paper's Section 6 are the motivating scale): the complete
/// remaining search is a set of schedule prefixes -- the stateless
/// method's whole state between executions is the DFS choice stack -- so
/// a checkpoint is small, versioned text, and resuming from it visits
/// exactly the executions an uninterrupted run would have visited.
///
/// A serial explorer checkpoints its raw DFS stack (one unit, nothing
/// frozen: the resumed explorer may advance any record). The parallel
/// driver checkpoints the union of every worker's splitWork donation plus
/// the queued work items (all fully frozen subtree prefixes). Format and
/// invariants: docs/ROBUSTNESS.md.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_CHECKPOINT_H
#define FSMC_CORE_CHECKPOINT_H

#include "core/Checker.h"
#include "core/Schedule.h"

#include <string>
#include <vector>

namespace fsmc {

/// One unexplored region of the choice tree.
struct CheckpointUnit {
  std::vector<ScheduleChoice> Prefix;
  /// Leading records the resumed explorer must not advance or pop:
  /// Prefix.size() for a donated subtree prefix (the search is confined
  /// below it), 0 for a serial DFS stack (every record is advanceable).
  size_t FrozenLen = 0;
};

/// Everything needed to continue a search: written by
/// CheckerOptions::CheckpointSink / returned in CheckResult::Resume.
struct CheckpointState {
  /// Cumulative totals at save time; resume continues from these so
  /// budgets (MaxExecutions) and reports span the whole logical run.
  SearchStats Stats;
  /// Unexplored frontier. Empty means the search was already complete.
  std::vector<CheckpointUnit> Frontier;
  /// Serial explorer PRNG state (random tails / random walks); chained
  /// through on in-process serial resume only.
  uint64_t Rng = 0;
  /// Coverage signatures seen so far (sorted), so DistinctStates and the
  /// exported signature set match an uninterrupted run.
  std::vector<uint64_t> States;
  /// First (DFS-smallest so far) bug of a StopOnFirstBug=false run that
  /// checkpointed after finding it. TraceText is not persisted -- replay
  /// the schedule to regenerate it.
  std::optional<BugReport> Bug;
};

/// Rewrites \p U as fully frozen subtree prefixes: the unit's own stack
/// (confining a worker below the complete path) plus one prefix per
/// untried sibling alternative -- the same carve-up Explorer::splitWork
/// performs on a live stack. Already-frozen units pass through unchanged.
/// The parallel driver uses this to shard a serial checkpoint.
std::vector<std::vector<ScheduleChoice>>
decomposeUnitToFrozenPrefixes(const CheckpointUnit &U);

/// Stable text encoding, version tag "fsmc-ckpt 3" (version 2 and 1
/// inputs still decode; missing stats -- POR for v1, store-buffer
/// counters for v2 -- read as zero). \p Program and \p Seed identify
/// the run; resume refuses a mismatched program name.
std::string encodeCheckpoint(const CheckpointState &CK,
                             const std::string &Program, uint64_t Seed);

/// Parses encodeCheckpoint output. \returns false on malformed or
/// wrong-version input with a diagnostic in \p Err.
bool decodeCheckpoint(const std::string &Text, CheckpointState &CK,
                      std::string &Program, uint64_t &Seed,
                      std::string &Err);

/// Atomically (write-temp-then-rename) writes the checkpoint file.
bool writeCheckpointFile(const std::string &Path, const CheckpointState &CK,
                         const std::string &Program, uint64_t Seed);

/// Reads a checkpoint file; false with \p Err set on any failure.
bool readCheckpointFile(const std::string &Path, CheckpointState &CK,
                        std::string &Program, uint64_t &Seed,
                        std::string &Err);

/// Continues a checkpointed search to completion (or the next budget /
/// interrupt). \p Opts must carry the same semantics-affecting knobs
/// (Fair, YieldK, Kind, bounds, Seed) as the original run; stats and
/// coverage are cumulative across the original and resumed parts.
CheckResult resumeCheck(const TestProgram &Program,
                        const CheckerOptions &Opts,
                        const CheckpointState &CK);

} // namespace fsmc

#endif // FSMC_CORE_CHECKPOINT_H
