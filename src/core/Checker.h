//===- core/Checker.h - Public model-checking entry point ------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public API of the checker: describe a test program, configure the
/// search, run it, get a verdict.
///
/// The semi-algorithm of Section 2 has four outcomes, mapped here as:
///   1. terminates with a safety violation      -> SafetyViolation/Deadlock
///   2. diverges violating the good samaritan   -> GoodSamaritanViolation
///   3. diverges with an infinite fair execution-> Livelock
///   4. terminates without errors               -> Pass
/// Outcomes 2 and 3 are detected, as the paper prescribes, by a large
/// execution bound "orders of magnitude greater than the maximum number of
/// steps the user expects" plus classification of the diverging suffix.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_CHECKER_H
#define FSMC_CORE_CHECKER_H

#include "runtime/PendingOp.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace fsmc {

namespace obs {
class Observer;
struct SearchProfile;
struct WorkerCounters;
} // namespace obs

struct CheckpointState;

/// Final classification of a checker run.
enum class Verdict {
  Pass,                   ///< Search finished (or budget ran out) bug-free.
  SafetyViolation,        ///< A checkThat/fail assertion fired.
  Deadlock,               ///< A state with live but no enabled threads.
                          ///< Never false under fairness (Theorem 3).
  Livelock,               ///< Divergence on a fair execution (outcome 3).
  GoodSamaritanViolation, ///< A thread scheduled forever without yielding
                          ///< (outcome 2; Section 4.3.1's bug class).
  Divergence,             ///< The test program is nondeterministic beyond
                          ///< scheduling/chooseInt: a recorded schedule did
                          ///< not replay even after the configured retries.
                          ///< A checker limitation, never a workload bug.
  Crash,                  ///< Sandboxed execution died on a signal or
                          ///< unexpected exit (--isolate=batch only).
  Hang,                   ///< Sandboxed execution made no progress for the
                          ///< watchdog timeout and was killed.
  DataRace,               ///< Concurrent conflicting accesses to a plain
                          ///< shared variable with no happens-before edge
                          ///< (src/race/RaceDetector.h; --races=on|fatal).
};

const char *verdictName(Verdict V);

/// How the search enumerates scheduling choices. A depth bound (the
/// "without fairness" baseline of Section 4.2.1) is orthogonal and
/// composes with any kind via CheckerOptions::DepthBound, exactly as the
/// paper combines db=20..60 with cb=1..3 and dfs in Table 2.
enum class SearchKind {
  Dfs,            ///< Exhaustive depth-first search of all choices.
  ContextBounded, ///< DFS over executions with at most `ContextBound`
                  ///< preemptions (Musuvathi-Qadeer PLDI'07), combined with
                  ///< fairness per Section 4: fairness-induced switches are
                  ///< not counted.
  RandomWalk,     ///< Repeated uniformly random executions; no backtrack.
};

/// Detailed counterexample for a non-Pass verdict.
struct BugReport {
  Verdict Kind = Verdict::Pass;
  std::string Message;     ///< One-line description.
  std::string TraceText;   ///< Rendered suffix of the buggy execution.
  /// The buggy execution's serialized choice sequence; feed it to
  /// replaySchedule (core/Schedule.h) to re-run the exact schedule.
  std::string Schedule;
  uint64_t AtExecution = 0;///< 0-based index of the buggy execution.
  uint64_t AtStep = 0;     ///< Transition count when detected.
};

/// Aggregate statistics of a search; the benches derive every table and
/// figure from these.
struct SearchStats {
  uint64_t Executions = 0;
  uint64_t Transitions = 0;
  uint64_t Preemptions = 0;
  /// Executions abandoned at the depth bound / hard cap without
  /// terminating -- the wasted work metric of Figure 2.
  uint64_t NonterminatingExecutions = 0;
  /// Executions pruned by the stateful reference search.
  uint64_t PrunedExecutions = 0;
  /// Executions cut by sleep-set partial-order reduction: every
  /// schedulable move slept, so the subtree is covered by an equivalent
  /// interleaving explored elsewhere (docs/POR.md).
  uint64_t PorBranchesPruned = 0;
  /// Sleeping threads removed from candidate sets at scheduling points --
  /// the per-branch work POR saved.
  uint64_t PorSleepHits = 0;
  /// Sleeping threads woken because they were the only fairness-allowed
  /// choices left: under the fair scheduler a sleeping transition is
  /// woken, never dropped (docs/POR.md).
  uint64_t PorFairWakes = 0;
  uint64_t MaxDepth = 0;
  /// Distinct state signatures seen (when coverage tracking is on).
  uint64_t DistinctStates = 0;
  /// Revisits of already-seen signatures (when coverage tracking is on):
  /// every signature lookup is either a new DistinctStates entry or a
  /// StateHits increment, so DistinctStates + StateHits = lookups.
  uint64_t StateHits = 0;
  /// Priority edges the fair scheduler added across the whole search.
  uint64_t FairEdgeAdditions = 0;
  /// Total buggy executions seen (> 1 only with StopOnFirstBug = false).
  uint64_t BugsFound = 0;
  int MaxThreads = 0;        ///< Table 1 "Threads".
  uint64_t MaxSyncOps = 0;   ///< Table 1 "Synch Ops".
  double Seconds = 0;
  /// Schedule prefixes discarded because they would not replay even after
  /// the configured retries (robustness layer; see docs/ROBUSTNESS.md).
  uint64_t Divergences = 0;
  /// Re-executions spent trying to get a mismatching prefix to replay.
  uint64_t DivergenceRetries = 0;
  /// Sandboxed executions that died on a signal / unexpected exit.
  uint64_t Crashes = 0;
  /// Sandboxed executions killed by the hang watchdog.
  uint64_t Hangs = 0;
  /// Checkpoints written (periodic + on interrupt).
  uint64_t Checkpoints = 0;
  /// Plain-variable accesses race-checked (RaceCheckMode on/fatal).
  uint64_t RacesChecked = 0;
  /// Distinct data races found (deduplicated by race description).
  uint64_t RacesFound = 0;
  /// Fleet mode (--fleet=N; docs/FLEET.md). Zero on every non-fleet run
  /// and on every healthy fleet run, so stats-json omits zero values and
  /// legacy output stays byte-identical.
  /// Worker processes that died (signal or unexpected exit) mid-search.
  uint64_t FleetWorkerCrashes = 0;
  /// Work units re-issued to a surviving worker after their holder died
  /// or missed its heartbeat deadline.
  uint64_t FleetReissues = 0;
  /// Replacement workers forked after a death, within the restart budget.
  uint64_t FleetRespawns = 0;
  /// Work units quarantined after killing K consecutive workers; each
  /// becomes a replayable Verdict::Crash incident.
  uint64_t FleetQuarantined = 0;
  /// Weak-memory exploration (--memory=tso|pso; docs/MEMORY.md). Zero
  /// under --memory=sc, so stats-json omits them and sc output stays
  /// byte-identical.
  /// Stores enqueued into per-thread store buffers.
  uint64_t BufferedStores = 0;
  /// Buffered stores committed to memory (by flush agents, fences, or
  /// implicit drains at sync operations).
  uint64_t StoreFlushes = 0;
  /// Knuth weighted-backtrack estimator mass (CheckerOptions::Estimate):
  /// each counted execution contributes the product of 1/branch-factor
  /// over the backtrackable records on its path, so the masses partition
  /// the choice tree and sum to exactly 1.0 at exhaustion. The online
  /// tree-size estimate is Executions / EstimateMass (docs/
  /// OBSERVABILITY.md covers the early-run bias caveat).
  double EstimateMass = 0;
  bool TimedOut = false;        ///< Time budget exhausted.
  bool ExecutionCapHit = false; ///< MaxExecutions reached.
  bool SearchExhausted = false; ///< DFS enumerated every execution.
  bool Interrupted = false;     ///< Stopped by CheckerOptions::InterruptFlag.
};

/// Accumulates \p From into \p Into: counters add, maxima take the max.
/// Budget flags (TimedOut &c.) stay owned by the aggregating driver and
/// are not merged. Shared by the parallel driver, the sandbox parent, and
/// checkpoint resume.
void mergeSearchStats(SearchStats &Into, const SearchStats &From);

/// Happens-before data race detection over plain shared variables
/// (--races=). Detection is purely observational: On and Fatal explore
/// the same execution multiset as Off; only the reporting differs.
enum class RaceCheckMode {
  Off,   ///< No detection; zero overhead (the default).
  On,    ///< Detect and report races (Verdict::DataRace + Incidents) but
         ///< keep searching the full configured budget.
  Fatal, ///< A detected race ends the execution like a safety violation
         ///< and, with StopOnFirstBug, the search.
};

/// Where test-program code runs relative to the checker (--isolate=).
enum class IsolationMode {
  Off,   ///< In-process; a workload crash kills the checker (fast path).
  Batch, ///< Fork a worker per batch of executions; crashes and hangs are
         ///< harvested as Verdict::Crash / Verdict::Hang with a repro
         ///< schedule, and the search continues (core/Sandbox.h).
};

/// Knobs for one checker run. Defaults give the paper's configuration:
/// fair DFS with k = 1 and divergence detection.
struct CheckerOptions {
  /// Use the fair scheduler (Algorithm 1). When false the demonic
  /// scheduler is unconstrained -- the pre-CHESS-fairness baseline.
  bool Fair = true;
  /// Process every k-th yield (Section 3's parameterized algorithm).
  int YieldK = 1;

  SearchKind Kind = SearchKind::Dfs;
  /// Preemption bound for SearchKind::ContextBounded.
  int ContextBound = 2;
  /// 0 = no depth bound. Otherwise the search branches only on the first
  /// DepthBound transitions of each execution -- the termination crutch
  /// stateless checkers needed before fairness (Section 4.2.1).
  uint64_t DepthBound = 0;
  /// If false, executions are cut at DepthBound with no random tail
  /// (the Figure 2 configuration); if true, a random walk finishes the
  /// execution and its states still count toward coverage (Section 4.2.1).
  bool RandomTail = true;
  /// Hard cap on random-tail length; executions still alive count as
  /// nonterminating and are abandoned.
  uint64_t RandomTailCap = 20000;

  /// The "large bound on the execution depth" of Section 2. An execution
  /// exceeding it is classified as a liveness violation when
  /// DetectDivergence is set, else abandoned and counted.
  uint64_t ExecutionBound = 20000;
  /// Report divergence as Livelock / GoodSamaritanViolation. Defaults on;
  /// baseline (unfair) reproductions turn it off since their depth cut is
  /// expected.
  bool DetectDivergence = true;
  /// Eager good-samaritan detector: a thread scheduled this many times
  /// since its last yield, while some other thread was enabled, is
  /// reported without waiting for ExecutionBound. 0 disables.
  uint64_t GoodSamaritanBound = 4000;

  /// Stop at the first bug (Table 3 measures executions to first bug).
  bool StopOnFirstBug = true;

  uint64_t MaxExecutions = 0; ///< 0 = unlimited.
  double TimeBudgetSeconds = 0; ///< 0 = unlimited.
  uint64_t Seed = 12345;

  /// OS worker threads for the search. 1 = the serial explorer; > 1
  /// shards the DFS by schedule prefix across workers (see
  /// core/ParallelExplorer.h). Exhaustive searches visit the same
  /// executions and states as the serial run, and StopOnFirstBug reports
  /// the same (DFS-smallest) counterexample; random-walk search and
  /// StatefulPruning ignore this and run serially.
  int Jobs = 1;

  /// Recycle per-execution runtime state (thread records, pooled fiber
  /// stacks, object-name storage) across the executions of a search
  /// instead of destroying and re-creating it -- the hot-path fast path
  /// (docs/PERFORMANCE.md). Observationally invisible: traces, stats and
  /// the explored execution multiset are byte-identical either way; off
  /// exists for A/B measurement and as an escape hatch.
  bool ReuseExecutionState = true;

  /// Memory model to explore under (--memory=sc|tso|pso; docs/MEMORY.md).
  /// Sc is the historical sequentially-consistent search, byte-identical
  /// to builds without the feature. Tso gives every thread a FIFO store
  /// buffer: stores enqueue, loads forward from the own buffer, and a
  /// pseudo-thread-visible "flush oldest entry" action joins the enabled
  /// set, so the fair scheduler and DFS backtracking explore delayed
  /// propagation. Pso additionally relaxes inter-variable flush order.
  /// Caps the workload at 32 threads (tids 32..63 name flush agents).
  MemoryModel Memory = MemoryModel::Sc;

  /// Sleep-set partial-order reduction (--por=on; docs/POR.md). Prunes
  /// interleavings that only permute independent operations, as judged by
  /// the dependence oracle in core/Dependence.h. Sound for programs whose
  /// shared state lives entirely in modeled objects. Composed with the
  /// fair scheduler via wake rules -- a sleeping transition that is the
  /// only fairness-allowed choice is woken, never dropped -- but POR over
  /// fair schedules remains the paper's stated future work (Section 5),
  /// so the combination is pinned empirically by the differential parity
  /// suite (tests/core/PorParityTest.cpp) rather than by proof.
  bool Por = false;

  /// Record distinct state signatures (requires the test program to call
  /// Runtime::setStateExtractor, or relies on the built-in thread
  /// signature otherwise).
  bool TrackCoverage = false;
  /// Also return the signatures themselves, sorted, in
  /// CheckResult::StateSignatures (implies TrackCoverage). The
  /// serial-equivalence tests use this to assert a parallel run visits
  /// the same state *set* as the serial run, not merely as many states.
  bool ExportStateSignatures = false;
  /// Stateful reference search: prune an execution once it reaches an
  /// already-visited state. Used only to compute the "Total States" ground
  /// truth of Table 2; implies TrackCoverage.
  bool StatefulPruning = false;

  /// Online tree-size estimation (--estimate): accumulate the Knuth
  /// weighted-backtrack mass in SearchStats::EstimateMass so progress %
  /// and estimated_total_executions can be reported mid-run. One
  /// multiply-add per completed execution; off by default to keep default
  /// reports byte-identical.
  bool Estimate = false;
  /// Schedule-point hotspot profiling (--profile-search): record per-op-
  /// class / per-object branching histograms, depth and branch-factor
  /// distributions, and POR-pruning attribution into
  /// CheckResult::Profile (src/obs/SearchProfile.h).
  bool ProfileSearch = false;

  /// Observability hub (src/obs/): live sharded counters and, if its sink
  /// is set, a structured event trace. Not owned, may outlive the run.
  /// Null keeps every instrumentation hook down to one pointer test.
  obs::Observer *Obs = nullptr;

  /// Happens-before race detection over PlainVar accesses (src/race/).
  RaceCheckMode Races = RaceCheckMode::Off;

  //===--- Robustness layer (docs/ROBUSTNESS.md) -------------------------===//

  /// Run test-program code in forked child processes so workload crashes
  /// and hangs cannot kill the search. Forces serial exploration (like
  /// RandomWalk, Jobs is ignored); StatefulPruning falls back to the
  /// in-process path because prune keys cannot cross process boundaries.
  IsolationMode Isolate = IsolationMode::Off;
  /// Executions per forked worker under IsolationMode::Batch; batching
  /// amortizes the fork cost.
  int SandboxBatchSize = 64;
  /// Sandbox watchdog: a child that produces no progress records for this
  /// long is SIGKILLed and the execution recorded as Verdict::Hang. Must
  /// exceed the wall time of the slowest single execution.
  double HangTimeoutSeconds = 10.0;
  /// A recorded prefix that fails to replay (the workload is
  /// nondeterministic beyond scheduling/chooseInt) is re-executed this
  /// many times before being discarded under Verdict::Divergence.
  int DivergenceRetries = 3;
  /// Invoke CheckpointSink every this many executions (0 = never). The
  /// checkpoint captures the DFS frontier so the search can be resumed
  /// with resumeCheck (core/Checkpoint.h).
  uint64_t CheckpointEvery = 0;
  std::function<void(const CheckpointState &)> CheckpointSink;
  /// Cooperative interrupt: when non-null and set (e.g. from a SIGINT
  /// handler), the search stops at the next execution boundary, marks
  /// Stats.Interrupted, and returns a resume checkpoint in
  /// CheckResult::Resume.
  std::atomic<bool> *InterruptFlag = nullptr;

  //===--- Fleet mode (docs/FLEET.md) ------------------------------------===//

  /// > 1: supervised multi-process search (--fleet=N): a coordinator forks
  /// N long-lived workers and streams leased work units over pipes, with
  /// crash recovery, re-issue and graceful degradation (core/Fleet.h).
  /// Verdicts and incident sets match --jobs=N on exhaustive searches.
  /// RandomWalk and StatefulPruning fall back to the serial engine, as
  /// they do for Jobs; mutually exclusive with IsolationMode::Batch.
  int FleetWorkers = 0;
  /// Execution budget per issued work unit; a worker that exhausts it
  /// commits the unit with its remainder prefixes so the coordinator can
  /// re-lease the rest. Small batches = fine-grained recovery, large
  /// batches = less protocol overhead.
  int FleetBatchSize = 64;
  /// A unit whose attempt dies this many consecutive times is quarantined
  /// as a replayable Verdict::Crash incident instead of being re-issued.
  int FleetQuarantine = 3;
  /// Replacement workers the coordinator may fork after deaths before
  /// degrading to reduced width. Negative = 2*FleetWorkers+2.
  int FleetRespawnBudget = -1;
  /// Heartbeat silence after which a live-but-stuck worker is declared
  /// hung and killed; 0 disables (chaos tests use HangTimeoutSeconds-like
  /// tuning). Defaults to HangTimeoutSeconds at runFleet entry when <= 0.
  double FleetHeartbeatTimeout = 0;
};

/// A test program: a closure run as thread 0 of every execution. It may
/// spawn further threads, use the sync primitives, and must be
/// deterministic apart from scheduling and Runtime::chooseInt.
struct TestProgram {
  std::string Name;
  std::function<void()> Body;
};

/// Everything a checker run produced.
struct CheckResult {
  Verdict Kind = Verdict::Pass;
  std::optional<BugReport> Bug;
  SearchStats Stats;
  /// Sorted distinct state signatures; filled only when
  /// CheckerOptions::ExportStateSignatures is set.
  std::vector<uint64_t> StateSignatures;
  /// Every crash/hang the sandbox harvested and every distinct data race
  /// the detector found (Bug holds the first workload bug, or the first
  /// incident when no real bug was found).
  std::vector<BugReport> Incidents;
  /// Set when the run stopped on InterruptFlag: everything needed to
  /// continue the search via resumeCheck (core/Checkpoint.h).
  std::shared_ptr<CheckpointState> Resume;
  /// Schedule-point hotspot profile; filled only when
  /// CheckerOptions::ProfileSearch is set (src/obs/SearchProfile.h).
  std::shared_ptr<obs::SearchProfile> Profile;

  /// True for workload bugs. Divergence is a checker limitation and Crash
  /// and Hang count: a workload that dies under sandboxing is buggy.
  bool foundBug() const {
    return Kind != Verdict::Pass && Kind != Verdict::Divergence;
  }
};

/// Runs the fair stateless model checker on \p Program under \p Opts.
/// This is the library's main entry point.
CheckResult check(const TestProgram &Program, const CheckerOptions &Opts);

/// Folds the delta between two cumulative SearchStats snapshots into a
/// live counter shard, so --stats-json counters and the progress line
/// keep working when executions happen in another process. Null \p Ctr is
/// a no-op. Shared by the sandbox parent and the fleet coordinator.
/// RacesFound is deliberately absent: child processes dedup races only
/// within themselves, so the supervising parent bumps that counter per
/// globally-novel race at commit time.
void foldStatsDeltaIntoCounters(obs::WorkerCounters *Ctr,
                                const SearchStats &Prev,
                                const SearchStats &Now);

/// Bumps the per-verdict-class bug counter (deadlocks, livelocks, good
/// samaritan violations) for a bug harvested from a child process.
void bumpBugClassCounter(obs::WorkerCounters *Ctr, Verdict V);

/// Top-level race promotion, shared by check() and resumeCheck(): when
/// race detection is on and \p R carries DataRace incidents, reconciles
/// Stats.RacesFound with them and -- if no workload bug outranks the
/// races -- promotes the verdict to Verdict::DataRace with the first race
/// as the bug report. Deliberately *not* done inside the engines, so a
/// racy execution never changes StopOnFirstBug behaviour mid-search
/// (RaceCheckMode::On must explore the same multiset as Off).
void finalizeRaces(CheckResult &R, const CheckerOptions &Opts);

} // namespace fsmc

#endif // FSMC_CORE_CHECKER_H
