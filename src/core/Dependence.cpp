//===- core/Dependence.cpp ------------------------------------------------===//

#include "core/Dependence.h"

using namespace fsmc;

DepClass fsmc::depClassOf(OpKind K) {
  switch (K) {
  case OpKind::Yield:
  case OpKind::Sleep:
    return DepClass::Pure;
  case OpKind::VarLoad:
  case OpKind::RwReadLock:
    // Mirrors the race detector's read side: a load folds into the
    // variable's read summary without invalidating other reads, and a
    // reader acquire neither changes which readers may enter nor the
    // lock's release clock in an order-sensitive way.
    return DepClass::ObjectRead;
  case OpKind::Join:
    return DepClass::ThreadLife;
  case OpKind::ThreadStart:
  case OpKind::UserOp:
    return DepClass::Global;
  case OpKind::VarFlush:
    // A flush commits a buffered store: a write on the op's ObjectId (the
    // runtime sets -1 when a PSO flush could pick among several
    // variables, which aliases everything below -- conservative, sound).
    // Note a flush is also ordered against its own thread's enqueues and
    // fences, but those share the agent's owner or the variable id, so
    // the object footprint already captures it.
    return DepClass::ObjectRw;
  case OpKind::VarFence:
    // Draining the whole buffer touches every variable the thread has
    // buffered; ObjectId is -1, so the alias rule below makes it
    // dependent on every object op -- conservative, sound.
    return DepClass::ObjectRw;
  default:
    return DepClass::ObjectRw;
  }
}

/// Join(t) commutes with a transition executed by thread \p Exec unless
/// that transition might flip t's completion flag -- which only t's own
/// transitions can (any of them may be t's last). Unknown executors get
/// the conservative answer.
static bool joinIndependentOf(const PendingOp &Join, Tid Exec) {
  if (Exec < 0)
    return false;
  return Tid(Join.Aux) != Exec;
}

bool fsmc::independentOps(const PendingOp &A, const PendingOp &B) {
  return independentTransitions(-1, A, -1, B);
}

bool fsmc::independentTransitions(Tid TA, const PendingOp &A, Tid TB,
                                  const PendingOp &B) {
  DepClass CA = depClassOf(A.Kind), CB = depClassOf(B.Kind);
  if (CA == DepClass::Pure || CB == DepClass::Pure)
    return true;
  if (CA == DepClass::Global || CB == DepClass::Global)
    return false;

  if (CA == DepClass::ThreadLife || CB == DepClass::ThreadLife) {
    // Each Join must commute with the other transition's executor; an
    // object-footprint op on the other side imposes no constraint of its
    // own (joins touch no sync object or variable).
    if (CA == DepClass::ThreadLife && !joinIndependentOf(A, TB))
      return false;
    if (CB == DepClass::ThreadLife && !joinIndependentOf(B, TA))
      return false;
    return true;
  }

  // Both have single-object footprints: distinct objects always commute;
  // an unmodeled object (-1) conservatively aliases everything.
  if (A.ObjectId < 0 || B.ObjectId < 0)
    return false;
  if (A.ObjectId != B.ObjectId)
    return true;
  // Same object: only read-read commutes.
  return CA == DepClass::ObjectRead && CB == DepClass::ObjectRead;
}
