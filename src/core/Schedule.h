//===- core/Schedule.h - Serialized schedules for bug replay ---*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialized schedules: the choice sequence of one execution, printable
/// and replayable. CHESS's headline workflow is deterministic repro --
/// "CHESS executes this test repeatedly, while controlling the thread
/// schedule" -- and a found bug is only useful if the failing schedule
/// can be re-run under a debugger. A Schedule captures exactly the
/// explorer's non-forced choices; forced moves are recomputed during
/// replay, so schedules stay short and survive unrelated code edits that
/// do not change the choice structure.
///
/// Wire format (version 1):
///   fsmc1:c/n;c/n;...;c/n
/// where each `c/n` is the chosen index and the number of options of one
/// choice point (scheduling or data). Non-backtrackable (random-tail)
/// choices are marked with a trailing `r`. Under --memory=tso|pso a
/// scheduling choice whose candidates include store-buffer flush agents
/// (docs/MEMORY.md) carries their bits as a trailing `f<hex>` thread
/// mask; replay recomputes the flush-agent set and validates it against
/// the recorded mask, so a schedule replayed under the wrong memory
/// model surfaces as Verdict::Divergence instead of silently exploring a
/// different interleaving. Under sleep-set POR (CheckerOptions::Por) a
/// scheduling choice additionally carries the sleep set at the choice
/// point as a trailing `s<hex>` thread mask, validated the same way
/// against the wrong POR mode. Suffix order is `r`, `f<hex>`, `s<hex>`.
/// Schedules recorded with POR off and --memory=sc carry no masks and
/// are byte-identical to pre-POR, pre-weak-memory output.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_SCHEDULE_H
#define FSMC_CORE_SCHEDULE_H

#include "core/Checker.h"

#include <string>
#include <vector>

namespace fsmc {

/// One recorded choice: `Chosen` of `Num` options.
struct ScheduleChoice {
  int Chosen = 0;
  int Num = 1;
  bool Backtrack = true;
  /// Sleep set (ThreadSet::rawBits) at this choice point; nonzero only
  /// for scheduling choices recorded under CheckerOptions::Por. The mask
  /// is the set *before* this choice resolves, so every sibling at the
  /// same node shares it -- which is what lets splitWork donate siblings
  /// with the mask copied verbatim.
  uint64_t SleepMask = 0;
  /// Flush-agent bits (tids >= Runtime::FlushBase) of the candidate set
  /// at this choice point; nonzero only for scheduling choices recorded
  /// under --memory=tso|pso with at least one flush agent among the
  /// candidates. Shared by every sibling at the node, like SleepMask.
  uint64_t FlushMask = 0;
};

/// Renders choices in the `fsmc1:` wire format.
std::string encodeSchedule(const std::vector<ScheduleChoice> &Choices);

/// Parses the wire format. \returns false on malformed input, leaving
/// \p Out unspecified.
bool decodeSchedule(const std::string &Text,
                    std::vector<ScheduleChoice> &Out);

/// Re-executes \p Program once under the recorded \p Schedule (typically
/// BugReport::Schedule) and reports that single execution's outcome.
/// The options must match the original run's semantics-affecting knobs
/// (Fair, YieldK, bounds); scheduling decisions come from the schedule.
CheckResult replaySchedule(const TestProgram &Program,
                           const CheckerOptions &Opts,
                           const std::string &Schedule);

} // namespace fsmc

#endif // FSMC_CORE_SCHEDULE_H
