//===- core/ParallelExplorer.cpp ------------------------------------------===//

#include "core/ParallelExplorer.h"

#include "core/Checkpoint.h"
#include "core/Explorer.h"
#include "core/Schedule.h"
#include "core/WorkQueue.h"
#include "obs/Observer.h"
#include "obs/SearchProfile.h"
#include "runtime/StackPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

using namespace fsmc;

namespace {

/// DFS order over choice paths: the first differing choice index decides;
/// an ancestor precedes its extensions. Two distinct complete executions
/// always differ at some consumed index, so this totally orders bugs.
bool dfsBefore(const std::vector<int> &A, const std::vector<int> &B) {
  size_t N = A.size() < B.size() ? A.size() : B.size();
  for (size_t I = 0; I < N; ++I)
    if (A[I] != B[I])
      return A[I] < B[I];
  return A.size() < B.size();
}

std::vector<int> pathKeyOfSchedule(const std::string &Schedule) {
  std::vector<ScheduleChoice> Choices;
  std::vector<int> Key;
  if (decodeSchedule(Schedule, Choices))
    for (const ScheduleChoice &C : Choices)
      Key.push_back(C.Chosen);
  return Key;
}

} // namespace

struct ParallelExplorer::Shared {
  explicit Shared(size_t QueueCapacity) : Queue(QueueCapacity) {}

  WorkQueue Queue;
  std::atomic<uint64_t> Executions{0};
  std::atomic<bool> StopAll{false};
  std::atomic<bool> CapHit{false};
  std::atomic<bool> GlobalTimeout{false};
  std::chrono::steady_clock::time_point Deadline;
  bool HasDeadline = false;

  // Epoch control (checkpoint / interrupt). When EpochStop rises, every
  // worker stops at its next execution boundary, stashing the unexplored
  // remainder of its current item; the driver decides between writing a
  // checkpoint and requeueing (periodic) or returning a resume state
  // (interrupt).
  std::atomic<bool> EpochStop{false};
  std::atomic<bool> InterruptSeen{false};
  std::atomic<uint64_t> NextCheckpointAt{UINT64_MAX};
  std::mutex StashM;
  std::vector<std::vector<ScheduleChoice>> Stash;

  // Best (DFS-smallest) bug so far. Guarded by BugM; read on every
  // execution by every worker, written only when a better bug lands.
  std::mutex BugM;
  bool HasBug = false;
  std::vector<int> BestKey;
  BugReport BestBug;
  Verdict BestKind = Verdict::Pass;

  // Result aggregation: per-item stats and signature shards.
  std::mutex MergeM;
  SearchStats Total;
  std::shared_ptr<obs::SearchProfile> Profile; ///< Guarded by MergeM.
  std::unordered_set<uint64_t> States;
  // Race incidents, deduplicated globally: workers dedup only within
  // their own explorer, so the same race arriving from two workers must
  // collapse here. Guarded by MergeM.
  std::unordered_set<std::string> RaceKeys;
  std::vector<BugReport> RaceIncidents;

  void requestStop() {
    StopAll.store(true, std::memory_order_relaxed);
    Queue.stop();
  }

  void stashPrefixes(std::vector<std::vector<ScheduleChoice>> &&Prefixes) {
    std::lock_guard<std::mutex> Lock(StashM);
    for (auto &P : Prefixes)
      Stash.push_back(std::move(P));
  }

  /// True when \p Key lies strictly after the best bug in DFS order --
  /// the serial search would have stopped before reaching it.
  bool afterBestBug(const std::vector<int> &Key) {
    std::lock_guard<std::mutex> Lock(BugM);
    return HasBug && !dfsBefore(Key, BestKey);
  }

  void offerBug(const BugReport &Bug, Verdict Kind) {
    std::vector<int> Key = pathKeyOfSchedule(Bug.Schedule);
    std::lock_guard<std::mutex> Lock(BugM);
    if (!HasBug || dfsBefore(Key, BestKey)) {
      HasBug = true;
      BestKey = std::move(Key);
      BestBug = Bug;
      BestKind = Kind;
    }
  }
};

ParallelExplorer::ParallelExplorer(const TestProgram &Program,
                                   const CheckerOptions &Opts)
    : Program(Program), Opts(Opts) {}

ParallelExplorer::~ParallelExplorer() = default;

void ParallelExplorer::resumeFrom(const CheckpointState &CK) {
  ResumeCK = std::make_shared<CheckpointState>(CK);
}

CheckResult ParallelExplorer::run() {
  int Jobs = Opts.Jobs;
  // Random walks draw fresh randomness per execution and stateful pruning
  // keys off the global visit order; neither partitions by prefix, so
  // they run serially. (resumeCheck routes those to the serial unit
  // chain, never here.)
  if (Jobs <= 1 || Opts.Kind == SearchKind::RandomWalk ||
      Opts.StatefulPruning) {
    assert(!ResumeCK && "serial fallback cannot consume a checkpoint");
    Explorer E(Program, Opts);
    return E.run();
  }

  auto Start = std::chrono::steady_clock::now();
  Shared SH(/*QueueCapacity=*/size_t(Jobs) * 64);
  if (Opts.Obs)
    SH.Queue.setObserver(&Opts.Obs->shard(0));
  if (Opts.TimeBudgetSeconds > 0) {
    SH.HasDeadline = true;
    SH.Deadline = Start + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  Opts.TimeBudgetSeconds));
  }

  if (ResumeCK) {
    // Continue a checkpointed run: cumulative totals, seeded coverage,
    // the carried-over first bug, and the frontier sharded into fully
    // frozen subtree prefixes. pushAll's capacity is soft, so a frontier
    // wider than the queue still seeds completely.
    SH.Total = ResumeCK->Stats;
    SH.Total.TimedOut = SH.Total.ExecutionCapHit = SH.Total.SearchExhausted =
        SH.Total.Interrupted = false;
    SH.Total.Seconds = 0;
    SH.Executions.store(ResumeCK->Stats.Executions,
                        std::memory_order_relaxed);
    SH.States.insert(ResumeCK->States.begin(), ResumeCK->States.end());
    if (ResumeCK->Bug)
      SH.offerBug(*ResumeCK->Bug, ResumeCK->Bug->Kind);
    std::vector<WorkItem> Seed;
    for (const CheckpointUnit &U : ResumeCK->Frontier)
      for (auto &P : decomposeUnitToFrozenPrefixes(U))
        Seed.push_back(WorkItem{std::move(P)});
    SH.Queue.pushAll(std::move(Seed));
  } else {
    // Seed the search with the whole tree: one item, empty prefix. The
    // first worker to pop it starts donating as soon as the queue reports
    // hungry, which is immediately.
    std::vector<WorkItem> Root(1);
    SH.Queue.pushAll(std::move(Root));
  }

  CheckerOptions WorkerOpts = Opts;
  WorkerOpts.Jobs = 1;
  // Budgets are enforced globally through the execution hook; a worker
  // must not stop on its private counters. Likewise interrupts and
  // checkpoints belong to the driver: a worker explorer must never
  // snapshot or halt on its own.
  WorkerOpts.MaxExecutions = 0;
  WorkerOpts.TimeBudgetSeconds = 0;
  WorkerOpts.InterruptFlag = nullptr;
  WorkerOpts.CheckpointEvery = 0;
  WorkerOpts.CheckpointSink = nullptr;

  const uint64_t MaxExecutions = Opts.MaxExecutions;
  const bool StopOnFirstBug = Opts.StopOnFirstBug;
  const size_t LowWater = size_t(Jobs);
  const uint64_t Every = Opts.CheckpointSink ? Opts.CheckpointEvery : 0;
  if (Every)
    SH.NextCheckpointAt.store(
        (SH.Executions.load(std::memory_order_relaxed) / Every + 1) * Every,
        std::memory_order_relaxed);

  // Worker ids 1..Jobs: observability shard 0 stays with the driver (the
  // work queue publishes its depth gauge there).
  auto WorkerMain = [&](int WorkerId) {
    obs::WorkerCounters *WCtr =
        Opts.Obs ? &Opts.Obs->shard(unsigned(WorkerId)) : nullptr;
    obs::EventSink *Sink = Opts.Obs ? Opts.Obs->sink() : nullptr;
    uint64_t Clock = 0; ///< This worker's logical time across items.
    // One stack pool per worker, shared across all its work items: fiber
    // stacks warmed by the first item are reused for the rest instead of
    // each short-lived Explorer growing a private pool from cold.
    StackPool WorkerPool;
    while (std::optional<WorkItem> Item = SH.Queue.pop()) {
      if (SH.StopAll.load(std::memory_order_relaxed)) {
        SH.Queue.itemDone();
        continue;
      }
      if (SH.EpochStop.load(std::memory_order_relaxed)) {
        // Wind-down: drain the queue into the stash untouched.
        SH.stashPrefixes({std::move(Item->Prefix)});
        SH.Queue.itemDone();
        continue;
      }
      // Serial semantics never reach subtrees past the first bug.
      if (StopOnFirstBug && !Item->Prefix.empty()) {
        std::vector<int> Key;
        Key.reserve(Item->Prefix.size());
        for (const ScheduleChoice &C : Item->Prefix)
          Key.push_back(C.Chosen);
        if (SH.afterBestBug(Key)) {
          SH.Queue.itemDone();
          continue;
        }
      }

      CheckerOptions ItemOpts = WorkerOpts;
      if (SH.HasDeadline) {
        // Re-derive the remaining budget so the explorer's mid-execution
        // time checks stay meaningful for this item.
        double Remaining = std::chrono::duration<double>(
                               SH.Deadline - std::chrono::steady_clock::now())
                               .count();
        ItemOpts.TimeBudgetSeconds = Remaining > 0.001 ? Remaining : 0.001;
      }

      if (WCtr) {
        WCtr->add(obs::Counter::WorkItemsRun);
        WCtr->setGauge(obs::Gauge::ActiveWorkers, 1);
      }
      if (Sink) {
        obs::ObsEvent Ev;
        Ev.Kind = obs::EventKind::WorkItemStart;
        Ev.Worker = unsigned(WorkerId);
        Ev.Ts = Clock;
        Ev.ArgA = Item->Prefix.size();
        Sink->event(Ev);
      }

      Explorer E(Program, ItemOpts);
      if (ItemOpts.ReuseExecutionState)
        E.setStackPool(&WorkerPool);
      E.setObsWorker(unsigned(WorkerId), Clock);
      E.preloadSchedule(Item->Prefix, /*Frozen=*/true);
      E.setExecutionHook([&](Explorer &Ex) {
        uint64_t N = SH.Executions.fetch_add(1, std::memory_order_relaxed) + 1;
        if (MaxExecutions && N >= MaxExecutions) {
          SH.CapHit.store(true, std::memory_order_relaxed);
          SH.requestStop();
        }
        if (SH.HasDeadline &&
            std::chrono::steady_clock::now() >= SH.Deadline) {
          SH.GlobalTimeout.store(true, std::memory_order_relaxed);
          SH.requestStop();
        }
        if (SH.StopAll.load(std::memory_order_relaxed))
          return false;
        // Epoch triggers: an interrupt or a crossed checkpoint boundary
        // stops every worker at its next execution boundary.
        if (Opts.InterruptFlag &&
            Opts.InterruptFlag->load(std::memory_order_relaxed)) {
          SH.InterruptSeen.store(true, std::memory_order_relaxed);
          SH.EpochStop.store(true, std::memory_order_relaxed);
        } else if (N >= SH.NextCheckpointAt.load(std::memory_order_relaxed)) {
          SH.EpochStop.store(true, std::memory_order_relaxed);
        }
        if (SH.EpochStop.load(std::memory_order_relaxed)) {
          // Stash this item's entire unexplored remainder: splitWork over
          // the whole stack donates every untried alternative, so stopping
          // here loses nothing.
          std::vector<std::vector<ScheduleChoice>> Rest;
          Ex.splitWork(Rest, SIZE_MAX);
          SH.stashPrefixes(std::move(Rest));
          return false;
        }
        // First-bug pruning: everything this item would explore next is
        // DFS-after its current path, so once that path passes the best
        // bug the serial search would already have stopped.
        if (StopOnFirstBug && SH.afterBestBug(Ex.consumedPathKey()))
          return false;
        // Donate the shallowest unexplored siblings when the queue runs
        // dry; idle workers pick them up (work stealing by splitting).
        if (SH.Queue.hungry(LowWater)) {
          size_t Free = SH.Queue.freeSlots();
          if (Free > 0) {
            std::vector<std::vector<ScheduleChoice>> Prefixes;
            size_t Want = size_t(Jobs) * 2;
            E.splitWork(Prefixes, Want < Free ? Want : Free);
            if (!Prefixes.empty()) {
              size_t Donated = Prefixes.size();
              std::vector<WorkItem> Items;
              Items.reserve(Donated);
              for (auto &P : Prefixes)
                Items.push_back(WorkItem{std::move(P)});
              SH.Queue.pushAll(std::move(Items));
              if (WCtr)
                WCtr->add(obs::Counter::PrefixesDonated, Donated);
              if (Sink) {
                obs::ObsEvent Ev;
                Ev.Kind = obs::EventKind::Donation;
                Ev.Worker = unsigned(WorkerId);
                Ev.Ts = Ex.obsClock();
                Ev.ArgA = Donated;
                Sink->event(Ev);
              }
            }
          }
        }
        return true;
      });

      CheckResult R = E.run();
      if (R.Stats.TimedOut) {
        // The per-item remaining budget ran out mid-execution; that is
        // the shared deadline expiring, so stop the whole search.
        SH.GlobalTimeout.store(true, std::memory_order_relaxed);
        SH.requestStop();
      }
      if (R.Bug)
        SH.offerBug(*R.Bug, R.Kind);
      {
        std::lock_guard<std::mutex> Lock(SH.MergeM);
        mergeSearchStats(SH.Total, R.Stats);
        if (R.Profile) {
          if (!SH.Profile)
            SH.Profile = R.Profile;
          else
            SH.Profile->merge(*R.Profile);
        }
        if (!E.seenStates().empty())
          SH.States.insert(E.seenStates().begin(), E.seenStates().end());
        for (const BugReport &I : R.Incidents)
          if (I.Kind != Verdict::DataRace ||
              SH.RaceKeys.insert(I.Message).second)
            SH.RaceIncidents.push_back(I);
      }
      Clock = E.obsClock();
      if (WCtr)
        WCtr->setGauge(obs::Gauge::ActiveWorkers, 0);
      SH.Queue.itemDone();
    }
    if (WCtr)
      WCtr->setGauge(obs::Gauge::ActiveWorkers, 0);
  };

  // Snapshot of the whole search for the checkpoint sink / resume: only
  // valid between epochs, when every worker has joined.
  auto buildCheckpoint = [&]() {
    auto CK = std::make_shared<CheckpointState>();
    CK->Stats = SH.Total;
    CK->Stats.TimedOut = CK->Stats.ExecutionCapHit =
        CK->Stats.SearchExhausted = CK->Stats.Interrupted = false;
    CK->Stats.Seconds = 0;
    CK->Stats.DistinctStates = SH.States.size();
    if (Opts.Races != RaceCheckMode::Off)
      CK->Stats.RacesFound = (ResumeCK ? ResumeCK->Stats.RacesFound : 0) +
                             SH.RaceKeys.size();
    CK->Rng = Opts.Seed;
    CK->States.assign(SH.States.begin(), SH.States.end());
    std::sort(CK->States.begin(), CK->States.end());
    CK->Frontier.reserve(SH.Stash.size());
    for (const auto &P : SH.Stash)
      CK->Frontier.push_back({P, P.size()});
    if (SH.HasBug)
      CK->Bug = SH.BestBug;
    return CK;
  };

  bool Interrupted = false;
  std::shared_ptr<CheckpointState> ResumeOut;
  obs::WorkerCounters *DCtr = Opts.Obs ? &Opts.Obs->shard(0) : nullptr;

  for (;;) {
    std::vector<std::thread> Workers;
    Workers.reserve(Jobs);
    for (int I = 0; I < Jobs; ++I)
      Workers.emplace_back(WorkerMain, I + 1);
    for (std::thread &W : Workers)
      W.join();

    if (!SH.EpochStop.load(std::memory_order_relaxed))
      break; // Search ended for real (drained, bug, cap, timeout).
    if (SH.StopAll.load(std::memory_order_relaxed))
      break; // A budget fired while the epoch wound down; it wins.
    if (SH.HasBug && StopOnFirstBug)
      break;

    if (SH.InterruptSeen.load(std::memory_order_relaxed)) {
      if (!SH.Stash.empty()) {
        Interrupted = true;
        ResumeOut = buildCheckpoint();
      }
      // Empty stash: the interrupt landed exactly on exhaustion.
      break;
    }

    // Periodic checkpoint: persist the stash as the frontier, then put it
    // back and run the next epoch.
    if (SH.Stash.empty())
      break; // Boundary coincided with exhaustion; nothing left to save.
    ++SH.Total.Checkpoints;
    if (DCtr)
      DCtr->add(obs::Counter::Checkpoints);
    Opts.CheckpointSink(*buildCheckpoint());
    SH.NextCheckpointAt.store(
        (SH.Executions.load(std::memory_order_relaxed) / Every + 1) * Every,
        std::memory_order_relaxed);
    std::vector<WorkItem> Items;
    Items.reserve(SH.Stash.size());
    for (auto &P : SH.Stash)
      Items.push_back(WorkItem{std::move(P)});
    SH.Stash.clear();
    SH.EpochStop.store(false, std::memory_order_relaxed);
    SH.Queue.pushAll(std::move(Items));
  }

  CheckResult Result;
  Result.Stats = SH.Total;
  Result.Profile = SH.Profile;
  Result.Stats.DistinctStates = SH.States.size();
  if (!SH.RaceIncidents.empty()) {
    // Worker arrival order is nondeterministic; the messages are not (the
    // execution multiset is), so sorting by message makes the incident
    // list and its count deterministic across runs and job counts.
    std::sort(SH.RaceIncidents.begin(), SH.RaceIncidents.end(),
              [](const BugReport &A, const BugReport &B) {
                return A.Message < B.Message;
              });
    Result.Incidents = std::move(SH.RaceIncidents);
  }
  // Per-worker RacesFound summed across workers overcounts shared races;
  // the global key set is the true distinct count (plus any base from a
  // resumed checkpoint, whose keys are no longer available).
  if (Opts.Races != RaceCheckMode::Off) {
    uint64_t Base = ResumeCK ? ResumeCK->Stats.RacesFound : 0;
    Result.Stats.RacesFound = Base + SH.RaceKeys.size();
  }
  if (Opts.ExportStateSignatures) {
    Result.StateSignatures.assign(SH.States.begin(), SH.States.end());
    std::sort(Result.StateSignatures.begin(), Result.StateSignatures.end());
  }
  Result.Stats.ExecutionCapHit = SH.CapHit.load();
  Result.Stats.TimedOut = SH.GlobalTimeout.load();
  Result.Stats.Interrupted = Interrupted;
  if (Interrupted)
    Result.Resume = ResumeOut;
  if (SH.HasBug) {
    Result.Kind = SH.BestKind;
    Result.Bug = std::move(SH.BestBug);
  }
  // Exhausted iff nothing cut the enumeration short: every subtree either
  // ran dry or was pruned only by the first-bug rule (which mirrors the
  // serial early stop, where the flag is also left clear).
  Result.Stats.SearchExhausted = !Result.Stats.ExecutionCapHit &&
                                 !Result.Stats.TimedOut && !Interrupted &&
                                 !(SH.HasBug && StopOnFirstBug);
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  Result.Stats.Seconds = std::chrono::duration<double>(Elapsed).count();
  return Result;
}

CheckResult fsmc::checkParallel(const TestProgram &Program,
                                const CheckerOptions &Opts, int Jobs) {
  CheckerOptions E = Opts;
  E.Jobs = Jobs;
  return check(Program, E);
}
