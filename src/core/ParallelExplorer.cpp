//===- core/ParallelExplorer.cpp ------------------------------------------===//
//
// The work-stealing parallel engine (docs/PERFORMANCE.md, "Parallel
// search"). Architecture in one paragraph: each worker owns a private
// WorkStealDeque of frozen-prefix items and runs serial DFS on whatever
// it pops; the shared WorkQueue survives only as a cold-path injector
// (seeding, epoch restarts, idle parking). A starving worker first
// sweeps the other deques (steal-half from the top, shallowest-first =
// largest subtrees), and only when every deque is empty posts a *steal
// request* on an active victim; the victim answers at its next execution
// boundary by splitting its shallowest unexplored siblings onto its own
// deque top, where thieves grab them. Cross-worker results (stats,
// coverage signatures, race dedup, search profile) accumulate in
// worker-local buffers and merge once per worker per epoch, so the
// steady-state execution loop acquires no shared lock at all: its only
// shared traffic is a handful of relaxed atomic loads and one fetch_add
// on the execution counter. The best-bug check that used to take a mutex
// every execution is now a generation-stamped cache refreshed only when
// some worker actually lands a better bug.
//
//===----------------------------------------------------------------------===//

#include "core/ParallelExplorer.h"

#include "core/Checkpoint.h"
#include "core/Explorer.h"
#include "core/Schedule.h"
#include "core/WorkQueue.h"
#include "core/WorkStealDeque.h"
#include "obs/Observer.h"
#include "obs/SearchProfile.h"
#include "runtime/StackPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

using namespace fsmc;

namespace {

/// DFS order over choice paths: the first differing choice index decides;
/// an ancestor precedes its extensions. Two distinct complete executions
/// always differ at some consumed index, so this totally orders bugs.
bool dfsBefore(const std::vector<int> &A, const std::vector<int> &B) {
  size_t N = A.size() < B.size() ? A.size() : B.size();
  for (size_t I = 0; I < N; ++I)
    if (A[I] != B[I])
      return A[I] < B[I];
  return A.size() < B.size();
}

std::vector<int> pathKeyOfSchedule(const std::string &Schedule) {
  std::vector<ScheduleChoice> Choices;
  std::vector<int> Key;
  if (decodeSchedule(Schedule, Choices))
    for (const ScheduleChoice &C : Choices)
      Key.push_back(C.Chosen);
  return Key;
}

/// How long an idle worker parks on the injector between rescans. Also
/// bounds the window in which a lock-free notify can be missed.
constexpr std::chrono::microseconds ParkTimeout(500);

} // namespace

struct ParallelExplorer::Shared {
  Shared(size_t QueueCapacity, size_t Jobs)
      : Injector(QueueCapacity), Deques(Jobs),
        StealReq(std::make_unique<std::atomic<bool>[]>(Jobs)),
        Active(std::make_unique<std::atomic<bool>[]>(Jobs)) {
    for (size_t I = 0; I < Jobs; ++I) {
      StealReq[I].store(false, std::memory_order_relaxed);
      Active[I].store(false, std::memory_order_relaxed);
    }
  }

  /// Cold path only: seeding, epoch restarts, idle parking.
  WorkQueue Injector;
  /// Hot path: Deques[W] is worker W+1's private deque.
  std::vector<WorkStealDeque> Deques;
  /// StealReq[W]: a starving thief asks worker W+1 to split. Checked by
  /// the victim with one relaxed load per execution.
  std::unique_ptr<std::atomic<bool>[]> StealReq;
  /// Active[W]: worker W+1 is inside an item (a useful steal victim).
  std::unique_ptr<std::atomic<bool>[]> Active;

  /// Items created and not yet finished (injector + deques + in hand).
  /// The stash is *not* outstanding: the driver re-registers it when an
  /// epoch restarts. Outstanding==0 is stable -- new items are only
  /// created by a worker holding an outstanding item or by the driver
  /// between epochs -- so it is the termination signal.
  std::atomic<uint64_t> Outstanding{0};

  std::atomic<uint64_t> Executions{0};
  std::atomic<bool> StopAll{false};
  std::atomic<bool> CapHit{false};
  std::atomic<bool> GlobalTimeout{false};
  std::chrono::steady_clock::time_point Deadline;
  bool HasDeadline = false;

  // Epoch control (checkpoint / interrupt). When EpochStop rises, every
  // worker stops at its next execution boundary, stashing the unexplored
  // remainder of its current item; the driver decides between writing a
  // checkpoint and requeueing (periodic) or returning a resume state
  // (interrupt).
  std::atomic<bool> EpochStop{false};
  std::atomic<bool> InterruptSeen{false};
  std::atomic<uint64_t> NextCheckpointAt{UINT64_MAX};
  std::mutex StashM;
  std::vector<std::vector<ScheduleChoice>> Stash;

  // Best (DFS-smallest) bug so far. Guarded by BugM, but *not* read
  // per-execution: BugVersion bumps on every improvement, and workers
  // keep a private copy of (HasBug, BestKey) refreshed only when the
  // version moved. Pruning against a slightly stale best is sound --
  // a former best is DFS-after the current best, so anything pruned as
  // DFS-after the former best is DFS-after the current best too.
  std::mutex BugM;
  std::atomic<uint64_t> BugVersion{0};
  bool HasBug = false;
  std::vector<int> BestKey;
  BugReport BestBug;
  Verdict BestKind = Verdict::Pass;

  // Result aggregation, deferred: workers accumulate stats, signature
  // shards and race incidents in worker-local buffers and merge them
  // here once per worker per epoch (before the epoch's join), never per
  // item. Guarded by MergeM.
  std::mutex MergeM;
  SearchStats Total;
  std::shared_ptr<obs::SearchProfile> Profile; ///< Guarded by MergeM.
  std::unordered_set<uint64_t> States;
  // Race incidents, deduplicated globally: workers dedup only within
  // their own buffers, so the same race arriving from two workers must
  // collapse here. Guarded by MergeM.
  std::unordered_set<std::string> RaceKeys;
  std::vector<BugReport> RaceIncidents;

  void requestStop() {
    StopAll.store(true, std::memory_order_relaxed);
    Injector.stop();
  }

  /// Balances item creation (see Outstanding); call before the items
  /// become visible to any worker.
  void registerItems(size_t N) {
    Outstanding.fetch_add(N, std::memory_order_relaxed);
  }

  /// Balances \p N pops; reaching zero broadcasts termination to every
  /// parked worker.
  void finishItems(size_t N) {
    if (Outstanding.fetch_sub(N, std::memory_order_acq_rel) == N)
      Injector.notifyAll();
  }

  void stashPrefixes(std::vector<std::vector<ScheduleChoice>> &&Prefixes) {
    std::lock_guard<std::mutex> Lock(StashM);
    for (auto &P : Prefixes)
      Stash.push_back(std::move(P));
  }

  void offerBug(const BugReport &Bug, Verdict Kind) {
    std::vector<int> Key = pathKeyOfSchedule(Bug.Schedule);
    std::lock_guard<std::mutex> Lock(BugM);
    if (!HasBug || dfsBefore(Key, BestKey)) {
      HasBug = true;
      BestKey = std::move(Key);
      BestBug = Bug;
      BestKind = Kind;
      BugVersion.fetch_add(1, std::memory_order_release);
    }
  }
};

ParallelExplorer::ParallelExplorer(const TestProgram &Program,
                                   const CheckerOptions &Opts)
    : Program(Program), Opts(Opts) {}

ParallelExplorer::~ParallelExplorer() = default;

void ParallelExplorer::resumeFrom(const CheckpointState &CK) {
  ResumeCK = std::make_shared<CheckpointState>(CK);
}

CheckResult ParallelExplorer::run() {
  int Jobs = Opts.Jobs;
  // Random walks draw fresh randomness per execution and stateful pruning
  // keys off the global visit order; neither partitions by prefix, so
  // they run serially. (resumeCheck routes those to the serial unit
  // chain, never here.)
  if (Jobs <= 1 || Opts.Kind == SearchKind::RandomWalk ||
      Opts.StatefulPruning) {
    assert(!ResumeCK && "serial fallback cannot consume a checkpoint");
    Explorer E(Program, Opts);
    return E.run();
  }

  auto Start = std::chrono::steady_clock::now();
  Shared SH(/*QueueCapacity=*/size_t(Jobs) * 64, size_t(Jobs));
  if (Opts.Obs)
    SH.Injector.setObserver(&Opts.Obs->shard(0));
  if (Opts.TimeBudgetSeconds > 0) {
    SH.HasDeadline = true;
    SH.Deadline = Start + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  Opts.TimeBudgetSeconds));
  }

  if (ResumeCK) {
    // Continue a checkpointed run: cumulative totals, seeded coverage,
    // the carried-over first bug, and the frontier sharded into fully
    // frozen subtree prefixes. The injector's capacity is soft, so a
    // frontier wider than the queue still seeds completely.
    SH.Total = ResumeCK->Stats;
    SH.Total.TimedOut = SH.Total.ExecutionCapHit = SH.Total.SearchExhausted =
        SH.Total.Interrupted = false;
    SH.Total.Seconds = 0;
    SH.Executions.store(ResumeCK->Stats.Executions,
                        std::memory_order_relaxed);
    SH.States.insert(ResumeCK->States.begin(), ResumeCK->States.end());
    if (ResumeCK->Bug)
      SH.offerBug(*ResumeCK->Bug, ResumeCK->Bug->Kind);
    std::vector<WorkItem> Seed;
    for (const CheckpointUnit &U : ResumeCK->Frontier)
      for (auto &P : decomposeUnitToFrozenPrefixes(U))
        Seed.push_back(WorkItem{std::move(P)});
    SH.registerItems(Seed.size());
    SH.Injector.pushAll(std::move(Seed));
  } else {
    // Seed the search with the whole tree: one item, empty prefix. The
    // other workers immediately post steal requests at whoever pops it,
    // and the tree fans out from its first execution boundaries.
    std::vector<WorkItem> Root(1);
    SH.registerItems(1);
    SH.Injector.pushAll(std::move(Root));
  }

  CheckerOptions WorkerOpts = Opts;
  WorkerOpts.Jobs = 1;
  // Budgets are enforced globally through the execution hook; a worker
  // must not stop on its private counters. Likewise interrupts and
  // checkpoints belong to the driver: a worker explorer must never
  // snapshot or halt on its own.
  WorkerOpts.MaxExecutions = 0;
  WorkerOpts.TimeBudgetSeconds = 0;
  WorkerOpts.InterruptFlag = nullptr;
  WorkerOpts.CheckpointEvery = 0;
  WorkerOpts.CheckpointSink = nullptr;

  const uint64_t MaxExecutions = Opts.MaxExecutions;
  const bool StopOnFirstBug = Opts.StopOnFirstBug;
  const uint64_t Every = Opts.CheckpointSink ? Opts.CheckpointEvery : 0;
  if (Every)
    SH.NextCheckpointAt.store(
        (SH.Executions.load(std::memory_order_relaxed) / Every + 1) * Every,
        std::memory_order_relaxed);

  // Worker ids 1..Jobs: observability shard 0 stays with the driver (the
  // injector publishes its depth gauge there; each worker publishes its
  // own deque depth on its own shard, and the snapshot sums them).
  auto WorkerMain = [&](int WorkerId) {
    const size_t Self = size_t(WorkerId) - 1;
    WorkStealDeque &MyDeque = SH.Deques[Self];
    std::atomic<bool> &MyStealReq = SH.StealReq[Self];
    obs::WorkerCounters *WCtr =
        Opts.Obs ? &Opts.Obs->shard(unsigned(WorkerId)) : nullptr;
    obs::EventSink *Sink = Opts.Obs ? Opts.Obs->sink() : nullptr;
    uint64_t Clock = 0; ///< This worker's logical time across items.
    // One stack pool per worker, shared across all its work items: fiber
    // stacks warmed by the first item are reused for the rest instead of
    // each short-lived Explorer growing a private pool from cold.
    StackPool WorkerPool;

    // Counts every shared-lock acquisition this worker performs --
    // injector, stash, bug and merge mutexes, plus steals into other
    // workers' deques. Own-deque operations are private (uncontended
    // unless a thief is mid-steal) and deliberately excluded: the budget
    // this counter enforces is cross-worker contention.
    auto CountLock = [&] {
      if (WCtr)
        WCtr->add(obs::Counter::QueueLockAcquires);
    };

    // Worker-local merge buffers: reconciled into SH once, at worker
    // exit (= end of epoch), never per item or per execution.
    SearchStats LStats;
    std::shared_ptr<obs::SearchProfile> LProfile;
    std::unordered_set<uint64_t> LStates;
    std::unordered_set<std::string> LRaceKeys;
    std::vector<BugReport> LRaceIncidents;

    // Generation-stamped private copy of the best bug (see Shared::BugM).
    uint64_t LBugVer = 0;
    bool LHasBug = false;
    std::vector<int> LBestKey;
    auto RefreshBug = [&] {
      if (SH.BugVersion.load(std::memory_order_acquire) == LBugVer)
        return;
      CountLock();
      std::lock_guard<std::mutex> Lock(SH.BugM);
      LBugVer = SH.BugVersion.load(std::memory_order_relaxed);
      LHasBug = SH.HasBug;
      LBestKey = SH.BestKey;
    };

    /// Posts a steal request at the nearest active worker. One victim
    /// per starving rescan keeps split granularity close to the old
    /// donor-push behavior instead of shattering every worker's subtree.
    auto PostStealRequest = [&] {
      for (int K = 1; K < Jobs; ++K) {
        size_t V = (Self + size_t(K)) % size_t(Jobs);
        if (SH.Active[V].load(std::memory_order_relaxed)) {
          SH.StealReq[V].store(true, std::memory_order_relaxed);
          return;
        }
      }
    };

    unsigned IdleSpins = 0;
    for (;;) {
      if (SH.StopAll.load(std::memory_order_relaxed))
        break;

      // Acquire work, cheapest source first: own deque (private lock),
      // then the injector, then stealing half of the fullest-looking
      // victim deque.
      std::optional<WorkItem> Item = MyDeque.popBottom();
      if (!Item && SH.Injector.approxSize() > 0) {
        CountLock();
        Item = SH.Injector.tryPop();
      }
      if (!Item) {
        for (int K = 1; K < Jobs && !Item; ++K) {
          size_t V = (Self + size_t(K)) % size_t(Jobs);
          if (SH.Deques[V].empty())
            continue;
          std::vector<WorkItem> Loot;
          CountLock();
          if (SH.Deques[V].stealTop(Loot)) {
            if (WCtr)
              WCtr->add(obs::Counter::Steals);
            // Keep the shallowest (largest) stolen subtree as the next
            // item; the rest go on our own deque where further thieves
            // can find them.
            Item = std::move(Loot.front());
            if (Loot.size() > 1) {
              std::vector<WorkItem> Rest;
              Rest.reserve(Loot.size() - 1);
              for (size_t I = 1; I < Loot.size(); ++I)
                Rest.push_back(std::move(Loot[I]));
              MyDeque.publishTop(std::move(Rest));
              SH.Injector.notifyAll();
            }
          } else if (WCtr) {
            WCtr->add(obs::Counter::StealFails);
          }
        }
      }
      if (!Item) {
        // Nothing visible anywhere. Either the search is over, or the
        // remaining work is implicit in some victim's DFS stack -- ask
        // for it and park until something becomes visible.
        if (SH.Outstanding.load(std::memory_order_acquire) == 0)
          break;
        PostStealRequest();
        if (++IdleSpins < 16) {
          std::this_thread::yield();
          continue;
        }
        CountLock();
        Item = SH.Injector.popWait(ParkTimeout);
        if (!Item)
          continue;
      }
      IdleSpins = 0;

      if (SH.StopAll.load(std::memory_order_relaxed)) {
        SH.finishItems(1);
        continue;
      }
      if (SH.EpochStop.load(std::memory_order_relaxed)) {
        // Wind-down: stash this item and everything on our deque
        // untouched. Stashed prefixes leave the outstanding count; the
        // driver re-registers them if the epoch restarts.
        std::vector<std::vector<ScheduleChoice>> Ps;
        Ps.push_back(std::move(Item->Prefix));
        std::vector<WorkItem> Drained;
        MyDeque.drainAll(Drained);
        for (WorkItem &D : Drained)
          Ps.push_back(std::move(D.Prefix));
        size_t N = Ps.size();
        CountLock();
        SH.stashPrefixes(std::move(Ps));
        SH.finishItems(N);
        continue;
      }
      // Serial semantics never reach subtrees past the first bug.
      if (StopOnFirstBug && !Item->Prefix.empty()) {
        RefreshBug();
        if (LHasBug) {
          std::vector<int> Key;
          Key.reserve(Item->Prefix.size());
          for (const ScheduleChoice &C : Item->Prefix)
            Key.push_back(C.Chosen);
          if (!dfsBefore(Key, LBestKey)) {
            SH.finishItems(1);
            continue;
          }
        }
      }

      CheckerOptions ItemOpts = WorkerOpts;
      if (SH.HasDeadline) {
        // Re-derive the remaining budget so the explorer's mid-execution
        // time checks stay meaningful for this item.
        double Remaining = std::chrono::duration<double>(
                               SH.Deadline - std::chrono::steady_clock::now())
                               .count();
        ItemOpts.TimeBudgetSeconds = Remaining > 0.001 ? Remaining : 0.001;
      }

      if (WCtr) {
        WCtr->add(obs::Counter::WorkItemsRun);
        WCtr->setGauge(obs::Gauge::ActiveWorkers, 1);
        WCtr->setGauge(obs::Gauge::WorkQueueDepth, MyDeque.size());
      }
      if (Sink) {
        obs::ObsEvent Ev;
        Ev.Kind = obs::EventKind::WorkItemStart;
        Ev.Worker = unsigned(WorkerId);
        Ev.Ts = Clock;
        Ev.ArgA = Item->Prefix.size();
        Sink->event(Ev);
      }
      SH.Active[Self].store(true, std::memory_order_relaxed);

      Explorer E(Program, ItemOpts);
      if (ItemOpts.ReuseExecutionState)
        E.setStackPool(&WorkerPool);
      E.setObsWorker(unsigned(WorkerId), Clock);
      E.preloadSchedule(Item->Prefix, /*Frozen=*/true);
      E.setExecutionHook([&](Explorer &Ex) {
        uint64_t N = SH.Executions.fetch_add(1, std::memory_order_relaxed) + 1;
        if (MaxExecutions && N >= MaxExecutions) {
          SH.CapHit.store(true, std::memory_order_relaxed);
          SH.requestStop();
        }
        if (SH.HasDeadline &&
            std::chrono::steady_clock::now() >= SH.Deadline) {
          SH.GlobalTimeout.store(true, std::memory_order_relaxed);
          SH.requestStop();
        }
        if (SH.StopAll.load(std::memory_order_relaxed))
          return false;
        // Epoch triggers: an interrupt or a crossed checkpoint boundary
        // stops every worker at its next execution boundary.
        if (Opts.InterruptFlag &&
            Opts.InterruptFlag->load(std::memory_order_relaxed)) {
          SH.InterruptSeen.store(true, std::memory_order_relaxed);
          SH.EpochStop.store(true, std::memory_order_relaxed);
        } else if (N >= SH.NextCheckpointAt.load(std::memory_order_relaxed)) {
          SH.EpochStop.store(true, std::memory_order_relaxed);
        }
        if (SH.EpochStop.load(std::memory_order_relaxed)) {
          // Stash this item's entire unexplored remainder: splitWork over
          // the whole stack donates every untried alternative, so stopping
          // here loses nothing. (The item itself stays outstanding until
          // the post-run finishItems.)
          std::vector<std::vector<ScheduleChoice>> Rest;
          Ex.splitWork(Rest, SIZE_MAX);
          CountLock();
          SH.stashPrefixes(std::move(Rest));
          return false;
        }
        // First-bug pruning: everything this item would explore next is
        // DFS-after its current path, so once that path passes the best
        // bug the serial search would already have stopped. The common
        // no-bug case costs one relaxed version load -- no lock, no key
        // materialization.
        if (StopOnFirstBug) {
          RefreshBug();
          if (LHasBug && !dfsBefore(Ex.consumedPathKey(), LBestKey))
            return false;
        }
        // Steal response: a starving thief asked us to split. Publish the
        // shallowest unexplored siblings -- the largest subtrees we own --
        // on our own deque top, where the thief (and anyone else) can
        // take them without stopping us.
        if (MyStealReq.load(std::memory_order_relaxed)) {
          MyStealReq.store(false, std::memory_order_relaxed);
          std::vector<std::vector<ScheduleChoice>> Prefixes;
          Ex.splitWork(Prefixes, size_t(Jobs) * 2);
          if (!Prefixes.empty()) {
            size_t Donated = Prefixes.size();
            std::vector<WorkItem> Items;
            Items.reserve(Donated);
            for (auto &P : Prefixes)
              Items.push_back(WorkItem{std::move(P)});
            SH.registerItems(Donated);
            MyDeque.publishTop(std::move(Items));
            // Lock-free wake; a miss is bounded by the park timeout.
            SH.Injector.notifyAll();
            if (WCtr) {
              WCtr->add(obs::Counter::PrefixesDonated, Donated);
              WCtr->setGauge(obs::Gauge::WorkQueueDepth, MyDeque.size());
            }
            if (Sink) {
              obs::ObsEvent Ev;
              Ev.Kind = obs::EventKind::Donation;
              Ev.Worker = unsigned(WorkerId);
              Ev.Ts = Ex.obsClock();
              Ev.ArgA = Donated;
              Sink->event(Ev);
            }
          }
        }
        return true;
      });

      CheckResult R = E.run();
      SH.Active[Self].store(false, std::memory_order_relaxed);
      if (R.Stats.TimedOut) {
        // The per-item remaining budget ran out mid-execution; that is
        // the shared deadline expiring, so stop the whole search.
        SH.GlobalTimeout.store(true, std::memory_order_relaxed);
        SH.requestStop();
      }
      if (R.Bug) {
        CountLock();
        SH.offerBug(*R.Bug, R.Kind);
      }
      // Worker-local accumulation -- the per-item merge lock is gone.
      mergeSearchStats(LStats, R.Stats);
      if (R.Profile) {
        if (!LProfile)
          LProfile = R.Profile;
        else
          LProfile->merge(*R.Profile);
      }
      if (!E.seenStates().empty())
        LStates.insert(E.seenStates().begin(), E.seenStates().end());
      for (const BugReport &I : R.Incidents)
        if (I.Kind != Verdict::DataRace || LRaceKeys.insert(I.Message).second)
          LRaceIncidents.push_back(I);
      Clock = E.obsClock();
      if (WCtr) {
        WCtr->setGauge(obs::Gauge::ActiveWorkers, 0);
        WCtr->setGauge(obs::Gauge::WorkQueueDepth, MyDeque.size());
      }
      SH.finishItems(1);
    }

    // Epoch-local reconciliation: one merge per worker per epoch. This
    // runs before the driver joins the epoch's threads, so checkpoints
    // built between epochs see complete totals.
    auto MergeT0 = std::chrono::steady_clock::now();
    {
      CountLock();
      std::lock_guard<std::mutex> Lock(SH.MergeM);
      mergeSearchStats(SH.Total, LStats);
      if (LProfile) {
        if (!SH.Profile)
          SH.Profile = LProfile;
        else
          SH.Profile->merge(*LProfile);
      }
      if (!LStates.empty())
        SH.States.insert(LStates.begin(), LStates.end());
      for (BugReport &I : LRaceIncidents)
        if (I.Kind != Verdict::DataRace ||
            SH.RaceKeys.insert(I.Message).second)
          SH.RaceIncidents.push_back(std::move(I));
    }
    if (WCtr) {
      WCtr->add(obs::Counter::MergeNs,
                uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - MergeT0)
                             .count()));
      WCtr->setGauge(obs::Gauge::ActiveWorkers, 0);
      WCtr->setGauge(obs::Gauge::WorkQueueDepth, 0);
    }
  };

  // Snapshot of the whole search for the checkpoint sink / resume: only
  // valid between epochs, when every worker has joined (and therefore
  // merged its local buffers).
  auto buildCheckpoint = [&]() {
    auto CK = std::make_shared<CheckpointState>();
    CK->Stats = SH.Total;
    CK->Stats.TimedOut = CK->Stats.ExecutionCapHit =
        CK->Stats.SearchExhausted = CK->Stats.Interrupted = false;
    CK->Stats.Seconds = 0;
    CK->Stats.DistinctStates = SH.States.size();
    if (Opts.Races != RaceCheckMode::Off)
      CK->Stats.RacesFound = (ResumeCK ? ResumeCK->Stats.RacesFound : 0) +
                             SH.RaceKeys.size();
    CK->Rng = Opts.Seed;
    CK->States.assign(SH.States.begin(), SH.States.end());
    std::sort(CK->States.begin(), CK->States.end());
    CK->Frontier.reserve(SH.Stash.size());
    for (const auto &P : SH.Stash)
      CK->Frontier.push_back({P, P.size()});
    if (SH.HasBug)
      CK->Bug = SH.BestBug;
    return CK;
  };

  bool Interrupted = false;
  std::shared_ptr<CheckpointState> ResumeOut;
  obs::WorkerCounters *DCtr = Opts.Obs ? &Opts.Obs->shard(0) : nullptr;

  for (;;) {
    std::vector<std::thread> Workers;
    Workers.reserve(Jobs);
    for (int I = 0; I < Jobs; ++I)
      Workers.emplace_back(WorkerMain, I + 1);
    for (std::thread &W : Workers)
      W.join();

    if (!SH.EpochStop.load(std::memory_order_relaxed))
      break; // Search ended for real (drained, bug, cap, timeout).
    if (SH.StopAll.load(std::memory_order_relaxed))
      break; // A budget fired while the epoch wound down; it wins.
    if (SH.HasBug && StopOnFirstBug)
      break;

    if (SH.InterruptSeen.load(std::memory_order_relaxed)) {
      if (!SH.Stash.empty()) {
        Interrupted = true;
        ResumeOut = buildCheckpoint();
      }
      // Empty stash: the interrupt landed exactly on exhaustion.
      break;
    }

    // Periodic checkpoint: persist the stash as the frontier, then put it
    // back and run the next epoch.
    if (SH.Stash.empty())
      break; // Boundary coincided with exhaustion; nothing left to save.
    ++SH.Total.Checkpoints;
    if (DCtr)
      DCtr->add(obs::Counter::Checkpoints);
    Opts.CheckpointSink(*buildCheckpoint());
    SH.NextCheckpointAt.store(
        (SH.Executions.load(std::memory_order_relaxed) / Every + 1) * Every,
        std::memory_order_relaxed);
    std::vector<WorkItem> Items;
    Items.reserve(SH.Stash.size());
    for (auto &P : SH.Stash)
      Items.push_back(WorkItem{std::move(P)});
    SH.Stash.clear();
    SH.EpochStop.store(false, std::memory_order_relaxed);
    SH.registerItems(Items.size());
    SH.Injector.pushAll(std::move(Items));
  }

  CheckResult Result;
  Result.Stats = SH.Total;
  Result.Profile = SH.Profile;
  Result.Stats.DistinctStates = SH.States.size();
  if (!SH.RaceIncidents.empty()) {
    // Worker arrival order is nondeterministic; the messages are not (the
    // execution multiset is), so sorting by message makes the incident
    // list and its count deterministic across runs and job counts.
    std::sort(SH.RaceIncidents.begin(), SH.RaceIncidents.end(),
              [](const BugReport &A, const BugReport &B) {
                return A.Message < B.Message;
              });
    Result.Incidents = std::move(SH.RaceIncidents);
  }
  // Per-worker RacesFound summed across workers overcounts shared races;
  // the global key set is the true distinct count (plus any base from a
  // resumed checkpoint, whose keys are no longer available).
  if (Opts.Races != RaceCheckMode::Off) {
    uint64_t Base = ResumeCK ? ResumeCK->Stats.RacesFound : 0;
    Result.Stats.RacesFound = Base + SH.RaceKeys.size();
  }
  if (Opts.ExportStateSignatures) {
    Result.StateSignatures.assign(SH.States.begin(), SH.States.end());
    std::sort(Result.StateSignatures.begin(), Result.StateSignatures.end());
  }
  Result.Stats.ExecutionCapHit = SH.CapHit.load();
  Result.Stats.TimedOut = SH.GlobalTimeout.load();
  Result.Stats.Interrupted = Interrupted;
  if (Interrupted)
    Result.Resume = ResumeOut;
  if (SH.HasBug) {
    Result.Kind = SH.BestKind;
    Result.Bug = std::move(SH.BestBug);
  }
  // Exhausted iff nothing cut the enumeration short: every subtree either
  // ran dry or was pruned only by the first-bug rule (which mirrors the
  // serial early stop, where the flag is also left clear).
  Result.Stats.SearchExhausted = !Result.Stats.ExecutionCapHit &&
                                 !Result.Stats.TimedOut && !Interrupted &&
                                 !(SH.HasBug && StopOnFirstBug);
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  Result.Stats.Seconds = std::chrono::duration<double>(Elapsed).count();
  return Result;
}

CheckResult fsmc::checkParallel(const TestProgram &Program,
                                const CheckerOptions &Opts, int Jobs) {
  CheckerOptions E = Opts;
  E.Jobs = Jobs;
  return check(Program, E);
}
