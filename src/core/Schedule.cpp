//===- core/Schedule.cpp --------------------------------------------------===//

#include "core/Schedule.h"

#include "core/Explorer.h"
#include "core/Sandbox.h"

#include <cstdio>
#include <cstdlib>

using namespace fsmc;

static const char *SchedulePrefix = "fsmc1:";

std::string fsmc::encodeSchedule(const std::vector<ScheduleChoice> &Choices) {
  std::string Out = SchedulePrefix;
  for (size_t I = 0; I < Choices.size(); ++I) {
    if (I)
      Out += ";";
    Out += std::to_string(Choices[I].Chosen);
    Out += "/";
    Out += std::to_string(Choices[I].Num);
    if (!Choices[I].Backtrack)
      Out += "r";
    if (Choices[I].FlushMask) {
      char Buf[24];
      std::snprintf(Buf, sizeof(Buf), "f%llx",
                    (unsigned long long)Choices[I].FlushMask);
      Out += Buf;
    }
    if (Choices[I].SleepMask) {
      char Buf[24];
      std::snprintf(Buf, sizeof(Buf), "s%llx",
                    (unsigned long long)Choices[I].SleepMask);
      Out += Buf;
    }
  }
  return Out;
}

bool fsmc::decodeSchedule(const std::string &Text,
                          std::vector<ScheduleChoice> &Out) {
  Out.clear();
  std::string_view S = Text;
  std::string_view Prefix = SchedulePrefix;
  if (S.substr(0, Prefix.size()) != Prefix)
    return false;
  S.remove_prefix(Prefix.size());
  if (S.empty())
    return true;
  while (!S.empty()) {
    size_t Semi = S.find(';');
    std::string_view Tok = S.substr(0, Semi);
    S.remove_prefix(Semi == std::string_view::npos ? S.size() : Semi + 1);

    ScheduleChoice C;
    size_t Slash = Tok.find('/');
    if (Slash == std::string_view::npos || Slash == 0)
      return false;
    C.Chosen = std::atoi(std::string(Tok.substr(0, Slash)).c_str());
    std::string_view NumTok = Tok.substr(Slash + 1);
    // Suffixes come off right-to-left: the `s` mask first (its hex digits
    // cannot contain 's'), then the `f` mask -- everything left of the
    // `f` marker is decimal digits plus an optional 'r', so the *first*
    // 'f' in what remains is always the marker, never a hex digit of the
    // flush mask -- then the trailing 'r'.
    size_t SleepAt = NumTok.find('s');
    if (SleepAt != std::string_view::npos) {
      std::string Hex(NumTok.substr(SleepAt + 1));
      if (Hex.empty())
        return false;
      char *End = nullptr;
      C.SleepMask = std::strtoull(Hex.c_str(), &End, 16);
      if (End == Hex.c_str() || *End != '\0')
        return false;
      NumTok = NumTok.substr(0, SleepAt);
    }
    size_t FlushAt = NumTok.find('f');
    if (FlushAt != std::string_view::npos) {
      std::string Hex(NumTok.substr(FlushAt + 1));
      if (Hex.empty())
        return false;
      char *End = nullptr;
      C.FlushMask = std::strtoull(Hex.c_str(), &End, 16);
      if (End == Hex.c_str() || *End != '\0')
        return false;
      NumTok = NumTok.substr(0, FlushAt);
    }
    if (!NumTok.empty() && NumTok.back() == 'r') {
      C.Backtrack = false;
      NumTok.remove_suffix(1);
    }
    if (NumTok.empty())
      return false;
    C.Num = std::atoi(std::string(NumTok).c_str());
    if (C.Num < 2 || C.Chosen < 0 || C.Chosen >= C.Num)
      return false;
    Out.push_back(C);
  }
  return true;
}

CheckResult fsmc::replaySchedule(const TestProgram &Program,
                                 const CheckerOptions &Opts,
                                 const std::string &Schedule) {
  std::vector<ScheduleChoice> Choices;
  CheckResult Bad;
  if (!decodeSchedule(Schedule, Choices)) {
    Bad.Kind = Verdict::SafetyViolation;
    BugReport B;
    B.Kind = Verdict::SafetyViolation;
    B.Message = "malformed schedule string";
    Bad.Bug = std::move(B);
    return Bad;
  }
  CheckerOptions Effective = Opts;
  Effective.MaxExecutions = 1;
  Effective.StopOnFirstBug = true;
  // Freeze the whole schedule: replay must stay on the recorded path. A
  // mismatch then surfaces as Verdict::Divergence (after the configured
  // retries) instead of wandering into sibling schedules.
  CheckResult R;
  if (Effective.Isolate == IsolationMode::Batch) {
    // Replaying a crashing schedule in-process would kill the caller --
    // the one execution isolation exists for.
    R = runSandboxed(Program, Effective, &Choices, Choices.size());
  } else {
    Explorer E(Program, Effective);
    E.preloadSchedule(Choices, /*Frozen=*/true);
    R = E.run();
  }
  // Replay is a top-level entry point like check(): a replayed race
  // schedule should reproduce the race as the verdict.
  finalizeRaces(R, Effective);
  return R;
}
