//===- core/IterativeCheck.cpp --------------------------------------------===//

#include "core/IterativeCheck.h"

#include <cassert>
#include <chrono>

using namespace fsmc;

IterativeCheckResult fsmc::iterativeCheck(const TestProgram &Program,
                                          const CheckerOptions &Base,
                                          int MaxBound) {
  assert(MaxBound >= 0 && "negative context bound");
  IterativeCheckResult Out;
  double TotalBudget = Base.TimeBudgetSeconds;
  auto Start = std::chrono::steady_clock::now();

  for (int Bound = 0; Bound <= MaxBound; ++Bound) {
    CheckerOptions O = Base;
    O.Kind = SearchKind::ContextBounded;
    O.ContextBound = Bound;
    if (TotalBudget > 0) {
      auto Elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
      double Remaining = TotalBudget - Elapsed;
      if (Remaining <= 0)
        break;
      O.TimeBudgetSeconds = Remaining;
    }

    IterationResult IR;
    IR.Bound = Bound;
    IR.Result = check(Program, O);
    bool Bug = IR.Result.foundBug();
    bool Timed = IR.Result.Stats.TimedOut;
    Out.PerBound.push_back(std::move(IR));

    if (Bug) {
      Out.BugBound = Bound;
      break;
    }
    if (Timed)
      break;
  }

  if (!Out.PerBound.empty())
    Out.Final = Out.PerBound.back().Result;
  return Out;
}
