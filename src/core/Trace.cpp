//===- core/Trace.cpp -----------------------------------------------------===//

#include "core/Trace.h"

#include "runtime/Runtime.h"
#include "support/Hashing.h"
#include "support/OutStream.h"

#include <cstdio>

using namespace fsmc;

ThreadSet Trace::scheduledInSuffix(size_t Window) const {
  ThreadSet Result;
  size_t Start = Events.size() > Window ? Events.size() - Window : 0;
  for (size_t I = Start; I < Events.size(); ++I)
    Result.insert(Events[I].Thread);
  return Result;
}

ThreadSet Trace::yieldedInSuffix(size_t Window) const {
  ThreadSet Result;
  size_t Start = Events.size() > Window ? Events.size() - Window : 0;
  for (size_t I = Start; I < Events.size(); ++I)
    if (Events[I].WasYield)
      Result.insert(Events[I].Thread);
  return Result;
}

std::string Trace::render(const Runtime &RT, size_t MaxEvents) const {
  std::string Out;
  size_t Start = Events.size() > MaxEvents ? Events.size() - MaxEvents : 0;
  if (Start > 0)
    Out += "  ... (" + std::to_string(Start) + " earlier transitions)\n";
  for (size_t I = Start; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf), "  #%zu %s: %s", I,
                  RT.threadName(E.Thread).c_str(), opKindName(E.Kind));
    Out += Buf;
    if (E.ObjectId >= 0) {
      Out += "(";
      Out += RT.objectName(E.ObjectId);
      Out += ")";
    }
    if (E.Annotation != 0) {
      Out += " @";
      Out += std::to_string(E.Annotation);
    }
    Out += "\n";
  }
  return Out;
}

void Trace::print(OutStream &OS, const Runtime &RT, size_t MaxEvents) const {
  std::string Text = render(RT, MaxEvents);
  OS.write(Text.data(), Text.size());
}

uint64_t Trace::digest() const {
  Fnv1a H;
  for (const TraceEvent &E : Events) {
    H.addU64(uint64_t(E.Thread));
    H.addByte(uint8_t(E.Kind));
    H.addU64(uint64_t(E.ObjectId) + 1);
  }
  return H.digest();
}
