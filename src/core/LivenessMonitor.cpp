//===- core/LivenessMonitor.cpp -------------------------------------------===//

#include "core/LivenessMonitor.h"

#include <algorithm>
#include <array>

using namespace fsmc;

void LivenessMonitor::beginExecution() {
  RunSinceYield = {};
  StarvedSomeone = {};
  EagerViolator = -1;
}

void LivenessMonitor::onTransition(Tid T, bool WasYield, bool OthersEnabled) {
  assert(T >= 0 && T < MaxThreads && "tid out of range");
  if (WasYield) {
    RunSinceYield[T] = 0;
    StarvedSomeone[T] = false;
    return;
  }
  ++RunSinceYield[T];
  StarvedSomeone[T] = StarvedSomeone[T] || OthersEnabled;
  if (GsBound && RunSinceYield[T] >= GsBound && StarvedSomeone[T])
    EagerViolator = T;
}

LivenessMonitor::Divergence
LivenessMonitor::classifyDivergence(const Trace &T, size_t Window) {
  Divergence Result;
  ThreadSet Scheduled = T.scheduledInSuffix(Window);

  // GS asks about threads scheduled *infinitely often*; in the finite
  // suffix we approximate that as "scheduled persistently". A thread that
  // ran only a handful of times in the window (e.g. a joiner advancing
  // past one finished thread) is not a spinner, even though it never
  // yielded.
  std::array<uint64_t, MaxThreads> Sched = {};
  std::array<uint64_t, MaxThreads> Yields = {};
  size_t Start = T.size() > Window ? T.size() - Window : 0;
  for (size_t I = Start; I < T.size(); ++I) {
    ++Sched[T[I].Thread];
    if (T[I].WasYield)
      ++Yields[T[I].Thread];
  }
  uint64_t Persistent = std::max<uint64_t>(4, (T.size() - Start) / 32);
  ThreadSet Spinners;
  for (Tid U = 0; U < MaxThreads; ++U) {
    // Store-buffer flush agents (tids >= Runtime::FlushBase under
    // --memory=tso|pso) never yield by design; branding one a spinner
    // would misclassify genuine livelocks as good-samaritan violations.
    // Their transitions are VarFlush ops, recognizable in the trace, so
    // exempt any tid whose suffix transitions are all flushes.
    if (Sched[U] >= Persistent && Yields[U] == 0) {
      bool AllFlush = true;
      for (size_t I = Start; I < T.size() && AllFlush; ++I)
        if (T[I].Thread == U && T[I].Kind != OpKind::VarFlush)
          AllFlush = false;
      if (!AllFlush)
        Spinners.insert(U);
    }
  }

  if (!Spinners.empty()) {
    // Some thread runs in the limit without ever yielding: the execution
    // violates the good samaritan property (outcome 2).
    Result.IsGoodSamaritan = true;
    Result.Culprit = Spinners.first();
    Result.Summary =
        "good samaritan violation: thread(s) " + Spinners.str() +
        " scheduled throughout the diverging suffix without yielding";
    return Result;
  }

  // Every scheduled thread yields in the suffix; the divergence is a fair
  // nonterminating execution, i.e. a livelock (outcome 3).
  Result.Summary = "livelock: fair nonterminating execution; threads " +
                   Scheduled.str() +
                   " cycle (each yields) without global progress";
  return Result;
}
