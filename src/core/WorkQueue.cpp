//===- core/WorkQueue.cpp -------------------------------------------------===//

#include "core/WorkQueue.h"

#include "obs/Counters.h"

using namespace fsmc;

void WorkQueue::setObserver(obs::WorkerCounters *C) {
  std::lock_guard<std::mutex> Lock(M);
  Ctr = C;
  publishDepth();
}

void WorkQueue::publishDepth() {
  if (Ctr)
    Ctr->setGauge(obs::Gauge::WorkQueueDepth, Q.size());
}

void WorkQueue::pushAll(std::vector<WorkItem> Items) {
  if (Items.empty())
    return;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Stopped)
      return;
    Outstanding += Items.size();
    for (WorkItem &I : Items)
      Q.push_back(std::move(I));
    publishDepth();
  }
  CV.notify_all();
}

std::optional<WorkItem> WorkQueue::pop() {
  std::unique_lock<std::mutex> Lock(M);
  CV.wait(Lock, [this] { return !Q.empty() || Outstanding == 0 || Stopped; });
  if (Stopped || Q.empty())
    return std::nullopt;
  WorkItem I = std::move(Q.front());
  Q.pop_front();
  publishDepth();
  return I;
}

void WorkQueue::itemDone() {
  bool Done;
  {
    std::lock_guard<std::mutex> Lock(M);
    Done = --Outstanding == 0;
  }
  if (Done)
    CV.notify_all();
}

void WorkQueue::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopped = true;
    Outstanding -= Q.size();
    Q.clear();
    publishDepth();
  }
  CV.notify_all();
}

size_t WorkQueue::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Q.size();
}

size_t WorkQueue::freeSlots() const {
  std::lock_guard<std::mutex> Lock(M);
  return Q.size() >= Capacity ? 0 : Capacity - Q.size();
}

bool WorkQueue::hungry(size_t LowWater) const {
  std::lock_guard<std::mutex> Lock(M);
  return !Stopped && Q.size() < LowWater;
}
