//===- core/WorkQueue.cpp -------------------------------------------------===//

#include "core/WorkQueue.h"

#include "obs/Counters.h"

using namespace fsmc;

void WorkQueue::setObserver(obs::WorkerCounters *C) {
  std::lock_guard<std::mutex> Lock(M);
  Ctr = C;
  publishDepth();
}

void WorkQueue::publishDepth() {
  Depth.store(Q.size(), std::memory_order_relaxed);
  if (Ctr)
    Ctr->setGauge(obs::Gauge::WorkQueueDepth, Q.size());
}

void WorkQueue::pushAll(std::vector<WorkItem> Items) {
  if (Items.empty())
    return;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Stopped)
      return;
    for (WorkItem &I : Items)
      Q.push_back(std::move(I));
    publishDepth();
  }
  CV.notify_all();
}

std::optional<WorkItem> WorkQueue::tryPop() {
  std::lock_guard<std::mutex> Lock(M);
  if (Stopped || Q.empty())
    return std::nullopt;
  WorkItem I = std::move(Q.front());
  Q.pop_front();
  publishDepth();
  return I;
}

std::optional<WorkItem> WorkQueue::popWait(std::chrono::microseconds Timeout) {
  std::unique_lock<std::mutex> Lock(M);
  if (Q.empty() && !Stopped)
    CV.wait_for(Lock, Timeout);
  if (Stopped || Q.empty())
    return std::nullopt;
  WorkItem I = std::move(Q.front());
  Q.pop_front();
  publishDepth();
  return I;
}

void WorkQueue::notifyAll() { CV.notify_all(); }

void WorkQueue::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopped = true;
    Q.clear();
    publishDepth();
  }
  CV.notify_all();
}

size_t WorkQueue::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Q.size();
}

size_t WorkQueue::freeSlots() const {
  std::lock_guard<std::mutex> Lock(M);
  return Q.size() >= Capacity ? 0 : Capacity - Q.size();
}
