//===- core/ParallelExplorer.h - Prefix-sharded parallel search *- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel exploration engine: N OS worker threads cooperatively
/// enumerate the same DFS choice tree the serial Explorer walks, sharded
/// by schedule prefix.
///
/// Stateless search parallelizes on a simple observation: every execution
/// is a pure function of its choice sequence, so any subtree of the
/// choice tree can be explored by whoever holds the prefix that reaches
/// it. A work item is such a prefix; a worker replays it (the frozen
/// prefix of Explorer::preloadSchedule), then runs the ordinary serial
/// DFS strictly below it. Workers whose queue runs hungry receive
/// donations: a busy worker carves the unexplored sibling alternatives
/// off the *shallowest* record of its DFS stack -- the largest subtrees
/// it owns -- and publishes them as new items (work stealing by
/// splitting).
///
/// The partition is exact -- every complete execution of the serial
/// search runs on exactly one worker -- so the aggregated execution,
/// transition and state-signature totals equal the serial run's, and the
/// per-worker signature shards merge by plain set union. Under
/// StopOnFirstBug the engine reports the *DFS-smallest* bug: candidate
/// bugs are ordered by their choice sequence (first differing choice
/// index decides), work that lies after the current best is pruned, and
/// work before it keeps running until no earlier bug can exist. That
/// tie-break makes `--jobs N` report the same counterexample as
/// `--jobs 1`.
///
/// Random-walk search and stateful pruning depend on a global visit
/// order, so they fall back to the serial explorer.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_PARALLELEXPLORER_H
#define FSMC_CORE_PARALLELEXPLORER_H

#include "core/Checker.h"

#include <memory>

namespace fsmc {

struct CheckpointState;

/// Drives one parallel checker run with Opts.Jobs workers.
class ParallelExplorer {
public:
  ParallelExplorer(const TestProgram &Program, const CheckerOptions &Opts);
  ~ParallelExplorer();

  /// Seeds the search from a checkpoint instead of the tree root: the
  /// frontier units are sharded into fully frozen subtree prefixes
  /// (decomposeUnitToFrozenPrefixes), and stats / coverage / the first
  /// bug carry over so the combined run reports cumulative totals. Must
  /// precede run().
  void resumeFrom(const CheckpointState &CK);

  /// Runs the sharded search to completion (exhaustion, first bug, or a
  /// shared budget) and returns the aggregated result. Honors
  /// CheckerOptions::CheckpointEvery / InterruptFlag at epoch granularity:
  /// workers wind down at the next execution boundary, stash their
  /// unexplored remainders (splitWork over the whole stack), and the
  /// driver either writes a checkpoint and requeues the stash or returns
  /// with CheckResult::Resume.
  CheckResult run();

private:
  struct Shared;

  const TestProgram &Program;
  CheckerOptions Opts;
  std::shared_ptr<CheckpointState> ResumeCK;
};

/// Convenience entry point: check() with \p Jobs workers.
CheckResult checkParallel(const TestProgram &Program,
                          const CheckerOptions &Opts, int Jobs);

} // namespace fsmc

#endif // FSMC_CORE_PARALLELEXPLORER_H
