//===- core/Trace.h - Execution traces and bug reports ---------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recorded execution: the sequence of transitions the scheduler chose.
/// Traces back every counterexample the checker reports -- the "finite
/// execution of Q violating ϕ" and the bounded prefix of a "fair
/// nonterminating execution" from the problem statement in Section 2.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_TRACE_H
#define FSMC_CORE_TRACE_H

#include "runtime/PendingOp.h"
#include "support/ThreadSet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fsmc {

class OutStream;
class Runtime;

/// One transition of an execution: thread \p Thread performed the visible
/// operation described by Kind/ObjectId/Aux.
struct TraceEvent {
  Tid Thread;
  OpKind Kind;
  int ObjectId;
  int64_t Aux;
  uint64_t Annotation; ///< The thread's abstract pc before the transition.
  bool WasYield;       ///< curr.yield(t) at the moment of scheduling.
};

/// The transition sequence of one execution.
class Trace {
public:
  void clear() { Events.clear(); }
  void record(const TraceEvent &E) { Events.push_back(E); }

  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  const TraceEvent &operator[](size_t I) const { return Events[I]; }
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Threads scheduled in the last \p Window events.
  ThreadSet scheduledInSuffix(size_t Window) const;
  /// Threads with at least one yielding transition in the last \p Window
  /// events.
  ThreadSet yieldedInSuffix(size_t Window) const;

  /// Renders the last \p MaxEvents transitions with names resolved via
  /// \p RT, one per line, for inclusion in a bug report. Must be called
  /// while the execution's Runtime is still alive.
  std::string render(const Runtime &RT, size_t MaxEvents = 100) const;

  /// Renders and emits the trace through \p OS as one atomic write, so a
  /// concurrent progress line (see obs/ProgressReporter) cannot shear it.
  void print(OutStream &OS, const Runtime &RT, size_t MaxEvents = 100) const;

  /// Order-sensitive hash of the whole transition sequence; used by tests
  /// to check that the explorer enumerates *distinct* executions.
  uint64_t digest() const;

private:
  std::vector<TraceEvent> Events;
};

} // namespace fsmc

#endif // FSMC_CORE_TRACE_H
