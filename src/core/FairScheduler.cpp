//===- core/FairScheduler.cpp ---------------------------------------------===//

#include "core/FairScheduler.h"

using namespace fsmc;

FairScheduler::FairScheduler(int YieldK) : YieldK(YieldK) {
  assert(YieldK > 0 && "YieldK must be positive");
  reset();
}

void FairScheduler::reset() {
  P.clear();
  for (Tid U = 0; U < MaxThreads; ++U) {
    // Lines 1-4 of Algorithm 1. D(u) = S(u) = Tid keeps the first yield of
    // any thread from adding edges: H = (E ∪ D) \ S = ∅ when S is full.
    S[U] = ThreadSet::all();
    E[U] = ThreadSet();
    D[U] = ThreadSet::all();
    YieldSeen[U] = 0;
  }
  EdgeAdds = 0;
  EdgeRemovals = 0;
}

ThreadSet FairScheduler::allowed(ThreadSet ES) const {
  ThreadSet T = ES - P.pre(ES);
  assert((T.empty() == ES.empty()) &&
         "Theorem 3 violated: schedulable set empty on nonempty ES");
  return T;
}

void FairScheduler::onTransition(Tid T, ThreadSet ESBefore, ThreadSet ESAfter,
                                 bool WasYield) {
  assert(T >= 0 && T < MaxThreads && "tid out of range");

  // Line 13: next.P := curr.P \ (Tid × {t}). Scheduling t satisfies any
  // obligation other threads had towards it.
  EdgeRemovals += uint64_t(P.removeEdgesInto(T));

  // Lines 14-22: update the per-thread window predicates.
  for (Tid U = 0; U < MaxThreads; ++U) {
    E[U] &= ESAfter;       // line 15: still continuously enabled
    S[U].insert(T);        // line 21: t has now been scheduled
  }
  D[T] |= (ESBefore - ESAfter); // line 17: t disabled these threads

  if (!WasYield)
    return;

  // Section 3's k-parameterization: only every k-th yield of t closes its
  // window. With k = 1 this is exactly lines 23-29 of Algorithm 1.
  if (++YieldSeen[T] % uint32_t(YieldK) != 0)
    return;

  // Line 24: H contains the threads never scheduled in t's closing window
  // that were continuously enabled, or disabled by t, during it.
  ThreadSet H = (E[T] | D[T]) - S[T];
  assert(!H.contains(T) && "line 21 guarantees t ∈ S(t), so t ∉ H");

  // Line 25: demote t below every starved thread in H.
  P.addEdgesFrom(T, H);
  EdgeAdds += uint64_t(H.size());
  assert(P.isAcyclic() && "Theorem 3 loop invariant violated");

  // Lines 26-28: open a new window for t.
  E[T] = ESAfter;
  D[T] = ThreadSet();
  S[T] = ThreadSet();
}
