//===- core/WorkStealDeque.cpp --------------------------------------------===//

#include "core/WorkStealDeque.h"

using namespace fsmc;

void WorkStealDeque::pushBottom(WorkItem &&Item) {
  std::lock_guard<std::mutex> Lock(M);
  Q.push_back(std::move(Item));
  Sz.store(Q.size(), std::memory_order_relaxed);
}

std::optional<WorkItem> WorkStealDeque::popBottom() {
  std::lock_guard<std::mutex> Lock(M);
  if (Q.empty())
    return std::nullopt;
  WorkItem I = std::move(Q.back());
  Q.pop_back();
  Sz.store(Q.size(), std::memory_order_relaxed);
  return I;
}

void WorkStealDeque::publishTop(std::vector<WorkItem> &&Items) {
  if (Items.empty())
    return;
  std::lock_guard<std::mutex> Lock(M);
  // Insert in reverse so Items.front() lands topmost (shallowest first).
  for (auto It = Items.rbegin(); It != Items.rend(); ++It)
    Q.push_front(std::move(*It));
  Sz.store(Q.size(), std::memory_order_relaxed);
}

size_t WorkStealDeque::stealTop(std::vector<WorkItem> &Out) {
  std::lock_guard<std::mutex> Lock(M);
  if (Q.empty())
    return 0;
  size_t Take = (Q.size() + 1) / 2;
  for (size_t I = 0; I < Take; ++I) {
    Out.push_back(std::move(Q.front()));
    Q.pop_front();
  }
  Sz.store(Q.size(), std::memory_order_relaxed);
  return Take;
}

size_t WorkStealDeque::drainAll(std::vector<WorkItem> &Out) {
  std::lock_guard<std::mutex> Lock(M);
  size_t N = Q.size();
  for (WorkItem &I : Q)
    Out.push_back(std::move(I));
  Q.clear();
  Sz.store(0, std::memory_order_relaxed);
  return N;
}
