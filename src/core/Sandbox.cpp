//===- core/Sandbox.cpp - Process-isolated execution batches --------------===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
//
// The sandbox parent/child protocol. One batch = one forked child running
// up to SandboxBatchSize executions of the ordinary serial Explorer; the
// child streams one record per finished execution so that when it dies the
// parent still knows exactly where the search stood:
//
//   ExecDone  (tag 1)  cumulative SearchStats, PRNG state, the executed
//                      path (raw DFS stack), and the coverage signatures
//                      first seen during this execution.
//   Bug       (tag 2)  a full BugReport (first workload bug only).
//   BatchEnd  (tag 3)  authoritative final stats/PRNG/frontier; its
//                      presence is what distinguishes a clean batch from a
//                      crashed one.
//   Choice    (tag 4)  probe mode only: every non-forced choice as it
//                      resolves, so the parent can reconstruct the exact
//                      stack of an execution that never finishes.
//   Race      (tag 5)  --races only: a data-race incident (same payload as
//                      Bug), streamed just before its execution's ExecDone
//                      so it commits and is discarded with that execution.
//
// Records are `u8 tag + u32 length + payload`, framed and parsed by the
// shared helpers in core/Wire.h (also spoken by the fleet coordinator).
// Parent and child are the same process image (fork, no exec), so
// trivially-copyable payloads (SearchStats, ScheduleChoice) cross the
// pipe as raw bytes.
//
// Crash attribution: the child dies somewhere inside execution N+1, whose
// replay prefix is advance(stack of ExecDone N). A fresh probe child
// re-runs that single execution with choice streaming; the streamed
// choices at the moment of death are the crashing execution's stack --
// deterministic programs cannot crash in the replay region they already
// survived -- which becomes the --replay repro and, advanced once more,
// the resume point. The search then continues: one bad execution costs
// one execution.
//
// Commit discipline: a clean BatchEnd commits the batch; a crash/hang
// commits up to the last ExecDone plus one incident; an interrupt discards
// the partial batch entirely, so a resumed run re-executes it and the
// final execution multiset matches an uninterrupted run exactly.
//
//===----------------------------------------------------------------------===//

#include "core/Sandbox.h"

#include "core/Checkpoint.h"
#include "core/Explorer.h"
#include "core/Wire.h"
#include "obs/Observer.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_set>

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace fsmc;
using wire::WireReader;
using wire::WireWriter;
using wire::writeRecord;

namespace {

//===----------------------------------------------------------------------===//
// Wire format (helpers live in core/Wire.h, shared with the fleet)
//===----------------------------------------------------------------------===//

enum : uint8_t {
  TagExecDone = 1,
  TagBug = 2,
  TagBatchEnd = 3,
  TagChoice = 4,
  TagRace = 5,
};

enum : uint8_t {
  FlagTimedOut = 1,
  FlagCapHit = 2,
  FlagExhausted = 4,
  FlagFrontier = 8,
};

//===----------------------------------------------------------------------===//
// Child side
//===----------------------------------------------------------------------===//

/// What every batch/probe child starts from; assembled by the parent
/// before fork so the child only reads plain memory it inherited.
struct ChildInput {
  const TestProgram *Program;
  CheckerOptions Opts; ///< Already stripped for in-child use.
  std::vector<ScheduleChoice> Prefix;
  size_t FrozenLen = 0;
  SearchStats BaseStats;
  std::vector<uint64_t> BaseStates;
  std::optional<BugReport> BaseBug;
  uint64_t Rng = 0;
};

void writeBugRecord(int Fd, const BugReport &B, uint8_t Tag = TagBug) {
  WireWriter W;
  W.u8(uint8_t(B.Kind));
  W.u64(B.AtExecution);
  W.u64(B.AtStep);
  W.str(B.Message);
  W.str(B.Schedule);
  W.str(B.TraceText);
  writeRecord(Fd, Tag, W);
}

/// Runs one batch inside the forked child and streams progress to \p Fd.
/// Never returns.
[[noreturn]] void childBatchMain(const ChildInput &In, int Fd) {
  Explorer E(*In.Program, In.Opts);
  if (!In.Prefix.empty())
    E.preloadScheduleFrozenPrefix(In.Prefix, In.FrozenLen);
  E.preloadBaseStats(In.BaseStats);
  if (!In.BaseStates.empty())
    E.preloadSeenStates(In.BaseStates);
  if (In.BaseBug)
    E.preloadBug(*In.BaseBug);
  E.setRngState(In.Rng);
  E.enableStateLog();

  size_t StatesSent = 0;
  size_t IncidentsSent = 0;
  bool PipeOk = true;
  E.setExecutionHook([&](Explorer &Ex) {
    // Race incidents harvested by the execution that just finished go out
    // first, so every Race record precedes the ExecDone that commits it.
    const std::vector<BugReport> &Inc = Ex.incidents();
    for (; IncidentsSent < Inc.size(); ++IncidentsSent)
      writeBugRecord(Fd, Inc[IncidentsSent], TagRace);
    WireWriter W;
    W.stats(Ex.currentStats());
    W.u64(Ex.rngState());
    W.choices(Ex.currentStackSnapshot());
    const std::vector<uint64_t> &Log = Ex.stateLog();
    W.states(Log.data() + StatesSent, Log.size() - StatesSent);
    StatesSent = Log.size();
    PipeOk = writeRecord(Fd, TagExecDone, W);
    return PipeOk; // Parent gone -> stop quietly.
  });

  CheckResult R = E.run();
  if (!PipeOk)
    _exit(0);

  if (R.Bug && !In.BaseBug)
    writeBugRecord(Fd, *R.Bug);

  std::vector<ScheduleChoice> Frontier;
  bool HasFrontier = false;
  if (R.Stats.ExecutionCapHit) {
    // Batch boundary (or the global cap; the parent re-derives which).
    if (auto Next = E.nextFrontier()) {
      Frontier = std::move(*Next);
      HasFrontier = true;
    } else {
      R.Stats.SearchExhausted = true;
    }
  }

  WireWriter W;
  uint8_t Flags = 0;
  if (R.Stats.TimedOut)
    Flags |= FlagTimedOut;
  if (R.Stats.ExecutionCapHit)
    Flags |= FlagCapHit;
  if (R.Stats.SearchExhausted)
    Flags |= FlagExhausted;
  if (HasFrontier)
    Flags |= FlagFrontier;
  W.u8(Flags);
  W.stats(R.Stats);
  W.u64(E.rngState());
  W.choices(Frontier);
  const std::vector<uint64_t> &Log = E.stateLog();
  W.states(Log.data() + StatesSent, Log.size() - StatesSent);
  writeRecord(Fd, TagBatchEnd, W);
  _exit(0);
}

/// Probe child: re-runs exactly one execution under a fully frozen prefix,
/// streaming every choice so the parent can see how far it got. Never
/// returns.
[[noreturn]] void childProbeMain(const ChildInput &In, int Fd) {
  CheckerOptions Opts = In.Opts;
  Opts.MaxExecutions = 1;
  Explorer E(*In.Program, Opts);
  if (!In.Prefix.empty())
    E.preloadScheduleFrozenPrefix(In.Prefix, In.Prefix.size());
  if (!In.BaseStates.empty())
    E.preloadSeenStates(In.BaseStates);
  E.setRngState(In.Rng);
  E.setChoiceStream([&](int Chosen, int Num, bool Backtrack,
                        uint64_t SleepMask, uint64_t FlushMask) {
    WireWriter W;
    W.u32(uint32_t(Chosen));
    W.u32(uint32_t(Num));
    W.u8(Backtrack ? 1 : 0);
    W.u64(SleepMask);
    W.u64(FlushMask);
    writeRecord(Fd, TagChoice, W);
  });
  (void)E.run();
  _exit(0);
}

//===----------------------------------------------------------------------===//
// Parent side
//===----------------------------------------------------------------------===//

/// Everything one child reported, in arrival order.
struct BatchReport {
  // Progress as of the last ExecDone.
  bool HaveExec = false;
  SearchStats ExecStats;
  uint64_t ExecRng = 0;
  std::vector<ScheduleChoice> LastStack;
  std::vector<uint64_t> StatesDelta; ///< Accumulated across ExecDones.

  std::optional<BugReport> Bug;

  // Data-race incidents in arrival order. A Race record always precedes
  // the ExecDone of the execution that found it, so RacesAtLastExec is the
  // committable prefix when the batch dies mid-execution.
  std::vector<BugReport> Races;
  size_t RacesAtLastExec = 0;

  // BatchEnd, when the child finished cleanly.
  bool GotEnd = false;
  uint8_t Flags = 0;
  SearchStats EndStats;
  uint64_t EndRng = 0;
  std::vector<ScheduleChoice> Frontier;

  // Probe mode.
  std::vector<ScheduleChoice> Streamed;

  bool Malformed = false;

  void onRecord(uint8_t Tag, WireReader R) {
    switch (Tag) {
    case TagExecDone: {
      ExecStats = R.stats();
      ExecRng = R.u64();
      LastStack = R.choices();
      std::vector<uint64_t> Delta = R.states();
      if (!R.Ok)
        break;
      StatesDelta.insert(StatesDelta.end(), Delta.begin(), Delta.end());
      HaveExec = true;
      RacesAtLastExec = Races.size();
      return;
    }
    case TagBug:
    case TagRace: {
      BugReport B;
      B.Kind = Verdict(R.u8());
      B.AtExecution = R.u64();
      B.AtStep = R.u64();
      B.Message = R.str();
      B.Schedule = R.str();
      B.TraceText = R.str();
      if (!R.Ok)
        break;
      if (Tag == TagRace)
        Races.push_back(std::move(B));
      else
        Bug = std::move(B);
      return;
    }
    case TagBatchEnd: {
      Flags = R.u8();
      EndStats = R.stats();
      EndRng = R.u64();
      Frontier = R.choices();
      std::vector<uint64_t> Delta = R.states();
      if (!R.Ok)
        break;
      StatesDelta.insert(StatesDelta.end(), Delta.begin(), Delta.end());
      GotEnd = true;
      return;
    }
    case TagChoice: {
      ScheduleChoice C;
      C.Chosen = int(R.u32());
      C.Num = int(R.u32());
      C.Backtrack = R.u8() != 0;
      C.SleepMask = R.u64();
      C.FlushMask = R.u64();
      if (!R.Ok)
        break;
      Streamed.push_back(C);
      return;
    }
    default:
      break;
    }
    Malformed = true;
  }
};

/// How a child process ended, from the parent's point of view.
struct ChildExit {
  bool HangKilled = false;       ///< Watchdog fired.
  bool InterruptKilled = false;  ///< Parent-side InterruptFlag.
  bool Signaled = false;
  int Signal = 0;
  int ExitStatus = 0;
};

/// Reads records from \p Fd until EOF, the watchdog fires, or the
/// interrupt flag is raised; then reaps the child.
ChildExit superviseChild(pid_t Pid, int Fd, const CheckerOptions &Opts,
                         BatchReport &Rep) {
  ChildExit Ex;
  wire::FrameParser Frames;
  auto LastActivity = std::chrono::steady_clock::now();
  bool Killed = false;

  for (;;) {
    if (!Killed && Opts.InterruptFlag &&
        Opts.InterruptFlag->load(std::memory_order_relaxed)) {
      ::kill(Pid, SIGKILL);
      Killed = true;
      Ex.InterruptKilled = true;
    }
    struct pollfd Pfd = {Fd, POLLIN, 0};
    int N = ::poll(&Pfd, 1, 100);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N > 0) {
      char Chunk[16384];
      ssize_t R = ::read(Fd, Chunk, sizeof(Chunk));
      if (R < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (R == 0)
        break; // EOF: child closed its end (exit or death).
      Frames.feed(Chunk, size_t(R),
                  [&](uint8_t Tag, WireReader Rd) { Rep.onRecord(Tag, Rd); });
      LastActivity = std::chrono::steady_clock::now();
      continue;
    }
    // Silence. A child that stopped making progress is hung.
    if (!Killed && Opts.HangTimeoutSeconds > 0) {
      double Quiet = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - LastActivity)
                         .count();
      if (Quiet > Opts.HangTimeoutSeconds) {
        ::kill(Pid, SIGKILL);
        Killed = true;
        Ex.HangKilled = true;
      }
    }
  }
  ::close(Fd);

  int Status = 0;
  while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR)
    ;
  if (WIFSIGNALED(Status)) {
    Ex.Signaled = true;
    Ex.Signal = WTERMSIG(Status);
  } else if (WIFEXITED(Status)) {
    Ex.ExitStatus = WEXITSTATUS(Status);
  }
  return Ex;
}

/// Forks and runs \p Main in the child. Returns the report/exit through
/// out-params; false when fork/pipe itself failed (no child ran).
template <typename MainFn>
bool runChild(const ChildInput &In, const CheckerOptions &ParentOpts,
              MainFn Main, BatchReport &Rep, ChildExit &Ex) {
  int P[2];
  if (::pipe(P) != 0)
    return false;
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(P[0]);
    ::close(P[1]);
    return false;
  }
  if (Pid == 0) {
    // Child. Detach from the parent's control surfaces: the parent owns
    // SIGINT handling, and a vanished parent must surface as EPIPE, not a
    // signal. _exit (never exit) on every path so fork-duplicated stdio
    // buffers are not flushed twice.
    ::signal(SIGINT, SIG_IGN);
    ::signal(SIGTERM, SIG_IGN);
    ::signal(SIGPIPE, SIG_IGN);
    ::close(P[0]);
    Main(In, P[1]); // noreturn
    _exit(0);       // unreachable
  }
  ::close(P[1]);
  Ex = superviseChild(Pid, P[0], ParentOpts, Rep);
  return true;
}

//===----------------------------------------------------------------------===//
// Parent-side search state
//===----------------------------------------------------------------------===//

/// Mirrors Explorer::advanceStack on a serialized stack: bump the deepest
/// backtrackable record with an untried alternative, popping exhausted
/// ones, never descending into the frozen region. Random walks never
/// backtrack; their "next path" is the bare frozen prefix.
bool advancePrefix(std::vector<ScheduleChoice> &P, size_t FrozenLen,
                   bool RandomWalk) {
  if (RandomWalk) {
    P.resize(FrozenLen);
    return true;
  }
  while (P.size() > FrozenLen) {
    ScheduleChoice &R = P.back();
    if (R.Backtrack && R.Chosen + 1 < R.Num) {
      ++R.Chosen;
      return true;
    }
    P.pop_back();
  }
  return false;
}

std::string describeSignal(int Sig) {
  const char *Name = strsignal(Sig);
  std::string S = "child killed by signal " + std::to_string(Sig);
  if (Name) {
    S += " (";
    S += Name;
    S += ")";
  }
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// runSandboxed
//===----------------------------------------------------------------------===//

CheckResult fsmc::runSandboxed(const TestProgram &Program,
                               const CheckerOptions &Opts,
                               const std::vector<ScheduleChoice> *InitialPrefix,
                               size_t FrozenLen,
                               SandboxResumeContext *Resume) {
  auto StartTime = std::chrono::steady_clock::now();
  const bool RandomWalk = Opts.Kind == SearchKind::RandomWalk;
  const bool WantStates = Opts.TrackCoverage || Opts.ExportStateSignatures ||
                          Opts.StatefulPruning;

  // Options every child runs under: in-process serial exploration with all
  // parent-owned machinery stripped. Obs must be null in the child -- fork
  // duplicates the parent's sink FILE buffers, and a child flush would
  // corrupt the trace.
  CheckerOptions ChildOpts = Opts;
  ChildOpts.Isolate = IsolationMode::Off;
  ChildOpts.Jobs = 1;
  ChildOpts.Obs = nullptr;
  ChildOpts.InterruptFlag = nullptr;
  ChildOpts.CheckpointEvery = 0;
  ChildOpts.CheckpointSink = nullptr;
  ChildOpts.ExportStateSignatures = false;

  obs::WorkerCounters *Ctr = Opts.Obs ? &Opts.Obs->shard(0) : nullptr;
  const int BatchSize = Opts.SandboxBatchSize > 0 ? Opts.SandboxBatchSize : 64;

  // Committed search state; every batch starts from exactly this.
  SearchStats Cum;
  std::vector<uint64_t> States; // Sorted distinct signatures.
  std::optional<BugReport> FirstBug;
  uint64_t Rng = Opts.Seed;
  if (Resume) {
    if (Resume->BaseStats) {
      Cum = *Resume->BaseStats;
      Cum.TimedOut = Cum.ExecutionCapHit = Cum.SearchExhausted =
          Cum.Interrupted = false;
      Cum.Seconds = 0;
    }
    if (Resume->BaseStates)
      States = *Resume->BaseStates;
    if (Resume->BaseBug)
      FirstBug = *Resume->BaseBug;
    if (Resume->Rng)
      Rng = Resume->Rng;
  }
  std::vector<ScheduleChoice> Prefix;
  if (InitialPrefix)
    Prefix = *InitialPrefix;

  CheckResult Agg;
  // Cross-batch race dedup. Each batch child restarts with an empty key
  // set, so its RacesFound recounts races earlier batches already found;
  // the parent keeps the authoritative set and rewrites Cum.RacesFound as
  // base-at-start + globally distinct races committed this run.
  std::unordered_set<std::string> RaceKeys;
  const uint64_t RaceBase = Cum.RacesFound;
  auto commitRaces = [&](const std::vector<BugReport> &Races, size_t N) {
    for (size_t I = 0; I < N && I < Races.size(); ++I) {
      const BugReport &B = Races[I];
      if (B.Kind != Verdict::DataRace || !RaceKeys.insert(B.Message).second)
        continue;
      if (Ctr)
        Ctr->add(obs::Counter::RacesFound);
      Agg.Incidents.push_back(B);
    }
    Cum.RacesFound = RaceBase + RaceKeys.size();
  };
  bool Exhausted = false, TimedOut = false, CapHit = false,
       Interrupted = false;
  uint64_t NextCheckpointAt =
      Opts.CheckpointEvery
          ? (Cum.Executions / Opts.CheckpointEvery + 1) * Opts.CheckpointEvery
          : 0;

  auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         StartTime)
        .count();
  };
  auto commitStates = [&](const std::vector<uint64_t> &Delta) {
    if (Delta.empty())
      return;
    States.insert(States.end(), Delta.begin(), Delta.end());
    std::sort(States.begin(), States.end());
    States.erase(std::unique(States.begin(), States.end()), States.end());
  };
  auto makeCheckpoint = [&]() {
    auto CK = std::make_shared<CheckpointState>();
    CK->Stats = Cum;
    CK->Stats.TimedOut = CK->Stats.ExecutionCapHit =
        CK->Stats.SearchExhausted = CK->Stats.Interrupted = false;
    CK->Stats.DistinctStates = States.size();
    CK->Frontier.push_back({Prefix, FrozenLen});
    CK->Rng = Rng;
    CK->States = States;
    CK->Bug = FirstBug;
    return CK;
  };
  auto interruptRequested = [&]() {
    return Opts.InterruptFlag &&
           Opts.InterruptFlag->load(std::memory_order_relaxed);
  };

  for (;;) {
    if (interruptRequested()) {
      Interrupted = true;
      break;
    }
    if (Opts.MaxExecutions && Cum.Executions >= Opts.MaxExecutions) {
      CapHit = true;
      break;
    }
    double Remaining = 0;
    if (Opts.TimeBudgetSeconds > 0) {
      Remaining = Opts.TimeBudgetSeconds - elapsed();
      if (Remaining <= 0) {
        TimedOut = true;
        break;
      }
    }

    ChildInput In;
    In.Program = &Program;
    In.Opts = ChildOpts;
    In.Opts.TimeBudgetSeconds = Remaining;
    In.Opts.MaxExecutions = Cum.Executions + uint64_t(BatchSize);
    if (Opts.MaxExecutions &&
        Opts.MaxExecutions < In.Opts.MaxExecutions)
      In.Opts.MaxExecutions = Opts.MaxExecutions;
    In.Prefix = Prefix;
    In.FrozenLen = FrozenLen;
    In.BaseStats = Cum;
    In.BaseStates = States;
    In.BaseBug = FirstBug;
    In.Rng = Rng;

    BatchReport Rep;
    ChildExit Ex;
    if (!runChild(In, Opts, childBatchMain, Rep, Ex)) {
      // fork/pipe failed (resource exhaustion): finish the search
      // in-process rather than losing it. Isolation is best-effort.
      In.Opts.MaxExecutions = Opts.MaxExecutions;
      Explorer E(Program, In.Opts);
      if (!Prefix.empty())
        E.preloadScheduleFrozenPrefix(Prefix, FrozenLen);
      E.preloadBaseStats(Cum);
      if (!States.empty())
        E.preloadSeenStates(States);
      if (FirstBug)
        E.preloadBug(*FirstBug);
      E.setRngState(Rng);
      E.enableStateLog();
      CheckResult R = E.run();
      foldStatsDeltaIntoCounters(Ctr, Cum, R.Stats);
      Cum = R.Stats;
      Cum.TimedOut = Cum.ExecutionCapHit = Cum.SearchExhausted =
          Cum.Interrupted = false;
      commitStates(E.stateLog());
      commitRaces(R.Incidents, R.Incidents.size());
      Rng = E.rngState();
      if (R.Bug && !FirstBug) {
        FirstBug = *R.Bug;
        bumpBugClassCounter(Ctr, R.Bug->Kind);
      }
      if (FirstBug && Opts.StopOnFirstBug)
        break;
      TimedOut = R.Stats.TimedOut;
      CapHit = R.Stats.ExecutionCapHit;
      Exhausted = R.Stats.SearchExhausted;
      if (CapHit && Opts.MaxExecutions &&
          R.Stats.Executions >= Opts.MaxExecutions)
        break;
      if (TimedOut || Exhausted)
        break;
      if (auto Next = E.nextFrontier()) {
        Prefix = std::move(*Next);
        continue;
      }
      Exhausted = true;
      break;
    }

    if (Ex.InterruptKilled) {
      // Discard the partial batch: the resumed run re-executes it from the
      // committed state, preserving the exact execution multiset.
      Interrupted = true;
      break;
    }

    if (Rep.Bug) {
      FirstBug = *Rep.Bug;
      bumpBugClassCounter(Ctr, Rep.Bug->Kind);
    }

    if (Rep.GotEnd && !Rep.Malformed) {
      // Clean batch: the BatchEnd block is authoritative.
      foldStatsDeltaIntoCounters(Ctr, Cum, Rep.EndStats);
      Cum = Rep.EndStats;
      Cum.TimedOut = Cum.ExecutionCapHit = Cum.SearchExhausted =
          Cum.Interrupted = false;
      commitStates(Rep.StatesDelta);
      commitRaces(Rep.Races, Rep.Races.size());
      Rng = Rep.EndRng;

      bool GlobalCap = Opts.MaxExecutions &&
                       Cum.Executions >= Opts.MaxExecutions;
      if (FirstBug && Opts.StopOnFirstBug)
        break;
      if (Rep.Flags & FlagTimedOut) {
        TimedOut = true;
        break;
      }
      if (GlobalCap) {
        CapHit = true;
        break;
      }
      if (!(Rep.Flags & FlagFrontier)) {
        Exhausted = true;
        break;
      }
      Prefix = std::move(Rep.Frontier);
    } else {
      // The child died (or truncated the protocol) inside execution N+1.
      // Commit through ExecDone N, attribute the crash, and skip past it.
      if (Rep.HaveExec) {
        foldStatsDeltaIntoCounters(Ctr, Cum, Rep.ExecStats);
        Cum = Rep.ExecStats;
        Cum.TimedOut = Cum.ExecutionCapHit = Cum.SearchExhausted =
            Cum.Interrupted = false;
        commitStates(Rep.StatesDelta);
        // Races past the last ExecDone belong to the uncommitted execution
        // the child died in; they are discarded along with it.
        commitRaces(Rep.Races, Rep.RacesAtLastExec);
        Rng = Rep.ExecRng;
      }

      // The crashing execution's replay prefix.
      std::vector<ScheduleChoice> CrashPrefix;
      bool HavePath = true;
      if (Rep.HaveExec) {
        CrashPrefix = Rep.LastStack;
        HavePath = advancePrefix(CrashPrefix, FrozenLen, RandomWalk);
      } else {
        CrashPrefix = Prefix;
      }

      bool IsHang = Ex.HangKilled;
      std::string Msg;
      if (IsHang)
        Msg = "no progress for " +
              std::to_string(Opts.HangTimeoutSeconds) +
              "s; child killed by the sandbox watchdog";
      else if (Ex.Signaled)
        Msg = describeSignal(Ex.Signal);
      else if (Ex.ExitStatus != 0)
        Msg = "child exited with status " + std::to_string(Ex.ExitStatus);
      else
        Msg = "child exited without completing its batch";

      std::vector<ScheduleChoice> CrashStack = CrashPrefix;
      if (HavePath) {
        // Probe: re-run the single crashing execution with choice
        // streaming; the streamed choices at death are its exact stack.
        ChildInput PIn;
        PIn.Program = &Program;
        PIn.Opts = ChildOpts;
        PIn.Prefix = CrashPrefix;
        PIn.BaseStates = States;
        PIn.Rng = Rng;
        BatchReport PRep;
        ChildExit PEx;
        if (runChild(PIn, Opts, childProbeMain, PRep, PEx) &&
            !PRep.Streamed.empty())
          CrashStack = std::move(PRep.Streamed);
        if (PEx.InterruptKilled)
          Interrupted = true;
      }

      BugReport Incident;
      Incident.Kind = IsHang ? Verdict::Hang : Verdict::Crash;
      Incident.Message = Msg;
      Incident.Schedule = encodeSchedule(CrashStack);
      Incident.AtExecution = Cum.Executions;
      Agg.Incidents.push_back(Incident);
      if (IsHang) {
        ++Cum.Hangs;
        if (Ctr)
          Ctr->add(obs::Counter::Hangs);
      } else {
        ++Cum.Crashes;
        if (Ctr)
          Ctr->add(obs::Counter::Crashes);
      }

      if (Interrupted)
        break;
      if (!HavePath) {
        Exhausted = true;
        break;
      }
      // Skip the crashing subtree: no choice resolves after the crash
      // point, so everything below CrashStack dies the same death.
      std::vector<ScheduleChoice> Next = CrashStack;
      if (RandomWalk) {
        // Re-running with the same PRNG state would reproduce the crash
        // forever; step the generator to a fresh stream.
        Xorshift Step(Rng ? Rng : Opts.Seed);
        Step.next();
        Rng = Step.state();
        Next.resize(FrozenLen);
      } else if (!advancePrefix(Next, FrozenLen, false)) {
        Exhausted = true;
        break;
      }
      Prefix = std::move(Next);
    }

    // Batch-granular periodic checkpoints (the serial explorer checkpoints
    // per execution; a sandbox parent only sees batch boundaries).
    if (NextCheckpointAt && Opts.CheckpointSink &&
        Cum.Executions >= NextCheckpointAt) {
      ++Cum.Checkpoints;
      if (Ctr)
        Ctr->add(obs::Counter::Checkpoints);
      Opts.CheckpointSink(*makeCheckpoint());
      NextCheckpointAt = (Cum.Executions / Opts.CheckpointEvery + 1) *
                         Opts.CheckpointEvery;
    }
  }

  Agg.Stats = Cum;
  Agg.Stats.TimedOut = TimedOut;
  Agg.Stats.ExecutionCapHit = CapHit;
  Agg.Stats.SearchExhausted = Exhausted;
  Agg.Stats.Interrupted = Interrupted;
  Agg.Stats.DistinctStates = States.size();
  Agg.Stats.Seconds = elapsed();

  // Data-race incidents never stand in for the verdict here: whether they
  // escalate is a top-level policy decision (finalizeRaces), and letting a
  // child batch promote one would perturb the search under StopOnFirstBug.
  const BugReport *StandIn = nullptr;
  for (const BugReport &I : Agg.Incidents)
    if (I.Kind != Verdict::DataRace) {
      StandIn = &I;
      break;
    }
  if (FirstBug) {
    Agg.Kind = FirstBug->Kind;
    Agg.Bug = FirstBug;
  } else if (StandIn) {
    // No genuine workload bug: the first crash/hang incident stands in.
    Agg.Kind = StandIn->Kind;
    Agg.Bug = *StandIn;
  } else if (Cum.Divergences > 0 && Cum.Executions == 0) {
    Agg.Kind = Verdict::Divergence;
  }

  if (Interrupted)
    Agg.Resume = makeCheckpoint();
  if (WantStates)
    Agg.StateSignatures = States;
  if (Resume)
    Resume->Rng = Rng;
  return Agg;
}
