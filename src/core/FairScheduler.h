//===- core/FairScheduler.h - Algorithm 1 of the paper ---------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fair, demonic scheduler -- Algorithm 1 of the paper, the central
/// contribution of this reproduction.
///
/// The scheduler maintains, per execution:
///   - P:    an acyclic priority relation over threads;
///   - S(u): threads scheduled since u's last (processed) yield;
///   - E(u): threads continuously enabled since u's last yield;
///   - D(u): threads disabled by some transition of u since u's last yield.
///
/// At each state it restricts the demonic choice to
///     T = ES \ pre(P, ES)
/// and after executing thread t it applies lines 13-29: removes edges into
/// t, updates E/D/S for every thread, and -- if t's transition was a yield
/// -- closes t's window by adding edges from t to
///     H = (E(t) ∪ D(t)) \ S(t)
/// (the threads t starved in the window) and resetting E/D/S.
///
/// Guarantees reproduced from the paper and checked by the test suite:
///   Thm 1: every infinite execution satisfies GS ⇒ SF (strong fairness);
///   Thm 3: T = ∅ iff ES = ∅ (never a false deadlock), since P is acyclic;
///   Thm 4: an unfair cycle is unrolled at most twice;
///   Thm 5: every reachable state of yield count zero is visited;
///   Thm 6: a reachable fair cycle of yield count ≤ 1 yields divergence.
///
/// The constructor's \p YieldK implements the parameterization at the end
/// of Section 3: only every k-th yield of a thread closes its window,
/// extending the safety-soundness guarantee to states whose yield count is
/// below k.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_FAIRSCHEDULER_H
#define FSMC_CORE_FAIRSCHEDULER_H

#include "core/PriorityGraph.h"
#include "support/ThreadSet.h"

#include <array>
#include <cstdint>

namespace fsmc {

/// Incremental implementation of Algorithm 1's auxiliary state.
///
/// The explorer owns the search; this class only answers "which threads may
/// be scheduled here" and ingests "thread t just executed". It is cheap to
/// copy-construct a fresh instance per execution.
class FairScheduler {
public:
  /// \p YieldK > 0: process every k-th yield of each thread (Section 3's
  /// parameterized algorithm; k = 1 is the paper's Algorithm 1).
  explicit FairScheduler(int YieldK = 1);

  /// Line 7: the schedulable set T = ES \ pre(P, ES) for enabled set \p ES.
  /// By Theorem 3 the result is empty iff \p ES is empty.
  ThreadSet allowed(ThreadSet ES) const;

  /// Lines 12-29: ingest the transition in which thread \p T executed.
  /// \p ESBefore is the enabled set of the pre-state (curr.ES), \p ESAfter
  /// of the post-state (next.ES), and \p WasYield is curr.yield(t) -- i.e.
  /// whether the executed visible operation was a yielding one.
  void onTransition(Tid T, ThreadSet ESBefore, ThreadSet ESAfter,
                    bool WasYield);

  /// The current priority relation (for tests, traces and diagnostics).
  const PriorityGraph &priorities() const { return P; }

  ThreadSet scheduledSince(Tid U) const { return S[U]; }
  ThreadSet continuouslyEnabledSince(Tid U) const { return E[U]; }
  ThreadSet disabledBySince(Tid U) const { return D[U]; }

  /// Total number of priority edges ever added (diagnostics/ablation).
  uint64_t edgeAdditions() const { return EdgeAdds; }

  /// Total edges removed by line 13 (scheduling a thread discharges the
  /// obligations towards it). Together with edgeAdditions this gives the
  /// priority-graph churn rate, a live measure of how hard the fair
  /// scheduler is working.
  uint64_t edgeRemovals() const { return EdgeRemovals; }

  /// Resets to the initial state of Algorithm 1 (lines 1-4):
  /// P = ∅, E(u) = ∅, D(u) = Tid, S(u) = Tid for all u. The full initial
  /// D/S guarantee that a thread's first window only begins after its
  /// first yield.
  void reset();

private:
  PriorityGraph P;
  std::array<ThreadSet, MaxThreads> S;
  std::array<ThreadSet, MaxThreads> E;
  std::array<ThreadSet, MaxThreads> D;
  std::array<uint32_t, MaxThreads> YieldSeen;
  int YieldK;
  uint64_t EdgeAdds = 0;
  uint64_t EdgeRemovals = 0;
};

} // namespace fsmc

#endif // FSMC_CORE_FAIRSCHEDULER_H
