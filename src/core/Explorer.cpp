//===- core/Explorer.cpp --------------------------------------------------===//

#include "core/Explorer.h"

#include "core/Checkpoint.h"
#include "core/Dependence.h"
#include "core/FairScheduler.h"
#include "core/LivenessMonitor.h"
#include "core/Schedule.h"
#include "obs/Explain.h"
#include "obs/Observer.h"
#include "obs/SearchProfile.h"
#include "race/RaceDetector.h"
#include "runtime/StackPool.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace fsmc;

Explorer::Explorer(const TestProgram &Program, const CheckerOptions &Opts)
    : Program(Program), Opts(Opts), Rng(Opts.Seed) {
  Strategy = SearchStrategy::create(this->Opts);
  if (this->Opts.Obs) {
    Obs = this->Opts.Obs;
    Ctr = &Obs->shard(0);
  }
  if (this->Opts.ProfileSearch) {
    Result.Profile = std::make_shared<obs::SearchProfile>();
    Prof = Result.Profile.get();
  }
}

void Explorer::setObsWorker(unsigned Worker, uint64_t StartClock) {
  if (!Obs)
    return;
  ObsWorker = Worker;
  Ctr = &Obs->shard(Worker);
  ObsClock = StartClock;
}

void Explorer::emitEvent(obs::ObsEvent E) {
  E.Worker = ObsWorker;
  Obs->sink()->event(E);
}

Explorer::~Explorer() = default;

bool Explorer::timeExceeded() const {
  if (Opts.TimeBudgetSeconds <= 0)
    return false;
  auto Elapsed = std::chrono::steady_clock::now() - StartTime;
  return std::chrono::duration<double>(Elapsed).count() >
         Opts.TimeBudgetSeconds;
}

Tid Explorer::nthMember(ThreadSet S, int Idx) {
  for (Tid T : S) {
    if (Idx == 0)
      return T;
    --Idx;
  }
  assert(false && "choice index out of range");
  return -1;
}

int Explorer::pickIndex(int N, bool Backtrack, bool PickRandom,
                        uint64_t SleepMask, uint64_t FlushMask) {
  assert(N >= 1 && "empty choice");
  if (N == 1)
    return 0; // Forced moves never enter the stack.
  if (Cursor < Stack.size()) {
    ChoiceRec &R = Stack[Cursor];
    // A Num mismatch means the test program diverged from its own replay:
    // it is nondeterministic beyond scheduling and chooseInt. Under POR a
    // sleep-mask mismatch is the same class of failure -- the recomputed
    // sleep set disagrees with the recorded one, so the schedule was
    // recorded under a different POR mode (or dependence relation) and
    // replaying it would explore a different interleaving. A flush-mask
    // mismatch likewise: the recomputed flush-agent candidates disagree
    // with the recorded ones, so the schedule was recorded under a
    // different memory model. (The flush check is unconditional -- both
    // masks are zero under --memory=sc, so sc-on-sc replay is
    // unaffected.) Either way the attempt is abandoned
    // (ExecEnd::Diverged) with the stack untouched, so the driver can
    // retry the prefix before discarding it.
    if (R.Num != N || (Opts.Por && R.SleepMask != SleepMask) ||
        R.FlushMask != FlushMask) {
      ReplayMismatch = true;
      MismatchIdx = Cursor;
      ++Cursor;
      return 0;
    }
    ++Cursor;
    if (StreamCb)
      StreamCb(R.Chosen, R.Num, R.Backtrack, R.SleepMask, R.FlushMask);
    return R.Chosen;
  }
  int Chosen = PickRandom ? Rng.nextBelow(N) : 0;
  Stack.push_back(
      {Chosen, N, Backtrack, /*Donated=*/false, SleepMask, FlushMask});
  ++Cursor;
  if (StreamCb)
    StreamCb(Chosen, N, Backtrack, SleepMask, FlushMask);
  return Chosen;
}

bool Explorer::advanceStack() {
  if (Opts.Kind == SearchKind::RandomWalk) {
    // Random walks never backtrack; each execution starts fresh and stops
    // via MaxExecutions / TimeBudget.
    Stack.resize(FrozenLen);
    return true;
  }
  // Records below FrozenLen belong to this shard's fixed prefix; popping
  // past them would wander into another worker's subtree.
  while (Stack.size() > FrozenLen) {
    ChoiceRec &R = Stack.back();
    if (R.Backtrack && !R.Donated && R.Chosen + 1 < R.Num) {
      ++R.Chosen;
      return true;
    }
    Stack.pop_back();
  }
  return false;
}

void Explorer::preloadSchedule(const std::vector<ScheduleChoice> &Choices,
                               bool Frozen) {
  assert(Stack.empty() && "preloadSchedule must precede run()");
  for (const ScheduleChoice &C : Choices)
    Stack.push_back({C.Chosen, C.Num, C.Backtrack, /*Donated=*/false,
                     C.SleepMask, C.FlushMask});
  if (Frozen)
    FrozenLen = Stack.size();
}

void Explorer::preloadScheduleFrozenPrefix(
    const std::vector<ScheduleChoice> &Choices, size_t FrozenPrefixLen) {
  assert(FrozenPrefixLen <= Choices.size() && "frozen prefix too long");
  preloadSchedule(Choices, /*Frozen=*/false);
  FrozenLen = FrozenPrefixLen;
}

void Explorer::preloadBaseStats(const SearchStats &Base) {
  assert(Result.Stats.Executions == 0 && "preloadBaseStats must precede run()");
  Result.Stats = Base;
  EstMassSum = Base.EstimateMass;
  EstMassComp = 0;
  Result.Stats.TimedOut = false;
  Result.Stats.ExecutionCapHit = false;
  Result.Stats.SearchExhausted = false;
  Result.Stats.Interrupted = false;
  Result.Stats.Seconds = 0;
}

void Explorer::preloadSeenStates(const std::vector<uint64_t> &States) {
  SeenStates.reserve(SeenStates.size() + States.size());
  for (uint64_t S : States)
    SeenStates.insert(S);
}

void Explorer::preloadBug(const BugReport &B) {
  Result.Bug = B;
  Result.Kind = B.Kind;
}

std::vector<ScheduleChoice> Explorer::currentStackSnapshot() const {
  std::vector<ScheduleChoice> Out;
  Out.reserve(Stack.size());
  for (const ChoiceRec &R : Stack)
    Out.push_back({R.Chosen, R.Num, R.Backtrack, R.SleepMask, R.FlushMask});
  return Out;
}

std::optional<std::vector<ScheduleChoice>> Explorer::nextFrontier() {
  if (!advanceStack())
    return std::nullopt;
  return currentStackSnapshot();
}

void Explorer::setChoiceStream(
    std::function<void(int Chosen, int Num, bool Backtrack,
                       uint64_t SleepMask, uint64_t FlushMask)>
        CB) {
  StreamCb = std::move(CB);
}

std::shared_ptr<CheckpointState> Explorer::makeCheckpointState() const {
  auto CK = std::make_shared<CheckpointState>();
  CK->Stats = Result.Stats;
  CK->Stats.Interrupted = false; // Flags describe a run, not a checkpoint.
  CK->Stats.DistinctStates = SeenStates.size();
  CK->Rng = Rng.state();
  CheckpointUnit U;
  U.Prefix = currentStackSnapshot();
  U.FrozenLen = FrozenLen;
  CK->Frontier.push_back(std::move(U));
  CK->States.assign(SeenStates.begin(), SeenStates.end());
  std::sort(CK->States.begin(), CK->States.end());
  CK->Bug = Result.Bug; // Only set under StopOnFirstBug=false.
  return CK;
}

void Explorer::setExecutionHook(std::function<bool(Explorer &)> H) {
  Hook = std::move(H);
}

size_t Explorer::splitWork(std::vector<std::vector<ScheduleChoice>> &Out,
                           size_t MaxItems) {
  size_t Donated = 0;
  // Base is maintained incrementally as the shared prefix Stack[0..I):
  // one append per record scanned, so a donation batch costs
  // O(stack + donated-prefix bytes) instead of re-walking the whole
  // prefix for every donating record (which made deep-stack donation
  // quadratic).
  std::vector<ScheduleChoice> Base;
  Base.reserve(Stack.size());
  for (size_t J = 0; J < FrozenLen && J < Stack.size(); ++J)
    Base.push_back({Stack[J].Chosen, Stack[J].Num, Stack[J].Backtrack,
                    Stack[J].SleepMask, Stack[J].FlushMask});
  for (size_t I = FrozenLen; I < Stack.size() && Donated < MaxItems; ++I) {
    ChoiceRec &R = Stack[I];
    if (R.Backtrack && !R.Donated && R.Chosen + 1 < R.Num) {
      // Partial donation of a record is not representable (Donated is
      // all-or-nothing), so give away the record's whole remainder even
      // if that overshoots MaxItems by a few siblings.
      for (int Alt = R.Chosen + 1; Alt < R.Num; ++Alt) {
        std::vector<ScheduleChoice> Prefix;
        Prefix.reserve(Base.size() + 1);
        Prefix.assign(Base.begin(), Base.end());
        // The sleep and flush masks describe the choice point, not the
        // branch taken, so every donated sibling inherits them verbatim;
        // the worker replaying the prefix recomputes and validates both.
        Prefix.push_back({Alt, R.Num, R.Backtrack, R.SleepMask, R.FlushMask});
        if (Ctr)
          Ctr->add(obs::Counter::DonationBytes,
                   Prefix.size() * sizeof(ScheduleChoice));
        Out.push_back(std::move(Prefix));
        ++Donated;
      }
      R.Donated = true;
    }
    Base.push_back(
        {R.Chosen, R.Num, R.Backtrack, R.SleepMask, R.FlushMask});
  }
  return Donated;
}

std::vector<int> Explorer::consumedPathKey() const {
  std::vector<int> Key;
  size_t N = Cursor < Stack.size() ? Cursor : Stack.size();
  Key.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Key.push_back(Stack[I].Chosen);
  return Key;
}

void Explorer::reportBug(Verdict V, std::string Msg, const Runtime &RT,
                         uint64_t Step) {
  ++Result.Stats.BugsFound;
  if (Ctr) {
    Ctr->add(obs::Counter::BugsFound);
    if (V == Verdict::Deadlock)
      Ctr->add(obs::Counter::Deadlocks);
    else if (V == Verdict::Livelock)
      Ctr->add(obs::Counter::Livelocks);
    else if (V == Verdict::GoodSamaritanViolation)
      Ctr->add(obs::Counter::GoodSamaritanViolations);
    if (Obs->sink()) {
      obs::ObsEvent E;
      E.Kind = obs::EventKind::BugFound;
      E.Thread = RT.failureTid();
      E.Ts = ObsClock;
      E.ArgA = Result.Stats.Executions;
      E.ArgB = Step;
      E.Detail = verdictName(V);
      emitEvent(E);
    }
  }
  if (Result.Bug)
    return; // Keep the first counterexample.
  BugReport B;
  B.Kind = V;
  B.Message = std::move(Msg);
  B.TraceText = CurTrace.render(RT, 120);
  // Stats.Executions counts completed executions, so during the buggy one
  // it equals the 0-based index (and stays correct across resumed or
  // sandboxed run parts, where a base count is preloaded).
  B.AtExecution = Result.Stats.Executions;
  B.AtStep = Step;
  // Serialize the consumed choice prefix so the schedule can be replayed.
  SchedScratch.clear();
  for (size_t I = 0; I < Cursor && I < Stack.size(); ++I)
    SchedScratch.push_back({Stack[I].Chosen, Stack[I].Num,
                            Stack[I].Backtrack, Stack[I].SleepMask,
                            Stack[I].FlushMask});
  B.Schedule = encodeSchedule(SchedScratch);
  Result.Bug = std::move(B);
  Result.Kind = V;
}

void Explorer::harvestRaces(const RaceDetector &D, const Runtime &RT) {
  Result.Stats.RacesChecked += D.checks();
  if (Ctr && D.checks())
    Ctr->add(obs::Counter::RacesChecked, D.checks());
  for (const RaceReport &R : D.races()) {
    if (!RaceKeys.insert(R.Message).second)
      continue; // The same race, surfaced by another interleaving.
    ++Result.Stats.RacesFound;
    if (Ctr)
      Ctr->add(obs::Counter::RacesFound);
    BugReport B;
    B.Kind = Verdict::DataRace;
    B.Message = R.Message;
    B.TraceText = R.Detail + CurTrace.render(RT, 120);
    B.AtExecution = Result.Stats.Executions;
    B.AtStep = CurSteps;
    SchedScratch.clear();
    for (size_t I = 0; I < Cursor && I < Stack.size(); ++I)
      SchedScratch.push_back({Stack[I].Chosen, Stack[I].Num,
                              Stack[I].Backtrack, Stack[I].SleepMask,
                              Stack[I].FlushMask});
    B.Schedule = encodeSchedule(SchedScratch);
    Result.Incidents.push_back(std::move(B));
  }
}

void Explorer::creditEstimateMass() {
  if (!Opts.Estimate)
    return;
  // Knuth weighted-backtrack mass of the completed path: the product of
  // 1/branch-factor over its consumed backtrackable records. Donated
  // records are included -- their untried siblings carry the same
  // per-sibling factor on the workers exploring them, so the global
  // masses still partition the tree and sum to 1.0 at exhaustion.
  // Random-tail records (Backtrack=false) are not tree branches and
  // contribute nothing.
  double P = 1.0;
  for (size_t I = 0, N = std::min(Cursor, Stack.size()); I < N; ++I)
    if (Stack[I].Backtrack)
      P /= double(Stack[I].Num);
  // Neumaier-compensated sum: leaf masses span many orders of magnitude,
  // and the exactness of the exhausted-run estimate depends on the sum
  // landing within an ulp of 1.0.
  double T = EstMassSum + P;
  if (std::abs(EstMassSum) >= std::abs(P))
    EstMassComp += (EstMassSum - T) + P;
  else
    EstMassComp += (P - T) + EstMassSum;
  EstMassSum = T;
  Result.Stats.EstimateMass = EstMassSum + EstMassComp;
  if (Ctr)
    Ctr->addEstimateMass(P);
}

int Explorer::chooseInt(int N) {
  // Data choices in the random tail (or random walks) are random and not
  // backtrack points, matching the treatment of scheduling choices there.
  bool InTail = Opts.DepthBound > 0 && CurSteps >= Opts.DepthBound;
  bool Random = Opts.Kind == SearchKind::RandomWalk || InTail;
  // A fresh (non-replayed) backtrackable data choice is a branch point of
  // the choice tree; Cursor >= ReplayLen means pickIndex will push.
  if (Prof && N >= 2 && !Random && Cursor >= ReplayLen)
    Prof->noteChoose(N, CurSteps);
  return pickIndex(N, /*Backtrack=*/!Random, /*PickRandom=*/Random);
}

Explorer::ExecEnd Explorer::runOneExecution() {
  Cursor = 0;
  ReplayLen = Stack.size();
  CurSteps = 0;
  CurTrace.clear();

  // Hoisted observability state: with no observer, Ctr is null and every
  // hook below is one predictable-false branch.
  const bool TraceT = Obs && Obs->traceTransitions();
  const bool TimeSteps = Ctr && Obs->stepTiming();
  const uint64_t ExecStartClock = ObsClock;
  uint64_t LastEdgeAdds = 0, LastEdgeRemovals = 0;

  // Phase self-timing (Observer::Config::PhaseTiming): two clock reads
  // per execution plus one pair per coverage lookup; the replay bucket
  // closes when the cursor first leaves the recorded prefix. ReplayDone
  // stays true with timing off, so the per-transition check is one
  // always-true bool test.
  const bool PhaseT = Ctr && Obs->phaseTiming();
  std::chrono::steady_clock::time_point PhaseStart, ReplayEndT;
  bool ReplayDone = true;
  uint64_t SnapNs = 0;
  // Snapshot ns accumulated before the replay bucket closed: coverage
  // lookups inside the prefix belong to the snapshot bucket, not replay.
  uint64_t SnapNsReplay = 0;

  // A fresh detector per execution, like every other piece of per-
  // execution state: the stateless search replays establish all clocks
  // from scratch each time.
  std::optional<RaceDetector> RaceD;
  Runtime::Options RTOpts;
  RTOpts.Ctr = Ctr;
  RTOpts.Memory = Opts.Memory;
  if (Opts.Races != RaceCheckMode::Off) {
    RaceD.emplace();
    RTOpts.Race = &*RaceD;
  }
  // The execution's world: recycled from the previous execution when
  // ReuseExecutionState is on (reset() rewinds it to a logically fresh
  // state, keeping thread records and pooled fiber stacks), else built
  // and torn down per execution -- the measured-baseline slow path.
  std::optional<Runtime> LocalRT;
  if (Opts.ReuseExecutionState) {
    if (!OwnPool && !ExternalPool)
      OwnPool = std::make_unique<StackPool>();
    RTOpts.Pool = ExternalPool ? ExternalPool : OwnPool.get();
    if (PersistentRT)
      PersistentRT->reset(RTOpts);
    else
      PersistentRT = std::make_unique<Runtime>(*this, RTOpts);
  } else {
    LocalRT.emplace(*this, RTOpts);
  }
  Runtime &RT = LocalRT ? *LocalRT : *PersistentRT;
  FairScheduler FS(Opts.YieldK);
  LivenessMonitor Monitor(Opts.GoodSamaritanBound);
  Monitor.beginExecution();
  Strategy->beginExecution();
  RT.start(Program.Body);
  if (PhaseT) {
    PhaseStart = std::chrono::steady_clock::now();
    ReplayDone = ReplayLen == 0;
    if (ReplayDone)
      ReplayEndT = PhaseStart;
  }

  Tid Prev = -1;
  int Preemptions = 0;
  bool CutAtDepth = Opts.DepthBound > 0 && !Opts.RandomTail;
  // Sleep-set POR state: threads whose pending operation need not be
  // scheduled here because an equivalent interleaving (same Mazurkiewicz
  // trace) is explored on an already-visited branch.
  ThreadSet Sleep;

  // Runs on every way out of the execution; \p EndDetail is the stable
  // wire name of the end class for the ExecutionEnd trace event.
  // \p HarvestRaces is cleared on the exits that do not count as an
  // execution (divergence, mid-execution interrupt): their attempts are
  // re-run, and harvesting them would double-count checks and break the
  // resumed run's equivalence with an uninterrupted one.
  auto finishStats = [&](const char *EndDetail, bool HarvestRaces = true) {
    if (Explain)
      Explain->EndDetail = EndDetail;
    if (PhaseT) {
      auto Now = std::chrono::steady_clock::now();
      if (!ReplayDone) {
        ReplayEndT = Now; // The whole execution was replay.
        ReplayDone = true;
        SnapNsReplay = SnapNs;
      }
      auto Ns = [](std::chrono::steady_clock::time_point A,
                   std::chrono::steady_clock::time_point B) {
        return uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(B - A)
                .count());
      };
      uint64_t ReplayNs = Ns(PhaseStart, ReplayEndT);
      uint64_t ExecNs = Ns(ReplayEndT, Now);
      uint64_t SnapExec = SnapNs - SnapNsReplay;
      Ctr->addPhaseNs(obs::Phase::Replay,
                      ReplayNs - std::min(ReplayNs, SnapNsReplay));
      Ctr->addPhaseNs(obs::Phase::Execute,
                      ExecNs - std::min(ExecNs, SnapExec));
      if (SnapNs)
        Ctr->addPhaseNs(obs::Phase::Snapshot, SnapNs);
    }
    if (RT.threadCount() > Result.Stats.MaxThreads)
      Result.Stats.MaxThreads = RT.threadCount();
    if (RT.syncOpCount() > Result.Stats.MaxSyncOps)
      Result.Stats.MaxSyncOps = RT.syncOpCount();
    if (CurSteps > Result.Stats.MaxDepth)
      Result.Stats.MaxDepth = CurSteps;
    // Unconditional like FairEdgeAdditions: diverged attempts did enqueue
    // and flush, and the totals describe work done, not executions
    // counted. Both stay zero under --memory=sc.
    Result.Stats.BufferedStores += RT.bufferedStoreCount();
    Result.Stats.StoreFlushes += RT.storeFlushCount();
    Result.Stats.FairEdgeAdditions += FS.edgeAdditions();
    if (Ctr) {
      Ctr->add(obs::Counter::FairEdgeAdds, FS.edgeAdditions());
      Ctr->add(obs::Counter::FairEdgeRemovals, FS.edgeRemovals());
      Ctr->maxGauge(obs::Gauge::MaxDepth, Result.Stats.MaxDepth);
      if (Obs->sink()) {
        obs::ObsEvent E;
        E.Kind = obs::EventKind::ExecutionEnd;
        E.Ts = ExecStartClock;
        E.Dur = CurSteps;
        E.ArgA = CurSteps;
        E.Detail = EndDetail;
        if (Opts.Estimate) {
          // The leaf mass this path contributes to the tree-size
          // estimate, mirrored into the trace so Perfetto can show which
          // subtrees carry the estimator's weight.
          double P = 1.0;
          for (size_t I = 0, N = std::min(Cursor, Stack.size()); I < N; ++I)
            if (Stack[I].Backtrack)
              P /= double(Stack[I].Num);
          E.Mass = P;
        }
        emitEvent(E);
      }
    }
    if (RaceD && HarvestRaces) {
      if (PhaseT) {
        auto T0 = std::chrono::steady_clock::now();
        harvestRaces(*RaceD, RT);
        Ctr->addPhaseNs(
            obs::Phase::RaceCheck,
            uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - T0)
                         .count()));
      } else {
        harvestRaces(*RaceD, RT);
      }
    }
  };

  while (true) {
    ThreadSet ES = RT.enabledSet();
    if (ES.empty()) {
      if (RT.liveSet().empty()) {
        finishStats("terminated");
        return ExecEnd::Terminated;
      }
      finishStats("bug");
      // Theorem 3: under fairness the schedulable set is empty only when
      // ES is, so this is a genuine deadlock, never a false one.
      if (Explain)
        for (Tid B : RT.liveSet()) {
          const PendingOp P = RT.pendingOf(B);
          obs::ExplainBlocked BB;
          BB.Thread = B;
          BB.ThreadName = RT.threadName(B);
          BB.Op = P.Kind;
          if (P.ObjectId >= 0)
            BB.Object = RT.objectName(P.ObjectId);
          Explain->Blocked.push_back(std::move(BB));
        }
      std::string Blocked;
      for (Tid T : RT.liveSet())
        Blocked += " " + RT.threadName(T);
      reportBug(Verdict::Deadlock, "deadlock: blocked threads:" + Blocked,
                RT, CurSteps);
      return ExecEnd::Bug;
    }

    ThreadSet Allowed = Opts.Fair ? FS.allowed(ES) : ES;

    SchedContext C;
    C.Enabled = ES;
    C.Allowed = Allowed;
    C.Prev = Prev;
    C.PrevEnabled = Prev >= 0 && ES.contains(Prev);
    C.PrevAllowed = Prev >= 0 && Allowed.contains(Prev);
    C.PrevAtYield = Prev >= 0 && RT.yieldPending(Prev);
    C.Step = CurSteps;
    C.PreemptionsUsed = Preemptions;

    CandidateSet Cands = Strategy->candidates(C);
    assert(!Cands.Set.empty() && "strategy returned no candidates");
    assert(Cands.Set.isSubsetOf(Allowed) &&
           "strategy candidates must respect the priority order");
    if (Opts.DepthBound > 0 && CurSteps >= Opts.DepthBound) {
      // Past the depth bound: random, non-branching picks (Section 4.2.1).
      Cands.Backtrack = false;
      Cands.PickRandom = true;
    }
    uint64_t SleepMaskHere = 0;
    if (Opts.Por) {
      ThreadSet Sleeping = Cands.Set & Sleep;
      if (!Sleeping.empty()) {
        Result.Stats.PorSleepHits += Sleeping.size();
        if (Ctr)
          Ctr->add(obs::Counter::PorSleepHits, Sleeping.size());
        if (Prof)
          // Attribute the filtered candidates to the op class they would
          // have performed: where the reduction is earning its keep.
          for (Tid S : Sleeping)
            Prof->notePorSleep(unsigned(RT.pendingOf(S).Kind));
        Cands.Set -= Sleeping;
        if (Cands.Set.empty()) {
          if (Opts.Fair) {
            // Fairness-interaction rule (docs/POR.md): under the fair
            // scheduler the sleepers are the only fairness-allowed
            // choices left, and dropping them would discard schedules
            // the fairness guarantee (Theorem 1) depends on -- so they
            // are woken, never dropped. Without fairness the classical
            // prune below is sound: the subtree only permutes moves an
            // already-explored sibling branch covers.
            Cands.Set = Sleeping;
            Sleep -= Sleeping;
            Result.Stats.PorFairWakes += Sleeping.size();
            if (Ctr)
              Ctr->add(obs::Counter::PorFairWakes, Sleeping.size());
          } else {
            // Every schedulable move sleeps: this state's subtree is
            // covered by an equivalent interleaving elsewhere. Not a
            // deadlock. The pruned path's estimator mass is credited
            // here, at the prune site, so the subtree the reduction cuts
            // can never drop out of the weighted-backtrack sum.
            finishStats("por_pruned");
            ++Result.Stats.PorBranchesPruned;
            if (Ctr)
              Ctr->add(obs::Counter::PorBranchesPruned);
            creditEstimateMass();
            return ExecEnd::Pruned;
          }
        }
      }
      SleepMaskHere = Sleep.rawBits();
    }

    // Flush-agent bits of the candidate set (--memory=tso|pso): recorded
    // on the stack and in schedules so replay under a different memory
    // model -- where the same choice indices would name different
    // threads -- diverges instead of silently exploring another
    // interleaving. Always zero under sc, so sc output is unchanged.
    uint64_t FlushMaskHere = 0;
    if (Opts.Memory != MemoryModel::Sc)
      FlushMaskHere = Cands.Set.rawBits() &
                      ~((uint64_t(1) << Runtime::FlushBase) - 1);

    bool Replaying = Cursor < ReplayLen;
    if (!ReplayDone && !Replaying) {
      ReplayEndT = std::chrono::steady_clock::now();
      ReplayDone = true;
      SnapNsReplay = SnapNs;
    }
    int Idx = pickIndex(Cands.Set.size(), Cands.Backtrack, Cands.PickRandom,
                        SleepMaskHere, FlushMaskHere);
    if (ReplayMismatch) {
      // Nondeterminism beyond scheduling/chooseInt. A mismatch can only
      // fire in the replay region, so the stack is exactly as it was at
      // the start of the execution: the driver retries it verbatim up to
      // Opts.DivergenceRetries times before discarding the subtree.
      finishStats("diverged", /*HarvestRaces=*/false);
      return ExecEnd::Diverged;
    }
    Tid T = nthMember(Cands.Set, Idx);

    // Preemption accounting (Section 4): switching away from an enabled
    // previous thread costs one preemption unless the fair scheduler
    // excluded it (PrevAllowed false) or it sits at a voluntary yield.
    if (T != Prev && C.PrevEnabled && C.PrevAllowed && !C.PrevAtYield) {
      ++Preemptions;
      ++Result.Stats.Preemptions;
      if (Ctr)
        Ctr->add(obs::Counter::Preemptions);
    }

    const PendingOp Op = RT.pendingOf(T); // Copy: step() replaces it.
    bool WasYield = Op.isYield();
    CurTrace.record(
        {T, Op.Kind, Op.ObjectId, Op.Aux, RT.annotationOf(T), WasYield});
    // "Others enabled" feeds the good-samaritan monitor, which reasons
    // about *program* threads: a flush agent being enabled (someone's
    // buffer is non-empty) must not turn a spinning thread into a
    // violator. Gated on the memory model -- under sc the high tids are
    // ordinary threads and masking them would be wrong.
    ThreadSet RealES = ES;
    if (Opts.Memory != MemoryModel::Sc)
      RealES = ES & ThreadSet::firstN(Runtime::FlushBase);
    bool OthersEnabled = !(RealES - ThreadSet::singleton(T)).empty();

    if (Prof && !Replaying && Cands.Backtrack && Cands.Set.size() >= 2) {
      // A fresh scheduling branch point: attribute the alternatives it
      // opened to the executed operation's class and object.
      Prof->noteBranch(unsigned(Op.Kind), Cands.Set.size(), CurSteps);
      if (Op.ObjectId >= 0)
        Prof->noteObject(RT.objectName(Op.ObjectId), Cands.Set.size());
    }
    if (Explain) {
      obs::ExplainStep S;
      S.Thread = T;
      S.ThreadName = RT.threadName(T);
      S.Op = Op.Kind;
      if (Op.ObjectId >= 0)
        S.Object = RT.objectName(Op.ObjectId);
      S.Annotation = RT.annotationOf(T);
      S.WasYield = WasYield;
      S.EnabledMask = ES.rawBits();
      S.SleepMask = SleepMaskHere;
      S.Choices = Cands.Set.size();
      S.ChosenIdx = Idx;
      Explain->Steps.push_back(std::move(S));
    }

    if (Opts.Por && Cands.Backtrack) {
      // Siblings tried before this choice (indices < Idx) have fully
      // explored subtrees; their moves sleep below this transition.
      int K = 0;
      for (Tid Sib : Cands.Set) {
        if (K++ >= Idx)
          break;
        // Fairness-interaction rule (docs/POR.md): yield transitions are
        // never put to sleep under the fair scheduler. Yields commute
        // with every operation, so a sleeping yield would sleep forever
        // -- but Algorithm 1's priority bookkeeping depends on *which*
        // thread executes the yield, so commuted branches are not
        // fair-equivalent and may not stand in for each other.
        if (Opts.Fair && RT.yieldPending(Sib))
          continue;
        Sleep.insert(Sib);
      }
    }

    StepStatus St;
    if (TimeSteps) {
      auto T0 = std::chrono::steady_clock::now();
      St = RT.step(T);
      Ctr->addLatencyNs(uint64_t(std::chrono::duration_cast<
                                     std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - T0)
                                     .count()));
    } else {
      St = RT.step(T);
    }
    ++CurSteps;
    ++Result.Stats.Transitions;
    if (Ctr) {
      ++ObsClock;
      Ctr->add(obs::Counter::Transitions);
      Ctr->addOp(unsigned(Op.Kind));
      if (Replaying)
        Ctr->add(obs::Counter::ReplaySteps);
      if (TraceT) {
        obs::ObsEvent E; // Kind defaults to Transition.
        E.Thread = T;
        E.Ts = ObsClock - 1;
        E.Dur = 1;
        E.Op = Op.Kind;
        E.Object = Op.ObjectId;
        E.ArgA = CurSteps - 1;
        emitEvent(E);
      }
    }

    if (ReplayMismatch) {
      // A chooseInt inside this transition mismatched its recording. The
      // whole execution is poisoned -- later choices were misapplied --
      // so divergence outranks anything the transition appeared to do,
      // including failing an assertion or ending the program.
      finishStats("diverged", /*HarvestRaces=*/false);
      return ExecEnd::Diverged;
    }

    if (St == StepStatus::Failed) {
      finishStats("bug");
      reportBug(Verdict::SafetyViolation, RT.failureMessage(), RT, CurSteps);
      return ExecEnd::Bug;
    }

    if (RaceD && Opts.Races == RaceCheckMode::Fatal &&
        !RaceD->races().empty()) {
      // Fatal mode: a race ends the execution like a safety violation
      // (finishStats already harvested it as an incident too).
      finishStats("bug");
      reportBug(Verdict::DataRace, RaceD->races().front().Message, RT,
                CurSteps);
      return ExecEnd::Bug;
    }

    ThreadSet ESAfter = RT.enabledSet();
    if (Opts.Fair)
      FS.onTransition(T, ES, ESAfter, WasYield);

    if (TraceT && Opts.Fair) {
      // Priority-edge churn as instant events at this transition's tick;
      // removal (line 13) happens before addition (line 25).
      uint64_t RemD = FS.edgeRemovals() - LastEdgeRemovals;
      uint64_t AddD = FS.edgeAdditions() - LastEdgeAdds;
      LastEdgeRemovals = FS.edgeRemovals();
      LastEdgeAdds = FS.edgeAdditions();
      if (RemD) {
        obs::ObsEvent E;
        E.Kind = obs::EventKind::FairEdgeRemove;
        E.Thread = T;
        E.Ts = ObsClock - 1;
        E.ArgA = RemD;
        E.ArgB = CurSteps - 1;
        emitEvent(E);
      }
      if (AddD) {
        obs::ObsEvent E;
        E.Kind = obs::EventKind::FairEdgeAdd;
        E.Thread = T;
        E.Ts = ObsClock - 1;
        E.ArgA = AddD;
        E.ArgB = CurSteps - 1;
        emitEvent(E);
      }
    }

    if (Opts.Por) {
      // Wake every sleeper whose pending move conflicts with the executed
      // operation: the orders now differ in observable effect. The
      // dependence oracle (core/Dependence.h) is tid-aware -- a sleeping
      // Join(t) wakes on any transition executed by t, and on nothing
      // else t-related.
      Sleep.erase(T);
      for (Tid S : Sleep)
        if (!RT.liveSet().contains(S) ||
            !independentTransitions(S, RT.pendingOf(S), T, Op))
          Sleep.erase(S);
    }

    // Flush agents are exempt from liveness accounting: they never yield
    // by design, so feeding their transitions to the monitor would trip
    // the eager good-samaritan bound on behalf of a pseudo-thread the
    // workload cannot fix.
    if (!Runtime::isFlushAgent(T))
      Monitor.onTransition(T, WasYield, OthersEnabled);
    if (Opts.DetectDivergence && Monitor.eagerGsViolator() >= 0) {
      Tid V = Monitor.eagerGsViolator();
      finishStats("bug");
      reportBug(Verdict::GoodSamaritanViolation,
                "good samaritan violation: thread " + RT.threadName(V) +
                    " ran " + std::to_string(Opts.GoodSamaritanBound) +
                    " transitions without yielding while other threads "
                    "were enabled",
                RT, CurSteps);
      return ExecEnd::Bug;
    }

    if (Opts.TrackCoverage || Opts.StatefulPruning) {
      std::chrono::steady_clock::time_point SnapT0;
      if (PhaseT)
        SnapT0 = std::chrono::steady_clock::now();
      uint64_t Sig = RT.stateSignature();
      if (SeenStates.insert(Sig)) {
        if (LogStates)
          StateLog.push_back(Sig);
      } else {
        ++Result.Stats.StateHits;
      }
      if (PhaseT)
        SnapNs += uint64_t(std::chrono::duration_cast<
                               std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - SnapT0)
                               .count());
      // Pruning decisions are made only beyond the replayed prefix; the
      // prefix's states were inserted by the earlier execution that
      // explored it.
      if (Opts.StatefulPruning && Cursor >= ReplayLen) {
        // The visited key must be finite for the reference search to
        // terminate on cyclic state spaces: include the preemption budget
        // only when a context bound caps it. Under a context bound the
        // continuation also depends on which thread just ran (switching
        // away from it is what costs), so the key includes it too --
        // otherwise the reference search prunes paths whose futures
        // differ and undercounts the total.
        uint64_t Key = Sig;
        if (Opts.Kind == SearchKind::ContextBounded) {
          Key ^= hashU64(0x5157ULL + uint64_t(Preemptions));
          Tid NewPrev = St == StepStatus::Finished ? -1 : T;
          Key ^= hashU64(0xc0117e87ULL * uint64_t(NewPrev + 2));
        }
        if (!PruneKeys.insert(Key)) {
          finishStats("pruned");
          ++Result.Stats.PrunedExecutions;
          if (Ctr)
            Ctr->add(obs::Counter::StatefulPrunes);
          creditEstimateMass(); // At the prune site; see the POR prune.
          return ExecEnd::Pruned;
        }
      }
    }

    if (CutAtDepth && CurSteps >= Opts.DepthBound) {
      finishStats("abandoned");
      ++Result.Stats.NonterminatingExecutions;
      if (Ctr)
        Ctr->add(obs::Counter::NonterminatingExecutions);
      return ExecEnd::Abandoned;
    }

    uint64_t Cap = Opts.ExecutionBound;
    if (Opts.DepthBound > 0 && Opts.RandomTail)
      Cap = Opts.DepthBound + Opts.RandomTailCap;
    if (Cap > 0 && CurSteps >= Cap) {
      if (Opts.DetectDivergence) {
        finishStats("bug");
        auto Div = LivenessMonitor::classifyDivergence(CurTrace, Cap / 2);
        if (Obs && Obs->sink()) {
          obs::ObsEvent E;
          E.Kind = obs::EventKind::Divergence;
          E.Ts = ObsClock;
          E.ArgA = Result.Stats.Executions;
          E.ArgB = CurSteps;
          E.Detail = Div.IsGoodSamaritan ? "good_samaritan" : "livelock";
          emitEvent(E);
        }
        reportBug(Div.IsGoodSamaritan ? Verdict::GoodSamaritanViolation
                                      : Verdict::Livelock,
                  Div.Summary, RT, CurSteps);
        return ExecEnd::Bug;
      }
      finishStats("abandoned");
      ++Result.Stats.NonterminatingExecutions;
      if (Ctr)
        Ctr->add(obs::Counter::NonterminatingExecutions);
      return ExecEnd::Abandoned;
    }

    if ((CurSteps & 0xfff) == 0) {
      if (Opts.InterruptFlag &&
          Opts.InterruptFlag->load(std::memory_order_relaxed)) {
        finishStats("abandoned", /*HarvestRaces=*/false);
        return ExecEnd::Interrupted;
      }
      if (timeExceeded()) {
        finishStats("abandoned");
        Result.Stats.TimedOut = true;
        return ExecEnd::Abandoned;
      }
    }

    Prev = (St == StepStatus::Finished) ? -1 : T;
  }
}

CheckResult Explorer::run() {
  StartTime = std::chrono::steady_clock::now();
  int RetriesLeft = Opts.DivergenceRetries;
  for (CurExecution = 0;; ++CurExecution) {
    ExecEnd End = runOneExecution();

    if (End == ExecEnd::Interrupted) {
      // Mid-execution interrupt: the attempt does not count. Drop its
      // fresh pushes so the resume frontier re-runs it from the top.
      Stack.resize(ReplayLen);
      Result.Stats.Interrupted = true;
      Result.Resume = makeCheckpointState();
      break;
    }

    if (End == ExecEnd::Diverged) {
      // Replay mismatch: not an execution. Retry the identical prefix
      // (transient nondeterminism often clears); after the retry budget,
      // charge one divergence and discard the subtree at the mismatch.
      ReplayMismatch = false;
      if (RetriesLeft > 0) {
        --RetriesLeft;
        ++Result.Stats.DivergenceRetries;
        if (Ctr)
          Ctr->add(obs::Counter::DivergenceRetries);
        continue;
      }
      RetriesLeft = Opts.DivergenceRetries;
      ++Result.Stats.Divergences;
      if (Ctr)
        Ctr->add(obs::Counter::Divergences);
      if (MismatchIdx < Stack.size())
        Stack.resize(MismatchIdx);
      if (timeExceeded()) {
        Result.Stats.TimedOut = true;
        break;
      }
      if (Stack.size() <= FrozenLen || !advanceStack()) {
        Result.Stats.SearchExhausted = true;
        break;
      }
      continue;
    }

    ++Result.Stats.Executions;
    RetriesLeft = Opts.DivergenceRetries;
    if (Ctr)
      Ctr->add(obs::Counter::Executions);
    // Pruned executions (POR and stateful) credited their estimator mass
    // at the prune site, where the cursor still framed the pruned node;
    // every other completed execution credits here. Nothing changes the
    // stack or cursor between a prune return and this point, so the
    // split is value-identical to crediting everything here -- it just
    // makes "pruned subtrees keep their mass" hold by construction.
    if (End != ExecEnd::Pruned)
      creditEstimateMass();

    // The hook runs on every execution (it is also how the parallel
    // driver counts executions against the shared budget); its stop
    // request is honored after the local stop conditions so a bug or
    // local budget still reports with the usual flags.
    bool HookStop = Hook && !Hook(*this);
    if (End == ExecEnd::Bug && Opts.StopOnFirstBug)
      break;
    if (Result.Stats.TimedOut)
      break;
    if (Opts.MaxExecutions && Result.Stats.Executions >= Opts.MaxExecutions) {
      Result.Stats.ExecutionCapHit = true;
      break;
    }
    if (timeExceeded()) {
      Result.Stats.TimedOut = true;
      break;
    }
    if (HookStop)
      break;
    if (Opts.InterruptFlag &&
        Opts.InterruptFlag->load(std::memory_order_relaxed)) {
      // Clean boundary: advance past the finished execution first so the
      // resume frontier holds exactly the unexplored remainder.
      if (advanceStack()) {
        Result.Stats.Interrupted = true;
        Result.Resume = makeCheckpointState();
      } else {
        Result.Stats.SearchExhausted = true;
      }
      break;
    }
    if (!advanceStack()) {
      Result.Stats.SearchExhausted = true;
      break;
    }
    if (Opts.CheckpointEvery && Opts.CheckpointSink &&
        Result.Stats.Executions % Opts.CheckpointEvery == 0) {
      ++Result.Stats.Checkpoints;
      if (Ctr)
        Ctr->add(obs::Counter::Checkpoints);
      Opts.CheckpointSink(*makeCheckpointState());
    }
  }
  if (Result.Kind == Verdict::Pass && Result.Stats.Divergences > 0 &&
      Result.Stats.Executions == 0)
    // Nothing ever replayed: the whole request (typically a single
    // --replay) diverged. Not a workload bug -- foundBug() is false.
    Result.Kind = Verdict::Divergence;
  Result.Stats.DistinctStates = SeenStates.size();
  if (Opts.ExportStateSignatures) {
    Result.StateSignatures.assign(SeenStates.begin(), SeenStates.end());
    std::sort(Result.StateSignatures.begin(), Result.StateSignatures.end());
  }
  auto Elapsed = std::chrono::steady_clock::now() - StartTime;
  Result.Stats.Seconds = std::chrono::duration<double>(Elapsed).count();
  return Result;
}
