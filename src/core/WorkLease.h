//===- core/WorkLease.h - Leased work units for the fleet ------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet coordinator's bookkeeping for work units (frozen schedule
/// prefixes) held under leases. Pure data structure -- no processes, no
/// pipes, no clocks of its own (callers pass monotonic seconds in) -- so
/// the recovery policy is unit-testable without forking anything
/// (tests/core/WorkLeaseTest.cpp).
///
/// Lifecycle of a unit (docs/FLEET.md):
///
///   Queued ----lease----> Leased ----commit----> Committed
///     ^                      |
///     +---release (drain)----+        (no attempt penalty)
///     ^                      |
///     +---fail (death)-------+        Attempts+1, exponential backoff;
///                            |        after QuarantineAfter consecutive
///                            +------> Quarantined (fatal attempts)
///
/// The exactness invariant the fleet relies on: committed units plus
/// pending (queued + leased) units always partition the remaining search
/// exactly -- a failed or released lease loses no work and duplicates
/// none, because nothing from the failed attempt was committed.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_WORKLEASE_H
#define FSMC_CORE_WORKLEASE_H

#include "core/Schedule.h"

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace fsmc {

/// One unit of fleet work: explore the subtree under a schedule prefix
/// whose first FrozenLen choices are frozen (not backtracked into).
struct WorkUnit {
  uint64_t Id = 0;
  std::vector<ScheduleChoice> Prefix;
  size_t FrozenLen = 0;
};

/// Lease states, exposed for tests and the coordinator's accounting.
enum class LeaseState : uint8_t {
  Queued,      ///< Waiting for a worker (possibly under backoff).
  Leased,      ///< Issued to a worker, deadline running.
  Committed,   ///< Result merged; unit retired.
  Quarantined, ///< Killed QuarantineAfter workers; retired as an incident.
};

class LeaseTable {
public:
  struct Config {
    /// Consecutive fatal attempts before a unit is quarantined.
    int QuarantineAfter = 3;
    /// Backoff before re-issuing a failed unit: Base * 2^(attempts-1),
    /// capped at Cap. Keeps a poison unit from monopolizing respawns.
    double BackoffBaseSeconds = 0.05;
    double BackoffCapSeconds = 2.0;
  };

  LeaseTable() = default;
  explicit LeaseTable(const Config &C) : Cfg(C) {}

  /// Adds a queued unit; returns its id.
  uint64_t add(std::vector<ScheduleChoice> Prefix, size_t FrozenLen);

  /// Leases the oldest queued unit whose backoff has elapsed at \p Now,
  /// marking it held by \p Owner until \p Deadline. Null when nothing is
  /// issuable right now (backoff pending or queue empty).
  const WorkUnit *lease(int Owner, double Now, double Deadline);

  /// The leased unit's result was merged; retires it.
  void commit(uint64_t Id);

  /// The holder died mid-attempt. Requeues with backoff, or quarantines
  /// after QuarantineAfter consecutive fatal attempts.
  enum class FailOutcome { Requeued, Quarantined };
  FailOutcome fail(uint64_t Id, double Now);

  /// Drain path: the holder was stopped before committing (e.g. a
  /// straggler killed at checkpoint time). Requeues with no attempt
  /// penalty and no backoff -- the unit did nothing wrong.
  void release(uint64_t Id);

  /// Forced quarantine (e.g. a crash-suspect unit left over when every
  /// worker is gone). Counts as quarantined regardless of attempts.
  void quarantine(uint64_t Id);

  /// Heartbeat: pushes the leased unit's deadline out to \p Deadline.
  void renew(uint64_t Id, double Deadline);

  /// Ids of leased units whose deadline has passed at \p Now.
  std::vector<uint64_t> expiredLeases(double Now) const;

  /// Earliest NotBefore among queued units, or \p Fallback when none is
  /// under backoff -- the coordinator's poll-timeout hint.
  double nextReadyAt(double Fallback) const;

  size_t queuedCount() const { return Queue.size(); }
  size_t leasedCount() const { return NumLeased; }
  /// Units still owed to the search (queued + leased). Zero = done.
  size_t pendingCount() const { return Queue.size() + NumLeased; }
  size_t quarantinedCount() const { return NumQuarantined; }

  const WorkUnit &unit(uint64_t Id) const { return entry(Id).U; }
  LeaseState state(uint64_t Id) const { return entry(Id).St; }
  int attempts(uint64_t Id) const { return entry(Id).Attempts; }
  int owner(uint64_t Id) const { return entry(Id).Owner; }

  /// Id of the unit leased by \p Owner, or 0 (ids start at 1).
  uint64_t leasedBy(int Owner) const;

  /// Every non-retired unit (queued + leased), for checkpoint drains.
  std::vector<const WorkUnit *> pendingUnits() const;

private:
  struct Entry {
    WorkUnit U;
    LeaseState St = LeaseState::Queued;
    int Attempts = 0; ///< Fatal attempts so far (all consecutive).
    double NotBefore = 0;
    double Deadline = 0;
    int Owner = -1;
  };

  Entry &entry(uint64_t Id) { return Entries.at(Id); }
  const Entry &entry(uint64_t Id) const { return Entries.at(Id); }

  Config Cfg;
  uint64_t NextId = 1;
  std::unordered_map<uint64_t, Entry> Entries;
  std::deque<uint64_t> Queue; ///< Queued ids, oldest first.
  size_t NumLeased = 0;
  size_t NumQuarantined = 0;
};

} // namespace fsmc

#endif // FSMC_CORE_WORKLEASE_H
