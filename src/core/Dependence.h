//===- core/Dependence.h - Dependence oracle for POR -----------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependence oracle behind sleep-set partial-order reduction
/// (CheckerOptions::Por, docs/POR.md): classifies pairs of visible
/// operations as independent (commuting -- the two execution orders reach
/// the same state and neither order changes the other's enabledness) or
/// dependent.
///
/// The classification mirrors the access structure the race detector
/// already models (src/race/RaceDetector.h): per-object read/write
/// summaries for VarLoad/VarStore/VarRmw, and acquire/release edges for
/// the sync primitives. Two operations are independent when their access
/// footprints cannot overlap:
///
///   - pure yields (Yield/Sleep) touch no shared object;
///   - operations on distinct sync objects or variables commute;
///   - two reads of the same variable commute (the race detector's
///     read-read non-conflict), as do two reader acquires of one RwLock;
///   - Join(t) reads only thread t's completion flag, so it depends
///     exactly on transitions *executed by t* (any of which may be t's
///     last) and on thread-lifecycle operations naming t;
///   - ThreadStart and UserOp conservatively depend on everything: their
///     invisible tail may spawn threads, and tid assignment is
///     order-sensitive.
///
/// Soundness caveat (same as the race detector's): a transition is the
/// visible operation plus the invisible thread-local code after it.
/// Programs whose shared state lives entirely in modeled objects satisfy
/// this oracle; raw() back-channel accesses do not, which is why POR is
/// opt-in.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_DEPENDENCE_H
#define FSMC_CORE_DEPENDENCE_H

#include "runtime/PendingOp.h"
#include "runtime/Runtime.h"

namespace fsmc {

/// Footprint class of a visible operation, derived from OpKind the same
/// way the runtime derives the race detector's access kind.
enum class DepClass : uint8_t {
  Pure,       ///< No shared-object footprint (Yield, Sleep).
  ObjectRead, ///< Reads one object, mutates nothing (VarLoad, RwReadLock).
  ObjectRw,   ///< Reads and/or writes one sync object or variable.
  ThreadLife, ///< Join: reads one thread's completion flag (Aux = tid).
  Global,     ///< Unknown footprint (ThreadStart, UserOp): conflicts with
              ///< everything.
};

/// \returns the footprint class of operations of kind \p K.
DepClass depClassOf(OpKind K);

/// Tid-aware independence: can the transitions "thread \p TA performs
/// \p A" and "thread \p TB performs \p B" be commuted without changing
/// the reached state or either transition's enabledness? Pass -1 for an
/// unknown executor tid; the oracle then falls back to the conservative
/// answer for tid-sensitive pairs (Join).
bool independentTransitions(Tid TA, const PendingOp &A, Tid TB,
                            const PendingOp &B);

} // namespace fsmc

#endif // FSMC_CORE_DEPENDENCE_H
