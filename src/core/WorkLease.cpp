//===- core/WorkLease.cpp -------------------------------------------------===//

#include "core/WorkLease.h"

#include <algorithm>
#include <cassert>

using namespace fsmc;

uint64_t LeaseTable::add(std::vector<ScheduleChoice> Prefix,
                         size_t FrozenLen) {
  uint64_t Id = NextId++;
  Entry E;
  E.U.Id = Id;
  E.U.Prefix = std::move(Prefix);
  E.U.FrozenLen = FrozenLen;
  Entries.emplace(Id, std::move(E));
  Queue.push_back(Id);
  return Id;
}

const WorkUnit *LeaseTable::lease(int Owner, double Now, double Deadline) {
  // Oldest-first, but skip units still under backoff: a poison unit must
  // not block the healthy tail of the queue behind its cool-down.
  for (auto It = Queue.begin(); It != Queue.end(); ++It) {
    Entry &E = entry(*It);
    if (E.NotBefore > Now)
      continue;
    E.St = LeaseState::Leased;
    E.Owner = Owner;
    E.Deadline = Deadline;
    ++NumLeased;
    Queue.erase(It);
    return &E.U;
  }
  return nullptr;
}

void LeaseTable::commit(uint64_t Id) {
  Entry &E = entry(Id);
  assert(E.St == LeaseState::Leased && "commit of a unit not leased");
  E.St = LeaseState::Committed;
  E.Owner = -1;
  --NumLeased;
}

LeaseTable::FailOutcome LeaseTable::fail(uint64_t Id, double Now) {
  Entry &E = entry(Id);
  assert(E.St == LeaseState::Leased && "fail of a unit not leased");
  E.Owner = -1;
  --NumLeased;
  ++E.Attempts;
  if (E.Attempts >= Cfg.QuarantineAfter) {
    E.St = LeaseState::Quarantined;
    ++NumQuarantined;
    return FailOutcome::Quarantined;
  }
  double Backoff = Cfg.BackoffBaseSeconds;
  for (int I = 1; I < E.Attempts && Backoff < Cfg.BackoffCapSeconds; ++I)
    Backoff *= 2;
  E.NotBefore = Now + std::min(Backoff, Cfg.BackoffCapSeconds);
  E.St = LeaseState::Queued;
  Queue.push_back(Id);
  return FailOutcome::Requeued;
}

void LeaseTable::release(uint64_t Id) {
  Entry &E = entry(Id);
  assert(E.St == LeaseState::Leased && "release of a unit not leased");
  E.Owner = -1;
  --NumLeased;
  E.St = LeaseState::Queued;
  E.NotBefore = 0;
  // Front of the queue: a drained unit was already being worked on, so it
  // resumes first when issuing restarts.
  Queue.push_front(Id);
}

void LeaseTable::quarantine(uint64_t Id) {
  Entry &E = entry(Id);
  if (E.St == LeaseState::Queued)
    Queue.erase(std::find(Queue.begin(), Queue.end(), Id));
  else if (E.St == LeaseState::Leased)
    --NumLeased;
  else
    return; // Already retired.
  E.Owner = -1;
  E.St = LeaseState::Quarantined;
  ++NumQuarantined;
}

void LeaseTable::renew(uint64_t Id, double Deadline) {
  Entry &E = entry(Id);
  if (E.St == LeaseState::Leased)
    E.Deadline = Deadline;
}

std::vector<uint64_t> LeaseTable::expiredLeases(double Now) const {
  std::vector<uint64_t> Out;
  for (const auto &[Id, E] : Entries)
    if (E.St == LeaseState::Leased && E.Deadline > 0 && E.Deadline <= Now)
      Out.push_back(Id);
  std::sort(Out.begin(), Out.end());
  return Out;
}

double LeaseTable::nextReadyAt(double Fallback) const {
  double Earliest = Fallback;
  for (uint64_t Id : Queue) {
    const Entry &E = entry(Id);
    if (E.NotBefore > 0 && E.NotBefore < Earliest)
      Earliest = E.NotBefore;
  }
  return Earliest;
}

uint64_t LeaseTable::leasedBy(int Owner) const {
  for (const auto &[Id, E] : Entries)
    if (E.St == LeaseState::Leased && E.Owner == Owner)
      return Id;
  return 0;
}

std::vector<const WorkUnit *> LeaseTable::pendingUnits() const {
  std::vector<const WorkUnit *> Out;
  for (const auto &[Id, E] : Entries)
    if (E.St == LeaseState::Queued || E.St == LeaseState::Leased)
      Out.push_back(&E.U);
  std::sort(Out.begin(), Out.end(),
            [](const WorkUnit *A, const WorkUnit *B) { return A->Id < B->Id; });
  return Out;
}
