//===- core/WorkStealDeque.h - Per-worker deque of prefix shards -*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-worker double-ended queue that carries schedule-prefix work
/// items in the parallel search (docs/PERFORMANCE.md). Each worker owns
/// exactly one deque:
///
///   - The *owner* pushes and pops at the bottom (LIFO), which preserves
///     depth-first order within a worker: the item popped next is the
///     deepest, most recently split subtree, exactly what serial DFS
///     would explore next.
///   - *Thieves* steal from the top, taking half the items per grab
///     (steal-half). Because owners publish splitWork output
///     shallowest-first, the top of the deque holds the shallowest
///     prefixes -- the largest unexplored subtrees -- so one steal
///     amortizes many executions.
///
/// The deque is bottom-locked: every operation takes the deque's own
/// mutex. That mutex is *private* -- only its owner and an occasional
/// thief touch it -- so in steady state it is uncontended and the
/// uncontended fast path is a single atomic CAS in pthread_mutex_lock.
/// This is deliberately not a Chase-Lev array: WorkItem is a non-trivial
/// vector type, steals are rare once the search warms up (thief-driven,
/// not donor-polled), and the exactness contract makes a lost or
/// duplicated item catastrophic. What matters for scaling is that no
/// *shared* lock is in the hot loop; a per-worker lock nobody else
/// contends costs nanoseconds.
///
/// size() is a relaxed atomic read so thieves can scan victims without
/// touching any lock at all; they lock only a victim that looks
/// non-empty.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_WORKSTEALDEQUE_H
#define FSMC_CORE_WORKSTEALDEQUE_H

#include "core/WorkQueue.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace fsmc {

class WorkStealDeque {
public:
  /// Owner: push one item at the bottom (explored next, LIFO).
  void pushBottom(WorkItem &&Item);

  /// Owner: pop the bottom item. Returns nullopt when empty.
  std::optional<WorkItem> popBottom();

  /// Owner: splice a batch of freshly split prefixes onto the *top*,
  /// preserving \p Items order (front of Items ends up topmost). Callers
  /// pass splitWork output shallowest-first so thieves always grab the
  /// largest subtrees.
  void publishTop(std::vector<WorkItem> &&Items);

  /// Thief: steal ceil(size/2) items from the top into \p Out (appended
  /// in top-to-bottom order, so Out.front() is the shallowest). Returns
  /// the number stolen, 0 if the deque was empty. Only the victim's lock
  /// is held; the thief deposits into its own deque afterwards, so no
  /// two deque locks are ever nested.
  size_t stealTop(std::vector<WorkItem> &Out);

  /// Owner (epoch wind-down): move every item into \p Out, bottom and
  /// top alike. Order is top-to-bottom.
  size_t drainAll(std::vector<WorkItem> &Out);

  /// Lock-free size probe; may be stale by the time the caller acts.
  size_t size() const { return Sz.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

private:
  mutable std::mutex M;
  std::deque<WorkItem> Q;
  /// Mirrors Q.size(); written under M, read without it.
  std::atomic<size_t> Sz{0};
};

} // namespace fsmc

#endif // FSMC_CORE_WORKSTEALDEQUE_H
