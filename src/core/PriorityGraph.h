//===- core/PriorityGraph.h - The priority relation P ----------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The priority relation P of Algorithm 1.
///
/// P ⊆ Tid × Tid is a partial priority order over threads: if (t, u) ∈ P
/// then t may be scheduled in a state s only when u is disabled in s. The
/// algorithm maintains P acyclic (Theorem 3's loop invariant), which
/// guarantees the scheduler never reports a false deadlock: the set of
/// schedulable threads T = ES \ pre(P, ES) is empty iff ES is empty.
///
/// Representation: one successor bitset per source thread, so `pre` and the
/// bulk edge updates of lines 13 and 25 are word operations.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_PRIORITYGRAPH_H
#define FSMC_CORE_PRIORITYGRAPH_H

#include "support/ThreadSet.h"

#include <array>

namespace fsmc {

/// The priority relation P of Algorithm 1, with the queries the fair
/// scheduler needs on every transition.
class PriorityGraph {
public:
  PriorityGraph() = default;

  /// \returns true if (From, To) ∈ P, i.e. From is deprioritized below To.
  bool hasEdge(Tid From, Tid To) const {
    assert(validTid(From) && validTid(To) && "tid out of range");
    return Succ[From].contains(To);
  }

  /// pre(P, X) = { t | ∃u ∈ X : (t, u) ∈ P } — the threads that lose to
  /// some member of \p X. Used on line 7: T = ES \ pre(P, ES).
  ThreadSet pre(ThreadSet X) const;

  /// Removes all edges with sink \p T (line 13: P := P \ (Tid × {t})),
  /// raising T's relative priority after it is scheduled.
  /// \returns the number of edges removed.
  int removeEdgesInto(Tid T);

  /// Adds the edges {From} × \p Sinks (line 25), lowering From's priority
  /// below every thread it starved during the window just closed.
  void addEdgesFrom(Tid From, ThreadSet Sinks);

  /// \returns true iff the relation, viewed as a digraph, is acyclic.
  /// Theorem 3 proves Algorithm 1 preserves this; exposed for tests and
  /// debug assertions.
  bool isAcyclic() const;

  bool empty() const;
  /// Number of edges in the relation.
  int edgeCount() const;
  void clear();

  /// Successors (sinks) of \p From.
  ThreadSet successorsOf(Tid From) const {
    assert(validTid(From) && "tid out of range");
    return Succ[From];
  }

  bool operator==(const PriorityGraph &O) const = default;

private:
  static bool validTid(Tid T) { return T >= 0 && T < MaxThreads; }

  std::array<ThreadSet, MaxThreads> Succ = {};
};

} // namespace fsmc

#endif // FSMC_CORE_PRIORITYGRAPH_H
