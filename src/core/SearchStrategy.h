//===- core/SearchStrategy.h - Choice enumeration policies -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Search strategies decide which of the fairness-allowed threads the
/// explorer considers at a scheduling point, and whether the point is a
/// backtrackable branch of the depth-first search.
///
/// Algorithm 1 exposes its nondeterminism through the single Choose(T) on
/// line 11; "it is easy to augment this description with either a stack to
/// perform depth-first search ..." (Section 3). The strategies here are the
/// four used in the paper's evaluation: plain DFS, context-bounded search
/// [22], depth-bounded search with a random tail (the no-fairness
/// baseline), and pure random walk [17].
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_SEARCHSTRATEGY_H
#define FSMC_CORE_SEARCHSTRATEGY_H

#include "core/Checker.h"
#include "support/ThreadSet.h"

#include <cstdint>
#include <memory>

namespace fsmc {

/// Everything a strategy may consult at one scheduling point.
struct SchedContext {
  ThreadSet Enabled;   ///< ES of the current state.
  ThreadSet Allowed;   ///< T = ES \ pre(P, ES) (== ES when fairness off).
  Tid Prev = -1;       ///< Thread that executed the previous transition,
                       ///< or -1 at the start / after a thread exit.
  bool PrevEnabled = false;   ///< Prev is enabled now.
  bool PrevAllowed = false;   ///< Prev is in Allowed now.
  bool PrevAtYield = false;   ///< Prev's pending op is a yield: switching
                              ///< away from it is voluntary, not a
                              ///< preemption.
  uint64_t Step = 0;          ///< Transitions executed so far.
  int PreemptionsUsed = 0;
};

/// The candidate threads at a scheduling point.
struct CandidateSet {
  ThreadSet Set;
  /// False: the point is not a DFS branch (e.g. random-tail picks).
  bool Backtrack = true;
  /// True: pick uniformly at random instead of first-untried.
  bool PickRandom = false;
};

/// Policy interface. Implementations must be deterministic functions of
/// the SchedContext so that replayed executions see identical choices.
class SearchStrategy {
public:
  virtual ~SearchStrategy();

  /// Called by the explorer at the start of every execution.
  virtual void beginExecution() {}

  /// The threads to consider scheduling in this state. Must return a
  /// nonempty subset of \p C.Allowed.
  virtual CandidateSet candidates(const SchedContext &C) = 0;

  virtual const char *name() const = 0;

  /// Builds the strategy selected by \p Opts.
  static std::unique_ptr<SearchStrategy> create(const CheckerOptions &Opts);
};

/// Exhaustive DFS over every allowed choice.
class DfsStrategy final : public SearchStrategy {
public:
  CandidateSet candidates(const SchedContext &C) override;
  const char *name() const override { return "dfs"; }
};

/// Context-bounded search: only executions with at most \p Bound
/// preemptions. Per Section 4, a switch away from an enabled previous
/// thread costs one preemption *unless* the fair scheduler excluded that
/// thread (PrevAllowed == false) or the thread is at a yield.
class ContextBoundedStrategy final : public SearchStrategy {
public:
  explicit ContextBoundedStrategy(int Bound) : Bound(Bound) {}
  CandidateSet candidates(const SchedContext &C) override;
  const char *name() const override { return "cb"; }

private:
  int Bound;
};

/// Uniformly random executions, never backtracking.
class RandomWalkStrategy final : public SearchStrategy {
public:
  CandidateSet candidates(const SchedContext &C) override;
  const char *name() const override { return "random"; }
};

} // namespace fsmc

#endif // FSMC_CORE_SEARCHSTRATEGY_H
