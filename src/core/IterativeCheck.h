//===- core/IterativeCheck.h - Iterative context bounding ------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative context bounding [Musuvathi & Qadeer, PLDI 2007], "the
/// context-bounded search strategy implemented in CHESS" that Section 4
/// integrates with the fair scheduler: run the search with preemption
/// bound 0, then 1, then 2, ..., so the simplest counterexamples surface
/// first and every run inherits fairness's termination guarantee.
///
/// The fairness integration subtlety from Section 4 -- fairness-induced
/// preemptions must not count against the bound -- lives in the
/// explorer's preemption accounting, so this driver is a thin loop over
/// `check`.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_ITERATIVECHECK_H
#define FSMC_CORE_ITERATIVECHECK_H

#include "core/Checker.h"

#include <vector>

namespace fsmc {

/// Result of one bound's search within an iterative run.
struct IterationResult {
  int Bound = 0;
  CheckResult Result;
};

/// Result of a whole iterative context-bounded run.
struct IterativeCheckResult {
  /// Per-bound outcomes, in increasing bound order; ends at the bound
  /// that found a bug, exhausted the budget, or MaxBound.
  std::vector<IterationResult> PerBound;
  /// The overall verdict: the first bug found, else the last bound's
  /// result.
  CheckResult Final;
  /// Bound at which the bug was found, or -1.
  int BugBound = -1;

  bool foundBug() const { return BugBound >= 0; }
};

/// Runs `check` with context bounds 0..MaxBound, stopping early at the
/// first bug or when the shared time budget (Base.TimeBudgetSeconds,
/// interpreted as the *total* across bounds when positive) runs out.
/// Base.Kind and Base.ContextBound are overridden per iteration.
IterativeCheckResult iterativeCheck(const TestProgram &Program,
                                    const CheckerOptions &Base,
                                    int MaxBound);

} // namespace fsmc

#endif // FSMC_CORE_ITERATIVECHECK_H
