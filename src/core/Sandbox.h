//===- core/Sandbox.h - Process-isolated execution batches -----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash isolation for misbehaving workloads. CHESS ran unattended for
/// weeks against large test harnesses (Section 6); at that scale the
/// checker must outlive the checked code. Under --isolate=batch the
/// parent process never runs a single workload instruction: it forks a
/// child per batch of executions, the child streams progress records over
/// a pipe, and the parent harvests a SIGSEGV/std::abort as Verdict::Crash
/// and a silent child (watchdog timeout) as Verdict::Hang -- each with
/// the offending schedule serialized for --replay -- then continues the
/// search from the rest of the frontier. One bad execution costs one
/// execution, not the run.
///
/// Protocol, crash attribution (the probe re-run), and the batch chaining
/// invariants are documented in docs/ROBUSTNESS.md.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_CORE_SANDBOX_H
#define FSMC_CORE_SANDBOX_H

#include "core/Checker.h"
#include "core/Schedule.h"

#include <vector>

namespace fsmc {

/// Carried-over state when a sandboxed search continues an earlier run
/// part (checkpoint resume); see core/Checkpoint.h.
struct SandboxResumeContext {
  const SearchStats *BaseStats = nullptr;
  const std::vector<uint64_t> *BaseStates = nullptr;
  const BugReport *BaseBug = nullptr;
  /// In: PRNG state to start from (0 = derive from Opts.Seed).
  /// Out: final PRNG state after the last batch, for unit chaining.
  uint64_t Rng = 0;
};

/// Runs the (serial) search with every execution inside forked child
/// processes. \p InitialPrefix seeds the DFS stack (replay / resume);
/// its first \p FrozenLen records confine the search to a subtree.
/// Returns the aggregated result; crashes and hangs are collected in
/// CheckResult::Incidents, with the first one standing in as the Bug
/// when no genuine workload bug was found.
CheckResult runSandboxed(const TestProgram &Program,
                         const CheckerOptions &Opts,
                         const std::vector<ScheduleChoice> *InitialPrefix = nullptr,
                         size_t FrozenLen = 0,
                         SandboxResumeContext *Resume = nullptr);

} // namespace fsmc

#endif // FSMC_CORE_SANDBOX_H
