//===- core/SearchStrategy.cpp --------------------------------------------===//

#include "core/SearchStrategy.h"

using namespace fsmc;

SearchStrategy::~SearchStrategy() = default;

std::unique_ptr<SearchStrategy>
SearchStrategy::create(const CheckerOptions &Opts) {
  switch (Opts.Kind) {
  case SearchKind::Dfs:
    return std::make_unique<DfsStrategy>();
  case SearchKind::ContextBounded:
    return std::make_unique<ContextBoundedStrategy>(Opts.ContextBound);
  case SearchKind::RandomWalk:
    return std::make_unique<RandomWalkStrategy>();
  }
  assert(false && "unknown SearchKind");
  return nullptr;
}

CandidateSet DfsStrategy::candidates(const SchedContext &C) {
  return {C.Allowed, /*Backtrack=*/true, /*PickRandom=*/false};
}

CandidateSet ContextBoundedStrategy::candidates(const SchedContext &C) {
  assert(!C.Allowed.empty() && "no schedulable thread");
  // A preemption would be charged only for switching away from an enabled,
  // non-yielding, fairness-allowed previous thread. Once the budget is
  // spent, such a thread must keep running; every other switch is free.
  bool SwitchCosts = C.Prev >= 0 && C.PrevEnabled && C.PrevAllowed &&
                     !C.PrevAtYield;
  if (SwitchCosts && C.PreemptionsUsed >= Bound)
    return {ThreadSet::singleton(C.Prev), /*Backtrack=*/true,
            /*PickRandom=*/false};
  return {C.Allowed, /*Backtrack=*/true, /*PickRandom=*/false};
}

CandidateSet RandomWalkStrategy::candidates(const SchedContext &C) {
  return {C.Allowed, /*Backtrack=*/false, /*PickRandom=*/true};
}
