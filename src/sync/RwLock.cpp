//===- sync/RwLock.cpp ----------------------------------------------------===//

#include "sync/RwLock.h"

using namespace fsmc;

RwLock::RwLock(std::string Name)
    : Id(Runtime::current().newObjectId(std::move(Name))) {}

void RwLock::lockShared() {
  Runtime &RT = Runtime::current();
  if (Writer >= 0)
    RT.noteContended(OpKind::RwReadLock);
  RT.schedulePoint(
      makeGuardedOp(OpKind::RwReadLock, Id, &RwLock::noWriter, this));
  assert(Writer < 0 && "reader admitted while writer holds the lock");
  RT.raceAcquire(Id);
  ++Readers;
}

void RwLock::lockExclusive() {
  Runtime &RT = Runtime::current();
  if (Writer >= 0 || Readers > 0)
    RT.noteContended(OpKind::RwWriteLock);
  RT.schedulePoint(
      makeGuardedOp(OpKind::RwWriteLock, Id, &RwLock::isFree, this));
  assert(Writer < 0 && Readers == 0 && "writer admitted while lock busy");
  RT.raceAcquire(Id);
  Writer = RT.self();
}

void RwLock::unlockShared() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::RwUnlock, Id));
  checkThat(Readers > 0, "unlockShared with no readers");
  RT.raceRelease(Id);
  --Readers;
}

void RwLock::unlockExclusive() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::RwUnlock, Id, /*Aux=*/1));
  checkThat(Writer == RT.self(), "unlockExclusive by a non-writer");
  RT.raceRelease(Id);
  Writer = -1;
}
