//===- sync/Barrier.h - Modeled cyclic barrier -----------------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cyclic barrier for a fixed participant count. Arrival is one visible
/// transition; non-final arrivals then block (disabled) until the final
/// participant opens the next generation.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SYNC_BARRIER_H
#define FSMC_SYNC_BARRIER_H

#include "runtime/Runtime.h"

#include <cstdint>
#include <string>

namespace fsmc {

/// A reusable (cyclic) barrier. Construct inside a test execution only.
class Barrier {
public:
  explicit Barrier(int Participants, std::string Name = "barrier");

  /// Arrives at the barrier and waits for the rest of the cohort.
  /// \returns true for exactly one participant per generation (the one
  /// whose arrival released it), mirroring pthread_barrier's
  /// SERIAL_THREAD convention.
  bool arriveAndWait();

  int arrived() const { return Arrived; }
  uint64_t generation() const { return Generation; }
  int objectId() const { return Id; }

private:
  struct WaitCtx {
    const Barrier *B;
    uint64_t Gen;
  };
  static bool generationAdvanced(const void *Ctx) {
    const auto *W = static_cast<const WaitCtx *>(Ctx);
    return W->B->Generation != W->Gen;
  }

  int Id;
  int Participants;
  int Arrived = 0;
  uint64_t Generation = 0;
};

} // namespace fsmc

#endif // FSMC_SYNC_BARRIER_H
