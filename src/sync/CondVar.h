//===- sync/CondVar.h - Modeled condition variable -------------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A condition variable over a \ref Mutex.
///
/// `wait` atomically releases the mutex and registers as a waiter (one
/// transition), blocks until a notification is available, consumes it, and
/// reacquires the mutex (a further blocking transition). When several
/// waiters compete for one notifyOne, all become enabled and the demonic
/// scheduler picks the winner -- exactly the nondeterminism a checker must
/// explore.
///
/// `waitTimed` models a wait with a finite timeout: it is *always enabled*
/// (the timeout can always fire) and is a *yielding* operation, following
/// Section 4's rule that "every synchronization operation with a finite
/// timeout" counts as a yield. Spin loops built on timed waits are exactly
/// the good-samaritan-conforming idiom the fair scheduler expects.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SYNC_CONDVAR_H
#define FSMC_SYNC_CONDVAR_H

#include "sync/Mutex.h"

#include <string>

namespace fsmc {

/// A condition variable. Construct inside a test execution only.
class CondVar {
public:
  explicit CondVar(std::string Name = "cond");

  /// Releases \p M, waits for a notification, reacquires \p M. The caller
  /// must hold \p M. Subject to spurious batching by notifyAll, so use the
  /// standard while-loop idiom around the predicate.
  void wait(Mutex &M);

  /// Timed wait: releases \p M, yields, wakes either by notification or
  /// timeout, reacquires \p M. \returns true if a notification was
  /// consumed, false on (modeled) timeout.
  bool waitTimed(Mutex &M);

  /// Wakes one blocked waiter (no-op when none are blocked).
  void notifyOne();
  /// Wakes all currently blocked waiters.
  void notifyAll();

  int waiters() const { return Waiters; }
  int objectId() const { return Id; }

private:
  static bool hasPermit(const void *Ctx) {
    return static_cast<const CondVar *>(Ctx)->Permits > 0;
  }

  int Id;
  int Waiters = 0; ///< Threads registered and not yet woken.
  int Permits = 0; ///< Outstanding wakeups (≤ Waiters).
};

} // namespace fsmc

#endif // FSMC_SYNC_CONDVAR_H
