//===- sync/RwLock.h - Modeled reader-writer lock --------------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reader-writer lock: any number of concurrent readers or one writer.
/// Writer-preference is deliberately *not* built in -- the demonic
/// scheduler explores both admission orders, and writer starvation under
/// an unfair schedule is exactly what the fair scheduler prunes.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SYNC_RWLOCK_H
#define FSMC_SYNC_RWLOCK_H

#include "runtime/Runtime.h"

#include <string>

namespace fsmc {

/// A reader-writer lock. Construct inside a test execution only.
class RwLock {
public:
  explicit RwLock(std::string Name = "rwlock");

  /// Shared acquire: enabled iff no writer holds the lock.
  void lockShared();
  /// Exclusive acquire: enabled iff no reader or writer holds the lock.
  void lockExclusive();
  /// Releases a shared hold.
  void unlockShared();
  /// Releases the exclusive hold.
  void unlockExclusive();

  int readers() const { return Readers; }
  Tid writer() const { return Writer; }
  int objectId() const { return Id; }

private:
  static bool noWriter(const void *Ctx) {
    return static_cast<const RwLock *>(Ctx)->Writer < 0;
  }
  static bool isFree(const void *Ctx) {
    const auto *L = static_cast<const RwLock *>(Ctx);
    return L->Writer < 0 && L->Readers == 0;
  }

  int Id;
  int Readers = 0;
  Tid Writer = -1;
};

} // namespace fsmc

#endif // FSMC_SYNC_RWLOCK_H
