//===- sync/TestThread.cpp ------------------------------------------------===//

#include "sync/TestThread.h"

using namespace fsmc;

TestThread::TestThread(std::function<void()> Body, std::string Name) {
  RT = &Runtime::current();
  Id = RT->spawn(std::move(Body), std::move(Name));
}

TestThread::TestThread(TestThread &&O) noexcept
    : RT(O.RT), Id(O.Id), Joined(O.Joined) {
  O.RT = nullptr;
  O.Id = -1;
  O.Joined = false;
}

TestThread &TestThread::operator=(TestThread &&O) noexcept {
  RT = O.RT;
  Id = O.Id;
  Joined = O.Joined;
  O.RT = nullptr;
  O.Id = -1;
  O.Joined = false;
  return *this;
}

bool TestThread::targetFinished(const void *Ctx) {
  const auto *T = static_cast<const TestThread *>(Ctx);
  return T->RT->isFinished(T->Id);
}

void TestThread::join() {
  checkThat(joinable(), "join of a non-joinable thread");
  Runtime &R = Runtime::current();
  if (!R.isFinished(Id))
    R.noteContended(OpKind::Join);
  R.schedulePoint(makeGuardedOp(OpKind::Join, /*ObjectId=*/-1,
                                &TestThread::targetFinished, this,
                                /*Aux=*/Id));
  R.raceJoin(Id);
  Joined = true;
}

void fsmc::yieldNow() {
  Runtime::current().schedulePoint(makeOp(OpKind::Yield));
}

void fsmc::sleepFor(int Ticks) {
  Runtime::current().schedulePoint(makeOp(OpKind::Sleep, -1, Ticks));
}
