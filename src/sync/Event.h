//===- sync/Event.h - Win32-style event objects ----------------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Auto-reset and manual-reset events in the Win32 style the paper's
/// subject programs (Dryad channels, APE) are built on. `wait` blocks
/// until the event is set; `waitTimed` has a finite timeout and is a
/// yielding operation per Section 4.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SYNC_EVENT_H
#define FSMC_SYNC_EVENT_H

#include "runtime/Runtime.h"

#include <string>

namespace fsmc {

/// A settable event. Auto-reset events release exactly one waiter per
/// set(); manual-reset events stay signaled until reset().
class Event {
public:
  enum class Reset { Auto, Manual };

  explicit Event(Reset Mode = Reset::Auto, bool InitiallySet = false,
                 std::string Name = "event");

  /// Blocks (disabled) until the event is set; consumes it if auto-reset.
  void wait();

  /// Timed wait: always enabled, yielding. \returns true if the event was
  /// set (and consumed, if auto-reset), false on modeled timeout.
  bool waitTimed();

  void set();
  void reset();

  /// Non-visible read for state extractors and invariants.
  bool isSet() const { return SetFlag; }
  int objectId() const { return Id; }

private:
  static bool isSignaled(const void *Ctx) {
    return static_cast<const Event *>(Ctx)->SetFlag;
  }

  int Id;
  Reset Mode;
  bool SetFlag;
};

} // namespace fsmc

#endif // FSMC_SYNC_EVENT_H
