//===- sync/Mutex.cpp -----------------------------------------------------===//

#include "sync/Mutex.h"

using namespace fsmc;

Mutex::Mutex(std::string Name)
    : Id(Runtime::current().newObjectId(std::move(Name))) {}

void Mutex::lock() {
  Runtime &RT = Runtime::current();
  if (Holder >= 0)
    RT.noteContended(OpKind::MutexLock);
  RT.schedulePoint(makeGuardedOp(OpKind::MutexLock, Id, &Mutex::isFree, this));
  assert(Holder < 0 && "scheduled while mutex held");
  RT.raceAcquire(Id);
  Holder = RT.self();
}

bool Mutex::tryLock() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::MutexTryLock, Id));
  if (Holder >= 0)
    return false;
  RT.raceAcquire(Id);
  Holder = RT.self();
  return true;
}

void Mutex::unlock() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::MutexUnlock, Id));
  checkThat(Holder == RT.self(), "unlock of a mutex not held by the caller");
  RT.raceRelease(Id);
  Holder = -1;
}
