//===- sync/Plain.h - Unsynchronized shared variables ----------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain (non-atomic) shared variables: every access is still a visible
/// transition, so the explorer interleaves at it, but unlike `Atomic<T>`
/// the accesses carry *no* synchronization semantics. Two concurrent
/// conflicting PlainVar accesses with no happens-before edge between them
/// are a data race, and the race detector (src/race/RaceDetector.h)
/// reports them as `Verdict::DataRace`.
///
/// This models the `int x` a real program shares without atomics: the
/// checker explores its interleavings faithfully, and the detector flags
/// the missing synchronization that would make the real program UB.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SYNC_PLAIN_H
#define FSMC_SYNC_PLAIN_H

#include "runtime/Runtime.h"

#include <string>
#include <type_traits>

namespace fsmc {

/// A modeled plain shared variable: interleaving at every access, no
/// synchronization, race-checked when detection is on.
template <typename T> class PlainVar {
public:
  explicit PlainVar(T Init = T(), std::string Name = "plain")
      : Id(Runtime::current().newObjectId(std::move(Name))), Value(Init) {}

  /// Visible race-checked load. Under --memory=tso|pso the thread's own
  /// buffered store forwards (newest entry wins); the race check still
  /// runs first, and it additionally flags loads that observe another
  /// thread's still-buffered plain store (RaceDetector::onBufferedHazard).
  T load() {
    Runtime &RT = Runtime::current();
    RT.schedulePoint(makeOp(OpKind::VarLoad, Id));
    RT.raceLoad(Id);
    if constexpr (std::is_integral_v<T> || std::is_enum_v<T>)
      if (RT.memory() != MemoryModel::Sc) {
        int64_t V;
        if (RT.forwardedLoad(Id, V))
          return T(V);
      }
    return Value;
  }

  /// Visible race-checked store. Under --memory=tso|pso (integral/enum T)
  /// the store enqueues into the calling thread's buffer; its race-checked
  /// write access registers at commit time, when it becomes visible.
  void store(T V) {
    Runtime &RT = Runtime::current();
    RT.schedulePoint(makeOp(OpKind::VarStore, Id, auxOf(V)));
    if constexpr (std::is_integral_v<T> || std::is_enum_v<T>)
      if (RT.memory() != MemoryModel::Sc) {
        RT.bufferStore(Id, int64_t(V), &commitThunk, this, /*Plain=*/true);
        return;
      }
    RT.raceStore(Id);
    Value = V;
  }

  /// Non-visible read: no scheduling point, no race check. For state
  /// extractors and quiescent invariant checks.
  T raw() const { return Value; }

  /// Non-visible write for initialization before threads race.
  void rawStore(T V) { Value = V; }

  int objectId() const { return Id; }

private:
  static int64_t auxOf(const T &V) {
    if constexpr (std::is_integral_v<T> || std::is_enum_v<T>)
      return int64_t(V);
    else
      return 0;
  }

  /// Deferred-store target for Runtime::bufferStore; only ever
  /// instantiated for integral/enum T (the buffered-store path).
  static void commitThunk(void *Obj, int64_t V) {
    static_cast<PlainVar *>(Obj)->Value = T(V);
  }

  int Id;
  T Value;
};

} // namespace fsmc

#endif // FSMC_SYNC_PLAIN_H
