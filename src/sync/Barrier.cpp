//===- sync/Barrier.cpp ---------------------------------------------------===//

#include "sync/Barrier.h"

using namespace fsmc;

Barrier::Barrier(int Participants, std::string Name)
    : Id(Runtime::current().newObjectId(std::move(Name))),
      Participants(Participants) {
  assert(Participants > 0 && "barrier needs at least one participant");
}

bool Barrier::arriveAndWait() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::BarrierArrive, Id));
  // Every arriver publishes its history into the barrier; everyone who
  // crosses acquires it, so all pre-barrier work happens-before all
  // post-barrier work.
  RT.raceRelease(Id);
  if (++Arrived == Participants) {
    Arrived = 0;
    ++Generation;
    RT.raceAcquire(Id);
    return true;
  }
  // Park until the final participant advances the generation. The wait
  // context lives on this fiber's stack, which stays alive while parked.
  RT.noteContended(OpKind::BarrierArrive);
  WaitCtx W{this, Generation};
  RT.schedulePoint(makeGuardedOp(OpKind::BarrierArrive, Id,
                                 &Barrier::generationAdvanced, &W,
                                 /*Aux=*/1));
  RT.raceAcquire(Id);
  return false;
}
