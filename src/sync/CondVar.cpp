//===- sync/CondVar.cpp ---------------------------------------------------===//

#include "sync/CondVar.h"

using namespace fsmc;

CondVar::CondVar(std::string Name)
    : Id(Runtime::current().newObjectId(std::move(Name))) {}

void CondVar::wait(Mutex &M) {
  Runtime &RT = Runtime::current();
  checkThat(M.holder() == RT.self(), "CondVar::wait without holding mutex");
  // Release and register atomically: the increment happens inside the
  // unlock transition, before any other thread can run.
  M.unlock();
  ++Waiters;
  if (Permits == 0)
    RT.noteContended(OpKind::CondWait);
  RT.schedulePoint(
      makeGuardedOp(OpKind::CondWait, Id, &CondVar::hasPermit, this));
  assert(Permits > 0 && "woken without a permit");
  RT.raceAcquire(Id);
  --Permits;
  --Waiters;
  M.lock();
}

bool CondVar::waitTimed(Mutex &M) {
  Runtime &RT = Runtime::current();
  checkThat(M.holder() == RT.self(),
            "CondVar::waitTimed without holding mutex");
  M.unlock();
  ++Waiters;
  // Always enabled (the timeout can fire) and yielding (Section 4).
  RT.schedulePoint(makeOp(OpKind::CondTimedWait, Id));
  bool Notified = Permits > 0;
  if (Notified) {
    RT.raceAcquire(Id);
    --Permits;
  }
  --Waiters;
  M.lock();
  return Notified;
}

void CondVar::notifyOne() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::CondNotify, Id, /*Aux=*/1));
  RT.raceRelease(Id);
  if (Permits < Waiters)
    ++Permits;
}

void CondVar::notifyAll() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::CondNotify, Id, /*Aux=*/2));
  RT.raceRelease(Id);
  Permits = Waiters;
}
