//===- sync/Event.cpp -----------------------------------------------------===//

#include "sync/Event.h"

using namespace fsmc;

Event::Event(Reset Mode, bool InitiallySet, std::string Name)
    : Id(Runtime::current().newObjectId(std::move(Name))), Mode(Mode),
      SetFlag(InitiallySet) {}

void Event::wait() {
  Runtime &RT = Runtime::current();
  if (!SetFlag)
    RT.noteContended(OpKind::EventWait);
  RT.schedulePoint(
      makeGuardedOp(OpKind::EventWait, Id, &Event::isSignaled, this));
  assert(SetFlag && "scheduled while event unset");
  RT.raceAcquire(Id);
  if (Mode == Reset::Auto)
    SetFlag = false;
}

bool Event::waitTimed() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::EventTimedWait, Id));
  if (!SetFlag)
    return false;
  RT.raceAcquire(Id);
  if (Mode == Reset::Auto)
    SetFlag = false;
  return true;
}

void Event::set() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::EventSet, Id));
  RT.raceRelease(Id);
  SetFlag = true;
}

void Event::reset() {
  Runtime::current().schedulePoint(makeOp(OpKind::EventReset, Id));
  SetFlag = false;
}
